(** Attacker work-factor accounting for adversarial evaluation.

    Measures what an attack {e costs} the adversary relative to what it
    achieves, so defenses can be compared by how much they raise that
    cost rather than only by whether they eventually mitigate:

    - {b probes}: packets the attacker spent observing the defense
      (sensor flows, collision trials, calibration bursts);
    - {b damage integral}: over-utilization of the decoy links above
      [damage_floor], integrated over time — chronic congestion the
      defense failed to shed;
    - {b time to effective}: when the damage integral first crosses
      [effective_damage] (the attack "worked"), measured from
      [attack_start];
    - {b work factor} = probes-to-effective x time-to-effective. Runs
      that never become effective are censored at the experiment
      horizon with all probes counted, making the reported factor a
      lower bound on the true cost.

    The experiment harness owns the instance: it samples watched-link
    utilization on a fixed cadence and feeds the attacker's probe
    counter. *)

type t

val create :
  ?damage_floor:float -> ?effective_damage:float -> ?attack_start:float -> unit -> t
(** Defaults: damage accrues above 0.7 utilization; the attack counts as
    effective once 1.0 utilization-seconds of over-congestion have
    accumulated; clock starts at 0. *)

val add_probes : t -> int -> unit

val sample : t -> now:float -> dt:float -> util:float -> unit
(** Integrate one utilization sample covering [dt] seconds. *)

val probes : t -> int
val damage : t -> float
val peak_util : t -> float
val effective_at : t -> float option

val time_to_effective : t -> horizon:float -> float
val probes_to_effective : t -> int
val work_factor : t -> horizon:float -> float

val pp : Format.formatter -> t -> unit
