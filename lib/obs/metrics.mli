(** Metrics registry: named counters, gauges, and sliding-window histograms,
    each keyed globally, per-switch, or per-link. Handle lookups hash once;
    hold on to the returned handle on hot paths. *)

type scope = Global | Switch of int | Link of int * int

val scope_label : scope -> string

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> now:float -> float -> unit
  (** [now] is simulation time; samples older than the registry's
      [hist_window] age out. *)

  val count : t -> now:float -> int
  val mean : t -> now:float -> float
  val percentile : t -> now:float -> float -> float
  val values : t -> now:float -> float list
end

type t

val create : ?hist_window:float -> unit -> t
(** [hist_window] is the histogram sliding window in simulation seconds
    (default 10). *)

val counter : t -> ?scope:scope -> string -> Counter.t
val gauge : t -> ?scope:scope -> string -> Gauge.t
val histogram : t -> ?scope:scope -> string -> Histogram.t

val counter_value : t -> ?scope:scope -> string -> float
(** 0 when the counter was never created. *)

val sum_counters : t -> string -> float
(** Sum of one counter name over every scope. *)

val rows : t -> now:float -> string list list
(** [metric; scope; type; value] rows sorted by name, for [Table.print]. *)

val output_csv : t -> now:float -> out_channel -> unit
val write_csv : t -> now:float -> string -> unit

(** {2 Ambient registry} — same pattern as {!Trace.ambient}. *)

val set_ambient : t option -> unit
val ambient : unit -> t option
