type entry = { seq : int; time : float; event : Event.t }

type t = {
  capacity : int;
  mutable buf : entry array;
  mutable len : int;
  mutable seq : int;
  mutable dropped : int;
  mutable epoch_base : float;  (* offset applied when raw sim time regresses *)
  mutable last_raw : float;
  mutable last_time : float;
  counts : (string, int) Hashtbl.t;
  mutable sinks : (entry -> unit) list;
}

let sentinel = { seq = -1; time = 0.; event = Event.Drop { node = -1; reason = "" } }

let create ?(capacity = 1 lsl 20) () =
  {
    capacity;
    buf = Array.make 1024 sentinel;
    len = 0;
    seq = 0;
    dropped = 0;
    epoch_base = 0.;
    last_raw = 0.;
    last_time = 0.;
    counts = Hashtbl.create 16;
    sinks = [];
  }

let on_event t f = t.sinks <- f :: t.sinks

let bump t kind = Hashtbl.replace t.counts kind (1 + (try Hashtbl.find t.counts kind with Not_found -> 0))

let push t e =
  if t.len >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    if t.len = Array.length t.buf then begin
      let bigger = Array.make (min t.capacity (2 * Array.length t.buf)) sentinel in
      Array.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    t.buf.(t.len) <- e;
    t.len <- t.len + 1
  end

let emit t ~time event =
  (* One trace often spans several simulation runs (each with its own
     engine starting at t=0). When raw time regresses, a new run began:
     rebase so the trace timeline stays monotone, continuing from the last
     stamped time. *)
  if time < t.last_raw then t.epoch_base <- t.last_time;
  t.last_raw <- time;
  let time = t.epoch_base +. time in
  t.last_time <- time;
  let e = { seq = t.seq; time; event } in
  t.seq <- t.seq + 1;
  bump t (Event.kind event);
  push t e;
  List.iter (fun f -> f e) t.sinks

let length t = t.len
let count t = t.seq
let dropped t = t.dropped
let count_kind t kind = try Hashtbl.find t.counts kind with Not_found -> 0

let events t = Array.to_list (Array.sub t.buf 0 t.len)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let clear t =
  t.len <- 0;
  t.seq <- 0;
  t.dropped <- 0;
  t.epoch_base <- 0.;
  t.last_raw <- 0.;
  t.last_time <- 0.;
  Hashtbl.reset t.counts

let entry_to_json (e : entry) =
  let fields =
    ("seq", string_of_int e.seq)
    :: ("time", Printf.sprintf "%.6f" e.time)
    :: ("event", Event.jstr (Event.kind e.event))
    :: Event.json_fields e.event
  in
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"

let output_jsonl t oc =
  iter t (fun e ->
      output_string oc (entry_to_json e);
      output_char oc '\n')

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_jsonl t oc)

let output_csv t oc =
  output_string oc "seq,time,event,node,detail\n";
  iter t (fun e ->
      Printf.fprintf oc "%d,%.6f,%s,%d,%S\n" e.seq e.time (Event.kind e.event)
        (Event.node e.event) (Event.detail e.event))

let write_csv t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_csv t oc)

(* The ambient trace: the default sink that [Ff_netsim.Net] picks up at
   creation, so experiment harnesses can trace scenarios whose networks are
   built deep inside library code. Domain-local ([Domain.DLS]) rather than
   a global ref: a trace buffer is not thread-safe, and making the ambient
   slot per-domain means a shard net created on a worker domain never
   silently shares the harness's buffer — each domain opts in to its own
   sink (or none). Fresh domains start unset. *)
let ambient_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_ambient tr = Domain.DLS.set ambient_key tr
let ambient () = Domain.DLS.get ambient_key

let with_ambient tr f =
  let saved = ambient () in
  set_ambient (Some tr);
  Fun.protect ~finally:(fun () -> set_ambient saved) f
