(** Typed telemetry events emitted by the simulator and the defense
    subsystems. Events carry only plain identifiers (switch ids, attack
    names) so that [ff_obs] sits below every other library and everyone can
    emit without dependency cycles. *)

type transfer_phase =
  | Xfer_start  (** sender kicked off a transfer *)
  | Xfer_retransmit  (** a group timed out and was resent *)
  | Xfer_complete  (** receiver decoded every group *)
  | Xfer_failed  (** retries exhausted or no path *)

type t =
  | Mode_transition of { sw : int; attack : string; activated : bool }
      (** a switch entered/left the defense modes for [attack] *)
  | Reroute of { sw : int; dst : int; next_hop : int }
      (** a packet deviated from the pinned table onto a probe-found detour *)
  | State_transfer of {
      xfer_id : int;
      src : int;
      dst : int;
      phase : transfer_phase;
      chunks : int;  (** cumulative chunks sent at this point *)
    }
  | Fec_recovery of { xfer_id : int; group : int }
      (** parity reconstructed a lost chunk without retransmission *)
  | Drop of { node : int; reason : string }
  | Probe of { sw : int; kind : string }
      (** control-plane-free signalling: mode / sync / reroute probes *)
  | Fault of { kind : string; a : int; b : int; up : bool }
      (** an injected fault (or its lifting, [up = true]): [kind] is
          ["link"] (endpoints [a]/[b]) or ["switch"] ([a], with [b = -1]) *)
  | Repair of { subsystem : string; node : int; info : string }
      (** a self-healing action: a mode readvert repairing a stale
          neighbor, a transfer rerouting around a failure, a repurpose
          rolling back — the "repair" side of fault→repair timelines *)
  | Fluid_rates of { flows : int; classes : int; total_bps : float }
      (** the fluid tier recomputed its max-min allocation: attached flow
          count, path classes solved, and the aggregate allocated rate *)
  | Fluid_tier of { node : int; flows : int; demoted : bool }
      (** a batch of flows crossing [node] changed simulation tier:
          demoted to packet level ([demoted = true]) or promoted back *)

val kind : t -> string
(** Stable snake_case tag, also the JSONL ["event"] field. *)

val node : t -> int
(** Primary switch/node of the event; [-1] when not tied to one. *)

val phase_label : transfer_phase -> string

val json_fields : t -> (string * string) list
(** Event payload as (key, rendered JSON value) pairs. *)

val detail : t -> string
(** Compact single-line [k=v] rendering for CSV/debug output. *)

val jstr : string -> string
(** Escape and quote a string as a JSON value. *)
