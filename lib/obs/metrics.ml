type scope = Global | Switch of int | Link of int * int

let scope_label = function
  | Global -> "-"
  | Switch sw -> Printf.sprintf "sw:%d" sw
  | Link (a, b) -> Printf.sprintf "link:%d->%d" a b

module Counter = struct
  type t = { mutable v : float }

  let incr t = t.v <- t.v +. 1.
  let add t x = t.v <- t.v +. x
  let value t = t.v
end

module Gauge = struct
  type t = { mutable v : float }

  let set t x = t.v <- x
  let value t = t.v
end

module Histogram = struct
  (* A sliding-window sample reservoir: observations older than [window]
     (simulation seconds) age out lazily. Percentiles come from
     [Ff_util.Stats.percentile] over the live samples.

     Pruning is amortized: a full filter pass on every [observe] made a
     hot recording site quadratic in its own rate. Instead the filter runs
     when queried, when half a window has passed since the last sweep, or
     when the reservoir outgrows [max_samples] — which also hard-bounds
     retained memory under observation storms (the newest samples win,
     matching what a window query would keep anyway). *)
  type t = {
    window : float;
    mutable samples : (float * float) list; (* newest first *)
    mutable n : int; (* List.length samples, tracked incrementally *)
    mutable last_prune : float;
  }

  let max_samples = 4096

  let prune t ~now =
    let kept = List.filter (fun (at, _) -> now -. at <= t.window) t.samples in
    t.samples <- kept;
    t.n <- List.length kept;
    t.last_prune <- now

  let truncate_newest t =
    let rec take i = function
      | x :: tl when i > 0 -> x :: take (i - 1) tl
      | _ -> []
    in
    t.samples <- take max_samples t.samples;
    t.n <- max_samples

  let observe t ~now v =
    if now -. t.last_prune > 0.5 *. t.window then prune t ~now;
    t.samples <- (now, v) :: t.samples;
    t.n <- t.n + 1;
    if t.n > max_samples then begin
      prune t ~now;
      if t.n > max_samples then truncate_newest t
    end

  let values t ~now =
    prune t ~now;
    List.map snd t.samples

  let count t ~now =
    prune t ~now;
    t.n

  let mean t ~now = Ff_util.Stats.mean (values t ~now)

  let percentile t ~now p =
    match values t ~now with [] -> 0. | vs -> Ff_util.Stats.percentile p vs
end

type key = { name : string; scope : scope }

type t = {
  hist_window : float;
  counters : (key, Counter.t) Hashtbl.t;
  gauges : (key, Gauge.t) Hashtbl.t;
  histograms : (key, Histogram.t) Hashtbl.t;
}

let create ?(hist_window = 10.) () =
  {
    hist_window;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 64;
    histograms = Hashtbl.create 64;
  }

let find_or tbl key mk =
  match Hashtbl.find_opt tbl key with
  | Some m -> m
  | None ->
    let m = mk () in
    Hashtbl.replace tbl key m;
    m

let counter t ?(scope = Global) name =
  find_or t.counters { name; scope } (fun () -> { Counter.v = 0. })

let gauge t ?(scope = Global) name =
  find_or t.gauges { name; scope } (fun () -> { Gauge.v = 0. })

let histogram t ?(scope = Global) name =
  find_or t.histograms { name; scope } (fun () ->
      { Histogram.window = t.hist_window; samples = []; n = 0; last_prune = 0. })

let counter_value t ?(scope = Global) name =
  match Hashtbl.find_opt t.counters { name; scope } with
  | Some c -> Counter.value c
  | None -> 0.

let sum_counters t name =
  Hashtbl.fold
    (fun k c acc -> if k.name = name then acc +. Counter.value c else acc)
    t.counters 0.

let rows t ~now =
  let collect tbl typ render =
    Hashtbl.fold
      (fun key m acc -> (key.name, scope_label key.scope, typ, render m) :: acc)
      tbl []
  in
  let all =
    collect t.counters "counter" (fun c -> Printf.sprintf "%.0f" (Counter.value c))
    @ collect t.gauges "gauge" (fun g -> Printf.sprintf "%g" (Gauge.value g))
    @ collect t.histograms "histogram" (fun h ->
          Printf.sprintf "n=%d mean=%.3g p50=%.3g p99=%.3g" (Histogram.count h ~now)
            (Histogram.mean h ~now)
            (Histogram.percentile h ~now 50.)
            (Histogram.percentile h ~now 99.))
  in
  (* explicit comparator: polymorphic [compare] on string lists walks the
     generic comparison path and would break on any future non-string cell *)
  List.sort (List.compare String.compare)
    (List.map (fun (a, b, c, d) -> [ a; b; c; d ]) all)

let output_csv t ~now oc =
  output_string oc "metric,scope,type,value\n";
  List.iter
    (fun row -> Printf.fprintf oc "%s\n" (String.concat "," (List.map (Printf.sprintf "%S") row)))
    (rows t ~now)

let write_csv t ~now path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_csv t ~now oc)

(* Domain-local like [Trace.ambient]: registries are single-domain
   structures, so worker domains must not inherit the harness's. *)
let ambient_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_ambient m = Domain.DLS.set ambient_key m
let ambient () = Domain.DLS.get ambient_key
