type scope = Global | Switch of int | Link of int * int

let scope_label = function
  | Global -> "-"
  | Switch sw -> Printf.sprintf "sw:%d" sw
  | Link (a, b) -> Printf.sprintf "link:%d->%d" a b

module Counter = struct
  type t = { mutable v : float }

  let incr t = t.v <- t.v +. 1.
  let add t x = t.v <- t.v +. x
  let value t = t.v
end

module Gauge = struct
  type t = { mutable v : float }

  let set t x = t.v <- x
  let value t = t.v
end

module Histogram = struct
  (* A sliding-window sample reservoir: observations older than [window]
     (simulation seconds) age out lazily. Percentiles come from
     [Ff_util.Stats.percentile] over the live samples. *)
  type t = { window : float; mutable samples : (float * float) list }

  let prune t ~now =
    t.samples <- List.filter (fun (at, _) -> now -. at <= t.window) t.samples

  let observe t ~now v =
    prune t ~now;
    t.samples <- (now, v) :: t.samples

  let values t ~now =
    prune t ~now;
    List.map snd t.samples

  let count t ~now = List.length (values t ~now)
  let mean t ~now = Ff_util.Stats.mean (values t ~now)

  let percentile t ~now p =
    match values t ~now with [] -> 0. | vs -> Ff_util.Stats.percentile p vs
end

type key = { name : string; scope : scope }

type t = {
  hist_window : float;
  counters : (key, Counter.t) Hashtbl.t;
  gauges : (key, Gauge.t) Hashtbl.t;
  histograms : (key, Histogram.t) Hashtbl.t;
}

let create ?(hist_window = 10.) () =
  {
    hist_window;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 64;
    histograms = Hashtbl.create 64;
  }

let find_or tbl key mk =
  match Hashtbl.find_opt tbl key with
  | Some m -> m
  | None ->
    let m = mk () in
    Hashtbl.replace tbl key m;
    m

let counter t ?(scope = Global) name =
  find_or t.counters { name; scope } (fun () -> { Counter.v = 0. })

let gauge t ?(scope = Global) name =
  find_or t.gauges { name; scope } (fun () -> { Gauge.v = 0. })

let histogram t ?(scope = Global) name =
  find_or t.histograms { name; scope } (fun () ->
      { Histogram.window = t.hist_window; samples = [] })

let counter_value t ?(scope = Global) name =
  match Hashtbl.find_opt t.counters { name; scope } with
  | Some c -> Counter.value c
  | None -> 0.

let sum_counters t name =
  Hashtbl.fold
    (fun k c acc -> if k.name = name then acc +. Counter.value c else acc)
    t.counters 0.

let rows t ~now =
  let collect tbl typ render =
    Hashtbl.fold
      (fun key m acc -> (key.name, scope_label key.scope, typ, render m) :: acc)
      tbl []
  in
  let all =
    collect t.counters "counter" (fun c -> Printf.sprintf "%.0f" (Counter.value c))
    @ collect t.gauges "gauge" (fun g -> Printf.sprintf "%g" (Gauge.value g))
    @ collect t.histograms "histogram" (fun h ->
          Printf.sprintf "n=%d mean=%.3g p50=%.3g p99=%.3g" (Histogram.count h ~now)
            (Histogram.mean h ~now)
            (Histogram.percentile h ~now 50.)
            (Histogram.percentile h ~now 99.))
  in
  List.sort compare (List.map (fun (a, b, c, d) -> [ a; b; c; d ]) all)

let output_csv t ~now oc =
  output_string oc "metric,scope,type,value\n";
  List.iter
    (fun row -> Printf.fprintf oc "%s\n" (String.concat "," (List.map (Printf.sprintf "%S") row)))
    (rows t ~now)

let write_csv t ~now path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_csv t ~now oc)

let ambient_metrics : t option ref = ref None
let set_ambient m = ambient_metrics := m
let ambient () = !ambient_metrics
