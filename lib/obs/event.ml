type transfer_phase =
  | Xfer_start
  | Xfer_retransmit
  | Xfer_complete
  | Xfer_failed

type t =
  | Mode_transition of { sw : int; attack : string; activated : bool }
  | Reroute of { sw : int; dst : int; next_hop : int }
  | State_transfer of {
      xfer_id : int;
      src : int;
      dst : int;
      phase : transfer_phase;
      chunks : int;
    }
  | Fec_recovery of { xfer_id : int; group : int }
  | Drop of { node : int; reason : string }
  | Probe of { sw : int; kind : string }
  | Fault of { kind : string; a : int; b : int; up : bool }
  | Repair of { subsystem : string; node : int; info : string }
  | Fluid_rates of { flows : int; classes : int; total_bps : float }
  | Fluid_tier of { node : int; flows : int; demoted : bool }

let phase_label = function
  | Xfer_start -> "start"
  | Xfer_retransmit -> "retransmit"
  | Xfer_complete -> "complete"
  | Xfer_failed -> "failed"

let kind = function
  | Mode_transition _ -> "mode_transition"
  | Reroute _ -> "reroute"
  | State_transfer _ -> "state_transfer"
  | Fec_recovery _ -> "fec_recovery"
  | Drop _ -> "drop"
  | Probe _ -> "probe"
  | Fault _ -> "fault"
  | Repair _ -> "repair"
  | Fluid_rates _ -> "fluid_rates"
  | Fluid_tier _ -> "fluid_tier"

let node = function
  | Mode_transition { sw; _ } | Reroute { sw; _ } | Probe { sw; _ } -> sw
  | State_transfer { src; _ } -> src
  | Fec_recovery _ | Fluid_rates _ -> -1
  | Drop { node; _ } -> node
  | Fault { a; _ } -> a
  | Repair { node; _ } | Fluid_tier { node; _ } -> node

(* minimal JSON rendering: values are pre-rendered strings *)
let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let jint i = string_of_int i
let jbool b = if b then "true" else "false"

let json_fields = function
  | Mode_transition { sw; attack; activated } ->
    [ ("sw", jint sw); ("attack", jstr attack); ("activated", jbool activated) ]
  | Reroute { sw; dst; next_hop } ->
    [ ("sw", jint sw); ("dst", jint dst); ("next_hop", jint next_hop) ]
  | State_transfer { xfer_id; src; dst; phase; chunks } ->
    [ ("xfer_id", jint xfer_id); ("src", jint src); ("dst", jint dst);
      ("phase", jstr (phase_label phase)); ("chunks", jint chunks) ]
  | Fec_recovery { xfer_id; group } -> [ ("xfer_id", jint xfer_id); ("group", jint group) ]
  | Drop { node; reason } -> [ ("node", jint node); ("reason", jstr reason) ]
  | Probe { sw; kind } -> [ ("sw", jint sw); ("kind", jstr kind) ]
  | Fault { kind; a; b; up } ->
    [ ("kind", jstr kind); ("a", jint a); ("b", jint b); ("up", jbool up) ]
  | Repair { subsystem; node; info } ->
    [ ("subsystem", jstr subsystem); ("node", jint node); ("info", jstr info) ]
  | Fluid_rates { flows; classes; total_bps } ->
    [ ("flows", jint flows); ("classes", jint classes);
      ("total_bps", Printf.sprintf "%.1f" total_bps) ]
  | Fluid_tier { node; flows; demoted } ->
    [ ("node", jint node); ("flows", jint flows); ("demoted", jbool demoted) ]

let detail ev =
  String.concat " "
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) (json_fields ev))
