(** Structured event trace: an append-only, bounded in-memory log of typed
    {!Event.t} values stamped with simulation time, with JSONL and CSV
    dumpers. One trace normally spans one experiment. *)

type entry = { seq : int; time : float; event : Event.t }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of buffered entries (default 2^20); past
    it new entries are counted (see {!count}, {!count_kind}) but not kept
    — long simulations cannot exhaust memory through the trace. *)

val emit : t -> time:float -> Event.t -> unit
(** Stamped entry times are monotone even when one trace spans several
    simulation runs: if [time] regresses (a fresh engine started at t=0),
    later entries are offset to continue from the last stamped time. *)

val on_event : t -> (entry -> unit) -> unit
(** Register a live sink called on every emit (even past capacity). *)

val length : t -> int
(** Entries currently buffered. *)

val count : t -> int
(** Total events emitted, including ones dropped past capacity. *)

val count_kind : t -> string -> int
(** Total events of one {!Event.kind} emitted (drop-proof). *)

val dropped : t -> int
val events : t -> entry list
val iter : t -> (entry -> unit) -> unit
val clear : t -> unit

val entry_to_json : entry -> string
(** One JSON object: [{"seq": .., "time": .., "event": "..", ...payload}]. *)

val output_jsonl : t -> out_channel -> unit
val write_jsonl : t -> string -> unit
val output_csv : t -> out_channel -> unit
val write_csv : t -> string -> unit

(** {2 Ambient trace}

    The {e domain-local} default. [Ff_netsim.Net.create] attaches it to
    new networks, so harnesses can trace scenarios that build their
    networks internally. Each domain has its own slot (a trace buffer is
    not thread-safe); worker domains start unset and must call
    [set_ambient] themselves if they want per-domain tracing. *)

val set_ambient : t option -> unit
val ambient : unit -> t option

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run [f] with the ambient trace set, restoring the previous one after. *)
