type t = {
  damage_floor : float;
  effective_damage : float;
  attack_start : float;
  mutable probes : int;
  mutable damage : float;
  mutable effective_at : float; (* nan until the damage quantum is reached *)
  mutable probes_at_effective : int;
  mutable peak_util : float;
}

let create ?(damage_floor = 0.7) ?(effective_damage = 1.0) ?(attack_start = 0.) () =
  {
    damage_floor;
    effective_damage;
    attack_start;
    probes = 0;
    damage = 0.;
    effective_at = Float.nan;
    probes_at_effective = 0;
    peak_util = 0.;
  }

let add_probes t n = if n > 0 then t.probes <- t.probes + n

let sample t ~now ~dt ~util =
  if util > t.peak_util then t.peak_util <- util;
  let over = util -. t.damage_floor in
  if over > 0. then begin
    t.damage <- t.damage +. (over *. dt);
    if Float.is_nan t.effective_at && t.damage >= t.effective_damage then begin
      t.effective_at <- now;
      t.probes_at_effective <- t.probes
    end
  end

let probes t = t.probes
let damage t = t.damage
let peak_util t = t.peak_util
let effective_at t = if Float.is_nan t.effective_at then None else Some t.effective_at

(* Never-effective runs are censored at the horizon: the attacker spent the
   whole run and got nothing, so both factors saturate (time at the full
   run length, probes at everything it sent). That makes the work factor a
   lower bound for hardened runs — the true cost is "more than the whole
   experiment", which is exactly the comparison the floor assertions need. *)
let time_to_effective t ~horizon =
  match effective_at t with
  | Some at -> Float.max 0.01 (at -. t.attack_start)
  | None -> Float.max 0.01 (horizon -. t.attack_start)

let probes_to_effective t =
  match effective_at t with Some _ -> max 1 t.probes_at_effective | None -> max 1 t.probes

let work_factor t ~horizon =
  float_of_int (probes_to_effective t) *. time_to_effective t ~horizon

let pp ppf t =
  Format.fprintf ppf "probes=%d damage=%.2f peak=%.2f effective=%s"
    t.probes t.damage t.peak_util
    (match effective_at t with
    | Some at -> Printf.sprintf "%.1fs" (at -. t.attack_start)
    | None -> "never")
