type span = {
  label : string;
  wall_start : float;
  events_start : int;
  trace_start : int;
}

type report = {
  label : string;
  wall_s : float;
  events : int;  (** simulator events processed during the span *)
  events_per_s : float;
  trace_events : int;  (** telemetry events emitted during the span *)
}

let start ?(events = 0) ?(trace_events = 0) label =
  { label; wall_start = Unix.gettimeofday (); events_start = events; trace_start = trace_events }

let finish span ?(events = 0) ?(trace_events = 0) () =
  let wall_s = Float.max 1e-9 (Unix.gettimeofday () -. span.wall_start) in
  let processed = max 0 (events - span.events_start) in
  {
    label = span.label;
    wall_s;
    events = processed;
    events_per_s = float_of_int processed /. wall_s;
    trace_events = max 0 (trace_events - span.trace_start);
  }

let pp_report fmt r =
  Format.fprintf fmt
    "[profile] %-12s wall %7.3f s   %9d sim events  %10.0f events/s   %6d trace events"
    r.label r.wall_s r.events r.events_per_s r.trace_events
