(** Per-experiment wall-clock profiler. The caller supplies monotone event
    counters at [start] and [finish] (typically
    [Ff_netsim.Engine.total_steps ()] and [Trace.count]); the report gives
    the wall time and the simulator events/second processed in between. *)

type span

type report = {
  label : string;
  wall_s : float;
  events : int;
  events_per_s : float;
  trace_events : int;
}

val start : ?events:int -> ?trace_events:int -> string -> span
val finish : span -> ?events:int -> ?trace_events:int -> unit -> report
val pp_report : Format.formatter -> report -> unit
