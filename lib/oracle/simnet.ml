module Topology = Ff_topology.Topology

type pkt = { p_src : int; p_dst : int; p_flow : int; p_size : int; mutable p_ttl : int }

type dlink = {
  l_from : int;
  l_to : int;
  l_cap : float;
  l_delay : float;
  l_limit : float;
  mutable l_busy : float;
  mutable l_up : bool;
  mutable l_tx : int;
}

type sw = {
  mutable s_up : bool;
  mutable s_routes : (int * int) list; (* dst -> next hop *)
  mutable s_backups : (int * int) list;
  mutable s_pairs : ((int * int) * int) list; (* (src, dst) -> next hop *)
}

type ev = Thunk of (unit -> unit) | Arrival of { a_to : int; a_pkt : pkt }

type t = {
  topo : Topology.t;
  adj : dlink array array; (* Topology.neighbors order, as in Net *)
  sws : sw option array; (* None for hosts *)
  mutable q : ev Oracle.Queue.t;
  mutable time : float;
  mutable drops : (string * int) list;
  mutable delivered : (int * float list) list; (* flow -> times, newest first *)
}

let create ?(queue_limit_bytes = 37_500.) topo =
  let n = Topology.num_nodes topo in
  let adj =
    Array.init n (fun id ->
        Topology.neighbors topo id
        |> List.map (fun (peer, (l : Topology.link)) ->
               {
                 l_from = id;
                 l_to = peer;
                 l_cap = l.Topology.capacity;
                 l_delay = l.Topology.delay;
                 l_limit = queue_limit_bytes;
                 l_busy = 0.;
                 l_up = true;
                 l_tx = 0;
               })
        |> Array.of_list)
  in
  let sws =
    Array.init n (fun id ->
        match (Topology.node topo id).Topology.kind with
        | Topology.Switch -> Some { s_up = true; s_routes = []; s_backups = []; s_pairs = [] }
        | Topology.Host -> None)
  in
  let t = { topo; adj; sws; q = Oracle.Queue.empty; time = 0.; drops = []; delivered = [] } in
  (* hosts are directly reachable from their access switch *)
  Array.iteri
    (fun id sw ->
      match sw with
      | Some _ -> ()
      | None -> (
        match Topology.neighbors topo id with
        | (peer, _) :: _ -> (
          match t.sws.(peer) with
          | Some s -> s.s_routes <- (id, id) :: s.s_routes
          | None -> ())
        | [] -> ()))
    sws;
  t

let now t = t.time

let switch t sw =
  match t.sws.(sw) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Simnet: node %d is not a switch" sw)

let set_assoc l k v = (k, v) :: List.remove_assoc k l

let set_route t ~sw ~dst ~next_hop =
  let s = switch t sw in
  s.s_routes <- set_assoc s.s_routes dst next_hop

let set_backup_route t ~sw ~dst ~next_hop =
  let s = switch t sw in
  s.s_backups <- set_assoc s.s_backups dst next_hop

let set_pair_route t ~sw ~src ~dst ~next_hop =
  let s = switch t sw in
  s.s_pairs <- set_assoc s.s_pairs (src, dst) next_hop

let install_path t ~dst path =
  let rec go = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      (match t.sws.(a) with Some _ -> set_route t ~sw:a ~dst ~next_hop:b | None -> ());
      go rest
  in
  go path

let dlink_opt t ~from_ ~to_ =
  let links = t.adj.(from_) in
  let found = ref None in
  Array.iter (fun dl -> if dl.l_to = to_ then found := Some dl) links;
  !found

let set_link_up t ~a ~b up =
  match (dlink_opt t ~from_:a ~to_:b, dlink_opt t ~from_:b ~to_:a) with
  | Some ab, Some ba ->
    ab.l_up <- up;
    ba.l_up <- up
  | _ -> invalid_arg (Printf.sprintf "Simnet.set_link_up: %d and %d not adjacent" a b)

let set_switch_up t ~sw up = (switch t sw).s_up <- up

let drop t reason =
  let n = match List.assoc_opt reason t.drops with Some n -> n | None -> 0 in
  t.drops <- set_assoc t.drops reason (n + 1)

let push t ~at ev = t.q <- Oracle.Queue.push t.q ~at ev

let schedule t ~at f =
  if at < t.time then invalid_arg "Simnet.schedule: past"
  else push t ~at (Thunk f)

(* The link model, expression for expression the same as [Net.transmit]:
   any rewrite that changes the float result by one ULP fails the
   differential. *)
let transmit t dl pkt =
  let tnow = t.time in
  let cap = dl.l_cap in
  let waiting = dl.l_busy -. tnow in
  let backlog_bytes = (if waiting > 0. then waiting else 0.) *. cap /. 8. in
  let size = float_of_int pkt.p_size in
  if not dl.l_up then drop t "link-down"
  else if backlog_bytes +. size > dl.l_limit then drop t "queue-overflow"
  else begin
    let start = if tnow > dl.l_busy then tnow else dl.l_busy in
    let tx_time = size *. 8. /. cap in
    dl.l_busy <- start +. tx_time;
    dl.l_tx <- dl.l_tx + 1;
    let arrival = dl.l_busy +. dl.l_delay in
    push t ~at:arrival (Arrival { a_to = dl.l_to; a_pkt = pkt })
  end

let send_toward t sw next pkt =
  match dlink_opt t ~from_:sw ~to_:next with
  | Some dl -> transmit t dl pkt
  | None -> drop t "no-link"

(* 0 = entry exists but next hop is a down switch, 1 = sent *)
let forward_via t sw pkt next =
  match t.sws.(next) with
  | Some s when not s.s_up -> 0
  | _ ->
    send_toward t sw next pkt;
    1

let default_forward t sw_id (s : sw) pkt =
  let n = Topology.num_nodes t.topo in
  let src = pkt.p_src and dst = pkt.p_dst in
  let dst_ok = dst >= 0 && dst < n in
  let lookup l k = match List.assoc_opt k l with Some next when next >= 0 -> next | _ -> -1 in
  let pair =
    if s.s_pairs = [] then -1
    else if (not dst_ok) || src < 0 || src >= n then -1
    else
      let next = lookup s.s_pairs (src, dst) in
      if next < 0 then -1 else forward_via t sw_id pkt next
  in
  if pair <> 1 then begin
    let primary =
      if not dst_ok then -1
      else
        let next = lookup s.s_routes dst in
        if next < 0 then -1 else forward_via t sw_id pkt next
    in
    if primary <> 1 then begin
      let backup =
        if s.s_backups = [] || not dst_ok then -1
        else
          let next = lookup s.s_backups dst in
          if next < 0 then -1 else forward_via t sw_id pkt next
      in
      if backup <> 1 then
        drop t (if pair = -1 && primary = -1 && backup = -1 then "no-route" else "next-hop-down")
    end
  end

let receive t ~at pkt =
  match t.sws.(at) with
  | None ->
    (* host: record the delivery instant *)
    let times =
      match List.assoc_opt pkt.p_flow t.delivered with Some l -> l | None -> []
    in
    t.delivered <- set_assoc t.delivered pkt.p_flow (t.time :: times)
  | Some s ->
    if not s.s_up then drop t "switch-down"
    else begin
      (* the default ttl stage, then table forwarding *)
      pkt.p_ttl <- pkt.p_ttl - 1;
      if pkt.p_ttl <= 0 then drop t "ttl-expired" else default_forward t at s pkt
    end

let send_from_host t ~src ~dst ~flow ~size ~ttl =
  let pkt = { p_src = src; p_dst = dst; p_flow = flow; p_size = size; p_ttl = ttl } in
  if src >= 0 && src < Array.length t.adj && Array.length t.adj.(src) > 0 then
    transmit t t.adj.(src).(0) pkt
  else drop t "no-access-link"

let run t ~until =
  let continue_ = ref true in
  while !continue_ do
    match Oracle.Queue.pop t.q with
    | Some ((at, _seq, ev), rest) when at <= until ->
      t.q <- rest;
      t.time <- at;
      (match ev with Thunk f -> f () | Arrival { a_to; a_pkt } -> receive t ~at:a_to a_pkt)
    | _ -> continue_ := false
  done;
  t.time <- until

let deliveries t ~flow =
  match List.assoc_opt flow t.delivered with Some l -> List.rev l | None -> []

let delivered t ~flow = List.length (deliveries t ~flow)

let drops_by_reason t = List.sort compare t.drops

let link_tx t ~from_ ~to_ = match dlink_opt t ~from_ ~to_ with Some dl -> dl.l_tx | None -> 0
