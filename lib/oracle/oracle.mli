(** The reference semantics the optimized stack must preserve.

    Everything in this library is deliberately naive: sorted lists instead
    of heaps, association lists instead of dense arrays, repeated
    edge-list relaxation instead of Dijkstra, a declarative fold instead
    of a probe flood. Each structure is small enough to audit by eye —
    that is the point. The differential harness
    ([test/test_differential.ml]) drives the real [Engine]/[Net]/
    [Protocol] stack and these oracles over the same random inputs and
    demands identical answers, so every future fast-path optimization is
    checked against an implementation that is obviously correct rather
    than merely previously correct. *)

(** A pure event queue ordered by [(time, seq)]: the specification of the
    engine's two typed lanes merged through their shared sequence
    counter. Same-instant events pop in push order (FIFO), exactly the
    guarantee [Engine.run] provides across both lanes. *)
module Queue : sig
  type 'a t

  val empty : 'a t

  val push : 'a t -> at:float -> 'a -> 'a t
  (** Enqueue with the next sequence number. *)

  val pop : 'a t -> ((float * int * 'a) * 'a t) option
  (** The globally least [(time, seq)] event, or [None] when empty. *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
end

(** Pure shortest-path routing computed by repeated relaxation over the
    raw edge list — no visited sets, no priority queues, no adjacency
    indexing. Hosts never transit (they can only be endpoints), matching
    both [Topology.shortest_path] and [Net.live_shortest_path]. *)
module Routing : sig
  val shortest_path :
    ?live_link:(int -> int -> bool) ->
    ?live_node:(int -> bool) ->
    Ff_topology.Topology.t ->
    src:int ->
    dst:int ->
    int list option
  (** Hop-shortest path over the live subgraph, endpoints included.
    [None] when either endpoint is dead or unreachable. Tie-breaking is
    unspecified — compare lengths, not node sequences. *)

  val hop_distance :
    ?live_link:(int -> int -> bool) ->
    ?live_node:(int -> bool) ->
    Ff_topology.Topology.t ->
    src:int ->
    dst:int ->
    int option

  val switch_distance : Ff_topology.Topology.t -> from_:int -> to_:int -> int option
  (** Hop distance over the switch-only subgraph — the graph a mode-probe
      flood travels, since switches flood to switch neighbors only. *)

  val region : Ff_topology.Topology.t -> origin:int -> ttl:int -> int list
  (** Switches within [ttl] switch-graph hops of [origin] (inclusive,
      origin included): exactly the set a [ttl]-budgeted flood reaches. *)
end

(** The specification of the cuckoo filter ([Ff_dataplane.Cuckoo]): a
    plain multiset of keys. Exact where the filter is exact — an inserted
    key is a member until deleted, deletion removes exactly one copy —
    and silent about false positives, which the differential suite bounds
    against the filter's analytic rate instead. *)
module Cuckoo_ref : sig
  type t

  val create : unit -> t
  val insert : t -> int -> unit
  val member : t -> int -> bool

  val delete : t -> int -> bool
  (** Remove one copy; [false] when the key is absent. *)

  val count : t -> int -> int
  (** Copies of this key currently held. *)

  val size : t -> int
  (** Total copies across all keys. *)

  val keys : t -> int list
  (** Distinct members, unspecified order. *)
end

(** The declarative specification of [Modes.Protocol]: a fold over the
    command history instead of a distributed flood. Once the network has
    carried every probe (no loss, commands spaced beyond the dwell), the
    real protocol must agree with this fold exactly — per-switch epoch,
    activation flag, and the global epoch counter. *)
module Modes : sig
  type 'attack cmd = {
    c_origin : int;  (** switch the detector fired at *)
    c_attack : 'attack;
    c_activate : bool;  (** [true] = raise_alarm, [false] = clear_alarm *)
  }

  type 'attack verdict = {
    v_attack : 'attack;
    v_epochs : int;  (** epochs the protocol must have issued *)
    v_states : (int * (int * bool)) list;
        (** per switch: (latest known epoch, attack active), every switch
            listed *)
  }

  val predict :
    switches:int list ->
    dist:(origin:int -> sw:int -> int option) ->
    region_ttl:int ->
    'attack cmd list ->
    'attack verdict list
  (** Fold the commands in order. A raise at an already-active origin is
      a no-op (no epoch issued); every other command issues the next
      epoch for its attack and rewrites [(epoch, activate)] on every
      switch within [region_ttl] hops of the origin. Attacks are compared
      with structural equality; verdicts appear in first-command order. *)
end
