(** A naive reference implementation of [Ff_netsim.Net] + [Engine]: one
    sorted-list event queue, association-list routing tables, and the
    same link/forwarding semantics written in the most literal way
    possible.

    The float arithmetic of the link model (backlog, serialization start,
    arrival instant) is written with the {e same operations in the same
    order} as [Net.transmit], and every event acquires its [(time, seq)]
    key at the same point in execution — so a scenario driven identically
    through both stacks must produce {e bit-identical} delivery
    timestamps, drop reasons, and per-link transmit counts. Any
    divergence, down to one ULP or one reordered tie, is a bug in one of
    the two. *)

type t

val create : ?queue_limit_bytes:float -> Ff_topology.Topology.t -> t
(** Mirrors [Net.create]: every link direction gets a drop-tail queue
    (default 37500 bytes) and every switch starts with a direct route to
    each attached host. *)

val now : t -> float

(** {1 Routing} *)

val set_route : t -> sw:int -> dst:int -> next_hop:int -> unit
val set_backup_route : t -> sw:int -> dst:int -> next_hop:int -> unit
val set_pair_route : t -> sw:int -> src:int -> dst:int -> next_hop:int -> unit

val install_path : t -> dst:int -> int list -> unit
(** Set the route toward [dst] on every switch along the path. *)

(** {1 Failure model} *)

val set_link_up : t -> a:int -> b:int -> bool -> unit
val set_switch_up : t -> sw:int -> bool -> unit

(** {1 Traffic and execution} *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Thunk event, ordered by [(time, seq)] against packet arrivals. *)

val send_from_host : t -> src:int -> dst:int -> flow:int -> size:int -> ttl:int -> unit
(** Transmit a data packet on [src]'s access link, now. *)

val run : t -> until:float -> unit
(** Pop events in [(time, seq)] order until the queue drains or the clock
    passes [until]; afterwards [now t = until]. *)

(** {1 Observation} *)

val deliveries : t -> flow:int -> float list
(** Host arrival times for the flow, oldest first. *)

val delivered : t -> flow:int -> int
val drops_by_reason : t -> (string * int) list
val link_tx : t -> from_:int -> to_:int -> int
