(* Exhaustive exploration of the anti-entropy protocol's state graph.

   The model is [Modes.Protocol] with time abstracted away: applying a
   clear never waits on a dwell, and the re-advertisement timer fires
   only in quiet states (no probe in flight) — the timescale separation
   between millisecond floods and the 100ms-scale timer. What remains is
   exactly the nondeterminism an adversarial network controls: which
   in-flight probe arrives next, and which probes die. *)

type config = {
  adj : int list array;
  origin : int;
  region_ttl : int;
  include_clear : bool;
  anti_entropy : bool;
  loss_budget : int;
  max_states : int;
}

type report = {
  states : int;
  transitions : int;
  terminals : int;
  converged : int;
  violations : string list;
  counterexample : string list option;
  exhausted : bool;
}

type probe = { pr_from : int; pr_to : int; pr_epoch : int; pr_act : bool; pr_ttl : int }

type swst = {
  seen : int;
  active : bool;
  ad_epoch : int;
  ad_act : bool;
  ad_ttl : int;
  pending : int list; (* sorted *)
}

(* [inflight] is a sorted set: probes are content-addressed (from, to,
   epoch, activate, ttl), so two identical probes in flight are
   operationally indistinguishable and collapse into one — the adversary
   gains no new behaviors from duplicates, and the state space shrinks by
   orders of magnitude on dense graphs. *)
type state = { sws : swst list; inflight : probe list; lost : int; cleared : bool }

let line n = Array.init n (fun i -> List.filter (fun j -> j = i - 1 || j = i + 1) [ i - 1; i + 1 ] |> List.filter (fun j -> j >= 0 && j < n))

let cycle n = Array.init n (fun i -> List.sort_uniq compare [ ((i + n) - 1) mod n; (i + 1) mod n ])

let complete n = Array.init n (fun i -> List.filter (fun j -> j <> i) (List.init n Fun.id))

let default ~adj =
  {
    adj;
    origin = 0;
    region_ttl = Array.length adj;
    include_clear = true;
    anti_entropy = true;
    loss_budget = 1;
    max_states = 500_000;
  }

let known st = max st.seen st.ad_epoch

let canon st = { st with inflight = List.sort_uniq compare st.inflight }

let update_sw sws i f = List.mapi (fun j s -> if j = i then f s else s) sws

let rec remove_one p = function
  | [] -> []
  | x :: tl -> if x = p then tl else x :: remove_one p tl

let probe_str p =
  Printf.sprintf "probe %d->%d epoch %d %s ttl %d" p.pr_from p.pr_to p.pr_epoch
    (if p.pr_act then "act" else "clear")
    p.pr_ttl

(* [Protocol.handle_probe], declaratively: new per-switch states plus the
   probes this delivery emits. *)
let deliver cfg st p =
  let sw = p.pr_to in
  let me = List.nth st.sws sw in
  let nbrs = cfg.adj.(sw) in
  let k = known me in
  if p.pr_epoch > k then begin
    (* fresh: apply, take over the advert, re-flood, ack the sender *)
    let ttl' = max 0 (p.pr_ttl - 1) in
    let me' =
      if cfg.anti_entropy then
        {
          seen = p.pr_epoch;
          active = p.pr_act;
          ad_epoch = p.pr_epoch;
          ad_act = p.pr_act;
          ad_ttl = ttl';
          pending =
            (if ttl' > 0 then List.sort compare (List.filter (fun q -> q <> p.pr_from) nbrs)
             else []);
        }
      else { me with seen = p.pr_epoch; active = p.pr_act }
    in
    let flood =
      if p.pr_ttl - 1 > 0 then
        List.filter_map
          (fun q ->
            if q = p.pr_from then None
            else
              Some
                { pr_from = sw; pr_to = q; pr_epoch = p.pr_epoch; pr_act = p.pr_act;
                  pr_ttl = p.pr_ttl - 1 })
          nbrs
      else []
    in
    let ack =
      if cfg.anti_entropy && p.pr_ttl > 0 then
        [ { pr_from = sw; pr_to = p.pr_from; pr_epoch = p.pr_epoch; pr_act = p.pr_act;
            pr_ttl = 0 } ]
      else []
    in
    (update_sw st.sws sw (fun _ -> me'), flood @ ack)
  end
  else if p.pr_epoch = k && k > 0 then begin
    (* the sender provably holds our epoch: confirm, ack back *)
    let me' =
      if me.ad_epoch = p.pr_epoch then
        { me with pending = List.filter (fun q -> q <> p.pr_from) me.pending }
      else me
    in
    let ack =
      if cfg.anti_entropy && p.pr_ttl > 0 then
        [ { pr_from = sw; pr_to = p.pr_from; pr_epoch = p.pr_epoch; pr_act = p.pr_act;
            pr_ttl = 0 } ]
      else []
    in
    (update_sw st.sws sw (fun _ -> me'), ack)
  end
  else if cfg.anti_entropy && me.ad_epoch > 0 then
    (* the sender is behind: push our fresher state straight back *)
    ( st.sws,
      [ { pr_from = sw; pr_to = p.pr_from; pr_epoch = me.ad_epoch; pr_act = me.ad_act;
          pr_ttl = me.ad_ttl } ] )
  else (st.sws, [])

(* A command issued at the origin: apply locally, refresh the advert,
   flood with the full region budget — [raise_alarm]/[clear_alarm]. *)
let issue cfg st ~epoch ~activate =
  let o = cfg.origin in
  let nbrs = cfg.adj.(o) in
  let sws =
    update_sw st.sws o (fun me ->
        let me = { me with seen = epoch; active = activate } in
        if cfg.anti_entropy then
          {
            me with
            ad_epoch = epoch;
            ad_act = activate;
            ad_ttl = cfg.region_ttl;
            pending = (if cfg.region_ttl > 0 then List.sort compare nbrs else []);
          }
        else me)
  in
  let flood =
    if cfg.region_ttl > 0 then
      List.map
        (fun q ->
          { pr_from = o; pr_to = q; pr_epoch = epoch; pr_act = activate;
            pr_ttl = cfg.region_ttl })
        nbrs
    else []
  in
  { st with sws; inflight = st.inflight @ flood }

let initial cfg =
  let n = Array.length cfg.adj in
  let blank =
    { seen = 0; active = false; ad_epoch = 0; ad_act = false; ad_ttl = 0; pending = [] }
  in
  let st = { sws = List.init n (fun _ -> blank); inflight = []; lost = 0; cleared = false } in
  canon (issue cfg st ~epoch:1 ~activate:true)

(* enabled transitions: (label, successor) *)
let successors cfg st =
  let distinct = List.sort_uniq compare st.inflight in
  let deliveries =
    List.map
      (fun p ->
        let sws, emitted = deliver cfg st p in
        ( "deliver " ^ probe_str p,
          canon { st with sws; inflight = remove_one p st.inflight @ emitted } ))
      distinct
  in
  let losses =
    if st.lost >= cfg.loss_budget then []
    else
      List.map
        (fun p ->
          ( "lose " ^ probe_str p,
            canon { st with inflight = remove_one p st.inflight; lost = st.lost + 1 } ))
        distinct
  in
  let clear =
    if cfg.include_clear && not st.cleared then
      [ ("clear_alarm", canon (issue cfg { st with cleared = true } ~epoch:2 ~activate:false)) ]
    else []
  in
  let readverts =
    if cfg.anti_entropy && st.inflight = [] then
      List.concat
        (List.mapi
           (fun sw me ->
             if me.pending = [] then []
             else
               let probes =
                 List.map
                   (fun q ->
                     { pr_from = sw; pr_to = q; pr_epoch = me.ad_epoch; pr_act = me.ad_act;
                       pr_ttl = me.ad_ttl })
                   me.pending
               in
               [ ( Printf.sprintf "readvert at %d" sw,
                   canon { st with inflight = probes } ) ])
           st.sws)
    else []
  in
  deliveries @ losses @ clear @ readverts

(* hop distances over the switch graph, BFS *)
let distances adj origin =
  let n = Array.length adj in
  let d = Array.make n (-1) in
  d.(origin) <- 0;
  let q = ref [ origin ] in
  while !q <> [] do
    let frontier = !q in
    q := [];
    List.iter
      (fun u ->
        List.iter
          (fun v ->
            if d.(v) < 0 then begin
              d.(v) <- d.(u) + 1;
              q := v :: !q
            end)
          adj.(u))
      frontier
  done;
  d

let run cfg =
  let dist = distances cfg.adj cfg.origin in
  let final_epoch = if cfg.include_clear then 2 else 1 in
  let final_act = not cfg.include_clear in
  (* Keys are marshalled states: the default [Hashtbl.hash] inspects
     only ~10 nodes of a structure, and states share a deep common
     prefix, so hashing them directly collapses the table into linear
     scans. String keys hash over the full representation. *)
  let key (st : state) = Marshal.to_string st [] in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let parent : (string, state * string) Hashtbl.t = Hashtbl.create 4096 in
  let violations = ref [] in
  let counterexample = ref None in
  let transitions = ref 0 in
  let terminals = ref 0 in
  let convergent = ref 0 in
  let exhausted = ref true in
  let add_violation st msg =
    if not (List.mem msg !violations) then violations := msg :: !violations;
    if !counterexample = None then begin
      let rec walk acc st =
        match Hashtbl.find_opt parent (key st) with
        | None -> acc
        | Some (prev, label) -> walk (label :: acc) prev
      in
      counterexample := Some (walk [] st)
    end
  in
  let check_terminal st =
    incr terminals;
    let ok = ref true in
    List.iteri
      (fun sw me ->
        let in_region = dist.(sw) >= 0 && dist.(sw) <= cfg.region_ttl in
        let want_epoch = if in_region then final_epoch else 0 in
        let want_act = if in_region then final_act else false in
        if me.seen <> want_epoch || me.active <> want_act then begin
          ok := false;
          add_violation st
            (Printf.sprintf
               "unconverged terminal: switch %d at (epoch %d, %s), expected (epoch %d, %s)"
               sw me.seen
               (if me.active then "active" else "inactive")
               want_epoch
               (if want_act then "active" else "inactive"))
        end)
      st.sws;
    if !ok then incr convergent
  in
  let stack = ref [ initial cfg ] in
  Hashtbl.replace visited (key (initial cfg)) ();
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | st :: rest ->
      stack := rest;
      let succs = successors cfg st in
      if succs = [] then check_terminal st
      else
        List.iter
          (fun (label, st') ->
            incr transitions;
            (* epoch monotonicity across every edge of the state graph *)
            List.iteri
              (fun sw me' ->
                let me = List.nth st.sws sw in
                if known me' < known me then
                  add_violation st'
                    (Printf.sprintf "epoch regression at switch %d: %d -> %d (%s)" sw
                       (known me) (known me') label))
              st'.sws;
            let k' = key st' in
            if not (Hashtbl.mem visited k') then
              if Hashtbl.length visited >= cfg.max_states then begin
                (* budget blown: report truncation loudly and stop grinding
                   through the residual frontier *)
                exhausted := false;
                stack := []
              end
              else begin
                Hashtbl.replace visited k' ();
                Hashtbl.replace parent k' (st, label);
                stack := st' :: !stack
              end)
          succs
  done;
  {
    states = Hashtbl.length visited;
    transitions = !transitions;
    terminals = !terminals;
    converged = !convergent;
    violations = List.rev !violations;
    counterexample = !counterexample;
    exhausted = !exhausted;
  }
