module Topology = Ff_topology.Topology

(* Every structure here trades speed for auditability: the optimized
   stack answers in O(1) array probes and heap pops, the oracle answers
   by scanning small lists. Differential tests compare the two. *)

module Queue = struct
  type 'a t = { items : (float * int * 'a) list; next_seq : int }

  let empty = { items = []; next_seq = 0 }

  (* Sorted insert on the full (time, seq) key. Sequence numbers are
     handed out in push order, so equal-time events keep FIFO order —
     the same guarantee the engine's two lanes provide through their
     shared counter. *)
  let push t ~at x =
    let seq = t.next_seq in
    let rec ins = function
      | [] -> [ (at, seq, x) ]
      | (t0, s0, _) as hd :: tl ->
        if t0 < at || (t0 = at && s0 < seq) then hd :: ins tl
        else (at, seq, x) :: hd :: tl
    in
    { items = ins t.items; next_seq = seq + 1 }

  let pop t = match t.items with [] -> None | hd :: tl -> Some (hd, { t with items = tl })
  let is_empty t = t.items = []
  let length t = List.length t.items
end

module Routing = struct
  (* Bellman-Ford by repeated relaxation over the raw edge list, with
     association lists for distances and predecessors. Hosts relax
     outgoing edges only when they are the source, so they never appear
     mid-path. *)

  let is_switch topo id = (Topology.node topo id).Topology.kind = Topology.Switch

  let relax_all ?(live_link = fun _ _ -> true) ?(live_node = fun _ -> true)
      ?(links_of = Topology.links) topo ~src =
    if not (live_node src) then []
    else begin
      let dist = ref [ (src, (0, src)) ] in
      let lookup n = List.assoc_opt n !dist in
      let edges =
        List.concat_map
          (fun (l : Topology.link) -> [ (l.Topology.a, l.Topology.b); (l.Topology.b, l.Topology.a) ])
          (links_of topo)
      in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (u, v) ->
            if live_node u && live_node v && live_link u v && (u = src || is_switch topo u)
            then
              match lookup u with
              | None -> ()
              | Some (du, _) -> (
                let better =
                  match lookup v with None -> true | Some (dv, _) -> du + 1 < dv
                in
                if better then begin
                  dist := (v, (du + 1, u)) :: List.remove_assoc v !dist;
                  changed := true
                end))
          edges
      done;
      !dist
    end

  let hop_distance ?live_link ?live_node topo ~src ~dst =
    let live_node = match live_node with Some f -> f | None -> fun _ -> true in
    if not (live_node dst) then None
    else
      match List.assoc_opt dst (relax_all ?live_link ~live_node topo ~src) with
      | Some (d, _) -> Some d
      | None -> None

  let shortest_path ?live_link ?live_node topo ~src ~dst =
    let live_node = match live_node with Some f -> f | None -> fun _ -> true in
    if not (live_node dst) then None
    else begin
      let dist = relax_all ?live_link ~live_node topo ~src in
      match List.assoc_opt dst dist with
      | None -> None
      | Some _ ->
        let rec walk acc n =
          if n = src then n :: acc
          else
            match List.assoc_opt n dist with
            | Some (_, pred) -> walk (n :: acc) pred
            | None -> acc (* unreachable: assoc above guarantees a chain *)
        in
        Some (walk [] dst)
    end

  let switch_links topo =
    List.filter
      (fun (l : Topology.link) -> is_switch topo l.Topology.a && is_switch topo l.Topology.b)
      (Topology.links topo)

  let switch_distance topo ~from_ ~to_ =
    match
      List.assoc_opt to_ (relax_all ~links_of:switch_links topo ~src:from_)
    with
    | Some (d, _) -> Some d
    | None -> None

  let region topo ~origin ~ttl =
    List.filter_map
      (fun (n : Topology.node) ->
        match switch_distance topo ~from_:origin ~to_:n.Topology.id with
        | Some d when d <= ttl -> Some n.Topology.id
        | _ -> None)
      (Topology.switches topo)
end

module Cuckoo_ref = struct
  (* The specification of [Ff_dataplane.Cuckoo] is just a multiset of
     keys: no buckets, no fingerprints, no eviction — membership is a
     table lookup. The differential suite holds the filter to this
     semantics wherever it is exact (never a false negative, deletion
     removes one copy) and to its analytic bound where it is
     probabilistic (false positives). *)

  type t = { counts : (int, int) Hashtbl.t; mutable size : int }

  let create () = { counts = Hashtbl.create 64; size = 0 }

  let count t key = match Hashtbl.find_opt t.counts key with Some n -> n | None -> 0

  let insert t key =
    Hashtbl.replace t.counts key (count t key + 1);
    t.size <- t.size + 1

  let member t key = count t key > 0

  let delete t key =
    match count t key with
    | 0 -> false
    | 1 ->
      Hashtbl.remove t.counts key;
      t.size <- t.size - 1;
      true
    | n ->
      Hashtbl.replace t.counts key (n - 1);
      t.size <- t.size - 1;
      true

  let size t = t.size

  let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.counts []
end

module Modes = struct
  type 'attack cmd = { c_origin : int; c_attack : 'attack; c_activate : bool }

  type 'attack verdict = {
    v_attack : 'attack;
    v_epochs : int;
    v_states : (int * (int * bool)) list;
  }

  (* One attack's fold: walk the commands, rewriting every covered switch
     to the freshly issued (epoch, activate). The only conditional is the
     protocol's idempotence rule: raising at an already-active origin
     issues nothing. *)
  let fold_attack ~switches ~dist ~region_ttl cmds =
    let states = List.map (fun sw -> (sw, (0, false))) switches in
    let covered origin sw =
      match dist ~origin ~sw with Some d -> d <= region_ttl | None -> false
    in
    List.fold_left
      (fun (epoch, states) cmd ->
        let origin_active =
          match List.assoc_opt cmd.c_origin states with
          | Some (_, active) -> active
          | None -> false
        in
        if cmd.c_activate && origin_active then (epoch, states)
        else begin
          let epoch = epoch + 1 in
          let states =
            List.map
              (fun (sw, st) ->
                if covered cmd.c_origin sw then (sw, (epoch, cmd.c_activate)) else (sw, st))
              states
          in
          (epoch, states)
        end)
      (0, states) cmds

  let predict ~switches ~dist ~region_ttl cmds =
    let attacks =
      List.fold_left
        (fun acc c -> if List.mem c.c_attack acc then acc else c.c_attack :: acc)
        [] cmds
      |> List.rev
    in
    List.map
      (fun attack ->
        let mine = List.filter (fun c -> c.c_attack = attack) cmds in
        let epochs, states = fold_attack ~switches ~dist ~region_ttl mine in
        { v_attack = attack; v_epochs = epochs; v_states = states })
      attacks
end
