(** Bounded model checking of the mode-change anti-entropy protocol.

    Chaos testing samples three seeds; this module enumerates {e every}
    probe delivery, loss, and reorder interleaving of the protocol on a
    small switch graph, up to a configurable loss budget, and checks the
    quiescence invariants on each one:

    - {e epoch monotonicity}: no transition ever lowers a switch's known
      epoch;
    - {e no half-activated region}: every terminal (quiescent) state has
      all switches within [region_ttl] hops of the origin agreeing on the
      final (epoch, activate), and every switch beyond the region
      untouched;
    - {e eventual convergence}: terminal states exist and every one of
      them is converged — once the loss budget is spent, the remaining
      executions are lossless, so reaching quiescence {e is} healing.

    The protocol model mirrors [Modes.Protocol.handle_probe] /
    [anti_entropy_tick] with time abstracted away: dwell is zero, and
    timer-driven re-advertisement fires only when no probe is in flight
    (the timescale-separation that makes the state space finite). With
    [anti_entropy = false] the model degenerates to fire-and-forget
    flooding — running the checker over it proves the checker finds the
    convergence hole that anti-entropy exists to close.

    In-flight probes form a {e set}, not a multiset: probes are
    content-addressed (sender, receiver, epoch, activate, ttl), so two
    identical probes in flight are operationally indistinguishable and
    collapse into one. The adversary gains no behaviors from duplicates,
    and dense graphs stay tractable. *)

type config = {
  adj : int list array;
      (** switch-only adjacency; switch ids are [0 .. n-1], symmetric *)
  origin : int;  (** switch where the alarm fires *)
  region_ttl : int;
  include_clear : bool;
      (** also enumerate a clear_alarm issued at any point after the
          raise — including while raise probes are still in flight *)
  anti_entropy : bool;  (** acks, adverts, repairs, re-advertisement *)
  loss_budget : int;  (** max probes the adversary may destroy per run *)
  max_states : int;  (** exploration cap; hitting it clears [exhausted] *)
}

val default : adj:int list array -> config
(** [origin = 0], [region_ttl] covering the graph, clear included,
    anti-entropy on, loss budget 1, [max_states] 500k. *)

type report = {
  states : int;  (** distinct states reached *)
  transitions : int;  (** transitions applied (edges of the state graph) *)
  terminals : int;  (** quiescent states (no transition enabled) *)
  converged : int;  (** terminal states satisfying convergence *)
  violations : string list;
      (** deduplicated invariant failures; empty = every interleaving
          satisfies every invariant *)
  counterexample : string list option;
      (** action trace reaching the first violation, oldest first *)
  exhausted : bool;
      (** true iff the full state space fit under [max_states] — a
          [false] here means the verdict is incomplete, never silent *)
}

val run : config -> report

val line : int -> int list array
(** [line n]: n switches in a path — the topology where a single lost
    probe strands the longest suffix. *)

val cycle : int -> int list array

val complete : int -> int list array
