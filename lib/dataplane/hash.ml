(* Allocation-free mixed-integer hash for the probabilistic structures.

   The previous scheme, [Hashtbl.hash (key, lane, seed)], boxed a fresh
   3-tuple on every probe — several words per packet across Bloom /
   HashPipe / Sketch lookups — and only inspects the tuple shallowly.
   This is a splitmix64-style finalizer over plain ints: two
   multiply-xorshift rounds, no allocation, full avalanche, and the
   (seed, lane) pair folds into the input so per-epoch salt rotation is
   just a seed swap.

   Constants are the splitmix64 finalizer constants truncated to fit
   OCaml's 63-bit native int; the final [land max_int] keeps results
   non-negative so callers can [mod] by a table size directly. *)

let mix ~seed ~lane key =
  let z = key lxor (seed + (lane * 0x9E3779B9) + 0x3C6EF372) in
  let z = (z lxor (z lsr 30)) * 0x1F85EBCA6B2BD1D in
  let z = (z lxor (z lsr 27)) * 0x2545F4914F6CDD1D in
  (z lxor (z lsr 31)) land max_int

let of_string s = Hashtbl.hash s
