type t = {
  mutable seed : int;
  rows_n : int;
  cols_n : int;
  cells : float array; (* rows * cols, row-major *)
  mutable total : float;
}

let create ?(seed = 0x5bd1e995) ~rows ~cols () =
  assert (rows > 0 && cols > 0);
  { seed; rows_n = rows; cols_n = cols; cells = Array.make (rows * cols) 0.; total = 0. }

let seed t = t.seed

(* Counts added under the old salt stay in their cells: [total],
   [serialize]/[absorb] and index-based arithmetic are unaffected, but
   [estimate] only covers weight added under the *current* salt (a key
   that straddles a rotation has its earlier weight in other cells), so
   detectors reset alongside rotation when point estimates matter. *)
let reseed t seed = t.seed <- seed

let index t row key = (row * t.cols_n) + (Hash.mix ~seed:t.seed ~lane:row key mod t.cols_n)

let add t key w =
  for r = 0 to t.rows_n - 1 do
    let i = index t r key in
    t.cells.(i) <- t.cells.(i) +. w
  done;
  t.total <- t.total +. w

let estimate t key =
  let est = ref infinity in
  for r = 0 to t.rows_n - 1 do
    est := min !est t.cells.(index t r key)
  done;
  if !est = infinity then 0. else !est

let total t = t.total

let reset t =
  Array.fill t.cells 0 (Array.length t.cells) 0.;
  t.total <- 0.

let merge_into ~dst ~src =
  if dst.rows_n <> src.rows_n || dst.cols_n <> src.cols_n || dst.seed <> src.seed then
    invalid_arg "Sketch.merge_into: incompatible sketches";
  Array.iteri (fun i v -> dst.cells.(i) <- dst.cells.(i) +. v) src.cells;
  dst.total <- dst.total +. src.total

let heavy_keys t ~candidates ~threshold =
  List.filter (fun k -> estimate t k >= threshold) candidates

let rows t = t.rows_n
let cols t = t.cols_n

type snapshot = { cells : (int * float) list; total : float }

let serialize (t : t) =
  let out = ref [] in
  Array.iteri (fun i v -> if v <> 0. then out := (i, v) :: !out) t.cells;
  { cells = List.rev !out; total = t.total }

(* [total] travels alongside the cells: summing absorbed cell values into
   [t.total] would count each key [rows] times (every [add] writes [rows]
   cells but bumps [total] once), inflating it by ~[rows]x per transfer. *)
let absorb (t : t) { cells; total } =
  List.iter
    (fun (i, v) ->
      if i >= 0 && i < Array.length t.cells then t.cells.(i) <- t.cells.(i) +. v)
    cells;
  t.total <- t.total +. total
