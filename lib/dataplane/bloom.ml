type t = { mutable seed : int; bits : Bytes.t; nbits : int; hashes : int }

let create ?(seed = 0x01000193) ~bits ~hashes () =
  assert (bits > 0 && hashes > 0);
  { seed; bits = Bytes.make ((bits + 7) / 8) '\000'; nbits = bits; hashes }

let seed t = t.seed

(* Rotating the salt does not clear the bitmap: bits set under the old
   seed keep the no-false-negative guarantee only for keys re-[add]ed
   after the rotation, so callers normally [reset] alongside. *)
let reseed t seed = t.seed <- seed

let bit_index t key h = Hash.mix ~seed:t.seed ~lane:h key mod t.nbits

let set_bit t i =
  let byte = i / 8 and off = i mod 8 in
  Bytes.set t.bits byte (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl off)))

let get_bit t i =
  let byte = i / 8 and off = i mod 8 in
  Char.code (Bytes.get t.bits byte) land (1 lsl off) <> 0

let add t key =
  for h = 0 to t.hashes - 1 do
    set_bit t (bit_index t key h)
  done

let mem t key =
  let rec check h = h >= t.hashes || (get_bit t (bit_index t key h) && check (h + 1)) in
  check 0

let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let count_set_bits t =
  let count = ref 0 in
  for i = 0 to t.nbits - 1 do
    if get_bit t i then incr count
  done;
  !count

let expected_fp_rate t ~inserted =
  let m = float_of_int t.nbits and k = float_of_int t.hashes and n = float_of_int inserted in
  (1. -. exp (-.k *. n /. m)) ** k
