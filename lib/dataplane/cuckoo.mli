(** Cuckoo filter — approximate set membership {e with deletion} (Fan et
    al.), the per-flow tracker of split-proxy SYN defenses. Two candidate
    buckets per key (partial-key cuckoo hashing: the alternate bucket is
    computed from the fingerprint, so relocation never needs the key),
    [slots] fingerprints per bucket, BFS eviction bounded by [max_kicks].

    Failure semantics are exact: {!insert} returning [true] means the key
    is findable until deleted; returning [false] means the table was left
    bit-identical (the eviction path is searched before anything moves).
    That is the contract the oracle-differential suite checks. *)

type t

val create : ?seed:int -> ?slots:int -> ?fp_bits:int -> ?max_kicks:int -> capacity:int ->
  unit -> t
(** A filter sized for at least [capacity] entries ([slots] per bucket,
    default 4; bucket count rounded up to a power of two). [fp_bits]
    (default 12) sets the false-positive/memory trade-off; [max_kicks]
    (default 128) bounds the eviction search. *)

val seed : t -> int
val slots_per_bucket : t -> int
val n_buckets : t -> int

val capacity : t -> int
(** Total fingerprint slots. *)

val insert : t -> int -> bool
(** Add one copy of the key. [false] (and a {!failed_inserts} tick) when no
    eviction chain frees a slot — the filter is unchanged in that case.
    Duplicate inserts occupy additional slots (multiset semantics, capped
    at [2 * slots] copies per key). *)

val member : t -> int -> bool
(** Never a false negative for an inserted-and-not-deleted key; false
    positives at roughly {!expected_fp_rate}. *)

val delete : t -> int -> bool
(** Remove exactly one copy of the key's fingerprint ([false] when
    absent). Only delete keys that were actually inserted — deleting a
    never-inserted key can, with false-positive probability, remove some
    other key's fingerprint (inherent to cuckoo filters). *)

val size : t -> int
(** Occupied table slots. *)

val occupancy : t -> float
(** [size / capacity], in [0,1]. *)

val occupancy_threshold : float
(** Load factor (0.95) below which inserts are expected to succeed; the
    differential suite asserts inserts never fail under it. *)

val failed_inserts : t -> int

val kicks : t -> int
(** Total fingerprint relocations performed by eviction chains. *)

val stash_size : t -> int
(** Fingerprints parked by {!absorb} because both buckets were full —
    checked by {!member}/{!delete} so migration never loses members. *)

val reset : t -> unit

val expected_fp_rate : t -> float
(** Analytic false-positive bound at the current load. *)

val resource : t -> Resource.t
(** Per-entry memory profile: [fp_bits] SRAM bits per slot, two hash
    units, no TCAM — contrast with the per-counter sketches. *)

type snapshot = {
  ck_buckets : int;
  ck_slots : int;
  ck_fp_bits : int;
  ck_seed : int;
  ck_entries : (int * int) list;  (** (bucket, fingerprint) pairs, stash included *)
}
(** The wire format of exact-member state transfer. *)

val serialize : t -> snapshot

val absorb : t -> snapshot -> unit
(** Union-merge a snapshot into this filter: every snapshot fingerprint is
    findable afterwards (unplaceable ones go to the stash) — the
    no-false-negatives-after-migration rule, different from sketch
    merging's component-wise sum. Raises [Invalid_argument] on
    geometry/seed mismatch or out-of-range entries. *)
