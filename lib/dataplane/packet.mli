(** Packets, including the user-defined header types FastFlex relies on:
    utilization probes (congestion-aware rerouting), mode-change probes
    (distributed control), detector synchronization probes, traceroute
    packets (the attacker's reconnaissance and the obfuscator's target),
    and state-transfer chunks (dynamic scaling). *)

(** Attack classes a detector can report in a mode-change probe. *)
type attack_kind = Lfa | Volumetric | Pulsing | Recon | Synflood

val attack_kind_to_string : attack_kind -> string
val all_attack_kinds : attack_kind list

type payload =
  | Data  (** ordinary application bytes *)
  | Ack of { acked : int }  (** transport acknowledgement of sequence [acked] *)
  | Traceroute_probe of { probe_id : int; probe_ttl : int }
  | Traceroute_reply of { probe_id : int; hop : int; responder : int }
      (** [responder] is the (possibly obfuscated) switch that answered *)
  | Util_probe of { dst : int; round : int; max_util : float; hops : int }
      (** Hula/Contra-style probe advertising the best known path toward
          [dst]: the maximum link utilization along it and its hop count;
          [round] orders probe generations so stale metrics are replaced *)
  | Mode_probe of { attack : attack_kind; epoch : int; origin : int; activate : bool;
                    region_ttl : int }
      (** distributed mode-change announcement flooded through a region *)
  | Sync_probe of { origin : int; round : int; entries : (int * float) list }
      (** periodic detector-view synchronization (network-wide detection) *)
  | State_chunk of { xfer_id : int; group : int; index : int; of_group : int; parity : bool;
                     entries : (string * float) list }
      (** one unit of piggybacked state transfer; [parity] chunks carry the
          XOR of their FEC group *)
  | State_ack of { xfer_id : int; group : int }
  | Syn  (** open a TCP connection (consumes a server backlog slot) *)
  | Syn_ack of { cookie : int }
      (** server (or proxy) handshake reply; [cookie] is 0 from a real
          server backlog and a SYN-cookie when a split-proxy booster
          answers statelessly on the server's behalf *)
  | Handshake_ack of { cookie : int }
      (** client's final handshake step, echoing the [Syn_ack] cookie *)
  | Fin  (** connection teardown (frees tracker/server state) *)

type t = {
  uid : int;  (** globally unique packet id *)
  src : int;  (** source host node id *)
  dst : int;  (** destination host node id *)
  flow : int;  (** flow identifier (5-tuple surrogate) *)
  size : int;  (** bytes on the wire *)
  seq : int;  (** per-flow sequence number *)
  payload : payload;
  birth : float;  (** creation time, seconds *)
  mutable ttl : int;
  mutable suspicious : bool;  (** set by detection PPMs, read by mitigation PPMs *)
  mutable tags : (string * float) list;  (** metadata carried between PPMs *)
}

val make :
  ?size:int -> ?seq:int -> ?ttl:int -> ?payload:payload -> src:int -> dst:int -> flow:int ->
  birth:float -> unit -> t
(** Fresh packet with a unique [uid]. Default size 1000 B (64 B for
    non-[Data] payloads), ttl 64, payload [Data]. *)

val control_size : int
(** Wire size of probe/control packets, bytes. *)

val make_data : size:int -> seq:int -> ttl:int -> src:int -> dst:int -> flow:int ->
  birth:float -> t
(** [make] specialized for [Data] payloads with every field supplied: no
    optional-argument [Some] blocks on per-packet sender paths. *)

val make_ack : acked:int -> src:int -> dst:int -> flow:int -> birth:float -> t
(** [make ~size:control_size ~payload:(Ack { acked })] without the option
    blocks — one ack per received data packet makes this a hot path. *)

val make_control : payload:payload -> src:int -> dst:int -> flow:int -> birth:float -> t
(** [make ~payload] with default size/seq/ttl: probe floods (utilization,
    mode, sync) construct thousands of these per simulated second. *)

val created : unit -> int
(** Process-wide count of packets ever constructed — monotone; snapshot it
    around a run to relate per-hop costs to per-packet ones. *)

val is_control : t -> bool
(** True for in-band control-plane payloads (probes, state transfer) —
    transport-level payloads ([Data], [Ack], and the handshake payloads
    [Syn]/[Syn_ack]/[Handshake_ack]/[Fin]) are ordinary traffic. *)

val tag : t -> string -> float -> unit
(** Set (or overwrite) a metadata tag. *)

val tag_value : t -> string -> float option

val pp : Format.formatter -> t -> unit
