(** Count-min sketch — the canonical shareable probabilistic data structure
    of data plane defenses (heavy-hitter detection, DDoS detection). *)

type t

val create : ?seed:int -> rows:int -> cols:int -> unit -> t
(** [rows] independent hash rows of [cols] counters each. Error bound:
    estimates overshoot true counts by at most [e*N/cols] with probability
    [1 - e^-rows] where [N] is the total added weight. *)

val seed : t -> int

val reseed : t -> int -> unit
(** Swap the hash salt (defense against collision-probing adversaries).
    [total], {!serialize}/{!absorb} and {!merge_into} are index-based and
    survive rotation exactly; {!estimate} only sees weight added under
    the current salt, so rotate at epoch boundaries (with {!reset}) when
    point estimates matter. *)

val add : t -> int -> float -> unit
(** [add t key w] adds weight [w] to [key]. *)

val estimate : t -> int -> float
(** Point estimate; never below the true count (no under-estimation). *)

val total : t -> float
(** Total weight added since the last reset. *)

val reset : t -> unit

val merge_into : dst:t -> src:t -> unit
(** Component-wise sum; both sketches must share dimensions and seed
    ([Invalid_argument] otherwise). This is the operation detector
    synchronization probes perform for network-wide detection. *)

val heavy_keys : t -> candidates:int list -> threshold:float -> int list
(** Candidate keys whose estimate passes the threshold. *)

val rows : t -> int
val cols : t -> int

type snapshot = { cells : (int * float) list; total : float }
(** Flat (cell index, value) pairs for non-zero cells plus the source's
    total — the wire format of sync probes and state transfers. The total
    must travel with the cells: it cannot be reconstructed from them
    (each [add] writes [rows] cells but counts once). *)

val serialize : t -> snapshot

val absorb : t -> snapshot -> unit
(** Add a serialized snapshot into this sketch (dimensions must admit the
    indices). A serialize→absorb round trip into an empty sketch of the
    same geometry preserves estimates and [total] exactly. *)
