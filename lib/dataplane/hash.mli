(** Allocation-free salted integer hash shared by the probabilistic
    structures (Bloom, HashPipe, Sketch, registers).

    Replaces [Hashtbl.hash (key, lane, seed)], which allocated a tuple
    per probe. Salting is first-class: changing [seed] re-randomizes
    every lane, which is what per-epoch hash rotation (defense against
    collision-probing adversaries) relies on. *)

val mix : seed:int -> lane:int -> int -> int
(** [mix ~seed ~lane key] — deterministic, non-negative, avalanching.
    [lane] separates the independent hash functions of a multi-row /
    multi-stage structure under one seed. *)

val of_string : string -> int
(** Fold a string into a seed (one-time use, e.g. register names). *)
