(** HashPipe (Sivaraman et al., SOSR '17): heavy-hitter detection entirely
    in the data plane with a pipeline of d hash-indexed key/count tables and
    rolling eviction of the minimum. Used by the volumetric-DDoS booster. *)

type t

val create : ?seed:int -> stages:int -> slots_per_stage:int -> unit -> t

val seed : t -> int

val reseed : t -> int -> unit
(** Swap the hash salt. Resident (key, count) entries are kept and still
    counted by the scanning readers ({!heavy_hitters}, {!resident_keys}),
    so rotating mid-epoch preserves per-key epoch totals; {!count}'s
    single-slot probe may miss residencies placed under an older salt.
    Rotation is the defense against collision-probing adversaries: a
    (heavy, mouse) key pair that collides under one salt almost surely
    does not under the next. *)

val update : t -> key:int -> weight:float -> unit
(** Insert/update one packet's key following the HashPipe algorithm:
    always-insert in the first stage, carry the evicted (key,count) through
    later stages replacing smaller counts. *)

val count : t -> key:int -> float
(** Tracked count for [key] (0 if not resident). May under-estimate the
    true frequency (eviction), never over-estimates. *)

val heavy_hitters : t -> threshold:float -> (int * float) list
(** Resident keys with count above threshold, sorted by decreasing count. *)

val reset : t -> unit
val resident_keys : t -> int list
