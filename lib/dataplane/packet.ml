type attack_kind = Lfa | Volumetric | Pulsing | Recon | Synflood

let attack_kind_to_string = function
  | Lfa -> "lfa"
  | Volumetric -> "volumetric"
  | Pulsing -> "pulsing"
  | Recon -> "recon"
  | Synflood -> "synflood"

let all_attack_kinds = [ Lfa; Volumetric; Pulsing; Recon; Synflood ]

type payload =
  | Data
  | Ack of { acked : int }
  | Traceroute_probe of { probe_id : int; probe_ttl : int }
  | Traceroute_reply of { probe_id : int; hop : int; responder : int }
  | Util_probe of { dst : int; round : int; max_util : float; hops : int }
  | Mode_probe of { attack : attack_kind; epoch : int; origin : int; activate : bool;
                    region_ttl : int }
  | Sync_probe of { origin : int; round : int; entries : (int * float) list }
  | State_chunk of { xfer_id : int; group : int; index : int; of_group : int; parity : bool;
                     entries : (string * float) list }
  | State_ack of { xfer_id : int; group : int }
  | Syn
  | Syn_ack of { cookie : int }
  | Handshake_ack of { cookie : int }
  | Fin

type t = {
  uid : int;
  src : int;
  dst : int;
  flow : int;
  size : int;
  seq : int;
  payload : payload;
  birth : float;
  mutable ttl : int;
  mutable suspicious : bool;
  mutable tags : (string * float) list;
}

(* Atomic: packets are created on every shard of the parallel engine
   concurrently; a plain ref would race (and hand out duplicate uids).
   One fetch-and-add per packet *creation* (not per hop) keeps this off
   the per-hop path. *)
let next_uid = Atomic.make 0
let created () = Atomic.get next_uid
let fresh_uid () = 1 + Atomic.fetch_and_add next_uid 1

let control_size = 64

let make ?size ?(seq = 0) ?(ttl = 64) ?(payload = Data) ~src ~dst ~flow ~birth () =
  let size =
    match size with
    | Some s -> s
    | None -> (match payload with Data -> 1000 | _ -> control_size)
  in
  { uid = fresh_uid (); src; dst; flow; size; seq; payload; birth; ttl; suspicious = false;
    tags = [] }

(* Hot-path constructors: [make]'s optional arguments cost a [Some] block
   per supplied argument at every call site (no flambda to elide them), so
   the per-packet senders use these fixed-shape variants. Each is exactly
   [make] with the corresponding arguments — same uid draw, same defaults. *)

let make_data ~size ~seq ~ttl ~src ~dst ~flow ~birth =
  { uid = fresh_uid (); src; dst; flow; size; seq; payload = Data; birth; ttl; suspicious = false;
    tags = [] }

let make_ack ~acked ~src ~dst ~flow ~birth =
  { uid = fresh_uid (); src; dst; flow; size = control_size; seq = 0; payload = Ack { acked };
    birth; ttl = 64; suspicious = false; tags = [] }

let make_control ~payload ~src ~dst ~flow ~birth =
  let size = match payload with Data -> 1000 | _ -> control_size in
  { uid = fresh_uid (); src; dst; flow; size; seq = 0; payload; birth; ttl = 64;
    suspicious = false; tags = [] }

let is_control p =
  match p.payload with Data | Ack _ | Syn | Syn_ack _ | Handshake_ack _ | Fin -> false | _ -> true

let tag p key v =
  (* [List.remove_assoc] copies the list even when the key is absent —
     the common case on the hot path; rebuild only on an actual retag *)
  let rest =
    if List.mem_assoc key p.tags then List.remove_assoc key p.tags else p.tags
  in
  p.tags <- (key, v) :: rest

let tag_value p key = List.assoc_opt key p.tags

let pp fmt p =
  let kind =
    match p.payload with
    | Data -> "data"
    | Ack _ -> "ack"
    | Traceroute_probe _ -> "tr-probe"
    | Traceroute_reply _ -> "tr-reply"
    | Util_probe _ -> "util-probe"
    | Mode_probe _ -> "mode-probe"
    | Sync_probe _ -> "sync-probe"
    | State_chunk _ -> "state-chunk"
    | State_ack _ -> "state-ack"
    | Syn -> "syn"
    | Syn_ack _ -> "syn-ack"
    | Handshake_ack _ -> "hs-ack"
    | Fin -> "fin"
  in
  Format.fprintf fmt "[pkt#%d %s %d->%d flow=%d seq=%d %dB%s]" p.uid kind p.src p.dst p.flow
    p.seq p.size
    (if p.suspicious then " suspicious" else "")
