module Array_reg = struct
  type t = { name : string; name_seed : int; data : float array }

  let create ?(name = "reg") ~slots () =
    assert (slots > 0);
    { name; name_seed = Hash.of_string name; data = Array.make slots 0. }

  let name t = t.name
  let slots t = Array.length t.data

  let index_of t key = Hash.mix ~seed:t.name_seed ~lane:0 key mod Array.length t.data

  let get t key = t.data.(index_of t key)
  let set t key v = t.data.(index_of t key) <- v

  let bump t key delta =
    let i = index_of t key in
    t.data.(i) <- t.data.(i) +. delta;
    t.data.(i)

  let get_slot t i = t.data.(i)
  let set_slot t i v = t.data.(i) <- v

  let reset t = Array.fill t.data 0 (Array.length t.data) 0.

  let fold_slots t ~init ~f =
    let acc = ref init in
    Array.iteri (fun i v -> acc := f !acc i v) t.data;
    !acc

  let dump t =
    fold_slots t ~init:[] ~f:(fun acc i v ->
        if v <> 0. then (Printf.sprintf "%s[%d]" t.name i, v) :: acc else acc)
    |> List.rev

  let load t entries =
    let prefix = t.name ^ "[" in
    List.iter
      (fun (key, v) ->
        if String.length key > String.length prefix
           && String.sub key 0 (String.length prefix) = prefix
        then begin
          let idx_str = String.sub key (String.length prefix)
              (String.length key - String.length prefix - 1)
          in
          match int_of_string_opt idx_str with
          | Some i when i >= 0 && i < Array.length t.data -> t.data.(i) <- v
          | _ -> ()
        end)
      entries
end

module Meter = struct
  type t = {
    mutable rate : float;
    burst : float;
    mutable tokens : float;
    mutable last : float;
  }

  let create ~rate ~burst =
    assert (rate >= 0. && burst > 0.);
    { rate; burst; tokens = burst; last = 0. }

  let refill t ~now =
    if now > t.last then begin
      t.tokens <- min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
      t.last <- now
    end

  let allow t ~now ~bytes =
    refill t ~now;
    if t.tokens >= bytes then begin
      t.tokens <- t.tokens -. bytes;
      true
    end
    else false

  let set_rate t r = t.rate <- r
end
