type slot = { mutable key : int; mutable cnt : float; mutable used : bool }

type t = { mutable seed : int; stages : slot array array }

let create ?(seed = 0x9747b28c) ~stages ~slots_per_stage () =
  assert (stages > 0 && slots_per_stage > 0);
  {
    seed;
    stages =
      Array.init stages (fun _ ->
          Array.init slots_per_stage (fun _ -> { key = 0; cnt = 0.; used = false }));
  }

let seed t = t.seed

(* Resident entries stay where the old salt put them. [heavy_hitters]
   and [resident_keys] scan every slot, so per-key epoch totals survive
   a mid-epoch rotation exactly; only [count]'s point probe (which
   looks where the *current* salt points) can miss pre-rotation
   residencies. *)
let reseed t seed = t.seed <- seed

let index t stage key = Hash.mix ~seed:t.seed ~lane:stage key mod Array.length t.stages.(stage)

let update t ~key ~weight =
  (* Stage 0: always insert; evict the incumbent if different. *)
  let s0 = t.stages.(0).(index t 0 key) in
  let carry =
    if not s0.used then begin
      s0.key <- key;
      s0.cnt <- weight;
      s0.used <- true;
      None
    end
    else if s0.key = key then begin
      s0.cnt <- s0.cnt +. weight;
      None
    end
    else begin
      let evicted = (s0.key, s0.cnt) in
      s0.key <- key;
      s0.cnt <- weight;
      Some evicted
    end
  in
  (* Later stages: the carried key replaces the resident entry iff its count
     is larger; otherwise the carry keeps moving (and is dropped after the
     last stage). *)
  let rec push stage carry =
    match carry with
    | None -> ()
    | Some (k, c) ->
      if stage >= Array.length t.stages then ()
      else begin
        let s = t.stages.(stage).(index t stage k) in
        if not s.used then begin
          s.key <- k;
          s.cnt <- c;
          s.used <- true
        end
        else if s.key = k then s.cnt <- s.cnt +. c
        else if c > s.cnt then begin
          let evicted = (s.key, s.cnt) in
          s.key <- k;
          s.cnt <- c;
          push (stage + 1) (Some evicted)
        end
        else push (stage + 1) carry
      end
  in
  push 1 carry

let count t ~key =
  let total = ref 0. in
  Array.iteri
    (fun si _ ->
      let s = t.stages.(si).(index t si key) in
      if s.used && s.key = key then total := !total +. s.cnt)
    t.stages;
  !total

let heavy_hitters t ~threshold =
  let table = Hashtbl.create 64 in
  Array.iter
    (Array.iter (fun s ->
         if s.used then
           Hashtbl.replace table s.key ((try Hashtbl.find table s.key with Not_found -> 0.) +. s.cnt)))
    t.stages;
  Hashtbl.fold (fun k c acc -> if c >= threshold then (k, c) :: acc else acc) table []
  |> List.sort (fun (_, c1) (_, c2) -> compare c2 c1)

let reset t =
  Array.iter
    (Array.iter (fun s ->
         s.key <- 0;
         s.cnt <- 0.;
         s.used <- false))
    t.stages

let resident_keys t =
  let keys = Hashtbl.create 64 in
  Array.iter (Array.iter (fun s -> if s.used then Hashtbl.replace keys s.key ())) t.stages;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
