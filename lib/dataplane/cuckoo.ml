(* Cuckoo filter (Fan et al., CoNEXT'14): approximate set membership with
   deletion — the exact-member tracker CuckooGuard-style SYN defenses keep
   per verified flow. Unlike the sketches, whose cost is per-counter, the
   resource profile here is per-entry: each admitted flow owns one
   fingerprint slot until it is explicitly deleted.

   Eviction is BFS ("kick") based, but the search runs *before* any slot is
   mutated: we look for a chain of relocations ending in a free slot, apply
   it back-to-front (every move lands in a slot just vacated), and only then
   place the new fingerprint. A failed insert therefore leaves the table
   bit-identical — no fingerprint is ever orphaned mid-kick — which is the
   property the oracle-differential suite pins down (insert returned true
   iff the key is findable, false iff nothing changed). *)

type t = {
  seed : int;
  n_buckets : int;  (* power of two, so the alt-bucket XOR stays in range *)
  slots : int;
  fp_bits : int;
  max_kicks : int;
  table : int array;  (* n_buckets * slots; 0 = empty, else fp in [1, 2^fp_bits) *)
  mutable occupied : int;
  mutable failed_inserts : int;
  mutable kicks : int;
  (* Homeless fingerprints from [absorb] (migration must never manufacture
     a false negative, even into a full table); never fed by [insert]. *)
  mutable stash : (int * int) list;
}

let occupancy_threshold = 0.95

let rec pow2_ge n k = if k >= n then k else pow2_ge n (2 * k)

let create ?(seed = 0xC0C0) ?(slots = 4) ?(fp_bits = 12) ?(max_kicks = 128) ~capacity () =
  if capacity <= 0 then invalid_arg "Cuckoo.create: capacity must be positive";
  if fp_bits < 2 || fp_bits > 30 then invalid_arg "Cuckoo.create: fp_bits out of range";
  let n_buckets = pow2_ge ((capacity + slots - 1) / slots) 1 in
  {
    seed;
    n_buckets;
    slots;
    fp_bits;
    max_kicks;
    table = Array.make (n_buckets * slots) 0;
    occupied = 0;
    failed_inserts = 0;
    kicks = 0;
    stash = [];
  }

let seed t = t.seed
let slots_per_bucket t = t.slots
let n_buckets t = t.n_buckets
let capacity t = t.n_buckets * t.slots
let size t = t.occupied
let stash_size t = List.length t.stash
let failed_inserts t = t.failed_inserts
let kicks t = t.kicks
let occupancy t = float_of_int t.occupied /. float_of_int (t.n_buckets * t.slots)

(* fingerprint in [1, 2^fp_bits): 0 is the empty-slot marker *)
let fingerprint t key = 1 + (Hash.mix ~seed:t.seed ~lane:0 key mod ((1 lsl t.fp_bits) - 1))

let bucket_of_key t key = Hash.mix ~seed:t.seed ~lane:1 key land (t.n_buckets - 1)

(* Partial-key cuckoo hashing: the alternate bucket is derivable from the
   fingerprint alone, so relocation never needs the original key. XOR with
   a hash of the fingerprint is an involution: alt (alt b fp) fp = b. *)
let alt_bucket t b fp = b lxor (Hash.mix ~seed:t.seed ~lane:2 fp land (t.n_buckets - 1))

let free_slot_in t b =
  let base = b * t.slots in
  let rec go s =
    if s >= t.slots then -1 else if t.table.(base + s) = 0 then base + s else go (s + 1)
  in
  go 0

let bucket_has t b fp =
  let base = b * t.slots in
  let rec go s =
    if s >= t.slots then false
    else if t.table.(base + s) = fp then true
    else go (s + 1)
  in
  go 0

let member t key =
  let fp = fingerprint t key in
  let b1 = bucket_of_key t key in
  let b2 = alt_bucket t b1 fp in
  bucket_has t b1 fp || bucket_has t b2 fp
  || List.exists (fun (b, f) -> f = fp && (b = b1 || b = b2)) t.stash

(* BFS over relocation chains: a node is a table cell; expanding cell [c]
   means "the fingerprint in [c] could move to its alternate bucket".
   [parent] remembers the cell each discovered free slot was reached from,
   so the chain replays back-to-front. The frontier is bounded by
   [max_kicks] expansions, which bounds both search work and chain
   length. *)
let find_eviction_path t b1 b2 =
  let parent = Hashtbl.create 16 in
  let q = Queue.create () in
  let seed_bucket b =
    let base = b * t.slots in
    for s = 0 to t.slots - 1 do
      let c = base + s in
      if not (Hashtbl.mem parent c) then begin
        Hashtbl.replace parent c (-1);
        Queue.add c q
      end
    done
  in
  seed_bucket b1;
  if b2 <> b1 then seed_bucket b2;
  let expansions = ref 0 in
  let found = ref (-1) in
  while !found < 0 && !expansions < t.max_kicks && not (Queue.is_empty q) do
    let c = Queue.pop q in
    incr expansions;
    let fp = t.table.(c) in
    (* a free seed cell means no eviction is needed at all — caller
       handles that before searching, so [fp <> 0] here *)
    let nb = alt_bucket t (c / t.slots) fp in
    let free = free_slot_in t nb in
    if free >= 0 then begin
      if not (Hashtbl.mem parent free) then Hashtbl.replace parent free c;
      found := free
    end
    else begin
      let base = nb * t.slots in
      for s = 0 to t.slots - 1 do
        let c' = base + s in
        if not (Hashtbl.mem parent c') then begin
          Hashtbl.replace parent c' c;
          Queue.add c' q
        end
      done
    end
  done;
  if !found < 0 then None
  else begin
    (* walk back to a seed cell, collecting the chain free-end first *)
    let rec chain c acc = if c < 0 then acc else chain (Hashtbl.find parent c) (c :: acc) in
    Some (chain !found [])
  end

(* Apply a relocation chain [seed; ...; free]: moving back-to-front, each
   cell's fingerprint hops to the next cell in the chain, which is free by
   induction (the last is free by construction, earlier ones were just
   vacated). Finishes with the seed cell empty. *)
let apply_chain t chain =
  let arr = Array.of_list chain in
  for i = Array.length arr - 2 downto 0 do
    t.table.(arr.(i + 1)) <- t.table.(arr.(i));
    t.table.(arr.(i)) <- 0;
    t.kicks <- t.kicks + 1
  done;
  arr.(0)

let place t b1 b2 fp =
  let c = free_slot_in t b1 in
  let c = if c >= 0 then c else free_slot_in t b2 in
  let c =
    if c >= 0 then c
    else
      match find_eviction_path t b1 b2 with
      | Some chain -> apply_chain t chain
      | None -> -1
  in
  if c < 0 then false
  else begin
    t.table.(c) <- fp;
    t.occupied <- t.occupied + 1;
    true
  end

let insert t key =
  let fp = fingerprint t key in
  let b1 = bucket_of_key t key in
  let b2 = alt_bucket t b1 fp in
  let ok = place t b1 b2 fp in
  if not ok then t.failed_inserts <- t.failed_inserts + 1;
  ok

let remove_from_bucket t b fp =
  let base = b * t.slots in
  let rec go s =
    if s >= t.slots then false
    else if t.table.(base + s) = fp then begin
      t.table.(base + s) <- 0;
      t.occupied <- t.occupied - 1;
      true
    end
    else go (s + 1)
  in
  go 0

let remove_from_stash t b1 b2 fp =
  let rec go acc = function
    | [] -> None
    | (b, f) :: rest when f = fp && (b = b1 || b = b2) -> Some (List.rev_append acc rest)
    | e :: rest -> go (e :: acc) rest
  in
  match go [] t.stash with
  | Some stash ->
    t.stash <- stash;
    true
  | None -> false

let delete t key =
  let fp = fingerprint t key in
  let b1 = bucket_of_key t key in
  let b2 = alt_bucket t b1 fp in
  remove_from_bucket t b1 fp || remove_from_bucket t b2 fp || remove_from_stash t b1 b2 fp

let reset t =
  Array.fill t.table 0 (Array.length t.table) 0;
  t.occupied <- 0;
  t.failed_inserts <- 0;
  t.kicks <- 0;
  t.stash <- []

(* With load factor a, a negative lookup compares against 2*slots*a
   occupied slots on average, each matching with probability 1/(2^f - 1). *)
let expected_fp_rate t =
  let per_slot = 1. /. float_of_int ((1 lsl t.fp_bits) - 1) in
  let compared = 2. *. float_of_int t.slots *. occupancy t in
  1. -. ((1. -. per_slot) ** compared)

(* Per-entry memory is the defining cost: fp_bits per slot of SRAM, two
   hash lanes (bucket + fingerprint), and the read-modify-write ALUs of
   the insert path. TCAM-free. *)
let resource t =
  Resource.make ~stages:2.
    ~sram_kb:(float_of_int (t.n_buckets * t.slots * t.fp_bits) /. 8. /. 1024.)
    ~alus:2. ~hash_units:2. ()

type snapshot = {
  ck_buckets : int;
  ck_slots : int;
  ck_fp_bits : int;
  ck_seed : int;
  ck_entries : (int * int) list;  (** (bucket, fingerprint) pairs, stash included *)
}

let serialize t =
  let entries = ref t.stash in
  for b = t.n_buckets - 1 downto 0 do
    let base = b * t.slots in
    for s = t.slots - 1 downto 0 do
      let fp = t.table.(base + s) in
      if fp <> 0 then entries := (b, fp) :: !entries
    done
  done;
  { ck_buckets = t.n_buckets; ck_slots = t.slots; ck_fp_bits = t.fp_bits; ck_seed = t.seed;
    ck_entries = !entries }

(* Union semantics for migration: every fingerprint of the snapshot must be
   findable afterwards — an entry that cannot be placed (both buckets full
   even after eviction search) goes to the stash rather than being dropped.
   Geometry and seed must match, otherwise (bucket, fingerprint) pairs are
   meaningless in this table. *)
let absorb t snap =
  if snap.ck_buckets <> t.n_buckets || snap.ck_slots <> t.slots
     || snap.ck_fp_bits <> t.fp_bits || snap.ck_seed <> t.seed
  then invalid_arg "Cuckoo.absorb: geometry/seed mismatch";
  List.iter
    (fun (b, fp) ->
      if b < 0 || b >= t.n_buckets || fp <= 0 || fp >= 1 lsl t.fp_bits then
        invalid_arg "Cuckoo.absorb: entry out of range";
      let b2 = alt_bucket t b fp in
      if not (place t b b2 fp) then t.stash <- (b, fp) :: t.stash)
    snap.ck_entries
