(** Bloom filter — shareable membership structure (e.g. suspicious-flow
    sets, seen-flow filters). No false negatives; tunable false positives. *)

type t

val create : ?seed:int -> bits:int -> hashes:int -> unit -> t

val seed : t -> int

val reseed : t -> int -> unit
(** Swap the hash salt (defense against collision-probing adversaries).
    Membership answers for keys added under the previous salt become
    arbitrary; pair with {!reset} unless the stale window is acceptable. *)

val add : t -> int -> unit
val mem : t -> int -> bool
val reset : t -> unit
val count_set_bits : t -> int

val expected_fp_rate : t -> inserted:int -> float
(** Analytic false-positive probability after [inserted] distinct keys. *)
