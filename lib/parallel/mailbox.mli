(** Single-producer/single-consumer mailbox for cross-shard packet
    arrivals — one per ordered shard pair.

    The producing shard's net posts boundary-crossing transmissions here
    ({!Ff_netsim.Net.set_shard_hook}); the owning shard drains between
    windows and schedules the arrivals into its own engine. Pushes are
    allocation-free while the ring has room; a full ring spills to a list
    (counted, FIFO-restored at drain) rather than blocking the producer
    mid-window. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 4096) must be a power of two; it bounds the
    allocation-free burst per window, not correctness. *)

val push : t -> at:float -> to_node:int -> from_node:int -> Ff_dataplane.Packet.t -> unit
(** Producer side only — single producer per mailbox. *)

val drain :
  t ->
  (at:float -> to_node:int -> from_node:int -> idx:int -> Ff_dataplane.Packet.t -> unit) ->
  int
(** Consumer side: invoke the callback on every queued message in push
    order ([idx] counts from 0 within this drain — the third key of the
    cross-shard tie rule), release the slots, and return the count. Must
    not run concurrently with {!push} on the same mailbox; the engine's
    barrier schedule guarantees that. *)

val overflowed : t -> int
(** Messages that missed the ring since creation (delivered anyway, via
    the spill list). A persistently nonzero value means the capacity is
    undersized for the window traffic. *)

val is_empty : t -> bool
