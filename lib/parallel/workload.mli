(** Deterministic CBR traffic scenarios for the parallel engine: the
    workload the perf benchmark, the CLI [parallel] command and the
    differential tests share.

    Every host sends one constant-rate flow to the host half the host list
    away (cross-pod in a fat tree); per-destination BFS route trees are
    precomputed once and installed identically on every shard's net. Flow
    start offsets are staggered so that no two distinct events in the run
    fall at exactly equal times — the one situation where a sharded run
    may legitimately order differently from a sequential one. *)

type t

type counters = {
  delivered : int array;  (** packets delivered, per flow slot *)
  time_sum : float array;
      (** sum of delivery timestamps per slot — a positional checksum:
          equal sums + equal counts means equal delivery schedules for
          any physically plausible schedule difference *)
}

val make :
  ?rate_pps:float -> ?packet_size:int -> ?duration:float -> Ff_topology.Topology.t -> t
(** Defaults: 2000 packets/s per flow, 1000 B packets, senders stop at
    0.5 s; the run extends 50 ms past [duration] to drain in-flight
    packets. Raises [Invalid_argument] with fewer than two hosts. *)

val fat_tree : ?k:int -> ?rate_pps:float -> ?packet_size:int -> ?duration:float -> unit -> t
(** The benchmark scenario: [make] over [Topology.fat_tree] (default
    [k = 8]: 128 hosts, 80 switches). *)

val n_flows : t -> int

val topo : t -> Ff_topology.Topology.t

val expected_sends : t -> int
(** Packets the senders will emit in total (rate x duration x flows). *)

val until : t -> float

val fresh_counters : t -> counters

val setup : t -> counters -> Ff_netsim.Net.t array -> unit
(** Install routes on every net, then start each flow on the net owning
    its source host and register a counting receiver on the net owning its
    destination — exactly the shape {!Psim.run}'s [setup] expects
    (partially applied: [setup t counters]). Works unchanged on a
    single-element array for unsharded runs. *)

val install_routes : t -> Ff_netsim.Net.t -> unit

val run_reference : t -> counters * Ff_netsim.Net.t
(** Plain single-engine run of the same scenario (fresh engine, ambient
    observability detached): the sequential baseline for differential
    comparison and speedup measurement. *)

val total_delivered : counters -> int
