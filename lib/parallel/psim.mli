(** Sharded conservative parallel simulation (bounded-window PDES).

    The topology is partitioned into mode-change regions
    ({!Ff_modes.Regions}); each shard owns one region and runs its own
    {!Ff_netsim.Engine} over its own full-topology {!Ff_netsim.Net} copy
    (node ids and routing tables stay globally indexed; only owned nodes'
    state is ever exercised). Shards advance in lockstep windows bounded
    by the conservative lookahead — the minimum propagation delay of any
    cross-region link — and exchange boundary-crossing packet arrivals
    through per-shard-pair SPSC mailboxes between windows.

    {b Determinism.} Results are a pure function of (topology, setup,
    shard count): cross-shard arrivals are scheduled under the global
    [(time, source shard, push index)] tie rule, so repeated runs — and
    the {!Domains} and {!Sequential} modes — produce bit-identical packet,
    drop and event counts. Agreement with a plain single-engine run
    additionally requires the workload not to schedule distinct events at
    exactly equal times on the same state (the differential test
    workloads stagger flow start offsets for this reason). *)

type mode =
  | Domains  (** one OCaml domain per shard (true parallelism) *)
  | Sequential
      (** the identical windowed algorithm, cooperatively on the calling
          domain — the fallback when cores < shards, and the reference the
          differential tests compare [Domains] against *)
  | Auto
      (** [Domains] when [Domain.recommended_domain_count () >= shards],
          else [Sequential] *)

type shard = { id : int; engine : Ff_netsim.Engine.t; net : Ff_netsim.Net.t }

type result = {
  shards : shard array;  (** post-run views, for counter extraction *)
  shard_of : int array;  (** node id -> owning shard *)
  mode_used : mode;  (** [Domains] or [Sequential], never [Auto] *)
  windows : int;  (** synchronization rounds executed *)
  exchanged : int;  (** cross-shard messages delivered *)
  events : int;  (** total engine events across shards *)
  alloc_bytes : float;
      (** bytes allocated during the run, summed over the participating
          domains (per-domain GC counters, measured on each domain) *)
  lookahead : float;  (** the conservative window bound used *)
}

val run :
  ?mode:mode ->
  shards:int ->
  topo:Ff_topology.Topology.t ->
  setup:(Ff_netsim.Net.t array -> unit) ->
  until:float ->
  unit ->
  result
(** Partition, build one engine+net per shard, run [setup] on the calling
    domain (no worker is live yet — install routes on every net, but
    register receivers and start flows only on the net owning the relevant
    host, see {!Ff_netsim.Net.owns}), then simulate to [until] (inclusive,
    matching [Engine.run]). Shard nets are created with ambient
    trace/metrics detached — attach per-shard sinks in [setup] if needed.
    With [shards = 1] this degenerates to a windowless single-engine run.
    An exception in any worker poisons the barrier, unwinds every domain,
    and re-raises on the caller. *)

val total_tx : result -> int
(** Per-hop transmissions summed across shards; each directed link is
    owned (and counted) by exactly one shard. *)

val drops_by_reason : result -> (string * int) list
(** Merged across shards, sorted by reason. *)

val link_tx_packets : result -> from_:int -> to_:int -> int
(** Reads the counter from the shard owning the sending node. *)
