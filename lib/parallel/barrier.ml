(* Sense-reversing barrier with a spin-then-block wait.

   The parallel engine crosses a barrier three times per window, so the
   common case (all domains arrive within microseconds of each other)
   should stay in user space: arrivals spin on the atomic sense flag for a
   bounded number of [Domain.cpu_relax] iterations. When the machine has
   fewer cores than shards — or a shard's window is genuinely long — the
   spin would burn a scheduling quantum per laggard, so after the bound the
   waiter falls back to a condition variable. The last arrival always
   broadcasts; sleepers and spinners both observe the flipped sense. *)

exception Poisoned

type t = {
  parties : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  poisoned : bool Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
}

let create ~parties =
  if parties < 1 then invalid_arg "Barrier.create: parties < 1";
  {
    parties;
    count = Atomic.make 0;
    sense = Atomic.make false;
    poisoned = Atomic.make false;
    lock = Mutex.create ();
    cond = Condition.create ();
  }

let poison t =
  Atomic.set t.poisoned true;
  Mutex.lock t.lock;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let spin_bound = 2_000

let wait t =
  if t.parties > 1 then begin
    if Atomic.get t.poisoned then raise Poisoned;
    let my_sense = not (Atomic.get t.sense) in
    if Atomic.fetch_and_add t.count 1 = t.parties - 1 then begin
      (* last arrival: reset and release the cohort. The sense flip happens
         under the lock so a waiter cannot check the flag, decide to sleep,
         and miss the broadcast in between. *)
      Atomic.set t.count 0;
      Mutex.lock t.lock;
      Atomic.set t.sense my_sense;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock
    end
    else begin
      let spins = ref 0 in
      while
        Atomic.get t.sense <> my_sense
        && (not (Atomic.get t.poisoned))
        && !spins < spin_bound
      do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get t.sense <> my_sense then begin
        Mutex.lock t.lock;
        let rec sleep () =
          if Atomic.get t.poisoned then begin
            Mutex.unlock t.lock;
            raise Poisoned
          end
          else if Atomic.get t.sense <> my_sense then begin
            Condition.wait t.cond t.lock;
            sleep ()
          end
          else Mutex.unlock t.lock
        in
        sleep ()
      end;
      if Atomic.get t.poisoned then raise Poisoned
    end
  end
