module Topology = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow

(* A deterministic CBR scenario over an arbitrary topology, shared by the
   perf benchmark, the CLI and the differential tests. Every host sends
   one constant-rate flow to a partner host across the topology; route
   trees are computed once per destination (one BFS each, not one per
   pair) and installed identically on every net copy.

   Flow start offsets are staggered by an interval incommensurate with
   the sending period so no two distinct events ever fall at exactly the
   same instant: same-time ties between a cross-shard arrival and a local
   event are the one case where the sharded tie rule may order differently
   from a single sequential engine, so the differential workload simply
   avoids creating them. *)

type t = {
  topo : Topology.t;
  pairs : (int * int) array; (* slot -> (src host, dst host) *)
  rate_pps : float;
  packet_size : int;
  duration : float; (* senders stop here *)
  until : float; (* simulate to here (drain slack for in-flight) *)
  route_entries : (int * int * int) list; (* (switch, dst host, next hop) *)
}

type counters = {
  delivered : int array; (* per slot *)
  time_sum : float array; (* sum of delivery times per slot *)
}

(* Per-destination BFS route tree over the switch graph, rooted at the
   destination's access switch. [Topology.neighbors] order makes it a
   pure function of the topology, so every net copy gets identical
   tables. *)
let route_tree topo ~dst ~acc =
  match Topology.neighbors topo dst with
  | [] -> acc (* isolated host: unreachable, no entries *)
  | (asw, _) :: _ ->
    let n = Topology.num_nodes topo in
    let seen = Array.make n false in
    seen.(asw) <- true;
    let q = Queue.create () in
    Queue.add asw q;
    let acc = ref acc in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (peer, _) ->
          if (not seen.(peer)) && (Topology.node topo peer).Topology.kind = Topology.Switch
          then begin
            seen.(peer) <- true;
            (* the packet at [peer] moves toward [u], one hop closer *)
            acc := (peer, dst, u) :: !acc;
            Queue.add peer q
          end)
        (Topology.neighbors topo u)
    done;
    !acc

let make ?(rate_pps = 2_000.) ?(packet_size = 1_000) ?(duration = 0.5) topo =
  let hosts =
    Topology.hosts topo |> List.map (fun (nd : Topology.node) -> nd.Topology.id)
    |> Array.of_list
  in
  let h = Array.length hosts in
  if h < 2 then invalid_arg "Workload.make: need at least two hosts";
  (* partner at half the host list away: in a fat tree that pairs hosts
     across pods, maximizing core (and shard-boundary) crossings *)
  let pairs = Array.init h (fun i -> (hosts.(i), hosts.((i + (h / 2)) mod h))) in
  let dsts = Array.to_list (Array.map snd pairs) |> List.sort_uniq Int.compare in
  let route_entries =
    List.fold_left (fun acc dst -> route_tree topo ~dst ~acc) [] dsts
  in
  {
    topo;
    pairs;
    rate_pps;
    packet_size;
    duration;
    until = duration +. 0.05;
    route_entries;
  }

let fat_tree ?(k = 8) ?rate_pps ?packet_size ?duration () =
  make ?rate_pps ?packet_size ?duration (Topology.fat_tree ~k ())

let n_flows t = Array.length t.pairs
let until t = t.until
let topo t = t.topo

let expected_sends t =
  (* [Cbr] emits at start, start+p, ... while < stop *)
  let per_flow = int_of_float (ceil (t.duration *. t.rate_pps)) in
  Array.length t.pairs * per_flow

let fresh_counters t =
  let n = Array.length t.pairs in
  { delivered = Array.make n 0; time_sum = Array.make n 0. }

let install_routes t net =
  List.iter
    (fun (sw, dst, next_hop) -> Net.set_route net ~sw ~dst ~next_hop)
    t.route_entries

(* 1.7e-5 vs millisecond-scale periods: offsets differences are never an
   integer multiple of any sending period in play, so two flows' events
   never coincide (see the module comment) *)
let start_offset slot = 1e-4 +. (float_of_int slot *. 1.7e-5)

let start t counters nets =
  let owning h =
    let rec go i =
      if i >= Array.length nets then invalid_arg "Workload.start: unowned host"
      else if Net.owns nets.(i) h then nets.(i)
      else go (i + 1)
    in
    go 0
  in
  Array.iteri
    (fun slot (src, dst) ->
      let src_net = owning src in
      let cbr =
        Flow.Cbr.start src_net ~src ~dst ~rate_pps:t.rate_pps
          ~at:(start_offset slot) ~stop:t.duration ~packet_size:t.packet_size ()
      in
      (* deliveries happen on the net owning [dst]; replace whatever
         receiver [Cbr.start] put on the (possibly different) source-side
         copy with a counting one on the owning copy *)
      let dst_net = owning dst in
      Hashtbl.replace (Net.host dst_net dst).Net.receivers (Flow.Cbr.flow_id cbr)
        (fun (_ : Ff_dataplane.Packet.t) ->
          counters.delivered.(slot) <- counters.delivered.(slot) + 1;
          counters.time_sum.(slot) <- counters.time_sum.(slot) +. Net.now dst_net))
    t.pairs

let setup t counters nets =
  Array.iter (fun net -> install_routes t net) nets;
  start t counters nets

(* Plain single-engine reference run (no Psim, no windows): what the
   differential property compares every sharded configuration against. *)
let run_reference t =
  let engine = Engine.create () in
  let net = Net.create engine t.topo in
  Net.attach_obs net None;
  Net.attach_metrics net None;
  let counters = fresh_counters t in
  setup t counters [| net |];
  Engine.run engine ~until:t.until;
  (counters, net)

let total_delivered c = Array.fold_left ( + ) 0 c.delivered
