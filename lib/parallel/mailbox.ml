module Packet = Ff_dataplane.Packet

(* Single-producer/single-consumer ring carrying cross-shard packet
   arrivals, one mailbox per ordered shard pair. The payload columns are
   parallel arrays (unboxed float times, int node ids), mirroring the
   engine's packet lane: a push is four plain stores plus one atomic
   publish, no allocation.

   Memory model: the producer writes the slot columns and then publishes
   by storing [tail]; the consumer reads [tail] (an atomic load, so the
   slot writes happen-before it) and only then the slots. [head] flows the
   other way, licensing slot reuse. The parallel engine additionally
   separates the push phase (inside a window) from the drain phase
   (between barriers), so the ring is never popped while being filled —
   which is what lets [overflow] be a plain field: it is only written by
   the producer during a window and only read/cleared by the consumer
   after the barrier that ends it. *)

let nil : 'a. unit -> 'a = fun () -> Obj.magic 0

type t = {
  mask : int;
  ats : float array;
  tos : int array;
  froms : int array;
  pkts : Packet.t array;
  head : int Atomic.t; (* consumer cursor *)
  tail : int Atomic.t; (* producer cursor *)
  mutable overflow : (float * int * int * Packet.t) list; (* newest first *)
  mutable overflowed : int; (* total messages that missed the ring *)
}

let create ?(capacity = 1 lsl 12) () =
  if capacity < 2 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Mailbox.create: capacity must be a power of two >= 2";
  {
    mask = capacity - 1;
    ats = Array.make capacity 0.;
    tos = Array.make capacity 0;
    froms = Array.make capacity 0;
    pkts = Array.make capacity (nil ());
    head = Atomic.make 0;
    tail = Atomic.make 0;
    overflow = [];
    overflowed = 0;
  }

let push t ~at ~to_node ~from_node pkt =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then begin
    (* ring full: spill to the list. FIFO order is restored at drain time
       (the spill is strictly newer than everything in the ring). *)
    t.overflow <- (at, to_node, from_node, pkt) :: t.overflow;
    t.overflowed <- t.overflowed + 1
  end
  else begin
    let i = tail land t.mask in
    Array.unsafe_set t.ats i at;
    Array.unsafe_set t.tos i to_node;
    Array.unsafe_set t.froms i from_node;
    Array.unsafe_set t.pkts i pkt;
    Atomic.set t.tail (tail + 1)
  end

let drain t f =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  let idx = ref 0 in
  for pos = head to tail - 1 do
    let i = pos land t.mask in
    f ~at:t.ats.(i) ~to_node:t.tos.(i) ~from_node:t.froms.(i) ~idx:!idx t.pkts.(i);
    (* release the packet: a drained mailbox keeps nothing alive *)
    t.pkts.(i) <- nil ();
    incr idx
  done;
  Atomic.set t.head tail;
  if t.overflow <> [] then begin
    List.iter
      (fun (at, to_node, from_node, pkt) ->
        f ~at ~to_node ~from_node ~idx:!idx pkt;
        incr idx)
      (List.rev t.overflow);
    t.overflow <- []
  end;
  !idx

let overflowed t = t.overflowed

let is_empty t =
  Atomic.get t.head = Atomic.get t.tail && t.overflow = []
