(** Reusable sense-reversing barrier for the per-window synchronization of
    {!Psim}. Waits spin briefly (the windows-per-second regime) and then
    block on a condition variable (the oversubscribed regime — more shards
    than cores), so running 4 shards on 1 core degrades to context
    switches, not burned quanta. *)

type t

exception Poisoned
(** Raised out of {!wait} (on every waiting domain, current and future)
    once {!poison} has been called — the abort path when one shard dies
    mid-protocol, so the others unwind instead of waiting forever. *)

val create : parties:int -> t
(** Raises [Invalid_argument] when [parties < 1]. *)

val wait : t -> unit
(** Block until all [parties] domains have called [wait]; then all are
    released and the barrier is immediately reusable for the next round.
    With [parties = 1] this is a no-op. *)

val poison : t -> unit
(** Permanently break the barrier: all current and subsequent [wait]s
    raise {!Poisoned}. Idempotent; safe from any domain. *)
