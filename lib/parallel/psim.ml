module Topology = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Regions = Ff_modes.Regions

type mode = Domains | Sequential | Auto

type shard = { id : int; engine : Engine.t; net : Net.t }

type result = {
  shards : shard array;
  shard_of : int array;
  mode_used : mode;
  windows : int;
  exchanged : int;
  events : int;
  alloc_bytes : float;
  lookahead : float;
}

(* Shared synchronization state. The mutable non-atomic fields are written
   and read in barrier-separated phases only: [next_times.(i)] by shard i
   before barrier B and by the coordinator between B and C; [horizon] and
   [final] by the coordinator between B and C and by everyone after C. The
   barriers create the happens-before edges, so none of these are data
   races. *)
type st = {
  n : int;
  until : float;
  la : float;
  barrier : Barrier.t;
  next_times : float array;
  mail : Mailbox.t array array; (* [src].(dst) *)
  mutable horizon : float;
  mutable final : bool;
  mutable windows : int; (* coordinator only *)
  exchanged : int array; (* per consuming shard *)
  allocs : float array; (* per shard, bytes allocated during its run *)
  errors : exn option array;
}

(* Drain every mailbox addressed to shard [me] and schedule the arrivals
   into its engine under the documented cross-shard tie rule: messages are
   ordered by [(time, source shard, push index)] before scheduling, and
   the engine then assigns its local sequence numbers in that order — so
   same-instant cross-shard arrivals fire in an order that is a pure
   function of the partition, never of domain scheduling. *)
let drain_into st ~me engine =
  let msgs = ref [] in
  let count = ref 0 in
  for src = 0 to st.n - 1 do
    if src <> me then
      count :=
        !count
        + Mailbox.drain st.mail.(src).(me) (fun ~at ~to_node ~from_node ~idx pkt ->
              msgs := (at, src, idx, to_node, from_node, pkt) :: !msgs)
  done;
  if !count > 0 then begin
    let arr = Array.of_list !msgs in
    Array.sort
      (fun (a1, s1, i1, _, _, _) (a2, s2, i2, _, _, _) ->
        let c = Float.compare a1 a2 in
        if c <> 0 then c
        else
          let c = Int.compare s1 s2 in
          if c <> 0 then c else Int.compare i1 i2)
      arr;
    Array.iter
      (fun (at, _, _, to_node, from_node, pkt) ->
        Engine.schedule_packet engine ~at ~to_node ~from_node pkt)
      arr
  end;
  !count

(* One shard's window loop (both modes run exactly this phase sequence):

     drain mailboxes; publish next event time
     --- barrier B ---
     coordinator: t_min := min next_times;
                  final when t_min >= until,
                  else horizon := min (until, t_min + lookahead)
     --- barrier C ---
     final: run inclusively to [until] and stop
     else:  run_window to (exclusive) horizon
     --- barrier A ---  (producers quiescent before anyone drains)

   Conservative correctness: every event executed in a window has time
   >= t_min, and a cross-shard hop adds at least [lookahead] of link
   delay, so every message posted during the window carries a time
   >= t_min + lookahead >= horizon — never inside any shard's window.
   The final round is inclusive like the sequential [Engine.run ~until]:
   events at exactly [until] run, and any messages they post are at
   strictly greater times, which the sequential engine would not execute
   either. *)
let rec worker st (sh : shard) =
  st.exchanged.(sh.id) <- st.exchanged.(sh.id) + drain_into st ~me:sh.id sh.engine;
  st.next_times.(sh.id) <- Engine.next_time sh.engine;
  Barrier.wait st.barrier;
  if sh.id = 0 then begin
    let t_min = Array.fold_left Float.min infinity st.next_times in
    if t_min >= st.until then st.final <- true
    else begin
      st.horizon <- Float.min st.until (t_min +. st.la);
      st.windows <- st.windows + 1
    end
  end;
  Barrier.wait st.barrier;
  if st.final then Engine.run sh.engine ~until:st.until
  else begin
    Engine.run_window sh.engine ~horizon:st.horizon;
    Barrier.wait st.barrier;
    worker st sh
  end

let guarded_worker st sh =
  (* [Gc.allocated_bytes] is per-domain in OCaml 5: the measurement must
     happen on the domain doing the allocating. *)
  let a0 = Gc.allocated_bytes () in
  (try worker st sh with
  | Barrier.Poisoned -> ()
  | e ->
    st.errors.(sh.id) <- Some e;
    Barrier.poison st.barrier);
  st.allocs.(sh.id) <- Gc.allocated_bytes () -. a0

(* Sequential cooperative mode: the same windowed algorithm, every phase
   executed shard-by-shard (ascending id) on the calling domain. Because
   the phase structure, drain order and tie rule are identical, the event
   interleaving — and therefore every counter and delivery time — is
   bit-identical to what the Domains mode produces. This is the fallback
   for machines with fewer cores than shards, and the reference the
   differential tests compare the Domains mode against. *)
let run_sequential st shards =
  let a0 = Gc.allocated_bytes () in
  let continue_ = ref true in
  while !continue_ do
    Array.iter
      (fun sh ->
        st.exchanged.(sh.id) <- st.exchanged.(sh.id) + drain_into st ~me:sh.id sh.engine;
        st.next_times.(sh.id) <- Engine.next_time sh.engine)
      shards;
    let t_min = Array.fold_left Float.min infinity st.next_times in
    if t_min >= st.until then begin
      Array.iter (fun sh -> Engine.run sh.engine ~until:st.until) shards;
      continue_ := false
    end
    else begin
      st.horizon <- Float.min st.until (t_min +. st.la);
      st.windows <- st.windows + 1;
      Array.iter (fun sh -> Engine.run_window sh.engine ~horizon:st.horizon) shards
    end
  done;
  st.allocs.(0) <- Gc.allocated_bytes () -. a0

let run ?(mode = Auto) ~shards:n ~topo ~setup ~until () =
  if until < 0. then invalid_arg "Psim.run: negative until";
  let shard_of = Regions.partition topo ~shards:n in
  let la = if n = 1 then infinity else Regions.lookahead topo ~shard_of in
  let mail = Array.init n (fun _ -> Array.init n (fun _ -> Mailbox.create ())) in
  let shards =
    Array.init n (fun i ->
        let engine = Engine.create () in
        let net = Net.create engine topo in
        (* shard nets never share the caller's ambient trace/metrics —
           those are single-domain structures. Per-shard observability is
           the setup callback's to attach. *)
        Net.attach_obs net None;
        Net.attach_metrics net None;
        if n > 1 then begin
          let owned = Regions.ownership shard_of ~shard:i in
          Net.set_shard_hook net ~owned
            ~post:(fun ~at ~to_node ~from_node pkt ->
              Mailbox.push mail.(i).(shard_of.(to_node)) ~at ~to_node ~from_node pkt)
        end;
        { id = i; engine; net })
  in
  (* scenario setup — route installation, receiver registration, flow
     starts — always runs on the calling domain, before any worker
     spawns: no engine is live yet, so no synchronization is needed *)
  setup (Array.map (fun sh -> sh.net) shards);
  let st =
    {
      n;
      until;
      la;
      barrier = Barrier.create ~parties:n;
      next_times = Array.make n infinity;
      mail;
      horizon = 0.;
      final = false;
      windows = 0;
      exchanged = Array.make n 0;
      allocs = Array.make n 0.;
      errors = Array.make n None;
    }
  in
  let mode_used =
    match mode with
    | _ when n = 1 -> Sequential
    | Sequential -> Sequential
    | Domains -> Domains
    | Auto -> if Domain.recommended_domain_count () >= n then Domains else Sequential
  in
  (match mode_used with
  | Sequential | Auto -> run_sequential st shards
  | Domains ->
    let spawned =
      Array.init (n - 1) (fun j ->
          let sh = shards.(j + 1) in
          Domain.spawn (fun () -> guarded_worker st sh))
    in
    guarded_worker st shards.(0);
    Array.iter Domain.join spawned;
    Array.iter (function Some e -> raise e | None -> ()) st.errors);
  {
    shards;
    shard_of;
    mode_used;
    windows = st.windows;
    exchanged = Array.fold_left ( + ) 0 st.exchanged;
    events = Array.fold_left (fun acc sh -> acc + Engine.steps sh.engine) 0 shards;
    alloc_bytes = Array.fold_left ( +. ) 0. st.allocs;
    lookahead = la;
  }

(* ---------------- result merging ----------------

   Ownership decomposition makes these sums exact, not approximate: a
   directed link's tx/drop counters are only ever touched in the net copy
   of the shard owning its sending node, and a node's drops only in its
   owner's copy, so summing across shards counts each exactly once. *)

let total_tx r =
  Array.fold_left (fun acc sh -> acc + Net.total_tx_packets sh.net) 0 r.shards

let drops_by_reason r =
  let merged = Hashtbl.create 16 in
  Array.iter
    (fun sh ->
      List.iter
        (fun (reason, count) ->
          Hashtbl.replace merged reason
            (count + (try Hashtbl.find merged reason with Not_found -> 0)))
        (Net.drops_by_reason sh.net))
    r.shards;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let link_tx_packets r ~from_ ~to_ =
  (* sender-owned: only the owner of [from_] ever exercised this link *)
  Net.link_tx_packets r.shards.(r.shard_of.(from_)).net ~from_ ~to_
