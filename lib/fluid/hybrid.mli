(** The hybrid fluid/packet flow population.

    A {e member} is a long-lived flow that can be simulated at either
    fidelity: analytically in the {!Fluid} tier while it crosses only
    quiet regions, or packet-by-packet ({!Ff_netsim.Flow.Cbr} /
    {!Ff_netsim.Flow.Tcp}) while its path touches a {e hot} node — one
    inside an attacked / mode-changing / chaos-faulted region. Hot nodes
    are tracked as a per-node counter fed by {!mark_hot}/{!clear_hot} or,
    for the common case, by {!watch_protocol}, which subscribes to the
    mode protocol's applied transitions. Every hot-set change schedules a
    single coalesced re-evaluation sweep at the current instant that
    demotes/promotes the members whose tier no longer matches their path.

    Demotion detaches the member from the fluid tier (banking accrued
    bytes) and starts a real packet flow at the current time; TCP members
    restart from a fresh congestion-window epoch (documented fidelity
    seam). Promotion silences the packet flow but {e retires} its handle
    instead of dropping it — packets still in flight keep landing on the
    retired flow's counter — and re-attaches the fluid flow, so
    {!delivered_bytes} is exactly conserved across any number of
    round-trips.

    Forcing: {!force} [All_packet] makes {!add_flow} call the packet-flow
    constructors directly — same calls, same order, no fluid bookkeeping,
    no extra events — so a forced-packet hybrid run is bit-identical to
    the pre-hybrid engine (a QCheck property in [test_fluid] holds this). *)

type force =
  | Auto  (** fluid while cold, packet while hot (the hybrid proper) *)
  | All_packet  (** bit-identical to the pure packet engine *)
  | All_fluid  (** never demote (fluid-only populations / upper bound) *)

(** Per-member tier policy, for members whose fidelity is a modelling
    choice rather than a function of region state: attack volume launched
    as a fluid aggregate stays [Fluid_only] (the defense sees it through
    link utilization), while a flow under per-packet scrutiny can be
    pinned [Packet_only]. *)
type tier = Tier_auto | Fluid_only | Packet_only

type profile =
  | Cbr of { rate_pps : float; packet_size : int }
  | Tcp of { max_cwnd : float; packet_size : int }

type t
type member

(** [solver]/[full_frac] are passed through to {!Fluid.create}; loss
    coupling ({!Fluid.enable_loss_coupling}) is always installed.
    [demote_budget] caps how many [Tier_auto] members may be concurrently
    demoted to the packet tier (default unlimited): at 10^6-flow scale an
    attack crossing most paths would otherwise flip the population to
    packet level and erase the fluid tier's throughput win. Members denied
    by the budget stay on the fluid tier and are counted in
    {!demote_denied}; [Packet_only] members are never denied. *)
val create :
  ?force:force ->
  ?update_period:float ->
  ?solver:Fluid.solver_mode ->
  ?full_frac:float ->
  ?demote_budget:int ->
  Ff_netsim.Net.t ->
  unit ->
  t
val net : t -> Ff_netsim.Net.t
val fluid : t -> Fluid.t
val force_mode : t -> force

val add_flow :
  t -> src:int -> dst:int -> ?at:float -> ?stop:float -> ?tier:tier ->
  profile -> member
(** Admit a member at time [at] (default now; scheduling is only used when
    [at] is in the future and the member is not forced to packet level).
    [stop] permanently retires the member at that absolute time. *)

val stop_member : t -> member -> unit
(** Permanently retire a member now (delivered bytes stay readable). *)

val delivered_bytes : t -> member -> float
(** Bytes delivered across every fluid span and packet span (including
    retired packet flows), conserved across demote/promote round-trips. *)

val is_demoted : member -> bool
val demotions_of : member -> int

val mark_hot : t -> node:int -> unit
(** Increment a node's hot counter (counters nest: overlapping attacks /
    faults each contribute); schedules a coalesced re-evaluation sweep. *)

val clear_hot : t -> node:int -> unit

val hot_nodes : t -> int list

val watch_protocol : t -> Ff_modes.Protocol.t -> unit
(** Drive the hot set from mode-protocol transitions: a switch is hot
    while at least one attack's modes are active on it. *)

val reevaluate : t -> unit
(** Run the demote/promote sweep synchronously (normally triggered by
    hot-set changes; exposed for tests and manual tier control). *)

(** {2 Accounting} *)

val members : t -> int
val demoted_count : t -> int
(** Members currently at packet level due to demotion (excludes
    [Packet_only]/[All_packet] members). *)

val demoted_peak : t -> int
val demotions : t -> int
val promotions : t -> int

val demote_denied : t -> int
(** Demotions suppressed by the [demote_budget] cap (counting each member
    of a wholesale-denied path class). The denial is sticky until the
    member's class next changes hotness — freed budget is not
    retroactively applied. *)

val demoted_fraction : t -> float
(** [demoted_count / members] (0. when empty). *)

val total_delivered_bytes : t -> float
(** Sum of {!delivered_bytes} over every member (O(members)). *)

val delivered_probe : t -> Ff_netsim.Monitor.probe
(** A {!Ff_netsim.Monitor.counter_probe} over {!total_delivered_bytes} —
    plugs the whole hybrid population into the goodput monitors. *)
