module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Flow = Ff_netsim.Flow
module Monitor = Ff_netsim.Monitor
module Event = Ff_obs.Event
module Protocol = Ff_modes.Protocol

type force = Auto | All_packet | All_fluid
type tier = Tier_auto | Fluid_only | Packet_only

type profile =
  | Cbr of { rate_pps : float; packet_size : int }
  | Tcp of { max_cwnd : float; packet_size : int }

type pflow = Pcbr of Flow.Cbr.t | Ptcp of Flow.Tcp.t

type member = {
  m_src : int;
  m_dst : int;
  m_profile : profile;
  m_stop : float option;
  m_tier : tier;
  mutable m_fluid : Fluid.flow option;
  mutable m_packet : pflow option;
  mutable m_retired : pflow list;
  mutable m_demoted : bool;
  mutable m_demotions : int;
  mutable m_done : bool;
}

(* Members sharing a fluid path class live in one bucket: they share a
   route, so they demote and promote together, and the reevaluation sweep
   can test hotness once per class instead of once per member. *)
type bucket = {
  b_cls : int;
  mutable b_members : member list;
  mutable b_size : int;
  mutable b_rep : Fluid.flow;  (* any member's flow: path lookups *)
  mutable b_hot : bool;
  mutable b_demoted : int;
}

type t = {
  net : Net.t;
  fl : Fluid.t;
  force : force;
  hot : int array;  (* per-node active-region count (nests) *)
  demote_budget : int;
  buckets : (int, bucket) Hashtbl.t;  (* fluid class id -> bucket *)
  mutable members : member list;
  mutable n_members : int;
  mutable demoted : int;
  mutable demoted_peak : int;
  mutable demotions : int;
  mutable promotions : int;
  mutable demote_denied : int;
  mutable reeval_pending : bool;
  mutable last_hot : int;
}

let create ?(force = Auto) ?update_period ?solver ?full_frac ?demote_budget net
    () =
  let n_nodes =
    1 + List.fold_left max (-1) (Net.switch_ids net @ Net.host_ids net)
  in
  let fl = Fluid.create ?update_period ?solver ?full_frac net () in
  Fluid.enable_loss_coupling fl;
  {
    net;
    fl;
    force;
    hot = Array.make (max 1 n_nodes) 0;
    demote_budget = (match demote_budget with Some b -> b | None -> max_int);
    buckets = Hashtbl.create 256;
    members = [];
    n_members = 0;
    demoted = 0;
    demoted_peak = 0;
    demotions = 0;
    promotions = 0;
    demote_denied = 0;
    reeval_pending = false;
    last_hot = -1;
  }

let net t = t.net
let fluid t = t.fl
let force_mode t = t.force
let members t = t.n_members
let demoted_count t = t.demoted
let demoted_peak t = t.demoted_peak
let demotions t = t.demotions
let promotions t = t.promotions
let demote_denied t = t.demote_denied
let is_demoted m = m.m_demoted
let demotions_of m = m.m_demotions

let demoted_fraction t =
  if t.n_members = 0 then 0.
  else float_of_int t.demoted /. float_of_int t.n_members

let path_rtt t ~src ~dst =
  match Net.current_path t.net ~src ~dst with
  | Some p when List.length p >= 2 ->
    let rec sum acc = function
      | a :: (b :: _ as rest) -> sum (acc +. Net.link_delay t.net ~from_:a ~to_:b) rest
      | _ -> acc
    in
    Float.max 0.001 (2. *. sum 0. p)
  | _ -> 0.01

let fluid_kind t ~src ~dst = function
  | Cbr { rate_pps; packet_size } ->
    Fluid.Constant { rate = rate_pps *. float_of_int packet_size *. 8. }
  | Tcp { max_cwnd; packet_size } ->
    let rtt = path_rtt t ~src ~dst in
    Fluid.Adaptive
      { rtt; max_rate = max_cwnd *. float_of_int packet_size *. 8. /. rtt }

let start_packet t m ~at =
  let pf =
    match m.m_profile with
    | Cbr { rate_pps; packet_size } ->
      Pcbr
        (Flow.Cbr.start t.net ~src:m.m_src ~dst:m.m_dst ~rate_pps ~at
           ?stop:m.m_stop ~packet_size ())
    | Tcp { max_cwnd; packet_size } ->
      Ptcp
        (Flow.Tcp.start t.net ~src:m.m_src ~dst:m.m_dst ~at ?stop:m.m_stop
           ~packet_size ~max_cwnd ())
  in
  m.m_packet <- Some pf

let silence_packet m =
  match m.m_packet with
  | None -> ()
  | Some pf ->
    (match pf with
    | Pcbr c -> Flow.Cbr.stop_now c
    | Ptcp f -> Flow.Tcp.pause f);
    (* retire, don't drop: in-flight packets still land on its counter *)
    m.m_retired <- pf :: m.m_retired;
    m.m_packet <- None

let bucket_demoted t m d =
  match m.m_fluid with
  | Some fl -> (
    match Hashtbl.find_opt t.buckets (Fluid.class_id fl) with
    | Some b -> b.b_demoted <- b.b_demoted + d
    | None -> ())
  | None -> ()

let demote t m =
  match m.m_fluid with
  | Some fl when Fluid.is_attached fl ->
    if m.m_tier = Tier_auto && t.demoted >= t.demote_budget then
      (* over budget: the member stays on the fluid tier at full fidelity's
         expense — counted so scenarios can report the shortfall. Only
         Tier_auto members are deniable; Packet_only is a contract. *)
      t.demote_denied <- t.demote_denied + 1
    else begin
    Fluid.detach t.fl fl;
    start_packet t m ~at:(Net.now t.net);
    m.m_demoted <- true;
    m.m_demotions <- m.m_demotions + 1;
    bucket_demoted t m 1;
    t.demotions <- t.demotions + 1;
    t.demoted <- t.demoted + 1;
    if t.demoted > t.demoted_peak then t.demoted_peak <- t.demoted
    end
  | _ -> ()

let promote t m =
  if m.m_demoted then begin
    silence_packet m;
    (match m.m_fluid with Some fl -> Fluid.attach t.fl fl | None -> ());
    m.m_demoted <- false;
    bucket_demoted t m (-1);
    t.promotions <- t.promotions + 1;
    t.demoted <- t.demoted - 1
  end

let path_hot t fl =
  Fluid.path_crosses fl ~f:(fun n ->
      n >= 0 && n < Array.length t.hot && t.hot.(n) > 0)

let bucket_of t fl =
  let cid = Fluid.class_id fl in
  match Hashtbl.find_opt t.buckets cid with
  | Some b -> b
  | None ->
    let b =
      { b_cls = cid; b_members = []; b_size = 0; b_rep = fl; b_hot = false;
        b_demoted = 0 }
    in
    Hashtbl.add t.buckets cid b;
    b

(* O(classes + members of classes whose hotness flipped): a mode change on
   a handful of switches no longer walks the whole member population. *)
let reevaluate t =
  if t.force = Auto then begin
    Fluid.refresh_paths t.fl;
    let n_dem = ref 0 and n_pro = ref 0 in
    let sweep m hot =
      if (not m.m_done) && m.m_tier = Tier_auto then
        match m.m_fluid with
        | None -> ()
        | Some fl ->
          if hot && Fluid.is_attached fl then begin
            demote t m;
            if m.m_demoted then incr n_dem
          end
          else if (not hot) && m.m_demoted then begin
            promote t m;
            incr n_pro
          end
    in
    Hashtbl.iter
      (fun _ b ->
        let hot = path_hot t b.b_rep in
        (* paths may have changed while hotness didn't: flips and hot
           buckets both rescan, a cold bucket that stayed cold is skipped.
           A hot bucket with nothing demoted is denied wholesale once the
           budget is spent — walking its members to deny them one by one
           made every sweep O(population) at 10^6-flow scale. *)
        if hot || b.b_hot || b.b_demoted > 0 then begin
          if hot && b.b_demoted = 0 && t.demoted >= t.demote_budget then begin
            if not b.b_hot then t.demote_denied <- t.demote_denied + b.b_size
          end
          else List.iter (fun m -> sweep m hot) b.b_members
        end;
        b.b_hot <- hot)
      t.buckets;
    Fluid.recompute t.fl;
    if Net.obs_active t.net then begin
      if !n_dem > 0 then
        Net.obs_emit t.net
          (Event.Fluid_tier { node = t.last_hot; flows = !n_dem; demoted = true });
      if !n_pro > 0 then
        Net.obs_emit t.net
          (Event.Fluid_tier { node = t.last_hot; flows = !n_pro; demoted = false })
    end
  end

let schedule_reeval t =
  if t.force = Auto && not t.reeval_pending then begin
    t.reeval_pending <- true;
    Engine.schedule (Net.engine t.net) ~at:(Net.now t.net) (fun () ->
        t.reeval_pending <- false;
        reevaluate t)
  end

let mark_hot t ~node =
  if node >= 0 && node < Array.length t.hot then begin
    t.hot.(node) <- t.hot.(node) + 1;
    if t.hot.(node) = 1 then begin
      t.last_hot <- node;
      schedule_reeval t
    end
  end

let clear_hot t ~node =
  if node >= 0 && node < Array.length t.hot && t.hot.(node) > 0 then begin
    t.hot.(node) <- t.hot.(node) - 1;
    if t.hot.(node) = 0 then begin
      t.last_hot <- node;
      schedule_reeval t
    end
  end

let hot_nodes t =
  let acc = ref [] in
  Array.iteri (fun i c -> if c > 0 then acc := i :: !acc) t.hot;
  !acc

let watch_protocol t p =
  Protocol.on_transition p (fun ~sw ~attack:_ ~active ->
      if active then mark_hot t ~node:sw else clear_hot t ~node:sw)

let admit t m =
  let fl = Fluid.add t.fl ~src:m.m_src ~dst:m.m_dst
      (fluid_kind t ~src:m.m_src ~dst:m.m_dst m.m_profile)
  in
  m.m_fluid <- Some fl;
  let b = bucket_of t fl in
  b.b_members <- m :: b.b_members;
  b.b_size <- b.b_size + 1;
  b.b_rep <- fl;
  if t.force = Auto && (m.m_tier = Packet_only || (m.m_tier = Tier_auto && path_hot t fl))
  then demote t m

let stop_member t m =
  if not m.m_done then begin
    m.m_done <- true;
    if m.m_demoted then begin
      m.m_demoted <- false;
      bucket_demoted t m (-1);
      t.demoted <- t.demoted - 1
    end;
    silence_packet m;
    match m.m_fluid with Some fl -> Fluid.detach t.fl fl | None -> ()
  end

let add_flow t ~src ~dst ?at ?stop ?(tier = Tier_auto) profile =
  let now = Net.now t.net in
  let at = match at with Some a -> Float.max a now | None -> now in
  let m =
    {
      m_src = src;
      m_dst = dst;
      m_profile = profile;
      m_stop = stop;
      m_tier = tier;
      m_fluid = None;
      m_packet = None;
      m_retired = [];
      m_demoted = false;
      m_demotions = 0;
      m_done = false;
    }
  in
  t.members <- m :: t.members;
  t.n_members <- t.n_members + 1;
  if t.force = All_packet || (t.force = Auto && tier = Packet_only) then
    (* the bit-identity path: exactly the calls a pure packet setup makes,
       in the same order, with no extra scheduled events *)
    start_packet t m ~at
  else begin
    if at <= now then admit t m
    else Engine.schedule (Net.engine t.net) ~at (fun () -> if not m.m_done then admit t m);
    match stop with
    | Some s when s > at ->
      Engine.schedule (Net.engine t.net) ~at:s (fun () -> stop_member t m)
    | _ -> ()
  end;
  m

let pflow_delivered = function
  | Pcbr c -> Flow.Cbr.delivered_bytes c
  | Ptcp f -> Flow.Tcp.delivered_bytes f

let delivered_bytes t m =
  let fluid_part =
    match m.m_fluid with Some fl -> Fluid.delivered_bytes t.fl fl | None -> 0.
  in
  let packet_part =
    List.fold_left
      (fun acc pf -> acc +. pflow_delivered pf)
      (match m.m_packet with Some pf -> pflow_delivered pf | None -> 0.)
      m.m_retired
  in
  fluid_part +. packet_part

let total_delivered_bytes t =
  List.fold_left (fun acc m -> acc +. delivered_bytes t m) 0. t.members

let delivered_probe t = Monitor.counter_probe (fun () -> total_delivered_bytes t)
