module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Event = Ff_obs.Event

type kind =
  | Constant of { rate : float }
  | Adaptive of { rtt : float; max_rate : float }

type clss = {
  c_src : int;
  c_dst : int;
  c_kind : kind;
  mutable c_path : int array;  (* node ids, hosts included; [||] = unroutable *)
  mutable c_members : int;
  mutable c_rate : float;  (* per-flow allocated rate, bits/s *)
  mutable c_cum_bits : float;  (* per-flow delivered-bits integral *)
  mutable c_cap : float;  (* AIMD cap (Adaptive); offered rate (Constant) *)
  mutable c_last_cut : float;
  (* solver scratch *)
  mutable c_frozen : bool;
  mutable c_bound : float;
}

type flow = {
  f_cls : clss;
  mutable f_attached : bool;
  mutable f_base : float;  (* bytes banked from earlier attachment spans *)
  mutable f_join : float;  (* c_cum_bits snapshot at last attach *)
}

type t = {
  net : Net.t;
  period : float;
  mss_bits : float;
  tbl : (int * int * kind, clss) Hashtbl.t;
  mutable attached : int;
  mutable armed : bool;  (* a solve tick is scheduled *)
  mutable last_advance : float;
  mutable last_solve : float;
  mutable delivered_bits : float;
  mutable hop_bits : float;
  mutable rate_events : int;
  mutable loaded : (int * int) list;  (* links carrying fluid load last solve *)
}

let create ?(update_period = 0.25) ?(mss_bits = 12_000.) net () =
  {
    net;
    period = update_period;
    mss_bits;
    tbl = Hashtbl.create 256;
    attached = 0;
    armed = false;
    last_advance = Net.now net;
    last_solve = Net.now net;
    delivered_bits = 0.;
    hop_bits = 0.;
    rate_events = 0;
    loaded = [];
  }

let net t = t.net
let update_period t = t.period
let is_attached f = f.f_attached
let src f = f.f_cls.c_src
let dst f = f.f_cls.c_dst
let path f = Array.to_list f.f_cls.c_path
let rate f = if f.f_attached then f.f_cls.c_rate else 0.
let attached_flows t = t.attached
let classes t = Hashtbl.length t.tbl
let rate_events t = t.rate_events
let hop_bytes t = t.hop_bits /. 8.

let resolve_path t ~src ~dst =
  match Net.current_path t.net ~src ~dst with
  | Some p when List.length p >= 2 -> Array.of_list p
  | _ -> [||]

let advance t =
  let now = Net.now t.net in
  let dt = now -. t.last_advance in
  if dt > 0. then begin
    Hashtbl.iter
      (fun _ c ->
        if c.c_members > 0 && c.c_rate > 0. then begin
          let per_flow = c.c_rate *. dt in
          let agg = per_flow *. float_of_int c.c_members in
          c.c_cum_bits <- c.c_cum_bits +. per_flow;
          t.delivered_bits <- t.delivered_bits +. agg;
          t.hop_bits <-
            t.hop_bits +. (agg *. float_of_int (Array.length c.c_path - 1))
        end)
      t.tbl;
    t.last_advance <- now
  end

let total_delivered_bytes t =
  advance t;
  t.delivered_bits /. 8.

let total_rate t =
  Hashtbl.fold
    (fun _ c acc -> acc +. (c.c_rate *. float_of_int c.c_members))
    t.tbl 0.

let offered_rate t =
  Hashtbl.fold
    (fun _ c acc ->
      let per =
        match c.c_kind with
        | Constant { rate } -> rate
        | Adaptive { max_rate; _ } -> max_rate
      in
      acc +. (per *. float_of_int c.c_members))
    t.tbl 0.

let delivered_bytes t f =
  if f.f_attached then begin
    advance t;
    f.f_base +. ((f.f_cls.c_cum_bits -. f.f_join) /. 8.)
  end
  else f.f_base

(* ---- the max-min solver ------------------------------------------------ *)

type slink = {
  mutable s_rem : float;  (* capacity left for still-unfrozen classes *)
  s_init : float;
  mutable s_w : float;  (* member count of unfrozen classes crossing *)
  mutable s_classes : clss list;
  mutable s_load : float;
}

let solve t =
  let now = Net.now t.net in
  let dt_ai = now -. t.last_solve in
  t.last_solve <- now;
  (* gather active classes; unroutable or empty ones get rate 0 *)
  let active = ref [] in
  Hashtbl.iter
    (fun _ c ->
      if c.c_members > 0 && Array.length c.c_path >= 2 then begin
        (match c.c_kind with
        | Constant { rate } -> c.c_bound <- rate
        | Adaptive { rtt; max_rate } ->
          (* additive increase: one MSS per RTT, each RTT *)
          if dt_ai > 0. then
            c.c_cap <-
              Float.min max_rate (c.c_cap +. (t.mss_bits /. (rtt *. rtt) *. dt_ai));
          c.c_bound <- c.c_cap);
        c.c_frozen <- false;
        active := c :: !active
      end
      else c.c_rate <- 0.)
    t.tbl;
  let acts = Array.of_list !active in
  Array.sort (fun a b -> compare a.c_bound b.c_bound) acts;
  let n = Array.length acts in
  (* per-solve directed-link table: capacity net of measured packet load *)
  let ltbl : (int * int, slink) Hashtbl.t = Hashtbl.create 512 in
  let slink_of from_ to_ =
    match Hashtbl.find_opt ltbl (from_, to_) with
    | Some sl -> sl
    | None ->
      let cap = Net.link_capacity t.net ~from_ ~to_ in
      let avail = Float.max 0. (cap -. Net.link_packet_bps t.net ~from_ ~to_) in
      let sl =
        { s_rem = avail; s_init = avail; s_w = 0.; s_classes = []; s_load = 0. }
      in
      Hashtbl.add ltbl (from_, to_) sl;
      sl
  in
  let iter_hops c f =
    for i = 0 to Array.length c.c_path - 2 do
      f (slink_of c.c_path.(i) c.c_path.(i + 1))
    done
  in
  Array.iter
    (fun c ->
      let w = float_of_int c.c_members in
      iter_hops c (fun sl ->
          sl.s_w <- sl.s_w +. w;
          sl.s_classes <- c :: sl.s_classes))
    acts;
  let links = Hashtbl.fold (fun _ sl acc -> sl :: acc) ltbl [] in
  (* progressive filling: all unfrozen classes share one rising water
     level; each round freezes the classes that hit their bound or cross a
     link that just saturated, so rounds <= distinct bounds + links. *)
  let unfrozen = ref n in
  let level = ref 0. in
  let bi = ref 0 in
  let freeze c r =
    c.c_frozen <- true;
    c.c_rate <- Float.max 0. r;
    decr unfrozen;
    let w = float_of_int c.c_members in
    iter_hops c (fun sl -> sl.s_w <- sl.s_w -. w)
  in
  while !unfrozen > 0 do
    while !bi < n && acts.(!bi).c_frozen do incr bi done;
    let b = if !bi < n then acts.(!bi).c_bound -. !level else infinity in
    let s =
      List.fold_left
        (fun acc sl -> if sl.s_w > 0. then Float.min acc (sl.s_rem /. sl.s_w) else acc)
        infinity links
    in
    let delta = Float.max 0. (Float.min b s) in
    level := !level +. delta;
    List.iter
      (fun sl -> if sl.s_w > 0. then sl.s_rem <- sl.s_rem -. (delta *. sl.s_w))
      links;
    let before = !unfrozen in
    if b <= s then begin
      (* bound(s) reached: freeze every class whose bound is at the level *)
      let continue = ref true in
      while !continue && !bi < n do
        let c = acts.(!bi) in
        if c.c_frozen then incr bi
        else if c.c_bound <= !level +. (1e-9 *. (Float.abs !level +. 1.)) then begin
          freeze c c.c_bound;
          incr bi
        end
        else continue := false
      done
    end
    else
      (* a link saturated: its surviving classes are stuck at the level *)
      List.iter
        (fun sl ->
          if sl.s_w > 0. && sl.s_rem <= 1e-9 *. (sl.s_init +. 1.) then
            List.iter (fun c -> if not c.c_frozen then freeze c !level) sl.s_classes)
        links;
    if !unfrozen = before && !unfrozen > 0 then begin
      (* numerical failsafe: force progress at the bound pointer *)
      while !bi < n && acts.(!bi).c_frozen do incr bi done;
      if !bi < n then freeze acts.(!bi) !level else unfrozen := 0
    end
  done;
  (* AIMD back-off: bottlenecked adaptive classes halve their overshoot
     toward the share, at most once per RTT *)
  Array.iter
    (fun c ->
      match c.c_kind with
      | Adaptive { rtt; _ } ->
        if c.c_rate < c.c_cap *. 0.999 && now -. c.c_last_cut >= rtt then begin
          c.c_cap <-
            Float.max (t.mss_bits /. rtt) (c.c_rate +. (0.5 *. (c.c_cap -. c.c_rate)));
          c.c_last_cut <- now
        end
      | Constant _ -> ())
    acts;
  (* push per-link fluid loads into the packet tier *)
  Array.iter
    (fun c ->
      let load = c.c_rate *. float_of_int c.c_members in
      iter_hops c (fun sl -> sl.s_load <- sl.s_load +. load))
    acts;
  let newly_loaded = ref [] in
  Hashtbl.iter
    (fun (from_, to_) sl ->
      Net.set_fluid_load t.net ~from_ ~to_ sl.s_load;
      if sl.s_load > 0. then newly_loaded := (from_, to_) :: !newly_loaded)
    ltbl;
  List.iter
    (fun (from_, to_) ->
      if not (Hashtbl.mem ltbl (from_, to_)) then
        Net.set_fluid_load t.net ~from_ ~to_ 0.)
    t.loaded;
  t.loaded <- !newly_loaded;
  t.rate_events <- t.rate_events + 1;
  if Net.obs_active t.net then
    Net.obs_emit t.net
      (Event.Fluid_rates
         { flows = t.attached; classes = n; total_bps = total_rate t })

let recompute t =
  advance t;
  solve t

let rec tick t =
  t.armed <- false;
  recompute t;
  if t.attached > 0 then begin
    t.armed <- true;
    Engine.schedule (Net.engine t.net)
      ~at:(Net.now t.net +. t.period)
      (fun () -> tick t)
  end

(* Lazily arm the periodic solve: nothing is ever scheduled while the
   population is empty, so a run that never attaches a fluid flow executes
   the exact event sequence of a fluid-free run (bit-identity). *)
let request_solve t =
  if not t.armed then begin
    t.armed <- true;
    Engine.schedule (Net.engine t.net) ~at:(Net.now t.net) (fun () -> tick t)
  end

let refresh_paths t =
  advance t;
  Hashtbl.iter
    (fun _ c -> c.c_path <- resolve_path t ~src:c.c_src ~dst:c.c_dst)
    t.tbl

let attach t f =
  if not f.f_attached then begin
    advance t;
    f.f_join <- f.f_cls.c_cum_bits;
    f.f_attached <- true;
    f.f_cls.c_members <- f.f_cls.c_members + 1;
    t.attached <- t.attached + 1;
    request_solve t
  end

let detach t f =
  if f.f_attached then begin
    advance t;
    f.f_base <- f.f_base +. ((f.f_cls.c_cum_bits -. f.f_join) /. 8.);
    f.f_attached <- false;
    f.f_cls.c_members <- f.f_cls.c_members - 1;
    t.attached <- t.attached - 1;
    request_solve t
  end

let remove t f = detach t f

let add t ~src ~dst kind =
  let key = (src, dst, kind) in
  let cls =
    match Hashtbl.find_opt t.tbl key with
    | Some c -> c
    | None ->
      let c =
        {
          c_src = src;
          c_dst = dst;
          c_kind = kind;
          c_path = resolve_path t ~src ~dst;
          c_members = 0;
          c_rate = 0.;
          c_cum_bits = 0.;
          c_cap =
            (match kind with
            | Constant { rate } -> rate
            | Adaptive { rtt; max_rate } ->
              (* slow-start-ish initial window: 10 MSS per RTT *)
              Float.min max_rate (10. *. t.mss_bits /. rtt));
          c_last_cut = Net.now t.net;
          c_frozen = false;
          c_bound = 0.;
        }
      in
      Hashtbl.add t.tbl key c;
      c
  in
  let f = { f_cls = cls; f_attached = false; f_base = 0.; f_join = 0. } in
  attach t f;
  f
