module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Event = Ff_obs.Event
module Vec = Ff_util.Vec

type kind =
  | Constant of { rate : float }
  | Adaptive of { rtt : float; max_rate : float }

type solver_mode = Incremental | Always_full

type solver_stats = {
  solves : int;
  skipped : int;
  full_solves : int;
  touched_classes : int;
  seen_classes : int;
  loss_cuts : int;
  max_component : int;
}

type clss = {
  c_id : int;
  c_src : int;
  c_dst : int;
  c_kind : kind;
  mutable c_gen : int;  (* bumped on re-route; stale incidence entries carry old gens *)
  mutable c_path : int array;  (* node ids, hosts included; [||] = unroutable *)
  mutable c_links : int array;  (* directed-link indices along c_path *)
  mutable c_members : int;
  mutable c_rate : float;  (* per-flow allocated rate, bits/s *)
  mutable c_cum_bits : float;  (* per-flow delivered-bits integral *)
  (* Closed-form AIMD cap: cap(t) = min(max_rate, base + slope*(t - t0)).
     Evaluated absolutely at every solve (never accumulated) so a class
     solved lazily produces the same bits as one solved eagerly. *)
  mutable c_cap : float;  (* cap(now) as of the last evaluation *)
  mutable c_cap_base : float;
  mutable c_cap_t0 : float;
  mutable c_last_cut : float;
  mutable c_pending : bool;  (* queued as a dirty seed for the next solve *)
  (* solver scratch, epoch/stamp-guarded so it never needs clearing *)
  mutable c_bound : float;
  mutable c_active : bool;
  mutable c_touch : int;  (* epoch: member of the touched set *)
  mutable c_done : int;  (* epoch: rate assigned this solve *)
  mutable c_comp : int;  (* fill stamp: collected into the current component *)
  mutable c_frozen : int;  (* fill stamp: frozen during the current fill *)
}

type flow = {
  f_cls : clss;
  mutable f_attached : bool;
  mutable f_base : float;  (* bytes banked from earlier attachment spans *)
  mutable f_join : float;  (* c_cum_bits snapshot at last attach *)
}

type t = {
  net : Net.t;
  period : float;
  mss_bits : float;
  mode : solver_mode;
  full_frac : float;
  tbl : (int * int * kind, clss) Hashtbl.t;
  mutable cls : clss array;  (* dense store, index = c_id *)
  mutable n_cls : int;
  nil : clss;  (* growth filler *)
  (* per directed link, dense; all arrays sized Net.n_dirlinks *)
  n_links : int;
  l_inc : Vec.t array;  (* incidence: flat (class id, gen) pairs *)
  l_stale : int array;  (* stale incidence entries, drives compaction *)
  l_has : bool array;  (* ever carried a class (member of links_used) *)
  l_demand : float array;  (* sum of member-weighted bounds crossing *)
  l_avail : float array;  (* capacity net of measured packet bps *)
  l_pkt : float array;  (* last observed packet bps, for drift detection *)
  l_load : float array;  (* fluid load pushed to Net last solve *)
  l_rem : float array;  (* fill scratch: remaining capacity *)
  l_w : float array;  (* fill scratch: unfrozen member weight *)
  l_contended : bool array;  (* demand exceeds avail: a potential bottleneck *)
  l_pending : bool array;
  l_dropped : bool array;
  l_seen : int array;  (* epoch: expanded during the touched closure *)
  l_fill : int array;  (* fill stamp: member of the current component *)
  l_reload : int array;  (* epoch: queued for a load re-push *)
  links_used : Vec.t;
  pending_cls : Vec.t;
  pending_links : Vec.t;
  drop_links : Vec.t;
  touched : Vec.t;
  comp : Vec.t;
  comp_links : Vec.t;
  reload : Vec.t;
  mutable sort_buf : int array;
  mutable epoch : int;
  mutable fill_stamp : int;
  mutable attached : int;
  mutable armed : bool;  (* a solve tick is scheduled *)
  mutable last_advance : float;
  mutable delivered_bits : float;
  mutable hop_bits : float;
  mutable rate_events : int;
  mutable st_solves : int;
  mutable st_skipped : int;
  mutable st_full : int;
  mutable st_touched : int;
  mutable st_seen : int;
  mutable st_loss_cuts : int;
  mutable st_max_comp : int;
}

let nil_class =
  {
    c_id = -1;
    c_src = -1;
    c_dst = -1;
    c_kind = Constant { rate = 0. };
    c_gen = 0;
    c_path = [||];
    c_links = [||];
    c_members = 0;
    c_rate = 0.;
    c_cum_bits = 0.;
    c_cap = 0.;
    c_cap_base = 0.;
    c_cap_t0 = 0.;
    c_last_cut = 0.;
    c_pending = false;
    c_bound = 0.;
    c_active = false;
    c_touch = 0;
    c_done = 0;
    c_comp = 0;
    c_frozen = 0;
  }

let create ?(update_period = 0.25) ?(mss_bits = 12_000.)
    ?(solver = Incremental) ?(full_frac = 0.6) net () =
  let n_links = Net.n_dirlinks net in
  {
    net;
    period = update_period;
    mss_bits;
    mode = solver;
    full_frac;
    tbl = Hashtbl.create 256;
    cls = Array.make 64 nil_class;
    n_cls = 0;
    nil = nil_class;
    n_links;
    l_inc = Array.init n_links (fun _ -> Vec.create ());
    l_stale = Array.make n_links 0;
    l_has = Array.make n_links false;
    l_demand = Array.make n_links 0.;
    l_avail = Array.make n_links 0.;
    l_pkt = Array.make n_links 0.;
    l_load = Array.make n_links 0.;
    l_rem = Array.make n_links 0.;
    l_w = Array.make n_links 0.;
    l_contended = Array.make n_links false;
    l_pending = Array.make n_links false;
    l_dropped = Array.make n_links false;
    l_seen = Array.make n_links 0;
    l_fill = Array.make n_links 0;
    l_reload = Array.make n_links 0;
    links_used = Vec.create ();
    pending_cls = Vec.create ();
    pending_links = Vec.create ();
    drop_links = Vec.create ();
    touched = Vec.create ();
    comp = Vec.create ();
    comp_links = Vec.create ();
    reload = Vec.create ();
    sort_buf = Array.make 64 0;
    epoch = 0;
    fill_stamp = 0;
    attached = 0;
    armed = false;
    last_advance = Net.now net;
    delivered_bits = 0.;
    hop_bits = 0.;
    rate_events = 0;
    st_solves = 0;
    st_skipped = 0;
    st_full = 0;
    st_touched = 0;
    st_seen = 0;
    st_loss_cuts = 0;
    st_max_comp = 0;
  }

let net t = t.net
let update_period t = t.period
let solver t = t.mode
let is_attached f = f.f_attached
let src f = f.f_cls.c_src
let dst f = f.f_cls.c_dst
let path f = Array.to_list f.f_cls.c_path
let class_id f = f.f_cls.c_id
let rate f = if f.f_attached then f.f_cls.c_rate else 0.
let cap f = f.f_cls.c_cap
let attached_flows t = t.attached
let classes t = t.n_cls
let rate_events t = t.rate_events
let hop_bytes t = t.hop_bits /. 8.

let path_crosses f ~f:pred =
  let p = f.f_cls.c_path in
  let n = Array.length p in
  let rec go i = i < n && (pred p.(i) || go (i + 1)) in
  go 0

let solver_stats t =
  {
    solves = t.st_solves;
    skipped = t.st_skipped;
    full_solves = t.st_full;
    touched_classes = t.st_touched;
    seen_classes = t.st_seen;
    loss_cuts = t.st_loss_cuts;
    max_component = t.st_max_comp;
  }

let touched_frac t =
  if t.st_seen = 0 then 0.
  else float_of_int t.st_touched /. float_of_int t.st_seen

let dump_rates t =
  let acc = ref [] in
  for id = t.n_cls - 1 downto 0 do
    let c = t.cls.(id) in
    acc := (id, c.c_rate, c.c_cap) :: !acc
  done;
  !acc

let cap_now t c now =
  match c.c_kind with
  | Constant { rate } -> rate
  | Adaptive { rtt; max_rate } ->
    let v = c.c_cap_base +. (t.mss_bits /. (rtt *. rtt) *. (now -. c.c_cap_t0)) in
    if v > max_rate then max_rate else v

(* ---- dirty-set plumbing ------------------------------------------------ *)

let mark_class_dirty t c =
  if not c.c_pending then begin
    c.c_pending <- true;
    Vec.push t.pending_cls c.c_id
  end

let mark_link_dirty t li =
  if li >= 0 && li < t.n_links && not t.l_pending.(li) then begin
    t.l_pending.(li) <- true;
    Vec.push t.pending_links li
  end

let note_drop t li =
  if li >= 0 && li < t.n_links && not t.l_dropped.(li) then begin
    t.l_dropped.(li) <- true;
    Vec.push t.drop_links li
  end

(* The hook only mutates solver-side flags — it schedules no engine events
   and touches no packet state, so installing it preserves the All_packet
   bit-identity anchor. *)
let enable_loss_coupling t = Net.set_drop_hook t.net (Some (fun li -> note_drop t li))

(* Iterate the live incident classes of a link (stale generations skipped). *)
let iter_inc t li f =
  let inc = t.l_inc.(li) in
  let n = Vec.length inc in
  let j = ref 0 in
  while !j + 1 < n do
    let id = Vec.get inc !j and gen = Vec.get inc (!j + 1) in
    let c = t.cls.(id) in
    if c.c_gen = gen then f c;
    j := !j + 2
  done

(* ---- routing / incidence maintenance ----------------------------------- *)

let link_path t nodes =
  let n = Array.length nodes in
  if n < 2 then [||]
  else begin
    let ls = Array.make (n - 1) (-1) in
    let ok = ref true in
    for i = 0 to n - 2 do
      let li = Net.link_index t.net ~from_:nodes.(i) ~to_:nodes.(i + 1) in
      if li < 0 then ok := false else ls.(i) <- li
    done;
    if !ok then ls else [||]
  end

let resolve_class t c =
  (* retire the old incidence entries and make sure the old links' loads
     get re-pushed even if no live class references them afterwards *)
  Array.iter
    (fun li ->
      t.l_stale.(li) <- t.l_stale.(li) + 1;
      mark_link_dirty t li)
    c.c_links;
  c.c_gen <- c.c_gen + 1;
  let nodes =
    match Net.current_path t.net ~src:c.c_src ~dst:c.c_dst with
    | Some p when List.length p >= 2 -> Array.of_list p
    | _ -> [||]
  in
  let links = link_path t nodes in
  if Array.length links = 0 then begin
    c.c_path <- [||];
    c.c_links <- [||]
  end
  else begin
    c.c_path <- nodes;
    c.c_links <- links;
    Array.iter
      (fun li ->
        if not t.l_has.(li) then begin
          t.l_has.(li) <- true;
          Vec.push t.links_used li
        end;
        let inc = t.l_inc.(li) in
        Vec.push inc c.c_id;
        Vec.push inc c.c_gen;
        (* compact when over half the entries are stale *)
        if t.l_stale.(li) * 4 > Vec.length inc then begin
          Vec.filter_pairs_in_place (fun id gen -> t.cls.(id).c_gen = gen) inc;
          t.l_stale.(li) <- 0
        end)
      links
  end

(* ---- analytic advance -------------------------------------------------- *)

let advance t =
  let now = Net.now t.net in
  let dt = now -. t.last_advance in
  if dt > 0. then begin
    for id = 0 to t.n_cls - 1 do
      let c = t.cls.(id) in
      if c.c_members > 0 && c.c_rate > 0. then begin
        let per_flow = c.c_rate *. dt in
        let agg = per_flow *. float_of_int c.c_members in
        c.c_cum_bits <- c.c_cum_bits +. per_flow;
        t.delivered_bits <- t.delivered_bits +. agg;
        t.hop_bits <-
          t.hop_bits +. (agg *. float_of_int (Array.length c.c_path - 1))
      end
    done;
    t.last_advance <- now
  end

let total_delivered_bytes t =
  advance t;
  t.delivered_bits /. 8.

let total_rate t =
  let acc = ref 0. in
  for id = 0 to t.n_cls - 1 do
    let c = t.cls.(id) in
    acc := !acc +. (c.c_rate *. float_of_int c.c_members)
  done;
  !acc

let offered_rate t =
  let acc = ref 0. in
  for id = 0 to t.n_cls - 1 do
    let c = t.cls.(id) in
    let per =
      match c.c_kind with
      | Constant { rate } -> rate
      | Adaptive { max_rate; _ } -> max_rate
    in
    acc := !acc +. (per *. float_of_int c.c_members)
  done;
  !acc

let delivered_bytes t f =
  if f.f_attached then begin
    advance t;
    f.f_base +. ((f.f_cls.c_cum_bits -. f.f_join) /. 8.)
  end
  else f.f_base

(* ---- the incremental max-min solver ------------------------------------ *)
(*
   The max-min allocation decomposes exactly: a link whose member-weighted
   bound demand fits inside its available capacity can never saturate during
   progressive filling (every class's rate is at most its bound), so only
   "contended" links — demand > avail — act as constraints. Classes crossing
   no contended link take rate = bound outright; the rest split into
   connected components through shared contended links, and each component
   is water-filled independently with its own level.

   Both solver modes run exactly this per-component algorithm; Incremental
   merely skips components with no dirtied input. Because a component solve
   is a pure function of (its class set, bounds, link avails) evaluated in
   a canonical order (entry at the lowest class id, classes sorted by
   (bound, id)), splicing a re-solved component into an untouched global
   solution is bit-identical to re-solving everything.
*)

(* In-place heapsort of sort_buf[0..n-1] by (c_bound, c_id): allocation-free
   and deterministic, unlike sorting a freshly built array per component. *)
let sort_comp t n =
  let a = t.sort_buf in
  let less i j =
    let ci = t.cls.(a.(i)) and cj = t.cls.(a.(j)) in
    ci.c_bound < cj.c_bound || (ci.c_bound = cj.c_bound && ci.c_id < cj.c_id)
  in
  let swap i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  let rec sift i len =
    let l = (2 * i) + 1 in
    if l < len then begin
      let m = if l + 1 < len && less l (l + 1) then l + 1 else l in
      if less i m then begin
        swap i m;
        sift m len
      end
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift i n
  done;
  for len = n - 1 downto 1 do
    swap 0 len;
    sift 0 len
  done

let fill_component t epoch entry now =
  let stamp = t.fill_stamp + 1 in
  t.fill_stamp <- stamp;
  Vec.clear t.comp;
  Vec.clear t.comp_links;
  entry.c_comp <- stamp;
  Vec.push t.comp entry.c_id;
  let qi = ref 0 in
  while !qi < Vec.length t.comp do
    let c = t.cls.(Vec.get t.comp !qi) in
    incr qi;
    Array.iter
      (fun li ->
        if t.l_contended.(li) && t.l_fill.(li) <> stamp then begin
          t.l_fill.(li) <- stamp;
          Vec.push t.comp_links li;
          t.l_rem.(li) <- t.l_avail.(li);
          t.l_w.(li) <- 0.;
          iter_inc t li (fun c2 ->
              if c2.c_active && c2.c_comp <> stamp then begin
                c2.c_comp <- stamp;
                Vec.push t.comp c2.c_id
              end)
        end)
      c.c_links
  done;
  let n = Vec.length t.comp in
  if n > t.st_max_comp then t.st_max_comp <- n;
  if Array.length t.sort_buf < n then t.sort_buf <- Array.make (2 * n) 0;
  for k = 0 to n - 1 do
    t.sort_buf.(k) <- Vec.get t.comp k
  done;
  sort_comp t n;
  let nlc = Vec.length t.comp_links in
  for k = 0 to n - 1 do
    let c = t.cls.(t.sort_buf.(k)) in
    let w = float_of_int c.c_members in
    Array.iter
      (fun li -> if t.l_fill.(li) = stamp then t.l_w.(li) <- t.l_w.(li) +. w)
      c.c_links
  done;
  (* progressive filling: the component's unfrozen classes share one rising
     water level; each round freezes the classes that hit their bound or
     cross a link that just saturated. *)
  let unfrozen = ref n in
  let level = ref 0. in
  let bi = ref 0 in
  let freeze c r =
    c.c_frozen <- stamp;
    c.c_done <- epoch;
    c.c_rate <- Float.max 0. r;
    decr unfrozen;
    let w = float_of_int c.c_members in
    Array.iter
      (fun li -> if t.l_fill.(li) = stamp then t.l_w.(li) <- t.l_w.(li) -. w)
      c.c_links
  in
  while !unfrozen > 0 do
    while !bi < n && t.cls.(t.sort_buf.(!bi)).c_frozen = stamp do
      incr bi
    done;
    let b =
      if !bi < n then t.cls.(t.sort_buf.(!bi)).c_bound -. !level else infinity
    in
    let s = ref infinity in
    for k = 0 to nlc - 1 do
      let li = Vec.get t.comp_links k in
      if t.l_w.(li) > 0. then begin
        let v = t.l_rem.(li) /. t.l_w.(li) in
        if v < !s then s := v
      end
    done;
    let delta = Float.max 0. (Float.min b !s) in
    level := !level +. delta;
    for k = 0 to nlc - 1 do
      let li = Vec.get t.comp_links k in
      if t.l_w.(li) > 0. then t.l_rem.(li) <- t.l_rem.(li) -. (delta *. t.l_w.(li))
    done;
    let before = !unfrozen in
    if b <= !s then begin
      (* bound(s) reached: freeze every class whose bound is at the level *)
      let continue_ = ref true in
      while !continue_ && !bi < n do
        let c = t.cls.(t.sort_buf.(!bi)) in
        if c.c_frozen = stamp then incr bi
        else if c.c_bound <= !level +. (1e-9 *. (Float.abs !level +. 1.)) then begin
          freeze c c.c_bound;
          incr bi
        end
        else continue_ := false
      done
    end
    else
      (* a link saturated: its surviving classes are stuck at the level *)
      for k = 0 to nlc - 1 do
        let li = Vec.get t.comp_links k in
        if t.l_w.(li) > 0. && t.l_rem.(li) <= 1e-9 *. (t.l_avail.(li) +. 1.) then
          iter_inc t li (fun c2 ->
              if c2.c_comp = stamp && c2.c_frozen <> stamp then freeze c2 !level)
      done;
    if !unfrozen = before && !unfrozen > 0 then begin
      (* numerical failsafe: force progress at the bound pointer *)
      while !bi < n && t.cls.(t.sort_buf.(!bi)).c_frozen = stamp do
        incr bi
      done;
      if !bi < n then begin
        freeze t.cls.(t.sort_buf.(!bi)) !level;
        incr bi
      end
      else unfrozen := 0
    end
  done;
  (* AIMD back-off: bottlenecked adaptive classes halve their overshoot
     toward the share, at most once per RTT *)
  for k = 0 to n - 1 do
    let c = t.cls.(t.sort_buf.(k)) in
    match c.c_kind with
    | Adaptive { rtt; _ } ->
      if c.c_rate < c.c_cap *. 0.999 && now -. c.c_last_cut >= rtt then begin
        c.c_cap_base <-
          Float.max (t.mss_bits /. rtt) (c.c_rate +. (0.5 *. (c.c_cap -. c.c_rate)));
        c.c_cap_t0 <- now;
        c.c_last_cut <- now
      end
    | Constant _ -> ()
  done

let solve t =
  let now = Net.now t.net in
  t.rate_events <- t.rate_events + 1;
  let epoch = t.epoch + 1 in
  t.epoch <- epoch;
  (* 1. loss coupling: packet drops since the last solve halve the AIMD cap
     of adaptive classes crossing the dropping link (once per RTT) *)
  let n_drop = Vec.length t.drop_links in
  for k = 0 to n_drop - 1 do
    let li = Vec.get t.drop_links k in
    t.l_dropped.(li) <- false;
    iter_inc t li (fun c ->
        if c.c_members > 0 then
          match c.c_kind with
          | Adaptive { rtt; _ } when now -. c.c_last_cut >= rtt ->
            let cp = cap_now t c now in
            c.c_cap_base <- Float.max (t.mss_bits /. rtt) (0.5 *. cp);
            c.c_cap_t0 <- now;
            c.c_last_cut <- now;
            t.st_loss_cuts <- t.st_loss_cuts + 1;
            mark_class_dirty t c
          | _ -> ())
  done;
  Vec.clear t.drop_links;
  (* 2. class scan: activity, closed-form bounds, volatile seeding. An
     adaptive class whose cap moved since the last solve (ramping — incl.
     the final step onto the max_rate ceiling) or that is overshooting its
     cap (cut pending) has a time-dependent bound, so it seeds the dirty
     set — in both modes, keeping cut times solve-schedule-free. [c_cap]
     holds the previous solve's evaluation, so the comparison is against
     the same reference whether or not the class was touched then. *)
  let active = ref 0 in
  for id = 0 to t.n_cls - 1 do
    let c = t.cls.(id) in
    let act = c.c_members > 0 && Array.length c.c_links > 0 in
    c.c_active <- act;
    if act then begin
      incr active;
      let cp = cap_now t c now in
      let moved = cp <> c.c_cap in
      c.c_cap <- cp;
      c.c_bound <- cp;
      match c.c_kind with
      | Adaptive _ ->
        if moved || c.c_rate < cp *. 0.999 then mark_class_dirty t c
      | Constant _ -> ()
    end
    else if c.c_rate <> 0. then mark_class_dirty t c
  done;
  (* 3. link scan: availability is re-read every solve; packet-rate drift
     dirties the link only when it can move the solution — the link was a
     potential bottleneck before, or the new availability dips under the
     standing demand. A link uncontended on both sides of the drift never
     constrains the filling (load <= demand <= avail), so its crossing
     classes keep their rates; without this gate, background packet noise
     on every link degenerates each pass into a full solve. Demand may be
     one solve stale here; a rise that makes the link contended leaves a
     pending class behind and is caught by the flip scan below. *)
  let nl = Vec.length t.links_used in
  for k = 0 to nl - 1 do
    let li = Vec.get t.links_used k in
    let pkt = Net.link_packet_bps_i t.net li in
    let avail = Float.max 0. (Net.link_capacity_i t.net li -. pkt) in
    t.l_avail.(li) <- avail;
    if pkt <> t.l_pkt.(li) then begin
      t.l_pkt.(li) <- pkt;
      if t.l_contended.(li) || t.l_demand.(li) > avail then mark_link_dirty t li
    end
  done;
  if Vec.length t.pending_cls = 0 && Vec.length t.pending_links = 0 then begin
    (* nothing moved since the last solve: the stored solution is already
       what a full re-solve would produce *)
    t.st_skipped <- t.st_skipped + 1;
    if Net.obs_active t.net then
      Net.obs_emit t.net
        (Event.Fluid_rates
           { flows = t.attached; classes = !active; total_bps = total_rate t })
  end
  else begin
    (* 4. demand pass: only bound/membership/path changes move demand, and
       all of those leave a pending class behind *)
    if Vec.length t.pending_cls > 0 then begin
      for k = 0 to nl - 1 do
        t.l_demand.(Vec.get t.links_used k) <- 0.
      done;
      for id = 0 to t.n_cls - 1 do
        let c = t.cls.(id) in
        if c.c_active then begin
          let d = c.c_bound *. float_of_int c.c_members in
          Array.iter (fun li -> t.l_demand.(li) <- t.l_demand.(li) +. d) c.c_links
        end
      done
    end;
    (* 5. contended flips dirty the link: crossing classes may switch between
       bound-limited and bottleneck-limited *)
    for k = 0 to nl - 1 do
      let li = Vec.get t.links_used k in
      let con = t.l_demand.(li) > t.l_avail.(li) in
      if con <> t.l_contended.(li) then begin
        t.l_contended.(li) <- con;
        mark_link_dirty t li
      end
    done;
    (* 6. touched closure: dirty seeds expand through contended links to
       whole components (a component is re-solved entirely or not at all) *)
    Vec.clear t.touched;
    let touch c =
      if c.c_touch <> epoch then begin
        c.c_touch <- epoch;
        Vec.push t.touched c.c_id
      end
    in
    let np = Vec.length t.pending_cls in
    for k = 0 to np - 1 do
      let c = t.cls.(Vec.get t.pending_cls k) in
      c.c_pending <- false;
      touch c
    done;
    Vec.clear t.pending_cls;
    Vec.clear t.reload;
    let npl = Vec.length t.pending_links in
    for k = 0 to npl - 1 do
      let li = Vec.get t.pending_links k in
      t.l_pending.(li) <- false;
      if t.l_reload.(li) <> epoch then begin
        t.l_reload.(li) <- epoch;
        Vec.push t.reload li
      end;
      iter_inc t li touch
    done;
    Vec.clear t.pending_links;
    let qi = ref 0 in
    while !qi < Vec.length t.touched do
      let c = t.cls.(Vec.get t.touched !qi) in
      incr qi;
      (* expand through the class's links whether or not it is still
         active: a freshly-detached class is dirty precisely because the
         rate it gave back must be re-filled across its old links *)
      Array.iter
        (fun li ->
          if t.l_contended.(li) && t.l_seen.(li) <> epoch then begin
            t.l_seen.(li) <- epoch;
            iter_inc t li touch
          end)
        c.c_links
    done;
    (* fallback: once the dirty region covers most of the population, the
       bookkeeping costs more than it saves *)
    let full =
      t.mode = Always_full
      || float_of_int (Vec.length t.touched)
         > t.full_frac *. float_of_int (max 1 !active)
    in
    if full then begin
      t.st_full <- t.st_full + 1;
      for id = 0 to t.n_cls - 1 do
        let c = t.cls.(id) in
        if (c.c_active || c.c_rate <> 0.) && c.c_touch <> epoch then begin
          c.c_touch <- epoch;
          Vec.push t.touched c.c_id
        end
      done
    end;
    t.st_solves <- t.st_solves + 1;
    t.st_touched <- t.st_touched + Vec.length t.touched;
    t.st_seen <- t.st_seen + !active;
    (* 7. rate assignment: bound-limited classes directly, bottlenecked ones
       by water-filling their component (entered at its lowest class id in
       either mode, so the float-op order is canonical) *)
    for id = 0 to t.n_cls - 1 do
      let c = t.cls.(id) in
      if c.c_touch = epoch then begin
        if c.c_done <> epoch then begin
          if not c.c_active then begin
            c.c_done <- epoch;
            c.c_rate <- 0.
          end
          else begin
            let contended = ref false in
            Array.iter
              (fun li -> if t.l_contended.(li) then contended := true)
              c.c_links;
            if not !contended then begin
              c.c_done <- epoch;
              c.c_rate <- c.c_bound
            end
            else fill_component t epoch c now
          end
        end;
        Array.iter
          (fun li ->
            if t.l_reload.(li) <> epoch then begin
              t.l_reload.(li) <- epoch;
              Vec.push t.reload li
            end)
          c.c_links
      end
    done;
    (* 8. push the affected links' fluid loads into the packet tier; the sum
       runs in incidence order, so a link recomputed from unchanged rates
       reproduces its previous value bit-for-bit *)
    let nr = Vec.length t.reload in
    for k = 0 to nr - 1 do
      let li = Vec.get t.reload k in
      let sum = ref 0. in
      iter_inc t li (fun c ->
          if c.c_members > 0 then
            sum := !sum +. (c.c_rate *. float_of_int c.c_members));
      if !sum <> t.l_load.(li) then begin
        t.l_load.(li) <- !sum;
        Net.set_fluid_load_i t.net li !sum
      end
    done;
    if Net.obs_active t.net then
      Net.obs_emit t.net
        (Event.Fluid_rates
           { flows = t.attached; classes = !active; total_bps = total_rate t })
  end

let recompute t =
  advance t;
  solve t

let rec tick t =
  t.armed <- false;
  recompute t;
  if t.attached > 0 then begin
    t.armed <- true;
    Engine.schedule (Net.engine t.net)
      ~at:(Net.now t.net +. t.period)
      (fun () -> tick t)
  end

(* Lazily arm the periodic solve: nothing is ever scheduled while the
   population is empty, so a run that never attaches a fluid flow executes
   the exact event sequence of a fluid-free run (bit-identity). *)
let arm t =
  if not t.armed then begin
    t.armed <- true;
    Engine.schedule (Net.engine t.net) ~at:(Net.now t.net) (fun () -> tick t)
  end

let refresh_paths t =
  advance t;
  for id = 0 to t.n_cls - 1 do
    let c = t.cls.(id) in
    resolve_class t c;
    mark_class_dirty t c
  done

let attach t f =
  if not f.f_attached then begin
    advance t;
    f.f_join <- f.f_cls.c_cum_bits;
    f.f_attached <- true;
    f.f_cls.c_members <- f.f_cls.c_members + 1;
    t.attached <- t.attached + 1;
    mark_class_dirty t f.f_cls;
    arm t
  end

let detach t f =
  if f.f_attached then begin
    advance t;
    f.f_base <- f.f_base +. ((f.f_cls.c_cum_bits -. f.f_join) /. 8.);
    f.f_attached <- false;
    f.f_cls.c_members <- f.f_cls.c_members - 1;
    t.attached <- t.attached - 1;
    mark_class_dirty t f.f_cls;
    arm t
  end

let remove t f = detach t f

let add t ~src ~dst kind =
  let key = (src, dst, kind) in
  let cls =
    match Hashtbl.find_opt t.tbl key with
    | Some c -> c
    | None ->
      let now = Net.now t.net in
      let id = t.n_cls in
      if id = Array.length t.cls then begin
        let b = Array.make (2 * id) t.nil in
        Array.blit t.cls 0 b 0 id;
        t.cls <- b
      end;
      let c =
        {
          c_id = id;
          c_src = src;
          c_dst = dst;
          c_kind = kind;
          c_gen = 0;
          c_path = [||];
          c_links = [||];
          c_members = 0;
          c_rate = 0.;
          c_cum_bits = 0.;
          c_cap = 0.;
          c_cap_base =
            (match kind with
            | Constant { rate } -> rate
            | Adaptive { rtt; max_rate } ->
              (* slow-start-ish initial window: 10 MSS per RTT *)
              Float.min max_rate (10. *. t.mss_bits /. rtt));
          c_cap_t0 = now;
          c_last_cut = now;
          c_pending = false;
          c_bound = 0.;
          c_active = false;
          c_touch = 0;
          c_done = 0;
          c_comp = 0;
          c_frozen = 0;
        }
      in
      c.c_cap <- c.c_cap_base;
      t.cls.(id) <- c;
      t.n_cls <- id + 1;
      Hashtbl.add t.tbl key c;
      resolve_class t c;
      c
  in
  let f = { f_cls = cls; f_attached = false; f_base = 0.; f_join = 0. } in
  attach t f;
  f

let clear t =
  let nl = Vec.length t.links_used in
  for k = 0 to nl - 1 do
    let li = Vec.get t.links_used k in
    if t.l_load.(li) <> 0. then begin
      t.l_load.(li) <- 0.;
      Net.set_fluid_load_i t.net li 0.
    end;
    t.l_pkt.(li) <- 0.;
    t.l_avail.(li) <- 0.;
    t.l_demand.(li) <- 0.;
    t.l_contended.(li) <- false;
    t.l_pending.(li) <- false;
    t.l_dropped.(li) <- false;
    t.l_has.(li) <- false;
    t.l_stale.(li) <- 0;
    Vec.clear t.l_inc.(li)
  done;
  Vec.clear t.links_used;
  Vec.clear t.pending_cls;
  Vec.clear t.pending_links;
  Vec.clear t.drop_links;
  Vec.clear t.touched;
  Vec.clear t.comp;
  Vec.clear t.comp_links;
  Vec.clear t.reload;
  Hashtbl.reset t.tbl;
  for id = 0 to t.n_cls - 1 do
    t.cls.(id) <- t.nil
  done;
  t.n_cls <- 0;
  t.attached <- 0;
  t.armed <- false;
  t.last_advance <- Net.now t.net;
  t.delivered_bits <- 0.;
  t.hop_bits <- 0.;
  t.rate_events <- 0;
  t.st_solves <- 0;
  t.st_skipped <- 0;
  t.st_full <- 0;
  t.st_touched <- 0;
  t.st_seen <- 0;
  t.st_loss_cuts <- 0;
  t.st_max_comp <- 0
