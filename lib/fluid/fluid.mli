(** Analytic (fluid) flow populations for the hybrid simulation tier.

    Steady-state flows are not simulated packet by packet. Instead they are
    grouped into {e path classes} — flows sharing (src, dst, kind) follow
    the same cached route and receive the same per-flow rate — and the
    whole population advances analytically between {e rate events}: a rate
    event re-solves a progressive max-min filling over the links each
    class crosses, and between events every class accrues delivered bytes
    linearly at its solved rate.

    {b The solver is incremental.} It keeps the bottleneck structure of the
    last solve in dense arrays keyed by directed-link index
    ({!Ff_netsim.Net.link_index}): per-link availability, member-weighted
    bound demand, and a class↔link incidence graph. Max-min decomposes
    exactly along {e contended} links (demand > availability — the only
    links that can saturate during filling): classes crossing no contended
    link take their bound outright, the rest split into connected
    components through shared contended links, each water-filled with its
    own level in a canonical order. A solve therefore re-fills only the
    components reachable from dirtied inputs — membership changes, AIMD cap
    motion, packet-rate drift on a link, re-routes, packet-loss events —
    and splices the result into the untouched global solution {e
    bit-identically} to a from-scratch solve (enforced by a QCheck
    differential property against {!Always_full}). When the dirty region
    covers more than [full_frac] of the active classes, it falls back to a
    full solve; {!solver_stats} reports how much work each path took.

    Coupling with the packet tier is bidirectional:

    - each solve subtracts the measured packet rate
      ({!Ff_netsim.Net.link_packet_bps}) from a link's capacity before
      filling, so packet traffic displaces fluid traffic;
    - the solved per-link fluid load is pushed into the packet engine via
      {!Ff_netsim.Net.set_fluid_load}, where it consumes transmit capacity
      and folds into {!Ff_netsim.Net.utilization}, so detectors and queues
      see fluid floods;
    - with {!enable_loss_coupling}, queue-overflow drops in the packet
      tier cut the AIMD cap of adaptive classes crossing the dropping
      link (multiplicative halving, at most once per RTT).

    Rate semantics: [Constant] classes offer a fixed rate (CBR-like; any
    shortfall under congestion is simply not delivered — fluid "drops"),
    [Adaptive] classes model TCP-class AIMD. The cap is closed-form —
    [cap(t) = min(max_rate, base + (mss/rtt²)·(t − t0))] with [base]/[t0]
    reset on each cut — so its value never depends on how often the solver
    ran, which is what makes lazy (incremental) and eager (full) solving
    agree bitwise.

    Determinism: the population only schedules engine events while at
    least one flow is attached. A simulation that never attaches a fluid
    flow therefore runs the exact same event sequence as one without the
    fluid tier at all — the bit-identity anchor for the hybrid engine. *)

type kind =
  | Constant of { rate : float }  (** offered per-flow rate, bits/s *)
  | Adaptive of { rtt : float; max_rate : float }
      (** AIMD-capped per-flow rate: additive increase one MSS/RTT each
          RTT, multiplicative back-off toward the bottleneck share (or on
          packet loss, see {!enable_loss_coupling}); [max_rate] models the
          receive-window ceiling, bits/s *)

type solver_mode =
  | Incremental
      (** re-fill only the components reachable from dirtied inputs *)
  | Always_full  (** re-fill everything at every solve (the reference) *)

type solver_stats = {
  solves : int;  (** solver passes that had work to do *)
  skipped : int;  (** passes where nothing was dirty (solution kept) *)
  full_solves : int;  (** passes that fell back to (or forced) a full fill *)
  touched_classes : int;  (** cumulative classes re-assigned across solves *)
  seen_classes : int;  (** cumulative active classes across solves *)
  loss_cuts : int;  (** AIMD cuts triggered by packet-tier drops *)
  max_component : int;  (** largest water-filled component *)
}

type t
type flow

val create :
  ?update_period:float ->
  ?mss_bits:float ->
  ?solver:solver_mode ->
  ?full_frac:float ->
  Ff_netsim.Net.t ->
  unit ->
  t
(** [update_period] (default 0.25 s) is the background re-solve period
    that keeps fluid rates coupled to drifting packet-tier load; population
    changes additionally trigger a solve at the time of the change (batched
    per instant). [mss_bits] (default 12_000 = 1500 B) drives the AIMD
    additive-increase slope. [solver] (default {!Incremental}) selects the
    solving strategy — both produce bit-identical rates. [full_frac]
    (default 0.6) is the touched-classes fraction past which an incremental
    pass falls back to a full fill. *)

val net : t -> Ff_netsim.Net.t
val update_period : t -> float
val solver : t -> solver_mode

val add : t -> src:int -> dst:int -> kind -> flow
(** Admit a flow (attached immediately); its path class is created on
    first use and the route resolved from the packet tier's current
    routing state. *)

val remove : t -> flow -> unit
(** Permanently detach; delivered bytes remain readable. *)

val detach : t -> flow -> unit
(** Take the flow out of the fluid population (demotion to packet level).
    Accrued bytes up to now are banked first; no-op if detached. *)

val attach : t -> flow -> unit
(** Re-admit a detached flow (promotion back from packet level); accrual
    restarts from the current instant. No-op if already attached. *)

val is_attached : flow -> bool
val src : flow -> int
val dst : flow -> int

val class_id : flow -> int
(** Dense id of the flow's path class, stable for the population's
    lifetime — the hybrid tier's bucketing key. *)

val path : flow -> int list
(** Cached route of the flow's class, hosts included; [[]] if unroutable.
    Allocates; prefer {!path_crosses} on hot paths. *)

val path_crosses : flow -> f:(int -> bool) -> bool
(** [path_crosses fl ~f] is true when some node on the flow's cached route
    satisfies [f]. Allocation-free. *)

val rate : flow -> float
(** Per-flow allocated rate (bits/s) from the most recent solve; 0. while
    detached. *)

val cap : flow -> float
(** The class's AIMD cap as of the most recent solve ([Adaptive]); the
    offered rate for [Constant] classes. *)

val delivered_bytes : t -> flow -> float
(** Cumulative bytes delivered across all attachment spans, accrued up to
    the current simulation time. *)

val recompute : t -> unit
(** Advance accruals to now and re-solve rates synchronously. Callers that
    batch several population changes at one instant (the hybrid tier's
    demote/promote sweeps) call this once at the end of the batch. *)

val refresh_paths : t -> unit
(** Re-resolve every class's route from the packet tier (after reroutes or
    mode changes). Accruals are advanced first; rates refresh on the next
    solve. *)

val advance : t -> unit
(** Accrue delivered bytes up to now at the current rates (no re-solve). *)

val clear : t -> unit
(** Reset the population for engine reuse (after {!Ff_netsim.Engine.clear}):
    drops all classes and flows, zeroes the fluid loads pushed into the
    packet tier, and resets statistics — while keeping the dense per-link
    scratch allocated, so a cleared instance re-runs without re-allocating.
    Outstanding {!flow} handles become invalid. *)

(** {2 Dirty-set API}

    External inputs that invalidate part of the solution mark it dirty
    here instead of forcing a full re-solve; the next solver pass re-fills
    exactly the affected components. *)

val mark_link_dirty : t -> int -> unit
(** Mark a directed link (by {!Ff_netsim.Net.link_index}) as having
    changed externally — e.g. a capacity or background-load change the
    drift scan would otherwise only notice later. Out-of-range indices are
    ignored. *)

val enable_loss_coupling : t -> unit
(** Install this population as the net's drop hook
    ({!Ff_netsim.Net.set_drop_hook}): queue-overflow drops mark the link
    and cut the AIMD cap of adaptive classes crossing it at the next
    solve. The hook mutates only solver-side flags — packet-tier behavior
    and the All_packet bit-identity anchor are unaffected. *)

(** {2 Population statistics} *)

val attached_flows : t -> int
val classes : t -> int

val total_rate : t -> float
(** Sum of allocated rates over attached flows, bits/s. *)

val offered_rate : t -> float
(** Sum of offered ([Constant]) / ceiling ([Adaptive]) rates, bits/s. *)

val total_delivered_bytes : t -> float
(** Aggregate bytes delivered by the whole population since creation
    (including spans of flows later detached or removed). *)

val hop_bytes : t -> float
(** Aggregate bytes x links-traversed — the fluid tier's work measure; one
    packet-equivalent is [packet_size] hop-bytes. *)

val rate_events : t -> int
(** Number of solver invocations (including skipped ones). *)

val solver_stats : t -> solver_stats

val touched_frac : t -> float
(** [touched_classes / seen_classes] — the fraction of active classes the
    solver actually re-assigned, cumulatively. 1.0 means every solve was
    effectively full. *)

val dump_rates : t -> (int * float * float) list
(** [(class id, per-flow rate, cap)] for every class, in id order — the
    differential tests' bitwise comparison surface. *)
