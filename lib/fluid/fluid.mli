(** Analytic (fluid) flow populations for the hybrid simulation tier.

    Steady-state flows are not simulated packet by packet. Instead they are
    grouped into {e path classes} — flows sharing (src, dst, kind) follow
    the same cached route and receive the same per-flow rate — and the
    whole population advances analytically between {e rate events}: a rate
    event re-solves a progressive max-min filling over the links each
    class crosses, and between events every class accrues delivered bytes
    linearly at its solved rate. The solver is O(classes + links), not
    O(flows), which is what makes 10^5+ concurrent flows tractable.

    Coupling with the packet tier is bidirectional:

    - each solve subtracts the measured packet rate
      ({!Ff_netsim.Net.link_packet_bps}) from a link's capacity before
      filling, so packet traffic displaces fluid traffic;
    - the solved per-link fluid load is pushed into the packet engine via
      {!Ff_netsim.Net.set_fluid_load}, where it consumes transmit capacity
      and folds into {!Ff_netsim.Net.utilization}, so detectors and queues
      see fluid floods.

    Rate semantics: [Constant] classes offer a fixed rate (CBR-like; any
    shortfall under congestion is simply not delivered — fluid "drops"),
    [Adaptive] classes model TCP-class AIMD: the per-flow rate cap grows
    additively at one MSS per RTT per RTT and, when the max-min share is
    below the cap, decays multiplicatively toward the share once per RTT.

    Determinism: the population only schedules engine events while at
    least one flow is attached. A simulation that never attaches a fluid
    flow therefore runs the exact same event sequence as one without the
    fluid tier at all — the bit-identity anchor for the hybrid engine. *)

type kind =
  | Constant of { rate : float }  (** offered per-flow rate, bits/s *)
  | Adaptive of { rtt : float; max_rate : float }
      (** AIMD-capped per-flow rate: additive increase one MSS/RTT each
          RTT, multiplicative back-off toward the bottleneck share;
          [max_rate] models the receive-window ceiling, bits/s *)

type t
type flow

val create : ?update_period:float -> ?mss_bits:float -> Ff_netsim.Net.t -> unit -> t
(** [update_period] (default 0.25 s) is the background re-solve period
    that keeps fluid rates coupled to drifting packet-tier load; population
    changes additionally trigger a solve at the time of the change (batched
    per instant). [mss_bits] (default 12_000 = 1500 B) drives the AIMD
    additive-increase slope. *)

val net : t -> Ff_netsim.Net.t
val update_period : t -> float

val add : t -> src:int -> dst:int -> kind -> flow
(** Admit a flow (attached immediately); its path class is created on
    first use and the route resolved from the packet tier's current
    routing state. *)

val remove : t -> flow -> unit
(** Permanently detach; delivered bytes remain readable. *)

val detach : t -> flow -> unit
(** Take the flow out of the fluid population (demotion to packet level).
    Accrued bytes up to now are banked first; no-op if detached. *)

val attach : t -> flow -> unit
(** Re-admit a detached flow (promotion back from packet level); accrual
    restarts from the current instant. No-op if already attached. *)

val is_attached : flow -> bool
val src : flow -> int
val dst : flow -> int

val path : flow -> int list
(** Cached route of the flow's class, hosts included; [[]] if unroutable. *)

val rate : flow -> float
(** Per-flow allocated rate (bits/s) from the most recent solve; 0. while
    detached. *)

val delivered_bytes : t -> flow -> float
(** Cumulative bytes delivered across all attachment spans, accrued up to
    the current simulation time. *)

val recompute : t -> unit
(** Advance accruals to now and re-solve rates synchronously. Callers that
    batch several population changes at one instant (the hybrid tier's
    demote/promote sweeps) call this once at the end of the batch. *)

val refresh_paths : t -> unit
(** Re-resolve every class's route from the packet tier (after reroutes or
    mode changes). Accruals are advanced first; rates refresh on the next
    solve. *)

val advance : t -> unit
(** Accrue delivered bytes up to now at the current rates (no re-solve). *)

(** {2 Population statistics} *)

val attached_flows : t -> int
val classes : t -> int

val total_rate : t -> float
(** Sum of allocated rates over attached flows, bits/s. *)

val offered_rate : t -> float
(** Sum of offered ([Constant]) / ceiling ([Adaptive]) rates, bits/s. *)

val total_delivered_bytes : t -> float
(** Aggregate bytes delivered by the whole population since creation
    (including spans of flows later detached or removed). *)

val hop_bytes : t -> float
(** Aggregate bytes x links-traversed — the fluid tier's work measure; one
    packet-equivalent is [packet_size] hop-bytes. *)

val rate_events : t -> int
(** Number of solves performed. *)
