module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet

type t = {
  net : Net.t;
  switches : int list;
  window : float;
  min_rate : float;
  counters : (int * int, Ff_util.Stats.Window_counter.t) Hashtbl.t;
}

let counter t pair =
  match Hashtbl.find_opt t.counters pair with
  | Some c -> c
  | None ->
    let c = Ff_util.Stats.Window_counter.create ~width:t.window in
    Hashtbl.replace t.counters pair c;
    c

let stage t =
  {
    Net.stage_name = "te-telemetry";
    process =
      (fun ctx pkt ->
        (match pkt.Packet.payload with
        | Packet.Data ->
          let sw = ctx.Net.sw.Net.sw_id in
          if Net.access_switch t.net ~host:pkt.Packet.src = sw then
            Ff_util.Stats.Window_counter.add
              (counter t (pkt.Packet.src, pkt.Packet.dst))
              ~now:(Net.now t.net)
              (float_of_int pkt.Packet.size)
        | _ -> ());
        Net.Continue);
  }

let install net ~switches ?(window = 2.0) ?(min_rate = 10_000.) () =
  let t = { net; switches; window; min_rate; counters = Hashtbl.create 64 } in
  List.iter (fun sw -> Net.add_stage net ~sw (stage t)) switches;
  t

let rate t ~src ~dst =
  match Hashtbl.find_opt t.counters (src, dst) with
  | None -> 0.
  | Some c -> Ff_util.Stats.Window_counter.rate c ~now:(Net.now t.net) *. 8.

let matrix t =
  let m = Traffic_matrix.empty () in
  Hashtbl.iter
    (fun (src, dst) _ ->
      let r = rate t ~src ~dst in
      if r >= t.min_rate then Traffic_matrix.set m ~src ~dst r)
    t.counters;
  m

let pairs_seen t = Hashtbl.length t.counters
