(** Discrete-event simulation engine: a monotonic clock and an event heap.
    Events scheduled for the same instant fire in scheduling order, so runs
    are deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds (0. initially). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when [at] is in the past. *)

val after : t -> delay:float -> (unit -> unit) -> unit

val every : t -> ?start:float -> ?until:float -> period:float -> (unit -> unit) -> unit
(** Recurring event starting at [start] (default one period from now) until
    [until] (default forever) or [cancel_recurring]. *)

val schedule_burst :
  t -> start:float -> period:float -> count:int -> (int -> bool) -> unit
(** Batched emission: call [f k] at [start +. k *. period] for
    [k = 0 .. count - 1], stopping early as soon as [f] returns [false].
    The whole burst shares a single self-rescheduling closure and occupies
    one heap slot at a time, so constant-rate traffic sources pay one
    allocation per burst instead of one per packet. Tick times accumulate
    ([at +. period] each step) exactly like a chain of {!after} calls, so
    replacing a self-scheduling loop with a burst is behavior-preserving.
    Raises [Invalid_argument] when [start] is in the past. *)

val run : t -> until:float -> unit
(** Pop and execute events until the heap drains or the clock passes
    [until]; afterwards [now t = until]. *)

val step : t -> bool
(** Execute one event; [false] when the heap is empty. *)

val pending : t -> int

val clear : t -> unit

val total_steps : unit -> int
(** Process-wide count of events executed across every engine instance —
    monotone, never reset. Snapshot it around a run to profile events/s
    (see [Ff_obs.Profile]). *)
