(** Discrete-event simulation engine: a monotonic clock and two typed
    event lanes sharing one sequence counter.

    The {e thunk lane} holds arbitrary [unit -> unit] events (timers,
    bursts, protocol steps). The {e packet lane} holds packet arrivals —
    the dominant event class, one per link hop — as unboxed heap columns
    [(time, to_node, from_node, pkt)] dispatched through a single
    registered handler, so scheduling a hop allocates no closure.

    Both lanes draw sequence numbers from one engine-wide counter and
    dispatch always picks the lane whose top has the smaller
    [(time, seq)], so events across the two lanes fire in global
    scheduling order: same-instant events pop FIFO exactly as with a
    single heap, and runs are deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds (0. initially). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when [at] is in the past. *)

val set_packet_handler :
  t -> (to_node:int -> from_node:int -> Ff_dataplane.Packet.t -> unit) -> unit
(** Register the packet-lane dispatcher. One handler per engine —
    registering again replaces it ([Net.create] owns it; the repo runs
    one net per engine). Until one is registered, dispatching a packet
    event fails. *)

val schedule_packet :
  t -> at:float -> to_node:int -> from_node:int -> Ff_dataplane.Packet.t -> unit
(** Schedule a packet arrival on the packet lane: at time [at] the
    registered handler runs as [h ~to_node ~from_node pkt]. Ordered
    against thunk events by the shared [(time, seq)] key. Allocation-free
    past heap growth. Raises [Invalid_argument] when [at] is in the
    past. *)

val after : t -> delay:float -> (unit -> unit) -> unit

val every : t -> ?start:float -> ?until:float -> period:float -> (unit -> unit) -> unit
(** Recurring event starting at [start] (default one period from now) until
    [until] (default forever) or [cancel_recurring]. *)

val schedule_burst :
  t -> start:float -> period:float -> count:int -> (int -> bool) -> unit
(** Batched emission: call [f k] at [start +. k *. period] for
    [k = 0 .. count - 1], stopping early as soon as [f] returns [false].
    The whole burst shares a single self-rescheduling closure and occupies
    one heap slot at a time, so constant-rate traffic sources pay one
    allocation per burst instead of one per packet. Tick times accumulate
    ([at +. period] each step) exactly like a chain of {!after} calls, so
    replacing a self-scheduling loop with a burst is behavior-preserving.
    Raises [Invalid_argument] when [start] is in the past. *)

val run : t -> until:float -> unit
(** Pop and execute events until both lanes drain or the clock passes
    [until]; afterwards [now t = until]. *)

val step : t -> bool
(** Execute one event (from whichever lane holds the global minimum);
    [false] when both lanes are empty. *)

val pending : t -> int
(** Events waiting across both lanes. *)

val clear : t -> unit

val total_steps : unit -> int
(** Process-wide count of events executed across every engine instance —
    monotone, never reset. Snapshot it around a run to profile events/s
    (see [Ff_obs.Profile]). *)
