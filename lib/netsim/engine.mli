(** Discrete-event simulation engine: a monotonic clock and two typed
    event lanes sharing one sequence counter.

    The {e thunk lane} holds arbitrary [unit -> unit] events (timers,
    bursts, protocol steps). The {e packet lane} holds packet arrivals —
    the dominant event class, one per link hop — as unboxed heap columns
    [(time, to_node, from_node, pkt)] dispatched through a single
    registered handler, so scheduling a hop allocates no closure.

    Both lanes draw sequence numbers from one engine-wide counter and
    dispatch always picks the lane whose top has the smaller
    [(time, seq)], so events across the two lanes fire in global
    scheduling order: same-instant events pop FIFO exactly as with a
    single heap, and runs are deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds (0. initially). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when [at] is in the past. *)

val set_packet_handler :
  t -> (to_node:int -> from_node:int -> Ff_dataplane.Packet.t -> unit) -> unit
(** Register the packet-lane dispatcher. One handler per engine —
    registering again replaces it ([Net.create] owns it; the repo runs
    one net per engine). Until one is registered, dispatching a packet
    event fails. *)

val schedule_packet :
  t -> at:float -> to_node:int -> from_node:int -> Ff_dataplane.Packet.t -> unit
(** Schedule a packet arrival on the packet lane: at time [at] the
    registered handler runs as [h ~to_node ~from_node pkt]. Ordered
    against thunk events by the shared [(time, seq)] key. Allocation-free
    past heap growth. Raises [Invalid_argument] when [at] is in the
    past. *)

val after : t -> delay:float -> (unit -> unit) -> unit

val every : t -> ?start:float -> ?until:float -> period:float -> (unit -> unit) -> unit
(** Recurring event starting at [start] (default one period from now) until
    [until] (default forever) or [cancel_recurring]. *)

val schedule_burst :
  t -> start:float -> period:float -> count:int -> (int -> bool) -> unit
(** Batched emission: call [f k] at [start +. k *. period] for
    [k = 0 .. count - 1], stopping early as soon as [f] returns [false].
    The whole burst shares a single self-rescheduling closure and occupies
    one heap slot at a time, so constant-rate traffic sources pay one
    allocation per burst instead of one per packet. Tick times accumulate
    ([at +. period] each step) exactly like a chain of {!after} calls, so
    replacing a self-scheduling loop with a burst is behavior-preserving.
    Raises [Invalid_argument] when [start] is in the past. *)

val run : t -> until:float -> unit
(** Pop and execute events until both lanes drain or the clock passes
    [until]; afterwards [now t = until]. Events at exactly [until] run
    (inclusive bound). *)

val run_window : t -> horizon:float -> unit
(** Execute every event with time strictly before [horizon], then set
    [now t = horizon]. The bounded-window primitive of the conservative
    parallel engine ({!Ff_parallel.Psim}): the exclusive bound keeps an
    event at exactly the horizon from racing ahead of a same-instant
    cross-shard arrival that has not been exchanged yet. Safe to follow
    with schedules at [>= horizon] — which conservative lookahead
    guarantees for every future cross-shard arrival. *)

val next_time : t -> float
(** Time of the earliest pending event across both lanes, or [infinity]
    when both are empty. The shard's contribution to the global
    lower-bound computation between windows. Allocation: one boxed
    float. *)

val step : t -> bool
(** Execute one event (from whichever lane holds the global minimum);
    [false] when both lanes are empty. *)

val pending : t -> int
(** Events waiting across both lanes. *)

val clear : t -> unit
(** Reset the engine to its freshly-created state: both lanes emptied
    (releasing every pending event for collection), clock back to 0,
    sequence counter back to 0, packet handler deregistered. A cleared
    engine accepts schedules at any non-negative time and never fires a
    handler from a previous run. The executed-step counter ({!steps}) is
    {e not} reset — it is a monotone odometer, not run state. *)

val steps : t -> int
(** Events executed by {e this} engine since creation — monotone across
    {!clear}. Snapshot around a run for per-engine event counts without
    interference from other engines (or other domains). *)

val total_steps : unit -> int
(** Process-wide count of events executed across every engine instance —
    monotone, never reset. Backed by an [Atomic.t] that each engine
    updates at the end of every [run]/[run_window]/[step] call (the
    per-event bump is engine-local), so it is exact whenever no engine is
    mid-run and safe to read from any domain. Snapshot it around a run to
    profile events/s (see [Ff_obs.Profile]). *)
