(** Periodic measurement taps that turn simulator state into time series
    (the data behind each figure). *)

val sample :
  Engine.t -> period:float -> ?start:float -> ?until:float -> name:string ->
  (float -> float) -> Ff_util.Series.t
(** Every [period] seconds evaluate the probe function on the current time
    and append the result to a fresh series (returned immediately).
    [start] defaults to the current simulation time, so a monitor can be
    attached mid-run. *)

val link_utilization :
  Net.t -> from_:int -> to_:int -> period:float -> ?until:float -> unit -> Ff_util.Series.t

val aggregate_goodput :
  Net.t -> flows:Flow.Tcp.t list -> period:float -> ?until:float -> name:string -> unit ->
  Ff_util.Series.t
(** Sum of receiver goodputs of the given flows, bytes/s. *)

val normalized_goodput :
  Net.t -> flows:Flow.Tcp.t list -> baseline:float -> period:float -> ?until:float ->
  name:string -> unit -> Ff_util.Series.t
(** Aggregate goodput divided by [baseline] (the no-attack stable
    throughput), i.e. exactly the y-axis of paper Figure 3. *)
