(** Periodic measurement taps that turn simulator state into time series
    (the data behind each figure). *)

val sample :
  Engine.t -> period:float -> ?start:float -> ?until:float -> name:string ->
  (float -> float) -> Ff_util.Series.t
(** Every [period] seconds evaluate the probe function on the current time
    and append the result to a fresh series (returned immediately).
    [start] defaults to the current simulation time, so a monitor can be
    attached mid-run. *)

val link_utilization :
  Net.t -> from_:int -> to_:int -> period:float -> ?until:float -> unit -> Ff_util.Series.t

(** {1 Goodput probes}

    A {!probe} maps the current simulation time to a rate in bytes/s, so
    the aggregate-goodput series is flow-kind-agnostic: TCP flows report
    their receive-window goodput, CBR (and any other cumulative-counter
    source, including fluid-tier flows) report a differentiated counter.
    Probes are stateful closures — build one per flow per series and call
    it from a single sampling loop. *)

type probe = float -> float

val tcp_probe : Flow.Tcp.t -> probe
(** Receiver-window goodput of a TCP flow (bytes/s). Stateless. *)

val cbr_probe : Flow.Cbr.t -> probe
(** Rate of a CBR flow, differentiated from its cumulative delivered-bytes
    counter between successive samples (0. on the first sample). *)

val counter_probe : (unit -> float) -> probe
(** Generalization of {!cbr_probe}: differentiate any monotone cumulative
    byte counter — the fluid tier exposes its populations this way. *)

val sum_probes : probe list -> probe

val aggregate_goodput :
  Net.t -> ?flows:Flow.Tcp.t list -> ?probes:probe list -> period:float ->
  ?until:float -> name:string -> unit -> Ff_util.Series.t
(** Sum of the goodputs of [flows] (as {!tcp_probe}s) and any extra
    [probes], bytes/s. *)

val normalized_goodput :
  Net.t -> ?flows:Flow.Tcp.t list -> ?probes:probe list -> baseline:float ->
  period:float -> ?until:float -> name:string -> unit -> Ff_util.Series.t
(** Aggregate goodput divided by [baseline] (the no-attack stable
    throughput), i.e. exactly the y-axis of paper Figure 3. *)
