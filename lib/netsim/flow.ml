module Packet = Ff_dataplane.Packet

(* Per-net allocation (see [Net.fresh_flow_id]): a process-wide counter
   would make flow ids — and every hash keyed on them — depend on how
   many flows earlier simulations in the same process created. *)
let fresh_flow_id net = Net.fresh_flow_id net

module Tcp = struct
  (* All-float record: flat layout, so the per-ack congestion-control and
     RTT-estimator stores stay unboxed (a mixed record boxes every float
     field write). *)
  type cc = {
    mutable cwnd : float;
    mutable ssthresh : float;
    mutable srtt : float;
    mutable rttvar : float;
    mutable last_cut : float; (* last multiplicative decrease, for once-per-RTT *)
    mutable delivered : float; (* receiver-side bytes *)
  }

  type t = {
    net : Net.t;
    flow : int;
    src : int;
    dst : int;
    packet_size : int;
    max_cwnd : float;
    stop : float option;
    cc : cc;
    mutable next_seq : int;
    (* The outstanding window as parallel slots ([o_seqs.(i) = -1] free):
       in-flight count is bounded by the cwnd cap, so a linear scan over
       the slots beats a Hashtbl probe whose float values would box on
       every insert — this runs once per data packet sent and acked. *)
    mutable o_seqs : int array;
    mutable o_sent : float array; (* send time, by slot *)
    mutable o_dead : float array; (* current retransmit deadline, by slot *)
    mutable o_live : int;
    (* FIFO retransmit queue as an int ring: the list version re-appended
       with [@], O(n) conses per timeout *)
    mutable retx : int array;
    mutable retx_head : int;
    mutable retx_len : int;
    mutable sent_packets : int;
    mutable retransmissions : int;
    mutable running : bool;
    (* receiver side: seqs are dense from 0, so delivery dedup is a bitset
       rather than a Hashtbl that conses per received packet *)
    mutable received : Bytes.t;
    rx_window : Ff_util.Stats.Window_counter.t;
  }

  let flow_id t = t.flow
  let src t = t.src
  let dst t = t.dst
  let delivered_bytes t = t.cc.delivered
  let sent_packets t = t.sent_packets
  let retransmissions t = t.retransmissions
  let cwnd t = t.cc.cwnd
  let srtt t = t.cc.srtt

  let goodput t ~now = Ff_util.Stats.Window_counter.rate t.rx_window ~now

  let rto t =
    if t.cc.srtt = 0. then 0.2
    else Float.min 1.0 (Float.max 0.05 (t.cc.srtt +. (4. *. t.cc.rttvar)))

  let update_rtt t sample =
    let cc = t.cc in
    if cc.srtt = 0. then begin
      cc.srtt <- sample;
      cc.rttvar <- sample /. 2.
    end
    else begin
      cc.rttvar <- (0.75 *. cc.rttvar) +. (0.25 *. Float.abs (cc.srtt -. sample));
      cc.srtt <- (0.875 *. cc.srtt) +. (0.125 *. sample)
    end

  let stopped t now = match t.stop with Some s -> now >= s | None -> false

  (* ---- outstanding-window slots ---- *)

  let slot_of_seq t seq =
    let a = t.o_seqs in
    let n = Array.length a in
    let rec go i = if i >= n then -1 else if Array.unsafe_get a i = seq then i else go (i + 1) in
    go 0

  let free_slot t =
    let i = slot_of_seq t (-1) in
    if i >= 0 then i
    else begin
      let cap = Array.length t.o_seqs in
      let ncap = max 64 (2 * cap) in
      let ns = Array.make ncap (-1) in
      Array.blit t.o_seqs 0 ns 0 cap;
      let grow_f a =
        let n = Array.make ncap 0. in
        Array.blit a 0 n 0 cap;
        n
      in
      t.o_sent <- grow_f t.o_sent;
      t.o_dead <- grow_f t.o_dead;
      t.o_seqs <- ns;
      cap
    end

  (* ---- retransmit ring ---- *)

  let retx_push t seq =
    let cap = Array.length t.retx in
    if t.retx_len = cap then begin
      let ncap = max 16 (2 * cap) in
      let nr = Array.make ncap 0 in
      for k = 0 to t.retx_len - 1 do
        nr.(k) <- t.retx.((t.retx_head + k) mod cap)
      done;
      t.retx <- nr;
      t.retx_head <- 0
    end;
    t.retx.((t.retx_head + t.retx_len) mod Array.length t.retx) <- seq;
    t.retx_len <- t.retx_len + 1

  let retx_pop t =
    let s = t.retx.(t.retx_head) in
    t.retx_head <- (t.retx_head + 1) mod Array.length t.retx;
    t.retx_len <- t.retx_len - 1;
    s

  let rec try_send t =
    let now = Net.now t.net in
    if t.running && not (stopped t now) then begin
      if float_of_int t.o_live < t.cc.cwnd then begin
        let seq, is_retx =
          if t.retx_len > 0 then (retx_pop t, true)
          else begin
            let s = t.next_seq in
            t.next_seq <- s + 1;
            (s, false)
          end
        in
        let pkt =
          Packet.make_data ~size:t.packet_size ~seq ~ttl:64 ~src:t.src ~dst:t.dst ~flow:t.flow
            ~birth:now
        in
        let slot = free_slot t in
        t.o_seqs.(slot) <- seq;
        t.o_sent.(slot) <- now;
        t.o_live <- t.o_live + 1;
        t.sent_packets <- t.sent_packets + 1;
        if is_retx then t.retransmissions <- t.retransmissions + 1;
        Net.send_from_host t.net pkt;
        let deadline = now +. rto t in
        t.o_dead.(slot) <- deadline;
        Engine.schedule (Net.engine t.net) ~at:deadline (fun () -> on_timeout t seq);
        try_send t
      end
    end

  and on_timeout t seq =
    let slot = slot_of_seq t seq in
    if slot >= 0 then begin
      let deadline = t.o_dead.(slot) in
      let now = Net.now t.net in
      if now >= deadline -. 1e-9 then begin
        (* unacked past its deadline: treat as loss *)
        t.o_seqs.(slot) <- -1;
        t.o_live <- t.o_live - 1;
        retx_push t seq;
        let cc = t.cc in
        if now -. cc.last_cut > Float.max cc.srtt 0.05 then begin
          cc.ssthresh <- Float.max 2. (cc.cwnd /. 2.);
          cc.cwnd <- Float.max 1. (cc.cwnd /. 2.);
          cc.last_cut <- now
        end;
        try_send t
      end
      else
        (* the deadline moved (retransmission with a fresher RTO): re-arm *)
        Engine.schedule (Net.engine t.net) ~at:deadline (fun () -> on_timeout t seq)
    end

  let on_ack t seq =
    let slot = slot_of_seq t seq in
    if slot >= 0 (* else duplicate or late ack *) then begin
      let sent_at = t.o_sent.(slot) in
      t.o_seqs.(slot) <- -1;
      t.o_live <- t.o_live - 1;
      let now = Net.now t.net in
      update_rtt t (now -. sent_at);
      let cc = t.cc in
      if cc.cwnd < cc.ssthresh then cc.cwnd <- cc.cwnd +. 1. (* slow start *)
      else cc.cwnd <- cc.cwnd +. (1. /. cc.cwnd);
      cc.cwnd <- Float.min t.max_cwnd cc.cwnd;
      try_send t
    end

  let seq_received t seq = (Char.code (Bytes.get t.received (seq lsr 3)) lsr (seq land 7)) land 1 = 1

  let mark_received t seq =
    if seq lsr 3 >= Bytes.length t.received then begin
      let nlen = max (2 * Bytes.length t.received) ((seq lsr 3) + 1) in
      let nb = Bytes.make nlen '\000' in
      Bytes.blit t.received 0 nb 0 (Bytes.length t.received);
      t.received <- nb
    end;
    let b = seq lsr 3 in
    Bytes.set t.received b (Char.chr (Char.code (Bytes.get t.received b) lor (1 lsl (seq land 7))))

  let on_data t (pkt : Packet.t) =
    let now = Net.now t.net in
    if pkt.seq lsr 3 >= Bytes.length t.received || not (seq_received t pkt.seq) then begin
      mark_received t pkt.seq;
      t.cc.delivered <- t.cc.delivered +. float_of_int pkt.size;
      Ff_util.Stats.Window_counter.add t.rx_window ~now (float_of_int pkt.size)
    end;
    let ack = Packet.make_ack ~acked:pkt.seq ~src:t.dst ~dst:t.src ~flow:t.flow ~birth:now in
    Net.send_from_host t.net ack

  let start net ~src ~dst ?at ?stop ?(packet_size = 1000) ?(max_cwnd = 64.)
      ?(initial_cwnd = 2.) () =
    let at = match at with Some a -> a | None -> Net.now net in
    let t =
      {
        net;
        flow = fresh_flow_id net;
        src;
        dst;
        packet_size;
        max_cwnd;
        stop;
        cc =
          { cwnd = initial_cwnd; ssthresh = 32.; srtt = 0.; rttvar = 0.; last_cut = -1.;
            delivered = 0. };
        next_seq = 0;
        o_seqs = Array.make 64 (-1);
        o_sent = Array.make 64 0.;
        o_dead = Array.make 64 0.;
        o_live = 0;
        retx = Array.make 16 0;
        retx_head = 0;
        retx_len = 0;
        sent_packets = 0;
        retransmissions = 0;
        running = true;
        received = Bytes.make 256 '\000';
        rx_window = Ff_util.Stats.Window_counter.create ~width:1.0;
      }
    in
    (* receiver at dst handles data; sender at src handles acks *)
    Hashtbl.replace (Net.host net dst).Net.receivers t.flow (fun pkt -> on_data t pkt);
    Hashtbl.replace (Net.host net src).Net.receivers t.flow (fun pkt ->
        match pkt.Packet.payload with
        | Packet.Ack { acked } -> on_ack t acked
        | _ -> ());
    Engine.schedule (Net.engine net) ~at (fun () -> try_send t);
    t

  let pause t = t.running <- false

  let resume t ~now =
    ignore now;
    if not t.running then begin
      t.running <- true;
      try_send t
    end
end

module Listener = struct
  (* Server-side accept state: the resource a SYN flood actually exhausts.
     Each SYN that reaches the host occupies one half-open slot until the
     peer's handshake ack arrives or the slot times out — the accept
     backlog is capped, so a flood starves legitimate handshakes at the
     server even when every link has headroom. *)
  type t = {
    net : Net.t;
    host : int;
    backlog : int;
    syn_timeout : float;
    half_open : (int, float) Hashtbl.t;  (* flow id -> SYN arrival time *)
    established_rx : (int, unit) Hashtbl.t;
    mutable trust_validated : bool;
    mutable established : int;
    mutable backlog_drops : int;
    mutable timeouts : int;
    mutable data_bytes : float;
    mutable peak_half_open : int;
  }

  let half_open_count t = Hashtbl.length t.half_open
  let established t = t.established
  let backlog t = t.backlog
  let backlog_drops t = t.backlog_drops
  let timeouts t = t.timeouts
  let data_bytes t = t.data_bytes
  let peak_occupancy t = float_of_int t.peak_half_open /. float_of_int t.backlog
  let occupancy t = float_of_int (half_open_count t) /. float_of_int t.backlog

  (* The server-side split-proxy agent flips this: when the edge switch
     validates cookies, a handshake ack arriving without a half-open entry
     is accepted on the edge's word instead of being dropped as stray. *)
  let set_trust_validated t v = t.trust_validated <- v
  let trust_validated t = t.trust_validated

  let reply t (pkt : Packet.t) payload =
    let p =
      Packet.make_control ~payload ~src:t.host ~dst:pkt.Packet.src ~flow:pkt.Packet.flow
        ~birth:(Net.now t.net)
    in
    Net.send_from_host t.net p

  let expire t flow =
    match Hashtbl.find_opt t.half_open flow with
    | Some opened when Net.now t.net >= opened +. t.syn_timeout -. 1e-9 ->
      Hashtbl.remove t.half_open flow;
      t.timeouts <- t.timeouts + 1
    | _ -> ()

  let on_syn t (pkt : Packet.t) =
    let flow = pkt.Packet.flow in
    if Hashtbl.mem t.half_open flow then
      (* duplicate/retried SYN of a connection we already hold: re-reply
         without consuming another slot *)
      reply t pkt (Packet.Syn_ack { cookie = 0 })
    else if Hashtbl.length t.half_open >= t.backlog then begin
      t.backlog_drops <- t.backlog_drops + 1;
      Net.count_drop t.net "backlog-full"
    end
    else begin
      Hashtbl.replace t.half_open flow (Net.now t.net);
      let occ = Hashtbl.length t.half_open in
      if occ > t.peak_half_open then t.peak_half_open <- occ;
      Engine.after (Net.engine t.net) ~delay:t.syn_timeout (fun () -> expire t flow);
      reply t pkt (Packet.Syn_ack { cookie = 0 })
    end

  let establish t flow =
    Hashtbl.replace t.established_rx flow ();
    t.established <- t.established + 1

  let on_handshake_ack t (pkt : Packet.t) cookie =
    let flow = pkt.Packet.flow in
    if Hashtbl.mem t.half_open flow then begin
      Hashtbl.remove t.half_open flow;
      establish t flow
    end
    else if t.trust_validated && cookie <> 0 && not (Hashtbl.mem t.established_rx flow) then
      (* split proxy: the edge switch completed the cookie handshake and
         forwarded only the validated ack — no half-open entry ever
         existed here *)
      establish t flow
  (* else: stray ack (or duplicate) — ignore *)

  let rx t (pkt : Packet.t) =
    match pkt.Packet.payload with
    | Packet.Syn -> on_syn t pkt
    | Packet.Handshake_ack { cookie } -> on_handshake_ack t pkt cookie
    | Packet.Data ->
      if Hashtbl.mem t.established_rx pkt.Packet.flow then
        t.data_bytes <- t.data_bytes +. float_of_int pkt.Packet.size
    | Packet.Fin ->
      Hashtbl.remove t.established_rx pkt.Packet.flow;
      Hashtbl.remove t.half_open pkt.Packet.flow
    | _ -> ()

  let install net ~host ?(backlog = 64) ?(syn_timeout = 3.0) () =
    let t =
      {
        net;
        host;
        backlog;
        syn_timeout;
        half_open = Hashtbl.create 64;
        established_rx = Hashtbl.create 64;
        trust_validated = false;
        established = 0;
        backlog_drops = 0;
        timeouts = 0;
        data_bytes = 0.;
        peak_half_open = 0;
      }
    in
    (Net.host net host).Net.fallback_rx <- Some (rx t);
    t
end

module Handshake = struct
  (* A legitimate client opening short connections in a loop: SYN, wait
     for SYN-ACK (retrying a few times), complete with the echoed cookie,
     push a small data burst, FIN, repeat. Completed handshakes are the
     scenario's goodput unit — a flooded (or guarded) server shows up
     directly in this counter. *)
  type t = {
    net : Net.t;
    src : int;
    dst : int;
    conn_interval : float;
    syn_timeout : float;
    max_retries : int;
    data_packets : int;
    data_size : int;
    stop : float option;
    mutable attempts : int;
    mutable completed : int;
    mutable failed : int;
    mutable running : bool;
  }

  let attempts t = t.attempts
  let completed t = t.completed
  let failed t = t.failed
  let src t = t.src
  let dst t = t.dst
  let stop_now t = t.running <- false

  (* Completed handshakes expressed as bytes for goodput probes: one
     handshake stands for its data burst. *)
  let completed_bytes t = float_of_int (t.completed * t.data_packets * t.data_size)

  let stopped t now = match t.stop with Some s -> now >= s | None -> false

  let send_ctl t ~flow payload =
    let p =
      Packet.make_control ~payload ~src:t.src ~dst:t.dst ~flow ~birth:(Net.now t.net)
    in
    Net.send_from_host t.net p

  let rec attempt t =
    let now = Net.now t.net in
    if t.running && not (stopped t now) then begin
      let flow = fresh_flow_id t.net in
      t.attempts <- t.attempts + 1;
      let state = ref `Waiting (* `Waiting -> `Done | `Failed *) in
      let host = Net.host t.net t.src in
      let finish () =
        Hashtbl.remove host.Net.receivers flow;
        Engine.after (Net.engine t.net) ~delay:t.conn_interval (fun () -> attempt t)
      in
      Hashtbl.replace host.Net.receivers flow (fun (pkt : Packet.t) ->
          match pkt.Packet.payload with
          | Packet.Syn_ack { cookie } when !state = `Waiting ->
            state := `Done;
            t.completed <- t.completed + 1;
            send_ctl t ~flow (Packet.Handshake_ack { cookie });
            (* short data burst, then teardown; paced a few ms apart so
               the burst does not self-congest the access link *)
            for i = 0 to t.data_packets - 1 do
              Engine.after (Net.engine t.net)
                ~delay:(0.002 *. float_of_int (i + 1))
                (fun () ->
                  let d =
                    Packet.make_data ~size:t.data_size ~seq:i ~ttl:64 ~src:t.src ~dst:t.dst
                      ~flow ~birth:(Net.now t.net)
                  in
                  Net.send_from_host t.net d)
            done;
            Engine.after (Net.engine t.net)
              ~delay:(0.002 *. float_of_int (t.data_packets + 2))
              (fun () ->
                send_ctl t ~flow Packet.Fin;
                finish ())
          | _ -> ());
      let rec arm_timeout tries_left =
        Engine.after (Net.engine t.net) ~delay:t.syn_timeout (fun () ->
            if !state = `Waiting then
              if tries_left > 0 then begin
                send_ctl t ~flow Packet.Syn;
                arm_timeout (tries_left - 1)
              end
              else begin
                state := `Failed;
                t.failed <- t.failed + 1;
                finish ()
              end)
      in
      send_ctl t ~flow Packet.Syn;
      arm_timeout t.max_retries
    end

  let start net ~src ~dst ?at ?stop ?(conn_interval = 0.5) ?(syn_timeout = 1.0)
      ?(max_retries = 2) ?(data_packets = 4) ?(data_size = 1000) () =
    let at = match at with Some a -> a | None -> Net.now net in
    let t =
      {
        net;
        src;
        dst;
        conn_interval;
        syn_timeout;
        max_retries;
        data_packets;
        data_size;
        stop;
        attempts = 0;
        completed = 0;
        failed = 0;
        running = true;
      }
    in
    Engine.schedule (Net.engine net) ~at (fun () -> attempt t);
    t
end

module Cbr = struct
  type t = {
    net : Net.t;
    flow : int;
    src : int;
    dst : int;
    packet_size : int;
    rate_pps : float;
    stop : float option;
    pulse_period : float option;
    pulse_duty : float;
    ttl : int;
    via : int;
    mutable sent_packets : int;
    mutable delivered_bytes : float;
    mutable running : bool;
    mutable seq : int;
  }

  let flow_id t = t.flow
  let delivered_bytes t = t.delivered_bytes
  let sent_packets t = t.sent_packets
  let stop_now t = t.running <- false

  let in_duty t now =
    match t.pulse_period with
    | None -> true
    | Some p -> Float.rem now p < t.pulse_duty *. p

  (* One burst = [burst_len] send ticks sharing a single engine closure
     (Engine.schedule_burst), so a constant-rate source pays one allocation
     per burst instead of one closure per packet. Tick times accumulate by
     [period] exactly like the old self-scheduling chain. *)
  let burst_len = 64

  let send_tick t =
    let now = Net.now t.net in
    let stopped = match t.stop with Some s -> now >= s | None -> false in
    if t.running && not stopped then begin
      if in_duty t now then begin
        let pkt =
          Packet.make_data ~size:t.packet_size ~seq:t.seq ~ttl:t.ttl ~src:t.src ~dst:t.dst
            ~flow:t.flow ~birth:now
        in
        t.seq <- t.seq + 1;
        t.sent_packets <- t.sent_packets + 1;
        Net.send_from_host_via t.net ~via:t.via pkt
      end;
      true
    end
    else false

  let rec arm t ~start =
    let period = 1. /. t.rate_pps in
    Engine.schedule_burst (Net.engine t.net) ~start ~period ~count:burst_len (fun k ->
        let continue = send_tick t in
        if continue && k = burst_len - 1 then
          arm t ~start:(Net.now t.net +. period);
        continue)

  let start net ~src ~dst ~rate_pps ?at ?stop ?(packet_size = 1000) ?pulse_period
      ?(pulse_duty = 0.5) ?(ttl = 64) ?via () =
    assert (rate_pps > 0.);
    let at = match at with Some a -> a | None -> Net.now net in
    let t =
      {
        net;
        flow = fresh_flow_id net;
        src;
        dst;
        packet_size;
        rate_pps;
        stop;
        pulse_period;
        pulse_duty;
        ttl;
        via = (match via with Some v -> v | None -> src);
        sent_packets = 0;
        delivered_bytes = 0.;
        running = true;
        seq = 0;
      }
    in
    Hashtbl.replace (Net.host net dst).Net.receivers t.flow (fun pkt ->
        t.delivered_bytes <- t.delivered_bytes +. float_of_int pkt.Packet.size);
    arm t ~start:at;
    t
end

module Traceroute = struct
  let run net ~src ~dst ?(max_ttl = 16) ?(timeout = 1.0) ?(probes_per_hop = 3) ~on_done () =
    let flow = fresh_flow_id net in
    let replies : (int * int) list ref = ref [] in
    let host = Net.host net src in
    Hashtbl.replace host.Net.receivers flow (fun pkt ->
        match pkt.Packet.payload with
        | Packet.Traceroute_reply { hop; responder; _ } ->
          if not (List.mem_assoc hop !replies) then replies := (hop, responder) :: !replies
        | _ -> ());
    let now = Net.now net in
    (* several probes per hop, paced apart: congested queues tail-drop
       individual probes, exactly what real traceroute retries cope with *)
    for ttl = 1 to max_ttl do
      for attempt = 0 to probes_per_hop - 1 do
        let pkt =
          Packet.make ~src ~dst ~flow ~birth:now ~ttl ~size:Packet.control_size
            ~payload:(Packet.Traceroute_probe { probe_id = ttl; probe_ttl = ttl })
            ()
        in
        let delay =
          (0.002 *. float_of_int ttl)
          +. (float_of_int attempt *. timeout /. float_of_int (probes_per_hop + 1))
        in
        Engine.after (Net.engine net) ~delay (fun () -> Net.send_from_host net pkt)
      done
    done;
    Engine.after (Net.engine net) ~delay:timeout (fun () ->
        Hashtbl.remove host.Net.receivers flow;
        (* truncate at the first reply from the destination itself *)
        let sorted = List.sort compare !replies in
        let rec cut acc = function
          | [] -> List.rev acc
          | (hop, responder) :: rest ->
            if responder = dst then List.rev ((hop, responder) :: acc) else cut ((hop, responder) :: acc) rest
        in
        on_done (cut [] sorted))
end
