module Packet = Ff_dataplane.Packet

let flow_counter = ref 0

let fresh_flow_id () =
  incr flow_counter;
  !flow_counter

module Tcp = struct
  type t = {
    net : Net.t;
    flow : int;
    src : int;
    dst : int;
    packet_size : int;
    max_cwnd : float;
    stop : float option;
    mutable cwnd : float;
    mutable ssthresh : float;
    mutable next_seq : int;
    outstanding : (int, float) Hashtbl.t; (* seq -> send time *)
    deadlines : (int, float) Hashtbl.t; (* seq -> current retransmit deadline *)
    mutable retx_queue : int list;
    mutable srtt : float;
    mutable rttvar : float;
    mutable sent_packets : int;
    mutable retransmissions : int;
    mutable running : bool;
    mutable last_cut : float; (* last multiplicative decrease, for once-per-RTT *)
    (* receiver side *)
    received : (int, unit) Hashtbl.t;
    mutable delivered_bytes : float;
    rx_window : Ff_util.Stats.Window_counter.t;
  }

  let flow_id t = t.flow
  let src t = t.src
  let dst t = t.dst
  let delivered_bytes t = t.delivered_bytes
  let sent_packets t = t.sent_packets
  let retransmissions t = t.retransmissions
  let cwnd t = t.cwnd
  let srtt t = t.srtt

  let goodput t ~now = Ff_util.Stats.Window_counter.rate t.rx_window ~now

  let rto t =
    if t.srtt = 0. then 0.2
    else Float.min 1.0 (Float.max 0.05 (t.srtt +. (4. *. t.rttvar)))

  let update_rtt t sample =
    if t.srtt = 0. then begin
      t.srtt <- sample;
      t.rttvar <- sample /. 2.
    end
    else begin
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. sample));
      t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
    end

  let stopped t now = match t.stop with Some s -> now >= s | None -> false

  let rec try_send t =
    let now = Net.now t.net in
    if t.running && not (stopped t now) then begin
      let in_flight = Hashtbl.length t.outstanding in
      if float_of_int in_flight < t.cwnd then begin
        let seq, is_retx =
          match t.retx_queue with
          | s :: rest ->
            t.retx_queue <- rest;
            (s, true)
          | [] ->
            let s = t.next_seq in
            t.next_seq <- s + 1;
            (s, false)
        in
        let pkt =
          Packet.make ~size:t.packet_size ~seq ~src:t.src ~dst:t.dst ~flow:t.flow ~birth:now ()
        in
        Hashtbl.replace t.outstanding seq now;
        t.sent_packets <- t.sent_packets + 1;
        if is_retx then t.retransmissions <- t.retransmissions + 1;
        Net.send_from_host t.net pkt;
        let deadline = now +. rto t in
        Hashtbl.replace t.deadlines seq deadline;
        Engine.schedule (Net.engine t.net) ~at:deadline (fun () -> on_timeout t seq);
        try_send t
      end
    end

  and on_timeout t seq =
    match Hashtbl.find_opt t.outstanding seq with
    | None -> ()
    | Some _ ->
      let deadline = try Hashtbl.find t.deadlines seq with Not_found -> 0. in
      let now = Net.now t.net in
      if now >= deadline -. 1e-9 then begin
        (* unacked past its deadline: treat as loss *)
        Hashtbl.remove t.outstanding seq;
        t.retx_queue <- t.retx_queue @ [ seq ];
        if now -. t.last_cut > Float.max t.srtt 0.05 then begin
          t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
          t.cwnd <- Float.max 1. (t.cwnd /. 2.);
          t.last_cut <- now
        end;
        try_send t
      end
      else
        (* the deadline moved (retransmission with a fresher RTO): re-arm *)
        Engine.schedule (Net.engine t.net) ~at:deadline (fun () -> on_timeout t seq)

  let on_ack t seq =
    match Hashtbl.find_opt t.outstanding seq with
    | None -> () (* duplicate or late ack *)
    | Some sent_at ->
      Hashtbl.remove t.outstanding seq;
      Hashtbl.remove t.deadlines seq;
      let now = Net.now t.net in
      update_rtt t (now -. sent_at);
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1. (* slow start *)
      else t.cwnd <- t.cwnd +. (1. /. t.cwnd);
      t.cwnd <- Float.min t.max_cwnd t.cwnd;
      try_send t

  let on_data t (pkt : Packet.t) =
    let now = Net.now t.net in
    if not (Hashtbl.mem t.received pkt.seq) then begin
      Hashtbl.replace t.received pkt.seq ();
      t.delivered_bytes <- t.delivered_bytes +. float_of_int pkt.size;
      Ff_util.Stats.Window_counter.add t.rx_window ~now (float_of_int pkt.size)
    end;
    let ack =
      Packet.make ~src:t.dst ~dst:t.src ~flow:t.flow ~birth:now ~size:Packet.control_size
        ~payload:(Packet.Ack { acked = pkt.seq }) ()
    in
    Net.send_from_host t.net ack

  let start net ~src ~dst ?at ?stop ?(packet_size = 1000) ?(max_cwnd = 64.)
      ?(initial_cwnd = 2.) () =
    let at = match at with Some a -> a | None -> Net.now net in
    let t =
      {
        net;
        flow = fresh_flow_id ();
        src;
        dst;
        packet_size;
        max_cwnd;
        stop;
        cwnd = initial_cwnd;
        ssthresh = 32.;
        next_seq = 0;
        outstanding = Hashtbl.create 64;
        deadlines = Hashtbl.create 64;
        retx_queue = [];
        srtt = 0.;
        rttvar = 0.;
        sent_packets = 0;
        retransmissions = 0;
        running = true;
        last_cut = -1.;
        received = Hashtbl.create 256;
        delivered_bytes = 0.;
        rx_window = Ff_util.Stats.Window_counter.create ~width:1.0;
      }
    in
    (* receiver at dst handles data; sender at src handles acks *)
    Hashtbl.replace (Net.host net dst).Net.receivers t.flow (fun pkt -> on_data t pkt);
    Hashtbl.replace (Net.host net src).Net.receivers t.flow (fun pkt ->
        match pkt.Packet.payload with
        | Packet.Ack { acked } -> on_ack t acked
        | _ -> ());
    Engine.schedule (Net.engine net) ~at (fun () -> try_send t);
    t

  let pause t = t.running <- false

  let resume t ~now =
    ignore now;
    if not t.running then begin
      t.running <- true;
      try_send t
    end
end

module Cbr = struct
  type t = {
    net : Net.t;
    flow : int;
    src : int;
    dst : int;
    packet_size : int;
    rate_pps : float;
    stop : float option;
    pulse_period : float option;
    pulse_duty : float;
    ttl : int;
    via : int;
    mutable sent_packets : int;
    mutable delivered_bytes : float;
    mutable running : bool;
    mutable seq : int;
  }

  let flow_id t = t.flow
  let delivered_bytes t = t.delivered_bytes
  let sent_packets t = t.sent_packets
  let stop_now t = t.running <- false

  let in_duty t now =
    match t.pulse_period with
    | None -> true
    | Some p -> Float.rem now p < t.pulse_duty *. p

  (* One burst = [burst_len] send ticks sharing a single engine closure
     (Engine.schedule_burst), so a constant-rate source pays one allocation
     per burst instead of one closure per packet. Tick times accumulate by
     [period] exactly like the old self-scheduling chain. *)
  let burst_len = 64

  let send_tick t =
    let now = Net.now t.net in
    let stopped = match t.stop with Some s -> now >= s | None -> false in
    if t.running && not stopped then begin
      if in_duty t now then begin
        let pkt =
          Packet.make ~size:t.packet_size ~seq:t.seq ~ttl:t.ttl ~src:t.src ~dst:t.dst
            ~flow:t.flow ~birth:now ()
        in
        t.seq <- t.seq + 1;
        t.sent_packets <- t.sent_packets + 1;
        Net.send_from_host_via t.net ~via:t.via pkt
      end;
      true
    end
    else false

  let rec arm t ~start =
    let period = 1. /. t.rate_pps in
    Engine.schedule_burst (Net.engine t.net) ~start ~period ~count:burst_len (fun k ->
        let continue = send_tick t in
        if continue && k = burst_len - 1 then
          arm t ~start:(Net.now t.net +. period);
        continue)

  let start net ~src ~dst ~rate_pps ?at ?stop ?(packet_size = 1000) ?pulse_period
      ?(pulse_duty = 0.5) ?(ttl = 64) ?via () =
    assert (rate_pps > 0.);
    let at = match at with Some a -> a | None -> Net.now net in
    let t =
      {
        net;
        flow = fresh_flow_id ();
        src;
        dst;
        packet_size;
        rate_pps;
        stop;
        pulse_period;
        pulse_duty;
        ttl;
        via = (match via with Some v -> v | None -> src);
        sent_packets = 0;
        delivered_bytes = 0.;
        running = true;
        seq = 0;
      }
    in
    Hashtbl.replace (Net.host net dst).Net.receivers t.flow (fun pkt ->
        t.delivered_bytes <- t.delivered_bytes +. float_of_int pkt.Packet.size);
    arm t ~start:at;
    t
end

module Traceroute = struct
  let run net ~src ~dst ?(max_ttl = 16) ?(timeout = 1.0) ?(probes_per_hop = 3) ~on_done () =
    let flow = fresh_flow_id () in
    let replies : (int * int) list ref = ref [] in
    let host = Net.host net src in
    Hashtbl.replace host.Net.receivers flow (fun pkt ->
        match pkt.Packet.payload with
        | Packet.Traceroute_reply { hop; responder; _ } ->
          if not (List.mem_assoc hop !replies) then replies := (hop, responder) :: !replies
        | _ -> ());
    let now = Net.now net in
    (* several probes per hop, paced apart: congested queues tail-drop
       individual probes, exactly what real traceroute retries cope with *)
    for ttl = 1 to max_ttl do
      for attempt = 0 to probes_per_hop - 1 do
        let pkt =
          Packet.make ~src ~dst ~flow ~birth:now ~ttl ~size:Packet.control_size
            ~payload:(Packet.Traceroute_probe { probe_id = ttl; probe_ttl = ttl })
            ()
        in
        let delay =
          (0.002 *. float_of_int ttl)
          +. (float_of_int attempt *. timeout /. float_of_int (probes_per_hop + 1))
        in
        Engine.after (Net.engine net) ~delay (fun () -> Net.send_from_host net pkt)
      done
    done;
    Engine.after (Net.engine net) ~delay:timeout (fun () ->
        Hashtbl.remove host.Net.receivers flow;
        (* truncate at the first reply from the destination itself *)
        let sorted = List.sort compare !replies in
        let rec cut acc = function
          | [] -> List.rev acc
          | (hop, responder) :: rest ->
            if responder = dst then List.rev ((hop, responder) :: acc) else cut ((hop, responder) :: acc) rest
        in
        on_done (cut [] sorted))
end
