(** An instantiated network: the topology's switches and hosts wired to the
    event engine through capacitated, delayed, drop-tail links.

    Switch behaviour is a pipeline of {!type:stage}s (the runtime face of
    PPMs). A stage inspects/mutates the packet and either lets it continue,
    forwards it explicitly, absorbs it (probes), or drops it. When every
    stage says [Continue], the default forwarding stage routes by the
    switch's table (with a backup table for fast reroute, paper section 3.4).

    Routing state is dense: next-hop tables are [int array]s indexed by
    destination node id ([-1] = no entry) and per-pair overrides live in an
    open-addressed {!Ff_util.Int_table} keyed [src * num_nodes + dst], so a
    forwarding decision is array probes — no hashing, no tuple boxing.
    Prefer the [set_route]/[route_lookup]/[route_entries] functions over
    poking the raw fields; the setters keep the invariants (range checks,
    backup entry count). *)

type t

type decision =
  | Continue  (** pass to the next stage *)
  | Forward of int  (** send toward this neighbor node id *)
  | Drop of string  (** drop with a reason (counted) *)
  | Absorb  (** consumed by the stage (e.g. a probe that terminates here) *)

type switch = {
  sw_id : int;
  mutable stages : stage list;
  routes : int array;
      (** next hop indexed by destination node id; [-1] = no entry *)
  backup_routes : int array;  (** fast-reroute fallbacks, same layout *)
  mutable backup_count : int;
      (** live backup entries; maintained by [set_backup_route] *)
  pair_routes : Ff_util.Int_table.t;
      (** [src * num_nodes + dst] -> next hop; consulted before [routes],
          which lets traffic engineering pick per-pair paths *)
  mutable up : bool;  (** false while being repurposed/failed *)
  vars : (string, float) Hashtbl.t;  (** scalar switch state (modes, config) *)
  mutable flags : int;
      (** interned boolean vars, one bit per {!flag_mask} name; test with
          {!flag_on} on per-packet paths instead of hashing into [vars] *)
  mutable sctx : ctx option;
      (** the switch's reusable pipeline context — internal to
          [handle_at_switch], do not touch *)
}

and ctx = {
  net : t;
  sw : switch;
  mutable in_port : int;
      (** neighbor node the packet came from; -1 if locally injected.
          Mutable because one ctx per switch is reused across packets —
          read it, never write it, and don't retain the ctx beyond the
          stage call. Current time is [now net]. *)
}

and stage = { stage_name : string; process : ctx -> Ff_dataplane.Packet.t -> decision }

type host = {
  host_id : int;
  receivers : (int, Ff_dataplane.Packet.t -> unit) Hashtbl.t;  (** by flow id *)
  mutable fallback_rx : (Ff_dataplane.Packet.t -> unit) option;
}

(** {1 Construction} *)

val create : ?queue_limit_bytes:float -> Engine.t -> Ff_topology.Topology.t -> t
(** Every link direction gets a drop-tail queue of [queue_limit_bytes]
    (default 37500 B = 30 ms at 10 Mb/s). Switches start with the default
    stage set: a TTL/traceroute stage followed by table routing.

    Registers the net as the engine's packet-lane handler
    ({!Engine.set_packet_handler}) — one net per engine; creating a second
    net on the same engine redirects in-flight packet arrivals to it. *)

val engine : t -> Engine.t
val topology : t -> Ff_topology.Topology.t
val now : t -> float

val fresh_flow_id : t -> int
(** Allocate a flow id unique within this net. Per-net (not process-wide)
    so that a run's flow ids — and every hash keyed on them — do not
    depend on how many flows earlier simulations in the same process
    created; two identically-seeded runs replay bit-for-bit. *)

val flag_mask : string -> int
(** Intern a boolean switch-var name into a process-wide one-hot bit mask.
    Call once at install time; at most [Sys.int_size - 1] distinct names. *)

val set_flag : switch -> mask:int -> bool -> unit
(** Set/clear an interned flag bit. Writers that keep the same state in
    [vars] (the mode protocol) should update both. *)

val flag_on : switch -> mask:int -> bool
(** One [land]: the per-packet read path for mode gates. *)

val switch : t -> int -> switch
(** Raises [Invalid_argument] if the node is not a switch. *)

val host : t -> int -> host
val switch_ids : t -> int list
val host_ids : t -> int list

(** {1 Stages} *)

val add_stage : ?front:bool -> t -> sw:int -> stage -> unit
(** Append (or prepend with [~front:true]) a stage; replaces any existing
    stage with the same name. *)

val remove_stage : t -> sw:int -> name:string -> unit
val has_stage : t -> sw:int -> name:string -> bool

(** {1 Routing}

    Setters raise [Invalid_argument] when a node id falls outside the
    topology (the dense tables are indexed by node id); lookups treat
    out-of-range ids — spoofed packets carry them — as "no entry". *)

val set_route : t -> sw:int -> dst:int -> next_hop:int -> unit
val set_pair_route : t -> sw:int -> src:int -> dst:int -> next_hop:int -> unit
val set_backup_route : t -> sw:int -> dst:int -> next_hop:int -> unit
val route_lookup : t -> sw:int -> dst:int -> int option
val pair_route_lookup : t -> sw:int -> src:int -> dst:int -> int option

val backup_route_lookup : t -> sw:int -> dst:int -> int option
(** The fast-reroute fallback toward [dst], if installed. *)

val route_entries : t -> sw:int -> (int * int) list
(** Live [(dst, next_hop)] destination-route entries, ascending by
    destination. Host-attachment entries included. *)

val pair_route_entries : t -> sw:int -> ((int * int) * int) list
(** Live [((src, dst), next_hop)] pair-route entries, unspecified order. *)

val clear_routes : t -> sw:int -> unit
(** Drops destination and pair routes, then restores direct host
    attachment entries. *)

val install_path : t -> dst:int -> Ff_topology.Topology.path -> unit
(** Set the route toward [dst] on every switch along the path. *)

val install_pair_path : t -> src:int -> dst:int -> Ff_topology.Topology.path -> unit
(** Pin the (src,dst) pair to this path (per-pair entries on every switch
    along it). *)

val current_path : t -> src:int -> dst:int -> int list option
(** The path a (src,dst) packet would take through the current tables
    (pair routes first, then destination routes), hosts included. [None]
    on a routing loop or missing entry. Used to snapshot the "virtual
    topology" the obfuscator answers traceroutes with. *)

(** {1 Traffic} *)

val send_from_host : t -> Ff_dataplane.Packet.t -> unit
(** Transmit from [pkt.src]'s access link. *)

val send_from_host_via : t -> via:int -> Ff_dataplane.Packet.t -> unit
(** Transmit from the access link of host [via], regardless of the
    packet's source field — how a compromised host emits spoofed-source
    traffic. *)

val emit_from_switch : t -> sw:int -> next:int -> Ff_dataplane.Packet.t -> unit
(** Switch-originated packet (probes, replies) sent toward a neighbor. *)

val inject_at_switch : t -> sw:int -> Ff_dataplane.Packet.t -> unit
(** Run a locally created packet through the switch's own pipeline
    (in_port = -1), letting normal forwarding route it. *)

val flood_from_switch : t -> sw:int -> except:int list ->
  (unit -> Ff_dataplane.Packet.t) -> unit
(** Send one fresh packet (from the thunk) to every switch neighbor not in
    [except]. *)

(** {1 Observation} *)

val utilization : t -> from_:int -> to_:int -> float
(** Recent utilization of the directed link, in [0,1]: windowed packet-tier
    transmission rate {e plus} the fluid-tier background load, over
    capacity — detectors see a fluid-tier flood exactly like a packet one. *)

val link_drops : t -> from_:int -> to_:int -> int
val link_tx_packets : t -> from_:int -> to_:int -> int

(** {2 Fluid background load}

    The hybrid fluid tier ({!Ff_fluid.Fluid}) pushes each directed link's
    analytic background load here after every rate recomputation. A
    non-zero load (a) counts toward [utilization], and (b) shrinks the
    capacity the packet tier transmits against (floored at 1% of the raw
    capacity), so packet-tier traffic sharing a link with fluid flows sees
    the queueing delay and drop pressure the fluid load implies. With
    every load at 0 the packet path is bit-identical to the pre-fluid
    engine — the guard branches never execute a float op. *)

val set_fluid_load : t -> from_:int -> to_:int -> float -> unit
(** Set the fluid background load on a directed link, bits/s (negative is
    clamped to 0). Raises [Invalid_argument] if the nodes are not
    adjacent. *)

val fluid_load : t -> from_:int -> to_:int -> float
(** Current fluid load on the directed link (0. when none or not
    adjacent). *)

val link_packet_bps : t -> from_:int -> to_:int -> float
(** Windowed packet-tier transmission rate on the directed link, bits/s —
    what the fluid solver subtracts from capacity so the two tiers share
    bandwidth in both directions. *)

val link_capacity : t -> from_:int -> to_:int -> float
(** Raw link capacity, bits/s (0. when not adjacent). *)

val link_delay : t -> from_:int -> to_:int -> float
(** Propagation delay, seconds (0. when not adjacent). *)

(** {2 Dense directed-link indexing}

    Every directed link carries a stable index in [0, n_dirlinks).
    The incremental fluid solver keys its scratch arrays and dirty sets
    on these indices instead of [(from_, to_)] pairs, so per-solve
    hashtable rebuilds disappear. Indices are assigned at [create] and
    never change (links that flap keep their index). *)

val n_dirlinks : t -> int
(** Number of directed links (twice the undirected link count). *)

val link_index : t -> from_:int -> to_:int -> int
(** Dense index of a directed link, or -1 if the nodes are not
    adjacent. O(degree of [from_]). *)

val link_ends_i : t -> int -> int * int
(** [(from_, to_)] endpoints of a directed link by index. *)

val link_capacity_i : t -> int -> float
(** Raw capacity, bits/s, of a directed link by index. *)

val link_packet_bps_i : t -> int -> float
(** Windowed packet-tier transmission rate, bits/s, by index — same
    figure as {!link_packet_bps} without the adjacency scan. *)

val set_fluid_load_i : t -> int -> float -> unit
(** Index-keyed {!set_fluid_load} (negative clamped to 0). *)

val set_drop_hook : t -> (int -> unit) option -> unit
(** Install a callback invoked with the directed-link index on every
    queue-overflow drop. The hook must not schedule engine events or
    touch packet state — the fluid tier uses it to mark links dirty so
    the next solver tick applies loss-coupled AIMD cuts. [None]
    uninstalls. *)

val total_tx_packets : t -> int
(** Sum of per-hop transmissions over every directed link: the
    denominator of the packets/s figure the [perf] benchmark reports. *)

val drops_by_reason : t -> (string * int) list
val count_drop : t -> string -> unit
(** Account a drop decided outside a stage (e.g. transport-level). *)

val neighbors_of : t -> int -> int list
(** Switch neighbors of a switch (hosts excluded). *)

val attached_hosts : t -> sw:int -> int list

val access_switch : t -> host:int -> int
(** The switch a host hangs off. *)

(** {1 Failure model} *)

val set_switch_up : t -> sw:int -> bool -> unit
(** A down switch drops everything it receives (its neighbors' fast-reroute
    backup routes keep traffic flowing, if installed). *)

val set_link_up : t -> a:int -> b:int -> bool -> unit
(** Fail/restore both directions of a link: transmissions onto a down link
    are dropped (reason ["link-down"]). Raises [Invalid_argument] if the
    nodes are not adjacent. *)

val link_is_up : t -> a:int -> b:int -> bool

val switch_is_up : t -> sw:int -> bool

val live_shortest_path : t -> src:int -> dst:int -> int list option
(** Hop-shortest path over the {e live} graph only: down switches and down
    links are invisible, and hosts never transit (they can only be
    endpoints). Unlike [Topology.shortest_path] this sees the failure
    model, so control channels use it to recompute routes mid-failure.
    [None] when either endpoint is down or no live path exists. *)

(** {1 Sharding}

    Hooks for the conservative parallel engine ({!Ff_parallel.Psim}). A
    sharded run builds one net per shard over the {e whole} topology (so
    node ids, adjacency and routing tables stay globally indexed) but marks
    each net with the set of nodes its shard owns. A transmission whose
    receiving node is owned schedules locally as usual; one that crosses a
    region boundary is handed to [post] — an SPSC mailbox toward the owning
    shard — instead of the local engine. *)

val set_shard_hook :
  t ->
  owned:Bytes.t ->
  post:(at:float -> to_node:int -> from_node:int -> Ff_dataplane.Packet.t -> unit) ->
  unit
(** [owned] is indexed by node id (['\000'] = not ours); must match the
    node count. [post] must accept concurrent-free single-producer calls —
    it is only ever invoked from the domain running this net. *)

val clear_shard_hook : t -> unit

val owns : t -> int -> bool
(** Whether this net's shard owns the node ([true] for an unsharded net).
    Scenario code uses it to register receivers and start flows only on
    the owning shard's copy. *)

(** {1 Tracing} *)

type trace_event = {
  time : float;
  node : int;  (** where it happened *)
  uid : int;  (** packet uid *)
  flow : int;
  kind : trace_kind;
}

and trace_kind =
  | Switch_arrival
  | Host_delivery
  | Packet_drop of string

val set_tracer : t -> (trace_event -> unit) option -> unit
(** Install (or clear) a callback invoked on every switch arrival, host
    delivery, and drop. One tracer at a time; keep the callback cheap. *)

val trace_flow : t -> flow:int -> trace_event list ref
(** Convenience: install a tracer that accumulates this flow's events
    (newest first) into the returned ref. Replaces any existing tracer. *)

(** {1 Telemetry}

    The structured observability layer ([Ff_obs]): a typed event trace and
    a metrics registry every subsystem holding the net can report into.
    [create] attaches the ambient trace/registry if one is set
    ({!Ff_obs.Trace.set_ambient}), so harnesses can observe networks built
    deep inside scenario code. *)

val attach_obs : t -> Ff_obs.Trace.t option -> unit
val obs_trace : t -> Ff_obs.Trace.t option

val obs_emit : t -> Ff_obs.Event.t -> unit
(** Emit stamped with the current simulation time; no-op when no trace is
    attached. *)

val obs_active : t -> bool
(** Whether a trace is attached. Per-packet emitters should test this
    before constructing an event value, so an unattached trace costs no
    allocation at all. *)

val attach_metrics : t -> Ff_obs.Metrics.t option -> unit
val metrics : t -> Ff_obs.Metrics.t option
