let sample engine ~period ?start ?until ~name probe =
  (* default to the current clock, not 0.: a monitor attached mid-run used
     to make Engine.every reject the first tick as scheduled in the past *)
  let start = match start with Some s -> s | None -> Engine.now engine in
  let series = Ff_util.Series.create ~name in
  Engine.every engine ~start ?until ~period (fun () ->
      let now = Engine.now engine in
      Ff_util.Series.add series ~time:now (probe now));
  series

let link_utilization net ~from_ ~to_ ~period ?until () =
  let name = Printf.sprintf "util-%d->%d" from_ to_ in
  sample (Net.engine net) ~period ?until ~name (fun _ -> Net.utilization net ~from_ ~to_)

let aggregate_goodput net ~flows ~period ?until ~name () =
  sample (Net.engine net) ~period ?until ~name (fun now ->
      List.fold_left (fun acc f -> acc +. Flow.Tcp.goodput f ~now) 0. flows)

let normalized_goodput net ~flows ~baseline ~period ?until ~name () =
  assert (baseline > 0.);
  sample (Net.engine net) ~period ?until ~name (fun now ->
      List.fold_left (fun acc f -> acc +. Flow.Tcp.goodput f ~now) 0. flows /. baseline)
