let sample engine ~period ?start ?until ~name probe =
  (* default to the current clock, not 0.: a monitor attached mid-run used
     to make Engine.every reject the first tick as scheduled in the past *)
  let start = match start with Some s -> s | None -> Engine.now engine in
  let series = Ff_util.Series.create ~name in
  Engine.every engine ~start ?until ~period (fun () ->
      let now = Engine.now engine in
      Ff_util.Series.add series ~time:now (probe now));
  series

let link_utilization net ~from_ ~to_ ~period ?until () =
  let name = Printf.sprintf "util-%d->%d" from_ to_ in
  sample (Net.engine net) ~period ?until ~name (fun _ -> Net.utilization net ~from_ ~to_)

(* ---------------- flow-kind-agnostic goodput probes ---------------- *)

type probe = float -> float

let tcp_probe f now = Flow.Tcp.goodput f ~now

(* CBR keeps only a cumulative delivered-bytes counter (no receive window
   on its hot path), so its rate probe differentiates that counter between
   successive samples. The closure carries the last sample; the first call
   returns 0 (no interval yet). *)
let cbr_probe f =
  let last_t = ref nan in
  let last_b = ref 0. in
  fun now ->
    let b = Flow.Cbr.delivered_bytes f in
    let r =
      if Float.is_nan !last_t || now <= !last_t then 0.
      else (b -. !last_b) /. (now -. !last_t)
    in
    last_t := now;
    last_b := b;
    r

let counter_probe read =
  let last_t = ref nan in
  let last_b = ref 0. in
  fun now ->
    let b = read () in
    let r =
      if Float.is_nan !last_t || now <= !last_t then 0.
      else (b -. !last_b) /. (now -. !last_t)
    in
    last_t := now;
    last_b := b;
    r

let sum_probes probes now = List.fold_left (fun acc p -> acc +. p now) 0. probes

let aggregate_goodput net ?(flows = []) ?(probes = []) ~period ?until ~name () =
  let probes = List.map tcp_probe flows @ probes in
  sample (Net.engine net) ~period ?until ~name (fun now -> sum_probes probes now)

let normalized_goodput net ?(flows = []) ?(probes = []) ~baseline ~period ?until ~name () =
  assert (baseline > 0.);
  let probes = List.map tcp_probe flows @ probes in
  sample (Net.engine net) ~period ?until ~name (fun now ->
      sum_probes probes now /. baseline)
