(** End-host transport agents.

    [Tcp] is a loss-responsive AIMD transport (slow start, additive
    increase, multiplicative decrease on retransmission timeout) — enough
    congestion-control realism for throughput dynamics under attack, which
    is what paper Figure 3 measures. [Cbr] is an open-loop constant-bit-rate
    sender with optional on/off pulsing. [Traceroute] is the reconnaissance
    agent attackers use to map paths (and the obfuscation booster deceives). *)

val fresh_flow_id : Net.t -> int
(** Allocate a flow id unique within the given net (see
    {!Net.fresh_flow_id} — per-net so identically-seeded runs replay
    bit-for-bit regardless of what ran earlier in the process). *)

module Tcp : sig
  type t

  val start :
    Net.t ->
    src:int ->
    dst:int ->
    ?at:float ->
    ?stop:float ->
    ?packet_size:int ->
    ?max_cwnd:float ->
    ?initial_cwnd:float ->
    unit ->
    t
  (** Begin an infinite (or [stop]-bounded) transfer at time [at]
      (default: now). [max_cwnd] caps the
      congestion window — the attacker uses a small cap to produce
      persistent, low-rate, legitimate-looking flows (Crossfire). *)

  val flow_id : t -> int
  val src : t -> int
  val dst : t -> int

  val goodput : t -> now:float -> float
  (** Receiver-side goodput over the last measurement window, bytes/s. *)

  val delivered_bytes : t -> float
  val sent_packets : t -> int
  val retransmissions : t -> int
  val cwnd : t -> float
  val srtt : t -> float
  (** Smoothed RTT estimate, seconds (0. before the first sample). *)

  val pause : t -> unit
  (** Stop sending (outstanding timers become no-ops). *)

  val resume : t -> now:float -> unit
end

module Listener : sig
  (** Server-side TCP accept state — the resource a SYN flood exhausts.
      Installed as the host's fallback receiver: SYN/handshake/data
      packets of flows without a dedicated receiver land here. Each SYN
      occupies one half-open backlog slot until the handshake ack arrives
      or [syn_timeout] expires; SYNs past the (capped) backlog are
      dropped with reason ["backlog-full"]. *)
  type t

  val install : Net.t -> host:int -> ?backlog:int -> ?syn_timeout:float ->
    unit -> t

  val established : t -> int
  (** Connections that completed the three-way handshake. *)

  val half_open_count : t -> int
  val backlog : t -> int

  val occupancy : t -> float
  (** [half_open_count / backlog], in [0,1]. *)

  val peak_occupancy : t -> float
  (** High-water backlog occupancy over the listener's lifetime. *)

  val backlog_drops : t -> int
  (** SYNs refused because the backlog was full. *)

  val timeouts : t -> int
  (** Half-open entries that expired unacked (each freed its slot). *)

  val data_bytes : t -> float
  (** Bytes delivered on established flows. *)

  val set_trust_validated : t -> bool -> unit
  (** The server-side split-proxy agent: when [true], a handshake ack
      carrying a non-zero cookie but no half-open entry establishes
      directly — the edge switch already validated the peer, the server
      never saw its SYN. *)

  val trust_validated : t -> bool
end

module Handshake : sig
  (** A legitimate client opening short connections in a loop: SYN →
      SYN-ACK (with retries) → handshake ack echoing the cookie → a small
      data burst → FIN, then the next connection after [conn_interval].
      Completed handshakes are the goodput unit of the SYN-flood
      scenario. *)
  type t

  val start :
    Net.t ->
    src:int ->
    dst:int ->
    ?at:float ->
    ?stop:float ->
    ?conn_interval:float ->
    ?syn_timeout:float ->
    ?max_retries:int ->
    ?data_packets:int ->
    ?data_size:int ->
    unit ->
    t

  val attempts : t -> int
  val completed : t -> int
  val failed : t -> int

  val completed_bytes : t -> float
  (** Cumulative completed handshakes expressed as bytes (one handshake
      counts its data burst) — feed to {!Monitor.counter_probe}. *)

  val src : t -> int
  val dst : t -> int
  val stop_now : t -> unit
end

module Cbr : sig
  type t

  val start :
    Net.t ->
    src:int ->
    dst:int ->
    rate_pps:float ->
    ?at:float ->
    ?stop:float ->
    ?packet_size:int ->
    ?pulse_period:float ->
    ?pulse_duty:float ->
    ?ttl:int ->
    ?via:int ->
    unit ->
    t
  (** [pulse_period]/[pulse_duty] make the sender burst for
      [duty * period] out of every [period] seconds (pulsing attacks).
      [ttl] overrides the initial TTL and [via] the emitting host — the
      combination a spoofing attacker uses (claimed [src], real [via]). *)

  val flow_id : t -> int
  val delivered_bytes : t -> float
  val sent_packets : t -> int
  val stop_now : t -> unit
end

module Traceroute : sig
  val run :
    Net.t ->
    src:int ->
    dst:int ->
    ?max_ttl:int ->
    ?timeout:float ->
    ?probes_per_hop:int ->
    on_done:((int * int) list -> unit) ->
    unit ->
    unit
  (** Probe with TTL 1..[max_ttl], [probes_per_hop] attempts per hop
      (default 3 — congested queues drop probes, so single-shot probing
      goes blind beyond a flooded link); after [timeout] seconds (default
      1.) call [on_done] with the [(hop, responder)] pairs collected,
      sorted by hop. The responder ids are whatever the network answered —
      obfuscated if NetHide-style defense is active on the path. *)
end
