type t = { heap : (unit -> unit) Ff_util.Heap.t; mutable clock : float }

(* Process-wide count of executed events, across every engine instance:
   the denominator-free "work done" measure the profiler reports even for
   engines buried inside scenario code. *)
let global_steps = ref 0
let total_steps () = !global_steps

let create () = { heap = Ff_util.Heap.create (); clock = 0. }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.9f is before now=%.9f" at t.clock);
  Ff_util.Heap.push t.heap ~prio:(max at t.clock) f

let after t ~delay f =
  assert (delay >= 0.);
  schedule t ~at:(t.clock +. delay) f

let every t ?start ?until ~period f =
  assert (period > 0.);
  let start = match start with Some s -> s | None -> t.clock +. period in
  (* one closure for the whole series; [next] carries the tick's own time *)
  let next = ref start in
  let rec tick () =
    match until with
    | Some u when !next > u +. 1e-12 -> ()
    | _ ->
      f ();
      next := !next +. period;
      schedule t ~at:!next tick
  in
  schedule t ~at:start tick

let schedule_burst t ~start ~period ~count f =
  assert (period >= 0.);
  if count > 0 then begin
    if start < t.clock -. 1e-12 then
      invalid_arg
        (Printf.sprintf "Engine.schedule_burst: start=%.9f is before now=%.9f" start t.clock);
    (* a single self-rescheduling closure with one live heap slot: the
       burst costs one allocation total instead of one closure per tick *)
    let at = ref (max start t.clock) in
    let k = ref 0 in
    let rec tick () =
      let continue = f !k in
      incr k;
      if continue && !k < count then begin
        at := !at +. period;
        Ff_util.Heap.push t.heap ~prio:!at tick
      end
    in
    Ff_util.Heap.push t.heap ~prio:!at tick
  end

let step t =
  if Ff_util.Heap.is_empty t.heap then false
  else begin
    let at = Ff_util.Heap.min_prio t.heap in
    let f = Ff_util.Heap.pop_min t.heap in
    t.clock <- max t.clock at;
    incr global_steps;
    f ();
    true
  end

let run t ~until =
  let heap = t.heap in
  while (not (Ff_util.Heap.is_empty heap)) && Ff_util.Heap.min_prio heap <= until do
    ignore (step t)
  done;
  t.clock <- max t.clock until

let pending t = Ff_util.Heap.size t.heap

let clear t = Ff_util.Heap.clear t.heap
