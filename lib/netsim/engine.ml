(* Two typed event lanes share one clock and one sequence counter.

   The packet lane exists because packet arrivals are the dominant event
   class (one per link hop; ~1.5M per bench run): storing them as
   (time, seq, to_node, from_node, pkt) heap columns instead of a
   [fun () -> receive ...] thunk removes the last per-hop closure
   allocation. Everything rare — timers, bursts, the mode protocol —
   stays on the thunk lane.

   Ordering: every schedule, on either lane, draws the next value of the
   engine-wide [next_seq] counter, and dispatch always picks the lane
   whose top has the smaller (time, seq). That is exactly the order the
   old single-heap engine produced, so runs are bit-identical. *)

type packet_handler = to_node:int -> from_node:int -> Ff_dataplane.Packet.t -> unit

let no_handler ~to_node:_ ~from_node:_ _ =
  failwith "Engine.schedule_packet: no packet handler registered"

type t = {
  thunks : (unit -> unit) Ff_util.Heap.t;
  packets : Ff_dataplane.Packet.t Ff_util.Heap.t;
      (* tag1 = to_node, tag2 = from_node *)
  mutable clock : float;
  mutable next_seq : int;
  mutable steps : int;
  mutable on_packet : packet_handler;
}

(* Process-wide count of executed events, across every engine instance:
   the denominator-free "work done" measure the profiler reports even for
   engines buried inside scenario code.

   It used to be a bare [ref] bumped on every dispatch — a data race once
   engines run on separate domains, and a per-event shared-cache-line hit
   either way. Dispatch now bumps the engine's own [steps] field and the
   run entry points flush the delta into this atomic, so the hot loop
   stays domain-local and the aggregate stays exact at every point where
   a caller can observe it (between [run]/[run_window]/[step] calls). *)
let global_steps = Atomic.make 0
let total_steps () = Atomic.get global_steps
let flush_steps delta = if delta > 0 then ignore (Atomic.fetch_and_add global_steps delta)

let create () =
  {
    thunks = Ff_util.Heap.create ();
    packets = Ff_util.Heap.create ();
    clock = 0.;
    next_seq = 0;
    steps = 0;
    on_packet = no_handler;
  }

let steps t = t.steps

let now t = t.clock

let set_packet_handler t h = t.on_packet <- h

let push_thunk t ~prio f =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Ff_util.Heap.push_seq t.thunks ~prio ~seq f

let schedule t ~at f =
  if at < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.9f is before now=%.9f" at t.clock);
  push_thunk t ~prio:(max at t.clock) f

let schedule_packet t ~at ~to_node ~from_node pkt =
  if at < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.schedule_packet: at=%.9f is before now=%.9f" at
         t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* pass one of the two already-boxed floats instead of [max at t.clock],
     which would box a fresh result per call *)
  let prio = if at >= t.clock then at else t.clock in
  Ff_util.Heap.push_tagged t.packets ~prio ~seq ~tag1:to_node ~tag2:from_node pkt

let after t ~delay f =
  assert (delay >= 0.);
  schedule t ~at:(t.clock +. delay) f

(* Single-float record for tick-time accumulators: a [float ref]'s [:=]
   boxes a fresh float per tick, a flat record field stores it unboxed. *)
type fcell = { mutable fv : float }

let every t ?start ?until ~period f =
  assert (period > 0.);
  let start = match start with Some s -> s | None -> t.clock +. period in
  (* one closure for the whole series; [next] carries the tick's own time *)
  let next = { fv = start } in
  let rec tick () =
    match until with
    | Some u when next.fv > u +. 1e-12 -> ()
    | _ ->
      f ();
      next.fv <- next.fv +. period;
      schedule t ~at:next.fv tick
  in
  schedule t ~at:start tick

let schedule_burst t ~start ~period ~count f =
  assert (period >= 0.);
  if count > 0 then begin
    if start < t.clock -. 1e-12 then
      invalid_arg
        (Printf.sprintf "Engine.schedule_burst: start=%.9f is before now=%.9f" start t.clock);
    (* a single self-rescheduling closure with one live heap slot: the
       burst costs one allocation total instead of one closure per tick *)
    let at = { fv = max start t.clock } in
    let k = ref 0 in
    let rec tick () =
      let continue = f !k in
      incr k;
      if continue && !k < count then begin
        at.fv <- at.fv +. period;
        push_thunk t ~prio:at.fv tick
      end
    in
    push_thunk t ~prio:at.fv tick
  end

(* Lane dispatchers: each costs one boxed float (min_prio's return, which
   then lives on as the clock's box) — the same per-event price the old
   single-heap engine paid. *)
let dispatch_packet t =
  let at = Ff_util.Heap.min_prio t.packets in
  let to_node = Ff_util.Heap.top_tag1 t.packets
  and from_node = Ff_util.Heap.top_tag2 t.packets in
  let pkt = Ff_util.Heap.pop_min t.packets in
  t.clock <- (if at > t.clock then at else t.clock);
  t.steps <- t.steps + 1;
  t.on_packet ~to_node ~from_node pkt

let dispatch_thunk t =
  let at = Ff_util.Heap.min_prio t.thunks in
  let f = Ff_util.Heap.pop_min t.thunks in
  t.clock <- (if at > t.clock then at else t.clock);
  t.steps <- t.steps + 1;
  f ()

let step t =
  if Ff_util.Heap.top_before t.packets t.thunks then begin
    dispatch_packet t;
    flush_steps 1;
    true
  end
  else if not (Ff_util.Heap.is_empty t.thunks) then begin
    dispatch_thunk t;
    flush_steps 1;
    true
  end
  else false

let run t ~until =
  let thunks = t.thunks and packets = t.packets in
  let steps0 = t.steps in
  let continue = ref true in
  while !continue do
    if Ff_util.Heap.top_before packets thunks then
      if Ff_util.Heap.top_at_most packets until then dispatch_packet t
      else continue := false
    else if Ff_util.Heap.top_at_most thunks until then dispatch_thunk t
    else (* both lanes drained or next event past [until] *) continue := false
  done;
  t.clock <- max t.clock until;
  flush_steps (t.steps - steps0)

(* The conservative-PDES window: execute events strictly before [horizon],
   then park the clock at the horizon. Exclusive, unlike [run] — an event
   at exactly the horizon may tie with a cross-shard arrival that another
   shard has not yet sent, so it must wait for the next window, where the
   documented (time, shard, seq) drain order resolves the tie. Leaving the
   clock at [horizon] is safe precisely because conservative lookahead
   guarantees every future cross-shard arrival lands at or after it. *)
let run_window t ~horizon =
  let thunks = t.thunks and packets = t.packets in
  let steps0 = t.steps in
  let continue = ref true in
  while !continue do
    if Ff_util.Heap.top_before packets thunks then
      if Ff_util.Heap.top_lt packets horizon then dispatch_packet t
      else continue := false
    else if Ff_util.Heap.top_lt thunks horizon then dispatch_thunk t
    else continue := false
  done;
  t.clock <- max t.clock horizon;
  flush_steps (t.steps - steps0)

let next_time t =
  let p = t.packets and h = t.thunks in
  if Ff_util.Heap.is_empty p then
    if Ff_util.Heap.is_empty h then infinity else Ff_util.Heap.min_prio h
  else if Ff_util.Heap.is_empty h then Ff_util.Heap.min_prio p
  else min (Ff_util.Heap.min_prio p) (Ff_util.Heap.min_prio h)

let pending t = Ff_util.Heap.size t.thunks + Ff_util.Heap.size t.packets

let clear t =
  Ff_util.Heap.clear t.thunks;
  Ff_util.Heap.clear t.packets;
  (* a cleared engine must be as good as a fresh one: reset the clock (a
     stale clock silently rejected every schedule before the previous
     run's end) and drop the packet handler (a retained one could fire a
     previous run's [Net] from the next run's events) *)
  t.clock <- 0.;
  t.next_seq <- 0;
  t.on_packet <- no_handler
