type t = { heap : (unit -> unit) Ff_util.Heap.t; mutable clock : float }

(* Process-wide count of executed events, across every engine instance:
   the denominator-free "work done" measure the profiler reports even for
   engines buried inside scenario code. *)
let global_steps = ref 0
let total_steps () = !global_steps

let create () = { heap = Ff_util.Heap.create (); clock = 0. }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.9f is before now=%.9f" at t.clock);
  Ff_util.Heap.push t.heap ~prio:(max at t.clock) f

let after t ~delay f =
  assert (delay >= 0.);
  schedule t ~at:(t.clock +. delay) f

let every t ?start ?until ~period f =
  assert (period > 0.);
  let start = match start with Some s -> s | None -> t.clock +. period in
  let rec tick at () =
    match until with
    | Some u when at > u +. 1e-12 -> ()
    | _ ->
      f ();
      schedule t ~at:(at +. period) (tick (at +. period))
  in
  schedule t ~at:start (tick start)

let step t =
  match Ff_util.Heap.pop t.heap with
  | None -> false
  | Some (at, f) ->
    t.clock <- max t.clock at;
    incr global_steps;
    f ();
    true

let run t ~until =
  let rec loop () =
    match Ff_util.Heap.peek t.heap with
    | Some (at, _) when at <= until ->
      ignore (step t);
      loop ()
    | _ -> ()
  in
  loop ();
  t.clock <- max t.clock until

let pending t = Ff_util.Heap.size t.heap

let clear t = Ff_util.Heap.clear t.heap
