module Topology = Ff_topology.Topology
module Packet = Ff_dataplane.Packet

type decision =
  | Continue
  | Forward of int
  | Drop of string
  | Absorb

type switch = {
  sw_id : int;
  mutable stages : stage list;
  routes : int array; (* indexed by destination node id; -1 = no entry *)
  backup_routes : int array;
  mutable backup_count : int;
      (* live backup entries — keeps the no-backups case a single int
         test, as the Hashtbl.length = 0 check used to *)
  pair_routes : Ff_util.Int_table.t; (* keyed src * num_nodes + dst *)
  mutable up : bool;
  vars : (string, float) Hashtbl.t;
  mutable flags : int;
      (* interned boolean vars (see [flag_mask]): per-packet stages test a
         bit here instead of hashing a string key into [vars] *)
  mutable sctx : ctx option;
      (* the switch's reusable pipeline context (internal) *)
}

and ctx = { net : t; sw : switch; mutable in_port : int }

and stage = { stage_name : string; process : ctx -> Packet.t -> decision }

and host = {
  host_id : int;
  receivers : (int, Packet.t -> unit) Hashtbl.t;
  mutable fallback_rx : (Packet.t -> unit) option;
}

and dirlink = {
  link : Topology.link;
  from_node : int;
  to_node : int;
  mutable dl_index : int;
      (* position in [t.dirlinks] — the dense directed-link key the fluid
         solver's flat scratch arrays are indexed by *)
  mutable link_up : bool;
  busy : busy; (* single-float record: flat layout, unboxed writes *)
  queue_limit : float; (* bytes *)
  tx_window : Ff_util.Stats.Window_counter.t;
  mutable drops : int;
  mutable tx_packets : int;
  mutable fluid_bps : float;
      (* analytic background load from the fluid tier, bits/s; 0. when no
         fluid population touches the link — and the packet hot path must
         then take exactly the pre-fluid arithmetic (bit-identity) *)
  (* registry handle resolved once per metrics attachment, not per packet *)
  mutable tx_bytes_ctr : Ff_obs.Metrics.Counter.t option;
}

and busy = { mutable busy_until : float }

and node_entry = Sw of switch | Ho of host

and t = {
  engine : Engine.t;
  topo : Topology.t;
  nodes : node_entry array;
  adj : dirlink array array;
      (* outgoing directed links indexed by source node, in
         [Topology.neighbors] order — the per-packet lookup structure *)
  dirlinks : dirlink array;
      (* the same links flattened in node-major order; [dl_index] points
         back here, giving O(1) by-index access for the fluid solver *)
  mutable drop_hook : (int -> unit) option;
      (* called with the directed-link index on every queue-overflow drop;
         the fluid tier uses it to dirty links for loss-coupled AIMD *)
  stage_cache : stage array array;
      (* per node id; rebuilt by add_stage/remove_stage so the per-packet
         pipeline walk reads an array, not cons cells *)
  drop_ctrs : Ff_obs.Metrics.Counter.t option array; (* per node id *)
  sw_peers : int list array;
      (* switch neighbors per node id, [Topology.neighbors] order — probe
         floods walk this list on every improved probe, so it is built once
         instead of filtered out of the topology per flood *)
  drop_reasons : (string, int) Hashtbl.t;
  mutable tracer : (trace_event -> unit) option;
  mutable obs : Ff_obs.Trace.t option;
  mutable metrics : Ff_obs.Metrics.t option;
  mutable xshard : xshard option;
      (* when this net is one shard of a partitioned simulation, arrivals
         at nodes the shard does not own are diverted to [post] instead of
         the local engine *)
  flow_ids : int Atomic.t;
      (* per-net flow-id allocator. Process-wide allocation would make a
         net's flow ids — and therefore every hash keyed on them
         (HashPipe slots, Bloom bits, meter tables) — depend on how many
         flows *earlier* simulations in the same process created,
         breaking run-to-run determinism. Atomic because flows may be
         started while shard domains run. *)
}

and xshard = {
  owned : Bytes.t;
      (* owned.[node] <> '\000' iff this net's shard owns the node; dense
         byte vector so the per-hop test is one unsafe load *)
  post : at:float -> to_node:int -> from_node:int -> Packet.t -> unit;
      (* cross-shard arrival sink (an SPSC mailbox in Ff_parallel) *)
}

and trace_event = {
  time : float;
  node : int;
  uid : int;
  flow : int;
  kind : trace_kind;
}

and trace_kind =
  | Switch_arrival
  | Host_delivery
  | Packet_drop of string

let engine t = t.engine
let fresh_flow_id t = 1 + Atomic.fetch_and_add t.flow_ids 1
let topology t = t.topo
let now t = Engine.now t.engine

(* ---------------- interned switch flags ---------------- *)

(* Boolean switch state read on the per-packet path (mode gates, mostly)
   pays a string hash per stage per hop if kept in [vars]. Flag names are
   interned process-wide into one-hot masks; the per-switch state is a
   single int, so the hot-path test is one [land]. Writers keep mirroring
   the value into [vars] for introspection. *)
let flag_ids : (string, int) Hashtbl.t = Hashtbl.create 16

(* the intern table is process-wide state touched from every shard domain
   at install time; a Hashtbl resize racing a lookup corrupts it *)
let flag_ids_lock = Mutex.create ()

let flag_mask name =
  Mutex.protect flag_ids_lock (fun () ->
      match Hashtbl.find_opt flag_ids name with
      | Some m -> m
      | None ->
        let i = Hashtbl.length flag_ids in
        if i >= Sys.int_size - 1 then
          invalid_arg "Net.flag_mask: flag space exhausted";
        let m = 1 lsl i in
        Hashtbl.replace flag_ids name m;
        m)

let set_flag (sw : switch) ~mask on =
  sw.flags <- (if on then sw.flags lor mask else sw.flags land lnot mask)

let flag_on (sw : switch) ~mask = sw.flags land mask <> 0

(* ---------------- observability ---------------- *)

let attach_obs t tr = t.obs <- tr
let obs_trace t = t.obs

let attach_metrics t m =
  t.metrics <- m;
  (* the cached handles point into the old registry: drop them *)
  Array.fill t.drop_ctrs 0 (Array.length t.drop_ctrs) None;
  Array.iter (fun links -> Array.iter (fun dl -> dl.tx_bytes_ctr <- None) links) t.adj

let metrics t = t.metrics

let obs_emit t event =
  match t.obs with
  | None -> ()
  | Some tr -> Ff_obs.Trace.emit tr ~time:(Engine.now t.engine) event

(* Hot-path callers check this before constructing an event value, so an
   unattached trace costs nothing — not even the event record. *)
let obs_active t = t.obs <> None

let switch t id =
  match t.nodes.(id) with
  | Sw s -> s
  | Ho _ -> invalid_arg (Printf.sprintf "Net.switch: node %d is a host" id)

let host t id =
  match t.nodes.(id) with
  | Ho h -> h
  | Sw _ -> invalid_arg (Printf.sprintf "Net.host: node %d is a switch" id)

let switch_ids t =
  Array.to_list t.nodes
  |> List.filter_map (function Sw s -> Some s.sw_id | Ho _ -> None)

let host_ids t =
  Array.to_list t.nodes
  |> List.filter_map (function Ho h -> Some h.host_id | Sw _ -> None)

let count_drop t reason =
  Hashtbl.replace t.drop_reasons reason
    (1 + (try Hashtbl.find t.drop_reasons reason with Not_found -> 0))

let emit_trace t ~node ~(pkt : Packet.t) kind =
  match t.tracer with
  | None -> ()
  | Some f ->
    f { time = Engine.now t.engine; node; uid = pkt.Packet.uid; flow = pkt.Packet.flow; kind }

let drop_packet t ~node (pkt : Packet.t) reason =
  count_drop t reason;
  (* the [Packet_drop] argument itself allocates: build it only when traced *)
  (match t.tracer with None -> () | Some _ -> emit_trace t ~node ~pkt (Packet_drop reason));
  if obs_active t then obs_emit t (Ff_obs.Event.Drop { node; reason });
  match t.metrics with
  | None -> ()
  | Some m ->
    (* [node] can be a spoofed (out-of-range) source id on an access-link
       drop; such drops stay visible in drop_reasons and the trace *)
    if node >= 0 && node < Array.length t.drop_ctrs then begin
      let ctr =
        match t.drop_ctrs.(node) with
        | Some c -> c
        | None ->
          let c = Ff_obs.Metrics.counter m ~scope:(Ff_obs.Metrics.Switch node) "drops" in
          t.drop_ctrs.(node) <- Some c;
          c
      in
      Ff_obs.Metrics.Counter.incr ctr
    end

let drops_by_reason t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.drop_reasons []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dirlink_opt t ~from_ ~to_ =
  if from_ < 0 || from_ >= Array.length t.adj then None
  else begin
    let links = t.adj.(from_) in
    let n = Array.length links in
    let rec go i =
      if i >= n then None
      else
        let dl = links.(i) in
        if dl.to_node = to_ then Some dl else go (i + 1)
    in
    go 0
  end

(* Open-coded [dirlink_opt]: this runs once per probe arrival (congestion-
   aware rerouting folds in the reverse link's utilization), where the
   [Some dl] wrapper would be a per-probe allocation. *)
let utilization t ~from_ ~to_ =
  if from_ < 0 || from_ >= Array.length t.adj then 0.
  else begin
    let links = t.adj.(from_) in
    let n = Array.length links in
    let rec go i =
      if i >= n then 0.
      else
        let dl = Array.unsafe_get links i in
        if dl.to_node = to_ then
          let rate = Ff_util.Stats.Window_counter.rate dl.tx_window ~now:(now t) in
          (* fluid background load counts toward utilization — detectors see
             a fluid-tier flood exactly like a packet-tier one. [+. 0.] when
             no fluid load, which is bit-identical to the pre-fluid value. *)
          Float.min 1. (((rate *. 8.) +. dl.fluid_bps) /. dl.link.Topology.capacity)
        else go (i + 1)
    in
    go 0
  end

let link_drops t ~from_ ~to_ =
  match dirlink_opt t ~from_ ~to_ with None -> 0 | Some dl -> dl.drops

let link_tx_packets t ~from_ ~to_ =
  match dirlink_opt t ~from_ ~to_ with None -> 0 | Some dl -> dl.tx_packets

let set_fluid_load t ~from_ ~to_ bps =
  match dirlink_opt t ~from_ ~to_ with
  | Some dl -> dl.fluid_bps <- (if bps > 0. then bps else 0.)
  | None -> invalid_arg "Net.set_fluid_load: nodes not adjacent"

let fluid_load t ~from_ ~to_ =
  match dirlink_opt t ~from_ ~to_ with Some dl -> dl.fluid_bps | None -> 0.

let link_packet_bps t ~from_ ~to_ =
  match dirlink_opt t ~from_ ~to_ with
  | Some dl -> Ff_util.Stats.Window_counter.rate dl.tx_window ~now:(now t) *. 8.
  | None -> 0.

let link_capacity t ~from_ ~to_ =
  match dirlink_opt t ~from_ ~to_ with
  | Some dl -> dl.link.Topology.capacity
  | None -> 0.

let link_delay t ~from_ ~to_ =
  match dirlink_opt t ~from_ ~to_ with Some dl -> dl.link.Topology.delay | None -> 0.

(* ---------------- dense directed-link indexing ---------------- *)

let n_dirlinks t = Array.length t.dirlinks

let link_index t ~from_ ~to_ =
  match dirlink_opt t ~from_ ~to_ with Some dl -> dl.dl_index | None -> -1

let check_dirlink t what i =
  if i < 0 || i >= Array.length t.dirlinks then
    invalid_arg (Printf.sprintf "Net.%s: directed-link index %d out of range" what i)

let link_ends_i t i =
  check_dirlink t "link_ends_i" i;
  let dl = t.dirlinks.(i) in
  (dl.from_node, dl.to_node)

let link_capacity_i t i =
  check_dirlink t "link_capacity_i" i;
  t.dirlinks.(i).link.Topology.capacity

let link_packet_bps_i t i =
  check_dirlink t "link_packet_bps_i" i;
  Ff_util.Stats.Window_counter.rate t.dirlinks.(i).tx_window ~now:(now t) *. 8.

let set_fluid_load_i t i bps =
  check_dirlink t "set_fluid_load_i" i;
  t.dirlinks.(i).fluid_bps <- (if bps > 0. then bps else 0.)

let set_drop_hook t hook = t.drop_hook <- hook

let total_tx_packets t =
  Array.fold_left
    (fun acc links -> Array.fold_left (fun acc dl -> acc + dl.tx_packets) acc links)
    0 t.adj

let neighbors_of t sw_id = t.sw_peers.(sw_id)

let attached_hosts t ~sw =
  Topology.neighbors t.topo sw
  |> List.filter_map (fun (peer, _) ->
         match t.nodes.(peer) with Ho _ -> Some peer | Sw _ -> None)

let access_switch t ~host:h =
  match Topology.neighbors t.topo h with
  | [ (peer, _) ] -> peer
  | (peer, _) :: _ -> peer
  | [] -> invalid_arg "Net.access_switch: isolated host"

(* ---------------- transmission ---------------- *)

let rec transmit t dl (pkt : Packet.t) =
  let tnow = now t in
  let cap =
    (* capacity left for the packet tier once the fluid background load is
       subtracted, floored at 1% so a fluid-saturated link still drains (and
       overflows) rather than dividing by zero. The [> 0.] guard keeps the
       no-fluid arithmetic bit-identical to the pre-fluid engine: the else
       branch binds the raw capacity with no float ops applied. *)
    let c = dl.link.Topology.capacity in
    let f = dl.fluid_bps in
    if f > 0. then begin
      let avail = c -. f in
      let floor_ = 0.01 *. c in
      if avail > floor_ then avail else floor_
    end
    else c
  in
  (* open-coded max: [Float.max] is a cross-module call on the per-hop
     path, and its NaN handling is irrelevant for simulation clocks *)
  let waiting = dl.busy.busy_until -. tnow in
  let backlog_bytes = (if waiting > 0. then waiting else 0.) *. cap /. 8. in
  let size = float_of_int pkt.size in
  if not dl.link_up then drop_packet t ~node:dl.from_node pkt "link-down"
  else if backlog_bytes +. size > dl.queue_limit then begin
    dl.drops <- dl.drops + 1;
    (match t.drop_hook with None -> () | Some f -> f dl.dl_index);
    drop_packet t ~node:dl.from_node pkt "queue-overflow"
  end
  else begin
    let start = if tnow > dl.busy.busy_until then tnow else dl.busy.busy_until in
    let tx_time = size *. 8. /. cap in
    dl.busy.busy_until <- start +. tx_time;
    dl.tx_packets <- dl.tx_packets + 1;
    Ff_util.Stats.Window_counter.add dl.tx_window ~now:tnow size;
    (match t.metrics with
    | None -> ()
    | Some m ->
      let ctr =
        match dl.tx_bytes_ctr with
        | Some c -> c
        | None ->
          let c =
            Ff_obs.Metrics.counter m
              ~scope:(Ff_obs.Metrics.Link (dl.from_node, dl.to_node))
              "tx_bytes"
          in
          dl.tx_bytes_ctr <- Some c;
          c
      in
      Ff_obs.Metrics.Counter.add ctr size);
    let arrival = dl.busy.busy_until +. dl.link.Topology.delay in
    match t.xshard with
    | None ->
      (* packet lane: the arrival is four unboxed heap columns, no closure *)
      Engine.schedule_packet t.engine ~at:arrival ~to_node:dl.to_node
        ~from_node:dl.from_node pkt
    | Some x ->
      if Bytes.unsafe_get x.owned dl.to_node <> '\000' then
        Engine.schedule_packet t.engine ~at:arrival ~to_node:dl.to_node
          ~from_node:dl.from_node pkt
      else
        (* conservative lookahead guarantees [arrival >= receiver's
           horizon]: the hop crosses a region boundary, whose link delay
           bounds the lookahead from below *)
        x.post ~at:arrival ~to_node:dl.to_node ~from_node:dl.from_node pkt
  end

and receive t ~at ~from_ pkt =
  match t.nodes.(at) with
  | Ho h ->
    (* A host answers traceroute probes that reach it (the "destination
       reached" reply); everything else goes to the registered receiver. *)
    (match pkt.Packet.payload with
    | Packet.Traceroute_probe { probe_id; probe_ttl } ->
      let reply =
        Packet.make_control ~src:h.host_id ~dst:pkt.Packet.src ~flow:pkt.Packet.flow
          ~birth:(now t)
          ~payload:(Packet.Traceroute_reply { probe_id; hop = probe_ttl; responder = h.host_id })
      in
      send_from_host t reply
    | _ ->
      emit_trace t ~node:at ~pkt Host_delivery;
      deliver_host h pkt)
  | Sw sw ->
    if sw.up then begin
      emit_trace t ~node:at ~pkt Switch_arrival;
      handle_at_switch t sw ~in_port:from_ pkt
    end
    else drop_packet t ~node:at pkt "switch-down"

and deliver_host h (pkt : Packet.t) =
  match Hashtbl.find h.receivers pkt.flow with
  | f -> f pkt
  | exception Not_found -> (match h.fallback_rx with Some f -> f pkt | None -> ())

and send_from_host t (pkt : Packet.t) = send_on_access_link t ~host:pkt.Packet.src pkt

and send_on_access_link t ~host pkt =
  (* the access link is the host's first adjacency (Topology.neighbors
     order), matching access_switch; a spoofed source id may be out of
     range entirely *)
  if host >= 0 && host < Array.length t.adj && Array.length t.adj.(host) > 0 then
    transmit t t.adj.(host).(0) pkt
  else drop_packet t ~node:host pkt "no-access-link"

and send_toward t sw next pkt =
  (* plain loop: a local [rec go] closure here cost a block per hop *)
  let links = t.adj.(sw.sw_id) in
  let n = Array.length links in
  let i = ref 0 in
  let found = ref false in
  while (not !found) && !i < n do
    let dl = Array.unsafe_get links !i in
    if dl.to_node = next then begin
      found := true;
      transmit t dl pkt
    end
    else incr i
  done;
  if not !found then drop_packet t ~node:sw.sw_id pkt "no-link"

(* fast reroute: skip a next hop that is a downed switch. 0 = entry whose
   next hop is down, 1 = sent. A top-level joint function rather than a
   local closure — this runs once per hop and a closure capturing
   [t]/[sw]/[pkt] would be a fresh heap block each time. *)
and forward_via t sw pkt next =
  match t.nodes.(next) with
  | Sw s when not s.up -> 0
  | _ ->
    send_toward t sw next pkt;
    1

and default_forward t sw (pkt : Packet.t) =
  (* pair, then primary, then backup — three dense probes, no hashing.
     -1 = no entry; spoofed packets can carry out-of-range src/dst ids,
     which the old Hashtbl keys absorbed silently, so range checks stand
     in for "not found". *)
  let n = Array.length t.nodes in
  let src = pkt.src and dst = pkt.dst in
  let dst_ok = dst >= 0 && dst < n in
  let pair =
    if Ff_util.Int_table.length sw.pair_routes = 0 then -1
    else if (not dst_ok) || src < 0 || src >= n then -1
    else
      let next = Ff_util.Int_table.get sw.pair_routes ((src * n) + dst) ~default:(-1) in
      if next < 0 then -1 else forward_via t sw pkt next
  in
  if pair <> 1 then begin
    let primary =
      if not dst_ok then -1
      else
        let next = Array.unsafe_get sw.routes dst in
        if next < 0 then -1 else forward_via t sw pkt next
    in
    if primary <> 1 then begin
      let backup =
        if sw.backup_count = 0 || not dst_ok then -1
        else
          let next = Array.unsafe_get sw.backup_routes dst in
          if next < 0 then -1 else forward_via t sw pkt next
      in
      if backup <> 1 then
        drop_packet t ~node:sw.sw_id pkt
          (if pair = -1 && primary = -1 && backup = -1 then "no-route" else "next-hop-down")
    end
  end

and switch_ctx t sw =
  match sw.sctx with
  | Some c -> c
  | None ->
    let c = { net = t; sw; in_port = -1 } in
    sw.sctx <- Some c;
    c

and handle_at_switch t sw ~in_port pkt =
  run_stages t sw (switch_ctx t sw) t.stage_cache.(sw.sw_id) ~in_port pkt 0

(* The stage loop is a top-level joint function: written as a local [rec
   run] closure inside [handle_at_switch] it captured the whole pipeline
   state — a fresh ~10-word block on every switch arrival. *)
and run_stages t sw ctx stages ~in_port pkt i =
  if i >= Array.length stages then default_forward t sw pkt
  else begin
    (* a stage can re-enter this switch's pipeline (ttl_stage routes its
       ICMP reply through handle_at_switch), clobbering the shared ctx —
       restore in_port before every stage call *)
    ctx.in_port <- in_port;
    match (Array.unsafe_get stages i).process ctx pkt with
    | Continue -> run_stages t sw ctx stages ~in_port pkt (i + 1)
    | Forward next -> send_toward t sw next pkt
    | Drop reason -> drop_packet t ~node:sw.sw_id pkt reason
    | Absorb -> ()
  end

(* The default first stage: TTL decrement and traceroute expiry. *)
let ttl_stage =
  {
    stage_name = "ttl";
    process =
      (fun ctx pkt ->
        pkt.Packet.ttl <- pkt.Packet.ttl - 1;
        if pkt.Packet.ttl > 0 then Continue
        else begin
          (match pkt.Packet.payload with
          | Packet.Traceroute_probe { probe_id; probe_ttl } ->
            (* ICMP time-exceeded back to the prober; the responder field is
               what topology obfuscation rewrites. *)
            let responder =
              match Packet.tag_value pkt "obfuscated_responder" with
              | Some v -> int_of_float v
              | None -> ctx.sw.sw_id
            in
            let reply =
              Packet.make_control ~src:pkt.Packet.dst ~dst:pkt.Packet.src ~flow:pkt.Packet.flow
                ~birth:(now ctx.net)
                ~payload:(Packet.Traceroute_reply { probe_id; hop = probe_ttl; responder })
            in
            handle_at_switch ctx.net ctx.sw ~in_port:(-1) reply
          | _ -> ());
          Drop "ttl-expired"
        end);
  }

let create ?(queue_limit_bytes = 37_500.) engine topo =
  let num_nodes = Topology.num_nodes topo in
  let nodes =
    Array.init num_nodes (fun id ->
        match (Topology.node topo id).Topology.kind with
        | Topology.Switch ->
          Sw
            {
              sw_id = id;
              stages = [ ttl_stage ];
              routes = Array.make num_nodes (-1);
              backup_routes = Array.make num_nodes (-1);
              backup_count = 0;
              pair_routes = Ff_util.Int_table.create ~capacity:32 ();
              up = true;
              vars = Hashtbl.create 8;
              flags = 0;
              sctx = None;
            }
        | Topology.Host ->
          Ho { host_id = id; receivers = Hashtbl.create 16; fallback_rx = None })
  in
  let adj =
    Array.init num_nodes (fun id ->
        Topology.neighbors topo id
        |> List.map (fun (peer, (l : Topology.link)) ->
               {
                 link = l;
                 from_node = id;
                 to_node = peer;
                 dl_index = -1;
                 link_up = true;
                 busy = { busy_until = 0. };
                 queue_limit = queue_limit_bytes;
                 tx_window = Ff_util.Stats.Window_counter.create ~width:0.2;
                 drops = 0;
                 tx_packets = 0;
                 fluid_bps = 0.;
                 tx_bytes_ctr = None;
               })
        |> Array.of_list)
  in
  let stage_cache =
    Array.map (function Sw s -> Array.of_list s.stages | Ho _ -> [||]) nodes
  in
  let dirlinks =
    let all = Array.concat (Array.to_list adj) in
    Array.iteri (fun i dl -> dl.dl_index <- i) all;
    all
  in
  let t =
    {
      engine;
      topo;
      nodes;
      adj;
      dirlinks;
      drop_hook = None;
      stage_cache;
      drop_ctrs = Array.make num_nodes None;
      sw_peers =
        Array.init num_nodes (fun id ->
            Topology.neighbors topo id
            |> List.filter_map (fun (peer, _) ->
                   match nodes.(peer) with Sw _ -> Some peer | Ho _ -> None));
      drop_reasons = Hashtbl.create 16;
      tracer = None;
      (* new networks report into whatever ambient sinks the harness set up *)
      obs = Ff_obs.Trace.ambient ();
      metrics = Ff_obs.Metrics.ambient ();
      xshard = None;
      flow_ids = Atomic.make 0;
    }
  in
  (* hosts are directly reachable from their access switch *)
  Array.iter
    (function
      | Ho h ->
        let sw_id = access_switch t ~host:h.host_id in
        (match t.nodes.(sw_id) with
        | Sw sw -> sw.routes.(h.host_id) <- h.host_id
        | Ho _ -> ())
      | Sw _ -> ())
    nodes;
  (* this net owns the engine's packet lane (the repo runs one net per
     engine; a second create on the same engine would steal the lane) *)
  Engine.set_packet_handler engine (fun ~to_node ~from_node pkt ->
      receive t ~at:to_node ~from_:from_node pkt);
  t

(* ---------------- stage management ---------------- *)

let refresh_stage_cache t (s : switch) = t.stage_cache.(s.sw_id) <- Array.of_list s.stages

let add_stage ?(front = false) t ~sw stage =
  let s = switch t sw in
  let others = List.filter (fun st -> st.stage_name <> stage.stage_name) s.stages in
  s.stages <- (if front then stage :: others else others @ [ stage ]);
  refresh_stage_cache t s

let remove_stage t ~sw ~name =
  let s = switch t sw in
  s.stages <- List.filter (fun st -> st.stage_name <> name) s.stages;
  refresh_stage_cache t s

let has_stage t ~sw ~name =
  List.exists (fun st -> st.stage_name = name) (switch t sw).stages

(* ---------------- routing ---------------- *)

let check_node t what id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Net.%s: node %d out of range" what id)

let set_route t ~sw ~dst ~next_hop =
  check_node t "set_route" dst;
  (switch t sw).routes.(dst) <- next_hop

let pair_key t ~src ~dst = (src * Array.length t.nodes) + dst

let set_pair_route t ~sw ~src ~dst ~next_hop =
  check_node t "set_pair_route" src;
  check_node t "set_pair_route" dst;
  Ff_util.Int_table.set (switch t sw).pair_routes (pair_key t ~src ~dst) next_hop

let set_backup_route t ~sw ~dst ~next_hop =
  check_node t "set_backup_route" dst;
  let s = switch t sw in
  let prev = s.backup_routes.(dst) in
  if prev < 0 && next_hop >= 0 then s.backup_count <- s.backup_count + 1
  else if prev >= 0 && next_hop < 0 then s.backup_count <- s.backup_count - 1;
  s.backup_routes.(dst) <- next_hop

let dense_lookup routes dst =
  if dst < 0 || dst >= Array.length routes then None
  else
    let next = routes.(dst) in
    if next < 0 then None else Some next

let route_lookup t ~sw ~dst = dense_lookup (switch t sw).routes dst
let backup_route_lookup t ~sw ~dst = dense_lookup (switch t sw).backup_routes dst

let pair_route_lookup t ~sw ~src ~dst =
  let n = Array.length t.nodes in
  if src < 0 || src >= n || dst < 0 || dst >= n then None
  else
    let next =
      Ff_util.Int_table.get (switch t sw).pair_routes (pair_key t ~src ~dst) ~default:(-1)
    in
    if next < 0 then None else Some next

let route_entries t ~sw =
  let s = switch t sw in
  let acc = ref [] in
  for dst = Array.length s.routes - 1 downto 0 do
    if s.routes.(dst) >= 0 then acc := (dst, s.routes.(dst)) :: !acc
  done;
  !acc

let pair_route_entries t ~sw =
  let n = Array.length t.nodes in
  Ff_util.Int_table.fold
    (fun key next acc -> ((key / n, key mod n), next) :: acc)
    (switch t sw).pair_routes []

let clear_routes t ~sw =
  let s = switch t sw in
  Array.fill s.routes 0 (Array.length s.routes) (-1);
  Ff_util.Int_table.clear s.pair_routes;
  (* restore direct host attachment entries *)
  List.iter (fun h -> s.routes.(h) <- h) (attached_hosts t ~sw)

let iter_path_switches t path ~f =
  let rec go = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      (match t.nodes.(a) with Sw _ -> f a b | Ho _ -> ());
      go rest
  in
  go path

let install_path t ~dst path =
  iter_path_switches t path ~f:(fun a b -> set_route t ~sw:a ~dst ~next_hop:b)

let install_pair_path t ~src ~dst path =
  iter_path_switches t path ~f:(fun a b -> set_pair_route t ~sw:a ~src ~dst ~next_hop:b)

let current_path t ~src ~dst =
  let max_hops = Topology.num_nodes t.topo + 1 in
  let rec walk acc node hops =
    if hops > max_hops then None
    else if node = dst then Some (List.rev (node :: acc))
    else
      match t.nodes.(node) with
      | Ho _ when node <> src -> None
      | Ho _ -> (
        match Topology.neighbors t.topo node with
        | (sw, _) :: _ -> walk (node :: acc) sw (hops + 1)
        | [] -> None)
      | Sw sw -> (
        let next =
          match pair_route_lookup t ~sw:sw.sw_id ~src ~dst with
          | Some _ as p -> p
          | None -> dense_lookup sw.routes dst
        in
        match next with
        | Some n when not (List.mem n acc) -> walk (node :: acc) n (hops + 1)
        | _ -> None)
  in
  walk [] src 0

(* ---------------- traffic entry points ---------------- *)

let send_from_host = send_from_host

let send_from_host_via t ~via pkt = send_on_access_link t ~host:via pkt

let emit_from_switch t ~sw ~next pkt = send_toward t (switch t sw) next pkt

let inject_at_switch t ~sw pkt = handle_at_switch t (switch t sw) ~in_port:(-1) pkt

let flood_from_switch t ~sw ~except fresh =
  List.iter
    (fun peer -> if not (List.mem peer except) then emit_from_switch t ~sw ~next:peer (fresh ()))
    (neighbors_of t sw)

let set_switch_up t ~sw up = (switch t sw).up <- up

let set_link_up t ~a ~b up =
  match (dirlink_opt t ~from_:a ~to_:b, dirlink_opt t ~from_:b ~to_:a) with
  | Some d1, Some d2 ->
    d1.link_up <- up;
    d2.link_up <- up
  | _ -> invalid_arg "Net.set_link_up: nodes not adjacent"

let link_is_up t ~a ~b =
  match dirlink_opt t ~from_:a ~to_:b with
  | Some d -> d.link_up
  | None -> invalid_arg "Net.link_is_up: nodes not adjacent"

let switch_is_up t ~sw = (switch t sw).up

(* BFS over the live graph only: down switches and down links are treated
   as absent, and hosts never transit (only terminate). Control channels
   (state transfer, mode repair) use this to recompute paths mid-failure —
   the static [Topology.shortest_path] cannot see the failure model. *)
let live_shortest_path t ~src ~dst =
  let n = Array.length t.nodes in
  if src < 0 || src >= n || dst < 0 || dst >= n then None
  else begin
    let node_up id = match t.nodes.(id) with Sw s -> s.up | Ho _ -> true in
    if not (node_up src && node_up dst) then None
    else if src = dst then Some [ src ]
    else begin
      let prev = Array.make n (-2) in
      (* -2 = unvisited, -1 = BFS root *)
      prev.(src) <- -1;
      let q = Queue.create () in
      Queue.add src q;
      let found = ref false in
      while (not !found) && not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iter
          (fun dl ->
            let v = dl.to_node in
            if prev.(v) = -2 && dl.link_up then
              if v = dst then begin
                prev.(v) <- u;
                found := true
              end
              else begin
                match t.nodes.(v) with
                | Sw s when s.up ->
                  prev.(v) <- u;
                  Queue.add v q
                | Sw _ | Ho _ -> ()
              end)
          t.adj.(u)
      done;
      if not !found then None
      else begin
        let rec build acc v = if v = src then src :: acc else build (v :: acc) prev.(v) in
        Some (build [] dst)
      end
    end
  end

(* ---------------- sharding ---------------- *)

let set_shard_hook t ~owned ~post =
  if Bytes.length owned <> Array.length t.nodes then
    invalid_arg "Net.set_shard_hook: ownership vector length <> node count";
  t.xshard <- Some { owned; post }

let clear_shard_hook t = t.xshard <- None

let owns t node =
  match t.xshard with
  | None -> true
  | Some x -> node >= 0 && node < Bytes.length x.owned && Bytes.get x.owned node <> '\000'

let set_tracer t f = t.tracer <- f

let trace_flow t ~flow =
  let events = ref [] in
  set_tracer t
    (Some (fun ev -> if ev.flow = flow then events := ev :: !events));
  events
