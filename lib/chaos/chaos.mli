(** Deterministic, seeded fault injection for the in-band control
    channels — plus the invariant checker that says whether the system
    healed.

    FastFlex moves mode probes and state chunks over the very data plane
    that is under attack, so the conditions that make those channels
    necessary (loss, congestion, failing links) are exactly the
    conditions they must survive. This harness drives the existing [Net]
    failure model ([set_link_up] / [set_switch_up]) and [Loss] stages
    from scripted and randomized schedules: link flaps with configurable
    dwell, switch crashes and recoveries, regional partitions, correlated
    burst loss, and targeted probe loss. Every applied action is
    timestamped in {!log} and emitted as an [Ff_obs.Event.Fault], so a
    trace shows the full fault → detection → repair timeline next to the
    [Repair] events the healing layers emit.

    Everything is driven by one seeded [Prng]: the same seed, schedule
    and workload replay the identical run. *)

type t

type action =
  | Link_down of int * int
  | Link_up of int * int
  | Switch_down of int
  | Switch_up of int

val create : ?seed:int -> Ff_netsim.Net.t -> t
(** A harness over the network. [seed] (default 1) drives dwell/stagger
    randomization in the generators. *)

val net : t -> Ff_netsim.Net.t

val apply_now : t -> action -> unit
(** Apply an action immediately, log it, and emit a [Fault] event. *)

val at : t -> time:float -> action -> unit
(** Schedule an action at an absolute simulation time. *)

val log : t -> (float * action) list
(** Every applied action with its application time, oldest first. *)

val injected : t -> int
(** Number of actions applied so far. *)

val strategic :
  t -> period:float -> start:float -> until:float -> decide:(unit -> action list) -> unit
(** Condition-driven fault scheduling: poll [decide] every [period]
    seconds in [start, until] and apply the actions it returns. The hook
    that turns random faults into strategic ones — an adaptive adversary
    ({!Ff_attacks.Adaptive}) exposes its belief state (e.g.
    "mitigation detected"), and [decide] converts it into targeted
    faults such as cutting a detour link exactly while the defense is
    rerouting. Applied actions are logged and traced like any other. *)

val action_to_string : action -> string

(** {1 Schedule generators} *)

val flap_link :
  t -> a:int -> b:int -> start:float -> until:float -> down_dwell:float -> up_dwell:float -> unit
(** Cycle the a-b link down/up from [start]: down for [down_dwell], up
    for [up_dwell], repeating while the next cut would land before
    [until]. The link is always left up afterwards. *)

val crash_switch : t -> sw:int -> at:float -> recover_after:float -> unit
(** Take the switch down at [at]; bring it back [recover_after] later. *)

val random_link_flaps :
  t -> n:int -> start:float -> until:float -> mean_down:float -> mean_up:float -> unit
(** Pick [n] distinct switch-switch links with the harness rng and flap
    each with exponentially distributed dwells (means [mean_down] /
    [mean_up]), staggered starts. Links are restored by [until]. *)

val partition : t -> groups:int list list -> at:float -> heal_at:float -> unit
(** At [at], cut every link whose endpoints sit in two different listed
    groups (nodes absent from every group keep all their links); restore
    exactly those links at [heal_at]. *)

val burst_loss :
  t ->
  sw:int ->
  start:float ->
  until:float ->
  loss:float ->
  mean_burst:float ->
  ?classes:Ff_scaling.Loss.class_filter ->
  unit ->
  Ff_scaling.Loss.t
(** Correlated (Gilbert–Elliott) loss at a switch, active only in
    [start, until): drops arrive in bursts of mean length [mean_burst]
    with long-run rate [loss]. Returns the underlying [Loss] stage for
    its statistics. *)

val drop_first_probe_per_epoch : t -> a:int -> b:int -> unit
(** Adversarial link: both directions of a-b drop the {e first} mode
    probe of every distinct (attack, epoch, activate) that crosses, and
    pass everything else — the exact failure anti-entropy exists for
    (fire-and-forget flooding never converges across such a link). *)

(** {1 Invariants} *)

val watch : t -> unit
(** Install a packet-conservation tracer (replaces any tracer set via
    [Net.set_tracer]). Call before traffic starts; {!check_quiescence}
    then verifies that every packet transmitted since was received by a
    switch, delivered to a host, or dropped at a down switch. *)

val check_quiescence :
  t ->
  ?protocol:Ff_modes.Protocol.t ->
  ?origins:(Ff_dataplane.Packet.attack_kind * int) list ->
  ?transfers:Ff_scaling.Transfer.t list ->
  unit ->
  string list
(** Run after fault injection has stopped and the engine has drained (no
    packets in flight). Returns human-readable violations, [[]] when the
    system healed:

    - {e no stuck advert} (when [protocol] is given): every anti-entropy
      advert has been confirmed by all its neighbors
      ([Protocol.pending_adverts] is 0) — otherwise some switch keeps
      re-advertising forever to a peer that never acked;
    - {e no half-activated region}: for each [(attack, origin)] in
      [origins], every live switch within [Protocol.region_ttl] hops of
      [origin] over the live graph agrees with the origin's latest known
      epoch ([Protocol.known_epoch]);
    - {e no stuck transfer}: each listed transfer is either [complete] or
      [failed];
    - {e packet conservation} (when {!watch} was armed): transmissions =
      switch arrivals + host deliveries + down-switch drops. Traceroute
      probes terminate outside this accounting — keep them out of chaos
      scenarios. *)

(** {1 Schedule specs}

    The CLI wires chaos in as [--chaos "<spec>"]: semicolon-separated
    directives over named or numeric nodes.

    {v
    seed=7                         harness seed
    cut:s2-s3@1.0                  link down at t=1
    heal:s2-s3@4.0                 link up at t=4
    crash:s5@2.0+1.5               switch down at t=2, up at t=3.5
    flap:s1-s2@1.0..6.0/0.3/0.7    flap: 0.3 s down, 0.7 s up
    loss:s4@0.3                    30% Bernoulli loss at the switch
    loss:s4@0.3,burst=4            30% loss in bursts of mean length 4
    loss:s4@0.3,ctl                30% loss, control packets only
    v} *)

type directive

val parse : string -> (directive list, string) result
(** Parse a spec string; [Error] carries the offending directive. *)

val spec_seed : directive list -> int option
(** The [seed=N] directive's value, if present — pass it to {!create}. *)

val apply : t -> directive list -> unit
(** Resolve node names against the network's topology and install every
    directive's schedule. Raises [Invalid_argument] on an unknown node
    name or a non-adjacent link. *)
