module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Topology = Ff_topology.Topology
module Packet = Ff_dataplane.Packet
module Prng = Ff_util.Prng
module Loss = Ff_scaling.Loss
module Protocol = Ff_modes.Protocol
module Transfer = Ff_scaling.Transfer

type action =
  | Link_down of int * int
  | Link_up of int * int
  | Switch_down of int
  | Switch_up of int

type t = {
  net : Net.t;
  rng : Prng.t;
  mutable applied : (float * action) list; (* newest first *)
  mutable injected : int;
  (* packet-conservation ledger (armed by [watch]) *)
  mutable watching : bool;
  mutable tx0 : int;
  mutable arrivals : int;
  mutable deliveries : int;
  mutable down_drops : int;
}

let create ?(seed = 1) net =
  {
    net;
    rng = Prng.create ~seed;
    applied = [];
    injected = 0;
    watching = false;
    tx0 = 0;
    arrivals = 0;
    deliveries = 0;
    down_drops = 0;
  }

let net t = t.net

let fault_event = function
  | Link_down (a, b) -> Ff_obs.Event.Fault { kind = "link"; a; b; up = false }
  | Link_up (a, b) -> Ff_obs.Event.Fault { kind = "link"; a; b; up = true }
  | Switch_down s -> Ff_obs.Event.Fault { kind = "switch"; a = s; b = -1; up = false }
  | Switch_up s -> Ff_obs.Event.Fault { kind = "switch"; a = s; b = -1; up = true }

let apply_now t action =
  (match action with
  | Link_down (a, b) -> Net.set_link_up t.net ~a ~b false
  | Link_up (a, b) -> Net.set_link_up t.net ~a ~b true
  | Switch_down s -> Net.set_switch_up t.net ~sw:s false
  | Switch_up s -> Net.set_switch_up t.net ~sw:s true);
  t.injected <- t.injected + 1;
  t.applied <- (Net.now t.net, action) :: t.applied;
  Net.obs_emit t.net (fault_event action)

let at t ~time action =
  Engine.schedule (Net.engine t.net) ~at:time (fun () -> apply_now t action)

let log t = List.rev t.applied

let injected t = t.injected

(* Strategic (condition-driven) scheduling: instead of a fixed timeline,
   poll a decision function and apply whatever it returns. This is the
   bridge between the chaos harness and an adaptive adversary — e.g.
   "cut the backup link only while the defense is mitigating", turning
   random faults into strategic ones. The decide function sees no more
   than the attacker does; determinism comes from the caller's seeded
   state, not from this loop. *)
let strategic t ~period ~start ~until ~decide =
  let engine = Net.engine t.net in
  let rec tick () =
    let now = Net.now t.net in
    if now <= until then begin
      List.iter (apply_now t) (decide ());
      Engine.after engine ~delay:period tick
    end
  in
  Engine.schedule engine ~at:start tick

let action_to_string = function
  | Link_down (a, b) -> Printf.sprintf "link %d-%d down" a b
  | Link_up (a, b) -> Printf.sprintf "link %d-%d up" a b
  | Switch_down s -> Printf.sprintf "switch %d down" s
  | Switch_up s -> Printf.sprintf "switch %d up" s

(* ---------------- schedule generators ---------------- *)

let flap_link t ~a ~b ~start ~until ~down_dwell ~up_dwell =
  let engine = Net.engine t.net in
  let rec cycle time =
    if time <= until then
      Engine.schedule engine ~at:time (fun () ->
          apply_now t (Link_down (a, b));
          Engine.after engine ~delay:down_dwell (fun () ->
              apply_now t (Link_up (a, b));
              cycle (Engine.now engine +. up_dwell)))
  in
  cycle start

let crash_switch t ~sw ~at:time ~recover_after =
  at t ~time (Switch_down sw);
  at t ~time:(time +. recover_after) (Switch_up sw)

let switch_links t =
  let topo = Net.topology t.net in
  let is_sw id = (Topology.node topo id).Topology.kind = Topology.Switch in
  List.filter (fun (l : Topology.link) -> is_sw l.Topology.a && is_sw l.Topology.b)
    (Topology.links topo)

let random_link_flaps t ~n ~start ~until ~mean_down ~mean_up =
  let engine = Net.engine t.net in
  let arr = Array.of_list (switch_links t) in
  Prng.shuffle t.rng arr;
  let n = min n (Array.length arr) in
  for i = 0 to n - 1 do
    let l = arr.(i) in
    let a = l.Topology.a and b = l.Topology.b in
    (* per-link rng split: dwell draws inside callbacks stay deterministic
       regardless of how the links' timers interleave *)
    let rng = Prng.split t.rng in
    let rec cycle time =
      if time <= until then
        Engine.schedule engine ~at:time (fun () ->
            apply_now t (Link_down (a, b));
            Engine.after engine ~delay:(Prng.exponential rng ~mean:mean_down) (fun () ->
                apply_now t (Link_up (a, b));
                cycle (Engine.now engine +. Prng.exponential rng ~mean:mean_up)))
    in
    cycle (start +. Prng.float rng mean_up)
  done

let partition t ~groups ~at:cut_at ~heal_at =
  let grp = Hashtbl.create 16 in
  List.iteri (fun gi nodes -> List.iter (fun n -> Hashtbl.replace grp n gi) nodes) groups;
  let crossing =
    List.filter
      (fun (l : Topology.link) ->
        match (Hashtbl.find_opt grp l.Topology.a, Hashtbl.find_opt grp l.Topology.b) with
        | Some ga, Some gb -> ga <> gb
        | _ -> false)
      (Topology.links (Net.topology t.net))
  in
  List.iter
    (fun (l : Topology.link) ->
      at t ~time:cut_at (Link_down (l.Topology.a, l.Topology.b));
      at t ~time:heal_at (Link_up (l.Topology.a, l.Topology.b)))
    crossing

let burst_loss t ~sw ~start ~until ~loss ~mean_burst ?(classes = Loss.All) () =
  if not (loss > 0. && loss < 1.) then invalid_arg "Chaos.burst_loss: loss must be in (0,1)";
  if mean_burst < 1. then invalid_arg "Chaos.burst_loss: mean_burst must be >= 1";
  let p_bg = 1. /. mean_burst in
  (* stationary bad fraction p_gb/(p_gb+p_bg) = loss, with every bad-state
     packet dropped, gives the requested long-run rate *)
  let p_gb = loss *. p_bg /. (1. -. loss) in
  if p_gb > 1. then invalid_arg "Chaos.burst_loss: loss/mean_burst combination infeasible";
  let stage =
    Loss.install t.net ~sw ~prob:loss
      ~seed:(1000 + Prng.int t.rng 1_000_000)
      ~classes
      ~model:(Loss.Gilbert_elliott { p_gb; p_bg; good_loss = 0.; bad_loss = 1. })
      ()
  in
  Loss.set_enabled stage false;
  let engine = Net.engine t.net in
  Engine.schedule engine ~at:start (fun () -> Loss.set_enabled stage true);
  Engine.schedule engine ~at:until (fun () -> Loss.set_enabled stage false);
  stage

let drop_first_probe_per_epoch t ~a ~b =
  let install ~at_sw ~from_ =
    let seen = Hashtbl.create 16 in
    Net.add_stage ~front:true t.net ~sw:at_sw
      {
        Net.stage_name = Printf.sprintf "chaos-first-probe-%d<%d" at_sw from_;
        process =
          (fun ctx pkt ->
            match pkt.Packet.payload with
            | Packet.Mode_probe { attack; epoch; activate; _ }
              when ctx.Net.in_port = from_ ->
              let key = (attack, epoch, activate) in
              if Hashtbl.mem seen key then Net.Continue
              else begin
                Hashtbl.replace seen key ();
                Net.Drop "chaos-first-probe"
              end
            | _ -> Net.Continue);
      }
  in
  install ~at_sw:b ~from_:a;
  install ~at_sw:a ~from_:b

(* ---------------- invariants ---------------- *)

let watch t =
  t.watching <- true;
  t.tx0 <- Net.total_tx_packets t.net;
  t.arrivals <- 0;
  t.deliveries <- 0;
  t.down_drops <- 0;
  Net.set_tracer t.net
    (Some
       (fun ev ->
         match ev.Net.kind with
         | Net.Switch_arrival -> t.arrivals <- t.arrivals + 1
         | Net.Host_delivery -> t.deliveries <- t.deliveries + 1
         | Net.Packet_drop reason ->
           if reason = "switch-down" then t.down_drops <- t.down_drops + 1))

let check_quiescence t ?protocol ?(origins = []) ?(transfers = []) () =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (match protocol with
  | None -> ()
  | Some p ->
    (* anti-entropy must go quiet: an advert still holding unconfirmed
       neighbors after the network healed and the engine drained means a
       switch will re-advertise forever into the void *)
    let stuck = Protocol.pending_adverts p in
    if stuck > 0 then
      add "stuck advert: %d (switch, attack) adverts still re-advertising to unconfirmed neighbors"
        stuck;
    List.iter
      (fun (attack, origin) ->
        let name = Packet.attack_kind_to_string attack in
        let want = Protocol.known_epoch p ~sw:origin ~attack in
        let ttl = Protocol.region_ttl p in
        (* every switch within region_ttl live hops of the origin must
           agree with the origin's latest epoch — a disagreement is a
           half-activated region *)
        let seen = Hashtbl.create 32 in
        Hashtbl.replace seen origin ();
        let q = Queue.create () in
        Queue.add (origin, 0) q;
        while not (Queue.is_empty q) do
          let sw, d = Queue.pop q in
          let got = Protocol.known_epoch p ~sw ~attack in
          if got <> want then
            add "half-activated region: switch %d at epoch %d for %s, origin %d at %d"
              sw got name origin want;
          if d < ttl then
            List.iter
              (fun peer ->
                if
                  (not (Hashtbl.mem seen peer))
                  && Net.link_is_up t.net ~a:sw ~b:peer
                  && Net.switch_is_up t.net ~sw:peer
                then begin
                  Hashtbl.replace seen peer ();
                  Queue.add (peer, d + 1) q
                end)
              (Net.neighbors_of t.net sw)
        done)
      origins);
  List.iteri
    (fun i x ->
      if not (Transfer.complete x || Transfer.failed x) then
        add "stuck transfer #%d: neither complete nor failed" i)
    transfers;
  if t.watching then begin
    let tx = Net.total_tx_packets t.net - t.tx0 in
    let accounted = t.arrivals + t.deliveries + t.down_drops in
    if tx <> accounted then
      add
        "packet conservation: %d transmitted, %d accounted for (%d switch arrivals + %d host deliveries + %d down-switch drops)"
        tx accounted t.arrivals t.deliveries t.down_drops
  end;
  List.rev !violations

(* ---------------- schedule specs ---------------- *)

type directive =
  | D_seed of int
  | D_cut of string * string * float
  | D_heal of string * string * float
  | D_crash of string * float * float (* node, at, recover_after *)
  | D_flap of string * string * float * float * float * float
      (* a, b, start, until, down_dwell, up_dwell *)
  | D_loss of string * float * float option * bool (* node, rate, mean burst, ctl only *)

let spec_seed ds =
  List.fold_left (fun acc d -> match d with D_seed s -> Some s | _ -> acc) None ds

let split2 ~on s =
  match String.index_opt s on with
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

(* first ".." occurrence — times on either side contain single dots *)
let split_range s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '.' && s.[i + 1] = '.' then
      Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
    else go (i + 1)
  in
  go 0

let parse_pair s =
  match String.split_on_char '-' (String.trim s) with
  | [ a; b ] when a <> "" && b <> "" -> Ok (String.trim a, String.trim b)
  | _ -> Error (Printf.sprintf "expected NODE-NODE, got %S (use numeric ids if names contain '-')" s)

let parse_float s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "expected a number, got %S" s)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_directive d =
  match split2 ~on:':' d with
  | None -> (
    match split2 ~on:'=' d with
    | Some (k, v) when String.trim k = "seed" -> (
      match int_of_string_opt (String.trim v) with
      | Some s -> Ok (D_seed s)
      | None -> Error (Printf.sprintf "bad seed %S" v))
    | _ -> Error (Printf.sprintf "unrecognized directive %S" d))
  | Some (verb, rest) -> (
    match String.trim verb with
    | "cut" | "heal" -> (
      match split2 ~on:'@' rest with
      | None -> Error (Printf.sprintf "expected A-B@TIME in %S" d)
      | Some (pair, time) ->
        let* a, b = parse_pair pair in
        let* time = parse_float time in
        Ok (if String.trim verb = "cut" then D_cut (a, b, time) else D_heal (a, b, time)))
    | "crash" -> (
      match split2 ~on:'@' rest with
      | None -> Error (Printf.sprintf "expected SW@TIME+DURATION in %S" d)
      | Some (node, spec) -> (
        match split2 ~on:'+' spec with
        | None -> Error (Printf.sprintf "expected TIME+DURATION in %S" d)
        | Some (time, dur) ->
          let* time = parse_float time in
          let* dur = parse_float dur in
          Ok (D_crash (String.trim node, time, dur))))
    | "flap" -> (
      match split2 ~on:'@' rest with
      | None -> Error (Printf.sprintf "expected A-B@T..U/DOWN/UP in %S" d)
      | Some (pair, spec) -> (
        let* a, b = parse_pair pair in
        match String.split_on_char '/' spec with
        | [ range; down; up ] -> (
          match split_range range with
          | None -> Error (Printf.sprintf "expected T..U in %S" range)
          | Some (t0, t1) ->
            let* t0 = parse_float t0 in
            let* t1 = parse_float t1 in
            let* down = parse_float down in
            let* up = parse_float up in
            Ok (D_flap (a, b, t0, t1, down, up)))
        | _ -> Error (Printf.sprintf "expected T..U/DOWN/UP in %S" d)))
    | "loss" -> (
      match split2 ~on:'@' rest with
      | None -> Error (Printf.sprintf "expected SW@RATE[,burst=N][,ctl] in %S" d)
      | Some (node, spec) -> (
        match String.split_on_char ',' spec with
        | [] -> Error (Printf.sprintf "missing loss rate in %S" d)
        | rate :: opts ->
          let* rate = parse_float rate in
          let rec fold burst ctl = function
            | [] -> Ok (burst, ctl)
            | o :: rest -> (
              let o = String.trim o in
              if o = "ctl" then fold burst true rest
              else
                match split2 ~on:'=' o with
                | Some (k, v) when String.trim k = "burst" ->
                  let* b = parse_float v in
                  fold (Some b) ctl rest
                | _ -> Error (Printf.sprintf "unknown loss option %S" o))
          in
          let* burst, ctl = fold None false opts in
          Ok (D_loss (String.trim node, rate, burst, ctl))))
    | v -> Error (Printf.sprintf "unknown chaos verb %S" v))

let parse spec =
  let ds =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | d :: rest -> (
      match parse_directive d with
      | Ok dir -> go (dir :: acc) rest
      | Error e -> Error e)
  in
  go [] ds

let resolve t name =
  match int_of_string_opt name with
  | Some id -> id
  | None -> (
    match Topology.node_by_name (Net.topology t.net) name with
    | n -> n.Topology.id
    | exception Not_found -> invalid_arg (Printf.sprintf "Chaos.apply: unknown node %S" name))

let apply t ds =
  List.iter
    (fun d ->
      match d with
      | D_seed _ -> () (* consumed by the caller via [spec_seed] before [create] *)
      | D_cut (a, b, time) -> at t ~time (Link_down (resolve t a, resolve t b))
      | D_heal (a, b, time) -> at t ~time (Link_up (resolve t a, resolve t b))
      | D_crash (s, time, dur) -> crash_switch t ~sw:(resolve t s) ~at:time ~recover_after:dur
      | D_flap (a, b, start, until, down, up) ->
        flap_link t ~a:(resolve t a) ~b:(resolve t b) ~start ~until ~down_dwell:down
          ~up_dwell:up
      | D_loss (s, rate, burst, ctl) -> (
        let sw = resolve t s in
        let classes = if ctl then Loss.Control_only else Loss.All in
        match burst with
        | None ->
          ignore
            (Loss.install t.net ~sw ~prob:rate
               ~seed:(1000 + Prng.int t.rng 1_000_000)
               ~classes ())
        | Some mean_burst ->
          ignore
            (burst_loss t ~sw ~start:(Net.now t.net) ~until:infinity ~loss:rate ~mean_burst
               ~classes ())))
    ds
