(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from its own [Prng.t]
    so that experiments are reproducible bit-for-bit from a seed, and so
    that adding randomness to one component does not perturb another. *)

type t

val create : seed:int -> t
(** [create ~seed] makes an independent generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly, not just
    approximately: biased draws are rejected and retried rather than
    folded in by modulo. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for Poisson
    inter-arrival times. Requires [mean > 0.]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto sample; used for heavy-tailed flow sizes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
