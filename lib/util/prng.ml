type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

(* Uniform via rejection sampling: plain [rem] over the 63-bit draw favors
   small residues when the bound does not divide 2^63. Draws from the
   incomplete top interval are rejected and retried; [bits - v + (bound-1)]
   wraps negative exactly for those draws. Power-of-two bounds divide 2^63,
   so masking is exact and keeps the historical value stream; non-power
   bounds also keep the stream for every accepted draw (rejection odds are
   [bound / 2^63] per draw). *)
let int t bound =
  assert (bound > 0);
  let b = Int64.of_int bound in
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (Int64.shift_right_logical (int64 t) 1) (Int64.sub b 1L))
  else begin
    let rec draw () =
      let bits = Int64.shift_right_logical (int64 t) 1 in
      let v = Int64.rem bits b in
      if Int64.compare (Int64.add (Int64.sub bits v) (Int64.sub b 1L)) 0L < 0 then draw ()
      else Int64.to_int v
    in
    draw ()
  end

let float t bound =
  assert (bound > 0.);
  let raw = Int64.shift_right_logical (int64 t) 11 in
  (* 53 significant bits, uniform in [0,1) *)
  Int64.to_float raw /. 9007199254740992. *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let pareto t ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let u = float t 1.0 in
  scale /. ((1.0 -. u) ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
