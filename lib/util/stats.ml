let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  let a = Array.of_list xs in
  (* [Float.compare], not polymorphic [compare]: same order on the floats
     that occur here, without the generic-comparison dispatch per element *)
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile 50. xs

module Ewma = struct
  type t = { alpha : float; mutable value : float; mutable initialized : bool }

  let create ~alpha =
    assert (alpha > 0. && alpha <= 1.);
    { alpha; value = 0.; initialized = false }

  let update t x =
    if t.initialized then t.value <- (t.alpha *. x) +. ((1. -. t.alpha) *. t.value)
    else begin
      t.value <- x;
      t.initialized <- true
    end

  let value t = t.value

  let reset t =
    t.value <- 0.;
    t.initialized <- false
end

module Window_counter = struct
  (* A ring of sub-buckets approximating a sliding window: the window is
     divided into [buckets] slots; entries older than the window are zeroed
     lazily as time advances. *)

  (* Single-float record: flat layout, so accumulating stores stay unboxed —
     a [float ref] or fold accumulator would box on every step. *)
  type acc = { mutable v : float }

  type t = {
    width : float;
    buckets : float array;
    mutable epoch : int; (* index of the slot holding "now" *)
    mutable cur : int; (* [epoch mod nbuckets], kept incrementally *)
    slot : float; (* duration of one slot *)
    acc : acc; (* scratch for the allocation-free [rate] sum *)
  }

  let nbuckets = 20

  let create ~width =
    assert (width > 0.);
    { width; buckets = Array.make nbuckets 0.; epoch = 0; cur = 0;
      slot = width /. float_of_int nbuckets; acc = { v = 0. } }

  let slot_of t now = int_of_float (now /. t.slot)

  let advance t now =
    let target = slot_of t now in
    if target > t.epoch then begin
      let steps = min nbuckets (target - t.epoch) in
      for k = 1 to steps do
        t.buckets.((t.epoch + k) mod nbuckets) <- 0.
      done;
      t.epoch <- target;
      t.cur <- target mod nbuckets
    end

  let add t ~now x =
    (* [advance] inlined so the slot computation is shared; in the common
       case (same slot as the last touch) the cached [cur] avoids the
       integer division a [mod nbuckets] costs per packet *)
    let target = slot_of t now in
    if target > t.epoch then begin
      let steps = min nbuckets (target - t.epoch) in
      for k = 1 to steps do
        t.buckets.((t.epoch + k) mod nbuckets) <- 0.
      done;
      t.epoch <- target;
      t.cur <- target mod nbuckets
    end;
    let i = t.cur in
    t.buckets.(i) <- t.buckets.(i) +. x

  let rate t ~now =
    advance t now;
    (* same left-to-right sum as [Array.fold_left ( +. ) 0.] — identical
       rounding — but through the scratch record, so the ~20 intermediate
       totals are stores into a flat field instead of fresh boxes. [rate]
       runs on every probe arrival and every detector check. *)
    let b = t.buckets in
    t.acc.v <- 0.;
    for i = 0 to nbuckets - 1 do
      t.acc.v <- t.acc.v +. Array.unsafe_get b i
    done;
    t.acc.v /. t.width
end
