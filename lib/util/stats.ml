let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  let a = Array.of_list xs in
  (* [Float.compare], not polymorphic [compare]: same order on the floats
     that occur here, without the generic-comparison dispatch per element *)
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile 50. xs

module Ewma = struct
  type t = { alpha : float; mutable value : float; mutable initialized : bool }

  let create ~alpha =
    assert (alpha > 0. && alpha <= 1.);
    { alpha; value = 0.; initialized = false }

  let update t x =
    if t.initialized then t.value <- (t.alpha *. x) +. ((1. -. t.alpha) *. t.value)
    else begin
      t.value <- x;
      t.initialized <- true
    end

  let value t = t.value

  let reset t =
    t.value <- 0.;
    t.initialized <- false
end

module Window_counter = struct
  (* A ring of sub-buckets approximating a sliding window: the window is
     divided into [buckets] slots; entries older than the window are zeroed
     lazily as time advances. *)
  type t = {
    width : float;
    buckets : float array;
    mutable epoch : int; (* index of the slot holding "now" *)
    slot : float; (* duration of one slot *)
  }

  let nbuckets = 20

  let create ~width =
    assert (width > 0.);
    { width; buckets = Array.make nbuckets 0.; epoch = 0; slot = width /. float_of_int nbuckets }

  let slot_of t now = int_of_float (now /. t.slot)

  let advance t now =
    let target = slot_of t now in
    if target > t.epoch then begin
      let steps = min nbuckets (target - t.epoch) in
      for k = 1 to steps do
        t.buckets.((t.epoch + k) mod nbuckets) <- 0.
      done;
      t.epoch <- target
    end

  let add t ~now x =
    advance t now;
    let i = slot_of t now mod nbuckets in
    t.buckets.(i) <- t.buckets.(i) +. x

  let rate t ~now =
    advance t now;
    let total = Array.fold_left ( +. ) 0. t.buckets in
    total /. t.width
end
