(* Growable int vector: the incremental fluid solver's workhorse for
   dirty sets, per-link incidence lists and per-solve worklists. Plain
   int arrays double on demand and never shrink, so steady-state
   operation allocates nothing. *)

type t = { mutable a : int array; mutable len : int }

let create ?(capacity = 8) () =
  { a = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len

let clear t = t.len <- 0

let push t x =
  if t.len = Array.length t.a then begin
    let b = Array.make (2 * t.len) 0 in
    Array.blit t.a 0 b 0 t.len;
    t.a <- b
  end;
  t.a.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  Array.unsafe_get t.a i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  Array.unsafe_set t.a i x

let iter f t =
  for i = 0 to t.len - 1 do f (Array.unsafe_get t.a i) done

let exists f t =
  let rec go i = i < t.len && (f (Array.unsafe_get t.a i) || go (i + 1)) in
  go 0

(* Keep elements at even offsets paired with the following odd offset
   when the predicate on the pair holds; used to compact (id, gen)
   incidence pairs in place. *)
let filter_pairs_in_place f t =
  let w = ref 0 in
  let i = ref 0 in
  while !i + 1 < t.len do
    let x = Array.unsafe_get t.a !i and y = Array.unsafe_get t.a (!i + 1) in
    if f x y then begin
      Array.unsafe_set t.a !w x;
      Array.unsafe_set t.a (!w + 1) y;
      w := !w + 2
    end;
    i := !i + 2
  done;
  t.len <- !w
