(* Open-addressed int -> int hash table with linear probing.

   Built for per-packet state lookups: keys hash through one integer mix
   (no polymorphic hashing) and probes walk a flat int array (no bucket
   cons cells), so [get] allocates nothing and [set] allocates only when
   the table doubles. Values are plain ints; the caller picks a sentinel
   (the routing tables use -1 = "no entry") and reads through
   [get ~default]. *)

type t = {
  mutable keys : int array; (* -1 = empty, -2 = tombstone *)
  mutable vals : int array;
  mutable live : int; (* entries holding a value *)
  mutable used : int; (* live + tombstones: bounds probe-chain length *)
}

let empty_slot = -1
let tombstone = -2

let create ?(capacity = 16) () =
  (* power-of-two capacity so the probe mask is a single [land] *)
  let cap = ref 8 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { keys = Array.make !cap empty_slot; vals = Array.make !cap 0; live = 0; used = 0 }

let length t = t.live

(* Fibonacci hashing: one multiply spreads consecutive keys (the dense
   [src * n + dst] encodings this table is built for) across the slots. *)
let slot_of keys key =
  let mask = Array.length keys - 1 in
  (key * 0x9E3779B1) lsr 7 land mask

let rec find_slot keys key i =
  let k = keys.(i) in
  if k = key || k = empty_slot then i
  else find_slot keys key ((i + 1) land (Array.length keys - 1))

let find_slot keys key = find_slot keys key (slot_of keys key)

(* Insertion may also land on a tombstone left by [remove]; reuse the
   first one seen unless the key exists further down the chain. *)
let insert_slot keys key =
  let mask = Array.length keys - 1 in
  let rec go i reusable =
    let k = keys.(i) in
    if k = key then i
    else if k = empty_slot then (if reusable >= 0 then reusable else i)
    else if k = tombstone && reusable < 0 then go ((i + 1) land mask) i
    else go ((i + 1) land mask) reusable
  in
  go (slot_of keys key) (-1)

let rehash t cap =
  let okeys = t.keys and ovals = t.vals in
  t.keys <- Array.make cap empty_slot;
  t.vals <- Array.make cap 0;
  t.used <- t.live;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = find_slot t.keys k in
        t.keys.(j) <- k;
        t.vals.(j) <- ovals.(i)
      end)
    okeys

let set t key v =
  if key < 0 then invalid_arg "Int_table.set: negative key";
  (* keep load factor (incl. tombstones) under 1/2 *)
  if 2 * (t.used + 1) > Array.length t.keys then
    rehash t (if 4 * t.live >= Array.length t.keys then 2 * Array.length t.keys
              else Array.length t.keys);
  let i = insert_slot t.keys key in
  (match t.keys.(i) with
  | k when k = key -> ()
  | k ->
    if k = empty_slot then t.used <- t.used + 1;
    t.live <- t.live + 1);
  t.keys.(i) <- key;
  t.vals.(i) <- v

let get t key ~default =
  if key < 0 then default
  else
    let i = find_slot t.keys key in
    if t.keys.(i) = key then t.vals.(i) else default

let mem t key = key >= 0 && t.keys.(find_slot t.keys key) = key

let find_opt t key =
  if key < 0 then None
  else
    let i = find_slot t.keys key in
    if t.keys.(i) = key then Some t.vals.(i) else None

let remove t key =
  if key >= 0 then begin
    let i = find_slot t.keys key in
    if t.keys.(i) = key then begin
      t.keys.(i) <- tombstone;
      t.live <- t.live - 1
    end
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_slot;
  t.live <- 0;
  t.used <- 0

let iter f t =
  Array.iteri (fun i k -> if k >= 0 then f k t.vals.(i)) t.keys

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
