(** Imperative binary min-heap, the core of the discrete-event engine.

    Elements are ordered by a float priority with an integer tiebreaker so
    that events scheduled at the same instant pop in insertion order
    (deterministic simulation).

    Storage is parallel arrays (unboxed float priorities, int sequence
    numbers, two int tag columns, values), so [push] allocates nothing;
    the [min_prio]/[min_seq]/[pop_min] group lets callers drain the heap
    without the option/tuple boxing of [pop].

    The tag columns carry two unboxed payload ints per element for
    callers that would otherwise have to box a record per push (the
    engine's packet lane stores to/from node ids there). [push] and
    [push_seq] leave them at 0. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> prio:float -> 'a -> unit
(** Insert with priority; ties break by insertion order (an internal
    per-heap sequence counter). *)

val push_seq : 'a t -> prio:float -> seq:int -> 'a -> unit
(** Insert with a caller-supplied tiebreak sequence — for callers that
    interleave several heaps and need one global insertion order across
    them. Does not disturb the internal counter used by [push]; don't mix
    the two on one heap unless the caller's sequences dominate it. *)

val push_tagged : 'a t -> prio:float -> seq:int -> tag1:int -> tag2:int -> 'a -> unit
(** [push_seq] plus two payload ints retrievable via [top_tag1]/[top_tag2]
    while the element is the minimum. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum, or [None] when empty. *)

val min_prio : 'a t -> float
(** Priority of the minimum, without boxing. Raises [Invalid_argument]
    when empty — check {!is_empty} first. *)

val min_seq : 'a t -> int
(** Tiebreak sequence of the minimum. Raises [Invalid_argument] when
    empty. *)

val top_before : 'a t -> 'b t -> bool
(** [top_before a b]: does [a]'s minimum order strictly before [b]'s by
    [(prio, seq)]? An empty [b] counts as infinitely late, an empty [a]
    as never first. Allocation-free (unlike comparing two {!min_prio}
    results, which boxes two floats). *)

val top_at_most : 'a t -> float -> bool
(** [top_at_most t x]: is the heap non-empty with minimum priority
    [<= x]? Allocation-free. *)

val top_lt : 'a t -> float -> bool
(** [top_lt t x]: is the heap non-empty with minimum priority strictly
    [< x]? The exclusive bound of a conservative-PDES window. *)

val top_tag1 : 'a t -> int
val top_tag2 : 'a t -> int
(** Tag columns of the minimum. Raise [Invalid_argument] when empty. *)

val pop_min : 'a t -> 'a
(** Remove the minimum and return its value, without boxing. Raises
    [Invalid_argument] when empty. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
(** Empty the heap, releasing every stored value for collection (capacity
    is retained). Popping likewise clears the vacated slot — a drained
    heap keeps no element of the run alive. *)
