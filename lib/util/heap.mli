(** Imperative binary min-heap, the core of the discrete-event engine.

    Elements are ordered by a float priority with an integer tiebreaker so
    that events scheduled at the same instant pop in insertion order
    (deterministic simulation).

    Storage is three parallel arrays (unboxed float priorities, int
    sequence numbers, values), so [push] allocates nothing; the
    [min_prio]/[pop_min] pair lets callers drain the heap without the
    option/tuple boxing of [pop]. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> prio:float -> 'a -> unit
(** Insert with priority; ties break by insertion order. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum, or [None] when empty. *)

val min_prio : 'a t -> float
(** Priority of the minimum, without boxing. Raises [Invalid_argument]
    when empty — check {!is_empty} first. *)

val pop_min : 'a t -> 'a
(** Remove the minimum and return its value, without boxing. Raises
    [Invalid_argument] when empty. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
