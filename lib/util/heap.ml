(* Parallel-array storage: priorities live in a bare [float array] (unboxed
   by the runtime), sequence numbers, tags and values in their own arrays.
   Pushing therefore allocates nothing — the old per-push entry record was
   the single biggest allocation of the event loop.

   The two int tag columns ride along through every sift so a caller can
   attach unboxed payload words to each element (the engine's packet lane
   stores to/from node ids there); callers that don't need them pay two
   int stores per swap, which is noise next to the float compare. *)
type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable tag1s : int array;
  mutable tag2s : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

(* Neutral filler for vacated value slots. An immediate int masquerading
   as ['a]: safe because every value array is created below with this
   filler (so the runtime never specializes them to flat float arrays,
   and all accesses in this module stay generic), and because a filler
   slot is never read — [len] bounds every lookup. Without the clearing,
   a popped element stayed reachable from [vals.(len)] until the slot was
   overwritten: a space leak pinning packets and closures on any heap
   that drains (the event engine's lanes drain at the end of every
   run). *)
let nil : 'a. unit -> 'a = fun () -> Obj.magic 0

let create () =
  {
    prios = [||];
    seqs = [||];
    tag1s = [||];
    tag2s = [||];
    vals = [||];
    len = 0;
    next_seq = 0;
  }

let is_empty t = t.len = 0
let size t = t.len

let grow t =
  let cap = Array.length t.prios in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let np = Array.make ncap 0. in
    let ns = Array.make ncap 0 in
    let n1 = Array.make ncap 0 in
    let n2 = Array.make ncap 0 in
    let nv = Array.make ncap (nil ()) in
    Array.blit t.prios 0 np 0 t.len;
    Array.blit t.seqs 0 ns 0 t.len;
    Array.blit t.tag1s 0 n1 0 t.len;
    Array.blit t.tag2s 0 n2 0 t.len;
    Array.blit t.vals 0 nv 0 t.len;
    t.prios <- np;
    t.seqs <- ns;
    t.tag1s <- n1;
    t.tag2s <- n2;
    t.vals <- nv
  end

let push_tagged t ~prio ~seq ~tag1 ~tag2 value =
  grow t;
  let p = t.prios and s = t.seqs and t1 = t.tag1s and t2 = t.tag2s and v = t.vals in
  (* hole-based sift up: shift larger parents down, place the new element
     once. Unsafe accesses: every index is in [0, len) with len <= capacity
     by [grow]'s postcondition. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pp = Array.unsafe_get p parent in
    if prio < pp || (prio = pp && seq < Array.unsafe_get s parent) then begin
      Array.unsafe_set p !i pp;
      Array.unsafe_set s !i (Array.unsafe_get s parent);
      Array.unsafe_set t1 !i (Array.unsafe_get t1 parent);
      Array.unsafe_set t2 !i (Array.unsafe_get t2 parent);
      Array.unsafe_set v !i (Array.unsafe_get v parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set p !i prio;
  Array.unsafe_set s !i seq;
  Array.unsafe_set t1 !i tag1;
  Array.unsafe_set t2 !i tag2;
  Array.unsafe_set v !i value

let push_seq t ~prio ~seq value = push_tagged t ~prio ~seq ~tag1:0 ~tag2:0 value

let push t ~prio value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push_seq t ~prio ~seq value

let sift_down t =
  let p = t.prios and s = t.seqs and t1 = t.tag1s and t2 = t.tag2s and v = t.vals in
  (* comparisons written out instead of a [less a b] helper: the local
     closure capturing [p]/[s] was a fresh block on every pop *)
  (* indices stay below t.len <= capacity, so the accesses are in range *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if
      l < t.len
      && (Array.unsafe_get p l < Array.unsafe_get p !smallest
         || (Array.unsafe_get p l = Array.unsafe_get p !smallest
            && Array.unsafe_get s l < Array.unsafe_get s !smallest))
    then smallest := l;
    if
      r < t.len
      && (Array.unsafe_get p r < Array.unsafe_get p !smallest
         || (Array.unsafe_get p r = Array.unsafe_get p !smallest
            && Array.unsafe_get s r < Array.unsafe_get s !smallest))
    then smallest := r;
    if !smallest <> !i then begin
      let tp = Array.unsafe_get p !smallest
      and ts = Array.unsafe_get s !smallest
      and tt1 = Array.unsafe_get t1 !smallest
      and tt2 = Array.unsafe_get t2 !smallest
      and tv = Array.unsafe_get v !smallest in
      Array.unsafe_set p !smallest (Array.unsafe_get p !i);
      Array.unsafe_set s !smallest (Array.unsafe_get s !i);
      Array.unsafe_set t1 !smallest (Array.unsafe_get t1 !i);
      Array.unsafe_set t2 !smallest (Array.unsafe_get t2 !i);
      Array.unsafe_set v !smallest (Array.unsafe_get v !i);
      Array.unsafe_set p !i tp;
      Array.unsafe_set s !i ts;
      Array.unsafe_set t1 !i tt1;
      Array.unsafe_set t2 !i tt2;
      Array.unsafe_set v !i tv;
      i := !smallest
    end
    else continue := false
  done

let remove_min t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.prios.(0) <- t.prios.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.tag1s.(0) <- t.tag1s.(t.len);
    t.tag2s.(0) <- t.tag2s.(t.len);
    t.vals.(0) <- t.vals.(t.len);
    t.vals.(t.len) <- nil ();
    sift_down t
  end
  else t.vals.(0) <- nil ()

let pop t =
  if t.len = 0 then None
  else begin
    let prio = t.prios.(0) and value = t.vals.(0) in
    remove_min t;
    Some (prio, value)
  end

let min_prio t =
  if t.len = 0 then invalid_arg "Heap.min_prio: empty heap";
  t.prios.(0)

(* Cross-module calls returning floats box the result; these comparison
   entry points return bools so a caller merging heaps doesn't pay a
   fresh float box per peek. *)
let top_before a b =
  if a.len = 0 then false
  else if b.len = 0 then true
  else
    let pa = a.prios.(0) and pb = b.prios.(0) in
    pa < pb || (pa = pb && a.seqs.(0) < b.seqs.(0))

let top_at_most t x = t.len > 0 && t.prios.(0) <= x
let top_lt t x = t.len > 0 && t.prios.(0) < x

let min_seq t =
  if t.len = 0 then invalid_arg "Heap.min_seq: empty heap";
  t.seqs.(0)

let top_tag1 t =
  if t.len = 0 then invalid_arg "Heap.top_tag1: empty heap";
  t.tag1s.(0)

let top_tag2 t =
  if t.len = 0 then invalid_arg "Heap.top_tag2: empty heap";
  t.tag2s.(0)

let pop_min t =
  if t.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let value = t.vals.(0) in
  remove_min t;
  value

let peek t = if t.len = 0 then None else Some (t.prios.(0), t.vals.(0))

let clear t =
  (* releasing the values matters as much as resetting the length: a
     cleared-but-retained heap (Engine.clear keeps the engine for reuse)
     must not pin the previous run's packets and closures *)
  if t.len > 0 then Array.fill t.vals 0 t.len (nil ());
  t.len <- 0;
  t.next_seq <- 0
