(* Parallel-array storage: priorities live in a bare [float array] (unboxed
   by the runtime), sequence numbers and values in their own arrays. Pushing
   therefore allocates nothing — the old per-push entry record was the single
   biggest allocation of the event loop. *)
type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { prios = [||]; seqs = [||]; vals = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let grow t filler =
  let cap = Array.length t.prios in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let np = Array.make ncap 0. in
    let ns = Array.make ncap 0 in
    let nv = Array.make ncap filler in
    Array.blit t.prios 0 np 0 t.len;
    Array.blit t.seqs 0 ns 0 t.len;
    Array.blit t.vals 0 nv 0 t.len;
    t.prios <- np;
    t.seqs <- ns;
    t.vals <- nv
  end

let push t ~prio value =
  grow t value;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let p = t.prios and s = t.seqs and v = t.vals in
  (* hole-based sift up: shift larger parents down, place the new element
     once *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if prio < p.(parent) || (prio = p.(parent) && seq < s.(parent)) then begin
      p.(!i) <- p.(parent);
      s.(!i) <- s.(parent);
      v.(!i) <- v.(parent);
      i := parent
    end
    else continue := false
  done;
  p.(!i) <- prio;
  s.(!i) <- seq;
  v.(!i) <- value

let sift_down t =
  let p = t.prios and s = t.seqs and v = t.vals in
  let less a b = p.(a) < p.(b) || (p.(a) = p.(b) && s.(a) < s.(b)) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less l !smallest then smallest := l;
    if r < t.len && less r !smallest then smallest := r;
    if !smallest <> !i then begin
      let tp = p.(!smallest) and ts = s.(!smallest) and tv = v.(!smallest) in
      p.(!smallest) <- p.(!i);
      s.(!smallest) <- s.(!i);
      v.(!smallest) <- v.(!i);
      p.(!i) <- tp;
      s.(!i) <- ts;
      v.(!i) <- tv;
      i := !smallest
    end
    else continue := false
  done

let remove_min t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.prios.(0) <- t.prios.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.vals.(0) <- t.vals.(t.len);
    sift_down t
  end

let pop t =
  if t.len = 0 then None
  else begin
    let prio = t.prios.(0) and value = t.vals.(0) in
    remove_min t;
    Some (prio, value)
  end

let min_prio t =
  if t.len = 0 then invalid_arg "Heap.min_prio: empty heap";
  t.prios.(0)

let pop_min t =
  if t.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let value = t.vals.(0) in
  remove_min t;
  value

let peek t = if t.len = 0 then None else Some (t.prios.(0), t.vals.(0))

let clear t =
  t.len <- 0;
  t.next_seq <- 0
