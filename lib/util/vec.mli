(** Growable int vector. Doubling growth, never shrinks: steady-state
    push/clear cycles allocate nothing, which is what the incremental
    fluid solver's dirty sets and worklists need. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val clear : t -> unit
(** [clear] resets the length; capacity is retained. *)

val push : t -> int -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit
val iter : (int -> unit) -> t -> unit
val exists : (int -> bool) -> t -> bool

val filter_pairs_in_place : (int -> int -> bool) -> t -> unit
(** Treat the vector as a flat sequence of [(x, y)] pairs and keep only
    the pairs satisfying the predicate, compacting in place. A trailing
    unpaired element is dropped. *)
