(** Open-addressed int -> int hash table: linear probing over flat int
    arrays, Fibonacci-mixed integer hashing.

    The per-packet alternative to [(int * int, int) Hashtbl.t]: no tuple
    key to box per lookup, no polymorphic hash dispatch, no bucket cons
    cells — [get] allocates nothing. Keys must be non-negative (pack a
    pair as [src * n + dst]); values are plain ints and absence is
    reported through the caller's [~default] sentinel. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a size hint (rounded up to a power of two, minimum 8);
    the table grows as needed. *)

val length : t -> int
(** Number of live entries. *)

val set : t -> int -> int -> unit
(** Insert or overwrite. Raises [Invalid_argument] on a negative key. *)

val get : t -> int -> default:int -> int
(** Value bound to the key, or [default]. Allocation-free. Negative keys
    (never stored) return [default]. *)

val find_opt : t -> int -> int option
val mem : t -> int -> bool

val remove : t -> int -> unit
(** No-op when the key is absent. *)

val clear : t -> unit
(** Drop every entry, keeping the current capacity. *)

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] calls [f key value] on every live entry, in unspecified
    order. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
