(** Mode-change regions as simulation shards.

    The multimode protocol ({!Protocol}) bounds mode changes to a region of
    the topology; the parallel engine ({!Ff_parallel.Psim}) exploits the
    same locality by giving each region its own engine and exchanging only
    the packets that cross a boundary. This module computes the partition
    and the quantity the conservative synchronization window is built from:
    the minimum propagation delay of any cross-region link. *)

val partition : Ff_topology.Topology.t -> shards:int -> int array
(** Deterministic balanced partition of the topology into [shards]
    regions; the result maps node id to region id in [0, shards). Regions
    are grown breadth-first from the lowest-id unassigned switch, so equal
    inputs always produce equal partitions (the cross-shard event tie rule
    orders by shard id, which must therefore be stable). Region switch
    counts differ by at most one; hosts join their access switch's region.
    Raises [Invalid_argument] when [shards < 1] or exceeds the switch
    count. *)

val lookahead : Ff_topology.Topology.t -> shard_of:int array -> float
(** Minimum propagation delay over links whose endpoints fall in different
    regions — the conservative lookahead: a packet crossing a boundary at
    time [t] cannot arrive before [t + lookahead], so every shard may
    safely execute events up to (exclusive) the global minimum next-event
    time plus this bound. [infinity] when nothing crosses (single shard).
    Raises [Invalid_argument] if a cross-region link has zero delay, which
    would make the window empty. *)

val ownership : int array -> shard:int -> Bytes.t
(** Dense ownership vector for one shard, in the form
    {!Ff_netsim.Net.set_shard_hook} expects: byte [i] is ['\001'] iff
    [shard_of.(i) = shard]. *)

val sizes : int array -> shards:int -> int array
(** Nodes per region (hosts included). *)

val cross_links :
  Ff_topology.Topology.t -> shard_of:int array -> Ff_topology.Topology.link list
(** The links crossing region boundaries — one SPSC mailbox per direction
    of each. *)
