module Topology = Ff_topology.Topology

(* Balanced BFS-grow partition. Each region is grown breadth-first from
   the lowest-id unassigned switch, taking switches in BFS order until the
   region reaches its share of the remaining switch count. BFS keeps the
   regions contiguous where the graph allows (maximizing internal links,
   minimizing the cross-shard traffic the parallel engine has to exchange);
   the lowest-id seed and [Topology.neighbors] traversal order make the
   result a pure function of the topology, which the deterministic
   cross-shard tie rule depends on. Hosts inherit the region of their
   access switch, so host links almost never cross a boundary. *)
let partition topo ~shards =
  let n = Topology.num_nodes topo in
  let switches = Topology.switches topo in
  let n_sw = List.length switches in
  if shards < 1 then invalid_arg "Regions.partition: shards < 1";
  if shards > n_sw then
    invalid_arg
      (Printf.sprintf "Regions.partition: %d shards > %d switches" shards n_sw);
  let shard_of = Array.make n (-1) in
  let assigned = ref 0 in
  let next_seed () =
    (* lowest-id unassigned switch: deterministic, and on generated
       topologies (fat-tree pods, rings) low ids cluster structurally *)
    List.find_opt
      (fun (nd : Topology.node) -> shard_of.(nd.Topology.id) < 0)
      switches
  in
  for s = 0 to shards - 1 do
    (* even split of whatever is left: region sizes differ by at most 1 *)
    let target = (n_sw - !assigned + (shards - s - 1)) / (shards - s) in
    let taken = ref 0 in
    let q = Queue.create () in
    while !taken < target do
      if Queue.is_empty q then begin
        match next_seed () with
        | Some nd -> Queue.add nd.Topology.id q
        | None -> invalid_arg "Regions.partition: ran out of switches"
      end;
      let u = Queue.pop q in
      if shard_of.(u) < 0 then begin
        shard_of.(u) <- s;
        incr assigned;
        incr taken;
        if !taken < target then
          List.iter
            (fun (peer, _) ->
              if
                shard_of.(peer) < 0
                && (Topology.node topo peer).Topology.kind = Topology.Switch
              then Queue.add peer q)
            (Topology.neighbors topo u)
      end
    done
  done;
  (* hosts follow their access switch (first neighbor, matching
     [Net.access_switch]); isolated hosts land in region 0 *)
  List.iter
    (fun (nd : Topology.node) ->
      let id = nd.Topology.id in
      match Topology.neighbors topo id with
      | (peer, _) :: _ -> shard_of.(id) <- shard_of.(peer)
      | [] -> shard_of.(id) <- 0)
    (Topology.hosts topo);
  shard_of

let lookahead topo ~shard_of =
  let la =
    List.fold_left
      (fun acc (l : Topology.link) ->
        if shard_of.(l.Topology.a) <> shard_of.(l.Topology.b) then begin
          if l.Topology.delay <= 0. then
            invalid_arg
              (Printf.sprintf
                 "Regions.lookahead: cross-region link %d-%d has zero delay \
                  (no conservative window possible)"
                 l.Topology.a l.Topology.b);
          Float.min acc l.Topology.delay
        end
        else acc)
      infinity (Topology.links topo)
  in
  la

let ownership shard_of ~shard =
  let n = Array.length shard_of in
  let b = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    if shard_of.(i) = shard then Bytes.set b i '\001'
  done;
  b

let sizes shard_of ~shards =
  let counts = Array.make shards 0 in
  Array.iter (fun s -> if s >= 0 then counts.(s) <- counts.(s) + 1) shard_of;
  counts

let cross_links topo ~shard_of =
  List.filter
    (fun (l : Topology.link) -> shard_of.(l.Topology.a) <> shard_of.(l.Topology.b))
    (Topology.links topo)
