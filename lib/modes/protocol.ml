module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Prng = Ff_util.Prng

type attack = Packet.attack_kind

(* Per-(switch, attack) anti-entropy state: the latest (epoch, activate)
   this switch is responsible for spreading, which neighbors have not yet
   confirmed it, and the backoff timer driving re-advertisement. A probe
   flood is fire-and-forget, so a single lost probe used to strand a
   switch in the wrong mode until the next epoch; the advert closes that
   hole by re-sending until every neighbor acks. *)
type advert = {
  mutable ad_epoch : int;
  mutable ad_activate : bool;
  mutable ad_ttl : int; (* region_ttl carried by this switch's re-sends *)
  mutable pending : int list; (* neighbors not yet confirmed at ad_epoch *)
  mutable interval : float; (* current backoff interval *)
  mutable due : float; (* absolute time of the next re-advertisement *)
}

type sw_state = {
  (* per attack kind *)
  seen_epoch : (attack, int) Hashtbl.t;
  active_attacks : (attack, float) Hashtbl.t; (* activation time *)
  pending_clear : (attack, int) Hashtbl.t; (* epoch of a clear waiting for dwell *)
  adverts : (attack, advert) Hashtbl.t;
}

type t = {
  net : Net.t;
  region_ttl : int;
  min_dwell : float;
  flap_window : float;
  max_holddown : float;
  anti_entropy : float; (* base readvert period; <= 0 disables *)
  rng : Prng.t;
  modes_for : attack -> string list;
  epochs : (attack, int) Hashtbl.t;
  states : (int, sw_state) Hashtbl.t;
  mutable history : (float * int * attack * bool) list;
  mutable observers : (sw:int -> attack:attack -> active:bool -> unit) list;
      (* notified on every applied transition — the hybrid fluid tier
         subscribes to track the hot (mode-changing) region *)
  mutable transitions : int;
  mutable readverts : int;
  mutable repairs : int;
  flap_times : (attack, float list) Hashtbl.t; (* recent activation times *)
  max_flap_entries : int;
}

let mode_var name = "mode:" ^ name

let state t sw =
  match Hashtbl.find_opt t.states sw with
  | Some s -> s
  | None ->
    let s =
      {
        seen_epoch = Hashtbl.create 4;
        active_attacks = Hashtbl.create 4;
        pending_clear = Hashtbl.create 4;
        adverts = Hashtbl.create 4;
      }
    in
    Hashtbl.replace t.states sw s;
    s

let refresh_vars t sw =
  let st = state t sw in
  let sw_rec = Net.switch t.net sw in
  let vars = sw_rec.Net.vars in
  (* recompute every mode var from the set of active attacks; the interned
     flag bit is the copy per-packet booster stages actually read *)
  let write m on =
    Hashtbl.replace vars (mode_var m) (if on then 1. else 0.);
    Net.set_flag sw_rec ~mask:(Net.flag_mask (mode_var m)) on
  in
  List.iter
    (fun attack -> List.iter (fun m -> write m false) (t.modes_for attack))
    Packet.all_attack_kinds;
  Hashtbl.iter
    (fun attack _ -> List.iter (fun m -> write m true) (t.modes_for attack))
    st.active_attacks

let on_transition t f = t.observers <- f :: t.observers

let record t sw attack activated =
  t.history <- (Net.now t.net, sw, attack, activated) :: t.history;
  List.iter (fun f -> f ~sw ~attack ~active:activated) t.observers;
  t.transitions <- t.transitions + 1;
  Net.obs_emit t.net
    (Ff_obs.Event.Mode_transition
       { sw; attack = Packet.attack_kind_to_string attack; activated });
  match Net.metrics t.net with
  | None -> ()
  | Some m ->
    Ff_obs.Metrics.Counter.incr
      (Ff_obs.Metrics.counter m ~scope:(Ff_obs.Metrics.Switch sw) "mode_transitions")

let current_dwell t attack =
  let now = Net.now t.net in
  let recent =
    List.filter
      (fun at -> now -. at <= t.flap_window)
      (try Hashtbl.find t.flap_times attack with Not_found -> [])
  in
  let flaps = List.length recent in
  if flaps <= 1 then t.min_dwell
  else Float.min t.max_holddown (t.min_dwell *. (2. ** float_of_int (flaps - 1)))

(* Prune on insert: age out entries past the window AND hard-cap the list
   at the depth where the exponential holddown saturates at [max_holddown]
   — beyond that extra entries change nothing, so sustained flapping (even
   many activations within one window) cannot grow the list without
   bound. *)
let note_activation t attack =
  let now = Net.now t.net in
  let previous = try Hashtbl.find t.flap_times attack with Not_found -> [] in
  let recent =
    List.filteri
      (fun i at -> i < t.max_flap_entries - 1 && now -. at <= t.flap_window)
      previous
  in
  Hashtbl.replace t.flap_times attack (now :: recent)

let flap_entries t attack =
  List.length (try Hashtbl.find t.flap_times attack with Not_found -> [])

(* ---------------- anti-entropy bookkeeping ---------------- *)

let known_epoch t ~sw ~attack =
  let st = state t sw in
  let seen = match Hashtbl.find_opt st.seen_epoch attack with Some e -> e | None -> 0 in
  match Hashtbl.find_opt st.adverts attack with
  | Some ad when ad.ad_epoch > seen -> ad.ad_epoch
  | _ -> seen

(* Re-advertisements fire [0.75,1.25]x the nominal delay so neighbors that
   learned an epoch in the same flood don't re-send in lockstep. *)
let jittered t base = base *. (0.75 +. (0.5 *. Prng.float t.rng 1.))

(* The switch now knows (epoch, activate): start (or refresh) the advert
   responsible for keeping its neighbors at least this fresh. [ttl] is the
   region budget this switch's own re-sends may spend — 0 at the region
   boundary, where re-advertising would grow the region by one hop per
   round. [confirmed] neighbors (the probe's sender) already have it. *)
let note_known t ~sw ~attack ~epoch ~activate ~ttl ~confirmed =
  if t.anti_entropy > 0. then begin
    let st = state t sw in
    let ad =
      match Hashtbl.find_opt st.adverts attack with
      | Some ad -> ad
      | None ->
        let ad =
          { ad_epoch = 0; ad_activate = false; ad_ttl = 0; pending = [];
            interval = t.anti_entropy; due = 0. }
        in
        Hashtbl.replace st.adverts attack ad;
        ad
    in
    if epoch > ad.ad_epoch then begin
      ad.ad_epoch <- epoch;
      ad.ad_activate <- activate;
      ad.ad_ttl <- ttl;
      ad.pending <-
        (if ttl > 0 then
           List.filter (fun p -> not (List.mem p confirmed)) (Net.neighbors_of t.net sw)
         else []);
      ad.interval <- t.anti_entropy;
      ad.due <- Net.now t.net +. jittered t t.anti_entropy
    end
    else if epoch = ad.ad_epoch && confirmed <> [] then
      ad.pending <- List.filter (fun p -> not (List.mem p confirmed)) ad.pending
  end

let confirm t ~sw ~attack ~epoch ~neighbor =
  let st = state t sw in
  match Hashtbl.find_opt st.adverts attack with
  | Some ad when ad.ad_epoch = epoch ->
    if List.mem neighbor ad.pending then
      ad.pending <- List.filter (fun p -> p <> neighbor) ad.pending
  | _ -> ()

let probe_packet t ~sw ~attack ~epoch ~activate ~ttl =
  Packet.make ~src:sw ~dst:sw ~flow:0 ~birth:(Net.now t.net)
    ~payload:(Packet.Mode_probe { attack; epoch; origin = sw; activate; region_ttl = ttl })
    ()

(* An ack is an ordinary equal-epoch probe with region_ttl = 0: it confirms
   the sender without changing the wire format, and the zero ttl keeps it
   from being re-flooded or re-acked (no ping-pong). *)
let send_ack t ~sw ~to_ ~attack ~epoch ~activate =
  if t.anti_entropy > 0. then
    Net.emit_from_switch t.net ~sw ~next:to_
      (probe_packet t ~sw ~attack ~epoch ~activate ~ttl:0)

(* A neighbor just sent a probe with an epoch behind ours: it missed an
   update. Send our latest directly — the stimulus-driven fast path of
   anti-entropy (the timer-driven readvert is the slow path). *)
let repair t ~sw ~to_ ~attack =
  let st = state t sw in
  match Hashtbl.find_opt st.adverts attack with
  | Some ad when ad.ad_epoch > 0 ->
    t.repairs <- t.repairs + 1;
    if Net.obs_active t.net then
      Net.obs_emit t.net
        (Ff_obs.Event.Repair
           { subsystem = "mode"; node = sw;
             info = Packet.attack_kind_to_string attack });
    Net.emit_from_switch t.net ~sw ~next:to_
      (probe_packet t ~sw ~attack ~epoch:ad.ad_epoch ~activate:ad.ad_activate
         ~ttl:ad.ad_ttl)
  | _ -> ()

(* ---------------- epoch application ---------------- *)

let activate_at t ~sw ~attack ~epoch =
  let st = state t sw in
  let fresh =
    match Hashtbl.find_opt st.seen_epoch attack with Some e -> epoch > e | None -> true
  in
  if fresh then begin
    Hashtbl.replace st.seen_epoch attack epoch;
    Hashtbl.remove st.pending_clear attack;
    if not (Hashtbl.mem st.active_attacks attack) then begin
      Hashtbl.replace st.active_attacks attack (Net.now t.net);
      refresh_vars t sw;
      record t sw attack true
    end;
    true
  end
  else false

(* Outcome of processing a probe at one switch: [`Stale] probes stop here;
   fresh ones keep flooding whether applied now or deferred by the dwell. *)
let rec deactivate_at t ~sw ~attack ~epoch =
  let st = state t sw in
  let fresh =
    match Hashtbl.find_opt st.seen_epoch attack with Some e -> epoch > e | None -> true
  in
  if not fresh then `Stale
  else
    match Hashtbl.find_opt st.active_attacks attack with
    | None ->
      Hashtbl.replace st.seen_epoch attack epoch;
      `Applied
    | Some activated_at ->
      let now = Net.now t.net in
      let dwell = current_dwell t attack in
      (* epsilon slack: the expiry timer fires at exactly activated+dwell
         and must count as expired despite floating-point rounding *)
      if now -. activated_at >= dwell -. 1e-9 then begin
        Hashtbl.replace st.seen_epoch attack epoch;
        Hashtbl.remove st.active_attacks attack;
        refresh_vars t sw;
        record t sw attack false;
        `Applied
      end
      else if Hashtbl.mem st.pending_clear attack then begin
        (* a newer clear arrived while one is queued: keep the freshest
           epoch; the already-scheduled dwell timer applies whatever is
           stored when it fires *)
        let stored = Hashtbl.find st.pending_clear attack in
        if epoch > stored then Hashtbl.replace st.pending_clear attack epoch;
        `Deferred
      end
      else begin
        (* honor the dwell: apply the clear when it expires, unless a newer
           activation supersedes it in the meantime *)
        Hashtbl.replace st.pending_clear attack epoch;
        Engine.after (Net.engine t.net)
          ~delay:(Float.max 0. (activated_at +. dwell -. now))
          (fun () ->
            match Hashtbl.find_opt st.pending_clear attack with
            | Some e ->
              Hashtbl.remove st.pending_clear attack;
              ignore (deactivate_at t ~sw ~attack ~epoch:e)
            | None -> ());
        `Deferred
      end

let flood t ~from_sw ~except ~attack ~epoch ~activate ~ttl =
  if ttl > 0 then begin
    Net.obs_emit t.net (Ff_obs.Event.Probe { sw = from_sw; kind = "mode" });
    Net.flood_from_switch t.net ~sw:from_sw ~except (fun () ->
        probe_packet t ~sw:from_sw ~attack ~epoch ~activate ~ttl)
  end

let handle_probe t ~sw ~in_port ~attack ~epoch ~activate ~region_ttl =
  let known = known_epoch t ~sw ~attack in
  let from_neighbor = in_port >= 0 && List.mem in_port (Net.neighbors_of t.net sw) in
  if epoch > known then begin
    let fresh =
      if activate then activate_at t ~sw ~attack ~epoch
      else deactivate_at t ~sw ~attack ~epoch <> `Stale
    in
    if fresh then begin
      note_known t ~sw ~attack ~epoch ~activate
        ~ttl:(max 0 (region_ttl - 1))
        ~confirmed:(if from_neighbor then [ in_port ] else []);
      (* re-flood fresh information through the region *)
      flood t ~from_sw:sw ~except:[ in_port ] ~attack ~epoch ~activate
        ~ttl:(region_ttl - 1);
      if from_neighbor && region_ttl > 0 then
        send_ack t ~sw ~to_:in_port ~attack ~epoch ~activate
    end
  end
  else if epoch = known && known > 0 then begin
    if from_neighbor then begin
      (* the sender provably holds our epoch: stop re-advertising to it *)
      confirm t ~sw ~attack ~epoch ~neighbor:in_port;
      if region_ttl > 0 then send_ack t ~sw ~to_:in_port ~attack ~epoch ~activate
    end
  end
  else if from_neighbor && known > 0 then
    (* the sender is behind: push our fresher state straight back *)
    repair t ~sw ~to_:in_port ~attack

let stage t =
  {
    Net.stage_name = "mode-protocol";
    process =
      (fun ctx pkt ->
        match pkt.Packet.payload with
        | Packet.Mode_probe { attack; epoch; activate; region_ttl; _ } ->
          handle_probe t ~sw:ctx.Net.sw.Net.sw_id ~in_port:ctx.Net.in_port ~attack
            ~epoch ~activate ~region_ttl;
          Net.Absorb
        | _ -> Net.Continue);
  }

(* Timer-driven slow path: walk this switch's adverts and re-send to any
   neighbor still pending past its due time. Runs on the rare thunk lane —
   it never touches per-packet state, so the packet hot path stays
   allocation-free. Backoff doubles up to 8x base so a partitioned
   neighbor costs O(1/8 base) sends per second, not a constant hammer. *)
let anti_entropy_tick t sw =
  match Hashtbl.find_opt t.states sw with
  | None -> ()
  | Some st ->
    let now = Net.now t.net in
    Hashtbl.iter
      (fun attack ad ->
        if ad.pending <> [] && now >= ad.due -. 1e-9 then begin
          t.readverts <- t.readverts + 1;
          if Net.obs_active t.net then
            Net.obs_emit t.net (Ff_obs.Event.Probe { sw; kind = "mode-readvert" });
          List.iter
            (fun peer ->
              Net.emit_from_switch t.net ~sw ~next:peer
                (probe_packet t ~sw ~attack ~epoch:ad.ad_epoch
                   ~activate:ad.ad_activate ~ttl:ad.ad_ttl))
            ad.pending;
          ad.interval <- Float.min (ad.interval *. 2.) (8. *. t.anti_entropy);
          ad.due <- now +. jittered t ad.interval
        end)
      st.adverts

let create net ?(region_ttl = 8) ?(min_dwell = 1.0) ?(flap_window = 10.)
    ?(max_holddown = 16.) ?(anti_entropy = 0.5) ?(seed = 11) ~modes_for () =
  let t =
    {
      net;
      region_ttl;
      min_dwell;
      flap_window;
      max_holddown;
      anti_entropy;
      rng = Prng.create ~seed;
      modes_for;
      epochs = Hashtbl.create 4;
      states = Hashtbl.create 16;
      history = [];
      observers = [];
      transitions = 0;
      readverts = 0;
      repairs = 0;
      flap_times = Hashtbl.create 4;
      max_flap_entries =
        (let ratio = Float.max 1. (max_holddown /. Float.max 1e-9 min_dwell) in
         2 + int_of_float (ceil (log ratio /. log 2.)));
    }
  in
  List.iter (fun sw -> Net.add_stage net ~sw (stage t)) (Net.switch_ids net);
  if anti_entropy > 0. then begin
    let engine = Net.engine net in
    List.iter
      (fun sw ->
        (* per-switch jittered phase and period: readvert scans must not
           synchronize across the region *)
        let period = anti_entropy *. (0.9 +. (0.2 *. Prng.float t.rng 1.)) in
        let start = Engine.now engine +. (anti_entropy *. (0.5 +. (0.5 *. Prng.float t.rng 1.))) in
        Engine.every engine ~start ~period (fun () -> anti_entropy_tick t sw))
      (Net.switch_ids net)
  end;
  t

let next_epoch t attack =
  let e = 1 + (try Hashtbl.find t.epochs attack with Not_found -> 0) in
  Hashtbl.replace t.epochs attack e;
  e

let raise_alarm t ~sw attack =
  let st = state t sw in
  if not (Hashtbl.mem st.active_attacks attack) then begin
    note_activation t attack;
    let epoch = next_epoch t attack in
    if activate_at t ~sw ~attack ~epoch then begin
      note_known t ~sw ~attack ~epoch ~activate:true ~ttl:t.region_ttl ~confirmed:[];
      flood t ~from_sw:sw ~except:[] ~attack ~epoch ~activate:true ~ttl:t.region_ttl
    end
  end

let clear_alarm t ~sw attack =
  let epoch = next_epoch t attack in
  (match deactivate_at t ~sw ~attack ~epoch with `Stale | `Applied | `Deferred -> ());
  note_known t ~sw ~attack ~epoch ~activate:false ~ttl:t.region_ttl ~confirmed:[];
  flood t ~from_sw:sw ~except:[] ~attack ~epoch ~activate:false ~ttl:t.region_ttl

let active t ~sw mode =
  match Hashtbl.find_opt (Net.switch t.net sw).Net.vars (mode_var mode) with
  | Some v -> v > 0.
  | None -> false

let attack_active t ~sw attack = Hashtbl.mem (state t sw).active_attacks attack

let active_anywhere t mode = List.exists (fun sw -> active t ~sw mode) (Net.switch_ids t.net)

let switches_with_mode t mode = List.filter (fun sw -> active t ~sw mode) (Net.switch_ids t.net)

let epoch t attack = try Hashtbl.find t.epochs attack with Not_found -> 0

let region_ttl t = t.region_ttl

let log t = List.rev t.history

let transitions t = t.transitions

let readverts t = t.readverts

let repairs t = t.repairs

let pending_adverts t =
  Hashtbl.fold
    (fun _sw st acc ->
      Hashtbl.fold
        (fun _attack ad acc -> if ad.pending = [] then acc else acc + 1)
        st.adverts acc)
    t.states 0
