module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet

type attack = Packet.attack_kind

type sw_state = {
  (* per attack kind *)
  seen_epoch : (attack, int) Hashtbl.t;
  active_attacks : (attack, float) Hashtbl.t; (* activation time *)
  pending_clear : (attack, int) Hashtbl.t; (* epoch of a clear waiting for dwell *)
}

type t = {
  net : Net.t;
  region_ttl : int;
  min_dwell : float;
  flap_window : float;
  max_holddown : float;
  modes_for : attack -> string list;
  epochs : (attack, int) Hashtbl.t;
  states : (int, sw_state) Hashtbl.t;
  mutable history : (float * int * attack * bool) list;
  mutable transitions : int;
  flap_times : (attack, float list) Hashtbl.t; (* recent activation times *)
  max_flap_entries : int;
}

let mode_var name = "mode:" ^ name

let state t sw =
  match Hashtbl.find_opt t.states sw with
  | Some s -> s
  | None ->
    let s =
      {
        seen_epoch = Hashtbl.create 4;
        active_attacks = Hashtbl.create 4;
        pending_clear = Hashtbl.create 4;
      }
    in
    Hashtbl.replace t.states sw s;
    s

let refresh_vars t sw =
  let st = state t sw in
  let sw_rec = Net.switch t.net sw in
  let vars = sw_rec.Net.vars in
  (* recompute every mode var from the set of active attacks; the interned
     flag bit is the copy per-packet booster stages actually read *)
  let write m on =
    Hashtbl.replace vars (mode_var m) (if on then 1. else 0.);
    Net.set_flag sw_rec ~mask:(Net.flag_mask (mode_var m)) on
  in
  List.iter
    (fun attack -> List.iter (fun m -> write m false) (t.modes_for attack))
    Packet.all_attack_kinds;
  Hashtbl.iter
    (fun attack _ -> List.iter (fun m -> write m true) (t.modes_for attack))
    st.active_attacks

let record t sw attack activated =
  t.history <- (Net.now t.net, sw, attack, activated) :: t.history;
  t.transitions <- t.transitions + 1;
  Net.obs_emit t.net
    (Ff_obs.Event.Mode_transition
       { sw; attack = Packet.attack_kind_to_string attack; activated });
  match Net.metrics t.net with
  | None -> ()
  | Some m ->
    Ff_obs.Metrics.Counter.incr
      (Ff_obs.Metrics.counter m ~scope:(Ff_obs.Metrics.Switch sw) "mode_transitions")

let current_dwell t attack =
  let now = Net.now t.net in
  let recent =
    List.filter
      (fun at -> now -. at <= t.flap_window)
      (try Hashtbl.find t.flap_times attack with Not_found -> [])
  in
  let flaps = List.length recent in
  if flaps <= 1 then t.min_dwell
  else Float.min t.max_holddown (t.min_dwell *. (2. ** float_of_int (flaps - 1)))

(* Prune on insert: age out entries past the window AND hard-cap the list
   at the depth where the exponential holddown saturates at [max_holddown]
   — beyond that extra entries change nothing, so sustained flapping (even
   many activations within one window) cannot grow the list without
   bound. *)
let note_activation t attack =
  let now = Net.now t.net in
  let previous = try Hashtbl.find t.flap_times attack with Not_found -> [] in
  let recent =
    List.filteri
      (fun i at -> i < t.max_flap_entries - 1 && now -. at <= t.flap_window)
      previous
  in
  Hashtbl.replace t.flap_times attack (now :: recent)

let flap_entries t attack =
  List.length (try Hashtbl.find t.flap_times attack with Not_found -> [])

let activate_at t ~sw ~attack ~epoch =
  let st = state t sw in
  let fresh =
    match Hashtbl.find_opt st.seen_epoch attack with Some e -> epoch > e | None -> true
  in
  if fresh then begin
    Hashtbl.replace st.seen_epoch attack epoch;
    Hashtbl.remove st.pending_clear attack;
    if not (Hashtbl.mem st.active_attacks attack) then begin
      Hashtbl.replace st.active_attacks attack (Net.now t.net);
      refresh_vars t sw;
      record t sw attack true
    end;
    true
  end
  else false

(* Outcome of processing a probe at one switch: [`Stale] probes stop here;
   fresh ones keep flooding whether applied now or deferred by the dwell. *)
let rec deactivate_at t ~sw ~attack ~epoch =
  let st = state t sw in
  let fresh =
    match Hashtbl.find_opt st.seen_epoch attack with Some e -> epoch > e | None -> true
  in
  if not fresh then `Stale
  else
    match Hashtbl.find_opt st.active_attacks attack with
    | None ->
      Hashtbl.replace st.seen_epoch attack epoch;
      `Applied
    | Some activated_at ->
      let now = Net.now t.net in
      let dwell = current_dwell t attack in
      (* epsilon slack: the expiry timer fires at exactly activated+dwell
         and must count as expired despite floating-point rounding *)
      if now -. activated_at >= dwell -. 1e-9 then begin
        Hashtbl.replace st.seen_epoch attack epoch;
        Hashtbl.remove st.active_attacks attack;
        refresh_vars t sw;
        record t sw attack false;
        `Applied
      end
      else if Hashtbl.mem st.pending_clear attack then `Stale
      else begin
        (* honor the dwell: apply the clear when it expires, unless a newer
           activation supersedes it in the meantime *)
        Hashtbl.replace st.pending_clear attack epoch;
        Engine.after (Net.engine t.net)
          ~delay:(Float.max 0. (activated_at +. dwell -. now))
          (fun () ->
            match Hashtbl.find_opt st.pending_clear attack with
            | Some e when e = epoch ->
              Hashtbl.remove st.pending_clear attack;
              ignore (deactivate_at t ~sw ~attack ~epoch)
            | _ -> ());
        `Deferred
      end

let flood t ~from_sw ~except ~attack ~epoch ~activate ~ttl =
  if ttl > 0 then begin
    Net.obs_emit t.net (Ff_obs.Event.Probe { sw = from_sw; kind = "mode" });
    Net.flood_from_switch t.net ~sw:from_sw ~except (fun () ->
        Packet.make ~src:from_sw ~dst:from_sw ~flow:0 ~birth:(Net.now t.net)
          ~payload:(Packet.Mode_probe { attack; epoch; origin = from_sw; activate; region_ttl = ttl })
          ())
  end

let stage t =
  {
    Net.stage_name = "mode-protocol";
    process =
      (fun ctx pkt ->
        match pkt.Packet.payload with
        | Packet.Mode_probe { attack; epoch; activate; region_ttl; _ } ->
          let fresh =
            if activate then activate_at t ~sw:ctx.Net.sw.Net.sw_id ~attack ~epoch
            else deactivate_at t ~sw:ctx.Net.sw.Net.sw_id ~attack ~epoch <> `Stale
          in
          (* re-flood fresh information through the region *)
          if fresh then
            flood t ~from_sw:ctx.Net.sw.Net.sw_id ~except:[ ctx.Net.in_port ] ~attack ~epoch
              ~activate ~ttl:(region_ttl - 1);
          Net.Absorb
        | _ -> Net.Continue);
  }

let create net ?(region_ttl = 8) ?(min_dwell = 1.0) ?(flap_window = 10.) ?(max_holddown = 16.)
    ~modes_for () =
  let t =
    {
      net;
      region_ttl;
      min_dwell;
      flap_window;
      max_holddown;
      modes_for;
      epochs = Hashtbl.create 4;
      states = Hashtbl.create 16;
      history = [];
      transitions = 0;
      flap_times = Hashtbl.create 4;
      max_flap_entries =
        (let ratio = Float.max 1. (max_holddown /. Float.max 1e-9 min_dwell) in
         2 + int_of_float (ceil (log ratio /. log 2.)));
    }
  in
  List.iter (fun sw -> Net.add_stage net ~sw (stage t)) (Net.switch_ids net);
  t

let next_epoch t attack =
  let e = 1 + (try Hashtbl.find t.epochs attack with Not_found -> 0) in
  Hashtbl.replace t.epochs attack e;
  e

let raise_alarm t ~sw attack =
  let st = state t sw in
  if not (Hashtbl.mem st.active_attacks attack) then begin
    note_activation t attack;
    let epoch = next_epoch t attack in
    if activate_at t ~sw ~attack ~epoch then
      flood t ~from_sw:sw ~except:[] ~attack ~epoch ~activate:true ~ttl:t.region_ttl
  end

let clear_alarm t ~sw attack =
  let epoch = next_epoch t attack in
  (match deactivate_at t ~sw ~attack ~epoch with `Stale | `Applied | `Deferred -> ());
  flood t ~from_sw:sw ~except:[] ~attack ~epoch ~activate:false ~ttl:t.region_ttl

let active t ~sw mode =
  match Hashtbl.find_opt (Net.switch t.net sw).Net.vars (mode_var mode) with
  | Some v -> v > 0.
  | None -> false

let attack_active t ~sw attack = Hashtbl.mem (state t sw).active_attacks attack

let active_anywhere t mode = List.exists (fun sw -> active t ~sw mode) (Net.switch_ids t.net)

let switches_with_mode t mode = List.filter (fun sw -> active t ~sw mode) (Net.switch_ids t.net)

let epoch t attack = try Hashtbl.find t.epochs attack with Not_found -> 0

let log t = List.rev t.history

let transitions t = t.transitions
