module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet

(* Remote advertisements are nested key-first: [global_value] runs per
   packet in marker stages, and a flat [(origin, key)]-keyed table would
   make every query scan every advertisement in the network instead of
   just the few origins that mentioned this key. *)
type sw_state = {
  remote : (int, (int, float * float) Hashtbl.t) Hashtbl.t;
      (* key -> origin -> (value, at) *)
  seen : (int * int, unit) Hashtbl.t; (* (origin, round) flood dedup *)
}

type t = {
  net : Net.t;
  participants : int list;
  period : float;
  local_view : sw:int -> (int * float) list;
  threshold : float;
  staleness : float;
  probe_class : int;
  states : (int, sw_state) Hashtbl.t;
  mutable round : int;
  mutable probes_sent : int;
}

let state t sw =
  match Hashtbl.find t.states sw with
  | s -> s
  | exception Not_found ->
    let s = { remote = Hashtbl.create 32; seen = Hashtbl.create 64 } in
    Hashtbl.replace t.states sw s;
    s

let stage t =
  {
    Net.stage_name = Printf.sprintf "view-sync-%d" t.probe_class;
    process =
      (fun ctx pkt ->
        match pkt.Packet.payload with
        | Packet.Sync_probe { origin; round; entries } when pkt.Packet.flow = t.probe_class ->
          let sw = ctx.Net.sw.Net.sw_id in
          let st = state t sw in
          if Hashtbl.mem st.seen (origin, round) then Net.Absorb
          else begin
            Hashtbl.replace st.seen (origin, round) ();
            List.iter
              (fun (key, v) ->
                let per_key =
                  match Hashtbl.find st.remote key with
                  | h -> h
                  | exception Not_found ->
                    let h = Hashtbl.create 8 in
                    Hashtbl.replace st.remote key h;
                    h
                in
                Hashtbl.replace per_key origin (v, Net.now t.net))
              entries;
            Net.flood_from_switch t.net ~sw ~except:[ ctx.Net.in_port ] (fun () ->
                Packet.make_control ~src:origin ~dst:origin ~flow:t.probe_class
                  ~birth:(Net.now t.net)
                  ~payload:(Packet.Sync_probe { origin; round; entries }));
            Net.Absorb
          end
        | _ -> Net.Continue);
  }

let advertise t () =
  t.round <- t.round + 1;
  List.iter
    (fun sw ->
      let entries = List.filter (fun (_, v) -> v >= t.threshold) (t.local_view ~sw) in
      if entries <> [] then begin
        t.probes_sent <- t.probes_sent + 1;
        Net.obs_emit t.net (Ff_obs.Event.Probe { sw; kind = "sync" });
        Hashtbl.replace (state t sw).seen (sw, t.round) ();
        Net.flood_from_switch t.net ~sw ~except:[] (fun () ->
            Packet.make_control ~src:sw ~dst:sw ~flow:t.probe_class ~birth:(Net.now t.net)
              ~payload:(Packet.Sync_probe { origin = sw; round = t.round; entries }))
      end)
    t.participants

let create net ~participants ~period ~local_view ?(threshold = 0.) ?staleness
    ?(period_jitter = 0.) ?(seed = 0x5C11) ?(probe_class = 1) () =
  let t =
    {
      net;
      participants;
      period;
      local_view;
      threshold;
      staleness = (match staleness with Some s -> s | None -> 3. *. period);
      probe_class;
      states = Hashtbl.create 16;
      round = 0;
      probes_sent = 0;
    }
  in
  List.iter (fun sw -> Net.add_stage net ~sw (stage t)) (Net.switch_ids net);
  let engine = Net.engine net in
  if period_jitter <= 0. then Engine.every engine ~period (advertise t)
  else begin
    (* Jittered advertisement cadence (anti epoch-timing): each round
       draws the next gap from [period*(1-j), period*(1+j)], so the
       chain reschedules itself instead of riding [Engine.every]. *)
    let rng = Ff_util.Prng.create ~seed:(seed lxor probe_class) in
    let rec tick () =
      advertise t ();
      let f = 1. -. period_jitter +. Ff_util.Prng.float rng (2. *. period_jitter) in
      Engine.after engine ~delay:(period *. f) tick
    in
    Engine.after engine ~delay:period tick
  end;
  t

(* All-float single-field record: the accumulating store stays unboxed,
   unlike a [float ref] or a polymorphic [Hashtbl.fold] accumulator which
   box on every step — this runs per packet in marker stages. *)
type acc = { mutable sum : float }

let remote_contribution t ~sw ~key =
  let st = state t sw in
  match Hashtbl.find st.remote key with
  | exception Not_found -> 0.
  | per_key ->
    let now = Net.now t.net in
    let a = { sum = 0. } in
    Hashtbl.iter
      (fun origin (v, at) ->
        if origin <> sw && now -. at <= t.staleness then a.sum <- a.sum +. v)
      per_key;
    a.sum

let local_value t ~sw ~key =
  if List.mem sw t.participants then
    try List.assoc key (t.local_view ~sw) with Not_found -> 0.
  else 0.

let global_value t ~sw ~key = local_value t ~sw ~key +. remote_contribution t ~sw ~key

let global_view t ~sw =
  let keys = Hashtbl.create 32 in
  let st = state t sw in
  let now = Net.now t.net in
  Hashtbl.iter
    (fun k per_key ->
      Hashtbl.iter
        (fun origin (_, at) ->
          if origin <> sw && now -. at <= t.staleness then Hashtbl.replace keys k ())
        per_key)
    st.remote;
  if List.mem sw t.participants then
    List.iter (fun (k, _) -> Hashtbl.replace keys k ()) (t.local_view ~sw);
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
  |> List.sort compare
  |> List.filter_map (fun k ->
         let v = global_value t ~sw ~key:k in
         if v <> 0. then Some (k, v) else None)

let rounds t = t.round
let probes_sent t = t.probes_sent
