(** The multimode data plane (paper sections 2.2 and 3.3).

    Each switch holds a set of active {e modes} — named booster activations
    such as ["reroute"], ["obfuscate"], ["drop"]. Mode changes are
    performed entirely in the data plane: a detector raises an alarm at its
    switch, which floods a [Mode_probe] through the region (bounded by
    [region_ttl]); every switch that receives a fresher epoch activates the
    modes mapped to the attack kind and re-floods. All-clear probes
    deactivate, subject to a minimum dwell time and an anti-flapping
    hold-down that doubles under repeated oscillation (the paper's
    stability concern for attackers that intentionally trigger mode
    changes).

    Activation state is mirrored into each switch's [vars] table under the
    key ["mode:<name>"] so booster stages can gate themselves without a
    dependency on this module. *)

type t

type attack = Ff_dataplane.Packet.attack_kind

val mode_var : string -> string
(** ["mode:" ^ name] — the switch-vars key mirroring a mode's activation. *)

val create :
  Ff_netsim.Net.t ->
  ?region_ttl:int ->
  ?min_dwell:float ->
  ?flap_window:float ->
  ?max_holddown:float ->
  ?anti_entropy:float ->
  ?seed:int ->
  modes_for:(attack -> string list) ->
  unit ->
  t
(** Installs a ["mode-protocol"] stage on every switch. Defaults:
    [region_ttl] 8 hops, [min_dwell] 1 s, [flap_window] 10 s,
    [max_holddown] 16 s, [anti_entropy] 0.5 s.

    [anti_entropy] is the base re-advertisement period of the epoch
    anti-entropy layer: every switch keeps, per attack, the latest
    (epoch, activate) it has seen plus the set of neighbors that have not
    yet confirmed it (via equal-epoch probes, including zero-ttl acks),
    and re-sends to the stragglers on a jittered timer whose interval
    backs off exponentially to 8x the base. A lost probe therefore heals
    in O(anti_entropy) instead of stranding a switch until the next
    epoch. Receiving a probe with a stale epoch triggers an immediate
    direct repair, independent of the timer. Pass [anti_entropy <= 0.] to
    disable (the pre-hardening fire-and-forget behavior). [seed] drives
    the jitter deterministically. *)

val raise_alarm : t -> sw:int -> attack -> unit
(** Called by a detector at its own switch: activates locally and floods
    activation probes. Idempotent while already active. *)

val clear_alarm : t -> sw:int -> attack -> unit
(** Floods deactivation with a fresh epoch; switches apply it only after
    their dwell expires. *)

val active : t -> sw:int -> string -> bool
(** Is a mode active at a switch? *)

val attack_active : t -> sw:int -> attack -> bool

val active_anywhere : t -> string -> bool

val switches_with_mode : t -> string -> int list

val epoch : t -> attack -> int
(** Latest epoch issued for this attack kind. *)

val known_epoch : t -> sw:int -> attack:attack -> int
(** Latest epoch this switch has learned (applied or queued behind the
    dwell); 0 if it has never heard of the attack. The chaos invariant
    checker compares this across a region. *)

val region_ttl : t -> int

val readverts : t -> int
(** Timer-driven anti-entropy re-advertisement rounds sent so far. *)

val repairs : t -> int
(** Stale-probe-triggered direct repairs sent so far. *)

val pending_adverts : t -> int
(** Number of (switch, attack) adverts still waiting on at least one
    unconfirmed neighbor. Once every fault has healed and the engine has
    drained past the backoff horizon, this must be 0 — a non-zero value
    means a switch is re-advertising into the void forever (a neighbor
    that never acked), which the quiescence checker reports. *)

val current_dwell : t -> attack -> float
(** The dwell currently enforced for the attack (grows under flapping). *)

val flap_entries : t -> attack -> int
(** Activation timestamps currently retained for the anti-flapping
    holddown. Pruned on insert and hard-capped at the depth where the
    holddown saturates at [max_holddown], so it stays O(1) under
    sustained flapping. *)

val on_transition : t -> (sw:int -> attack:attack -> active:bool -> unit) -> unit
(** Register an observer called on every {e applied} transition (same
    stream as {!log}, delivered as it happens). The hybrid fluid tier
    subscribes to track which switches are inside a mode-changing region
    and demote the flows crossing them to packet level. Observers must not
    re-enter the protocol. *)

val log : t -> (float * int * attack * bool) list
(** Mode-change history: (time, switch, attack, activated), oldest first. *)

val transitions : t -> int
(** Total number of state changes applied across all switches. *)
