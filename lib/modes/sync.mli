(** Distributed detection synchronization (paper section 3.3: "FastFlex
    needs to additionally synchronize different detectors' views
    periodically, e.g., similarly using probing packets").

    A generic service: each participating switch contributes a local view
    (integer-keyed float summaries — per-flow byte counts, per-tenant
    rates, serialized sketch cells); every [period] the views flood the
    network in sync probes; each participant merges what it hears, so
    every detector holds an approximation of the network-wide aggregate.

    The "minimizing synchronization" knob from the paper is [threshold]:
    entries below it are not advertised, trading detection sensitivity for
    probe volume. *)

type t

val create :
  Ff_netsim.Net.t ->
  participants:int list ->
  period:float ->
  local_view:(sw:int -> (int * float) list) ->
  ?threshold:float ->
  ?staleness:float ->
  ?period_jitter:float ->
  ?seed:int ->
  ?probe_class:int ->
  unit ->
  t
(** [local_view ~sw] is polled at each round. [threshold] (default 0.)
    suppresses small entries from probes. Remote entries older than
    [staleness] (default 3 periods) no longer count. [probe_class]
    disambiguates multiple sync services on one network (default 0).
    [period_jitter] > 0 draws each advertisement gap uniformly from
    [period*(1-j), period*(1+j)] (seeded, deterministic) so an adversary
    cannot learn and straddle the sync cadence; 0. (default) keeps the
    fixed-period schedule bit-identical. *)

val global_value : t -> sw:int -> key:int -> float
(** [sw]'s current estimate of the network-wide sum for [key]: its own
    live local view plus the freshest advertisement from every other
    participant. *)

val global_view : t -> sw:int -> (int * float) list
(** All keys with a non-zero global estimate at [sw], sorted by key. *)

val remote_contribution : t -> sw:int -> key:int -> float
(** The non-local part of [global_value]. *)

val rounds : t -> int
val probes_sent : t -> int
