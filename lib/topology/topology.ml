type node_kind = Host | Switch

type node = { id : int; kind : node_kind; name : string }

type link = {
  link_id : int;
  a : int;
  b : int;
  capacity : float;
  delay : float;
}

type t = {
  mutable nodes_rev : node list;
  mutable links_rev : link list;
  mutable nnodes : int;
  mutable nlinks : int;
  adjacency : (int, (int * link) list) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
}

let create () =
  {
    nodes_rev = [];
    links_rev = [];
    nnodes = 0;
    nlinks = 0;
    adjacency = Hashtbl.create 64;
    by_name = Hashtbl.create 64;
  }

let add_node t ~kind ~name =
  if Hashtbl.mem t.by_name name then invalid_arg ("Topology.add_node: duplicate name " ^ name);
  let id = t.nnodes in
  t.nnodes <- id + 1;
  t.nodes_rev <- { id; kind; name } :: t.nodes_rev;
  Hashtbl.replace t.by_name name id;
  Hashtbl.replace t.adjacency id [];
  id

let adj t n = try Hashtbl.find t.adjacency n with Not_found -> []

let find_link t a b =
  List.find_map (fun (peer, l) -> if peer = b then Some l else None) (adj t a)

let add_link t ?(capacity = 10_000_000.) ?(delay = 0.001) a b =
  if a = b then invalid_arg "Topology.add_link: self loop";
  if a < 0 || a >= t.nnodes || b < 0 || b >= t.nnodes then
    invalid_arg "Topology.add_link: unknown node";
  if find_link t a b <> None then invalid_arg "Topology.add_link: duplicate link";
  let link_id = t.nlinks in
  t.nlinks <- link_id + 1;
  let l = { link_id; a; b; capacity; delay } in
  t.links_rev <- l :: t.links_rev;
  Hashtbl.replace t.adjacency a ((b, l) :: adj t a);
  Hashtbl.replace t.adjacency b ((a, l) :: adj t b);
  link_id

let nodes t = List.rev t.nodes_rev
let links t = List.rev t.links_rev
let num_nodes t = t.nnodes
let num_links t = t.nlinks

let node t id =
  if id < 0 || id >= t.nnodes then invalid_arg "Topology.node: bad id";
  List.nth t.nodes_rev (t.nnodes - 1 - id)

let link t id =
  if id < 0 || id >= t.nlinks then invalid_arg "Topology.link: bad id";
  List.nth t.links_rev (t.nlinks - 1 - id)

let hosts t = List.filter (fun n -> n.kind = Host) (nodes t)
let switches t = List.filter (fun n -> n.kind = Switch) (nodes t)

let neighbors t n = List.rev (adj t n)

let link_other_end l n =
  if l.a = n then l.b
  else begin
    assert (l.b = n);
    l.a
  end

let node_by_name t name = node t (Hashtbl.find t.by_name name)

let degree t n = List.length (adj t n)

type path = int list

let path_links t p =
  let rec go = function
    | [] | [ _ ] -> []
    | a :: (b :: _ as rest) ->
      (match find_link t a b with
      | Some l -> l :: go rest
      | None -> invalid_arg "Topology.path_links: non-adjacent nodes")
  in
  go p

let path_delay t p = List.fold_left (fun acc l -> acc +. l.delay) 0. (path_links t p)

(* Dijkstra; hosts are never used as transit (only as endpoints). *)
let shortest_path_excluding ?(weight = fun (_ : link) -> 1.) t ~src ~dst ~banned_nodes ~banned_links =
  let n = t.nnodes in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Topology.shortest_path";
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let heap = Ff_util.Heap.create () in
  dist.(src) <- 0.;
  Ff_util.Heap.push heap ~prio:0. src;
  let finished = Array.make n false in
  let rec loop () =
    match Ff_util.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if finished.(u) || d > dist.(u) then loop ()
      else begin
        finished.(u) <- true;
        if u <> dst then begin
          let is_transit_ok = u = src || (node t u).kind = Switch in
          if is_transit_ok then
            List.iter
              (fun (v, l) ->
                if (not (Hashtbl.mem banned_links l.link_id)) && not (Hashtbl.mem banned_nodes v)
                then begin
                  let nd = dist.(u) +. weight l in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    prev.(v) <- u;
                    Ff_util.Heap.push heap ~prio:nd v
                  end
                end)
              (adj t u)
          end;
          loop ()
      end
  in
  loop ();
  if dist.(dst) = infinity then None
  else begin
    let rec build acc v = if v = src then src :: acc else build (v :: acc) prev.(v) in
    Some (build [] dst, dist.(dst))
  end

let shortest_path ?weight t ~src ~dst =
  let banned_nodes = Hashtbl.create 1 and banned_links = Hashtbl.create 1 in
  Option.map fst (shortest_path_excluding ?weight t ~src ~dst ~banned_nodes ~banned_links)

let path_weight ?(weight = fun (_ : link) -> 1.) t p =
  List.fold_left (fun acc l -> acc +. weight l) 0. (path_links t p)

(* Yen's k-shortest loop-free paths. *)
let k_shortest_paths ?weight ?(k = 4) t ~src ~dst =
  match shortest_path ?weight t ~src ~dst with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let candidates = ref [] in
    let add_candidate p =
      if not (List.mem p !candidates) && not (List.mem p !accepted) then
        candidates := p :: !candidates
    in
    let rec iterate () =
      if List.length !accepted >= k then ()
      else begin
        let last = List.hd (List.rev !accepted) in
        let last_arr = Array.of_list last in
        (* spur from every node of the previous accepted path except dst *)
        for i = 0 to Array.length last_arr - 2 do
          let spur = last_arr.(i) in
          let root = Array.to_list (Array.sub last_arr 0 (i + 1)) in
          let banned_links = Hashtbl.create 8 in
          let banned_nodes = Hashtbl.create 8 in
          (* ban links used by accepted paths sharing this root *)
          List.iter
            (fun p ->
              let parr = Array.of_list p in
              if Array.length parr > i + 1 && Array.sub parr 0 (i + 1) = Array.sub last_arr 0 (i + 1)
              then
                match find_link t parr.(i) parr.(i + 1) with
                | Some l -> Hashtbl.replace banned_links l.link_id ()
                | None -> ())
            !accepted;
          (* ban root nodes except the spur itself *)
          List.iteri (fun j v -> if j < i then Hashtbl.replace banned_nodes v ()) root;
          match shortest_path_excluding ?weight t ~src:spur ~dst ~banned_nodes ~banned_links with
          | Some (tail, _) -> add_candidate (root @ List.tl tail)
          | None -> ()
        done;
        match !candidates with
        | [] -> ()
        | cs ->
          let best =
            List.fold_left
              (fun acc p ->
                match acc with
                | None -> Some p
                | Some q -> if path_weight ?weight t p < path_weight ?weight t q then Some p else acc)
              None cs
          in
          (match best with
          | None -> ()
          | Some p ->
            candidates := List.filter (fun q -> q <> p) !candidates;
            accepted := !accepted @ [ p ];
            iterate ())
      end
    in
    iterate ();
    !accepted

let is_connected t =
  if t.nnodes = 0 then true
  else begin
    let seen = Array.make t.nnodes false in
    let rec dfs u =
      if not seen.(u) then begin
        seen.(u) <- true;
        List.iter (fun (v, _) -> dfs v) (adj t u)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let edge_betweenness t =
  let counts = Hashtbl.create (max 1 t.nlinks) in
  List.iter (fun l -> Hashtbl.replace counts l.link_id 0.) (links t);
  let hs = hosts t in
  List.iter
    (fun h1 ->
      List.iter
        (fun h2 ->
          if h1.id < h2.id then
            (* split the pair's weight across equal-cost shortest paths
               (ECMP-style), so parallel critical links both register *)
            match k_shortest_paths ~k:4 t ~src:h1.id ~dst:h2.id with
            | [] -> ()
            | (first :: _) as paths ->
              let short_len = List.length first in
              let equal_cost = List.filter (fun p -> List.length p = short_len) paths in
              let share = 1. /. float_of_int (List.length equal_cost) in
              List.iter
                (fun p ->
                  List.iter
                    (fun l ->
                      Hashtbl.replace counts l.link_id
                        (Hashtbl.find counts l.link_id +. share))
                    (path_links t p))
                equal_cost)
        hs)
    hs;
  counts

let critical_links t ~n =
  let counts = edge_betweenness t in
  let core_links =
    List.filter
      (fun l -> (node t l.a).kind = Switch && (node t l.b).kind = Switch)
      (links t)
  in
  (* attack cost scales with capacity: the attractive targets are links
     many paths cross relative to how much traffic it takes to flood them *)
  let value l = Hashtbl.find counts l.link_id /. l.capacity in
  let sorted = List.sort (fun l1 l2 -> compare (value l2) (value l1)) core_links in
  List.filteri (fun i _ -> i < n) sorted

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let linear ?(capacity = 10_000_000.) ~n () =
  assert (n >= 1);
  let t = create () in
  let h0 = add_node t ~kind:Host ~name:"h0" in
  let sw = Array.init n (fun i -> add_node t ~kind:Switch ~name:(Printf.sprintf "s%d" i)) in
  let h1 = add_node t ~kind:Host ~name:"h1" in
  ignore (add_link t ~capacity h0 sw.(0));
  for i = 0 to n - 2 do
    ignore (add_link t ~capacity sw.(i) sw.(i + 1))
  done;
  ignore (add_link t ~capacity sw.(n - 1) h1);
  t

let ring ?(capacity = 10_000_000.) ~n () =
  assert (n >= 3);
  let t = create () in
  let sw = Array.init n (fun i -> add_node t ~kind:Switch ~name:(Printf.sprintf "s%d" i)) in
  for i = 0 to n - 1 do
    ignore (add_link t ~capacity sw.(i) sw.((i + 1) mod n))
  done;
  Array.iteri
    (fun i s ->
      let h = add_node t ~kind:Host ~name:(Printf.sprintf "h%d" i) in
      ignore (add_link t ~capacity:(2. *. capacity) h s))
    sw;
  t

let dumbbell ?(capacity = 10_000_000.) ?(bottleneck = 10_000_000.) ~pairs () =
  assert (pairs >= 1);
  let t = create () in
  let sl = add_node t ~kind:Switch ~name:"left" in
  let sr = add_node t ~kind:Switch ~name:"right" in
  ignore (add_link t ~capacity:bottleneck sl sr);
  for i = 0 to pairs - 1 do
    let snd_h = add_node t ~kind:Host ~name:(Printf.sprintf "src%d" i) in
    let rcv_h = add_node t ~kind:Host ~name:(Printf.sprintf "dst%d" i) in
    ignore (add_link t ~capacity snd_h sl);
    ignore (add_link t ~capacity rcv_h sr)
  done;
  t

let fat_tree ?(capacity = 10_000_000.) ~k () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even and >= 2";
  let t = create () in
  let half = k / 2 in
  let cores =
    Array.init (half * half) (fun i -> add_node t ~kind:Switch ~name:(Printf.sprintf "core%d" i))
  in
  for pod = 0 to k - 1 do
    let aggs =
      Array.init half (fun i ->
          add_node t ~kind:Switch ~name:(Printf.sprintf "agg%d_%d" pod i))
    in
    let edges =
      Array.init half (fun i ->
          add_node t ~kind:Switch ~name:(Printf.sprintf "edge%d_%d" pod i))
    in
    Array.iteri
      (fun ai agg ->
        Array.iter (fun e -> ignore (add_link t ~capacity agg e)) edges;
        for ci = 0 to half - 1 do
          ignore (add_link t ~capacity agg cores.((ai * half) + ci))
        done)
      aggs;
    Array.iteri
      (fun ei edge ->
        for hi = 0 to half - 1 do
          let h = add_node t ~kind:Host ~name:(Printf.sprintf "h%d_%d_%d" pod ei hi) in
          ignore (add_link t ~capacity h edge)
        done)
      edges
  done;
  t

let abilene ?(capacity = 10_000_000.) () =
  let t = create () in
  let names =
    [| "seattle"; "sunnyvale"; "losangeles"; "denver"; "kansascity"; "houston"; "chicago";
       "indianapolis"; "atlanta"; "washington"; "newyork" |]
  in
  let sw = Array.map (fun n -> add_node t ~kind:Switch ~name:n) names in
  let edges =
    [ (0, 1); (0, 3); (1, 2); (1, 3); (2, 5); (3, 4); (4, 5); (4, 7); (5, 8); (6, 7); (6, 10);
      (7, 8); (8, 9); (9, 10) ]
  in
  List.iter (fun (a, b) -> ignore (add_link t ~capacity ~delay:0.005 sw.(a) sw.(b))) edges;
  Array.iteri
    (fun i s ->
      let h = add_node t ~kind:Host ~name:(Printf.sprintf "h_%s" names.(i)) in
      ignore (add_link t ~capacity:(4. *. capacity) h s))
    sw;
  t

let waxman ?(capacity = 10_000_000.) ?(alpha = 0.6) ?(beta = 0.4) ~n ~seed () =
  assert (n >= 2);
  let rec attempt try_seed =
    let rng = Ff_util.Prng.create ~seed:try_seed in
    let t = create () in
    let sw = Array.init n (fun i -> add_node t ~kind:Switch ~name:(Printf.sprintf "s%d" i)) in
    let xy = Array.init n (fun _ -> (Ff_util.Prng.float rng 1., Ff_util.Prng.float rng 1.)) in
    let dist i j =
      let xi, yi = xy.(i) and xj, yj = xy.(j) in
      sqrt (((xi -. xj) ** 2.) +. ((yi -. yj) ** 2.))
    in
    let dmax = sqrt 2. in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let p = alpha *. exp (-.dist i j /. (beta *. dmax)) in
        if Ff_util.Prng.float rng 1. < p then ignore (add_link t ~capacity sw.(i) sw.(j))
      done
    done;
    if is_connected t then begin
      Array.iteri
        (fun i s ->
          let h = add_node t ~kind:Host ~name:(Printf.sprintf "h%d" i) in
          ignore (add_link t ~capacity:(2. *. capacity) h s))
        sw;
      t
    end
    else attempt (try_seed + 1)
  in
  attempt seed

let isp ?(core_capacity = 2_000_000_000.) ?(access_capacity = 1_000_000_000.)
    ?(host_capacity = 400_000_000.) ?(cores = 12) ?(access_per_core = 2)
    ?(hosts_per_access = 4) () =
  assert (cores >= 3 && access_per_core >= 1 && hosts_per_access >= 1);
  let t = create () in
  let core =
    Array.init cores (fun i -> add_node t ~kind:Switch ~name:(Printf.sprintf "core%d" i))
  in
  let core_link a b = ignore (add_link t ~capacity:core_capacity ~delay:0.002 core.(a) core.(b)) in
  for i = 0 to cores - 1 do
    core_link i ((i + 1) mod cores)
  done;
  (* chords keep core paths short so no single PoP carries much transit *)
  if cores > 4 then
    for i = 0 to cores - 1 do
      if i mod 2 = 0 then core_link i ((i + 2) mod cores)
    done;
  if cores >= 8 then
    for i = 0 to (cores / 2) - 1 do
      if i mod 2 = 0 then core_link i ((i + (cores / 2)) mod cores)
    done;
  for i = 0 to cores - 1 do
    for j = 0 to access_per_core - 1 do
      let a = add_node t ~kind:Switch ~name:(Printf.sprintf "a%d_%d" i j) in
      ignore (add_link t ~capacity:access_capacity ~delay:0.0005 core.(i) a);
      for k = 0 to hosts_per_access - 1 do
        let h = add_node t ~kind:Host ~name:(Printf.sprintf "h%d_%d_%d" i j k) in
        ignore (add_link t ~capacity:host_capacity ~delay:0.0001 a h)
      done
    done
  done;
  t

module Fig2 = struct
  type landmarks = {
    topo : t;
    normal_sources : int list;
    bot_sources : int list;
    victim : int;
    decoys : int list;
    critical : link list;
    agg : int;
    victim_agg : int;
    detour : int list;
  }

  let build ?(core_capacity = 10_000_000.) ?(detour_capacity = 20_000_000.)
      ?(edge_capacity = 40_000_000.) ?(bots = 4) ?(normals = 4) () =
    let t = create () in
    let sw name = add_node t ~kind:Switch ~name in
    let e1 = sw "e1" and e2 = sw "e2" in
    let agg = sw "agg" in
    let m1 = sw "m1" and m2 = sw "m2" in
    let vagg = sw "vagg" in
    let d1 = sw "d1" and d2 = sw "d2" in
    let ve1 = sw "ve1" and ve2 = sw "ve2" in
    let core a b = ignore (add_link t ~capacity:core_capacity ~delay:0.002 a b) in
    let edge a b = ignore (add_link t ~capacity:edge_capacity ~delay:0.001 a b) in
    edge e1 agg;
    edge e2 agg;
    (* the two critical links *)
    core agg m1;
    core agg m2;
    core m1 vagg;
    core m2 vagg;
    (* the longer (but better-provisioned) detour path *)
    ignore (add_link t ~capacity:detour_capacity ~delay:0.006 agg d1);
    ignore (add_link t ~capacity:detour_capacity ~delay:0.006 d1 d2);
    ignore (add_link t ~capacity:detour_capacity ~delay:0.006 d2 vagg);
    edge vagg ve1;
    edge vagg ve2;
    let host name s =
      let h = add_node t ~kind:Host ~name in
      ignore (add_link t ~capacity:edge_capacity ~delay:0.0005 h s);
      h
    in
    let normal_sources =
      List.init normals (fun i -> host (Printf.sprintf "n%d" i) (if i mod 2 = 0 then e1 else e2))
    in
    let bot_sources =
      List.init bots (fun i -> host (Printf.sprintf "b%d" i) (if i mod 2 = 0 then e1 else e2))
    in
    let victim = host "victim" ve1 in
    let decoys = [ host "decoy1" ve1; host "decoy2" ve2 ] in
    let critical =
      [ Option.get (find_link t agg m1); Option.get (find_link t agg m2) ]
    in
    { topo = t; normal_sources; bot_sources; victim; decoys; critical; agg; victim_agg = vagg;
      detour = [ d1; d2 ] }
end
