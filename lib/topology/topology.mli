(** Network topology: simple undirected graphs of hosts and switches with
    capacitated, delayed links.

    This is the substrate the FastFlex scheduler places booster modules on
    and the substrate the simulator instantiates. Node and link identifiers
    are dense integers so that downstream components can use arrays. *)

type node_kind = Host | Switch

type node = { id : int; kind : node_kind; name : string }

type link = {
  link_id : int;
  a : int;  (** endpoint node id *)
  b : int;  (** endpoint node id *)
  capacity : float;  (** bits per second *)
  delay : float;  (** propagation delay, seconds *)
}

type t

(** {1 Construction} *)

val create : unit -> t

val add_node : t -> kind:node_kind -> name:string -> int
(** Returns the fresh node id. *)

val add_link : t -> ?capacity:float -> ?delay:float -> int -> int -> int
(** [add_link t a b] connects two existing nodes; returns the link id.
    Defaults: 10 Mb/s capacity, 1 ms delay. Self-loops and duplicate links
    are rejected with [Invalid_argument]. *)

(** {1 Accessors} *)

val node : t -> int -> node
val link : t -> int -> link
val nodes : t -> node list
val links : t -> link list
val num_nodes : t -> int
val num_links : t -> int
val hosts : t -> node list
val switches : t -> node list

val neighbors : t -> int -> (int * link) list
(** [(peer, link)] pairs adjacent to a node. *)

val find_link : t -> int -> int -> link option
(** The link between two nodes, if any (order-insensitive). *)

val link_other_end : link -> int -> int
(** [link_other_end l n] is the endpoint of [l] that is not [n]. *)

val node_by_name : t -> string -> node
(** Raises [Not_found]. *)

val degree : t -> int -> int

(** {1 Path algorithms} *)

type path = int list
(** A path as the list of node ids, endpoints included. *)

val path_links : t -> path -> link list
(** Links traversed by a path. Raises [Invalid_argument] if consecutive
    nodes are not adjacent. *)

val path_delay : t -> path -> float
(** Sum of propagation delays along the path. *)

val shortest_path : ?weight:(link -> float) -> t -> src:int -> dst:int -> path option
(** Dijkstra. Default weight is hop count (1 per link). Hosts other than
    the endpoints are never used as transit. *)

val k_shortest_paths : ?weight:(link -> float) -> ?k:int -> t -> src:int -> dst:int -> path list
(** Yen's algorithm, loop-free paths in increasing weight order
    (default [k = 4]). *)

val is_connected : t -> bool

val edge_betweenness : t -> (int, float) Hashtbl.t
(** For each link id, the number of host-pair shortest paths crossing it —
    the metric a Crossfire-style attacker uses to pick critical links. *)

val critical_links : t -> n:int -> link list
(** The [n] switch-to-switch links with the highest betweenness {e per unit
    capacity} — many paths cross them and they are cheap to flood, the
    Crossfire attacker's target selection. Host access links are excluded
    (an LFA targets the core, not the victim's last mile). *)

(** {1 Builders}

    All builders return the topology plus named landmarks where useful. *)

val linear : ?capacity:float -> n:int -> unit -> t
(** [h0 - s0 - s1 - ... - s(n-1) - h1]. *)

val ring : ?capacity:float -> n:int -> unit -> t
(** n switches in a cycle, one host per switch. *)

val dumbbell : ?capacity:float -> ?bottleneck:float -> pairs:int -> unit -> t
(** classic dumbbell: [pairs] senders and receivers joined by one
    bottleneck link. *)

val fat_tree : ?capacity:float -> k:int -> unit -> t
(** k-ary fat-tree (k even): (k/2)^2 cores, k pods of k/2+k/2 switches,
    one host per edge switch port. *)

val abilene : ?capacity:float -> unit -> t
(** The 11-node Abilene research WAN, one host per PoP. *)

val waxman : ?capacity:float -> ?alpha:float -> ?beta:float -> n:int -> seed:int -> unit -> t
(** Random Waxman graph over [n] switches (re-drawn until connected),
    one host per switch. *)

val isp :
  ?core_capacity:float -> ?access_capacity:float -> ?host_capacity:float ->
  ?cores:int -> ?access_per_core:int -> ?hosts_per_access:int -> unit -> t
(** An ISP-like three-tier topology for large hybrid fluid/packet runs:
    [cores] PoP switches in a chorded ring (short paths, little transit
    through any single PoP), [access_per_core] access switches per PoP and
    [hosts_per_access] hosts per access switch. Node creation order is
    cores first, then per-PoP (access, its hosts), so
    [List.filteri (fun i _ -> i / hosts_per_access = a) (hosts t)] are the
    hosts behind the [a]-th access switch (PoP [a / access_per_core]).
    Defaults: 12 PoPs x 2 x 4 = 96 hosts; 2 Gb/s core, 1 Gb/s access,
    400 Mb/s host links. *)

(** The paper's case-study topology (Figure 2): source edges behind an
    aggregation switch, two critical links toward the victim side, a longer
    detour path, and a victim region hosting the victim plus public decoy
    servers. *)
module Fig2 : sig
  type landmarks = {
    topo : t;
    normal_sources : int list;  (** hosts sending legitimate traffic to the victim *)
    bot_sources : int list;  (** attacker-controlled hosts *)
    victim : int;  (** victim host *)
    decoys : int list;  (** public servers near the victim (traceroute targets) *)
    critical : link list;  (** the two critical links the LFA can target *)
    agg : int;  (** aggregation switch upstream of the critical links *)
    victim_agg : int;  (** aggregation switch on the victim side *)
    detour : int list;  (** switch ids of the longer detour path *)
  }

  val build :
    ?core_capacity:float -> ?detour_capacity:float -> ?edge_capacity:float -> ?bots:int ->
    ?normals:int -> unit -> landmarks
  (** Defaults: 10 Mb/s critical links, 20 Mb/s detour links (longer
      delay), 40 Mb/s edges, 4 bots, 4 normal sources. *)
end
