(** Runtime switch repurposing (paper section 3.4, "Dynamic scaling").

    Installing a new program on a Tofino-class switch takes seconds of
    downtime; Trident-class switches reconfigure parts without downtime.
    Either way, the switch informs its neighbors first so they fast-reroute
    around it until the reconfiguration completes, and its transferable
    state is shipped out beforehand and (optionally) migrated back after. *)

type outcome = {
  switch : int;
  downtime : float;
  started_at : float;
  completed_at : float;
  state_moved : int;  (** entries shipped out (0 when no state host given) *)
}

val repurpose :
  Ff_netsim.Net.t ->
  sw:int ->
  downtime:float ->
  ?state_to:int ->
  ?snapshot:(unit -> (string * float) list) ->
  ?restore:((string * float) list -> unit) ->
  ?on_abort:(string -> unit) ->
  install:(unit -> unit) ->
  on_done:(outcome -> unit) ->
  unit ->
  unit
(** Sequence: (1) install backup routes at every neighbor for destinations
    they currently reach through [sw]; (2) if [state_to] and [snapshot] are
    given, transfer the snapshot to that switch; (3) take [sw] down for
    [downtime] seconds (0 models partial reconfiguration); (4) run
    [install], bring the switch up, migrate state back through [restore],
    and drop the backup routes.

    If the outbound transfer of step (2) fails — destination crashed, no
    surviving path — the repurposing aborts cleanly: the switch is never
    taken down or reconfigured, the backup routes from step (1) are
    removed (restoring the old configuration exactly), a [Repair] event
    is emitted, and [on_abort] fires with the transfer's failure reason.
    [on_done] does not fire on an aborted run. If instead the {e return}
    transfer of step (4) fails, reconfiguration has already happened:
    [on_abort] fires with ["restore-transfer-failed:..."] after
    [on_done], flagging state stranded at [state_to]. *)

val install_backup_routes : Ff_netsim.Net.t -> around:int -> int
(** Just step (1): for each neighbor of [around], add backup next hops that
    avoid it. Returns the number of backup entries installed. *)
