(** In-band switch-to-switch state transfer (paper section 3.4, after
    Swing State, SOSR '17).

    Register state identified as transferable is shipped as state-chunk
    packets over the network itself (no software controller on the path).
    Chunks are FEC-protected ([Fec]); the receiver acknowledges each
    complete group, and the sender retransmits unacked groups. Per-group
    loss beyond what FEC absorbs is repaired by the retransmission layer. *)

type t

val send :
  Ff_netsim.Net.t ->
  src_sw:int ->
  dst_sw:int ->
  entries:(string * float) list ->
  ?group_size:int ->
  ?per_chunk:int ->
  ?fec:bool ->
  ?retransmit_timeout:float ->
  ?max_retries:int ->
  on_complete:((string * float) list -> unit) ->
  unit ->
  t
(** Installs transfer endpoints (idempotently) on both switches, routes
    chunks over the current shortest switch path, and starts sending.
    [on_complete] fires at the receiver with the reassembled entries.
    [~fec:false] disables parity chunks (the ablation), leaving recovery
    to retransmission alone. Defaults: groups of 4 data chunks, 8 entries
    per chunk, 80 ms retransmit timer, 10 retries per group. *)

val send_sketch :
  Ff_netsim.Net.t ->
  src_sw:int ->
  dst_sw:int ->
  sketch:Ff_dataplane.Sketch.t ->
  into:Ff_dataplane.Sketch.t ->
  ?group_size:int ->
  ?per_chunk:int ->
  ?fec:bool ->
  ?retransmit_timeout:float ->
  ?max_retries:int ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Ship a snapshot of [sketch] from [src_sw] to [dst_sw] and absorb it
    into [into] on completion. The snapshot's [total] travels with the
    cells, so the receiving sketch's total matches the sender's exactly
    (summing cells would overcount by the row count). Both sketches must
    share geometry for the cell indices to be meaningful. *)

val chunks_sent : t -> int
val retransmitted_groups : t -> int
val fec_recoveries : t -> int
(** Groups completed with a chunk missing (parity reconstruction). *)

val complete : t -> bool
val failed : t -> bool
(** True when some group exhausted its retries. *)
