(** In-band switch-to-switch state transfer (paper section 3.4, after
    Swing State, SOSR '17).

    Register state identified as transferable is shipped as state-chunk
    packets over the network itself (no software controller on the path).
    Chunks are FEC-protected ([Fec]); the receiver acknowledges each
    complete group, and the sender retransmits unacked groups. Per-group
    loss beyond what FEC absorbs is repaired by the retransmission layer. *)

type t

val send :
  Ff_netsim.Net.t ->
  src_sw:int ->
  dst_sw:int ->
  entries:(string * float) list ->
  ?group_size:int ->
  ?per_chunk:int ->
  ?fec:bool ->
  ?retransmit_timeout:float ->
  ?max_retries:int ->
  ?seed:int ->
  ?on_fail:(string -> unit) ->
  on_complete:((string * float) list -> unit) ->
  unit ->
  t
(** Installs transfer endpoints (idempotently) on both switches, routes
    chunks over the shortest {e live} path — recomputed on every
    retransmission round, so mid-transfer link failures and healed links
    are picked up — and starts sending. [on_complete] fires at the
    receiver with the reassembled entries. [~fec:false] disables parity
    chunks (the ablation), leaving recovery to retransmission alone.

    Retransmissions back off exponentially: round [k] waits
    [retransmit_timeout * min 2^k 8] plus seeded jitter ([seed]), so
    retries don't synchronize with periodic congestion.
    [retransmit_timeout] is the base of that schedule. When the
    destination (or source) switch is down or no live path exists, the
    round is not charged against [max_retries]; after three such
    consecutive rounds the transfer fails promptly with a reason
    (["destination-down"], ["source-down"], ["no-path"]) instead of
    burning every retry — [on_fail] fires with it, once, and an
    [Xfer_failed] event is emitted. Defaults: groups of 4 data chunks, 8
    entries per chunk, 80 ms base timeout, 10 retries per group. *)

val send_sketch :
  Ff_netsim.Net.t ->
  src_sw:int ->
  dst_sw:int ->
  sketch:Ff_dataplane.Sketch.t ->
  into:Ff_dataplane.Sketch.t ->
  ?group_size:int ->
  ?per_chunk:int ->
  ?fec:bool ->
  ?retransmit_timeout:float ->
  ?max_retries:int ->
  ?seed:int ->
  ?on_fail:(string -> unit) ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Ship a snapshot of [sketch] from [src_sw] to [dst_sw] and absorb it
    into [into] on completion. The snapshot's [total] travels with the
    cells, so the receiving sketch's total matches the sender's exactly
    (summing cells would overcount by the row count). Both sketches must
    share geometry for the cell indices to be meaningful. *)

val send_cuckoo :
  Ff_netsim.Net.t ->
  src_sw:int ->
  dst_sw:int ->
  cuckoo:Ff_dataplane.Cuckoo.t ->
  into:Ff_dataplane.Cuckoo.t ->
  ?group_size:int ->
  ?per_chunk:int ->
  ?fec:bool ->
  ?retransmit_timeout:float ->
  ?max_retries:int ->
  ?seed:int ->
  ?on_fail:(string -> unit) ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Exact-member state transfer: ship a snapshot of the [cuckoo] tracker
    from [src_sw] to [dst_sw] and union-merge it into [into] on
    completion ({!Ff_dataplane.Cuckoo.absorb}). The correctness rule is
    {e no false negatives after migration}: every member of the source at
    snapshot time answers [member = true] at the destination, even when
    the destination's buckets are full (overflow parks in the stash).
    Unlike {!send_sketch}'s component-wise sum, merging the same snapshot
    twice would double the entries — the FEC/ack layer's exactly-once
    group delivery is what makes the union exact. Both filters must share
    geometry and seed. *)

val cuckoo_wire_entries :
  Ff_dataplane.Cuckoo.snapshot -> (string * float) list
(** The lossless wire encoding [send_cuckoo] uses: geometry as ["geom:*"]
    entries, each (bucket, fingerprint) pair packed exactly into one
    float. Exposed for the differential tests. *)

val cuckoo_snapshot_of_entries :
  (string * float) list -> Ff_dataplane.Cuckoo.snapshot
(** Inverse of {!cuckoo_wire_entries} (entry order need not survive the
    chunker). Raises [Invalid_argument] when the geometry entries are
    missing. *)

val chunks_sent : t -> int
val retransmitted_groups : t -> int
val fec_recoveries : t -> int
(** Groups completed with a chunk missing (parity reconstruction). *)

val reroutes : t -> int
(** Times a retransmission round installed a different live path than the
    previous round's. *)

val complete : t -> bool
val failed : t -> bool
(** True when some group exhausted its retries or the path stayed dead
    past the flap-tolerance window. *)

val failure_reason : t -> string option
(** Why a failed transfer failed: ["no-path"], ["destination-down"],
    ["source-down"], or ["retries-exhausted"]. [None] while live or after
    success. *)
