module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Topology = Ff_topology.Topology

type outcome = {
  switch : int;
  downtime : float;
  started_at : float;
  completed_at : float;
  state_moved : int;
}

(* The (neighbor, dst, next_hop) backup entries that would route around
   [around] — computed separately from installation so an aborted
   repurposing can roll back exactly what it installed. *)
let compute_backups net ~around =
  let topo = Net.topology net in
  let backups = ref [] in
  List.iter
    (fun neighbor ->
      (* destinations this neighbor currently reaches through [around] *)
      let dsts =
        List.filter_map
          (fun (dst, next) -> if next = around then Some dst else None)
          (Net.route_entries net ~sw:neighbor)
      in
      let pair_dsts =
        List.filter_map
          (fun ((_, dst), next) -> if next = around then Some dst else None)
          (Net.pair_route_entries net ~sw:neighbor)
      in
      List.iter
        (fun dst ->
          let banned = Hashtbl.create 1 in
          Hashtbl.replace banned around ();
          (* alternative path that avoids the repurposed switch *)
          let weight (_ : Topology.link) = 1. in
          ignore weight;
          let alt =
            (* Dijkstra with [around] banned: emulate by removing it from
               consideration — shortest path on the topology minus the node *)
            let rec bfs fringe seen =
              match fringe with
              | [] -> None
              | (node, path) :: rest ->
                if node = dst then Some (List.rev path)
                else if Hashtbl.mem seen node then bfs rest seen
                else begin
                  Hashtbl.replace seen node ();
                  let nexts =
                    Topology.neighbors topo node
                    |> List.filter_map (fun (peer, _) ->
                           if peer = around || Hashtbl.mem seen peer then None
                           else if
                             peer <> dst && (Topology.node topo peer).Topology.kind = Topology.Host
                           then None
                           else Some (peer, peer :: path))
                  in
                  bfs (rest @ nexts) seen
                end
            in
            bfs [ (neighbor, [ neighbor ]) ] (Hashtbl.create 16)
          in
          match alt with
          | Some (_ :: next :: _) -> backups := (neighbor, dst, next) :: !backups
          | _ -> ())
        (List.sort_uniq compare (dsts @ pair_dsts)))
    (Net.neighbors_of net around);
  List.rev !backups

let install_backup_routes net ~around =
  let backups = compute_backups net ~around in
  List.iter
    (fun (neighbor, dst, next) -> Net.set_backup_route net ~sw:neighbor ~dst ~next_hop:next)
    backups;
  List.length backups

let repurpose net ~sw ~downtime ?state_to ?snapshot ?restore ?(on_abort = fun (_ : string) -> ())
    ~install ~on_done () =
  let engine = Net.engine net in
  let started_at = Net.now net in
  let backups = compute_backups net ~around:sw in
  List.iter
    (fun (neighbor, dst, next) -> Net.set_backup_route net ~sw:neighbor ~dst ~next_hop:next)
    backups;
  (* the outbound transfer failed: the switch never went down and was
     never reconfigured, so restoring the old configuration is exactly
     removing the backup routes staged for its absence *)
  let abort reason =
    List.iter
      (fun (neighbor, dst, _) -> Net.set_backup_route net ~sw:neighbor ~dst ~next_hop:(-1))
      backups;
    Net.obs_emit net
      (Ff_obs.Event.Repair { subsystem = "repurpose"; node = sw; info = "abort:" ^ reason });
    on_abort reason
  in
  let state_moved = ref 0 in
  let finish parked_at =
    let complete () =
      install ();
      Net.set_switch_up net ~sw true;
      on_done
        { switch = sw; downtime; started_at; completed_at = Net.now net;
          state_moved = !state_moved };
      (* migrate the parked state back in-band now that the switch is up *)
      match (parked_at, restore) with
      | Some (target, entries), Some f ->
        ignore
          (Transfer.send net ~src_sw:target ~dst_sw:sw ~entries
             ~on_complete:(fun back -> f back)
             ~on_fail:(fun reason ->
               (* reconfiguration already happened ([on_done] fired); the
                  parked state is stranded at [target] — surface it *)
               Net.obs_emit net
                 (Ff_obs.Event.Repair
                    { subsystem = "repurpose"; node = sw;
                      info = "restore-failed:" ^ reason });
               on_abort ("restore-transfer-failed:" ^ reason))
             ())
      | _ -> ()
    in
    Net.set_switch_up net ~sw false;
    Engine.after engine ~delay:downtime complete
  in
  match (state_to, snapshot) with
  | Some target, Some snap ->
    let entries = snap () in
    state_moved := List.length entries;
    if entries = [] then finish None
    else
      ignore
        (Transfer.send net ~src_sw:sw ~dst_sw:target ~entries
           ~on_complete:(fun received ->
             (* state parked at [target]; ship it back after reconfiguration *)
             finish (Some (target, received)))
           ~on_fail:abort ())
  | _ -> finish None
