module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Topology = Ff_topology.Topology

type outcome = {
  switch : int;
  downtime : float;
  started_at : float;
  completed_at : float;
  state_moved : int;
}

let install_backup_routes net ~around =
  let topo = Net.topology net in
  let installed = ref 0 in
  List.iter
    (fun neighbor ->
      (* destinations this neighbor currently reaches through [around] *)
      let dsts =
        List.filter_map
          (fun (dst, next) -> if next = around then Some dst else None)
          (Net.route_entries net ~sw:neighbor)
      in
      let pair_dsts =
        List.filter_map
          (fun ((_, dst), next) -> if next = around then Some dst else None)
          (Net.pair_route_entries net ~sw:neighbor)
      in
      List.iter
        (fun dst ->
          let banned = Hashtbl.create 1 in
          Hashtbl.replace banned around ();
          (* alternative path that avoids the repurposed switch *)
          let weight (_ : Topology.link) = 1. in
          ignore weight;
          let alt =
            (* Dijkstra with [around] banned: emulate by removing it from
               consideration — shortest path on the topology minus the node *)
            let rec bfs fringe seen =
              match fringe with
              | [] -> None
              | (node, path) :: rest ->
                if node = dst then Some (List.rev path)
                else if Hashtbl.mem seen node then bfs rest seen
                else begin
                  Hashtbl.replace seen node ();
                  let nexts =
                    Topology.neighbors topo node
                    |> List.filter_map (fun (peer, _) ->
                           if peer = around || Hashtbl.mem seen peer then None
                           else if
                             peer <> dst && (Topology.node topo peer).Topology.kind = Topology.Host
                           then None
                           else Some (peer, peer :: path))
                  in
                  bfs (rest @ nexts) seen
                end
            in
            bfs [ (neighbor, [ neighbor ]) ] (Hashtbl.create 16)
          in
          match alt with
          | Some (_ :: next :: _) ->
            Net.set_backup_route net ~sw:neighbor ~dst ~next_hop:next;
            incr installed
          | _ -> ())
        (List.sort_uniq compare (dsts @ pair_dsts)))
    (Net.neighbors_of net around);
  !installed

let repurpose net ~sw ~downtime ?state_to ?snapshot ?restore ~install ~on_done () =
  let engine = Net.engine net in
  let started_at = Net.now net in
  ignore (install_backup_routes net ~around:sw);
  let state_moved = ref 0 in
  let finish parked_at =
    let complete () =
      install ();
      Net.set_switch_up net ~sw true;
      on_done
        { switch = sw; downtime; started_at; completed_at = Net.now net;
          state_moved = !state_moved };
      (* migrate the parked state back in-band now that the switch is up *)
      match (parked_at, restore) with
      | Some (target, entries), Some f ->
        ignore
          (Transfer.send net ~src_sw:target ~dst_sw:sw ~entries
             ~on_complete:(fun back -> f back)
             ())
      | _ -> ()
    in
    Net.set_switch_up net ~sw false;
    Engine.after engine ~delay:downtime complete
  in
  match (state_to, snapshot) with
  | Some target, Some snap ->
    let entries = snap () in
    state_moved := List.length entries;
    if entries = [] then finish None
    else
      ignore
        (Transfer.send net ~src_sw:sw ~dst_sw:target ~entries
           ~on_complete:(fun received ->
             (* state parked at [target]; ship it back after reconfiguration *)
             finish (Some (target, received)))
           ())
  | _ -> finish None
