(** Random loss injection — the failure model the FEC/retransmission
    machinery is evaluated against (and a general fault-injection tool for
    tests and the chaos harness). Installed as a switch stage so it drops
    packets the way a faulty link would. *)

type t

type class_filter = All | Control_only | Data_only | State_chunks_only | Mode_probes_only

type model =
  | Bernoulli  (** i.i.d. loss with probability [prob] *)
  | Gilbert_elliott of { p_gb : float; p_bg : float; good_loss : float; bad_loss : float }
      (** Two-state bursty loss: a Markov chain moves good→bad with
          [p_gb] and bad→good with [p_bg] (per matched packet), dropping
          with [good_loss] / [bad_loss] in the respective state. Bursts in
          the bad state are geometric with mean [1 /. p_bg]; the
          stationary loss rate is
          [(p_bg *. good_loss +. p_gb *. bad_loss) /. (p_gb +. p_bg)]. *)

val install :
  Ff_netsim.Net.t ->
  sw:int ->
  prob:float ->
  ?seed:int ->
  ?classes:class_filter ->
  ?model:model ->
  unit ->
  t
(** Drop arriving packets of the selected class. Under [Bernoulli] (the
    default) each is dropped with probability [prob]; under
    [Gilbert_elliott] the chain's parameters govern and [prob] is unused. *)

val dropped : t -> int
val seen : t -> int

val set_prob : t -> float -> unit
(** Adjust the Bernoulli probability (no effect under [Gilbert_elliott]). *)

val set_enabled : t -> bool -> unit
(** Gate the stage on/off without removing it — how the chaos harness
    windows a burst-loss episode. Disabled stages pass everything and
    count nothing. *)

val bursts : t -> int
(** Completed drop runs (consecutive dropped packets), counting a
    still-open run. *)

val mean_burst_len : t -> float
(** Average length of drop runs; 0 when none occurred. Under
    [Gilbert_elliott] with [bad_loss = 1.] and [good_loss = 0.] this
    estimates [1 /. p_bg]. *)
