module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Topology = Ff_topology.Topology

type t = {
  net : Net.t;
  xfer_id : int;
  src_sw : int;
  dst_sw : int;
  fec : bool;
  retransmit_timeout : float; (* base of the exponential backoff *)
  max_retries : int;
  rng : Ff_util.Prng.t; (* retransmit jitter; seeded, so runs replay *)
  chunks_by_group : (int, Fec.chunk list) Hashtbl.t;
  total_groups : int;
  (* sender state *)
  acked : (int, unit) Hashtbl.t;
  retries : (int, int) Hashtbl.t;
  dead_rounds : (int, int) Hashtbl.t;
      (* consecutive rounds a group found no live route; a short streak is
         a flap to ride out, a long one is a partition to fail on *)
  mutable last_path : int list; (* chunk path currently installed *)
  mutable chunks_sent : int;
  mutable retransmitted_groups : int;
  mutable reroutes : int;
  mutable failed : bool;
  mutable failed_reason : string option;
  on_fail : string -> unit;
  (* receiver state *)
  received : (int * int, Fec.chunk) Hashtbl.t; (* (group, index) -> chunk *)
  decoded : (int, (string * float) list) Hashtbl.t;
  mutable fec_recoveries : int;
  mutable complete : bool;
  on_complete : (string * float) list -> unit;
}

(* Rounds in a row a group may find the destination dead or unreachable
   before the transfer gives up. 3 rounds at the base timeout rides out a
   sub-quarter-second flap yet reports a real partition in ~0.25 s — far
   sooner than burning all [max_retries] exponential-backoff rounds. *)
let dead_round_limit = 3

let next_xfer_id = ref 0

(* registry so that a single per-switch stage dispatches to live transfers *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 16

let stage_name = "state-transfer"

let emit_phase t phase =
  Net.obs_emit t.net
    (Ff_obs.Event.State_transfer
       { xfer_id = t.xfer_id; src = t.src_sw; dst = t.dst_sw; phase;
         chunks = t.chunks_sent })

let group_complete t g =
  match Hashtbl.find_opt t.chunks_by_group g with
  | None -> false
  | Some members -> (
    let n = (List.hd members).Fec.of_group in
    let have_data =
      List.length
        (List.filter
           (fun i -> Hashtbl.mem t.received (g, i))
           (List.init n Fun.id))
    in
    let have_parity = Hashtbl.mem t.received (g, n) in
    have_data = n || (have_data = n - 1 && have_parity))

let try_decode_group t g =
  if (not (Hashtbl.mem t.decoded g)) && group_complete t g then begin
    let members =
      Hashtbl.fold (fun (gg, _) c acc -> if gg = g then c :: acc else acc) t.received []
    in
    match Fec.decode_group members with
    | Some entries ->
      let n = (List.hd members).Fec.of_group in
      let data_present =
        List.length (List.filter (fun c -> not c.Fec.parity) members)
      in
      if data_present < n then begin
        t.fec_recoveries <- t.fec_recoveries + 1;
        Net.obs_emit t.net
          (Ff_obs.Event.Fec_recovery { xfer_id = t.xfer_id; group = g })
      end;
      Hashtbl.replace t.decoded g entries;
      true
    | None -> false
  end
  else false

let send_ack t ~group =
  let ack =
    Packet.make ~src:t.dst_sw ~dst:t.src_sw ~flow:t.xfer_id ~birth:(Net.now t.net)
      ~payload:(Packet.State_ack { xfer_id = t.xfer_id; group })
      ()
  in
  Net.inject_at_switch t.net ~sw:t.dst_sw ack

let finish_if_done t =
  if (not t.complete) && Hashtbl.length t.decoded = t.total_groups then begin
    t.complete <- true;
    emit_phase t Ff_obs.Event.Xfer_complete;
    let all =
      List.concat_map
        (fun g -> Hashtbl.find t.decoded g)
        (List.init t.total_groups Fun.id)
    in
    t.on_complete all
  end

let on_chunk t (c : Fec.chunk) =
  if not (Hashtbl.mem t.received (c.Fec.group, c.Fec.index)) then begin
    Hashtbl.replace t.received (c.Fec.group, c.Fec.index) c;
    if try_decode_group t c.Fec.group then begin
      send_ack t ~group:c.Fec.group;
      finish_if_done t
    end
  end
  else if Hashtbl.mem t.decoded c.Fec.group then
    (* retransmission of an already-complete group: the ack was lost, re-ack *)
    send_ack t ~group:c.Fec.group

let transfer_stage =
  {
    Net.stage_name;
    process =
      (fun ctx pkt ->
        let here = ctx.Net.sw.Net.sw_id in
        match pkt.Packet.payload with
        | Packet.State_chunk { xfer_id; group; index; of_group; parity; entries }
          when pkt.Packet.dst = here -> (
          (match Hashtbl.find_opt registry xfer_id with
          | Some t when t.dst_sw = here ->
            on_chunk t { Fec.group; index; of_group; parity; entries }
          | _ -> ());
          Net.Absorb)
        | Packet.State_ack { xfer_id; group } when pkt.Packet.dst = here -> (
          (match Hashtbl.find_opt registry xfer_id with
          | Some t when t.src_sw = here -> Hashtbl.replace t.acked group ()
          | _ -> ());
          Net.Absorb)
        | _ -> Net.Continue);
  }

let ensure_stage net sw =
  if not (Net.has_stage net ~sw ~name:stage_name) then Net.add_stage net ~sw transfer_stage

let send_group t g =
  match Hashtbl.find_opt t.chunks_by_group g with
  | None -> ()
  | Some members ->
    List.iter
      (fun (c : Fec.chunk) ->
        let pkt =
          Packet.make ~src:t.src_sw ~dst:t.dst_sw ~flow:t.xfer_id ~birth:(Net.now t.net)
            ~size:(Packet.control_size + (16 * List.length c.Fec.entries))
            ~payload:
              (Packet.State_chunk
                 { xfer_id = t.xfer_id; group = c.Fec.group; index = c.Fec.index;
                   of_group = c.Fec.of_group; parity = c.Fec.parity; entries = c.Fec.entries })
            ()
        in
        t.chunks_sent <- t.chunks_sent + 1;
        Net.inject_at_switch t.net ~sw:t.src_sw pkt)
      members

let fail t reason =
  if not (t.failed || t.complete) then begin
    t.failed <- true;
    t.failed_reason <- Some reason;
    emit_phase t Ff_obs.Event.Xfer_failed;
    t.on_fail reason
  end

(* Recompute the chunk path (and the reverse ack path) over the live
   graph: retransmission rounds pick up healed links and route around
   fresh failures instead of resending into the hole that ate the first
   transmission. Returns false when no live route exists right now. *)
let reroute_live t =
  match Net.live_shortest_path t.net ~src:t.src_sw ~dst:t.dst_sw with
  | None -> false
  | Some p ->
    if p <> t.last_path then begin
      Net.install_path t.net ~dst:t.dst_sw p;
      (match Net.live_shortest_path t.net ~src:t.dst_sw ~dst:t.src_sw with
      | Some back -> Net.install_path t.net ~dst:t.src_sw back
      | None -> ());
      if t.last_path <> [] then begin
        t.reroutes <- t.reroutes + 1;
        Net.obs_emit t.net
          (Ff_obs.Event.Repair
             { subsystem = "transfer"; node = t.src_sw;
               info = Printf.sprintf "xfer %d rerouted" t.xfer_id })
      end;
      t.last_path <- p
    end;
    true

(* Exponential backoff, factor 2 capped at 8x base, plus seeded jitter so
   parallel groups (and parallel transfers) don't retransmit in lockstep
   with each other or with periodic congestion. *)
let backoff_delay t ~tries =
  let factor = Float.min (2. ** float_of_int tries) 8. in
  (t.retransmit_timeout *. factor)
  +. Ff_util.Prng.float t.rng (0.25 *. t.retransmit_timeout)

let rec watch_group t g =
  if (not t.failed) && (not t.complete) && not (Hashtbl.mem t.acked g) then begin
    let tries = try Hashtbl.find t.retries g with Not_found -> 0 in
    if tries >= t.max_retries then fail t "retries-exhausted"
    else if not (Net.switch_is_up t.net ~sw:t.dst_sw) then
      dead_round t g "destination-down"
    else if not (Net.switch_is_up t.net ~sw:t.src_sw) then
      dead_round t g "source-down"
    else if not (reroute_live t) then dead_round t g "no-path"
    else begin
      Hashtbl.replace t.dead_rounds g 0;
      Hashtbl.replace t.retries g (tries + 1);
      if tries > 0 then begin
        t.retransmitted_groups <- t.retransmitted_groups + 1;
        emit_phase t Ff_obs.Event.Xfer_retransmit
      end;
      send_group t g;
      Engine.after (Net.engine t.net) ~delay:(backoff_delay t ~tries) (fun () ->
          watch_group t g)
    end
  end

(* The group cannot be sent this round (dead destination / no live path):
   don't burn a retry on a guaranteed loss — probe again at the base
   timeout and fail the whole transfer promptly once the streak shows a
   real partition rather than a flap. *)
and dead_round t g reason =
  let streak = 1 + (try Hashtbl.find t.dead_rounds g with Not_found -> 0) in
  Hashtbl.replace t.dead_rounds g streak;
  if streak >= dead_round_limit then fail t reason
  else
    Engine.after (Net.engine t.net) ~delay:t.retransmit_timeout (fun () ->
        watch_group t g)

let send net ~src_sw ~dst_sw ~entries ?(group_size = 4) ?(per_chunk = 8) ?(fec = true)
    ?(retransmit_timeout = 0.08) ?(max_retries = 10) ?(seed = 17)
    ?(on_fail = fun (_ : string) -> ()) ~on_complete () =
  incr next_xfer_id;
  let chunks = Fec.encode ~group_size ~per_chunk entries in
  let chunks = if fec then chunks else Fec.data_chunks chunks in
  let by_group = Hashtbl.create 8 in
  List.iter
    (fun (c : Fec.chunk) ->
      Hashtbl.replace by_group c.Fec.group
        ((try Hashtbl.find by_group c.Fec.group with Not_found -> []) @ [ c ]))
    chunks;
  let total_groups = Fec.group_count chunks in
  let t =
    {
      net;
      xfer_id = !next_xfer_id;
      src_sw;
      dst_sw;
      fec;
      retransmit_timeout;
      max_retries;
      rng = Ff_util.Prng.create ~seed:(seed + !next_xfer_id);
      chunks_by_group = by_group;
      total_groups;
      acked = Hashtbl.create 8;
      retries = Hashtbl.create 8;
      dead_rounds = Hashtbl.create 8;
      last_path = [];
      chunks_sent = 0;
      retransmitted_groups = 0;
      reroutes = 0;
      failed = false;
      failed_reason = None;
      on_fail;
      received = Hashtbl.create 64;
      decoded = Hashtbl.create 8;
      fec_recoveries = 0;
      complete = total_groups = 0;
      on_complete;
    }
  in
  if t.complete then on_complete [];
  Hashtbl.replace registry t.xfer_id t;
  emit_phase t Ff_obs.Event.Xfer_start;
  (* endpoints everywhere; a statically disconnected pair fails outright *)
  List.iter (fun sw -> ensure_stage net sw) (Net.switch_ids net);
  let topo = Net.topology net in
  if Topology.shortest_path topo ~src:src_sw ~dst:dst_sw = None
     || Topology.shortest_path topo ~src:dst_sw ~dst:src_sw = None
  then fail t "no-path"
  else
    (* routes come from the live graph per round (see [reroute_live]); a
       transient outage at send time is handled by the dead-round probe
       loop, not an instant failure *)
    List.iter (fun g -> watch_group t g) (List.init total_groups Fun.id);
  t

(* Sketch snapshots ride the generic entry format: one ["cell:<i>"] entry
   per non-zero cell plus a ["total"] entry, so the receiver's total is the
   sender's — not a per-cell re-sum (see Sketch.absorb). *)
let sketch_wire_entries (snap : Ff_dataplane.Sketch.snapshot) =
  ("total", snap.Ff_dataplane.Sketch.total)
  :: List.map
       (fun (i, v) -> (Printf.sprintf "cell:%d" i, v))
       snap.Ff_dataplane.Sketch.cells

let sketch_snapshot_of_entries entries =
  let cells, total =
    List.fold_left
      (fun (cells, total) (k, v) ->
        match String.index_opt k ':' with
        | Some i when String.sub k 0 i = "cell" -> (
          match int_of_string_opt (String.sub k (i + 1) (String.length k - i - 1)) with
          | Some idx -> ((idx, v) :: cells, total)
          | None -> (cells, total))
        | _ -> if k = "total" then (cells, total +. v) else (cells, total))
      ([], 0.) entries
  in
  { Ff_dataplane.Sketch.cells = List.rev cells; total }

let send_sketch net ~src_sw ~dst_sw ~sketch ~into ?group_size ?per_chunk ?fec
    ?retransmit_timeout ?max_retries ?seed ?on_fail ?(on_complete = fun () -> ()) () =
  let entries = sketch_wire_entries (Ff_dataplane.Sketch.serialize sketch) in
  send net ~src_sw ~dst_sw ~entries ?group_size ?per_chunk ?fec
    ?retransmit_timeout ?max_retries ?seed ?on_fail
    ~on_complete:(fun entries ->
      Ff_dataplane.Sketch.absorb into (sketch_snapshot_of_entries entries);
      on_complete ())
    ()

(* Cuckoo snapshots carry exact members, so the wire format must be
   lossless: geometry rides as ["geom:*"] entries and each (bucket,
   fingerprint) pair packs into one float as [bucket * 2^fp_bits + fp]
   (both components are small ints, so the product is exact in a float).
   Entry keys are indexed only to survive the chunker's keying. *)
let cuckoo_wire_entries (snap : Ff_dataplane.Cuckoo.snapshot) =
  let open Ff_dataplane.Cuckoo in
  [ ("geom:buckets", float_of_int snap.ck_buckets);
    ("geom:slots", float_of_int snap.ck_slots);
    ("geom:fp_bits", float_of_int snap.ck_fp_bits);
    ("geom:seed", float_of_int snap.ck_seed) ]
  @ List.mapi
      (fun i (b, fp) ->
        (Printf.sprintf "fp:%d" i, float_of_int ((b lsl snap.ck_fp_bits) lor fp)))
      snap.ck_entries

let cuckoo_snapshot_of_entries entries =
  let geom k =
    match List.assoc_opt ("geom:" ^ k) entries with
    | Some v -> int_of_float v
    | None -> invalid_arg (Printf.sprintf "Transfer.cuckoo_snapshot_of_entries: missing geom:%s" k)
  in
  let fp_bits = geom "fp_bits" in
  let mask = (1 lsl fp_bits) - 1 in
  let packed =
    List.filter_map
      (fun (k, v) ->
        match String.index_opt k ':' with
        | Some i when String.sub k 0 i = "fp" -> (
          match int_of_string_opt (String.sub k (i + 1) (String.length k - i - 1)) with
          | Some idx -> Some (idx, int_of_float v)
          | None -> None)
        | _ -> None)
      entries
  in
  let ordered = List.sort (fun (a, _) (b, _) -> compare a b) packed in
  {
    Ff_dataplane.Cuckoo.ck_buckets = geom "buckets";
    ck_slots = geom "slots";
    ck_fp_bits = fp_bits;
    ck_seed = geom "seed";
    ck_entries = List.map (fun (_, p) -> (p lsr fp_bits, p land mask)) ordered;
  }

let send_cuckoo net ~src_sw ~dst_sw ~cuckoo ~into ?group_size ?per_chunk ?fec
    ?retransmit_timeout ?max_retries ?seed ?on_fail ?(on_complete = fun () -> ()) () =
  let entries = cuckoo_wire_entries (Ff_dataplane.Cuckoo.serialize cuckoo) in
  send net ~src_sw ~dst_sw ~entries ?group_size ?per_chunk ?fec
    ?retransmit_timeout ?max_retries ?seed ?on_fail
    ~on_complete:(fun entries ->
      Ff_dataplane.Cuckoo.absorb into (cuckoo_snapshot_of_entries entries);
      on_complete ())
    ()

let chunks_sent t = t.chunks_sent
let retransmitted_groups t = t.retransmitted_groups
let fec_recoveries t = t.fec_recoveries
let reroutes t = t.reroutes
let complete t = t.complete
let failed t = t.failed
let failure_reason t = t.failed_reason
