module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Topology = Ff_topology.Topology

type t = {
  net : Net.t;
  xfer_id : int;
  src_sw : int;
  dst_sw : int;
  fec : bool;
  retransmit_timeout : float;
  max_retries : int;
  chunks_by_group : (int, Fec.chunk list) Hashtbl.t;
  total_groups : int;
  (* sender state *)
  acked : (int, unit) Hashtbl.t;
  retries : (int, int) Hashtbl.t;
  mutable chunks_sent : int;
  mutable retransmitted_groups : int;
  mutable failed : bool;
  (* receiver state *)
  received : (int * int, Fec.chunk) Hashtbl.t; (* (group, index) -> chunk *)
  decoded : (int, (string * float) list) Hashtbl.t;
  mutable fec_recoveries : int;
  mutable complete : bool;
  on_complete : (string * float) list -> unit;
}

let next_xfer_id = ref 0

(* registry so that a single per-switch stage dispatches to live transfers *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 16

let stage_name = "state-transfer"

let emit_phase t phase =
  Net.obs_emit t.net
    (Ff_obs.Event.State_transfer
       { xfer_id = t.xfer_id; src = t.src_sw; dst = t.dst_sw; phase;
         chunks = t.chunks_sent })

let group_complete t g =
  match Hashtbl.find_opt t.chunks_by_group g with
  | None -> false
  | Some members -> (
    let n = (List.hd members).Fec.of_group in
    let have_data =
      List.length
        (List.filter
           (fun i -> Hashtbl.mem t.received (g, i))
           (List.init n Fun.id))
    in
    let have_parity = Hashtbl.mem t.received (g, n) in
    have_data = n || (have_data = n - 1 && have_parity))

let try_decode_group t g =
  if (not (Hashtbl.mem t.decoded g)) && group_complete t g then begin
    let members =
      Hashtbl.fold (fun (gg, _) c acc -> if gg = g then c :: acc else acc) t.received []
    in
    match Fec.decode_group members with
    | Some entries ->
      let n = (List.hd members).Fec.of_group in
      let data_present =
        List.length (List.filter (fun c -> not c.Fec.parity) members)
      in
      if data_present < n then begin
        t.fec_recoveries <- t.fec_recoveries + 1;
        Net.obs_emit t.net
          (Ff_obs.Event.Fec_recovery { xfer_id = t.xfer_id; group = g })
      end;
      Hashtbl.replace t.decoded g entries;
      true
    | None -> false
  end
  else false

let send_ack t ~group =
  let ack =
    Packet.make ~src:t.dst_sw ~dst:t.src_sw ~flow:t.xfer_id ~birth:(Net.now t.net)
      ~payload:(Packet.State_ack { xfer_id = t.xfer_id; group })
      ()
  in
  Net.inject_at_switch t.net ~sw:t.dst_sw ack

let finish_if_done t =
  if (not t.complete) && Hashtbl.length t.decoded = t.total_groups then begin
    t.complete <- true;
    emit_phase t Ff_obs.Event.Xfer_complete;
    let all =
      List.concat_map
        (fun g -> Hashtbl.find t.decoded g)
        (List.init t.total_groups Fun.id)
    in
    t.on_complete all
  end

let on_chunk t (c : Fec.chunk) =
  if not (Hashtbl.mem t.received (c.Fec.group, c.Fec.index)) then begin
    Hashtbl.replace t.received (c.Fec.group, c.Fec.index) c;
    if try_decode_group t c.Fec.group then begin
      send_ack t ~group:c.Fec.group;
      finish_if_done t
    end
  end
  else if Hashtbl.mem t.decoded c.Fec.group then
    (* retransmission of an already-complete group: the ack was lost, re-ack *)
    send_ack t ~group:c.Fec.group

let transfer_stage =
  {
    Net.stage_name;
    process =
      (fun ctx pkt ->
        let here = ctx.Net.sw.Net.sw_id in
        match pkt.Packet.payload with
        | Packet.State_chunk { xfer_id; group; index; of_group; parity; entries }
          when pkt.Packet.dst = here -> (
          (match Hashtbl.find_opt registry xfer_id with
          | Some t when t.dst_sw = here ->
            on_chunk t { Fec.group; index; of_group; parity; entries }
          | _ -> ());
          Net.Absorb)
        | Packet.State_ack { xfer_id; group } when pkt.Packet.dst = here -> (
          (match Hashtbl.find_opt registry xfer_id with
          | Some t when t.src_sw = here -> Hashtbl.replace t.acked group ()
          | _ -> ());
          Net.Absorb)
        | _ -> Net.Continue);
  }

let ensure_stage net sw =
  if not (Net.has_stage net ~sw ~name:stage_name) then Net.add_stage net ~sw transfer_stage

let send_group t g =
  match Hashtbl.find_opt t.chunks_by_group g with
  | None -> ()
  | Some members ->
    List.iter
      (fun (c : Fec.chunk) ->
        let pkt =
          Packet.make ~src:t.src_sw ~dst:t.dst_sw ~flow:t.xfer_id ~birth:(Net.now t.net)
            ~size:(Packet.control_size + (16 * List.length c.Fec.entries))
            ~payload:
              (Packet.State_chunk
                 { xfer_id = t.xfer_id; group = c.Fec.group; index = c.Fec.index;
                   of_group = c.Fec.of_group; parity = c.Fec.parity; entries = c.Fec.entries })
            ()
        in
        t.chunks_sent <- t.chunks_sent + 1;
        Net.inject_at_switch t.net ~sw:t.src_sw pkt)
      members

let rec watch_group t g =
  if (not t.failed) && not (Hashtbl.mem t.acked g) then begin
    let tries = try Hashtbl.find t.retries g with Not_found -> 0 in
    if tries >= t.max_retries then begin
      t.failed <- true;
      emit_phase t Ff_obs.Event.Xfer_failed
    end
    else begin
      Hashtbl.replace t.retries g (tries + 1);
      if tries > 0 then begin
        t.retransmitted_groups <- t.retransmitted_groups + 1;
        emit_phase t Ff_obs.Event.Xfer_retransmit
      end;
      send_group t g;
      Engine.after (Net.engine t.net) ~delay:t.retransmit_timeout (fun () -> watch_group t g)
    end
  end

let send net ~src_sw ~dst_sw ~entries ?(group_size = 4) ?(per_chunk = 8) ?(fec = true)
    ?(retransmit_timeout = 0.08) ?(max_retries = 10) ~on_complete () =
  incr next_xfer_id;
  let chunks = Fec.encode ~group_size ~per_chunk entries in
  let chunks = if fec then chunks else Fec.data_chunks chunks in
  let by_group = Hashtbl.create 8 in
  List.iter
    (fun (c : Fec.chunk) ->
      Hashtbl.replace by_group c.Fec.group
        ((try Hashtbl.find by_group c.Fec.group with Not_found -> []) @ [ c ]))
    chunks;
  let total_groups = Fec.group_count chunks in
  let t =
    {
      net;
      xfer_id = !next_xfer_id;
      src_sw;
      dst_sw;
      fec;
      retransmit_timeout;
      max_retries;
      chunks_by_group = by_group;
      total_groups;
      acked = Hashtbl.create 8;
      retries = Hashtbl.create 8;
      chunks_sent = 0;
      retransmitted_groups = 0;
      failed = false;
      received = Hashtbl.create 64;
      decoded = Hashtbl.create 8;
      fec_recoveries = 0;
      complete = total_groups = 0;
      on_complete;
    }
  in
  if t.complete then on_complete [];
  Hashtbl.replace registry t.xfer_id t;
  emit_phase t Ff_obs.Event.Xfer_start;
  (* endpoints and routes over the current topology *)
  List.iter (fun sw -> ensure_stage net sw) (Net.switch_ids net);
  let topo = Net.topology net in
  (match Topology.shortest_path topo ~src:src_sw ~dst:dst_sw with
  | Some p -> Net.install_path net ~dst:dst_sw p
  | None -> t.failed <- true);
  (match Topology.shortest_path topo ~src:dst_sw ~dst:src_sw with
  | Some p -> Net.install_path net ~dst:src_sw p
  | None -> t.failed <- true);
  if t.failed then emit_phase t Ff_obs.Event.Xfer_failed
  else List.iter (fun g -> watch_group t g) (List.init total_groups Fun.id);
  t

(* Sketch snapshots ride the generic entry format: one ["cell:<i>"] entry
   per non-zero cell plus a ["total"] entry, so the receiver's total is the
   sender's — not a per-cell re-sum (see Sketch.absorb). *)
let sketch_wire_entries (snap : Ff_dataplane.Sketch.snapshot) =
  ("total", snap.Ff_dataplane.Sketch.total)
  :: List.map
       (fun (i, v) -> (Printf.sprintf "cell:%d" i, v))
       snap.Ff_dataplane.Sketch.cells

let sketch_snapshot_of_entries entries =
  let cells, total =
    List.fold_left
      (fun (cells, total) (k, v) ->
        match String.index_opt k ':' with
        | Some i when String.sub k 0 i = "cell" -> (
          match int_of_string_opt (String.sub k (i + 1) (String.length k - i - 1)) with
          | Some idx -> ((idx, v) :: cells, total)
          | None -> (cells, total))
        | _ -> if k = "total" then (cells, total +. v) else (cells, total))
      ([], 0.) entries
  in
  { Ff_dataplane.Sketch.cells = List.rev cells; total }

let send_sketch net ~src_sw ~dst_sw ~sketch ~into ?group_size ?per_chunk ?fec
    ?retransmit_timeout ?max_retries ?(on_complete = fun () -> ()) () =
  let entries = sketch_wire_entries (Ff_dataplane.Sketch.serialize sketch) in
  send net ~src_sw ~dst_sw ~entries ?group_size ?per_chunk ?fec
    ?retransmit_timeout ?max_retries
    ~on_complete:(fun entries ->
      Ff_dataplane.Sketch.absorb into (sketch_snapshot_of_entries entries);
      on_complete ())
    ()

let chunks_sent t = t.chunks_sent
let retransmitted_groups t = t.retransmitted_groups
let fec_recoveries t = t.fec_recoveries
let complete t = t.complete
let failed t = t.failed
