module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet

type class_filter = All | Control_only | Data_only | State_chunks_only | Mode_probes_only

type model =
  | Bernoulli
  | Gilbert_elliott of { p_gb : float; p_bg : float; good_loss : float; bad_loss : float }

type t = {
  mutable prob : float;
  model : model;
  rng : Ff_util.Prng.t;
  classes : class_filter;
  mutable enabled : bool;
  mutable dropped : int;
  mutable seen : int;
  (* Gilbert–Elliott chain state + burst-run statistics *)
  mutable bad : bool;
  mutable cur_burst : int;
  mutable bursts : int;
  mutable burst_total : int;
}

let matches t (pkt : Packet.t) =
  match t.classes with
  | All -> true
  | Control_only -> Packet.is_control pkt
  | Data_only -> not (Packet.is_control pkt)
  | State_chunks_only -> (
    match pkt.Packet.payload with Packet.State_chunk _ -> true | _ -> false)
  | Mode_probes_only -> (
    match pkt.Packet.payload with Packet.Mode_probe _ -> true | _ -> false)

(* One decision per matched packet. Bernoulli draws once (bit-compatible
   with the pre-model rng stream); the Gilbert–Elliott chain draws for the
   loss and then for the state transition, stepping the two-state Markov
   chain per packet — loss arrives in bursts whose length is geometric
   with mean 1/p_bg while the chain sits in the bad state. *)
let decide t =
  match t.model with
  | Bernoulli -> Ff_util.Prng.float t.rng 1. < t.prob
  | Gilbert_elliott { p_gb; p_bg; good_loss; bad_loss } ->
    let loss_p = if t.bad then bad_loss else good_loss in
    let drop = loss_p > 0. && Ff_util.Prng.float t.rng 1. < loss_p in
    (if t.bad then begin
       if Ff_util.Prng.float t.rng 1. < p_bg then t.bad <- false
     end
     else if Ff_util.Prng.float t.rng 1. < p_gb then t.bad <- true);
    drop

let note_burst t drop =
  if drop then t.cur_burst <- t.cur_burst + 1
  else if t.cur_burst > 0 then begin
    t.bursts <- t.bursts + 1;
    t.burst_total <- t.burst_total + t.cur_burst;
    t.cur_burst <- 0
  end

let install net ~sw ~prob ?(seed = 99) ?(classes = All) ?(model = Bernoulli) () =
  assert (prob >= 0. && prob <= 1.);
  (match model with
  | Bernoulli -> ()
  | Gilbert_elliott { p_gb; p_bg; good_loss; bad_loss } ->
    assert (p_gb >= 0. && p_gb <= 1. && p_bg > 0. && p_bg <= 1.);
    assert (good_loss >= 0. && good_loss <= 1. && bad_loss >= 0. && bad_loss <= 1.));
  let t =
    { prob; model; rng = Ff_util.Prng.create ~seed:(seed + sw); classes;
      enabled = true; dropped = 0; seen = 0; bad = false; cur_burst = 0;
      bursts = 0; burst_total = 0 }
  in
  Net.add_stage ~front:true net ~sw
    {
      Net.stage_name = "loss-injection";
      process =
        (fun _ctx pkt ->
          if t.enabled && matches t pkt then begin
            t.seen <- t.seen + 1;
            let drop = decide t in
            note_burst t drop;
            if drop then begin
              t.dropped <- t.dropped + 1;
              Net.Drop "injected-loss"
            end
            else Net.Continue
          end
          else Net.Continue);
    };
  t

let dropped t = t.dropped
let seen t = t.seen
let set_prob t p = t.prob <- p
let set_enabled t on = t.enabled <- on

let bursts t = t.bursts + (if t.cur_burst > 0 then 1 else 0)

let mean_burst_len t =
  let n = bursts t in
  if n = 0 then 0. else float_of_int (t.burst_total + t.cur_burst) /. float_of_int n
