module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet

type t = {
  mode : string;
  default_allow : bool;
  policy : (int * int, unit) Hashtbl.t;
  mutable violations : int;
}

let allowed t ~src ~dst = if Hashtbl.mem t.policy (src, dst) then true else t.default_allow

let stage t =
  let mode_key = Common.mode_key t.mode in
  {
    Net.stage_name = "access-control";
    process =
      (fun ctx pkt ->
        match pkt.Packet.payload with
        | Packet.Data
          when Common.mode_on ctx.Net.sw mode_key
               && not (allowed t ~src:pkt.Packet.src ~dst:pkt.Packet.dst) ->
          t.violations <- t.violations + 1;
          Net.Drop "acl-violation"
        | _ -> Net.Continue);
  }

let install net ~sw ?(mode = Common.mode_acl) ?(default_allow = false) () =
  let t = { mode; default_allow; policy = Hashtbl.create 64; violations = 0 } in
  Net.add_stage net ~sw (stage t);
  t

let permit t ~src ~dst = Hashtbl.replace t.policy (src, dst) ()
let revoke t ~src ~dst = Hashtbl.remove t.policy (src, dst)
let violations t = t.violations
