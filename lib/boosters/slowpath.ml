module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Meter = Ff_dataplane.Register.Meter

type verdict = Allow | Deny | Install of (unit -> unit)

type t = {
  net : Net.t;
  latency : float;
  budget : Meter.t; (* punts metered in "bytes" of 1 per punt *)
  overflow : verdict;
  handler : Packet.t -> verdict;
  mutable punts : int;
  mutable overflows : int;
}

let create net ~sw ?(latency = 0.001) ?(rate_limit = 1000.) ?(overflow = Deny) ~handler () =
  ignore sw;
  {
    net;
    latency;
    budget = Meter.create ~rate:rate_limit ~burst:(Float.max 1. (rate_limit /. 10.));
    overflow;
    handler;
    punts = 0;
    overflows = 0;
  }

let punt t pkt ~on_verdict =
  if Meter.allow t.budget ~now:(Net.now t.net) ~bytes:1. then begin
    t.punts <- t.punts + 1;
    Engine.after (Net.engine t.net) ~delay:t.latency (fun () ->
        let v = t.handler pkt in
        (match v with Install f -> f () | Allow | Deny -> ());
        on_verdict v)
  end
  else begin
    t.overflows <- t.overflows + 1;
    on_verdict t.overflow
  end

let punts t = t.punts
let overflows t = t.overflows

module Reactive_acl = struct
  type acl = {
    mode : string;
    cache : (int * int, bool) Hashtbl.t;
    pending : (int * int, unit) Hashtbl.t;
    sp : t;
    mutable hits : int;
    mutable misses : int;
  }

  let install net ~sw ?(mode = Common.mode_acl) ?latency ?rate_limit ~oracle () =
    let rec acl =
      lazy
        (let sp =
           create net ~sw ?latency ?rate_limit
             ~handler:(fun pkt ->
               let key = (pkt.Packet.src, pkt.Packet.dst) in
               let allowed = oracle ~src:pkt.Packet.src ~dst:pkt.Packet.dst in
               Install
                 (fun () ->
                   let a = Lazy.force acl in
                   Hashtbl.remove a.pending key;
                   Hashtbl.replace a.cache key allowed))
             ()
         in
         { mode; cache = Hashtbl.create 64; pending = Hashtbl.create 16; sp; hits = 0;
           misses = 0 })
    in
    let a = Lazy.force acl in
    let mode_key = Common.mode_key a.mode in
    Net.add_stage net ~sw
      {
        Net.stage_name = "reactive-acl";
        process =
          (fun ctx pkt ->
            match pkt.Packet.payload with
            | Packet.Data when Common.mode_on ctx.Net.sw mode_key -> (
              let key = (pkt.Packet.src, pkt.Packet.dst) in
              match Hashtbl.find_opt a.cache key with
              | Some true ->
                a.hits <- a.hits + 1;
                Net.Continue
              | Some false ->
                a.hits <- a.hits + 1;
                Net.Drop "acl-deny-cached"
              | None ->
                a.misses <- a.misses + 1;
                (* table miss: consult the slowpath once per pair; the
                   packet itself is sacrificed (transport retransmits),
                   like an OpenFlow table-miss punt *)
                if not (Hashtbl.mem a.pending key) then begin
                  Hashtbl.replace a.pending key ();
                  punt a.sp pkt ~on_verdict:(fun v ->
                      match v with
                      | Install _ -> () (* handled inside the verdict *)
                      | Allow -> Hashtbl.replace a.cache key true
                      | Deny ->
                        Hashtbl.remove a.pending key;
                        Hashtbl.replace a.cache key false)
                end;
                Net.Drop "acl-miss-punted")
            | _ -> Net.Continue);
      };
    a

  let cache_hits a = a.hits
  let cache_misses a = a.misses
  let cached_pairs a = Hashtbl.length a.cache
  let slowpath a = a.sp
end
