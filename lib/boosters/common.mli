(** Conventions shared by all booster runtimes.

    Mode activation is communicated through switch vars under the key
    ["mode:<name>"] (written by [Ff_modes.Protocol], read here), keeping
    boosters free of a dependency on the mode-protocol library — exactly
    the loose coupling a real data plane has, where a mode bit in switch
    memory gates a table. The vars entry is mirrored into the switch's
    interned flag bits ({!Ff_netsim.Net.flag_mask}), which is what the
    per-packet read path tests. *)

val mode_active : Ff_netsim.Net.switch -> string -> bool
(** [mode_active sw name] interns the name on every call; fine off the
    hot path (tests, periodic checks). Per-packet code should build the key
    once with {!mode_key} and test it with {!mode_on}. *)

val mode_key : string -> int
(** One-hot flag mask for mode [name], interned once at booster-install
    time. *)

val mode_on : Ff_netsim.Net.switch -> int -> bool
(** Single-[land] flag test over a key from {!mode_key} — the per-packet
    read path. *)

val set_mode : Ff_netsim.Net.switch -> string -> bool -> unit
(** Directly toggle a mode (tests and standalone examples; production
    paths go through the mode protocol). Updates both the [vars] mirror
    and the flag bit. *)

(** Standard mode names used by the shipped boosters. *)

val mode_classify : string
(** LFA detector classifies and marks flows. *)

val mode_reroute : string
val mode_obfuscate : string
val mode_drop : string
val mode_hcf : string
val mode_acl : string
val mode_grl : string

val mode_syn_guard : string
(** SYN-cookie split-proxy interception at an edge switch. *)
