module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Flow = Ff_netsim.Flow
module Packet = Ff_dataplane.Packet
module Cuckoo = Ff_dataplane.Cuckoo
module Hash = Ff_dataplane.Hash
module Prng = Ff_util.Prng

(* CuckooGuard-style split-proxy SYN defense. The data-plane agent sits at
   the protected server's edge switch: while the syn_guard mode is active
   it absorbs every SYN toward the server and answers with a stateless
   SYN-cookie, validates the returning handshake ack, and admits the flow
   into a cuckoo-filter tracker; data of flows the tracker does not know
   is dropped at the switch. The server-side agent is the listener's
   [trust_validated] flag: a validated ack forwarded by the edge
   establishes directly — the server's accept backlog never sees the
   flood. *)

type t = {
  net : Net.t;
  sw : int;
  protect : int;
  tracker : Cuckoo.t;
  mode : int;  (* interned syn_guard mode bit *)
  syn_threshold_pps : float;
  check_period : float;
  clear_hold : float;
  threshold_jitter : float;
  rotate_period : float;
  prng : Prng.t;
  mutable secret : int;
  mutable prev_secret : int;
  mutable eff_threshold : float;
  mutable syn_seen : int;  (* SYNs toward [protect] since the last check *)
  mutable last_rate : float;
  mutable alarmed : bool;
  mutable low_since : float;
  on_alarm : Lfa_detector.alarm -> unit;
  on_clear : Lfa_detector.alarm -> unit;
  mutable cookies_sent : int;
  mutable validated : int;
  mutable rejected : int;
  mutable unverified_drops : int;
  mutable insert_failures : int;
  mutable deletions : int;
}

(* One tracker key per connection: the flow id is the 5-tuple surrogate,
   salted with the claimed source so a colliding id from another host
   does not alias. *)
let flow_key (pkt : Packet.t) = (pkt.Packet.flow * 0x9E3779B9) lxor pkt.Packet.src

let cookie t (pkt : Packet.t) ~secret =
  let c = Hash.mix ~seed:secret ~lane:3 (flow_key pkt) in
  ignore t;
  if c = 0 then 1 else c

let cookie_valid t pkt c =
  c <> 0 && (c = cookie t pkt ~secret:t.secret || c = cookie t pkt ~secret:t.prev_secret)

let guard_stage t =
  let protect = t.protect in
  {
    Net.stage_name = "syn-guard";
    process =
      (fun ctx (pkt : Packet.t) ->
        if pkt.Packet.dst <> protect then Net.Continue
        else begin
          (* the SYN rate is observed whether or not the mode is active —
             it is what raises the alarm in the first place *)
          (match pkt.Packet.payload with
          | Packet.Syn -> t.syn_seen <- t.syn_seen + 1
          | _ -> ());
          if not (Common.mode_on ctx.Net.sw t.mode) then Net.Continue
          else
            match pkt.Packet.payload with
            | Packet.Syn ->
              (* stateless proxy: answer with a cookie, keep nothing *)
              t.cookies_sent <- t.cookies_sent + 1;
              let reply =
                Packet.make_control
                  ~payload:(Packet.Syn_ack { cookie = cookie t pkt ~secret:t.secret })
                  ~src:protect ~dst:pkt.Packet.src ~flow:pkt.Packet.flow
                  ~birth:(Net.now t.net)
              in
              Net.inject_at_switch t.net ~sw:t.sw reply;
              Net.Absorb
            | Packet.Handshake_ack { cookie = c } ->
              if cookie_valid t pkt c then begin
                t.validated <- t.validated + 1;
                if not (Cuckoo.insert t.tracker (flow_key pkt)) then
                  t.insert_failures <- t.insert_failures + 1;
                Net.Continue
              end
              else begin
                t.rejected <- t.rejected + 1;
                Net.Drop "bad-cookie"
              end
            | Packet.Fin ->
              if Cuckoo.delete t.tracker (flow_key pkt) then
                t.deletions <- t.deletions + 1;
              Net.Continue
            | Packet.Data | Packet.Ack _ ->
              if Cuckoo.member t.tracker (flow_key pkt) then Net.Continue
              else begin
                t.unverified_drops <- t.unverified_drops + 1;
                Net.Drop "unverified-flow"
              end
            | _ -> Net.Continue
        end);
  }

let check t () =
  let rate = float_of_int t.syn_seen /. t.check_period in
  t.last_rate <- rate;
  t.syn_seen <- 0;
  (* threshold jitter (hardening): deny a threshold-hugging flood a
     stable safe rate by redrawing the effective threshold each check *)
  if t.threshold_jitter > 0. then
    t.eff_threshold <-
      t.syn_threshold_pps *. (1. -. Prng.float t.prng t.threshold_jitter);
  let now = Net.now t.net in
  if rate > t.eff_threshold then begin
    t.low_since <- infinity;
    if not t.alarmed then begin
      t.alarmed <- true;
      t.on_alarm { Lfa_detector.switch = t.sw; attack = Packet.Synflood }
    end
  end
  else if t.alarmed then begin
    if t.low_since = infinity then t.low_since <- now;
    if now -. t.low_since >= t.clear_hold then begin
      t.alarmed <- false;
      t.low_since <- infinity;
      t.on_clear { Lfa_detector.switch = t.sw; attack = Packet.Synflood }
    end
  end

let rotate t () =
  t.prev_secret <- t.secret;
  t.secret <- (Prng.int t.prng max_int lor 1)

let install net ~sw ~protect ?(tracker_capacity = 4096) ?(syn_threshold_pps = 200.)
    ?(check_period = 0.1) ?(clear_hold = 2.0) ?(threshold_jitter = 0.)
    ?(rotate_period = 0.) ?(seed = 0x5EED) ~on_alarm ~on_clear () =
  let prng = Prng.create ~seed:(seed lxor (sw * 0x9E3779B9)) in
  let t =
    {
      net;
      sw;
      protect;
      tracker = Cuckoo.create ~seed ~capacity:tracker_capacity ();
      mode = Common.mode_key Common.mode_syn_guard;
      syn_threshold_pps;
      check_period;
      clear_hold;
      threshold_jitter;
      rotate_period;
      prng;
      secret = Prng.int prng max_int lor 1;
      prev_secret = 0;
      eff_threshold = syn_threshold_pps;
      syn_seen = 0;
      last_rate = 0.;
      alarmed = false;
      low_since = infinity;
      on_alarm;
      on_clear;
      cookies_sent = 0;
      validated = 0;
      rejected = 0;
      unverified_drops = 0;
      insert_failures = 0;
      deletions = 0;
    }
  in
  Net.add_stage net ~sw (guard_stage t);
  Engine.every (Net.engine net) ~period:check_period (check t);
  if rotate_period > 0. then Engine.every (Net.engine net) ~period:rotate_period (rotate t);
  t

let attach_server_agent t listener =
  (* the host half of the split proxy: follow the edge switch's mode so
     validated acks establish without a backlog entry *)
  let sw_rec = Net.switch t.net t.sw in
  Engine.every (Net.engine t.net) ~period:t.check_period (fun () ->
      Flow.Listener.set_trust_validated listener (Common.mode_on sw_rec t.mode))

let tracker t = t.tracker
let alarmed t = t.alarmed
let syn_rate t = t.last_rate
let cookies_sent t = t.cookies_sent
let validated t = t.validated
let rejected t = t.rejected
let unverified_drops t = t.unverified_drops
let insert_failures t = t.insert_failures
let deletions t = t.deletions
let resource t = Cuckoo.resource t.tracker
