(** Heavy-hitter / volumetric-DDoS detection booster (after HashPipe,
    SOSR '17, and network-wide heavy hitters, SOSR '18).

    Every data packet updates a HashPipe table keyed by flow. Each epoch
    the booster converts resident counts to rates; any flow above
    [threshold_bps] triggers a volumetric alarm (once per epoch), and the
    offending flows are reported so a dropper can be pointed at them. *)

type t

val install :
  Ff_netsim.Net.t ->
  sw:int ->
  ?epoch:float ->
  ?stages:int ->
  ?slots:int ->
  ?threshold_bps:float ->
  ?key_of:(Ff_dataplane.Packet.t -> int) ->
  ?epoch_jitter:float ->
  ?threshold_jitter:float ->
  ?rotate_period:float ->
  ?src_hold:float ->
  ?seed:int ->
  on_alarm:(Lfa_detector.alarm -> unit) ->
  on_clear:(Lfa_detector.alarm -> unit) ->
  unit ->
  t
(** Defaults: 1 s epochs, 4x64 HashPipe, alarm above 4 Mb/s per flow,
    keyed by [pkt.flow] ([key_of] substitutes e.g. the source id for
    per-sender accounting, which an attacker with a fixed bot population
    cannot spread its way out of).

    Hardening (all inert at their 0. defaults — the booster is then
    bit-identical to the unhardened one): [epoch_jitter] draws each
    epoch's length uniformly from [epoch*(1-j), epoch*(1+j)] so
    measurement boundaries can't be learned and straddled;
    [threshold_jitter] shrinks the effective threshold per epoch by a
    uniform fraction in [0, j] so it can't be hugged; [rotate_period] > 0
    re-salts the HashPipe ({!Ff_dataplane.Hashpipe.reseed}) at the first
    epoch boundary after each period elapses — after the offender scan
    and reset, so a rotation never disturbs an epoch's accounting while
    still invalidating probed hash collisions within about an epoch;
    [src_hold] > 0 brands the *source* of any offending packet for that
    many seconds ({!mark_offenders_stage} keeps marking everything a
    branded sender emits, and the alarm stays raised while holds are
    live), so detection's one-epoch latency cannot be laundered away
    with fresh flow keys. All draws come from a PRNG seeded by [seed]
    xor the switch id. *)

val top : t -> k:int -> (int * float) list
(** Current epoch's top flows by bytes. *)

val offenders : t -> int list
(** Flows above threshold in the last completed epoch. *)

val alarmed : t -> bool

val epochs : t -> int
(** Completed measurement epochs. *)

val rotations : t -> int
(** Hash-salt rotations performed so far. *)

val current_threshold : t -> float
(** The effective (possibly jittered) per-flow threshold, bits/s. *)

val mark_offenders_stage : t -> Ff_netsim.Net.stage
(** Optional stage marking offender packets suspicious (so the generic
    dropper mitigates volumetric attacks too). *)
