module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet

type sw_state = {
  local : (int, Ff_util.Stats.Window_counter.t) Hashtbl.t; (* tenant -> bytes window *)
  remote : (int * int, float * float) Hashtbl.t; (* (origin, tenant) -> rate, at *)
  seen : (int * int, unit) Hashtbl.t; (* (origin, round) flood dedup *)
}

type t = {
  net : Net.t;
  participants : int list;
  sync_period : float;
  mode : string;
  rng : Ff_util.Prng.t;
  limits : (int, float) Hashtbl.t; (* tenant -> bps *)
  tenants : (int, int) Hashtbl.t; (* src host -> tenant *)
  states : (int, sw_state) Hashtbl.t;
  mutable round : int;
  mutable dropped : int;
  mutable sync_probes : int;
}

let state t sw =
  match Hashtbl.find_opt t.states sw with
  | Some s -> s
  | None ->
    let s = { local = Hashtbl.create 8; remote = Hashtbl.create 16; seen = Hashtbl.create 64 } in
    Hashtbl.replace t.states sw s;
    s

let local_counter t sw tenant =
  let st = state t sw in
  match Hashtbl.find_opt st.local tenant with
  | Some c -> c
  | None ->
    let c = Ff_util.Stats.Window_counter.create ~width:1.0 in
    Hashtbl.replace st.local tenant c;
    c

let local_rate t ~sw ~tenant =
  Ff_util.Stats.Window_counter.rate (local_counter t sw tenant) ~now:(Net.now t.net) *. 8.

let global_rate t ~sw ~tenant =
  let st = state t sw in
  let now = Net.now t.net in
  let remote =
    Hashtbl.fold
      (fun (origin, tn) (rate, at) acc ->
        if tn = tenant && origin <> sw && now -. at <= 3. *. t.sync_period then acc +. rate
        else acc)
      st.remote 0.
  in
  remote +. local_rate t ~sw ~tenant

let stage t =
  let mode_key = Common.mode_key t.mode in
  {
    Net.stage_name = "global-rate-limit";
    process =
      (fun ctx pkt ->
        let sw = ctx.Net.sw.Net.sw_id in
        match pkt.Packet.payload with
        (* flow 0 is this booster's sync class; other classes belong to
           other synchronization services and pass through untouched *)
        | Packet.Sync_probe { origin; round; entries } when pkt.Packet.flow = 0 ->
          let st = state t sw in
          if Hashtbl.mem st.seen (origin, round) then Net.Absorb
          else begin
            Hashtbl.replace st.seen (origin, round) ();
            List.iter
              (fun (tenant, rate) -> Hashtbl.replace st.remote (origin, tenant) (rate, Net.now t.net))
              entries;
            Net.flood_from_switch t.net ~sw ~except:[ ctx.Net.in_port ] (fun () ->
                Packet.make ~src:origin ~dst:origin ~flow:0 ~birth:(Net.now t.net)
                  ~payload:(Packet.Sync_probe { origin; round; entries })
                  ());
            Net.Absorb
          end
        | Packet.Data -> (
          match Hashtbl.find_opt t.tenants pkt.Packet.src with
          | Some tenant when List.mem sw t.participants
                             && Net.access_switch t.net ~host:pkt.Packet.src = sw -> (
            Ff_util.Stats.Window_counter.add (local_counter t sw tenant) ~now:(Net.now t.net)
              (float_of_int pkt.Packet.size);
            match Hashtbl.find_opt t.limits tenant with
            | Some limit when Common.mode_on ctx.Net.sw mode_key ->
              let global = global_rate t ~sw ~tenant in
              if global > limit then begin
                let drop_p = 1. -. (limit /. global) in
                if Ff_util.Prng.float t.rng 1. < drop_p then begin
                  t.dropped <- t.dropped + 1;
                  Net.Drop "global-rate-limit"
                end
                else Net.Continue
              end
              else Net.Continue
            | _ -> Net.Continue)
          | _ -> Net.Continue)
        | _ -> Net.Continue);
  }

let start_sync t =
  Engine.every (Net.engine t.net) ~period:t.sync_period (fun () ->
      t.round <- t.round + 1;
      List.iter
        (fun sw ->
          let st = state t sw in
          let entries =
            Hashtbl.fold
              (fun tenant _ acc -> (tenant, local_rate t ~sw ~tenant) :: acc)
              st.local []
          in
          if entries <> [] then begin
            t.sync_probes <- t.sync_probes + 1;
            Hashtbl.replace st.seen (sw, t.round) ();
            Net.flood_from_switch t.net ~sw ~except:[] (fun () ->
                Packet.make ~src:sw ~dst:sw ~flow:0 ~birth:(Net.now t.net)
                  ~payload:(Packet.Sync_probe { origin = sw; round = t.round; entries })
                  ())
          end)
        t.participants)

let install net ~participants ?(sync_period = 0.2) ?(mode = Common.mode_grl) ?(seed = 7) () =
  let t =
    {
      net;
      participants;
      sync_period;
      mode;
      rng = Ff_util.Prng.create ~seed;
      limits = Hashtbl.create 8;
      tenants = Hashtbl.create 32;
      states = Hashtbl.create 16;
      round = 0;
      dropped = 0;
      sync_probes = 0;
    }
  in
  List.iter (fun sw -> Net.add_stage net ~sw (stage t)) (Net.switch_ids net);
  start_sync t;
  t

let set_limit t ~tenant limit = Hashtbl.replace t.limits tenant limit
let assign t ~src ~tenant = Hashtbl.replace t.tenants src tenant
let dropped t = t.dropped
let sync_probes t = t.sync_probes
