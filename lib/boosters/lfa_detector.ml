module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Window_counter = Ff_util.Stats.Window_counter

(* All fields float so the record gets OCaml's flat-float layout: the
   mutable stores in [update_flow] run on every data packet at every
   detector switch, and a mixed record would box a fresh float per store.
   [dst] carries an int node id, [suspicious] is a 0./1. flag. *)
type flow_rec = {
  mutable first_seen : float;
  mutable last_seen : float;
  mutable rate : float; (* bits/s over the last completed window *)
  mutable window_start : float;
  mutable window_bytes : float;
  mutable dst : float;
  mutable suspicious : float;
}

type alarm = { switch : int; attack : Packet.attack_kind }

type t = {
  net : Net.t;
  sw : int;
  watched : (int * int) list;
  high_threshold : float;
  low_threshold : float;
  suspicious_rate : float;
  min_age : float;
  clear_fraction : float;
  clear_hold : float;
  dst_flows_min : int;
  flows : (int, flow_rec) Hashtbl.t;
  suspicious_srcs : (int, unit) Hashtbl.t;
  dst_fanout : (int, int) Hashtbl.t; (* dst -> live flows toward it *)
  (* Offered-load tracking (pre-mitigation): bytes whose *default* route
     crosses a watched egress link, counted in the detector stage — i.e.
     before the dropper polices or the reroute steers them. Hysteresis on
     the transmitted utilization alone would flap: mitigation suppresses
     the very signal that raised the alarm. Indexed by next-hop node id
     via [watched_idx] (-1 = not watched / not our egress). *)
  watched_idx : int array;
  offered_ctr : Window_counter.t array;
  offered_cap : float array;
  (* Randomized-threshold hardening: the effective alarm threshold is
     redrawn from [high_threshold - jitter, high_threshold] every
     [jitter_period], so a threshold-hugging adversary cannot learn a
     stable safe operating point. jitter = 0. (default) keeps the
     detector bit-identical to the unhardened one. *)
  threshold_jitter : float;
  jitter_period : float;
  rng : Ff_util.Prng.t;
  mutable high_eff : float;
  mutable low_eff : float;
  mutable next_draw : float;
  mutable alarmed : bool;
  mutable calm_since : float option;
  mutable marks : int;
  on_alarm : alarm -> unit;
  on_clear : alarm -> unit;
}

(* Per-flow rate over fixed windows: bursty TCP arrivals make per-packet
   instantaneous estimates useless (intra-burst gaps dominate), so the rate
   is bytes over a half-second measurement window. *)
let rate_window = 0.5

let offered_window = 1.0

let update_flow t now (pkt : Packet.t) =
  let rec_ =
    match Hashtbl.find t.flows pkt.flow with
    | r -> r
    | exception Not_found ->
      let r =
        { first_seen = now; last_seen = now; rate = 0.; window_start = now; window_bytes = 0.;
          dst = float_of_int pkt.dst; suspicious = 0. }
      in
      Hashtbl.replace t.flows pkt.flow r;
      r
  in
  rec_.window_bytes <- rec_.window_bytes +. float_of_int pkt.size;
  let elapsed = now -. rec_.window_start in
  if elapsed >= rate_window then begin
    rec_.rate <- rec_.window_bytes *. 8. /. elapsed;
    rec_.window_start <- now;
    rec_.window_bytes <- 0.
  end;
  rec_.last_seen <- now;
  rec_

let classify t now rec_ (pkt : Packet.t) =
  (* The Crossfire signature (paper 4.1): persistent, individually low-rate
     flows, many of them converging on the same destination — legitimate
     flows congested down to a low rate do not share the fan-in. *)
  let age = now -. rec_.first_seen in
  let fanout = try Hashtbl.find t.dst_fanout (int_of_float rec_.dst) with Not_found -> 0 in
  if
    age >= t.min_age && rec_.rate > 0. && rec_.rate < t.suspicious_rate
    && fanout >= t.dst_flows_min
  then begin
    rec_.suspicious <- 1.;
    Hashtbl.replace t.suspicious_srcs pkt.src ()
  end;
  if rec_.suspicious > 0. then begin
    pkt.Packet.suspicious <- true;
    t.marks <- t.marks + 1
  end

(* Classification runs when this detector has raised its own alarm OR when
   the distributed "classify" mode reached this switch (an alarm elsewhere,
   propagated by mode probes): upstream switches with path diversity must
   mark flows even though their own links are calm. *)
let classify_key = Common.mode_key Common.mode_classify
let classifying t ctx = t.alarmed || Common.mode_on ctx.Net.sw classify_key

let count_offered t (ctx : Net.ctx) (pkt : Packet.t) now =
  let routes = ctx.Net.sw.Net.routes in
  if pkt.dst >= 0 && pkt.dst < Array.length routes then begin
    let nh = Array.unsafe_get routes pkt.dst in
    if nh >= 0 then begin
      let wi = Array.unsafe_get t.watched_idx nh in
      if wi >= 0 then
        Window_counter.add t.offered_ctr.(wi) ~now (float_of_int pkt.size *. 8.)
    end
  end

let stage t =
  {
    Net.stage_name = "lfa-detector";
    process =
      (fun ctx pkt ->
        (match pkt.Packet.payload with
        | Packet.Data ->
          let tnow = Net.now ctx.Net.net in
          count_offered t ctx pkt tnow;
          let rec_ = update_flow t tnow pkt in
          if classifying t ctx then classify t tnow rec_ pkt
        | Packet.Traceroute_probe _ ->
          (* a suspicious source's reconnaissance probes are forwarded like
             its data (Crossfire probes are TTL-limited data packets), so
             mark them too — mitigation steers them with the flows *)
          if classifying t ctx && Hashtbl.mem t.suspicious_srcs pkt.Packet.src then
            pkt.Packet.suspicious <- true
        | _ -> ());
        Net.Continue);
  }

let watched_utilization t =
  List.fold_left
    (fun acc (from_, to_) -> Float.max acc (Net.utilization t.net ~from_ ~to_))
    0. t.watched

(* Max over watched egress links of offered load / capacity: what the
   traffic *asks* of the link on its default route, whether or not
   mitigation is currently shedding it. *)
let offered_utilization t =
  let now = Net.now t.net in
  let acc = ref 0. in
  for i = 0 to Array.length t.offered_ctr - 1 do
    let u = Window_counter.rate t.offered_ctr.(i) ~now /. t.offered_cap.(i) in
    if u > !acc then acc := u
  done;
  !acc

let watched_capacity t =
  List.fold_left
    (fun acc (from_, to_) ->
      match Ff_topology.Topology.find_link (Net.topology t.net) from_ to_ with
      | Some l -> acc +. l.Ff_topology.Topology.capacity
      | None -> acc)
    0. t.watched

let suspicious_aggregate_rate t now =
  Hashtbl.fold
    (fun _ r acc ->
      if r.suspicious > 0. && now -. r.last_seen < 1.0 then acc +. r.rate else acc)
    t.flows 0.

let refresh_fanout t now =
  Hashtbl.reset t.dst_fanout;
  Hashtbl.iter
    (fun _ r ->
      if now -. r.last_seen < 2.0 then begin
        let dst = int_of_float r.dst in
        Hashtbl.replace t.dst_fanout dst
          (1 + (try Hashtbl.find t.dst_fanout dst with Not_found -> 0))
      end)
    t.flows

let redraw_thresholds t now =
  if t.threshold_jitter > 0. && now >= t.next_draw then begin
    t.high_eff <- t.high_threshold -. Ff_util.Prng.float t.rng t.threshold_jitter;
    t.low_eff <- Float.min t.low_threshold (t.high_eff -. 0.03);
    t.next_draw <- now +. t.jitter_period
  end

let check t () =
  let now = Net.now t.net in
  refresh_fanout t now;
  redraw_thresholds t now;
  let util = watched_utilization t in
  let offered = offered_utilization t in
  (* Offered load drives both edges of the hysteresis: the alarm rises
     when either the link is congested or the demand routed over it would
     congest it; it clears only when the *demand* has subsided below
     [low_eff] — transmitted utilization falls the moment the dropper
     bites, which says nothing about the attacker. *)
  let driving = Float.max util offered in
  if not t.alarmed then begin
    if driving >= t.high_eff then begin
      t.alarmed <- true;
      t.calm_since <- None;
      t.on_alarm { switch = t.sw; attack = Packet.Lfa }
    end
  end
  else begin
    (* the attack has subsided when the suspicious flows themselves stop,
       not when mitigation hides the congestion *)
    let susp = suspicious_aggregate_rate t now in
    let calm = susp < t.clear_fraction *. watched_capacity t && driving < t.low_eff in
    match (calm, t.calm_since) with
    | false, _ -> t.calm_since <- None
    | true, None -> t.calm_since <- Some now
    | true, Some since ->
      if now -. since >= t.clear_hold then begin
        t.alarmed <- false;
        t.calm_since <- None;
        Hashtbl.iter (fun _ r -> r.suspicious <- 0.) t.flows;
        Hashtbl.reset t.suspicious_srcs;
        t.on_clear { switch = t.sw; attack = Packet.Lfa }
      end
  end

let install net ~sw ~watched ?(check_period = 0.05) ?(high_threshold = 0.85)
    ?low_threshold ?(threshold_jitter = 0.) ?(jitter_period = 2.0) ?(seed = 0x1FA_D)
    ?(suspicious_rate = 1_500_000.) ?(min_age = 2.0) ?(clear_fraction = 0.1)
    ?(clear_hold = 3.0) ?(dst_flows_min = 8) ~on_alarm ~on_clear () =
  let low_threshold =
    match low_threshold with Some l -> l | None -> high_threshold -. 0.05
  in
  let n_nodes = Array.length (Net.switch net sw).Net.routes in
  let watched_idx = Array.make n_nodes (-1) in
  let egress = List.filter (fun (from_, _) -> from_ = sw) watched in
  let offered_ctr =
    Array.of_list (List.map (fun _ -> Window_counter.create ~width:offered_window) egress)
  in
  let offered_cap = Array.make (List.length egress) 1. in
  List.iteri
    (fun i (from_, to_) ->
      if to_ >= 0 && to_ < n_nodes then watched_idx.(to_) <- i;
      (match Ff_topology.Topology.find_link (Net.topology net) from_ to_ with
      | Some l -> offered_cap.(i) <- Float.max 1. l.Ff_topology.Topology.capacity
      | None -> ()))
    egress;
  let t =
    {
      net;
      sw;
      watched;
      high_threshold;
      low_threshold;
      suspicious_rate;
      min_age;
      clear_fraction;
      clear_hold;
      dst_flows_min;
      flows = Hashtbl.create 256;
      suspicious_srcs = Hashtbl.create 32;
      dst_fanout = Hashtbl.create 32;
      watched_idx;
      offered_ctr;
      offered_cap;
      threshold_jitter;
      jitter_period;
      rng = Ff_util.Prng.create ~seed:(seed lxor (sw * 0x9E3779B9));
      high_eff = high_threshold;
      low_eff = low_threshold;
      next_draw = 0.;
      alarmed = false;
      calm_since = None;
      marks = 0;
      on_alarm;
      on_clear;
    }
  in
  Net.add_stage net ~sw (stage t);
  Engine.every (Net.engine net) ~period:check_period (check t);
  t

let alarmed t = t.alarmed
let current_high_threshold t = t.high_eff

let suspicious_flows t =
  Hashtbl.fold (fun f r acc -> if r.suspicious > 0. then f :: acc else acc) t.flows []
  |> List.sort compare

let is_suspicious_flow t f =
  match Hashtbl.find_opt t.flows f with Some r -> r.suspicious > 0. | None -> false

let is_suspicious_source t s = Hashtbl.mem t.suspicious_srcs s

let tracked_flows t = Hashtbl.length t.flows
let marks t = t.marks

let flow_rate t f = match Hashtbl.find_opt t.flows f with Some r -> r.rate | None -> 0.
