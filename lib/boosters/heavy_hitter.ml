module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Hashpipe = Ff_dataplane.Hashpipe
module Prng = Ff_util.Prng

type t = {
  net : Net.t;
  sw : int;
  epoch : float;
  threshold_bps : float;
  key_of : Packet.t -> int;
  pipe : Hashpipe.t;
  (* Hardening knobs (all inert at 0., keeping the default booster
     bit-identical): [epoch_jitter] perturbs each epoch's length by a
     uniform factor in [1-j, 1+j] so an epoch-timing adversary cannot
     predict the measurement boundaries; [threshold_jitter] shrinks the
     effective per-epoch threshold by up to that fraction so a hugger
     cannot sit just under it; [rotate_period] > 0 re-salts the HashPipe
     hash at the first epoch boundary after each period elapses, so
     probed collisions go stale within about an epoch. Rotating exactly
     at the boundary — after the offender scan and the reset — means a
     rotation never touches an epoch's accounting; mid-epoch reseeding
     would remap every live key and the resulting eviction churn loses
     counts faster than the attack does. *)
  epoch_jitter : float;
  threshold_jitter : float;
  rotate_period : float;
  (* [src_hold] > 0 makes offender marking sticky by *source*: any packet
     matching the offender list also brands its sender, and everything
     from a branded sender stays suspicious for [src_hold] seconds
     (refreshed on re-offense). Detection has an inherent one-epoch
     latency, so without this a patient attacker gets a free epoch of
     damage out of every fresh flow key; with it, a burned bot stays
     policed no matter how its flows are re-keyed or re-hashed. *)
  src_hold : float;
  held : (int, float) Hashtbl.t;
  rng : Prng.t;
  mutable next_rotate : float;
  mutable threshold_eff : float;
  mutable offenders : int list;
  mutable alarmed : bool;
  mutable epochs : int;
  mutable rotations : int;
  on_alarm : Lfa_detector.alarm -> unit;
  on_clear : Lfa_detector.alarm -> unit;
}

let stage t =
  {
    Net.stage_name = "heavy-hitter";
    process =
      (fun _ctx pkt ->
        (match pkt.Packet.payload with
        | Packet.Data ->
          Hashpipe.update t.pipe ~key:(t.key_of pkt) ~weight:(float_of_int pkt.Packet.size)
        | _ -> ());
        Net.Continue);
  }

let epoch_tick t () =
  (* bytes accumulated over one epoch -> bits/s *)
  let threshold_bytes = t.threshold_eff *. t.epoch /. 8. in
  let heavy = Hashpipe.heavy_hitters t.pipe ~threshold:threshold_bytes in
  t.offenders <- List.map fst heavy;
  t.epochs <- t.epochs + 1;
  (* while any source is still branded, the mitigation must stay armed —
     clearing the alarm would switch the dropper off mid-hold *)
  let holding =
    t.src_hold > 0.
    && Hashtbl.fold (fun _ until acc -> acc || until > Net.now t.net) t.held false
  in
  (match (heavy, t.alarmed) with
  | _ :: _, false ->
    t.alarmed <- true;
    t.on_alarm { Lfa_detector.switch = t.sw; attack = Packet.Volumetric }
  | [], true when not holding ->
    t.alarmed <- false;
    t.on_clear { Lfa_detector.switch = t.sw; attack = Packet.Volumetric }
  | _ -> ());
  if t.threshold_jitter > 0. then
    t.threshold_eff <- t.threshold_bps *. (1. -. Prng.float t.rng t.threshold_jitter);
  Hashpipe.reset t.pipe;
  if t.rotate_period > 0. then begin
    let now = Net.now t.net in
    if now >= t.next_rotate then begin
      t.rotations <- t.rotations + 1;
      t.next_rotate <- now +. t.rotate_period;
      Hashpipe.reseed t.pipe (Prng.int t.rng 0x3FFFFFFF)
    end
  end

let install net ~sw ?(epoch = 1.0) ?(stages = 4) ?(slots = 64) ?(threshold_bps = 4_000_000.)
    ?key_of ?(epoch_jitter = 0.) ?(threshold_jitter = 0.) ?(rotate_period = 0.)
    ?(src_hold = 0.) ?(seed = 0x44_11) ~on_alarm ~on_clear () =
  let key_of = match key_of with Some f -> f | None -> fun (p : Packet.t) -> p.Packet.flow in
  let t =
    {
      net;
      sw;
      epoch;
      threshold_bps;
      key_of;
      pipe = Hashpipe.create ~stages ~slots_per_stage:slots ();
      epoch_jitter;
      threshold_jitter;
      rotate_period;
      src_hold;
      held = Hashtbl.create 16;
      rng = Prng.create ~seed:(seed lxor (sw * 0x45D9F3B));
      next_rotate = rotate_period;
      threshold_eff = threshold_bps;
      offenders = [];
      alarmed = false;
      epochs = 0;
      rotations = 0;
      on_alarm;
      on_clear;
    }
  in
  Net.add_stage net ~sw (stage t);
  let engine = Net.engine net in
  if epoch_jitter <= 0. then Engine.every engine ~period:epoch (epoch_tick t)
  else begin
    (* Jittered epochs can't ride [Engine.every]'s fixed period: each tick
       draws the next epoch length, so the chain reschedules itself. *)
    let rec tick () =
      epoch_tick t ();
      let f = 1. -. t.epoch_jitter +. Prng.float t.rng (2. *. t.epoch_jitter) in
      Engine.after engine ~delay:(t.epoch *. f) tick
    in
    Engine.after engine ~delay:epoch tick
  end;
  t

let top t ~k =
  let all = Hashpipe.heavy_hitters t.pipe ~threshold:0. in
  List.filteri (fun i _ -> i < k) all

let offenders t = t.offenders
let alarmed t = t.alarmed
let epochs t = t.epochs
let rotations t = t.rotations
let current_threshold t = t.threshold_eff

let mark_offenders_stage t =
  {
    Net.stage_name = "hh-marker";
    process =
      (fun _ctx pkt ->
        (match pkt.Packet.payload with
        | Packet.Data ->
          let offender = List.mem (t.key_of pkt) t.offenders in
          if offender then begin
            pkt.Packet.suspicious <- true;
            if t.src_hold > 0. then
              Hashtbl.replace t.held pkt.Packet.src (Net.now t.net +. t.src_hold)
          end
          else if t.src_hold > 0. then begin
            match Hashtbl.find_opt t.held pkt.Packet.src with
            | Some until when Net.now t.net < until -> pkt.Packet.suspicious <- true
            | Some _ -> Hashtbl.remove t.held pkt.Packet.src
            | None -> ()
          end
        | _ -> ());
        Net.Continue);
  }
