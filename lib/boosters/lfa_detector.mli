(** LFA detection booster (paper section 4.1, "LFA detection").

    Detects (a) high load on its watched links and (b) persistent, low-rate
    flows — the Crossfire signature — by maintaining per-flow state on
    every data packet (Dapper/Blink-style TCP monitoring, simplified).

    When the watched utilization crosses [high_threshold] the detector
    raises an alarm (wired to the mode protocol by the orchestrator). While
    the alarm is up, the per-packet stage marks packets of flows older than
    [min_age] whose rate is below [suspicious_rate] as suspicious; the mark
    is what mitigation boosters (reroute, dropper) act on downstream.

    Hysteresis is measured on the {e offered} load — bytes whose default
    route crosses a watched link, counted in the detector stage before
    mitigation polices or reroutes them — not on the transmitted
    utilization alone: once the dropper bites, transmitted utilization
    collapses and would clear the alarm while the attacker is still
    blasting, re-alarming the moment mitigation lifts (the oscillation
    the paper warns about, and exactly what a threshold-hugging
    adversary farms). The all-clear additionally requires the aggregate
    rate of currently suspicious flows below [clear_fraction] of the
    watched capacity, offered load below [low_threshold], and both held
    for [clear_hold] seconds.

    Against adaptive threshold-huggers the effective alarm threshold can
    be randomized: with [threshold_jitter] > 0 it is redrawn uniformly
    from [high_threshold - threshold_jitter, high_threshold] every
    [jitter_period] seconds (seeded, deterministic), denying the
    attacker a stable safe operating point. The default (0.) is
    bit-identical to the unhardened detector. *)

type t

type alarm = { switch : int; attack : Ff_dataplane.Packet.attack_kind }

val install :
  Ff_netsim.Net.t ->
  sw:int ->
  watched:(int * int) list ->
  ?check_period:float ->
  ?high_threshold:float ->
  ?low_threshold:float ->
  ?threshold_jitter:float ->
  ?jitter_period:float ->
  ?seed:int ->
  ?suspicious_rate:float ->
  ?min_age:float ->
  ?clear_fraction:float ->
  ?clear_hold:float ->
  ?dst_flows_min:int ->
  on_alarm:(alarm -> unit) ->
  on_clear:(alarm -> unit) ->
  unit ->
  t
(** [watched] are directed links [(from, to)] whose utilization this
    detector guards (its own egress links toward the critical core).
    Defaults: check every 50 ms, alarm above 0.85 utilization, suspicious
    below 1.5 Mb/s after 2 s of age {e and} at least [dst_flows_min] = 8
    live flows converging on the same destination (the Crossfire fan-in —
    this is what keeps congested-but-legitimate flows out of the suspicious
    set), clear when suspicious traffic is under 0.1 of watched capacity
    for 3 s. *)

val alarmed : t -> bool

val offered_utilization : t -> float
(** Max over watched egress links of (offered load / capacity) over the
    last second — the pre-mitigation demand the hysteresis runs on. *)

val current_high_threshold : t -> float
(** The effective (possibly jittered) alarm threshold in force now. *)

val suspicious_flows : t -> int list
val is_suspicious_flow : t -> int -> bool
val is_suspicious_source : t -> int -> bool
val tracked_flows : t -> int
val marks : t -> int
(** Packets marked suspicious so far. *)

val flow_rate : t -> int -> float
(** Estimated rate of a tracked flow, bits/s (0. if unknown). *)
