module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Sync = Ff_modes.Sync

let instances = ref 0

type t = {
  id : int;
  net : Net.t;
  ingresses : int list;
  threshold_bps : float;
  counters : (int * int, Ff_util.Stats.Window_counter.t) Hashtbl.t; (* (sw, dst) *)
  mutable sync : Sync.t option;
  mutable offenders : int list;
  mutable alarmed : bool;
  on_alarm : Lfa_detector.alarm -> unit;
  on_clear : Lfa_detector.alarm -> unit;
}

let counter t sw dst =
  match Hashtbl.find_opt t.counters (sw, dst) with
  | Some c -> c
  | None ->
    let c = Ff_util.Stats.Window_counter.create ~width:1.0 in
    Hashtbl.replace t.counters (sw, dst) c;
    c

let local_rate t ~sw ~dst =
  match Hashtbl.find_opt t.counters (sw, dst) with
  | None -> 0.
  | Some c -> Ff_util.Stats.Window_counter.rate c ~now:(Net.now t.net) *. 8.

let local_view t ~sw =
  Hashtbl.fold
    (fun (s, dst) _ acc -> if s = sw then (dst, local_rate t ~sw ~dst) :: acc else acc)
    t.counters []

let counting_stage t =
  {
    Net.stage_name = Printf.sprintf "nw-hh-counter-%d" t.id;
    process =
      (fun ctx pkt ->
        (match pkt.Packet.payload with
        | Packet.Data ->
          let sw = ctx.Net.sw.Net.sw_id in
          (* count at the flow's ingress only, to avoid double counting *)
          if
            List.mem sw t.ingresses
            && Net.access_switch t.net ~host:pkt.Packet.src = sw
          then
            Ff_util.Stats.Window_counter.add (counter t sw pkt.Packet.dst) ~now:(Net.now t.net)
              (float_of_int pkt.Packet.size)
        | _ -> ());
        Net.Continue);
  }

let check t () =
  match t.sync with
  | None -> ()
  | Some sync ->
    (* any ingress's global view suffices; take the union for robustness *)
    let over = Hashtbl.create 8 in
    List.iter
      (fun sw ->
        List.iter
          (fun (dst, rate) -> if rate >= t.threshold_bps then Hashtbl.replace over dst ())
          (Sync.global_view sync ~sw))
      t.ingresses;
    t.offenders <- List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) over []);
    let detector = match t.ingresses with sw :: _ -> sw | [] -> 0 in
    match (t.offenders, t.alarmed) with
    | _ :: _, false ->
      t.alarmed <- true;
      t.on_alarm { Lfa_detector.switch = detector; attack = Packet.Volumetric }
    | [], true ->
      t.alarmed <- false;
      t.on_clear { Lfa_detector.switch = detector; attack = Packet.Volumetric }
    | _ -> ()

let install net ~ingresses ?(check_period = 0.5) ?(sync_period = 0.25)
    ?(threshold_bps = 6_000_000.) ?(sync_threshold_bps = 100_000.) ?probe_class ~on_alarm
    ~on_clear () =
  incr instances;
  let t =
    {
      id = !instances;
      net;
      ingresses;
      threshold_bps;
      counters = Hashtbl.create 64;
      sync = None;
      offenders = [];
      alarmed = false;
      on_alarm;
      on_clear;
    }
  in
  List.iter (fun sw -> Net.add_stage net ~sw (counting_stage t)) ingresses;
  let probe_class = match probe_class with Some c -> c | None -> 100 + t.id in
  let sync =
    Sync.create net ~participants:ingresses ~period:sync_period
      ~local_view:(fun ~sw -> local_view t ~sw)
      ~threshold:sync_threshold_bps ~probe_class ()
  in
  t.sync <- Some sync;
  Engine.every (Net.engine net) ~period:check_period (check t);
  t

let global_rate t ~sw ~dst =
  match t.sync with None -> 0. | Some sync -> Sync.global_value sync ~sw ~key:dst

let offenders t = t.offenders
let alarmed t = t.alarmed

let sync_probes t = match t.sync with None -> 0 | Some s -> Sync.probes_sent s
