module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet

type t = {
  mode : string;
  tolerance : int;
  learning_weight : float;
  expected : (int, float) Hashtbl.t; (* src -> EWMA of arriving TTL *)
  mutable filtered : int;
}

let stage t =
  let mode_key = Common.mode_key t.mode in
  {
    Net.stage_name = "hop-count-filter";
    process =
      (fun ctx pkt ->
        match pkt.Packet.payload with
        | Packet.Data -> (
          let ttl = float_of_int pkt.Packet.ttl in
          match Hashtbl.find_opt t.expected pkt.Packet.src with
          | None ->
            Hashtbl.replace t.expected pkt.Packet.src ttl;
            Net.Continue
          | Some exp_ttl ->
            let deviates = Float.abs (ttl -. exp_ttl) > float_of_int t.tolerance in
            if deviates then
              if Common.mode_on ctx.Net.sw mode_key then begin
                t.filtered <- t.filtered + 1;
                Net.Drop "hcf-spoofed"
              end
              else Net.Continue
            else begin
              (* reinforcement-only learning (NetHCF's defense against
                 poisoning): deviating packets never move the estimate, so
                 a spoofed flood cannot drag a source's fingerprint toward
                 itself and get the legitimate owner filtered; slow
                 in-tolerance path changes still track *)
              Hashtbl.replace t.expected pkt.Packet.src
                ((t.learning_weight *. ttl) +. ((1. -. t.learning_weight) *. exp_ttl));
              Net.Continue
            end)
        | _ -> Net.Continue);
  }

let install net ~sw ?(mode = Common.mode_hcf) ?(tolerance = 2) ?(learning_weight = 0.3) () =
  let t =
    { mode; tolerance; learning_weight; expected = Hashtbl.create 64; filtered = 0 }
  in
  Net.add_stage net ~sw (stage t);
  t

let expected_ttl t ~src = Hashtbl.find_opt t.expected src
let filtered t = t.filtered
let learned_sources t = Hashtbl.length t.expected
