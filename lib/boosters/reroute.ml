module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet

type entry = {
  mutable round : int;
  mutable metric : float;
  mutable next_hop : int;
  mutable updated : float;
}

type t = {
  net : Net.t;
  roots : int list;
  probe_interval : float;
  probe_ttl : int;
  entry_timeout : float;
  mode : string;
  reroute_all : bool;
  tables : (int, (int, entry) Hashtbl.t) Hashtbl.t; (* sw -> dst -> entry *)
  mutable round : int;
  mutable probes_sent : int;
  mutable reroutes : int;
}

let table t sw =
  match Hashtbl.find t.tables sw with
  | tbl -> tbl
  | exception Not_found ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.replace t.tables sw tbl;
    tbl

let make_probe t ~dst ~round ~max_util ~hops =
  t.probes_sent <- t.probes_sent + 1;
  Packet.make ~src:dst ~dst ~flow:0 ~birth:(Net.now t.net)
    ~payload:(Packet.Util_probe { dst; round; max_util; hops })
    ()

(* Probe handling at a switch: fold in the utilization of the reverse link
   the probe just crossed, update the table, and re-flood improvements. *)
let handle_probe t ctx ~dst ~round ~max_util ~hops =
  let sw = ctx.Net.sw.Net.sw_id in
  let from_neighbor = ctx.Net.in_port in
  if from_neighbor < 0 then Net.Absorb
  else begin
    let here_util = Net.utilization t.net ~from_:sw ~to_:from_neighbor in
    let metric = Float.max max_util here_util in
    let tbl = table t sw in
    let now = ctx.Net.now in
    let improved =
      match Hashtbl.find_opt tbl dst with
      | None ->
        Hashtbl.replace tbl dst { round; metric; next_hop = from_neighbor; updated = now };
        true
      | Some e ->
        if round > e.round then begin
          e.round <- round;
          e.metric <- metric;
          e.next_hop <- from_neighbor;
          e.updated <- now;
          true
        end
        else if round = e.round && metric < e.metric -. 1e-9 then begin
          e.metric <- metric;
          e.next_hop <- from_neighbor;
          e.updated <- now;
          true
        end
        else false
    in
    if improved && hops < t.probe_ttl then
      Net.flood_from_switch t.net ~sw ~except:[ from_neighbor ] (fun () ->
          make_probe t ~dst ~round ~max_util:metric ~hops:(hops + 1));
    Net.Absorb
  end

let fresh_entry t ~sw ~dst =
  match Hashtbl.find_opt (table t sw) dst with
  | Some e when Net.now t.net -. e.updated <= t.entry_timeout -> Some e
  | _ -> None

let stage t =
  let mode_key = Common.mode_key t.mode in
  (* Per-switch "reroutes" metric handles: the registry lookup allocates a
     string+scope key record, too costly per rerouted packet. Handles are
     cached against the metrics registry they came from ([==] check), so a
     re-attached registry invalidates them naturally. *)
  let ctrs : (int, Ff_obs.Metrics.t * Ff_obs.Metrics.Counter.t) Hashtbl.t = Hashtbl.create 8 in
  let resolve_ctr m sw =
    let c = Ff_obs.Metrics.counter m ~scope:(Ff_obs.Metrics.Switch sw) "reroutes" in
    Hashtbl.replace ctrs sw (m, c);
    c
  in
  let bump_reroutes sw =
    match Net.metrics t.net with
    | None -> ()
    | Some m ->
      let c =
        match Hashtbl.find ctrs sw with
        | m', c when m' == m -> c
        | _ -> resolve_ctr m sw
        | exception Not_found -> resolve_ctr m sw
      in
      Ff_obs.Metrics.Counter.incr c
  in
  {
    Net.stage_name = "reroute";
    process =
      (fun ctx pkt ->
        match pkt.Packet.payload with
        | Packet.Util_probe { dst; round; max_util; hops } ->
          handle_probe t ctx ~dst ~round ~max_util ~hops
        | Packet.Data | Packet.Traceroute_probe _ ->
          let sw = ctx.Net.sw in
          if
            Common.mode_on sw mode_key
            && (t.reroute_all || pkt.Packet.suspicious)
          then begin
            (* inlined [fresh_entry], exception-based so the steady state
               allocates nothing *)
            match Hashtbl.find t.tables sw.Net.sw_id with
            | exception Not_found -> Net.Continue
            | tbl -> (
              match Hashtbl.find tbl pkt.Packet.dst with
              | exception Not_found -> Net.Continue
              | e
                when ctx.Net.now -. e.updated <= t.entry_timeout
                     && e.next_hop <> ctx.Net.in_port ->
                (* deviate from the pinned table only if the probe metric is
                   actually better than nothing; always prefer probe path for
                   marked traffic *)
                t.reroutes <- t.reroutes + 1;
                if Net.obs_active t.net then
                  Net.obs_emit t.net
                    (Ff_obs.Event.Reroute
                       { sw = sw.Net.sw_id; dst = pkt.Packet.dst; next_hop = e.next_hop });
                bump_reroutes sw.Net.sw_id;
                Net.Forward e.next_hop
              | _ -> Net.Continue)
          end
          else Net.Continue
        | _ -> Net.Continue);
  }

(* Probe origination at each root's access switch, gated on the mode. *)
let start_probing t =
  List.iter
    (fun root ->
      let access = Net.access_switch t.net ~host:root in
      Engine.every (Net.engine t.net) ~period:t.probe_interval (fun () ->
          if Common.mode_active (Net.switch t.net access) t.mode then begin
            t.round <- t.round + 1;
            (* seed the access switch's own entry so hosts behind it work *)
            Hashtbl.replace (table t access) root
              { round = t.round; metric = 0.; next_hop = root; updated = Net.now t.net };
            Net.flood_from_switch t.net ~sw:access ~except:[] (fun () ->
                make_probe t ~dst:root ~round:t.round ~max_util:0. ~hops:1)
          end))
    t.roots

let install net ~roots ?(probe_interval = 0.05) ?(probe_ttl = 8) ?(entry_timeout = 0.5)
    ?(mode = Common.mode_reroute) ?(reroute_all = false) () =
  let t =
    {
      net;
      roots;
      probe_interval;
      probe_ttl;
      entry_timeout;
      mode;
      reroute_all;
      tables = Hashtbl.create 16;
      round = 0;
      probes_sent = 0;
      reroutes = 0;
    }
  in
  List.iter (fun sw -> Net.add_stage net ~sw (stage t)) (Net.switch_ids net);
  start_probing t;
  t

let best_next_hop t ~sw ~dst =
  Option.map (fun e -> e.next_hop) (fresh_entry t ~sw ~dst)

let best_metric t ~sw ~dst = Option.map (fun e -> e.metric) (fresh_entry t ~sw ~dst)

let probes_sent t = t.probes_sent
let reroutes t = t.reroutes
