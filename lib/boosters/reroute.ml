module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Int_table = Ff_util.Int_table

(* Entries live in a struct-of-arrays store indexed through an Int_table
   keyed [sw * n_nodes + dst]: the per-packet lookup is one integer-keyed
   probe plus flat array reads, where the old sw->(dst->entry) Hashtbl
   nesting cost two polymorphic-hash probes and a mixed record whose
   float fields boxed on every probe update. Entries are never deleted
   (matching the old tables); staleness is judged by [e_updated]. *)
type t = {
  net : Net.t;
  roots : int list;
  probe_interval : float;
  probe_ttl : int;
  entry_timeout : float;
  mode : string;
  reroute_all : bool;
  n_nodes : int;
  slots : Int_table.t; (* sw * n_nodes + dst -> index into the arrays *)
  mutable e_round : int array;
  mutable e_next : int array;
  mutable e_metric : float array;
  mutable e_updated : float array;
  mutable e_len : int;
  mutable round : int;
  mutable probes_sent : int;
  mutable reroutes : int;
}

let alloc_entry t =
  let i = t.e_len in
  if i = Array.length t.e_round then begin
    let ncap = max 16 (2 * i) in
    let grow_i a =
      let n = Array.make ncap 0 in
      Array.blit a 0 n 0 i;
      n
    in
    let grow_f a =
      let n = Array.make ncap 0. in
      Array.blit a 0 n 0 i;
      n
    in
    t.e_round <- grow_i t.e_round;
    t.e_next <- grow_i t.e_next;
    t.e_metric <- grow_f t.e_metric;
    t.e_updated <- grow_f t.e_updated
  end;
  t.e_len <- i + 1;
  i

let entry_index t ~sw ~dst =
  if dst < 0 || dst >= t.n_nodes then -1
  else Int_table.get t.slots ((sw * t.n_nodes) + dst) ~default:(-1)

let make_probe t ~dst ~round ~max_util ~hops =
  t.probes_sent <- t.probes_sent + 1;
  Packet.make_control ~src:dst ~dst ~flow:0 ~birth:(Net.now t.net)
    ~payload:(Packet.Util_probe { dst; round; max_util; hops })

(* Probe handling at a switch: fold in the utilization of the reverse link
   the probe just crossed, update the table, and re-flood improvements. *)
let handle_probe t ctx ~dst ~round ~max_util ~hops =
  let sw = ctx.Net.sw.Net.sw_id in
  let from_neighbor = ctx.Net.in_port in
  if from_neighbor < 0 || dst < 0 || dst >= t.n_nodes then Net.Absorb
  else begin
    let here_util = Net.utilization t.net ~from_:sw ~to_:from_neighbor in
    let metric = Float.max max_util here_util in
    let now = Net.now ctx.Net.net in
    let idx = entry_index t ~sw ~dst in
    let improved =
      if idx < 0 then begin
        let i = alloc_entry t in
        Int_table.set t.slots ((sw * t.n_nodes) + dst) i;
        t.e_round.(i) <- round;
        t.e_metric.(i) <- metric;
        t.e_next.(i) <- from_neighbor;
        t.e_updated.(i) <- now;
        true
      end
      else if round > t.e_round.(idx) then begin
        t.e_round.(idx) <- round;
        t.e_metric.(idx) <- metric;
        t.e_next.(idx) <- from_neighbor;
        t.e_updated.(idx) <- now;
        true
      end
      else if round = t.e_round.(idx) && metric < t.e_metric.(idx) -. 1e-9 then begin
        t.e_metric.(idx) <- metric;
        t.e_next.(idx) <- from_neighbor;
        t.e_updated.(idx) <- now;
        true
      end
      else false
    in
    if improved && hops < t.probe_ttl then
      Net.flood_from_switch t.net ~sw ~except:[ from_neighbor ] (fun () ->
          make_probe t ~dst ~round ~max_util:metric ~hops:(hops + 1));
    Net.Absorb
  end

(* Index of a live (non-timed-out) entry, or -1. *)
let fresh_index t ~sw ~dst =
  let idx = entry_index t ~sw ~dst in
  if idx >= 0 && Net.now t.net -. t.e_updated.(idx) <= t.entry_timeout then idx
  else -1

let stage t =
  let mode_key = Common.mode_key t.mode in
  (* Per-switch "reroutes" metric handles: the registry lookup allocates a
     string+scope key record, too costly per rerouted packet. Handles are
     cached against the metrics registry they came from ([==] check), so a
     re-attached registry invalidates them naturally. *)
  let ctrs : (int, Ff_obs.Metrics.t * Ff_obs.Metrics.Counter.t) Hashtbl.t = Hashtbl.create 8 in
  let resolve_ctr m sw =
    let c = Ff_obs.Metrics.counter m ~scope:(Ff_obs.Metrics.Switch sw) "reroutes" in
    Hashtbl.replace ctrs sw (m, c);
    c
  in
  let bump_reroutes sw =
    match Net.metrics t.net with
    | None -> ()
    | Some m ->
      let c =
        match Hashtbl.find ctrs sw with
        | m', c when m' == m -> c
        | _ -> resolve_ctr m sw
        | exception Not_found -> resolve_ctr m sw
      in
      Ff_obs.Metrics.Counter.incr c
  in
  {
    Net.stage_name = "reroute";
    process =
      (fun ctx pkt ->
        match pkt.Packet.payload with
        | Packet.Util_probe { dst; round; max_util; hops } ->
          handle_probe t ctx ~dst ~round ~max_util ~hops
        | Packet.Data | Packet.Traceroute_probe _ ->
          let sw = ctx.Net.sw in
          if
            Common.mode_on sw mode_key
            && (t.reroute_all || pkt.Packet.suspicious)
          then begin
            let idx = entry_index t ~sw:sw.Net.sw_id ~dst:pkt.Packet.dst in
            if
              idx >= 0
              && Net.now ctx.Net.net -. t.e_updated.(idx) <= t.entry_timeout
              && t.e_next.(idx) <> ctx.Net.in_port
            then begin
              (* deviate from the pinned table only if the probe metric is
                 actually better than nothing; always prefer probe path for
                 marked traffic *)
              t.reroutes <- t.reroutes + 1;
              if Net.obs_active t.net then
                Net.obs_emit t.net
                  (Ff_obs.Event.Reroute
                     { sw = sw.Net.sw_id; dst = pkt.Packet.dst; next_hop = t.e_next.(idx) });
              bump_reroutes sw.Net.sw_id;
              Net.Forward t.e_next.(idx)
            end
            else Net.Continue
          end
          else Net.Continue
        | _ -> Net.Continue);
  }

(* Probe origination at each root's access switch, gated on the mode. *)
let start_probing t =
  List.iter
    (fun root ->
      let access = Net.access_switch t.net ~host:root in
      Engine.every (Net.engine t.net) ~period:t.probe_interval (fun () ->
          if Common.mode_active (Net.switch t.net access) t.mode then begin
            t.round <- t.round + 1;
            (* seed the access switch's own entry so hosts behind it work *)
            let idx =
              match entry_index t ~sw:access ~dst:root with
              | -1 ->
                let i = alloc_entry t in
                Int_table.set t.slots ((access * t.n_nodes) + root) i;
                i
              | i -> i
            in
            t.e_round.(idx) <- t.round;
            t.e_metric.(idx) <- 0.;
            t.e_next.(idx) <- root;
            t.e_updated.(idx) <- Net.now t.net;
            Net.flood_from_switch t.net ~sw:access ~except:[] (fun () ->
                make_probe t ~dst:root ~round:t.round ~max_util:0. ~hops:1)
          end))
    t.roots

let install net ~roots ?(probe_interval = 0.05) ?(probe_ttl = 8) ?(entry_timeout = 0.5)
    ?(mode = Common.mode_reroute) ?(reroute_all = false) () =
  let t =
    {
      net;
      roots;
      probe_interval;
      probe_ttl;
      entry_timeout;
      mode;
      reroute_all;
      n_nodes = Ff_topology.Topology.num_nodes (Net.topology net);
      slots = Int_table.create ~capacity:64 ();
      e_round = [||];
      e_next = [||];
      e_metric = [||];
      e_updated = [||];
      e_len = 0;
      round = 0;
      probes_sent = 0;
      reroutes = 0;
    }
  in
  List.iter (fun sw -> Net.add_stage net ~sw (stage t)) (Net.switch_ids net);
  start_probing t;
  t

let best_next_hop t ~sw ~dst =
  let idx = fresh_index t ~sw ~dst in
  if idx < 0 then None else Some t.e_next.(idx)

let best_metric t ~sw ~dst =
  let idx = fresh_index t ~sw ~dst in
  if idx < 0 then None else Some t.e_metric.(idx)

let probes_sent t = t.probes_sent
let reroutes t = t.reroutes
