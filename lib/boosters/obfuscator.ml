module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet

type t = {
  mode : string;
  mutable virtual_path : src:int -> dst:int -> int list option;
  mutable obfuscated : int;
}

let stage t =
  let mode_key = Common.mode_key t.mode in
  {
    Net.stage_name = "obfuscator";
    process =
      (fun ctx pkt ->
        (match pkt.Packet.payload with
        | Packet.Traceroute_probe { probe_ttl; _ }
          when pkt.Packet.ttl = 1 && Common.mode_on ctx.Net.sw mode_key -> (
          (* the probe dies here: pre-compute the virtual responder the TTL
             stage will put in the time-exceeded reply *)
          match t.virtual_path ~src:pkt.Packet.src ~dst:pkt.Packet.dst with
          | Some path when List.length path > probe_ttl ->
            let responder = List.nth path probe_ttl in
            Packet.tag pkt "obfuscated_responder" (float_of_int responder);
            t.obfuscated <- t.obfuscated + 1
          | _ -> ())
        | _ -> ());
        Net.Continue);
  }

let install net ?(mode = Common.mode_obfuscate) ~virtual_path () =
  let t = { mode; virtual_path; obfuscated = 0 } in
  List.iter (fun sw -> Net.add_stage ~front:true net ~sw (stage t)) (Net.switch_ids net);
  t

let obfuscated_replies t = t.obfuscated

let set_virtual_path t f = t.virtual_path <- f
