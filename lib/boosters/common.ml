(* Mode flags live in the switch's [vars] table under "mode:NAME" keys (the
   contract shared with Ff_modes.Protocol.refresh_vars). Composing that key
   with [^] on every packet was the single hottest allocation of the whole
   simulator, so the per-packet read path is [mode_on] over a key built once
   by [mode_key] at booster-install time. *)

let mode_key name = "mode:" ^ name

let mode_on (sw : Ff_netsim.Net.switch) key =
  match Hashtbl.find sw.Ff_netsim.Net.vars key with
  | v -> v > 0.
  | exception Not_found -> false

let mode_active (sw : Ff_netsim.Net.switch) name = mode_on sw (mode_key name)

let set_mode (sw : Ff_netsim.Net.switch) name on =
  Hashtbl.replace sw.Ff_netsim.Net.vars (mode_key name) (if on then 1. else 0.)

let mode_classify = "classify"
let mode_reroute = "reroute"
let mode_obfuscate = "obfuscate"
let mode_drop = "drop"
let mode_hcf = "hcf"
let mode_acl = "acl"
let mode_grl = "grl"
