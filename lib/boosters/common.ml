(* Mode flags live in two places kept in sync by the writers below: the
   switch's [vars] table under "mode:NAME" keys (the introspectable contract
   shared with Ff_modes.Protocol.refresh_vars) and the switch's interned
   [flags] bits. The per-packet read path used to hash the string key into
   [vars] on every packet at every boosted switch — three stages deep, that
   was a string hash per stage per hop — so [mode_key] now interns the name
   into a bit mask once at booster-install time and [mode_on] is one [land]. *)

let mode_key name = Ff_netsim.Net.flag_mask ("mode:" ^ name)

let mode_on (sw : Ff_netsim.Net.switch) key = Ff_netsim.Net.flag_on sw ~mask:key

let mode_active (sw : Ff_netsim.Net.switch) name = mode_on sw (mode_key name)

let set_mode (sw : Ff_netsim.Net.switch) name on =
  Hashtbl.replace sw.Ff_netsim.Net.vars ("mode:" ^ name) (if on then 1. else 0.);
  Ff_netsim.Net.set_flag sw ~mask:(mode_key name) on

let mode_classify = "classify"
let mode_reroute = "reroute"
let mode_obfuscate = "obfuscate"
let mode_drop = "drop"
let mode_hcf = "hcf"
let mode_acl = "acl"
let mode_grl = "grl"
let mode_syn_guard = "syn_guard"
