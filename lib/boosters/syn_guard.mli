(** CuckooGuard-style split-proxy SYN-flood booster.

    The {e data-plane agent} is a stage at the protected server's edge
    switch. While the [syn_guard] mode is active it:

    - absorbs every SYN toward the server and answers with a stateless
      SYN-cookie (a salted hash of the connection key — no per-SYN state,
      so the flood costs the defense nothing);
    - validates returning handshake acks against the cookie (current or
      previous secret, so rotation never invalidates in-flight
      handshakes), dropping forgeries (["bad-cookie"]);
    - admits each validated connection into a cuckoo-filter tracker
      ({!Ff_dataplane.Cuckoo}) and deletes it again on FIN — the explicit
      deletion exact-membership sketches cannot do;
    - drops data of flows the tracker does not know (["unverified-flow"]).

    The {e server-side agent} ({!attach_server_agent}) mirrors the edge
    switch's mode onto the listener's [trust_validated] flag, so a
    validated ack establishes without the server ever holding a half-open
    slot for it.

    Detection is a SYN-rate threshold toward the protected host, observed
    whether or not the mode is active; alarms carry
    [Packet.Synflood] and are wired to the mode protocol by
    [Orchestrator.deploy_synguard]. Hardening knobs mirror the other
    detectors: seeded threshold jitter and periodic cookie-secret
    rotation, both inert at their defaults. *)

type t

val install :
  Ff_netsim.Net.t ->
  sw:int ->
  protect:int ->
  ?tracker_capacity:int ->
  ?syn_threshold_pps:float ->
  ?check_period:float ->
  ?clear_hold:float ->
  ?threshold_jitter:float ->
  ?rotate_period:float ->
  ?seed:int ->
  on_alarm:(Lfa_detector.alarm -> unit) ->
  on_clear:(Lfa_detector.alarm -> unit) ->
  unit ->
  t
(** Install the data-plane agent at [sw], protecting host [protect].
    [syn_threshold_pps] (default 200) is the SYN rate that raises the
    alarm, checked every [check_period] (default 0.1 s) and cleared after
    [clear_hold] seconds below threshold. [threshold_jitter] > 0 redraws
    the effective threshold each check from
    [(1 - jitter) .. 1] × nominal; [rotate_period] > 0 rotates the cookie
    secret on that period (both default off and bit-inert). *)

val attach_server_agent : t -> Ff_netsim.Flow.Listener.t -> unit
(** Wire the server-side half: the listener's [trust_validated] flag
    follows the edge switch's [syn_guard] mode. *)

val tracker : t -> Ff_dataplane.Cuckoo.t
(** The verified-flow cuckoo filter (live — also the source of
    exact-member state transfer during repurposing). *)

val alarmed : t -> bool

val syn_rate : t -> float
(** SYN rate toward the protected host measured at the last check,
    packets/s. *)

val cookies_sent : t -> int
val validated : t -> int
val rejected : t -> int

val unverified_drops : t -> int
(** Data/ack packets dropped because their flow was not in the tracker. *)

val insert_failures : t -> int
(** Validated flows the tracker could not admit (table saturated). *)

val deletions : t -> int
(** Tracker entries removed by FIN. *)

val resource : t -> Ff_dataplane.Resource.t
(** The tracker's per-entry memory profile. *)
