module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet
module Meter = Ff_dataplane.Register.Meter

type t = {
  mode : string;
  rate_limit : float; (* bits/s *)
  burst : float; (* bytes *)
  drop_prob : float;
  rng : Ff_util.Prng.t;
  meters : (int, Meter.t) Hashtbl.t;
  mutable dropped : int;
}

let meter t flow =
  match Hashtbl.find t.meters flow with
  | m -> m
  | exception Not_found ->
    let m = Meter.create ~rate:(t.rate_limit /. 8.) ~burst:t.burst in
    Hashtbl.replace t.meters flow m;
    m

let stage t =
  let mode_key = Common.mode_key t.mode in
  {
    Net.stage_name = "dropper";
    process =
      (fun ctx pkt ->
        match pkt.Packet.payload with
        | Packet.Data when pkt.Packet.suspicious && Common.mode_on ctx.Net.sw mode_key ->
          let m = meter t pkt.Packet.flow in
          if not (Meter.allow m ~now:(Net.now ctx.Net.net) ~bytes:(float_of_int pkt.Packet.size)) then begin
            t.dropped <- t.dropped + 1;
            Net.Drop "suspicious-rate-limit"
          end
          else if t.drop_prob > 0. && Ff_util.Prng.float t.rng 1. < t.drop_prob then begin
            t.dropped <- t.dropped + 1;
            Net.Drop "illusion-of-success"
          end
          else Net.Continue
        | _ -> Net.Continue);
  }

let install net ~sw ?(mode = Common.mode_drop) ?(rate_limit = 500_000.) ?(burst = 12_000.)
    ?(drop_prob = 0.1) ?(seed = 42) () =
  let t =
    {
      mode;
      rate_limit;
      burst;
      drop_prob;
      rng = Ff_util.Prng.create ~seed:(seed + sw);
      meters = Hashtbl.create 64;
      dropped = 0;
    }
  in
  Net.add_stage net ~sw (stage t);
  t

let dropped t = t.dropped
let metered_flows t = Hashtbl.length t.meters
