module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Sketch = Ff_dataplane.Sketch
module Topology = Ff_topology.Topology
module Transfer = Ff_scaling.Transfer
module B = Ff_boosters

type hardening = {
  h_seed : int;
  h_threshold_jitter : float;
  h_jitter_period : float;
  h_epoch_jitter : float;
  h_hh_threshold_jitter : float;
  h_rotate_period : float;
  h_src_hold : float;
}

let default_hardening =
  {
    h_seed = 0xF1E7;
    h_threshold_jitter = 0.17;
    h_jitter_period = 2.0;
    h_epoch_jitter = 0.25;
    h_hh_threshold_jitter = 0.25;
    h_rotate_period = 0.4;
    h_src_hold = 12.0;
  }

type config = {
  high_threshold : float;
  suspicious_rate : float;
  min_age : float;
  dst_flows_min : int;
  check_period : float;
  clear_hold : float;
  probe_interval : float;
  region_ttl : int;
  min_dwell : float;
  anti_entropy : float;
  drop_rate_limit : float;
  drop_prob : float;
  hardening : hardening option;
}

let default_config =
  {
    high_threshold = 0.85;
    suspicious_rate = 1_500_000.;
    min_age = 1.0;
    dst_flows_min = 8;
    check_period = 0.05;
    clear_hold = 3.0;
    probe_interval = 0.05;
    region_ttl = 8;
    min_dwell = 1.0;
    anti_entropy = 0.5;
    drop_rate_limit = 400_000.;
    drop_prob = 0.1;
    hardening = None;
  }

(* Detector hardening args from the config; the unhardened triple matches
   [Lfa_detector.install]'s defaults so a [None] config stays
   bit-identical to the pre-hardening deploys. *)
let det_jitter config =
  match config.hardening with
  | None -> (0., 2.0, 0x1FA_D)
  | Some h -> (h.h_threshold_jitter, h.h_jitter_period, h.h_seed)

type t = {
  protocol : Ff_modes.Protocol.t;
  detector : B.Lfa_detector.t;
  reroute : B.Reroute.t;
  obfuscator : B.Obfuscator.t;
  droppers : B.Dropper.t list;
  suspect_sketch : Sketch.t;  (** per-source suspicious bytes, kept at [agg] *)
  victim_sketch : Sketch.t;  (** [victim_agg]'s copy, filled by state transfer *)
  mutable state_transfer : Transfer.t option;
}

let modes_for = function
  | Packet.Lfa ->
    [ B.Common.mode_classify; B.Common.mode_reroute; B.Common.mode_obfuscate;
      B.Common.mode_drop ]
  | Packet.Volumetric -> [ B.Common.mode_drop; B.Common.mode_hcf ]
  | Packet.Pulsing -> [ B.Common.mode_reroute; B.Common.mode_drop ]
  | Packet.Recon -> [ B.Common.mode_obfuscate ]
  | Packet.Synflood -> [ B.Common.mode_syn_guard ]

let deploy net ~landmarks ~default_plan ?(config = default_config) () =
  let lm : Topology.Fig2.landmarks = landmarks in
  let protocol =
    Ff_modes.Protocol.create net ~region_ttl:config.region_ttl ~min_dwell:config.min_dwell
      ~anti_entropy:config.anti_entropy ~modes_for ()
  in
  let watched =
    List.map
      (fun (l : Topology.link) ->
        if l.Topology.a = lm.Topology.Fig2.agg then (l.Topology.a, l.Topology.b)
        else (l.Topology.b, l.Topology.a))
      lm.Topology.Fig2.critical
  in
  (* The agg switch accumulates per-source suspicious bytes in a sketch;
     once the alarm fires and classification has had time to populate it,
     the sketch is shipped in-band to the victim-side aggregation switch
     (paper 3.4) so mitigation there starts from the upstream evidence
     instead of a cold table. *)
  let suspect_sketch = Sketch.create ~rows:3 ~cols:128 () in
  let victim_sketch = Sketch.create ~rows:3 ~cols:128 () in
  let self = ref None in
  let ship_sketch () =
    match !self with
    | Some t when t.state_transfer = None && Sketch.total suspect_sketch > 0. ->
      t.state_transfer <-
        Some
          (Transfer.send_sketch net ~src_sw:lm.Topology.Fig2.agg
             ~dst_sw:lm.Topology.Fig2.victim_agg ~sketch:suspect_sketch
             ~into:victim_sketch ())
    | _ -> ()
  in
  let threshold_jitter, jitter_period, h_seed = det_jitter config in
  let detector =
    B.Lfa_detector.install net ~sw:lm.Topology.Fig2.agg ~watched
      ~check_period:config.check_period ~high_threshold:config.high_threshold
      ~threshold_jitter ~jitter_period ~seed:h_seed
      ~suspicious_rate:config.suspicious_rate ~min_age:config.min_age
      ~clear_hold:config.clear_hold ~dst_flows_min:config.dst_flows_min
      ~on_alarm:(fun a ->
        Ff_modes.Protocol.raise_alarm protocol ~sw:a.B.Lfa_detector.switch a.B.Lfa_detector.attack;
        (* let the classify mode mark traffic for ~2 s before snapshotting *)
        Engine.after (Net.engine net) ~delay:2.0 ship_sketch)
      ~on_clear:(fun a ->
        Ff_modes.Protocol.clear_alarm protocol ~sw:a.B.Lfa_detector.switch a.B.Lfa_detector.attack)
      ()
  in
  (* after the detector's classifier, so marks are visible; before the
     dropper, so policed packets still count as evidence *)
  Net.add_stage net ~sw:lm.Topology.Fig2.agg
    {
      Net.stage_name = "suspect-sketch";
      process =
        (fun _ctx pkt ->
          (match pkt.Packet.payload with
          | Packet.Data when pkt.Packet.suspicious ->
            Sketch.add suspect_sketch pkt.Packet.src (float_of_int pkt.Packet.size)
          | _ -> ());
          Net.Continue);
    };
  (* dropping happens where classification happens, before rerouting can
     steer the packet away *)
  let droppers =
    [ B.Dropper.install net ~sw:lm.Topology.Fig2.agg ~rate_limit:config.drop_rate_limit
        ~drop_prob:config.drop_prob () ]
  in
  let reroute =
    B.Reroute.install net
      ~roots:(lm.Topology.Fig2.victim :: lm.Topology.Fig2.decoys)
      ~probe_interval:config.probe_interval ()
  in
  (* The virtual topology is the default-mode forwarding as it stands at
     deploy time. FastFlex's rerouting never rewrites the tables (it
     overrides forwarding per packet), so walking the tables always
     reconstructs the pre-attack path. *)
  let vcache : (int * int, int list option) Hashtbl.t = Hashtbl.create 64 in
  let virtual_path ~src ~dst =
    match Hashtbl.find_opt vcache (src, dst) with
    | Some p -> p
    | None ->
      let p =
        match Net.current_path net ~src ~dst with
        | Some _ as p -> p
        | None -> Ff_te.Solver.plan_path default_plan ~src ~dst
      in
      Hashtbl.replace vcache (src, dst) p;
      p
  in
  let obfuscator = B.Obfuscator.install net ~virtual_path () in
  let t =
    { protocol; detector; reroute; obfuscator; droppers; suspect_sketch;
      victim_sketch; state_transfer = None }
  in
  self := Some t;
  t

let suspect_sketch t = t.suspect_sketch
let victim_sketch t = t.victim_sketch
let state_transfer t = t.state_transfer

let dropped_packets t =
  List.fold_left (fun acc d -> acc + B.Dropper.dropped d) 0 t.droppers

let mode_log t = Ff_modes.Protocol.log t.protocol

type volumetric = {
  v_protocol : Ff_modes.Protocol.t;
  v_hh : B.Heavy_hitter.t;
  v_dropper : B.Dropper.t;
  v_hcf : B.Hop_count_filter.t;
}

let deploy_volumetric net ~sw ?(config = default_config) ?(threshold_bps = 4_000_000.) () =
  let protocol =
    Ff_modes.Protocol.create net ~region_ttl:config.region_ttl ~min_dwell:config.min_dwell
      ~anti_entropy:config.anti_entropy ~modes_for ()
  in
  let epoch_jitter, hh_threshold_jitter, rotate_period, src_hold, hh_seed =
    match config.hardening with
    | None -> (0., 0., 0., 0., 0x44_11)
    | Some h ->
      (h.h_epoch_jitter, h.h_hh_threshold_jitter, h.h_rotate_period, h.h_src_hold, h.h_seed)
  in
  let hh =
    B.Heavy_hitter.install net ~sw ~threshold_bps ~epoch_jitter
      ~threshold_jitter:hh_threshold_jitter ~rotate_period ~src_hold ~seed:hh_seed
      ~on_alarm:(fun a ->
        Ff_modes.Protocol.raise_alarm protocol ~sw:a.B.Lfa_detector.switch
          a.B.Lfa_detector.attack)
      ~on_clear:(fun a ->
        Ff_modes.Protocol.clear_alarm protocol ~sw:a.B.Lfa_detector.switch
          a.B.Lfa_detector.attack)
      ()
  in
  (* marking must precede policing in the stage pipeline *)
  Net.add_stage net ~sw (B.Heavy_hitter.mark_offenders_stage hh);
  let dropper =
    B.Dropper.install net ~sw ~rate_limit:config.drop_rate_limit ~drop_prob:config.drop_prob ()
  in
  let hcf = B.Hop_count_filter.install net ~sw () in
  { v_protocol = protocol; v_hh = hh; v_dropper = dropper; v_hcf = hcf }

type synguard = {
  sg_protocol : Ff_modes.Protocol.t;
  sg_guard : B.Syn_guard.t;
}

let deploy_synguard net ~sw ~protect ?(config = default_config)
    ?(tracker_capacity = 4096) ?(syn_threshold_pps = 200.) () =
  let protocol =
    Ff_modes.Protocol.create net ~region_ttl:config.region_ttl ~min_dwell:config.min_dwell
      ~anti_entropy:config.anti_entropy ~modes_for ()
  in
  let threshold_jitter, rotate_period, sg_seed =
    match config.hardening with
    | None -> (0., 0., 0x5EED)
    | Some h -> (h.h_threshold_jitter, h.h_rotate_period, h.h_seed)
  in
  let guard =
    B.Syn_guard.install net ~sw ~protect ~tracker_capacity ~syn_threshold_pps
      ~clear_hold:config.clear_hold ~threshold_jitter ~rotate_period ~seed:sg_seed
      ~on_alarm:(fun a ->
        Ff_modes.Protocol.raise_alarm protocol ~sw:a.B.Lfa_detector.switch
          a.B.Lfa_detector.attack)
      ~on_clear:(fun a ->
        Ff_modes.Protocol.clear_alarm protocol ~sw:a.B.Lfa_detector.switch
          a.B.Lfa_detector.attack)
      ()
  in
  { sg_protocol = protocol; sg_guard = guard }

type wide = {
  w_protocol : Ff_modes.Protocol.t;
  w_detectors : (int * B.Lfa_detector.t) list;
  w_reroute : B.Reroute.t;
  w_obfuscator : B.Obfuscator.t;
  w_droppers : (int * B.Dropper.t) list;
}

let deploy_wide net ~protect ?(config = default_config) ?on_mode () =
  let topo = Net.topology net in
  let protocol =
    Ff_modes.Protocol.create net ~region_ttl:config.region_ttl ~min_dwell:config.min_dwell
      ~anti_entropy:config.anti_entropy ~modes_for ()
  in
  (match on_mode with
  | Some f -> Ff_modes.Protocol.on_transition protocol f
  | None -> ());
  let core_egress sw =
    List.map (fun peer -> (sw, peer)) (Net.neighbors_of net sw)
  in
  let detectors =
    List.filter_map
      (fun sw ->
        match core_egress sw with
        | [] -> None
        | watched ->
          let threshold_jitter, jitter_period, h_seed = det_jitter config in
          let det =
            B.Lfa_detector.install net ~sw ~watched ~check_period:config.check_period
              ~high_threshold:config.high_threshold ~suspicious_rate:config.suspicious_rate
              ~threshold_jitter ~jitter_period ~seed:h_seed
              ~min_age:config.min_age ~clear_hold:config.clear_hold
              ~dst_flows_min:config.dst_flows_min
              ~on_alarm:(fun a ->
                Ff_modes.Protocol.raise_alarm protocol ~sw:a.B.Lfa_detector.switch
                  a.B.Lfa_detector.attack)
              ~on_clear:(fun a ->
                Ff_modes.Protocol.clear_alarm protocol ~sw:a.B.Lfa_detector.switch
                  a.B.Lfa_detector.attack)
              ()
          in
          Some (sw, det))
      (Net.switch_ids net)
  in
  (* Detectors exchange their suspicious-source sets through sync probes
     (paper 3.3: detectors "exchange information with each other"), so a
     switch upstream of the congestion — where the path diversity is — can
     mark and police flows its own local evidence could never convict. *)
  let detector_switches = List.map fst detectors in
  let sync_jitter, sync_seed =
    match config.hardening with
    | None -> (0., 0x5C11)
    | Some h -> (h.h_epoch_jitter, h.h_seed)
  in
  let source_sync =
    Ff_modes.Sync.create net ~participants:detector_switches ~period:(4. *. config.check_period)
      ~period_jitter:sync_jitter ~seed:sync_seed
      ~local_view:(fun ~sw ->
        match List.assoc_opt sw detectors with
        | None -> []
        | Some det ->
          List.filter_map
            (fun host ->
              if B.Lfa_detector.is_suspicious_source det host then Some (host, 1.) else None)
            (Net.host_ids net))
      ~probe_class:9 ()
  in
  let classify_key = B.Common.mode_key B.Common.mode_classify in
  (* Per-packet equivalent of [Sync.global_value ... > 0.]: the local view's
     entries are exactly this switch's suspicious sources (value 1.), so the
     local half collapses to a set-membership test on the detector instead
     of materializing the whole (host, 1.) list on every packet; remote
     advertisements are all >= 0, so the sum is positive iff either half is. *)
  let marker_stage sw =
    let det = List.assoc_opt sw detectors in
    let marked_somewhere src =
      (match det with
      | Some d -> B.Lfa_detector.is_suspicious_source d src
      | None -> false)
      || Ff_modes.Sync.remote_contribution source_sync ~sw ~key:src > 0.
    in
    {
      Net.stage_name = "suspicious-source-marker";
      process =
        (fun ctx pkt ->
          (match pkt.Packet.payload with
          | Packet.Data | Packet.Traceroute_probe _ ->
            if
              (not pkt.Packet.suspicious)
              && B.Common.mode_on ctx.Net.sw classify_key
              && marked_somewhere pkt.Packet.src
            then pkt.Packet.suspicious <- true
          | _ -> ());
          Net.Continue);
    }
  in
  List.iter (fun sw -> Net.add_stage net ~sw (marker_stage sw)) detector_switches;
  let droppers =
    List.map
      (fun sw ->
        ( sw,
          B.Dropper.install net ~sw ~rate_limit:config.drop_rate_limit
            ~drop_prob:config.drop_prob () ))
      detector_switches
  in
  let reroute = B.Reroute.install net ~roots:protect ~probe_interval:config.probe_interval () in
  let vcache : (int * int, int list option) Hashtbl.t = Hashtbl.create 64 in
  let virtual_path ~src ~dst =
    match Hashtbl.find_opt vcache (src, dst) with
    | Some p -> p
    | None ->
      let p =
        match Net.current_path net ~src ~dst with
        | Some _ as p -> p
        | None -> Topology.shortest_path topo ~src ~dst
      in
      Hashtbl.replace vcache (src, dst) p;
      p
  in
  let obfuscator = B.Obfuscator.install net ~virtual_path () in
  { w_protocol = protocol; w_detectors = detectors; w_reroute = reroute;
    w_obfuscator = obfuscator; w_droppers = droppers }

let wide_mode_log w = Ff_modes.Protocol.log w.w_protocol

let wide_marked w =
  List.fold_left (fun acc (_, d) -> acc + B.Lfa_detector.marks d) 0 w.w_detectors

let wide_dropped w =
  List.fold_left (fun acc (_, d) -> acc + B.Dropper.dropped d) 0 w.w_droppers
