module Topology = Ff_topology.Topology
module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Flow = Ff_netsim.Flow
module Monitor = Ff_netsim.Monitor
module Series = Ff_util.Series

type defense =
  | No_defense
  | Baseline_sdn of { period : float; delay : float }
  | Fastflex of Orchestrator.config

type attack_plan = {
  start : float;
  roll_schedule : float list;
  roll_on_path_change : bool;
  flows_per_bot : int;
  bot_max_cwnd : float;
}

let default_attack =
  {
    start = 10.;
    roll_schedule = [ 45.; 80. ];
    roll_on_path_change = true;
    flows_per_bot = 3;
    bot_max_cwnd = 4.;
  }

type result = {
  normalized : Series.t;
  raw_goodput : Series.t;
  attack_goodput : Series.t;
  baseline_goodput : float;
  rolls : float list;
  reconfigs : float list;
  mode_log : (float * int * Ff_dataplane.Packet.attack_kind * bool) list;
  mean_during_attack : float;
  min_during_attack : float;
  recovery_times : (float * float) list;
  drops : (string * int) list;
  suspicious_marked : int;
  probes_sent : int;
}

(* Default connectivity: per-destination shortest-path routes for every
   host, with the two victim-side decoys deliberately spread over the two
   critical links (decoy1 via m1, decoy2 via m2) — the path diversity a
   Crossfire attacker exploits to choose its target link. *)
let install_default_routes net (lm : Topology.Fig2.landmarks) =
  let topo = Net.topology net in
  let hosts = Topology.hosts topo in
  List.iter
    (fun (dst : Topology.node) ->
      List.iter
        (fun (src : Topology.node) ->
          if src.Topology.id <> dst.Topology.id then
            match Topology.shortest_path topo ~src:src.Topology.id ~dst:dst.Topology.id with
            | Some p -> Net.install_path net ~dst:dst.Topology.id p
            | None -> ())
        hosts)
    hosts;
  (* pin each decoy behind a distinct critical link *)
  match (lm.Topology.Fig2.decoys, lm.Topology.Fig2.critical) with
  | [ d1; d2 ], [ c1; c2 ] ->
    let mid_of (l : Topology.link) =
      if l.Topology.a = lm.Topology.Fig2.agg then l.Topology.b else l.Topology.a
    in
    let m1 = mid_of c1 and m2 = mid_of c2 in
    Net.set_route net ~sw:lm.Topology.Fig2.agg ~dst:d1 ~next_hop:m1;
    Net.set_route net ~sw:m1 ~dst:d1 ~next_hop:lm.Topology.Fig2.victim_agg;
    Net.set_route net ~sw:lm.Topology.Fig2.agg ~dst:d2 ~next_hop:m2;
    Net.set_route net ~sw:m2 ~dst:d2 ~next_hop:lm.Topology.Fig2.victim_agg
  | _ -> ()

let normal_matrix (lm : Topology.Fig2.landmarks) ~per_flow_bps =
  let m = Ff_te.Traffic_matrix.empty () in
  List.iter
    (fun n -> Ff_te.Traffic_matrix.set m ~src:n ~dst:lm.Topology.Fig2.victim per_flow_bps)
    lm.Topology.Fig2.normal_sources;
  m

let run_lfa ~defense ?(attack = Some default_attack) ?(duration = 120.)
    ?(sample_period = 0.5) ?(normals = 4) ?(bots = 8) ?on_ready () =
  let lm = Topology.Fig2.build ~bots ~normals () in
  let topo = lm.Topology.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  install_default_routes net lm;
  (* default mode: optimal configuration from centralized TE. k = 2 keeps
     the default plan on the two shortest (critical-link) paths; the longer
     detour is capacity the defenses tap into under attack. *)
  let matrix = normal_matrix lm ~per_flow_bps:2_300_000. in
  let default_plan = Ff_te.Solver.solve ~k:2 topo matrix in
  Ff_te.Solver.install net default_plan;
  (* normal traffic: one long-lived TCP flow per normal host *)
  let normal_flows =
    List.map
      (fun n ->
        Flow.Tcp.start net ~src:n ~dst:lm.Topology.Fig2.victim ~at:0.5 ~max_cwnd:4. ())
      lm.Topology.Fig2.normal_sources
  in
  (* attacker *)
  let attacker =
    Option.map
      (fun plan ->
        let group_of decoy = [ decoy ] in
        Ff_attacks.Lfa.launch net ~bots:lm.Topology.Fig2.bot_sources
          ~decoy_groups:(List.map group_of lm.Topology.Fig2.decoys)
          ~start:plan.start ~flows_per_bot:plan.flows_per_bot
          ~bot_max_cwnd:plan.bot_max_cwnd ~roll_on_path_change:plan.roll_on_path_change
          ~roll_schedule:plan.roll_schedule ())
      attack
  in
  (* defense *)
  let controller = ref None in
  let orchestration = ref None in
  (match defense with
  | No_defense -> ()
  | Baseline_sdn { period; delay } ->
    (* measurement half of the controller loop: telemetry at every switch
       counts each pair at its ingress; attack flows are measured like any
       other traffic — indistinguishability is the baseline's handicap *)
    let telemetry = Ff_te.Estimator.install net ~switches:(Net.switch_ids net) () in
    controller :=
      Some
        (Ff_te.Controller.start net ~period ~delay
           ~estimate:(fun () -> Ff_te.Estimator.matrix telemetry)
           ())
  | Fastflex config ->
    orchestration := Some (Orchestrator.deploy net ~landmarks:lm ~default_plan ~config ()));
  (* measurement *)
  let raw_goodput =
    Monitor.aggregate_goodput net ~flows:normal_flows ~period:sample_period ~name:"goodput" ()
  in
  let attack_goodput =
    Monitor.sample engine ~period:sample_period ~name:"attack-goodput" (fun now ->
        match attacker with
        | Some atk -> Ff_attacks.Lfa.attack_rate atk ~now
        | None -> 0.)
  in
  (match on_ready with
  | Some f -> f net lm normal_flows
  | None -> ());
  Engine.run engine ~until:duration;
  (* normalizer: steady state before the attack (or over the whole run) *)
  let attack_start = match attack with Some a -> a.start | None -> duration in
  let calib_lo = Float.max 2. (attack_start -. 6.) and calib_hi = Float.max 4. (attack_start -. 1.) in
  let calib =
    List.filter_map
      (fun (t, v) -> if t >= calib_lo && t <= calib_hi then Some v else None)
      (Series.points raw_goodput)
  in
  let baseline_goodput =
    match calib with [] -> 1. | vs -> Float.max 1. (Ff_util.Stats.mean vs)
  in
  let normalized = Series.create ~name:"normalized" in
  List.iter
    (fun (t, v) -> Series.add normalized ~time:t (v /. baseline_goodput))
    (Series.points raw_goodput);
  let during_attack =
    List.filter_map
      (fun (t, v) -> if t >= attack_start +. sample_period then Some v else None)
      (Series.points normalized)
  in
  let rolls = match attacker with Some atk -> Ff_attacks.Lfa.rolls atk | None -> [] in
  (* time from each attack event (attack start and each roll) back to 80% *)
  let events = if attack = None then [] else attack_start :: rolls in
  let recovery_times =
    List.map
      (fun ev ->
        let rec find = function
          | [] -> (ev, infinity)
          | (t, v) :: rest ->
            if t > ev +. (2. *. sample_period) && v >= 0.8 then (ev, t -. ev) else find rest
        in
        find (Series.points normalized))
      events
  in
  {
    normalized;
    raw_goodput;
    attack_goodput;
    baseline_goodput;
    rolls;
    reconfigs =
      (match !controller with Some c -> Ff_te.Controller.reconfig_times c | None -> []);
    mode_log = (match !orchestration with Some o -> Orchestrator.mode_log o | None -> []);
    mean_during_attack =
      (match during_attack with [] -> 1. | vs -> Ff_util.Stats.mean vs);
    min_during_attack =
      (match during_attack with [] -> 1. | vs -> List.fold_left Float.min infinity vs);
    recovery_times;
    drops = Net.drops_by_reason net;
    suspicious_marked =
      (match !orchestration with
      | Some o -> Ff_boosters.Lfa_detector.marks o.Orchestrator.detector
      | None -> 0);
    probes_sent =
      (match !orchestration with
      | Some o -> Ff_boosters.Reroute.probes_sent o.Orchestrator.reroute
      | None -> 0);
  }

let pp_summary fmt r =
  Format.fprintf fmt
    "baseline=%.0f B/s mean=%.2f min=%.2f rolls=%d reconfigs=%d mode-changes=%d@."
    r.baseline_goodput r.mean_during_attack r.min_during_attack (List.length r.rolls)
    (List.length r.reconfigs) (List.length r.mode_log);
  List.iter
    (fun (ev, rt) ->
      if rt = infinity then Format.fprintf fmt "  event at %.1fs: never recovered to 80%%@." ev
      else Format.fprintf fmt "  event at %.1fs: recovered to 80%% in %.1fs@." ev rt)
    r.recovery_times

(* ------------------------------------------------------------------ *)
(* Volumetric scenario                                                 *)
(* ------------------------------------------------------------------ *)

type volumetric_result = {
  vr_normalized_mean : float;
  vr_spoofed_filtered : int;
  vr_offender_drops : int;
  vr_mode_changes : int;
  vr_alarmed : bool;
}

let run_volumetric ~defended ?(duration = 60.) ?(attack_rate_pps = 600.) ?(spoof = true) () =
  let lm = Topology.Fig2.build ~bots:8 ~normals:4 () in
  let topo = lm.Topology.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  install_default_routes net lm;
  let matrix = normal_matrix lm ~per_flow_bps:2_300_000. in
  let default_plan = Ff_te.Solver.solve ~k:2 topo matrix in
  Ff_te.Solver.install net default_plan;
  let normal_flows =
    List.map
      (fun n -> Flow.Tcp.start net ~src:n ~dst:lm.Topology.Fig2.victim ~at:0.5 ~max_cwnd:4. ())
      lm.Topology.Fig2.normal_sources
  in
  let vol =
    if defended then
      Some (Orchestrator.deploy_volumetric net ~sw:lm.Topology.Fig2.agg ())
    else None
  in
  (* spoofed identities: the normal hosts' addresses (whose TTL fingerprints
     the filter learns from their legitimate traffic) *)
  let attack_start = 10. in
  let _atk =
    Ff_attacks.Volumetric.launch net ~bots:lm.Topology.Fig2.bot_sources
      ~victim:lm.Topology.Fig2.victim ~rate_pps_per_bot:attack_rate_pps ~start:attack_start
      ?spoof_as:(if spoof then Some lm.Topology.Fig2.normal_sources else None)
      ()
  in
  let goodput =
    Monitor.aggregate_goodput net ~flows:normal_flows ~period:0.5 ~name:"goodput" ()
  in
  Engine.run engine ~until:duration;
  let vals t0 t1 =
    List.filter_map
      (fun (t, v) -> if t >= t0 && t <= t1 then Some v else None)
      (Series.points goodput)
  in
  let baseline =
    Float.max 1. (Ff_util.Stats.mean (vals (attack_start -. 6.) (attack_start -. 1.)))
  in
  {
    vr_normalized_mean =
      Ff_util.Stats.mean (vals (attack_start +. 2.) duration) /. baseline;
    vr_spoofed_filtered =
      (match vol with
      | Some v -> Ff_boosters.Hop_count_filter.filtered v.Orchestrator.v_hcf
      | None -> 0);
    vr_offender_drops =
      (match vol with
      | Some v -> Ff_boosters.Dropper.dropped v.Orchestrator.v_dropper
      | None -> 0);
    vr_mode_changes =
      (match vol with
      | Some v -> List.length (Ff_modes.Protocol.log v.Orchestrator.v_protocol)
      | None -> 0);
    vr_alarmed =
      (match vol with
      | Some v -> Ff_boosters.Heavy_hitter.alarmed v.Orchestrator.v_hh
      | None -> false);
  }

(* ------------------------------------------------------------------ *)
(* SYN-flood scenario                                                  *)
(* ------------------------------------------------------------------ *)

type synflood_result = {
  sf_normalized_mean : float;  (** completed-handshake goodput vs pre-attack *)
  sf_baseline_goodput : float;
  sf_peak_backlog_occupancy : float;
  sf_backlog_drops : int;
  sf_timeouts : int;
  sf_established : int;
  sf_completed : int;
  sf_failed : int;
  sf_cookies_sent : int;
  sf_validated : int;
  sf_rejected : int;
  sf_unverified_drops : int;
  sf_tracker_occupancy : float;
  sf_tracker_failed_inserts : int;
  sf_syns_sent : int;
  sf_mode_changes : int;
  sf_alarmed : bool;
}

let run_synflood ~defended ?(hardened = false) ?(duration = 60.)
    ?(attack_rate_pps = 400.) ?(backlog = 64) ?(syn_timeout = 3.0) () =
  let lm = Topology.Fig2.build ~bots:8 ~normals:4 () in
  let topo = lm.Topology.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  install_default_routes net lm;
  let matrix = normal_matrix lm ~per_flow_bps:2_300_000. in
  let default_plan = Ff_te.Solver.solve ~k:2 topo matrix in
  Ff_te.Solver.install net default_plan;
  (* the resource under attack: the victim's accept backlog *)
  let listener =
    Flow.Listener.install net ~host:lm.Topology.Fig2.victim ~backlog ~syn_timeout ()
  in
  (* legitimate clients: short handshake-data-FIN connections in a loop;
     their completion rate is the scenario's goodput *)
  let clients =
    List.map
      (fun n ->
        Flow.Handshake.start net ~src:n ~dst:lm.Topology.Fig2.victim ~at:0.5
          ~conn_interval:0.4 ())
      lm.Topology.Fig2.normal_sources
  in
  let sg =
    if defended then begin
      let config =
        if hardened then
          { Orchestrator.default_config with
            hardening = Some Orchestrator.default_hardening }
        else Orchestrator.default_config
      in
      let sg =
        Orchestrator.deploy_synguard net ~sw:lm.Topology.Fig2.victim_agg
          ~protect:lm.Topology.Fig2.victim ~config ()
      in
      Ff_boosters.Syn_guard.attach_server_agent sg.Orchestrator.sg_guard listener;
      Some sg
    end
    else None
  in
  let attack_start = 10. in
  let atk =
    Ff_attacks.Synflood.launch net ~bots:lm.Topology.Fig2.bot_sources
      ~victim:lm.Topology.Fig2.victim ~syn_rate_pps:attack_rate_pps
      ~start:attack_start ~spoof_as:lm.Topology.Fig2.normal_sources ()
  in
  let goodput =
    Monitor.aggregate_goodput net
      ~probes:
        [ Monitor.counter_probe (fun () ->
              List.fold_left
                (fun acc c -> acc +. Flow.Handshake.completed_bytes c)
                0. clients) ]
      ~period:0.5 ~name:"goodput" ()
  in
  Engine.run engine ~until:duration;
  let vals t0 t1 =
    List.filter_map
      (fun (t, v) -> if t >= t0 && t <= t1 then Some v else None)
      (Series.points goodput)
  in
  let baseline =
    Float.max 1. (Ff_util.Stats.mean (vals (attack_start -. 6.) (attack_start -. 1.)))
  in
  let guard = Option.map (fun s -> s.Orchestrator.sg_guard) sg in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 clients in
  {
    sf_normalized_mean =
      Ff_util.Stats.mean (vals (attack_start +. 2.) duration) /. baseline;
    sf_baseline_goodput = baseline;
    sf_peak_backlog_occupancy = Flow.Listener.peak_occupancy listener;
    sf_backlog_drops = Flow.Listener.backlog_drops listener;
    sf_timeouts = Flow.Listener.timeouts listener;
    sf_established = Flow.Listener.established listener;
    sf_completed = sum Flow.Handshake.completed;
    sf_failed = sum Flow.Handshake.failed;
    sf_cookies_sent =
      (match guard with Some g -> Ff_boosters.Syn_guard.cookies_sent g | None -> 0);
    sf_validated =
      (match guard with Some g -> Ff_boosters.Syn_guard.validated g | None -> 0);
    sf_rejected =
      (match guard with Some g -> Ff_boosters.Syn_guard.rejected g | None -> 0);
    sf_unverified_drops =
      (match guard with Some g -> Ff_boosters.Syn_guard.unverified_drops g | None -> 0);
    sf_tracker_occupancy =
      (match guard with
      | Some g -> Ff_dataplane.Cuckoo.occupancy (Ff_boosters.Syn_guard.tracker g)
      | None -> 0.);
    sf_tracker_failed_inserts =
      (match guard with
      | Some g -> Ff_dataplane.Cuckoo.failed_inserts (Ff_boosters.Syn_guard.tracker g)
      | None -> 0);
    sf_syns_sent = Ff_attacks.Synflood.syns_sent atk;
    sf_mode_changes =
      (match sg with
      | Some s -> List.length (Ff_modes.Protocol.log s.Orchestrator.sg_protocol)
      | None -> 0);
    sf_alarmed =
      (match guard with Some g -> Ff_boosters.Syn_guard.alarmed g | None -> false);
  }

(* shortest-path route trees toward every host, over switches only (hosts
   are reachable but never transited) *)
let install_all_routes net =
  let is_switch =
    let tbl = Hashtbl.create 64 in
    List.iter (fun sw -> Hashtbl.replace tbl sw ()) (Net.switch_ids net);
    fun n -> Hashtbl.mem tbl n
  in
  List.iter
    (fun dst ->
      let visited = Hashtbl.create 64 in
      Hashtbl.replace visited dst ();
      let q = Queue.create () in
      Queue.add dst q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if not (Hashtbl.mem visited v) then begin
              Hashtbl.replace visited v ();
              if is_switch v then begin
                Net.set_route net ~sw:v ~dst ~next_hop:u;
                Queue.add v q
              end
            end)
          (Net.neighbors_of net u)
      done)
    (Net.host_ids net)

(* ---- closed-loop adversarial arena ------------------------------------- *)

module Adaptive = Ff_attacks.Adaptive
module Workfactor = Ff_obs.Workfactor

type adversary = Closed_loop | Open_loop

type adversarial_result = {
  ar_strategy : Adaptive.strategy;
  ar_hardened : bool;
  ar_adversary : adversary;
  ar_probes : int;
  ar_damage : float;
  ar_peak_util : float;
  ar_effective_at : float option;
  ar_time_to_effective : float;
  ar_work_factor : float;
  ar_alarms : int;
  ar_drops : int;
  ar_rotations : int;
  ar_fingerprint : int;
  ar_summary : string;
  ar_log : string list;
}

(* Key-spreading guard for the collision arena: a windowed Bloom of
   (src, flow) plus a per-source distinct-flow counter. A source opening
   more than [max_flows] distinct flows inside one window is flagged and
   its packets marked suspicious — which is why the adaptive attacker
   must *find hash collisions* to hide volume instead of simply spraying
   fresh keys past the HashPipe. *)
let install_fanout_guard net ~sw ~max_flows ~window ~seed ~on_trip ~on_calm =
  let module Bloom = Ff_dataplane.Bloom in
  let bloom = Bloom.create ~seed ~bits:4096 ~hashes:3 () in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let flagged : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  Engine.every (Net.engine net) ~start:window ~period:window (fun () ->
      Bloom.reset bloom;
      Hashtbl.reset counts;
      Hashtbl.reset flagged);
  Net.add_stage net ~sw
    {
      Net.stage_name = "fanout-guard";
      process =
        (fun _ctx pkt ->
          (match pkt.Ff_dataplane.Packet.payload with
          | Ff_dataplane.Packet.Data ->
            let src = pkt.Ff_dataplane.Packet.src in
            let k =
              Ff_dataplane.Hash.mix ~seed ~lane:src pkt.Ff_dataplane.Packet.flow
            in
            if not (Bloom.mem bloom k) then begin
              Bloom.add bloom k;
              let c =
                match Hashtbl.find_opt counts src with Some c -> c + 1 | None -> 1
              in
              Hashtbl.replace counts src c;
              if c > max_flows && not (Hashtbl.mem flagged src) then begin
                Hashtbl.replace flagged src ();
                on_trip src;
                Engine.after (Net.engine net) ~delay:window (fun () -> on_calm src)
              end
            end;
            if Hashtbl.mem flagged src then pkt.Ff_dataplane.Packet.suspicious <- true
          | _ -> ());
          Net.Continue);
    }

let run_adversarial ~strategy ~adversary ?(hardened = false) ?(seed = 1)
    ?(duration = 70.) ?(attack_start = 10.) () =
  let topo = Topology.fat_tree ~k:4 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  install_all_routes net;
  let id n = (Topology.node_by_name topo n).Topology.id in
  let victim = id "h0_0_0" in
  let sink = id "h0_0_1" in
  (* the decoy set a Crossfire hugger floods: the pod-0 public hosts *)
  let decoys = [ id "h0_0_1"; id "h0_1_0"; id "h0_1_1" ] in
  let aggs = [ id "agg0_0"; id "agg0_1" ] in
  let edges = [ id "edge0_0"; id "edge0_1" ] in
  (* the decoy links whose over-utilization is the damage integral *)
  let watched = List.concat_map (fun a -> List.map (fun e -> (a, e)) edges) aggs in
  (* Pin path-diverse routes toward the pod-0 hosts. The default BFS
     trees collapse every pod-0 destination onto a single core->agg
     uplink, which then bottlenecks *upstream* of the watched agg->edge
     links and caps their utilization well below the damage floor.
     Spreading the four destinations across the four cores gives each
     decoy path a dedicated uplink of the same capacity as the watched
     link, so the watched links themselves are the contended resource. *)
  let pin ~dst ~core ~agg ~edge =
    let core_n = id (Printf.sprintf "core%d" core) in
    let agg0 = id (Printf.sprintf "agg0_%d" agg) in
    Net.set_route net ~sw:core_n ~dst ~next_hop:agg0;
    Net.set_route net ~sw:agg0 ~dst ~next_hop:(id (Printf.sprintf "edge0_%d" edge));
    (* upstream in pods 1-3: agg{p}_0 reaches cores 0-1, agg{p}_1 cores 2-3 *)
    let j = core / 2 in
    List.iter
      (fun p ->
        let aggp = id (Printf.sprintf "agg%d_%d" p j) in
        Net.set_route net ~sw:aggp ~dst ~next_hop:core_n;
        List.iter
          (fun e ->
            Net.set_route net ~sw:(id (Printf.sprintf "edge%d_%d" p e)) ~dst ~next_hop:aggp)
          [ 0; 1 ])
      [ 1; 2; 3 ]
  in
  pin ~dst:victim ~core:3 ~agg:1 ~edge:0;
  pin ~dst:(id "h0_0_1") ~core:0 ~agg:0 ~edge:0;
  pin ~dst:(id "h0_1_0") ~core:1 ~agg:0 ~edge:1;
  pin ~dst:(id "h0_1_1") ~core:2 ~agg:1 ~edge:1;
  let bots =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun e -> List.map (fun i -> id (Printf.sprintf "h%d_%d_%d" p e i)) [ 0; 1 ])
          [ 0; 1 ])
      [ 1; 2 ]
  in
  (* light benign background: pod-3 clients of the victim and decoys *)
  let benign_dsts = [| victim; id "h0_1_0"; victim; id "h0_1_1" |] in
  ignore
    (List.mapi
       (fun i e ->
         List.map
           (fun h ->
             let src = id (Printf.sprintf "h3_%d_%d" e h) in
             Flow.Tcp.start net ~src ~dst:benign_dsts.((2 * i) + h) ~at:0.5 ~max_cwnd:2. ())
           [ 0; 1 ])
       [ 0; 1 ]);
  let hardening =
    if hardened then
      Some
        {
          Orchestrator.default_hardening with
          Orchestrator.h_seed =
            Orchestrator.default_hardening.Orchestrator.h_seed lxor (seed * 0x1003F);
        }
    else None
  in
  let alarms = ref 0 in
  let protocol =
    Ff_modes.Protocol.create net ~region_ttl:2 ~min_dwell:1.0 ~anti_entropy:0.5
      ~modes_for:Orchestrator.modes_for ()
  in
  (* Several independent detectors (heavy-hitter boosters, the fanout
     guard, LFA detectors) feed the same protocol alarm per attack
     class, but [Protocol.clear_alarm] floods a region-wide
     deactivation unconditionally while [raise_alarm] is a no-op when
     the attack is already active. Without reference counting, one
     source's clear (e.g. the fanout guard calming) switches mitigation
     off for everyone, and a still-alarmed detector never re-raises —
     the mode deadlocks off while the attack runs. Count raises per
     attack class and only forward the final clear. *)
  let raised : (Ff_dataplane.Packet.attack_kind, int) Hashtbl.t = Hashtbl.create 4 in
  let on_alarm (a : Ff_boosters.Lfa_detector.alarm) =
    incr alarms;
    let att = a.Ff_boosters.Lfa_detector.attack in
    let n = match Hashtbl.find_opt raised att with Some n -> n | None -> 0 in
    Hashtbl.replace raised att (n + 1);
    Ff_modes.Protocol.raise_alarm protocol ~sw:a.Ff_boosters.Lfa_detector.switch att
  in
  let on_clear (a : Ff_boosters.Lfa_detector.alarm) =
    let att = a.Ff_boosters.Lfa_detector.attack in
    let n = match Hashtbl.find_opt raised att with Some n -> n | None -> 0 in
    let n = Stdlib.max 0 (n - 1) in
    Hashtbl.replace raised att n;
    if n = 0 then
      Ff_modes.Protocol.clear_alarm protocol ~sw:a.Ff_boosters.Lfa_detector.switch att
  in
  let det_jitter, det_period, det_seed =
    match hardening with
    | None -> (0., 2.0, 0x1FA_D lxor seed)
    | Some h ->
      (h.Orchestrator.h_threshold_jitter, h.Orchestrator.h_jitter_period, h.Orchestrator.h_seed)
  in
  let hh_epoch_jitter, hh_thr_jitter, hh_rotate, hh_src_hold, hh_seed =
    match hardening with
    | None -> (0., 0., 0., 0., 0x44_11 lxor seed)
    | Some h ->
      ( h.Orchestrator.h_epoch_jitter,
        h.Orchestrator.h_hh_threshold_jitter,
        h.Orchestrator.h_rotate_period,
        h.Orchestrator.h_src_hold,
        h.Orchestrator.h_seed )
  in
  let droppers = ref [] in
  let hhs = ref [] in
  (match strategy with
  | Adaptive.Threshold_hug ->
    (* LFA stack at the pod-0 aggregation switches: detection with
       offered-load hysteresis, cross-switch suspicious-source sync,
       illusion-of-success dropping *)
    let detectors =
      List.map
        (fun a ->
          ( a,
            Ff_boosters.Lfa_detector.install net ~sw:a
              ~watched:(List.map (fun e -> (a, e)) edges)
              ~check_period:0.05 ~high_threshold:0.85 ~threshold_jitter:det_jitter
              ~jitter_period:det_period ~seed:det_seed ~suspicious_rate:1_500_000.
              ~min_age:1.0 ~clear_hold:3.0 ~dst_flows_min:8 ~on_alarm ~on_clear () ))
        aggs
    in
    let sync_jitter, sync_seed =
      match hardening with
      | None -> (0., 0x5C11 lxor seed)
      | Some h -> (h.Orchestrator.h_epoch_jitter, h.Orchestrator.h_seed)
    in
    let source_sync =
      Ff_modes.Sync.create net ~participants:aggs ~period:0.2 ~period_jitter:sync_jitter
        ~seed:sync_seed
        ~local_view:(fun ~sw ->
          match List.assoc_opt sw detectors with
          | None -> []
          | Some det ->
            List.filter_map
              (fun host ->
                if Ff_boosters.Lfa_detector.is_suspicious_source det host then
                  Some (host, 1.)
                else None)
              (Net.host_ids net))
        ~probe_class:9 ()
    in
    let classify_key = Ff_boosters.Common.mode_key Ff_boosters.Common.mode_classify in
    List.iter
      (fun sw ->
        Net.add_stage net ~sw
          {
            Net.stage_name = "synced-source-marker";
            process =
              (fun ctx pkt ->
                (match pkt.Ff_dataplane.Packet.payload with
                | Ff_dataplane.Packet.Data ->
                  if
                    (not pkt.Ff_dataplane.Packet.suspicious)
                    && Ff_boosters.Common.mode_on ctx.Net.sw classify_key
                    && Ff_modes.Sync.remote_contribution source_sync ~sw
                         ~key:pkt.Ff_dataplane.Packet.src
                       > 0.
                  then pkt.Ff_dataplane.Packet.suspicious <- true
                | _ -> ());
                Net.Continue);
          })
      aggs;
    droppers :=
      List.map
        (fun a -> Ff_boosters.Dropper.install net ~sw:a ~rate_limit:150_000. ~drop_prob:0.5 ())
        aggs
  | Adaptive.Collision_probe ->
    (* volumetric stack, flow-keyed: a deliberately small HashPipe (one
       stage — every slot fight is a clean eviction) that collision
       probing can defeat, plus the fanout guard that closes the
       key-spreading alternative *)
    List.iter
      (fun a ->
        (* the hardened posture also scales the table up (FastFlex's
           elastic-resource model: paying SRAM for resilience): in a
           one-stage pipe every slot fight is a clean eviction, so with
           8 slots even a low-rate cross-collider resets a heavy flow's
           accumulation packet by packet and detection of a blast is a
           coin flip per epoch — and an 8x larger table also scales up
           the attacker's expected collision-search cost by 8x *)
        let hh =
          Ff_boosters.Heavy_hitter.install net ~sw:a ~epoch:1.0 ~stages:1
            ~slots:(if hardened then 64 else 8) ~threshold_bps:1_200_000.
            ~epoch_jitter:hh_epoch_jitter ~threshold_jitter:hh_thr_jitter
            ~rotate_period:hh_rotate ~src_hold:hh_src_hold ~seed:hh_seed ~on_alarm
            ~on_clear ()
        in
        hhs := hh :: !hhs;
        Net.add_stage net ~sw:a (Ff_boosters.Heavy_hitter.mark_offenders_stage hh);
        install_fanout_guard net ~sw:a ~max_flows:6 ~window:2.0 ~seed:(0xFA6 lxor seed)
          ~on_trip:(fun _src ->
            on_alarm
              { Ff_boosters.Lfa_detector.switch = a; attack = Ff_dataplane.Packet.Volumetric })
          ~on_calm:(fun _src ->
            on_clear
              { Ff_boosters.Lfa_detector.switch = a; attack = Ff_dataplane.Packet.Volumetric });
        droppers :=
          Ff_boosters.Dropper.install net ~sw:a ~rate_limit:100_000. ~drop_prob:0.9 ()
          :: !droppers)
      aggs
  | Adaptive.Epoch_time ->
    (* volumetric stack keyed by *source*: a fixed bot population cannot
       spread past per-sender accounting — only timing around the epoch
       boundaries hides the volume *)
    List.iter
      (fun a ->
        let hh =
          Ff_boosters.Heavy_hitter.install net ~sw:a ~epoch:1.0 ~threshold_bps:1_200_000.
            ~key_of:(fun pkt -> pkt.Ff_dataplane.Packet.src)
            ~epoch_jitter:hh_epoch_jitter ~threshold_jitter:hh_thr_jitter
            ~rotate_period:hh_rotate ~src_hold:hh_src_hold ~seed:hh_seed ~on_alarm
            ~on_clear ()
        in
        hhs := hh :: !hhs;
        Net.add_stage net ~sw:a (Ff_boosters.Heavy_hitter.mark_offenders_stage hh);
        droppers :=
          Ff_boosters.Dropper.install net ~sw:a ~rate_limit:100_000. ~drop_prob:0.9 ()
          :: !droppers)
      aggs);
  (* the adversary *)
  let atk_cfg =
    {
      Adaptive.default_config with
      Adaptive.seed = Adaptive.default_config.Adaptive.seed lxor (seed * 65599);
      start = attack_start;
      stop = duration;
    }
  in
  let atk =
    match adversary with
    | Open_loop ->
      (* same arena, no feedback loop: the rolling blast every strategy is
         normalized against *)
      (match strategy with
      | Adaptive.Threshold_hug ->
        let per_flow = 30_000_000. /. float_of_int (List.length bots * List.length decoys) in
        List.iter
          (fun bot ->
            List.iter
              (fun d ->
                ignore
                  (Flow.Cbr.start net ~src:bot ~dst:d ~rate_pps:(per_flow /. 8000.)
                     ~at:attack_start ~stop:duration ()))
              decoys)
          bots
      | Adaptive.Collision_probe | Adaptive.Epoch_time ->
        List.iter
          (fun bot ->
            ignore
              (Flow.Cbr.start net ~src:bot ~dst:sink ~rate_pps:250. ~at:attack_start
                 ~stop:duration ()))
          bots);
      None
    | Closed_loop ->
      Some (Adaptive.launch net ~strategy ~bots ~targets:decoys ~sinks:[ sink ] ~config:atk_cfg ())
  in
  (* work-factor harness: damage sampled over the watched decoy links *)
  let wf = Workfactor.create ~damage_floor:0.7 ~effective_damage:1.0 ~attack_start () in
  (if Sys.getenv_opt "ADVERSARIAL_TRACE" <> None then
     let last_drops = ref 0 in
     Engine.every engine ~start:0.5 ~period:0.5 (fun () ->
         let drops =
           List.fold_left (fun acc d -> acc + Ff_boosters.Dropper.dropped d) 0 !droppers
         in
         let offn =
           List.fold_left
             (fun acc hh -> acc + List.length (Ff_boosters.Heavy_hitter.offenders hh))
             0 !hhs
         in
         let util =
           List.fold_left
             (fun acc (a, e) -> Float.max acc (Net.utilization net ~from_:a ~to_:e))
             0. watched
         in
         Printf.eprintf "[trace %s%s%s] t=%5.1f util=%.2f offenders=%d drops+=%d alarms=%d\n"
           (Adaptive.strategy_name strategy)
           (match adversary with Closed_loop -> "/closed" | Open_loop -> "/open")
           (if hardened then "/hard" else "")
           (Net.now net) util offn (drops - !last_drops) !alarms;
         last_drops := drops));
  let sample_dt = 0.1 in
  let last_probes = ref 0 in
  Engine.every engine ~start:sample_dt ~period:sample_dt (fun () ->
      let now = Net.now net in
      (match atk with
      | Some a ->
        let p = Adaptive.probes_sent a in
        Workfactor.add_probes wf (p - !last_probes);
        last_probes := p
      | None -> ());
      let util =
        List.fold_left
          (fun acc (a, e) -> Float.max acc (Net.utilization net ~from_:a ~to_:e))
          0. watched
      in
      Workfactor.sample wf ~now ~dt:sample_dt ~util);
  Engine.run engine ~until:duration;
  {
    ar_strategy = strategy;
    ar_hardened = hardened;
    ar_adversary = adversary;
    ar_probes = Workfactor.probes wf;
    ar_damage = Workfactor.damage wf;
    ar_peak_util = Workfactor.peak_util wf;
    ar_effective_at = Workfactor.effective_at wf;
    ar_time_to_effective = Workfactor.time_to_effective wf ~horizon:duration;
    ar_work_factor = Workfactor.work_factor wf ~horizon:duration;
    ar_alarms = !alarms;
    ar_drops = List.fold_left (fun acc d -> acc + Ff_boosters.Dropper.dropped d) 0 !droppers;
    ar_rotations =
      List.fold_left (fun acc hh -> acc + Ff_boosters.Heavy_hitter.rotations hh) 0 !hhs;
    ar_fingerprint = (match atk with Some a -> Adaptive.fingerprint a | None -> 0);
    ar_summary = (match atk with Some a -> Adaptive.summary a | None -> "open-loop");
    ar_log =
      (match atk with
      | Some a ->
        List.map (fun (at, msg) -> Printf.sprintf "%6.2f %s" at msg) (Adaptive.log a)
      | None -> []);
  }

let pp_adversarial fmt r =
  Format.fprintf fmt
    "%s %s %s: probes=%d damage=%.2f peak=%.2f tte=%.1fs wf=%.0f alarms=%d drops=%d rot=%d@.  %s@."
    (Adaptive.strategy_name r.ar_strategy)
    (match r.ar_adversary with Closed_loop -> "closed-loop" | Open_loop -> "open-loop")
    (if r.ar_hardened then "hardened" else "unhardened")
    r.ar_probes r.ar_damage r.ar_peak_util r.ar_time_to_effective r.ar_work_factor
    r.ar_alarms r.ar_drops r.ar_rotations r.ar_summary

(* ---- hybrid fluid/packet ISP scenario ---------------------------------- *)

module Hybrid = Ff_fluid.Hybrid
module Fluid = Ff_fluid.Fluid

type fluid_result = {
  fr_flows : int;
  fr_classes : int;
  fr_duration : float;
  fr_packet_tx : int;
  fr_fluid_hop_bytes : float;
  fr_packet_equivalents : float;
  fr_delivered_bytes : float;
  fr_demoted_peak : int;
  fr_demoted_frac_peak : float;
  fr_demotions : int;
  fr_promotions : int;
  fr_mode_changes : int;
  fr_rolls : int;
  fr_rate_events : int;
  fr_solver : Fluid.solver_stats;
  fr_touched_frac : float;
  fr_demote_denied : int;
  fr_goodput : Series.t;
  fr_drops : (string * int) list;
}

let run_lfa_fluid ?(flows = 100_000) ?(duration = 40.) ?(force = Hybrid.Auto)
    ?(defended = true) ?(seed = 11) ?(flow_rate_bps = 25_000.) ?(packet_size = 1000)
    ?(update_period = 0.25) ?(cores = 12) ?(access_per_core = 2) ?(hosts_per_access = 4)
    ?(attack_start = 10.) ?(attack_stop = 18.) ?(roll_at = 14.)
    ?(attack_bps_per_flow = 60_000_000.) ?(packet_recon = true)
    ?solver ?demote_budget ?(goodput_period = 0.5) ?obs () =
  let topo =
    Topology.isp ~cores ~access_per_core ~hosts_per_access ()
  in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  Net.attach_obs net obs;
  install_all_routes net;
  let hosts = List.map (fun (n : Topology.node) -> n.Topology.id) (Topology.hosts topo) in
  let host_arr = Array.of_list hosts in
  let nh = Array.length host_arr in
  let behind_access a =
    Array.to_list (Array.sub host_arr (a * hosts_per_access) hosts_per_access)
  in
  let victim, decoys_a =
    match behind_access 0 with
    | v :: rest -> (v, rest)
    | [] -> invalid_arg "run_lfa_fluid: empty access"
  in
  let decoys_b =
    if access_per_core >= 2 then behind_access 1 else decoys_a
  in
  (* bots: the first host of up to 8 PoPs spread away from PoP 0 *)
  let bots =
    let pops = List.init (cores - 3) (fun i -> 2 + i) in
    let step = Float.max 1. (float_of_int (List.length pops) /. 8.) in
    List.init (min 8 (List.length pops)) (fun i ->
        let p = List.nth pops (int_of_float (float_of_int i *. step)) in
        host_arr.(p * access_per_core * hosts_per_access))
  in
  let hybrid = Hybrid.create ~force ~update_period ?solver ?demote_budget net () in
  (* benign population: uniform-rate CBR-class flows between random host
     pairs; one rate level keeps the path-class count at O(host pairs) *)
  let rng = Ff_util.Prng.create ~seed in
  let rate_pps = flow_rate_bps /. float_of_int (8 * packet_size) in
  let benign =
    List.init flows (fun _ ->
        let src = host_arr.(Ff_util.Prng.int rng nh) in
        let dst = ref host_arr.(Ff_util.Prng.int rng nh) in
        while !dst = src do dst := host_arr.(Ff_util.Prng.int rng nh) done;
        Hybrid.add_flow hybrid ~src ~dst:!dst
          (Hybrid.Cbr { rate_pps; packet_size }))
  in
  let wide =
    if defended then
      Some
        (Orchestrator.deploy_wide net ~protect:(victim :: (decoys_a @ decoys_b))
           ~config:
             {
               Orchestrator.default_config with
               region_ttl = 1;
               min_dwell = 0.5;
               clear_hold = 1.5;
               check_period = 0.1;
             }
           ~on_mode:(fun ~sw ~attack:_ ~active ->
             if active then Hybrid.mark_hot hybrid ~node:sw
             else Hybrid.clear_hot hybrid ~node:sw)
           ())
    else None
  in
  (* the flood volume rides the fluid tier; the packet-level side of the
     adversary (recon traceroutes + low-rate TCP decoy flows) is optional *)
  let volume =
    Ff_attacks.Lfa.Fluid_volume.launch hybrid ~bots
      ~decoy_groups:[ decoys_a; decoys_b ]
      ~rate_bps_per_flow:attack_bps_per_flow ~packet_size ~start:attack_start
      ~stop:attack_stop ~roll_schedule:[ roll_at ] ()
  in
  let recon =
    if packet_recon then
      Some
        (Ff_attacks.Lfa.launch net ~bots ~decoy_groups:[ decoys_a; decoys_b ]
           ~start:attack_start ~stop:attack_stop ~flows_per_bot:1
           ~roll_on_path_change:false ~roll_schedule:[ roll_at ] ())
    else None
  in
  let benign_delivered () =
    List.fold_left (fun acc m -> acc +. Hybrid.delivered_bytes hybrid m) 0. benign
  in
  let fr_goodput =
    Monitor.aggregate_goodput net
      ~probes:[ Monitor.counter_probe benign_delivered ]
      ~period:goodput_period ~until:duration ~name:"fluid_goodput" ()
  in
  Engine.run engine ~until:duration;
  ignore volume;
  (match recon with Some a -> Ff_attacks.Lfa.stop_now a | None -> ());
  let fluid = Hybrid.fluid hybrid in
  let fr_packet_tx = Net.total_tx_packets net in
  let fr_fluid_hop_bytes = Fluid.hop_bytes fluid in
  {
    fr_flows = flows;
    fr_classes = Fluid.classes fluid;
    fr_duration = duration;
    fr_packet_tx;
    fr_fluid_hop_bytes;
    fr_packet_equivalents =
      (fr_fluid_hop_bytes /. float_of_int packet_size) +. float_of_int fr_packet_tx;
    fr_delivered_bytes = benign_delivered ();
    fr_demoted_peak = Hybrid.demoted_peak hybrid;
    fr_demoted_frac_peak =
      (if flows = 0 then 0.
       else float_of_int (Hybrid.demoted_peak hybrid) /. float_of_int flows);
    fr_demotions = Hybrid.demotions hybrid;
    fr_promotions = Hybrid.promotions hybrid;
    fr_mode_changes =
      (match wide with
      | Some w -> Ff_modes.Protocol.transitions w.Orchestrator.w_protocol
      | None -> 0);
    fr_rolls = List.length (Ff_attacks.Lfa.Fluid_volume.rolls volume);
    fr_rate_events = Fluid.rate_events fluid;
    fr_solver = Fluid.solver_stats fluid;
    fr_touched_frac = Fluid.touched_frac fluid;
    fr_demote_denied = Hybrid.demote_denied hybrid;
    fr_goodput;
    fr_drops = Net.drops_by_reason net;
  }
