(** Runtime orchestration of the LFA defense on the paper's case-study
    topology: wires the detector's alarms into the distributed mode-change
    protocol, which activates classification, congestion-aware rerouting of
    suspicious flows, topology obfuscation, and illusion-of-success
    dropping (paper Figure 2 and section 4.2, steps (1)-(6)). *)

type hardening = {
  h_seed : int;  (** root of all randomized-defense draws (deterministic) *)
  h_threshold_jitter : float;
      (** [Lfa_detector]: alarm threshold redrawn uniformly from
          [high_threshold - j, high_threshold] every [h_jitter_period] *)
  h_jitter_period : float;
  h_epoch_jitter : float;
      (** [Heavy_hitter] epoch length and [Modes.Sync] advertisement gap
          jitter fraction *)
  h_hh_threshold_jitter : float;  (** [Heavy_hitter] threshold shrink fraction *)
  h_rotate_period : float;  (** HashPipe hash-salt rotation cadence, seconds *)
  h_src_hold : float;
      (** once a source sends an offending flow, keep marking all its
          packets suspicious for this many seconds — repeat offenders
          cannot launder fresh flow keys past a one-epoch detection
          latency *)
}

val default_hardening : hardening
(** The evasion-resistance profile the adversarial benchmark runs:
    0.17 threshold jitter redrawn every 2 s, 25% epoch/sync jitter, 25%
    heavy-hitter threshold jitter, 0.4 s salt rotation. *)

type config = {
  high_threshold : float;  (** link utilization that raises the LFA alarm *)
  suspicious_rate : float;  (** bits/s under which a persistent flow is suspect *)
  min_age : float;  (** seconds before a flow can be classified *)
  dst_flows_min : int;  (** fan-in on one destination marking Crossfire decoys *)
  check_period : float;  (** detector sampling period *)
  clear_hold : float;  (** calm seconds before the all-clear *)
  probe_interval : float;  (** rerouting probe period *)
  region_ttl : int;  (** mode-probe flooding scope *)
  min_dwell : float;  (** minimum mode residence (anti-flap) *)
  anti_entropy : float;  (** epoch readvert base period; [<= 0.] disables *)
  drop_rate_limit : float;  (** bits/s allowed per suspicious flow *)
  drop_prob : float;  (** extra illusion-of-success drop probability *)
  hardening : hardening option;
      (** evasion-resistance knobs threaded into the detectors, heavy
          hitter and sync; [None] (the default) is bit-identical to the
          pre-hardening stack *)
}

val default_config : config

type t = {
  protocol : Ff_modes.Protocol.t;
  detector : Ff_boosters.Lfa_detector.t;
  reroute : Ff_boosters.Reroute.t;
  obfuscator : Ff_boosters.Obfuscator.t;
  droppers : Ff_boosters.Dropper.t list;
  suspect_sketch : Ff_dataplane.Sketch.t;
      (** per-source suspicious bytes accumulated at the [agg] switch *)
  victim_sketch : Ff_dataplane.Sketch.t;
      (** the victim-side aggregation switch's copy, filled by in-band
          state transfer ~2 s after the first LFA alarm *)
  mutable state_transfer : Ff_scaling.Transfer.t option;
}

val deploy :
  Ff_netsim.Net.t ->
  landmarks:Ff_topology.Topology.Fig2.landmarks ->
  default_plan:Ff_te.Solver.plan ->
  ?config:config ->
  unit ->
  t
(** Installs (in stage order at the aggregation switch): obfuscation (ahead
    of TTL processing), mode protocol, LFA detection, dropping, rerouting.
    The default TE plan doubles as the obfuscator's virtual topology. *)

val modes_for : Ff_dataplane.Packet.attack_kind -> string list
(** The attack -> booster-mode mapping the protocol distributes. *)

type volumetric = {
  v_protocol : Ff_modes.Protocol.t;
  v_hh : Ff_boosters.Heavy_hitter.t;
  v_dropper : Ff_boosters.Dropper.t;
  v_hcf : Ff_boosters.Hop_count_filter.t;
}

val deploy_volumetric :
  Ff_netsim.Net.t ->
  sw:int ->
  ?config:config ->
  ?threshold_bps:float ->
  unit ->
  volumetric
(** Volumetric-DDoS protection at one chokepoint switch: HashPipe
    heavy-hitter detection raises [Volumetric] alarms into the mode
    protocol, which activates dropping (offender flows are marked by the
    heavy hitter's marker stage and policed) and hop-count filtering
    (spoofed sources dropped at line rate). Default flow threshold
    4 Mb/s. *)

type synguard = {
  sg_protocol : Ff_modes.Protocol.t;
  sg_guard : Ff_boosters.Syn_guard.t;
}

val deploy_synguard :
  Ff_netsim.Net.t ->
  sw:int ->
  protect:int ->
  ?config:config ->
  ?tracker_capacity:int ->
  ?syn_threshold_pps:float ->
  unit ->
  synguard
(** CuckooGuard-style SYN-flood protection for one server: the split-proxy
    booster ({!Ff_boosters.Syn_guard}) at the server's edge switch [sw]
    raises [Synflood] alarms into the mode protocol, which activates the
    [syn_guard] mode (SYN-cookie interception + cuckoo-filter flow
    tracking). Call {!Ff_boosters.Syn_guard.attach_server_agent} with the
    server's listener to complete the split. Hardening maps
    [h_threshold_jitter] onto the SYN-rate threshold and [h_rotate_period]
    onto cookie-secret rotation. *)

type wide = {
  w_protocol : Ff_modes.Protocol.t;
  w_detectors : (int * Ff_boosters.Lfa_detector.t) list;  (** per switch *)
  w_reroute : Ff_boosters.Reroute.t;
  w_obfuscator : Ff_boosters.Obfuscator.t;
  w_droppers : (int * Ff_boosters.Dropper.t) list;
}

val deploy_wide :
  Ff_netsim.Net.t ->
  protect:int list ->
  ?config:config ->
  ?on_mode:(sw:int -> attack:Ff_dataplane.Packet.attack_kind -> active:bool -> unit) ->
  unit ->
  wide
(** Pervasive deployment on an {e arbitrary} topology (paper section 3.2:
    "distribute detection modules as widely as possible, ideally on all
    paths"): every switch with switch-to-switch egress links gets an LFA
    detector watching them plus a dropper; rerouting probes advertise
    paths toward the [protect]ed hosts (the victim-side prefix);
    obfuscation snapshots the current tables as the virtual topology.
    Alarms from any detector drive one shared mode protocol. [on_mode]
    observes every applied mode transition — the hybrid fluid tier
    registers its demotion predicate here, so flows crossing a
    mode-changing region drop to packet fidelity. *)

val wide_mode_log : wide -> (float * int * Ff_dataplane.Packet.attack_kind * bool) list
val wide_marked : wide -> int
val wide_dropped : wide -> int

val dropped_packets : t -> int
val mode_log : t -> (float * int * Ff_dataplane.Packet.attack_kind * bool) list

val suspect_sketch : t -> Ff_dataplane.Sketch.t
val victim_sketch : t -> Ff_dataplane.Sketch.t

val state_transfer : t -> Ff_scaling.Transfer.t option
(** The agg -> victim-agg sketch handoff, once the alarm has triggered it
    ([None] before then). *)
