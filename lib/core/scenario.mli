(** The paper's case-study experiment (section 4.3, Figure 3): normal flows
    toward a victim, a rolling Crossfire LFA on the two critical links of
    the Figure 2 topology, and one of three defenses:

    - [No_defense]: static default TE only;
    - [Baseline_sdn]: the state-of-the-art SDN defense, centralized TE
      re-solving every period (Spiffy-like);
    - [Fastflex]: the multimode data plane — detection, distributed mode
      change, suspicious-only rerouting, obfuscation, and dropping.

    Throughput is reported normalized to the no-attack steady state
    measured in the same run before the attack begins, matching the
    figure's y-axis. *)

type defense =
  | No_defense
  | Baseline_sdn of { period : float; delay : float }
  | Fastflex of Orchestrator.config

type attack_plan = {
  start : float;
  roll_schedule : float list;  (** forced re-targets (the figure's rounds) *)
  roll_on_path_change : bool;
  flows_per_bot : int;
  bot_max_cwnd : float;
}

val default_attack : attack_plan
(** Starts at 10 s; forced rolls at 45 s and 80 s (three rounds over
    120 s); rolls on observed path changes. *)

type result = {
  normalized : Ff_util.Series.t;  (** normal-flow goodput / no-attack baseline *)
  raw_goodput : Ff_util.Series.t;  (** bytes/s *)
  attack_goodput : Ff_util.Series.t;  (** the attacker's flows, bytes/s *)
  baseline_goodput : float;  (** the normalizer, bytes/s *)
  rolls : float list;
  reconfigs : float list;  (** baseline controller installations *)
  mode_log : (float * int * Ff_dataplane.Packet.attack_kind * bool) list;
  mean_during_attack : float;  (** mean normalized goodput while under attack *)
  min_during_attack : float;
  recovery_times : (float * float) list;
      (** (attack event time, seconds until normalized goodput >= 0.8) *)
  drops : (string * int) list;
  suspicious_marked : int;
  probes_sent : int;
}

val run_lfa :
  defense:defense ->
  ?attack:attack_plan option ->
  ?duration:float ->
  ?sample_period:float ->
  ?normals:int ->
  ?bots:int ->
  ?on_ready:
    (Ff_netsim.Net.t -> Ff_topology.Topology.Fig2.landmarks -> Ff_netsim.Flow.Tcp.t list ->
     unit) ->
  unit ->
  result
(** [~attack:None] runs the calibration-only scenario (no attack).
    Defaults: the default attack, 120 s, 0.5 s samples, 4 normal hosts,
    8 bots. [on_ready] runs after setup and before the simulation, with the
    network, the topology landmarks, and the normal flows — the hook tests
    and examples use to attach extra monitors. *)

val pp_summary : Format.formatter -> result -> unit

(** {1 Volumetric scenario}

    A second end-to-end driver: bots blast spoofed-source CBR traffic at
    the victim through the aggregation chokepoint; the defense is
    heavy-hitter detection wired into the mode protocol (dropping +
    hop-count filtering). *)

type volumetric_result = {
  vr_normalized_mean : float;  (** normal goodput under attack / baseline *)
  vr_spoofed_filtered : int;  (** packets the hop-count filter removed *)
  vr_offender_drops : int;  (** packets policed off the offender flows *)
  vr_mode_changes : int;
  vr_alarmed : bool;  (** heavy hitter state at the end of the run *)
}

val run_volumetric :
  defended:bool ->
  ?duration:float ->
  ?attack_rate_pps:float ->
  ?spoof:bool ->
  unit ->
  volumetric_result
(** Defaults: 60 s, 600 pps per bot — each bot flow is individually a
    4.8 Mb/s heavy hitter, 38 Mb/s aggregate against a 20 Mb/s cut —
    spoofing on. *)

(** {1 SYN-flood scenario}

    The split-proxy driver: bots open spoofed connections they never
    finish, exhausting the victim's accept backlog; the defense is the
    CuckooGuard-style booster ({!Ff_boosters.Syn_guard}) — SYN-cookie
    interception at the victim's edge switch plus a cuckoo-filter flow
    tracker, with the server's listener trusting edge-validated
    handshakes. Goodput is the legitimate clients' completed-handshake
    byte rate, normalized against the pre-attack window. *)

type synflood_result = {
  sf_normalized_mean : float;  (** completed-handshake goodput vs pre-attack *)
  sf_baseline_goodput : float;
  sf_peak_backlog_occupancy : float;
      (** high-water accept-backlog occupancy: 1.0 undefended, by design *)
  sf_backlog_drops : int;  (** SYNs the server refused, backlog full *)
  sf_timeouts : int;  (** half-open entries that expired unacked *)
  sf_established : int;
  sf_completed : int;  (** client handshakes that completed *)
  sf_failed : int;  (** client connection attempts that gave up *)
  sf_cookies_sent : int;
  sf_validated : int;
  sf_rejected : int;  (** forged handshake acks dropped at the edge *)
  sf_unverified_drops : int;
  sf_tracker_occupancy : float;  (** cuckoo load at run end, must stay < 0.95 *)
  sf_tracker_failed_inserts : int;
  sf_syns_sent : int;
  sf_mode_changes : int;
  sf_alarmed : bool;
}

val run_synflood :
  defended:bool ->
  ?hardened:bool ->
  ?duration:float ->
  ?attack_rate_pps:float ->
  ?backlog:int ->
  ?syn_timeout:float ->
  unit ->
  synflood_result
(** Defaults: 60 s, 400 SYNs/s per bot (3200/s aggregate against a
    64-slot backlog with a 3 s half-open timeout — refills a freed slot
    five hundred times faster than legitimate clients retry), spoofing
    always on. [hardened] threads {!Orchestrator.default_hardening}
    (jittered SYN-rate threshold, cookie-secret rotation) through
    {!Orchestrator.deploy_synguard}. *)

(** {1 Closed-loop adversarial arena}

    One fat-tree(4) arena per adaptive strategy
    ({!Ff_attacks.Adaptive}), each running the defense subset that
    strategy evades: the threshold hugger faces the LFA stack (offered-
    load hysteresis detectors at the pod-0 aggregation switches, cross-
    switch suspicious-source sync, droppers); the collision prober faces
    a flow-keyed HashPipe heavy hitter plus a fanout guard that flags
    key-spreading sources (so collisions are the only way to hide); the
    epoch timer faces a source-keyed heavy hitter (a fixed bot
    population cannot spread past per-sender accounting). Damage is the
    over-utilization of the four pod-0 aggregation-to-edge decoy links,
    integrated by {!Ff_obs.Workfactor}. [hardened] switches on
    {!Orchestrator.default_hardening} (jittered thresholds/epochs, salt
    rotation); [Open_loop] replaces the adaptive attacker with a fixed
    blast in the same arena — the baseline both acceptance ratios are
    normalized against. *)

type adversary = Closed_loop | Open_loop

type adversarial_result = {
  ar_strategy : Ff_attacks.Adaptive.strategy;
  ar_hardened : bool;
  ar_adversary : adversary;
  ar_probes : int;
  ar_damage : float;  (** integral of decoy-link over-utilization, util-s *)
  ar_peak_util : float;
  ar_effective_at : float option;
  ar_time_to_effective : float;  (** censored at the horizon *)
  ar_work_factor : float;
  ar_alarms : int;  (** defense alarm raises *)
  ar_drops : int;  (** packets policed off *)
  ar_rotations : int;  (** hash-salt rotations performed *)
  ar_fingerprint : int;  (** attacker decision fingerprint (0 open-loop) *)
  ar_summary : string;
  ar_log : string list;  (** attacker decision log, oldest first *)
}

val run_adversarial :
  strategy:Ff_attacks.Adaptive.strategy ->
  adversary:adversary ->
  ?hardened:bool ->
  ?seed:int ->
  ?duration:float ->
  ?attack_start:float ->
  unit ->
  adversarial_result
(** Defaults: unhardened, seed 1, 70 s with the attack from t=10. The
    same seed replays the identical run (attacker and defense draws are
    both derived from it). *)

val pp_adversarial : Format.formatter -> adversarial_result -> unit

(** {1 Hybrid fluid/packet ISP scenario}

    The scale tier: an ISP-like three-tier topology ({!Ff_topology.Topology.isp})
    carrying 10^5+ concurrent benign flows in the hybrid engine
    ({!Ff_fluid.Hybrid}) while a rolling link-flooding adversary injects
    its volume as fluid aggregates. The wide defense deployment's mode
    protocol drives the hybrid tier's demotion predicate: flows whose
    paths cross a switch with active modes drop to packet fidelity and
    promote back once the region clears. *)

type fluid_result = {
  fr_flows : int;  (** benign hybrid members admitted *)
  fr_classes : int;  (** fluid path classes solved over *)
  fr_duration : float;  (** simulated seconds *)
  fr_packet_tx : int;  (** per-hop packet transmissions (all traffic) *)
  fr_fluid_hop_bytes : float;  (** fluid bytes x links traversed *)
  fr_packet_equivalents : float;
      (** [fluid hop-bytes / packet_size + packet_tx] — total simulated
          forwarding work in packet units *)
  fr_delivered_bytes : float;  (** benign bytes delivered (fluid + packet) *)
  fr_demoted_peak : int;
  fr_demoted_frac_peak : float;
  fr_demotions : int;
  fr_promotions : int;
  fr_mode_changes : int;
  fr_rolls : int;
  fr_rate_events : int;  (** fluid solver invocations *)
  fr_solver : Ff_fluid.Fluid.solver_stats;
      (** incremental-solver telemetry: full-solve fallbacks, classes
          touched per re-solve, loss-coupled AIMD cuts *)
  fr_touched_frac : float;
      (** fraction of active classes the solver actually re-assigned *)
  fr_demote_denied : int;  (** demotions suppressed by [demote_budget] *)
  fr_goodput : Ff_util.Series.t;  (** benign aggregate goodput, bytes/s *)
  fr_drops : (string * int) list;
}

val install_all_routes : Ff_netsim.Net.t -> unit
(** Shortest-path route trees toward every host (BFS per destination,
    transiting switches only). *)

val run_lfa_fluid :
  ?flows:int ->
  ?duration:float ->
  ?force:Ff_fluid.Hybrid.force ->
  ?defended:bool ->
  ?seed:int ->
  ?flow_rate_bps:float ->
  ?packet_size:int ->
  ?update_period:float ->
  ?cores:int ->
  ?access_per_core:int ->
  ?hosts_per_access:int ->
  ?attack_start:float ->
  ?attack_stop:float ->
  ?roll_at:float ->
  ?attack_bps_per_flow:float ->
  ?packet_recon:bool ->
  ?solver:Ff_fluid.Fluid.solver_mode ->
  ?demote_budget:int ->
  ?goodput_period:float ->
  ?obs:Ff_obs.Trace.t ->
  unit ->
  fluid_result
(** Defaults: 100k flows at 25 kb/s each over the default 96-host ISP
    topology for 40 s; the flood (8 bots x 60 Mb/s per decoy aggregate)
    runs from t=10 to t=18 with one roll between decoy groups at t=14.
    [force] selects the engine tier: [Auto] is the hybrid proper,
    [All_packet] reproduces the pure packet engine bit-identically (the
    differential anchor), [All_fluid] never demotes. *)
