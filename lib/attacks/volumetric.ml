module Flow = Ff_netsim.Flow

type t = { mutable flows : Flow.Cbr.t list }

let launch net ~bots ~victim ~rate_pps_per_bot ?(start = 0.) ?stop ?(spoof_as = [])
    ?(spoof_ttl = 48) () =
  let flows =
    List.mapi
      (fun i bot ->
        match spoof_as with
        | [] ->
          Flow.Cbr.start net ~src:bot ~dst:victim ~rate_pps:rate_pps_per_bot ~at:start ?stop ()
        | claims ->
          let claimed = List.nth claims (i mod List.length claims) in
          Flow.Cbr.start net ~src:claimed ~dst:victim ~rate_pps:rate_pps_per_bot ~at:start
            ?stop ~ttl:spoof_ttl ~via:bot ())
      bots
  in
  { flows }

let flows t = t.flows

let packets_sent t = List.fold_left (fun acc f -> acc + Flow.Cbr.sent_packets f) 0 t.flows

let stop_now t = List.iter Flow.Cbr.stop_now t.flows

module Hybrid = Ff_fluid.Hybrid

type fluid = { hybrid : Hybrid.t; members : Hybrid.member list }

let launch_fluid hybrid ~bots ~victim ~rate_bps_per_bot ?(start = 0.) ?stop
    ?(packet_size = 1000) () =
  let rate_pps = rate_bps_per_bot /. float_of_int (8 * packet_size) in
  let members =
    List.map
      (fun bot ->
        Hybrid.add_flow hybrid ~src:bot ~dst:victim ~at:start ?stop
          ~tier:Hybrid.Fluid_only
          (Hybrid.Cbr { rate_pps; packet_size }))
      bots
  in
  { hybrid; members }

let fluid_members f = f.members

let fluid_delivered_bytes f =
  List.fold_left
    (fun acc m -> acc +. Hybrid.delivered_bytes f.hybrid m)
    0. f.members

let fluid_stop_now f = List.iter (Hybrid.stop_member f.hybrid) f.members
