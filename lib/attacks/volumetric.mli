(** Volumetric DDoS: bots blast constant-bit-rate traffic straight at the
    victim, optionally with spoofed sources (which hop-count filtering
    catches: the spoofed source's expected TTL does not match the bot's
    real path length). *)

type t

val launch :
  Ff_netsim.Net.t ->
  bots:int list ->
  victim:int ->
  rate_pps_per_bot:float ->
  ?start:float ->
  ?stop:float ->
  ?spoof_as:int list ->
  ?spoof_ttl:int ->
  unit ->
  t
(** With [spoof_as], each bot claims a source identity drawn round-robin
    from the list, emitting with initial TTL [spoof_ttl] (default 48,
    i.e. visibly different from the simulator's default 64). *)

val flows : t -> Ff_netsim.Flow.Cbr.t list
val packets_sent : t -> int
val stop_now : t -> unit

(** {2 Fluid attack volume}

    The same flood expressed as analytic aggregates in the hybrid tier
    ([Fluid_only], so the defense never pays per-packet cost for the
    volume itself — it observes it through link utilization, which folds
    in fluid load). Spoofing is packet-level machinery and has no fluid
    counterpart. *)

type fluid

val launch_fluid :
  Ff_fluid.Hybrid.t ->
  bots:int list ->
  victim:int ->
  rate_bps_per_bot:float ->
  ?start:float ->
  ?stop:float ->
  ?packet_size:int ->
  unit ->
  fluid

val fluid_members : fluid -> Ff_fluid.Hybrid.member list
val fluid_delivered_bytes : fluid -> float
val fluid_stop_now : fluid -> unit
