module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Flow = Ff_netsim.Flow

type t = {
  net : Net.t;
  bots : int list;
  decoy_groups : int list list;
  stop : float option;
  flows_per_bot : int;
  bot_max_cwnd : float;
  recon_interval : float;
  roll_on_path_change : bool;
  min_roll_gap : float;
  baselines : (int, (int * int) list) Hashtbl.t; (* decoy -> (hop, responder) pre-attack *)
  observed : (int, (int * int) list) Hashtbl.t;
  mutable group : int;
  mutable flows : Flow.Tcp.t list;
  mutable rolls : float list;
  mutable last_roll : float;
  mutable running : bool;
}

let probe_bot t = match t.bots with b :: _ -> b | [] -> invalid_arg "Lfa: no bots"

let responders hops = List.map snd hops

(* A reply lost to congestion is not a route change: compare only the hops
   present in both observations. *)
let paths_differ ~baseline ~observed =
  List.exists
    (fun (hop, responder) ->
      match List.assoc_opt hop baseline with
      | Some expected -> expected <> responder
      | None -> false)
    observed

let stopped t =
  (not t.running) || (match t.stop with Some s -> Net.now t.net >= s | None -> false)

let open_flows t =
  let now = Net.now t.net in
  let decoys = List.nth t.decoy_groups t.group in
  let flows = ref [] in
  List.iter
    (fun bot ->
      for i = 0 to t.flows_per_bot - 1 do
        let dst = List.nth decoys ((bot + i) mod List.length decoys) in
        flows :=
          Flow.Tcp.start t.net ~src:bot ~dst ~at:(now +. 0.01) ?stop:t.stop
            ~max_cwnd:t.bot_max_cwnd ()
          :: !flows
      done)
    t.bots;
  t.flows <- !flows

let halt_flows t = List.iter Flow.Tcp.pause t.flows

let roll t ~why =
  ignore why;
  let now = Net.now t.net in
  if now -. t.last_roll >= t.min_roll_gap && not (stopped t) then begin
    t.last_roll <- now;
    t.rolls <- now :: t.rolls;
    halt_flows t;
    t.group <- (t.group + 1) mod List.length t.decoy_groups;
    open_flows t
  end

(* Reconnaissance loop: traceroute the decoys of the current target group
   and compare with the pre-attack baseline. *)
let recon t () =
  if not (stopped t) then begin
    let decoys = List.nth t.decoy_groups t.group in
    List.iter
      (fun decoy ->
        Flow.Traceroute.run t.net ~src:(probe_bot t) ~dst:decoy
          ~on_done:(fun hops ->
            Hashtbl.replace t.observed decoy hops;
            if t.roll_on_path_change && not (stopped t) then
              match Hashtbl.find_opt t.baselines decoy with
              | Some baseline
                when baseline <> [] && hops <> []
                     && paths_differ ~baseline ~observed:hops ->
                (* the changed path becomes the new reference: the attacker
                   adapts its map, it does not re-roll on the same change *)
                Hashtbl.replace t.baselines decoy hops;
                roll t ~why:"path-change"
              | _ -> ())
          ())
      decoys
  end

let launch net ~bots ~decoy_groups ?(start = 0.) ?stop ?(flows_per_bot = 3)
    ?(bot_max_cwnd = 4.) ?(recon_interval = 1.0) ?(roll_on_path_change = true)
    ?(roll_schedule = []) ?(min_roll_gap = 3.0) () =
  assert (decoy_groups <> [] && List.for_all (fun g -> g <> []) decoy_groups);
  let t =
    {
      net;
      bots;
      decoy_groups;
      stop;
      flows_per_bot;
      bot_max_cwnd;
      recon_interval;
      roll_on_path_change;
      min_roll_gap;
      baselines = Hashtbl.create 8;
      observed = Hashtbl.create 8;
      group = 0;
      flows = [];
      rolls = [];
      last_roll = neg_infinity;
      running = true;
    }
  in
  let engine = Net.engine net in
  (* pre-attack reconnaissance: learn the baseline path to every decoy *)
  Engine.schedule engine ~at:(Float.max 0. (start -. 2.)) (fun () ->
      List.iter
        (fun decoy ->
          Flow.Traceroute.run net ~src:(probe_bot t) ~dst:decoy
            ~on_done:(fun hops -> Hashtbl.replace t.baselines decoy hops)
            ())
        (List.concat decoy_groups));
  Engine.schedule engine ~at:start (fun () -> if t.running then open_flows t);
  Engine.every engine ~start:(start +. t.recon_interval) ~period:t.recon_interval (recon t);
  List.iter
    (fun at -> Engine.schedule engine ~at (fun () -> roll t ~why:"schedule"))
    roll_schedule;
  t

let rolls t = List.rev t.rolls
let current_group t = t.group
let bot_flows t = t.flows

let attack_rate t ~now =
  List.fold_left (fun acc f -> acc +. Flow.Tcp.goodput f ~now) 0. t.flows

let observed_paths t =
  Hashtbl.fold (fun d p acc -> (d, responders p) :: acc) t.observed [] |> List.sort compare

let stop_now t =
  t.running <- false;
  halt_flows t

module Fluid_volume = struct
  module Hybrid = Ff_fluid.Hybrid

  type nonrec t = {
    hybrid : Hybrid.t;
    bots : int list;
    groups : int list array;
    rate_bps_per_flow : float;
    packet_size : int;
    mutable active : Hybrid.member list;
    mutable group : int;
    mutable rolls : float list;
    mutable running : bool;
  }

  let aim t gi =
    List.iter (Hybrid.stop_member t.hybrid) t.active;
    let rate_pps = t.rate_bps_per_flow /. float_of_int (8 * t.packet_size) in
    t.active <-
      List.concat_map
        (fun bot ->
          List.map
            (fun decoy ->
              Hybrid.add_flow t.hybrid ~src:bot ~dst:decoy
                ~tier:Hybrid.Fluid_only
                (Hybrid.Cbr { rate_pps; packet_size = t.packet_size }))
            t.groups.(gi))
        t.bots;
    t.group <- gi

  let roll t ~at =
    if t.running && Array.length t.groups > 1 then begin
      aim t ((t.group + 1) mod Array.length t.groups);
      t.rolls <- at :: t.rolls
    end

  let launch hybrid ~bots ~decoy_groups ~rate_bps_per_flow ?(packet_size = 1000)
      ?(start = 0.) ?stop ?(roll_schedule = []) () =
    let groups = Array.of_list decoy_groups in
    assert (Array.length groups > 0);
    let t =
      { hybrid; bots; groups; rate_bps_per_flow; packet_size; active = [];
        group = 0; rolls = []; running = true }
    in
    let engine = Net.engine (Hybrid.net hybrid) in
    Engine.schedule engine ~at:start (fun () -> if t.running then aim t 0);
    List.iter
      (fun at -> Engine.schedule engine ~at (fun () -> roll t ~at))
      roll_schedule;
    (match stop with
    | Some at ->
      Engine.schedule engine ~at (fun () ->
          t.running <- false;
          List.iter (Hybrid.stop_member t.hybrid) t.active;
          t.active <- [])
    | None -> ());
    t

  let rolls t = List.rev t.rolls
  let current_group t = t.group

  let offered_bps t =
    float_of_int (List.length t.active) *. t.rate_bps_per_flow

  let stop_now t =
    t.running <- false;
    List.iter (Hybrid.stop_member t.hybrid) t.active;
    t.active <- []
end
