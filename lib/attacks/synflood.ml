module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Flow = Ff_netsim.Flow
module Packet = Ff_dataplane.Packet

(* A SYN flood is not a bandwidth attack: each packet is a 64-byte SYN
   opening a *new* connection (fresh flow id every time), aimed at the
   victim's accept backlog rather than its links. Bots never answer the
   SYN-ACK — spoofed sources make sure they could not even if they wanted
   to — so every accepted SYN pins a half-open slot until the server
   times it out. *)

type bot = {
  b_net : Net.t;
  b_via : int;  (* emitting host *)
  b_victim : int;
  b_spoof : int array;  (* claimed sources, cycled; [|b_via|] when honest *)
  b_ttl : int;
  mutable b_sent : int;
  mutable b_running : bool;
}

type t = { bots : bot list; mutable stop_at : float option }

let burst_len = 64

let send_tick b =
  if b.b_running then begin
    let now = Net.now b.b_net in
    let claimed = b.b_spoof.(b.b_sent mod Array.length b.b_spoof) in
    let pkt =
      Packet.make ~size:Packet.control_size ~ttl:b.b_ttl ~payload:Packet.Syn ~src:claimed
        ~dst:b.b_victim ~flow:(Flow.fresh_flow_id b.b_net) ~birth:now ()
    in
    b.b_sent <- b.b_sent + 1;
    Net.send_from_host_via b.b_net ~via:b.b_via pkt;
    true
  end
  else false

let arm b ~start ~rate_pps ~stop =
  let period = 1. /. rate_pps in
  let rec go ~start =
    Engine.schedule_burst (Net.engine b.b_net) ~start ~period ~count:burst_len (fun k ->
        let past_stop =
          match stop with Some s -> Net.now b.b_net >= s | None -> false
        in
        if past_stop then b.b_running <- false;
        let continue = send_tick b in
        if continue && k = burst_len - 1 then go ~start:(Net.now b.b_net +. period);
        continue)
  in
  go ~start

let launch net ~bots ~victim ~syn_rate_pps ?(start = 0.) ?stop ?(spoof_as = [])
    ?(spoof_ttl = 48) () =
  let bot_list =
    List.map
      (fun via ->
        let spoof, ttl =
          match spoof_as with
          | [] -> ([| via |], 64)
          | claims -> (Array.of_list claims, spoof_ttl)
        in
        {
          b_net = net;
          b_via = via;
          b_victim = victim;
          b_spoof = spoof;
          b_ttl = ttl;
          b_sent = 0;
          b_running = true;
        })
      bots
  in
  List.iter (fun b -> arm b ~start ~rate_pps:syn_rate_pps ~stop) bot_list;
  { bots = bot_list; stop_at = stop }

let syns_sent t = List.fold_left (fun acc b -> acc + b.b_sent) 0 t.bots

let stop_now t = List.iter (fun b -> b.b_running <- false) t.bots
