(** Closed-loop adaptive adversaries.

    Unlike the open-loop attack generators in {!Traffic}, these engines
    {e react} to the defense — but only through signals a real botnet
    has: end-to-end loss and retransmissions of its own flows, measured
    at hosts it controls. They never read switch or booster state.
    Three strategies:

    - {b threshold hugger} ([Threshold_hug]): floods the decoy links,
      watches its persistent TCP sensor flows for the retransmission
      burst that means the LFA defense alarmed, then binary-searches
      the aggregate rate down to just under the alarm point and camps
      there — chronic congestion with no (or rare) alarms;
    - {b collision prober} ([Collision_probe]): crafts fresh flow keys
      in interleaved heavy/mouse pairs and trial-floods each pair just
      over the heavy-hitter threshold; a pair whose heavy key survives
      a full trial unpoliced occupies the same HashPipe slot as its
      chaser, so neither residency accumulates — it is promoted to a
      full-rate blast hidden from the sketch;
    - {b epoch timer} ([Epoch_time]): sends calibration bursts and
      records when each one starts being policed; the onsets sit on the
      defense's epoch-tick lattice, so folding them over candidate
      periods recovers cadence and phase. It then pulses its full rate
      across predicted epoch boundaries, splitting the bytes so each
      epoch's per-sender count stays under threshold.

    All decisions fold into a {!fingerprint} via {!Ff_dataplane.Hash},
    and every observation or emission packet increments {!probes_sent}
    — the numerator of the work-factor metric
    ({!Ff_obs.Workfactor}). The scenario harness owns pairing the two.

    Determinism: all randomness comes from the seeded config; the same
    seed and network replay the identical run bit-for-bit. *)

type strategy = Threshold_hug | Collision_probe | Epoch_time

val strategy_name : strategy -> string

type config = {
  seed : int;
  observe_period : float;  (** decision-loop cadence, s *)
  tx_period : float;  (** emitter pacing quantum, s *)
  start : float;  (** attack begins *)
  stop : float;  (** attack ends (emitters gate off) *)
  keys_per_emitter : int;  (** hugger fan-out per (bot, target) *)
  hug_start_rate : float;  (** aggregate b/s at ramp start *)
  hug_growth : float;  (** multiplicative ramp per tick *)
  hug_settle : float;  (** back-off dwell after an alarm, s *)
  hug_probe_hold : float;  (** how long a midpoint must stay clean, s *)
  hug_precision : float;  (** stop when hi/lo <= 1 + precision *)
  hug_idle_frac : float;  (** settle-phase rate, fraction of start *)
  cp_trial_rate : float;  (** per-key trial rate, b/s *)
  cp_trials : int;  (** parallel pair trials per round *)
  cp_trial_len : float;  (** trial duration, s (>= 2 HH epochs) *)
  cp_blast_rate : float;  (** promoted-pair rate, b/s *)
  cp_pairs_wanted : int;  (** stop probing once this many blast *)
  cp_loss_found : float;  (** trial loss below this = not policed *)
  cp_loss_dead : float;  (** blast loss above this = caught *)
  et_cal_rate : float;  (** calibration burst rate, b/s *)
  et_cal_len : float;  (** max burst length, s *)
  et_cal_gap : float;  (** gap between bursts, s *)
  et_onsets_needed : int;  (** onsets before period estimation *)
  et_pulse_rate : float;  (** aggregate pulse rate, b/s *)
  et_pulse_duty : float;
      (** pulse width as a fraction of the pulse period (two learned
          epochs — pulsing every epoch would fill every epoch with a full
          duty cycle of bytes regardless of phase) *)
  et_pulse_bots : int;
      (** pulse senders (strided across the botnet so no shared uplink
          dilutes their per-sender rate below the detector's threshold) *)
}

val default_config : config

type t

val launch :
  Ff_netsim.Net.t ->
  strategy:strategy ->
  bots:int list ->
  targets:int list ->
  sinks:int list ->
  ?config:config ->
  unit ->
  t
(** Install the attacker on the network: emitters, sensor flows and the
    decision loop are scheduled on the engine; run the engine to run
    the attack. [bots] are compromised source hosts; [targets] are the
    decoy destinations the hugger floods (it also aims its TCP sensors
    there); [sinks] are attacker-controlled receiver hosts where the
    prober and timer register delivery counters for their crafted keys
    (required for those strategies). *)

val probes_sent : t -> int
(** Packets spent observing: sensor-flow packets, collision-trial
    packets, calibration bursts. Blast/flood traffic is not a probe. *)

val mitigation_detected : t -> bool
(** The attacker's current belief that the defense is actively policing
    it — the hook {!Ff_chaos.Chaos.strategic} polls to time faults. *)

val fingerprint : t -> int
(** Order-sensitive fold of every decision the strategy made (rates
    chosen, trials scored, onsets recorded) plus emitter packet counts.
    Two runs with the same seed must agree bit-for-bit. *)

val summary : t -> string
(** One-line belief-state summary for logs and bench output. *)

val log : t -> (float * string) list
(** Timestamped decision log, oldest first. *)
