(** SYN flood: bots open connections they never finish. Each packet is a
    64-byte SYN with a fresh flow id — the target is the victim's accept
    backlog, not its links, so the attack rate that kills a server is
    orders of magnitude below a volumetric flood. Spoofed sources make
    the bots unable to answer the SYN-ACK even by accident, pinning each
    half-open slot until the server times it out. *)

type t

val launch :
  Ff_netsim.Net.t ->
  bots:int list ->
  victim:int ->
  syn_rate_pps:float ->
  ?start:float ->
  ?stop:float ->
  ?spoof_as:int list ->
  ?spoof_ttl:int ->
  unit ->
  t
(** Each bot emits SYNs at [syn_rate_pps]. With [spoof_as], claimed
    sources are drawn round-robin from the list and packets carry initial
    TTL [spoof_ttl] (default 48); without it bots use their own address
    (and still never complete the handshake). *)

val syns_sent : t -> int
val stop_now : t -> unit
