(** The Crossfire-style rolling link-flooding adversary (paper section 4;
    Kang et al., IEEE S&P '13).

    The attacker controls bot hosts and targets a victim it never sends a
    byte to: it maps paths to {e public decoy servers} near the victim with
    traceroute, picks the decoy group whose paths cross a chosen target
    link, and has every bot open many persistent low-rate TCP flows to
    those decoys — individually indistinguishable from legitimate traffic,
    collectively enough to flood the link.

    The {e rolling} behaviour: the attacker keeps tracerouting its decoys;
    when the observed path differs from the baseline it learned before
    attacking (i.e. the defense rerouted its flows), it shifts the flood to
    the next decoy group — faster than a periodic TE controller can chase.
    A [roll_schedule] can additionally force rolls at fixed times (the
    paper's rounds 1-3), making baseline and FastFlex runs face the same
    adversary timeline. *)

type t

val launch :
  Ff_netsim.Net.t ->
  bots:int list ->
  decoy_groups:int list list ->
  ?start:float ->
  ?stop:float ->
  ?flows_per_bot:int ->
  ?bot_max_cwnd:float ->
  ?recon_interval:float ->
  ?roll_on_path_change:bool ->
  ?roll_schedule:float list ->
  ?min_roll_gap:float ->
  unit ->
  t
(** Each decoy group is the set of public servers whose paths share one
    target link. Defaults: 3 flows per bot, bot window capped at 4
    packets (low-rate), traceroute every 1 s, rolling on path change
    enabled, at most one roll per [min_roll_gap] = 3 s. *)

val rolls : t -> float list
(** Times the attacker shifted target (oldest first). *)

val current_group : t -> int
val bot_flows : t -> Ff_netsim.Flow.Tcp.t list
(** Currently active attack flows. *)

val attack_rate : t -> now:float -> float
(** Aggregate goodput its flows achieve, bytes/s (what the attacker
    believes it is landing on the target). *)

val observed_paths : t -> (int * int list) list
(** Decoy -> last observed traceroute responders. *)

val stop_now : t -> unit

(** The rolling flood's {e volume} expressed as fluid aggregates in the
    hybrid tier: each bot offers a constant-rate aggregate toward every
    decoy of the current group, rolled between groups on a fixed schedule.
    The aggregates are [Fluid_only] — the defense observes them through
    link utilization (which folds in fluid load) instead of paying
    per-packet simulation cost for the flood itself; pair it with {!launch}
    for the packet-level recon/low-rate-TCP machinery the classifiers
    inspect. *)
module Fluid_volume : sig
  type t

  val launch :
    Ff_fluid.Hybrid.t ->
    bots:int list ->
    decoy_groups:int list list ->
    rate_bps_per_flow:float ->
    ?packet_size:int ->
    ?start:float ->
    ?stop:float ->
    ?roll_schedule:float list ->
    unit ->
    t

  val rolls : t -> float list
  val current_group : t -> int

  val offered_bps : t -> float
  (** Aggregate offered attack volume of the active group, bits/s. *)

  val stop_now : t -> unit
end
