module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Flow = Ff_netsim.Flow
module Packet = Ff_dataplane.Packet
module Hash = Ff_dataplane.Hash
module Prng = Ff_util.Prng

type strategy = Threshold_hug | Collision_probe | Epoch_time

let strategy_name = function
  | Threshold_hug -> "threshold-hug"
  | Collision_probe -> "collision-probe"
  | Epoch_time -> "epoch-time"

type config = {
  seed : int;
  observe_period : float;
  tx_period : float;
  start : float;
  stop : float;
  keys_per_emitter : int;
  (* threshold hugger *)
  hug_start_rate : float;
  hug_growth : float;
  hug_settle : float;
  hug_probe_hold : float;
  hug_precision : float;
  hug_idle_frac : float;
  (* collision prober *)
  cp_trial_rate : float;
  cp_trials : int;
  cp_trial_len : float;
  cp_blast_rate : float;
  cp_pairs_wanted : int;
  cp_loss_found : float;
  cp_loss_dead : float;
  (* epoch timer *)
  et_cal_rate : float;
  et_cal_len : float;
  et_cal_gap : float;
  et_onsets_needed : int;
  et_pulse_rate : float;
  et_pulse_duty : float;
  et_pulse_bots : int;
}

let default_config =
  {
    seed = 0xADA9;
    observe_period = 0.5;
    tx_period = 0.02;
    start = 10.;
    stop = 70.;
    keys_per_emitter = 2;
    hug_start_rate = 4_000_000.;
    hug_growth = 1.35;
    hug_settle = 6.0;
    hug_probe_hold = 3.0;
    hug_precision = 0.10;
    hug_idle_frac = 0.02;
    cp_trial_rate = 1_400_000.;
    cp_trials = 2;
    cp_trial_len = 2.5;
    (* one pair at a time, blasting just under the bottleneck capacity:
       stacking pairs or overshooting only manufactures congestion loss,
       which the loss-based feedback cannot tell apart from policing and
       prunes as if the defense had caught up *)
    cp_blast_rate = 8_500_000.;
    cp_pairs_wanted = 1;
    cp_loss_found = 0.25;
    cp_loss_dead = 0.6;
    et_cal_rate = 3_000_000.;
    (* a burst must outlive the defense's worst-case detection latency
       (rest of the current epoch + one full epoch + mode propagation) or
       it is never policed and yields no onset *)
    et_cal_len = 2.6;
    et_cal_gap = 1.3;
    et_onsets_needed = 5;
    et_pulse_rate = 11_200_000.;
    et_pulse_duty = 0.25;
    (* few senders, each well over the per-sender threshold when a pulse
       is mis-timed: spraying the pulse over the whole botnet would slip
       under per-sender accounting by dilution alone, no timing needed *)
    et_pulse_bots = 4;
  }

(* ---------------- observation: per-key delivery stats ---------------- *)

(* What the botnet can legitimately measure about a crafted flow: its own
   send count and the receive count at a host it controls. Window fields
   reset every observation tick; totals accumulate from [reset_total]
   (per-trial accounting). *)
type keystat = {
  mutable sent_w : int;
  mutable rcvd_w : int;
  mutable sent_t : int;
  mutable rcvd_t : int;
  mutable last_loss : float; (* previous completed window's loss *)
}

(* ---------------- emitters ---------------- *)

(* A crafted constant-rate packet source under full attacker control:
   arbitrary flow keys (rotated per packet — the collision prober's
   interleaved heavy/mouse pair), retunable rate, and a probe flag that
   routes its packet count into the work-factor probe tally. *)
type emitter = {
  e_src : int;
  e_dst : int;
  mutable e_keys : int array;
  mutable e_key_i : int;
  mutable e_rate : float; (* bits/s *)
  e_size : int;
  mutable e_credit : float;
  mutable e_on : bool;
  mutable e_probe : bool;
  mutable e_pulse : bool; (* gated on the epoch timer's predicted blind window *)
  mutable e_seq : int;
}

(* ---------------- strategy state ---------------- *)

type hug_phase =
  | Ramping
  | Settling of float (* no earlier than *)
  | Probing of float (* midpoint under observation since *)
  | Holding

type hug_state = {
  mutable h_phase : hug_phase;
  mutable h_rate : float; (* current aggregate bits/s *)
  mutable h_lo : float; (* highest rate observed safe *)
  mutable h_hi : float; (* lowest rate observed mitigated *)
  mutable h_retx : int; (* total sensor retransmissions at last tick *)
  mutable h_trips : int;
}

type cp_trial = { t_h : int; t_m : int; t_em : emitter }

type cp_state = {
  mutable c_trials : cp_trial list;
  mutable c_round_ends : float;
  mutable c_found : cp_trial list; (* promoted to blast emitters *)
  mutable c_bot_i : int;
  mutable c_rounds : int;
}

type et_phase = Calibrating | Pulsing

type et_state = {
  mutable p_phase : et_phase;
  mutable p_onsets : float list;
  mutable p_cal : (emitter * int * float) option; (* emitter, key, burst start *)
  mutable p_next_cal : float;
  mutable p_cal_bot : int;
  mutable p_period : float;
  mutable p_anchor : float; (* estimated epoch boundary offset *)
  mutable p_pulsing_since : float;
  mutable p_pulse_loss : float; (* EWMA of pulse-window loss *)
  mutable p_recals : int;
}

type state = Hug of hug_state | Cp of cp_state | Et of et_state

type t = {
  net : Net.t;
  strategy : strategy;
  cfg : config;
  bots : int array;
  targets : int array;
  sinks : int array;
  rng : Prng.t;
  emitters : emitter list ref;
  keystats : (int, keystat) Hashtbl.t;
  sensors : Flow.Tcp.t array;
  mutable sensor_sent : int; (* TCP sensor packets counted as probes *)
  mutable probes : int;
  mutable fp : int; (* running decision fingerprint *)
  mutable log : (float * string) list;
  mutable mitigated : bool; (* belief: defense is actively policing us *)
  state : state;
}

let fp_mix t v = t.fp <- Hash.mix ~seed:t.fp ~lane:0 v
let fp_mix_f t x = fp_mix t (Int64.to_int (Int64.bits_of_float x))

let logf t fmt =
  Printf.ksprintf
    (fun s ->
      fp_mix t (Hashtbl.hash s);
      t.log <- (Net.now t.net, s) :: t.log)
    fmt

(* The attacker crafts its own flow keys from its seeded RNG — it is
   searching the defense's hash space, not asking the network for ids.
   The offset keeps crafted keys disjoint from the net's allocator so a
   crafted key can never cross-wire a benign flow's sink receiver. *)
let fresh_key t = 0x10000 + Prng.int t.rng 0x3FFF_FFFF

let keystat t key =
  match Hashtbl.find_opt t.keystats key with
  | Some ks -> ks
  | None ->
    let ks = { sent_w = 0; rcvd_w = 0; sent_t = 0; rcvd_t = 0; last_loss = 0. } in
    Hashtbl.replace t.keystats key ks;
    ks

(* Register a receiver on an attacker-controlled sink for a crafted key:
   the only delivery feedback a real botnet has. *)
let track t ~sink ~key =
  let ks = keystat t key in
  Hashtbl.replace (Net.host t.net sink).Net.receivers key
    (fun _pkt ->
      ks.rcvd_w <- ks.rcvd_w + 1;
      ks.rcvd_t <- ks.rcvd_t + 1)

let untrack t ~sink ~key =
  Hashtbl.remove (Net.host t.net sink).Net.receivers key;
  Hashtbl.remove t.keystats key

let window_loss t key =
  match Hashtbl.find_opt t.keystats key with
  | None -> 0.
  | Some ks -> if ks.sent_w <= 4 then ks.last_loss else 1. -. (float_of_int ks.rcvd_w /. float_of_int ks.sent_w)

let total_loss t key =
  match Hashtbl.find_opt t.keystats key with
  | None -> 0.
  | Some ks ->
    if ks.sent_t = 0 then 0. else 1. -. (float_of_int ks.rcvd_t /. float_of_int ks.sent_t)

let roll_windows t =
  Hashtbl.iter
    (fun _ ks ->
      if ks.sent_w > 4 then
        ks.last_loss <- 1. -. (float_of_int ks.rcvd_w /. float_of_int ks.sent_w);
      ks.sent_w <- 0;
      ks.rcvd_w <- 0)
    t.keystats

let new_emitter t ~src ~dst ~keys ~rate ~probe =
  let e =
    { e_src = src; e_dst = dst; e_keys = keys; e_key_i = 0; e_rate = rate; e_size = 1000;
      e_credit = 0.; e_on = true; e_probe = probe; e_pulse = false; e_seq = 0 }
  in
  t.emitters := e :: !(t.emitters);
  e

(* Is [now] inside the epoch timer's predicted blind window — the pulse
   straddling a learned epoch boundary? Evaluated per tx tick: the
   windows are sub-second, far finer than the decision loop's cadence. *)
let et_in_pulse t (e : et_state) now =
  let half = t.cfg.et_pulse_duty *. e.p_period /. 2. in
  let u = Float.rem (now -. e.p_anchor +. (1000. *. e.p_period)) e.p_period in
  u >= e.p_period -. half || u < half

let tx_tick t () =
  let now = Net.now t.net in
  let pulse_on =
    match t.state with
    | Et e -> e.p_phase = Pulsing && et_in_pulse t e now
    | _ -> false
  in
  if now >= t.cfg.start && now < t.cfg.stop then
    List.iter
      (fun e ->
        if e.e_on && (not e.e_pulse || pulse_on) && e.e_rate > 0. then begin
          e.e_credit <-
            e.e_credit +. (e.e_rate *. t.cfg.tx_period /. (8. *. float_of_int e.e_size));
          let n = int_of_float e.e_credit in
          let n = if n > 2000 then 2000 else n in
          e.e_credit <- e.e_credit -. float_of_int n;
          for _ = 1 to n do
            let key = e.e_keys.(e.e_key_i) in
            e.e_key_i <- (e.e_key_i + 1) mod Array.length e.e_keys;
            e.e_seq <- e.e_seq + 1;
            (match Hashtbl.find_opt t.keystats key with
            | Some ks ->
              ks.sent_w <- ks.sent_w + 1;
              ks.sent_t <- ks.sent_t + 1
            | None -> ());
            if e.e_probe then t.probes <- t.probes + 1;
            Net.send_from_host t.net
              (Packet.make_data ~size:e.e_size ~seq:e.e_seq ~ttl:64 ~src:e.e_src ~dst:e.e_dst
                 ~flow:key ~birth:now)
          done
        end)
      !(t.emitters)

(* ---------------- threshold hugger ---------------- *)

(* The per-(bot, target) flood emitters the hugger retunes as one knob:
   aggregate rate spread evenly, several keys per emitter so the fan-in
   at each decoy looks like Crossfire (and so per-key rates stay small). *)
let hug_apply t (h : hug_state) rate =
  h.h_rate <- rate;
  let n = List.length !(t.emitters) in
  if n > 0 then begin
    let per = rate /. float_of_int n in
    List.iter (fun e -> e.e_rate <- per) !(t.emitters)
  end;
  fp_mix_f t rate

let hug_setup t h =
  Array.iteri
    (fun ti target ->
      Array.iteri
        (fun bi bot ->
          ignore (ti, bi);
          let keys = Array.init t.cfg.keys_per_emitter (fun _ -> fresh_key t) in
          ignore (new_emitter t ~src:bot ~dst:target ~keys ~rate:0. ~probe:false))
        t.bots)
    t.targets;
  hug_apply t h t.cfg.hug_start_rate

(* Mitigation signal: the TCP sensor flows toward each target are exactly
   the persistent low-rate traffic the defense polices once alarmed, so a
   jump in their retransmissions is the attacker's tell. *)
let sensors_retx t =
  Array.fold_left (fun acc s -> acc + Flow.Tcp.retransmissions s) 0 t.sensors

let hug_decide t (h : hug_state) now =
  let retx = sensors_retx t in
  let tripped = retx - h.h_retx >= 2 in
  h.h_retx <- retx;
  t.mitigated <- tripped;
  let idle = t.cfg.hug_idle_frac *. t.cfg.hug_start_rate in
  let back_off () =
    h.h_hi <- h.h_rate;
    if h.h_lo >= h.h_hi then h.h_lo <- h.h_hi /. t.cfg.hug_growth;
    h.h_trips <- h.h_trips + 1;
    logf t "hug: tripped at %.0f" h.h_rate;
    hug_apply t h idle;
    h.h_phase <- Settling (now +. t.cfg.hug_settle)
  in
  let narrow_or_hold () =
    if h.h_hi /. h.h_lo <= 1. +. t.cfg.hug_precision then begin
      logf t "hug: holding at %.0f" h.h_lo;
      hug_apply t h h.h_lo;
      h.h_phase <- Holding
    end
    else begin
      let mid = (h.h_lo +. h.h_hi) /. 2. in
      hug_apply t h mid;
      h.h_phase <- Probing now
    end
  in
  match h.h_phase with
  | Ramping ->
    if tripped then back_off ()
    else begin
      h.h_lo <- Float.max h.h_lo h.h_rate;
      hug_apply t h (h.h_rate *. t.cfg.hug_growth)
    end
  | Settling until ->
    (* wait out the defense's clear-hold: resume only once the sensors
       have been clean past the deadline *)
    if now >= until && not tripped then narrow_or_hold ()
  | Probing since ->
    if tripped then back_off ()
    else if now -. since >= t.cfg.hug_probe_hold then begin
      h.h_lo <- h.h_rate;
      narrow_or_hold ()
    end
  | Holding -> if tripped then back_off ()

(* ---------------- collision prober ---------------- *)

let cp_start_round t (c : cp_state) now =
  let sink = t.sinks.(0) in
  c.c_rounds <- c.c_rounds + 1;
  let trials =
    List.init t.cfg.cp_trials (fun _ ->
        let bot = t.bots.(c.c_bot_i) in
        c.c_bot_i <- (c.c_bot_i + 1) mod Array.length t.bots;
        let h = fresh_key t and m = fresh_key t in
        track t ~sink ~key:h;
        track t ~sink ~key:m;
        (* interleaved heavy/mouse pair: every packet of [h] is chased by
           one of [m], so if they collide in the HashPipe's first stage
           neither residency ever accumulates a full epoch of bytes *)
        let em =
          new_emitter t ~src:bot ~dst:sink ~keys:[| h; m |]
            ~rate:(2. *. t.cfg.cp_trial_rate) ~probe:true
        in
        { t_h = h; t_m = m; t_em = em })
  in
  c.c_trials <- trials;
  c.c_round_ends <- now +. t.cfg.cp_trial_len;
  fp_mix t c.c_rounds;
  logf t "cp: round %d (%d trials)" c.c_rounds (List.length trials)

let cp_decide t (c : cp_state) now =
  let sink = t.sinks.(0) in
  (* prune blasting pairs the defense caught up with (salt rotation) *)
  let live, dead =
    List.partition (fun tr -> window_loss t tr.t_h < t.cfg.cp_loss_dead) c.c_found
  in
  List.iter
    (fun tr ->
      tr.t_em.e_on <- false;
      untrack t ~sink ~key:tr.t_h;
      untrack t ~sink ~key:tr.t_m;
      logf t "cp: pair (%d,%d) went stale" tr.t_h tr.t_m)
    dead;
  c.c_found <- live;
  t.mitigated <- dead <> [];
  (* score a finished trial round *)
  if c.c_trials <> [] && now >= c.c_round_ends then begin
    List.iter
      (fun tr ->
        (* both keys must come through clean: "heavy hidden, mouse
           policed" means a third party occupies the heavy's slot, not
           our chaser — such cover evaporates the moment the blast
           congests the path and the hider backs off *)
        let loss = Float.max (total_loss t tr.t_h) (total_loss t tr.t_m) in
        fp_mix_f t loss;
        if loss <= t.cfg.cp_loss_found && tr.t_em.e_seq > 50 then begin
          (* evaded the heavy-hitter for a whole trial: promote to blast *)
          tr.t_em.e_probe <- false;
          tr.t_em.e_rate <- t.cfg.cp_blast_rate;
          c.c_found <- tr :: c.c_found;
          logf t "cp: collision found (%d,%d) loss=%.2f" tr.t_h tr.t_m loss
        end
        else begin
          tr.t_em.e_on <- false;
          untrack t ~sink ~key:tr.t_h;
          untrack t ~sink ~key:tr.t_m
        end)
      c.c_trials;
    c.c_trials <- []
  end;
  if c.c_trials = [] && List.length c.c_found < t.cfg.cp_pairs_wanted then
    cp_start_round t c now

(* ---------------- epoch timer ---------------- *)

(* Fold the observed mitigation onsets over candidate periods and keep the
   longest period that concentrates them: onsets live on the epoch-tick
   lattice, so every divisor of the true period also scores high
   (sub-harmonics), while multiples split into clusters and score low. *)
let et_estimate_period onsets =
  let n = float_of_int (List.length onsets) in
  let score p =
    let sx = ref 0. and sy = ref 0. in
    List.iter
      (fun o ->
        let a = 2. *. Float.pi *. o /. p in
        sx := !sx +. cos a;
        sy := !sy +. sin a)
      onsets;
    sqrt (((!sx *. !sx) +. (!sy *. !sy))) /. n
  in
  let best = ref 0. and best_p = ref 1.0 in
  let p = ref 0.4 in
  while !p <= 2.4 do
    let s = score !p in
    (* strictly-better keeps the scan deterministic; the >= on the
       tail pass below prefers the longest near-max period *)
    if s > !best then begin
      best := s;
      best_p := !p
    end;
    p := !p +. 0.01
  done;
  let chosen = ref !best_p in
  let p = ref 0.4 in
  while !p <= 2.4 do
    if score !p >= 0.92 *. !best && !p > !chosen then chosen := !p;
    p := !p +. 0.01
  done;
  (* refine: pairwise onset spacings are integer multiples of the true
     period, so a weighted ratio estimate removes the scan's 0.01
     quantization — a 2% period error walks the pulse train off the
     boundaries within a dozen epochs *)
  let p0 = !chosen in
  let os = Array.of_list onsets in
  let sum_d = ref 0. and sum_m = ref 0. in
  Array.iteri
    (fun i oi ->
      Array.iteri
        (fun j oj ->
          if j > i then begin
            let d = oj -. oi in
            let m = Float.round (d /. p0) in
            if m >= 1. then begin
              sum_d := !sum_d +. d;
              sum_m := !sum_m +. m
            end
          end)
        os)
    os;
  if !sum_m > 0. then !sum_d /. !sum_m else p0

let et_anchor onsets p =
  let sx = ref 0. and sy = ref 0. in
  List.iter
    (fun o ->
      let a = 2. *. Float.pi *. o /. p in
      sx := !sx +. cos a;
      sy := !sy +. sin a)
    onsets;
  let a = atan2 !sy !sx in
  let b = a /. (2. *. Float.pi) *. p in
  if b < 0. then b +. p else b

let et_end_cal t (e : et_state) ~onset =
  match e.p_cal with
  | None -> ()
  | Some (em, key, started) ->
    em.e_on <- false;
    untrack t ~sink:t.sinks.(0) ~key;
    e.p_cal <- None;
    (match onset with
    | Some at ->
      e.p_onsets <- at :: e.p_onsets;
      fp_mix_f t at;
      logf t "et: onset at %.2f (burst from %.2f)" at started
    | None -> ())

(* decorrelate the calibration cadence from the epoch lattice: with a
   fixed gap the onsets land on every k-th boundary and the period scan
   locks onto the k-fold super-harmonic *)
(* Wide randomization on purpose: detection latency quantizes onsets
   onto the epoch lattice, so a narrow gap distribution can make every
   consecutive onset spacing the same multiple of the true period — and
   then the period, its divisors and that multiple all explain the data
   equally well. Spreading burst starts across well over one epoch mixes
   the spacing multiples and leaves the true period as the unique gcd. *)
let et_gap t = t.cfg.et_cal_gap *. (0.6 +. Prng.float t.rng 1.4)

let et_begin_cal t (e : et_state) now =
  let sink = t.sinks.(0) in
  let bot = t.bots.(e.p_cal_bot) in
  e.p_cal_bot <- (e.p_cal_bot + 1) mod Array.length t.bots;
  let key = fresh_key t in
  track t ~sink ~key;
  let em = new_emitter t ~src:bot ~dst:sink ~keys:[| key |] ~rate:t.cfg.et_cal_rate ~probe:true in
  e.p_cal <- Some (em, key, now);
  (* Fine-grained onset watcher: the decision loop's 0.5 s cadence is far
     too coarse to localize an epoch boundary, so each burst runs its own
     50 ms delivery-rate monitor. Policing shows as the delivered rate
     collapsing below 40% of a previously healthy (>= 70%) level; the
     window midpoint is the onset estimate. *)
  let expect = t.cfg.et_cal_rate *. 0.05 /. (8. *. float_of_int em.e_size) in
  let prev_rcvd = ref (keystat t key).rcvd_t in
  let healthy = ref false in
  let engine = Net.engine t.net in
  Engine.every engine ~start:(now +. 0.05) ~until:(now +. t.cfg.et_cal_len) ~period:0.05
    (fun () ->
      match e.p_cal with
      | Some (_, k, started) when k = key -> begin
        let rcvd = (keystat t key).rcvd_t in
        let got = float_of_int (rcvd - !prev_rcvd) in
        prev_rcvd := rcvd;
        let tnow = Net.now t.net in
        if got >= 0.7 *. expect then healthy := true
        else if !healthy && got <= 0.4 *. expect && tnow -. started > 0.15 then begin
          t.mitigated <- true;
          et_end_cal t e ~onset:(Some (tnow -. 0.025));
          e.p_next_cal <- tnow +. et_gap t
        end
      end
      | _ -> ())

let et_enter_pulsing t e now =
  let p = et_estimate_period (List.rev e.p_onsets) in
  let b = et_anchor e.p_onsets p in
  (* pulse every SECOND epoch: a pulse train with period equal to the
     epoch length puts a full duty cycle of bytes into every epoch no
     matter the phase (each epoch sees the tail of one pulse and the head
     of the next). Straddling only hides volume when the epochs between
     pulses are quiet, so each measured epoch contains half a pulse. *)
  e.p_period <- 2. *. p;
  e.p_anchor <- b;
  e.p_phase <- Pulsing;
  e.p_pulsing_since <- now;
  e.p_pulse_loss <- 0.;
  fp_mix_f t p;
  fp_mix_f t b;
  logf t "et: pulsing period=%.2f anchor=%.2f" p b;
  (* a strided subset of pulse bots, fresh keys: striding spreads the
     senders across upstream pods so no shared uplink dilutes their rate
     before it reaches the per-sender accounting, and each sender stays
     under threshold only when its pulse straddles an epoch boundary *)
  let sink = t.sinks.(0) in
  let nb = min t.cfg.et_pulse_bots (Array.length t.bots) in
  let stride = Stdlib.max 1 (Array.length t.bots / nb) in
  let per_bot = t.cfg.et_pulse_rate /. float_of_int nb in
  for i = 0 to nb - 1 do
    let bot = t.bots.(i * stride mod Array.length t.bots) in
    let key = fresh_key t in
    track t ~sink ~key;
    let em = new_emitter t ~src:bot ~dst:sink ~keys:[| key |] ~rate:per_bot ~probe:false in
    em.e_pulse <- true
  done

let et_leave_pulsing t e now =
  List.iter (fun em -> em.e_on <- false) !(t.emitters);
  e.p_onsets <- [];
  e.p_recals <- e.p_recals + 1;
  e.p_phase <- Calibrating;
  e.p_next_cal <- now +. et_gap t;
  logf t "et: recalibrating (#%d)" e.p_recals

let et_decide t (e : et_state) now =
  match e.p_phase with
  | Calibrating -> begin
    match e.p_cal with
    | Some (_, _, started) ->
      (* onset detection lives in the 50 ms watcher attached to the burst;
         here we only expire bursts that ran their full length un-policed *)
      if now -. started >= t.cfg.et_cal_len then begin
        et_end_cal t e ~onset:None;
        e.p_next_cal <- now +. et_gap t
      end
    | None ->
      if List.length e.p_onsets >= t.cfg.et_onsets_needed then et_enter_pulsing t e now
      else if now >= e.p_next_cal then et_begin_cal t e now
  end
  | Pulsing ->
    (* the 0.02 s transmit tick gates [e_pulse] emitters on the predicted
       blind window itself; the decision tick only watches for policing *)
    let loss =
      List.fold_left
        (fun acc em ->
          if em.e_pulse then Float.max acc (window_loss t em.e_keys.(0)) else acc)
        0. !(t.emitters)
    in
    e.p_pulse_loss <- (0.7 *. e.p_pulse_loss) +. (0.3 *. loss);
    t.mitigated <- e.p_pulse_loss > 0.4;
    if now -. e.p_pulsing_since > 3. *. e.p_period && e.p_pulse_loss > 0.5 then
      et_leave_pulsing t e now

(* ---------------- lifecycle ---------------- *)

let observe_tick t () =
  let now = Net.now t.net in
  if now >= t.cfg.start && now < t.cfg.stop then begin
    (* TCP sensor packets are probes too: they are the observation budget *)
    let s = Array.fold_left (fun acc f -> acc + Flow.Tcp.sent_packets f) 0 t.sensors in
    t.probes <- t.probes + (s - t.sensor_sent);
    t.sensor_sent <- s;
    (match t.state with
    | Hug h -> hug_decide t h now
    | Cp c -> cp_decide t c now
    | Et e -> et_decide t e now);
    roll_windows t
  end
  else if now >= t.cfg.stop then List.iter (fun e -> e.e_on <- false) !(t.emitters)

let launch net ~strategy ~bots ~targets ~sinks ?(config = default_config) () =
  if bots = [] then invalid_arg "Adaptive.launch: no bots";
  let cfg = config in
  let state =
    match strategy with
    | Threshold_hug ->
      Hug
        { h_phase = Ramping; h_rate = 0.; h_lo = cfg.hug_start_rate /. 2.; h_hi = infinity;
          h_retx = 0; h_trips = 0 }
    | Collision_probe ->
      Cp { c_trials = []; c_round_ends = 0.; c_found = []; c_bot_i = 0; c_rounds = 0 }
    | Epoch_time ->
      Et
        { p_phase = Calibrating; p_onsets = []; p_cal = None; p_next_cal = cfg.start;
          p_cal_bot = 0; p_period = 1.0; p_anchor = 0.; p_pulsing_since = 0.;
          p_pulse_loss = 0.; p_recals = 0 }
  in
  let bots = Array.of_list bots in
  let sensors =
    match strategy with
    | Threshold_hug ->
      (* one persistent low-rate sensor per target, started before the
         attack so the flows are aged when classification looks at them *)
      Array.of_list
        (List.mapi
           (fun i target ->
             Flow.Tcp.start net ~src:bots.(i mod Array.length bots) ~dst:target
               ~at:(Float.max 0.5 (cfg.start -. 5.)) ~max_cwnd:2. ())
           targets)
    | _ -> [||]
  in
  if strategy <> Threshold_hug && sinks = [] then invalid_arg "Adaptive.launch: no sinks";
  let t =
    {
      net;
      strategy;
      cfg;
      bots;
      targets = Array.of_list targets;
      sinks = Array.of_list sinks;
      rng = Prng.create ~seed:cfg.seed;
      emitters = ref [];
      keystats = Hashtbl.create 64;
      sensors;
      sensor_sent = 0;
      probes = 0;
      fp = cfg.seed;
      log = [];
      mitigated = false;
      state;
    }
  in
  (match t.state with Hug h -> hug_setup t h | _ -> ());
  let engine = Net.engine net in
  Engine.every engine ~start:cfg.start ~period:cfg.tx_period (tx_tick t);
  Engine.every engine
    ~start:(cfg.start +. cfg.observe_period)
    ~period:cfg.observe_period (observe_tick t);
  t

let probes_sent t = t.probes
let mitigation_detected t = t.mitigated
let log t = List.rev t.log

let fingerprint t =
  let fp = ref t.fp in
  let mix v = fp := Hash.mix ~seed:!fp ~lane:1 v in
  mix t.probes;
  List.iter (fun e -> mix e.e_seq) !(t.emitters);
  (match t.state with
  | Hug h ->
    mix h.h_trips;
    mix (Int64.to_int (Int64.bits_of_float h.h_rate));
    mix (Int64.to_int (Int64.bits_of_float h.h_lo))
  | Cp c ->
    mix c.c_rounds;
    mix (List.length c.c_found)
  | Et e ->
    mix (List.length e.p_onsets);
    mix e.p_recals;
    mix (Int64.to_int (Int64.bits_of_float e.p_period)));
  !fp

let summary t =
  match t.state with
  | Hug h ->
    Printf.sprintf "hug: rate=%.0f lo=%.0f hi=%s trips=%d"
      h.h_rate h.h_lo
      (if h.h_hi = infinity then "inf" else Printf.sprintf "%.0f" h.h_hi)
      h.h_trips
  | Cp c ->
    Printf.sprintf "cp: rounds=%d found=%d" c.c_rounds (List.length c.c_found)
  | Et e ->
    Printf.sprintf "et: onsets=%d period=%.2f recals=%d phase=%s"
      (List.length e.p_onsets) e.p_period e.p_recals
      (match e.p_phase with Calibrating -> "cal" | Pulsing -> "pulse")
