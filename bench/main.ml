(* Benchmark & reproduction harness.

   One entry point per table/figure of the paper plus the ablations listed
   in DESIGN.md. With no argument every experiment runs in sequence:

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig3      # one experiment
     dune exec bench/main.exe -- micro     # Bechamel micro-benchmarks

   Experiments: fig1 fig2 fig3 abl-te abl-probe abl-sharing abl-fec
                abl-scaling chaos micro perf

   [perf] is the end-to-end hot-path regression harness: it replays a
   fixed fat-tree + rolling-LFA scenario, measures packets/s, events/s
   and GC words per packet, and rewrites BENCH_netsim.json (preserving
   the committed "before" entry for comparison). *)

module T = Ff_topology.Topology
module Scenario = Fastflex.Scenario
module Orchestrator = Fastflex.Orchestrator
module Series = Ff_util.Series
module Table = Ff_util.Table

let banner name description =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s — %s\n" name description;
  Printf.printf "==================================================================\n%!"

(* ------------------------------------------------------------------ *)
(* fig1: module table, sharing, packing (paper Figure 1 a-c)           *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  banner "fig1" "booster decomposition, module sharing, switch packing";
  let compiled = Fastflex.Compile.boosters () in
  print_endline "Merged module table (paper Figure 1, 'Module | Stages | SRAM | TCAM'):";
  Table.print
    ~header:[ "module"; "shared-by"; "stages"; "SRAM(KB)"; "TCAM"; "ALUs"; "hash" ]
    ~rows:
      (List.map
         (fun (name, boosters, res) ->
           name :: string_of_int (List.length boosters) :: Ff_dataplane.Resource.to_row res)
         (Fastflex.Compile.module_rows compiled));
  Printf.printf "\nPPMs before merging: %d   after: %d   stage savings: %.0f%%\n"
    (List.fold_left
       (fun acc (_, g) -> acc + Ff_dataflow.Graph.num_vertices g)
       0 compiled.Fastflex.Compile.graphs)
    (Ff_dataflow.Graph.num_vertices compiled.Fastflex.Compile.merged)
    (100. *. compiled.Fastflex.Compile.savings);
  (* packing the whole catalogue *)
  print_endline "\nPacking the merged catalogue onto Tofino-class switches:";
  let rows =
    List.map
      (fun pool ->
        let switches = List.init pool Fun.id in
        match Fastflex.Compile.pack_onto compiled ~switches () with
        | Ok bins ->
          [ string_of_int pool;
            string_of_int (Ff_placement.Pack.bins_used bins);
            (if Ff_placement.Pack.respects_capacity bins then "yes" else "NO") ]
        | Error e -> [ string_of_int pool; "-"; "infeasible: " ^ e ])
      [ 1; 2; 4; 8 ]
  in
  Table.print ~header:[ "switch pool"; "switches used"; "capacity ok" ] ~rows

(* ------------------------------------------------------------------ *)
(* fig2: the multimode timeline (paper Figure 2 a-d)                   *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  banner "fig2" "multimode data plane timeline: default -> detect -> mitigate -> rolling";
  let attack = { Scenario.default_attack with start = 10.; roll_schedule = [ 30. ] } in
  let r =
    Scenario.run_lfa ~defense:(Scenario.Fastflex Orchestrator.default_config)
      ~attack:(Some attack) ~duration:50. ()
  in
  print_endline "Mode-change log (probe-driven, no controller in the loop):";
  List.iter
    (fun (t, sw, attack, up) ->
      Printf.printf "  t=%6.2fs  switch %-2d %s %s mode set\n" t sw
        (if up then "activates" else "deactivates")
        (Ff_dataplane.Packet.attack_kind_to_string attack))
    r.Scenario.mode_log;
  let activation_times =
    List.filter_map (fun (t, _, _, up) -> if up then Some t else None) r.Scenario.mode_log
  in
  (match activation_times with
  | t0 :: _ ->
    let tn = List.fold_left Float.max t0 activation_times in
    Printf.printf
      "\n(a) default mode until t=%.1fs (defenses off, TE-optimal routing)\n\
       (b) LFA detected at t=%.2fs; activation probes flooded the region\n\
      \    in %.0f ms (every switch in defense mode by t=%.2fs)\n\
       (c) mitigation: %d packets classified suspicious, %d rerouting probes,\n\
      \    %d suspicious packets dropped (rate-limit + illusion-of-success)\n\
       (d) forced re-target at t=30s absorbed at data plane timescale:\n"
      attack.Scenario.start t0
      ((tn -. t0) *. 1000.)
      tn r.Scenario.suspicious_marked r.Scenario.probes_sent
      (List.fold_left
         (fun acc (reason, n) ->
           if reason = "suspicious-rate-limit" || reason = "illusion-of-success" then acc + n
           else acc)
         0 r.Scenario.drops)
  | [] -> print_endline "no activations?!");
  List.iter
    (fun (ev, rt) -> Printf.printf "    event t=%.1fs -> back to 80%% in %.1fs\n" ev rt)
    r.Scenario.recovery_times;
  print_endline "\nNormalized goodput during the timeline:";
  Series.pp_ascii ~height:10 Format.std_formatter [ r.Scenario.normalized ]

(* ------------------------------------------------------------------ *)
(* fig3: the headline result (paper Figure 3)                          *)
(* ------------------------------------------------------------------ *)

let rename s name =
  let out = Series.create ~name in
  List.iter (fun (t, v) -> Series.add out ~time:t v) (Series.points s);
  out

let fig3 () =
  banner "fig3" "normalized throughput under a 3-round rolling LFA (the paper's evaluation)";
  let run name defense =
    Printf.printf "  running %-14s ...%!" name;
    let r = Scenario.run_lfa ~defense ~duration:120. () in
    Printf.printf " mean %.2f  min %.2f  rolls %d  reconfigs %d\n%!"
      r.Scenario.mean_during_attack r.Scenario.min_during_attack
      (List.length r.Scenario.rolls) (List.length r.Scenario.reconfigs);
    r
  in
  let none = run "no-defense" Scenario.No_defense in
  let sdn = run "baseline-sdn" (Scenario.Baseline_sdn { period = 30.; delay = 0.5 }) in
  let ff = run "fastflex" (Scenario.Fastflex Orchestrator.default_config) in
  print_endline "\nFigure 3 series (normalized throughput, 5 s grid):";
  let grid s = Series.resample s ~step:5. ~until:120. in
  let cells s = List.map (fun (_, v) -> Printf.sprintf "%.2f" v) (grid s) in
  let times = List.map (fun (t, _) -> Printf.sprintf "%.0f" t) (grid none.Scenario.normalized) in
  Table.print
    ~header:("time(s)" :: times)
    ~rows:
      [ "baseline-sdn" :: cells sdn.Scenario.normalized;
        "fastflex" :: cells ff.Scenario.normalized;
        "no-defense" :: cells none.Scenario.normalized ];
  print_endline "";
  Series.pp_ascii ~height:14 Format.std_formatter
    [ rename sdn.Scenario.normalized "Baseline (SDN)";
      rename ff.Scenario.normalized "FastFlex" ];
  print_endline "\nSummary (paper claim: baseline constantly falls behind rolling attacks;";
  print_endline "FastFlex disperses traffic almost instantaneously by data plane mode changes):";
  let median_recovery (r : Scenario.result) =
    let finite = List.filter (fun x -> x < infinity) (List.map snd r.Scenario.recovery_times) in
    if finite = [] then "never" else Printf.sprintf "%.1fs" (Ff_util.Stats.median finite)
  in
  Table.print
    ~header:[ "defense"; "mean goodput"; "min"; "median recovery"; "mechanism latency" ]
    ~rows:
      [
        [ "no-defense"; Printf.sprintf "%.2f" none.Scenario.mean_during_attack;
          Printf.sprintf "%.2f" none.Scenario.min_during_attack; median_recovery none; "-" ];
        [ "baseline-sdn"; Printf.sprintf "%.2f" sdn.Scenario.mean_during_attack;
          Printf.sprintf "%.2f" sdn.Scenario.min_during_attack; median_recovery sdn;
          "30s TE period" ];
        [ "fastflex"; Printf.sprintf "%.2f" ff.Scenario.mean_during_attack;
          Printf.sprintf "%.2f" ff.Scenario.min_during_attack; median_recovery ff;
          "RTT-scale probes" ];
      ]

(* ------------------------------------------------------------------ *)
(* abl-te: baseline TE period sweep                                    *)
(* ------------------------------------------------------------------ *)

let abl_te () =
  banner "abl-te" "how fast must centralized TE be to keep up with a rolling attack?";
  let rows =
    List.map
      (fun period ->
        let r =
          Scenario.run_lfa ~defense:(Scenario.Baseline_sdn { period; delay = 0.5 })
            ~duration:120. ()
        in
        [ Printf.sprintf "%.0f" period;
          Printf.sprintf "%.2f" r.Scenario.mean_during_attack;
          Printf.sprintf "%.2f" r.Scenario.min_during_attack;
          string_of_int (List.length r.Scenario.rolls);
          string_of_int (List.length r.Scenario.reconfigs) ])
      [ 5.; 10.; 30.; 60. ]
  in
  let ff = Scenario.run_lfa ~defense:(Scenario.Fastflex Orchestrator.default_config)
      ~duration:120. () in
  Table.print
    ~header:[ "TE period (s)"; "mean goodput"; "min"; "attacker rolls"; "reconfigs" ]
    ~rows:
      (rows
      @ [ [ "fastflex"; Printf.sprintf "%.2f" ff.Scenario.mean_during_attack;
            Printf.sprintf "%.2f" ff.Scenario.min_during_attack;
            string_of_int (List.length ff.Scenario.rolls); "0" ] ]);
  print_endline "\n(the attacker re-targets within seconds of each reconfiguration, so even";
  print_endline " aggressive controller periods trail the attack; the data plane does not)"

(* ------------------------------------------------------------------ *)
(* abl-probe: mode/probe timescale sweep                               *)
(* ------------------------------------------------------------------ *)

let abl_probe () =
  banner "abl-probe" "reaction-time knobs: rerouting probe interval and classification age";
  let attack = Some { Scenario.default_attack with start = 10.; roll_schedule = [] } in
  let recovery (r : Scenario.result) =
    match r.Scenario.recovery_times with
    | (_, rt) :: _ when rt < infinity -> Printf.sprintf "%.1f" rt
    | _ -> "never"
  in
  let rows =
    List.map
      (fun probe_interval ->
        let config = { Orchestrator.default_config with probe_interval } in
        let r = Scenario.run_lfa ~defense:(Scenario.Fastflex config) ~attack ~duration:60. () in
        [ Printf.sprintf "%.0f" (probe_interval *. 1000.);
          Printf.sprintf "%.2f" r.Scenario.mean_during_attack; recovery r;
          string_of_int r.Scenario.probes_sent ])
      [ 0.01; 0.05; 0.2; 0.5 ]
  in
  Table.print
    ~header:[ "probe interval (ms)"; "mean goodput"; "recovery (s)"; "probes sent" ]
    ~rows;
  print_endline "";
  let rows =
    List.map
      (fun min_age ->
        let config = { Orchestrator.default_config with min_age } in
        let r = Scenario.run_lfa ~defense:(Scenario.Fastflex config) ~attack ~duration:60. () in
        [ Printf.sprintf "%.1f" min_age;
          Printf.sprintf "%.2f" r.Scenario.mean_during_attack; recovery r;
          string_of_int r.Scenario.suspicious_marked ])
      [ 0.5; 1.0; 2.0; 4.0 ]
  in
  Table.print
    ~header:[ "classification age (s)"; "mean goodput"; "recovery (s)"; "marked packets" ]
    ~rows;
  print_endline "\n(probe interval moves reaction time by milliseconds; the classification";
  print_endline " age dominates recovery — the indistinguishability cost of Crossfire)"

(* ------------------------------------------------------------------ *)
(* abl-sharing: packing with/without module sharing across topologies  *)
(* ------------------------------------------------------------------ *)

let abl_sharing () =
  banner "abl-sharing" "module sharing vs. naive per-booster deployment";
  let compiled = Fastflex.Compile.boosters () in
  let topologies =
    [ ("fig2", (T.Fig2.build ()).T.Fig2.topo);
      ("fat-tree(4)", T.fat_tree ~k:4 ());
      ("abilene", T.abilene ());
      ("waxman(12)", T.waxman ~n:12 ~seed:3 ()) ]
  in
  let rows =
    List.map
      (fun (name, topo) ->
        let capacities =
          List.map (fun (s : T.node) -> (s.T.id, Ff_dataplane.Resource.tofino_like))
            (T.switches topo)
        in
        let merged =
          match
            Ff_placement.Pack.first_fit_decreasing ~capacities compiled.Fastflex.Compile.merged
          with
          | Ok bins -> Ff_placement.Pack.bins_used bins
          | Error _ -> -1
        in
        let unmerged =
          List.fold_left
            (fun acc (_, g) ->
              match Ff_placement.Pack.first_fit_decreasing ~capacities g with
              | Ok bins -> acc + Ff_placement.Pack.bins_used bins
              | Error _ -> acc)
            0 compiled.Fastflex.Compile.graphs
        in
        [ name;
          string_of_int (List.length (T.switches topo));
          string_of_int unmerged;
          string_of_int merged;
          Printf.sprintf "%.1fx" (float_of_int unmerged /. float_of_int (max 1 merged)) ])
      topologies
  in
  Table.print
    ~header:[ "topology"; "switches"; "slots no-sharing"; "slots shared"; "reduction" ]
    ~rows;
  Printf.printf "\n(resource stages saved by the analyzer: %.0f%%; %d PPM pairs deduplicated)\n"
    (100. *. compiled.Fastflex.Compile.savings)
    (List.length compiled.Fastflex.Compile.sharing)

(* ------------------------------------------------------------------ *)
(* abl-fec: state-transfer FEC vs. loss                                *)
(* ------------------------------------------------------------------ *)

let abl_fec () =
  banner "abl-fec" "in-band state transfer under loss: FEC vs. retransmission alone";
  let entries = List.init 400 (fun i -> (Printf.sprintf "reg[%d]" i, float_of_int i)) in
  let run ~loss ~fec ~seed =
    let topo = T.linear ~n:4 () in
    let engine = Ff_netsim.Engine.create () in
    let net = Ff_netsim.Net.create engine topo in
    let s0 = (T.node_by_name topo "s0").T.id in
    let s3 = (T.node_by_name topo "s3").T.id in
    if loss > 0. then
      ignore
        (Ff_scaling.Loss.install net ~sw:(s0 + 1) ~prob:loss ~seed
           ~classes:Ff_scaling.Loss.State_chunks_only ());
    let done_at = ref infinity in
    let x =
      Ff_scaling.Transfer.send net ~src_sw:s0 ~dst_sw:s3 ~entries ~fec
        ~on_complete:(fun _ -> done_at := Ff_netsim.Engine.now engine)
        ()
    in
    Ff_netsim.Engine.run engine ~until:30.;
    ( Ff_scaling.Transfer.complete x, !done_at, Ff_scaling.Transfer.chunks_sent x,
      Ff_scaling.Transfer.retransmitted_groups x, Ff_scaling.Transfer.fec_recoveries x )
  in
  let average ~loss ~fec =
    let seeds = [ 11; 22; 33; 44; 55 ] in
    let ok, time, chunks, retx, recov =
      List.fold_left
        (fun (ok, time, chunks, retx, recov) seed ->
          let o, t, c, r, v = run ~loss ~fec ~seed in
          ((if o then ok + 1 else ok), time +. t, chunks + c, retx + r, recov + v))
        (0, 0., 0, 0, 0) seeds
    in
    let n = float_of_int (List.length seeds) in
    (ok, time /. n, float_of_int chunks /. n, float_of_int retx /. n, float_of_int recov /. n)
  in
  let rows =
    List.concat_map
      (fun loss ->
        List.map
          (fun fec ->
            let ok, time, chunks, retx, recov = average ~loss ~fec in
            [ Printf.sprintf "%.0f%%" (loss *. 100.);
              (if fec then "on" else "off");
              Printf.sprintf "%d/5" ok;
              (if time = infinity then "-" else Printf.sprintf "%.0f" (time *. 1000.));
              Printf.sprintf "%.0f" chunks;
              Printf.sprintf "%.1f" retx;
              Printf.sprintf "%.1f" recov ])
          [ true; false ])
      [ 0.; 0.05; 0.1; 0.2; 0.3 ]
  in
  Table.print
    ~header:
      [ "loss"; "FEC"; "completed"; "time (ms)"; "chunks sent"; "retx groups";
        "FEC recoveries" ]
    ~rows;
  print_endline "\n(parity lets a group survive one lost chunk without waiting out the";
  print_endline " retransmission timer: completion time stays near-flat under moderate loss)"

(* ------------------------------------------------------------------ *)
(* abl-scaling: repurposing downtime vs. fast-reroute                  *)
(* ------------------------------------------------------------------ *)

let abl_scaling () =
  banner "abl-scaling" "switch repurposing: downtime model vs. traffic continuity";
  let run ~downtime ~fast_reroute =
    let lm = T.Fig2.build () in
    let topo = lm.T.Fig2.topo in
    let engine = Ff_netsim.Engine.create () in
    let net = Ff_netsim.Net.create engine topo in
    let hosts = T.hosts topo in
    List.iter
      (fun (h1 : T.node) ->
        List.iter
          (fun (h2 : T.node) ->
            if h1.T.id <> h2.T.id then
              match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
              | Some p -> Ff_netsim.Net.install_path net ~dst:h2.T.id p
              | None -> ())
          hosts)
      hosts;
    let mid_of (l : T.link) = if l.T.a = lm.T.Fig2.agg then l.T.b else l.T.a in
    let m1 = mid_of (List.hd lm.T.Fig2.critical) in
    let src = List.hd lm.T.Fig2.normal_sources in
    Ff_netsim.Net.set_route net ~sw:lm.T.Fig2.agg ~dst:lm.T.Fig2.victim ~next_hop:m1;
    Ff_netsim.Net.set_route net ~sw:m1 ~dst:lm.T.Fig2.victim ~next_hop:lm.T.Fig2.victim_agg;
    let flow = Ff_netsim.Flow.Cbr.start net ~src ~dst:lm.T.Fig2.victim ~rate_pps:200. () in
    Ff_netsim.Engine.schedule engine ~at:2. (fun () ->
        if fast_reroute then
          Ff_scaling.Repurpose.repurpose net ~sw:m1 ~downtime
            ~install:(fun () -> ())
            ~on_done:(fun _ -> ())
            ()
        else begin
          (* no neighbor notification: the switch just goes dark *)
          Ff_netsim.Net.set_switch_up net ~sw:m1 false;
          Ff_netsim.Engine.after engine ~delay:downtime (fun () ->
              Ff_netsim.Net.set_switch_up net ~sw:m1 true)
        end);
    Ff_netsim.Engine.run engine ~until:10.;
    Ff_netsim.Flow.Cbr.delivered_bytes flow
    /. float_of_int (Ff_netsim.Flow.Cbr.sent_packets flow * 1000)
  in
  let rows =
    List.map
      (fun downtime ->
        let with_frr = run ~downtime ~fast_reroute:true in
        let without = run ~downtime ~fast_reroute:false in
        [ (if downtime = 0. then "0 (Trident-style)" else Printf.sprintf "%.1f" downtime);
          Printf.sprintf "%.1f%%" (100. *. with_frr);
          Printf.sprintf "%.1f%%" (100. *. without) ])
      [ 0.; 0.5; 2.; 5. ]
  in
  Table.print
    ~header:[ "downtime (s)"; "delivery w/ fast reroute"; "delivery w/o notification" ]
    ~rows;
  print_endline "\n(with neighbor notification the reconfiguration is invisible even for";
  print_endline " Tofino-style multi-second installs; without it, downtime = loss)"


(* ------------------------------------------------------------------ *)
(* abl-pulse: short-lived pulsing attacks (paper Fig. 2 caption)       *)
(* ------------------------------------------------------------------ *)

let abl_pulse () =
  banner "abl-pulse" "pulsing (shrew-style) attacks against the multimode data plane";
  let run ~defend ~duty =
    let lm = T.Fig2.build ~bots:8 ~normals:4 () in
    let topo = lm.T.Fig2.topo in
    let engine = Ff_netsim.Engine.create () in
    let net = Ff_netsim.Net.create engine topo in
    let hosts = T.hosts topo in
    List.iter
      (fun (h1 : T.node) ->
        List.iter
          (fun (h2 : T.node) ->
            if h1.T.id <> h2.T.id then
              match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
              | Some p -> Ff_netsim.Net.install_path net ~dst:h2.T.id p
              | None -> ())
          hosts)
      hosts;
    let matrix = Ff_te.Traffic_matrix.empty () in
    List.iter
      (fun n -> Ff_te.Traffic_matrix.set matrix ~src:n ~dst:lm.T.Fig2.victim 2_300_000.)
      lm.T.Fig2.normal_sources;
    let plan = Ff_te.Solver.solve ~k:2 topo matrix in
    Ff_te.Solver.install net plan;
    let normal_flows =
      List.map
        (fun n ->
          Ff_netsim.Flow.Tcp.start net ~src:n ~dst:lm.T.Fig2.victim ~at:0.5 ~max_cwnd:4. ())
        lm.T.Fig2.normal_sources
    in
    if defend then
      ignore (Orchestrator.deploy net ~landmarks:lm ~default_plan:plan ());
    let _atk =
      Ff_attacks.Pulsing.launch net ~bots:lm.T.Fig2.bot_sources ~victim:lm.T.Fig2.victim
        ~burst_pps:250. ~period:1.0 ~duty ~start:10. ()
    in
    let goodput =
      Ff_netsim.Monitor.aggregate_goodput net ~flows:normal_flows ~period:0.5 ~name:"g" ()
    in
    Ff_netsim.Engine.run engine ~until:60.;
    let vals t0 t1 =
      List.filter_map
        (fun (t, v) -> if t >= t0 && t <= t1 then Some v else None)
        (Series.points goodput)
    in
    let baseline = Ff_util.Stats.mean (vals 4. 9.) in
    Ff_util.Stats.mean (vals 12. 60.) /. Float.max 1. baseline
  in
  let rows =
    List.map
      (fun duty ->
        [ Printf.sprintf "%.0f%%" (duty *. 100.);
          Printf.sprintf "%.2f" (run ~defend:false ~duty);
          Printf.sprintf "%.2f" (run ~defend:true ~duty) ])
      [ 0.1; 0.2; 0.5 ]
  in
  Table.print ~header:[ "duty cycle"; "undefended goodput"; "fastflex goodput" ] ~rows;
  print_endline "\n(low/medium duty: classification catches the persistent senders and the";
  print_endline " multimode defense absorbs the pulses. At 50% duty the sustained congestion";
  print_endline " depresses normal flows below the suspicion threshold too - classification";
  print_endline " collateral, the false-positive risk the paper's indistinguishability";
  print_endline " discussion warns about; see abl-probe for the threshold sensitivity)"

(* ------------------------------------------------------------------ *)
(* abl-sync: local vs network-wide detection (paper section 3.3)       *)
(* ------------------------------------------------------------------ *)

let abl_sync () =
  banner "abl-sync" "distributed floods: local detection vs synchronized network-wide views";
  let run ~rate_pps_per_bot =
    let lm = T.Fig2.build ~bots:8 ~normals:4 () in
    let topo = lm.T.Fig2.topo in
    let engine = Ff_netsim.Engine.create () in
    let net = Ff_netsim.Net.create engine topo in
    let hosts = T.hosts topo in
    List.iter
      (fun (h1 : T.node) ->
        List.iter
          (fun (h2 : T.node) ->
            if h1.T.id <> h2.T.id then
              match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
              | Some p -> Ff_netsim.Net.install_path net ~dst:h2.T.id p
              | None -> ())
          hosts)
      hosts;
    let e1 = (T.node_by_name topo "e1").T.id and e2 = (T.node_by_name topo "e2").T.id in
    let threshold = 6_000_000. in
    (* local-only detector: the same per-destination logic but with a view
       limited to one ingress (no synchronization) *)
    let local_alarm = ref false in
    let _local =
      Ff_boosters.Network_wide_hh.install net ~ingresses:[ e1 ] ~threshold_bps:threshold
        ~on_alarm:(fun _ -> local_alarm := true)
        ~on_clear:(fun _ -> ())
        ()
    in
    (* network-wide detector across both ingresses *)
    let nw_alarm = ref false in
    let nw =
      Ff_boosters.Network_wide_hh.install net ~ingresses:[ e1; e2 ] ~threshold_bps:threshold
        ~on_alarm:(fun _ -> nw_alarm := true)
        ~on_clear:(fun _ -> ())
        ()
    in
    List.iter
      (fun bot ->
        ignore
          (Ff_netsim.Flow.Cbr.start net ~src:bot ~dst:lm.T.Fig2.victim
             ~rate_pps:rate_pps_per_bot ~at:1. ()))
      lm.T.Fig2.bot_sources;
    Ff_netsim.Engine.run engine ~until:8.;
    (!local_alarm, !nw_alarm, Ff_boosters.Network_wide_hh.sync_probes nw)
  in
  let rows =
    List.map
      (fun rate_pps_per_bot ->
        let total_mbps = rate_pps_per_bot *. 8. *. 8000. /. 1e6 in
        let local, nw, probes = run ~rate_pps_per_bot in
        [ Printf.sprintf "%.1f" total_mbps;
          (if local then "yes" else "no");
          (if nw then "yes" else "no");
          string_of_int probes ])
      [ 40.; 80.; 125.; 250. ]
  in
  Table.print
    ~header:
      [ "aggregate flood (Mb/s)"; "local detector fires"; "network-wide fires"; "sync probes" ]
    ~rows;
  print_endline "\n(between ~6 and ~12 Mb/s aggregate, each ingress sees under the threshold:";
  print_endline " only the synchronized network-wide view catches the attack)"


(* ------------------------------------------------------------------ *)
(* abl-topo: the architecture beyond the case-study topology           *)
(* ------------------------------------------------------------------ *)

let abl_topo () =
  banner "abl-topo" "pervasive deployment on a fat-tree(4): same defense, bigger network";
  (* victim in pod 0 edge 0; decoys on pod 0 edge 1; the two critical
     cuts are the core->agg0_0 and core->agg0_1 downlinks into the pod *)
  let run ~defend =
    let topo = T.fat_tree ~k:4 () in
    let engine = Ff_netsim.Engine.create () in
    let net = Ff_netsim.Net.create engine topo in
    let id name = (T.node_by_name topo name).T.id in
    let hosts = T.hosts topo in
    List.iter
      (fun (h1 : T.node) ->
        List.iter
          (fun (h2 : T.node) ->
            if h1.T.id <> h2.T.id then
              match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
              | Some p -> Ff_netsim.Net.install_path net ~dst:h2.T.id p
              | None -> ())
          hosts)
      hosts;
    let victim = id "h0_0_0" in
    let decoy1 = id "h0_1_0" and decoy2 = id "h0_1_1" in
    (* pin each decoy behind a different aggregation path into pod 0
       (agg0_0 reachable via core0/core1, agg0_1 via core2/core3), giving
       the attacker its two rollable targets *)
    List.iter
      (fun pod ->
        List.iter
          (fun e ->
            let edge = id (Printf.sprintf "edge%d_%d" pod e) in
            Ff_netsim.Net.set_route net ~sw:edge ~dst:decoy1
              ~next_hop:(id (Printf.sprintf "agg%d_0" pod));
            Ff_netsim.Net.set_route net ~sw:edge ~dst:decoy2
              ~next_hop:(id (Printf.sprintf "agg%d_1" pod));
            (* concentrate each decoy's traffic through one core: the
               attacker's target link is that core's downlink into pod 0 *)
            Ff_netsim.Net.set_route net
              ~sw:(id (Printf.sprintf "agg%d_0" pod))
              ~dst:decoy1 ~next_hop:(id "core0");
            Ff_netsim.Net.set_route net
              ~sw:(id (Printf.sprintf "agg%d_1" pod))
              ~dst:decoy2 ~next_hop:(id "core2"))
          [ 0; 1 ])
      [ 1; 2; 3 ];
    Ff_netsim.Net.set_route net ~sw:(id "core0") ~dst:decoy1 ~next_hop:(id "agg0_0");
    Ff_netsim.Net.set_route net ~sw:(id "core1") ~dst:decoy1 ~next_hop:(id "agg0_0");
    Ff_netsim.Net.set_route net ~sw:(id "core2") ~dst:decoy2 ~next_hop:(id "agg0_1");
    Ff_netsim.Net.set_route net ~sw:(id "core3") ~dst:decoy2 ~next_hop:(id "agg0_1");
    Ff_netsim.Net.set_route net ~sw:(id "agg0_0") ~dst:decoy1 ~next_hop:(id "edge0_1");
    Ff_netsim.Net.set_route net ~sw:(id "agg0_1") ~dst:decoy2 ~next_hop:(id "edge0_1");
    Ff_netsim.Net.set_route net ~sw:(id "agg0_0") ~dst:decoy1 ~next_hop:(id "edge0_1");
    Ff_netsim.Net.set_route net ~sw:(id "agg0_1") ~dst:decoy2 ~next_hop:(id "edge0_1");
    (* normal flows from pods 1-2, split over the two agg paths into pod 0 *)
    let normal_specs =
      (* one flow through each targeted core downlink, two on untouched
         cores: each attack round cuts a quarter of the normal traffic *)
      [ ("h1_0_0", "agg1_0", "core0", "agg0_0"); ("h1_1_0", "agg1_1", "core2", "agg0_1");
        ("h2_0_0", "agg2_0", "core1", "agg0_0"); ("h2_1_0", "agg2_1", "core3", "agg0_1") ]
    in
    let normal_flows =
      List.map
        (fun (src_name, agg_src, core, agg_dst) ->
          let src = id src_name in
          let src_edge = Ff_netsim.Net.access_switch net ~host:src in
          Ff_netsim.Net.install_pair_path net ~src ~dst:victim
            [ src; src_edge; id agg_src; id core; id agg_dst; id "edge0_0"; victim ];
          Ff_netsim.Flow.Tcp.start net ~src ~dst:victim ~at:0.5 ~max_cwnd:3. ())
        normal_specs
    in
    if defend then begin
      (* tighter suspicious-flow budget than the fig2 scenario: the
         fat-tree pod has no spare detour capacity, so mitigation leans on
         policing (24 suspicious flows x 150 kb/s = 3.6 Mb/s residual) *)
      let config =
        { Fastflex.Orchestrator.default_config with drop_rate_limit = 150_000. }
      in
      ignore
        (Fastflex.Orchestrator.deploy_wide net ~protect:[ victim; decoy1; decoy2 ] ~config ())
    end;
    (* rolling Crossfire from 8 bots spread over pods 1-3 *)
    let bots =
      List.map id
        [ "h1_0_1"; "h1_1_1"; "h2_0_1"; "h2_1_1"; "h3_0_0"; "h3_0_1"; "h3_1_0"; "h3_1_1" ]
    in
    let _atk =
      Ff_attacks.Lfa.launch net ~bots ~decoy_groups:[ [ decoy1 ]; [ decoy2 ] ] ~start:10.
        ~roll_schedule:[ 35. ] ()
    in
    let goodput =
      Ff_netsim.Monitor.aggregate_goodput net ~flows:normal_flows ~period:0.5 ~name:"g" ()
    in
    Ff_netsim.Engine.run engine ~until:60.;
    let vals t0 t1 =
      List.filter_map
        (fun (t, v) -> if t >= t0 && t <= t1 then Some v else None)
        (Series.points goodput)
    in
    let baseline = Float.max 1. (Ff_util.Stats.mean (vals 4. 9.)) in
    ( Ff_util.Stats.mean (vals 11. 60.) /. baseline,
      List.fold_left Float.min infinity (List.map (fun v -> v /. baseline) (vals 11. 60.)) )
  in
  let mean_u, min_u = run ~defend:false in
  let mean_d, min_d = run ~defend:true in
  Table.print
    ~header:[ "defense"; "mean goodput under attack"; "min" ]
    ~rows:
      [ [ "none"; Printf.sprintf "%.2f" mean_u; Printf.sprintf "%.2f" min_u ];
        [ "fastflex (deploy_wide)"; Printf.sprintf "%.2f" mean_d; Printf.sprintf "%.2f" min_d ] ];
  print_endline "\n(20 switches, detectors everywhere, alarms from whichever switch sees the";
  print_endline " congestion, classification activated network-wide by mode probes: the";
  print_endline " same multimode machinery generalizes beyond the paper's sketch topology)"


(* ------------------------------------------------------------------ *)
(* abl-vol: the volumetric scenario (HH -> modes -> police + HCF)      *)
(* ------------------------------------------------------------------ *)

let abl_vol () =
  banner "abl-vol" "volumetric DDoS with spoofing: heavy-hitter detection through the modes";
  let rows =
    List.concat_map
      (fun spoof ->
        List.map
          (fun defended ->
            let r = Scenario.run_volumetric ~defended ~spoof () in
            [ (if spoof then "yes" else "no");
              (if defended then "yes" else "no");
              Printf.sprintf "%.2f" r.Scenario.vr_normalized_mean;
              string_of_int r.Scenario.vr_spoofed_filtered;
              string_of_int r.Scenario.vr_offender_drops ])
          [ false; true ])
      [ true; false ]
  in
  Table.print
    ~header:[ "spoofed"; "defended"; "normal goodput"; "hcf filtered"; "offenders policed" ]
    ~rows;
  print_endline "\n(HashPipe flags the 4.8 Mb/s offender flows, the mode probes light the";
  print_endline " drop + hcf modes, policing removes the volume and the hop-count filter";
  print_endline " discards the spoofed packets without touching the real address owners)"

(* ------------------------------------------------------------------ *)
(* synflood: the split-proxy SYN defense (cookies + cuckoo tracker)    *)
(* ------------------------------------------------------------------ *)

let synflood_exp () =
  banner "synflood"
    "SYN flood vs the split-proxy booster: SYN cookies at the edge, cuckoo tracker";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let row ~label (r : Scenario.synflood_result) =
    [ label;
      Printf.sprintf "%.2f" r.Scenario.sf_normalized_mean;
      Printf.sprintf "%.2f" r.Scenario.sf_peak_backlog_occupancy;
      string_of_int r.Scenario.sf_backlog_drops;
      string_of_int r.Scenario.sf_completed;
      string_of_int r.Scenario.sf_failed;
      string_of_int r.Scenario.sf_cookies_sent;
      string_of_int r.Scenario.sf_validated;
      Printf.sprintf "%.3f" r.Scenario.sf_tracker_occupancy ]
  in
  let undefended = Scenario.run_synflood ~defended:false () in
  let armed = Scenario.run_synflood ~defended:true () in
  let hardened = Scenario.run_synflood ~defended:true ~hardened:true () in
  Table.print
    ~header:
      [ "defense"; "goodput"; "peak backlog"; "backlog drops"; "completed";
        "failed"; "cookies"; "validated"; "cuckoo load" ]
    ~rows:
      [ row ~label:"none" undefended;
        row ~label:"armed" armed;
        row ~label:"armed+hardening" hardened ];
  print_endline "\n(3200 SYNs/s of spoofed half-opens against a 64-slot backlog: undefended,";
  print_endline " every slot is a flood entry and clients time out; armed, the edge switch";
  print_endline " answers SYNs with stateless cookies, validated flows enter the cuckoo";
  print_endline " tracker, and the server accepts edge-validated handshakes backlog-free)";
  (* hard floors (ISSUE 10): the undefended flood must actually kill the
     server, and the booster must actually bring it back *)
  if undefended.Scenario.sf_peak_backlog_occupancy < 1.0 then
    fail "undefended peak backlog occupancy %.2f, expected 1.0 (flood never filled it)"
      undefended.Scenario.sf_peak_backlog_occupancy;
  if undefended.Scenario.sf_normalized_mean >= 0.20 then
    fail "undefended goodput %.2f, floor requires < 0.20"
      undefended.Scenario.sf_normalized_mean;
  List.iter
    (fun (label, (r : Scenario.synflood_result)) ->
      if r.Scenario.sf_normalized_mean < 0.90 then
        fail "%s goodput %.2f, floor requires >= 0.90" label r.Scenario.sf_normalized_mean;
      if r.Scenario.sf_tracker_occupancy >= Ff_dataplane.Cuckoo.occupancy_threshold then
        fail "%s cuckoo occupancy %.3f breached the %.2f threshold" label
          r.Scenario.sf_tracker_occupancy Ff_dataplane.Cuckoo.occupancy_threshold;
      if not r.Scenario.sf_alarmed then
        fail "%s guard never alarmed under a 16x-threshold flood" label;
      if r.Scenario.sf_tracker_failed_inserts > 0 then
        fail "%s tracker rejected %d validated flows" label
          r.Scenario.sf_tracker_failed_inserts)
    [ ("armed", armed); ("armed+hardening", hardened) ];
  match !failures with
  | [] -> print_endline "[synflood] all goodput and occupancy floors hold"
  | fs ->
    List.iter (fun f -> Printf.eprintf "[synflood] FAIL %s\n" f) fs;
    exit 1

(* ------------------------------------------------------------------ *)
(* chaos: self-healing control channels under injected faults          *)
(* ------------------------------------------------------------------ *)

let chaos_exp () =
  banner "chaos"
    "control channels under the conditions they exist for: probe loss, flaps, crashes";
  let module Chaos = Ff_chaos.Chaos in
  let modes_for = function
    | Ff_dataplane.Packet.Lfa -> [ "reroute"; "obfuscate" ]
    | Ff_dataplane.Packet.Volumetric -> [ "drop" ]
    | Ff_dataplane.Packet.Pulsing -> [ "reroute" ]
    | Ff_dataplane.Packet.Recon -> [ "obfuscate" ]
    | Ff_dataplane.Packet.Synflood -> [ "syn_guard" ]
  in
  (* part 1: mode convergence across a linear-8 chain whose middle link
     eats the first probe of every epoch (the cut-vertex failure
     fire-and-forget flooding cannot survive), plus 30% bursty loss on
     every control channel — without anti-entropy the far half of the
     chain never hears about the mode change *)
  print_endline
    "Mode convergence, linear-8 chain: middle link eats every first probe,\n\
     plus 30% bursty control-packet loss at every switch:";
  let converge ~anti_entropy ~seed =
    let topo = T.linear ~n:8 () in
    let engine = Ff_netsim.Engine.create () in
    let net = Ff_netsim.Net.create engine topo in
    let id name = (T.node_by_name topo name).T.id in
    let h = Chaos.create ~seed net in
    Chaos.drop_first_probe_per_epoch h ~a:(id "s3") ~b:(id "s4");
    List.iter
      (fun sw ->
        ignore
          (Chaos.burst_loss h ~sw ~start:0. ~until:infinity ~loss:0.3 ~mean_burst:2.
             ~classes:Ff_scaling.Loss.Control_only ()))
      (Ff_netsim.Net.switch_ids net);
    let p = Ff_modes.Protocol.create net ~modes_for ~anti_entropy ~seed () in
    Ff_modes.Protocol.raise_alarm p ~sw:(id "s0") Ff_dataplane.Packet.Lfa;
    Ff_netsim.Engine.run engine ~until:8.;
    let active =
      List.filter (fun sw -> Ff_modes.Protocol.active p ~sw "reroute")
        (Ff_netsim.Net.switch_ids net)
    in
    let converged_at =
      if List.length active = 8 then
        List.fold_left (fun acc (t, _, _, up) -> if up then Float.max acc t else acc) 0.
          (Ff_modes.Protocol.log p)
      else infinity
    in
    (List.length active, converged_at, Ff_modes.Protocol.readverts p,
     Ff_modes.Protocol.repairs p)
  in
  let rows =
    List.concat_map
      (fun seed ->
        List.map
          (fun anti_entropy ->
            let n, at, readv, rep = converge ~anti_entropy ~seed in
            [ string_of_int seed;
              (if anti_entropy > 0. then Printf.sprintf "%.2fs" anti_entropy else "off");
              Printf.sprintf "%d/8" n;
              (if at = infinity then "never" else Printf.sprintf "%.2fs" at);
              string_of_int readv; string_of_int rep ])
          [ 0.; 0.25 ])
      [ 1; 2; 3 ]
  in
  Table.print
    ~header:[ "seed"; "anti-entropy"; "converged"; "by"; "readverts"; "repairs" ]
    ~rows;
  (* part 2: state transfer across a ring while its chunk path flaps —
     the live-path recompute should fail over to the other arc *)
  print_endline "\nState transfer s0->s3 on a ring-6, shortest-path link flapping:";
  let entries = List.init 400 (fun i -> (Printf.sprintf "reg[%d]" i, float_of_int i)) in
  let xfer_run ~seed ~fault =
    let topo = T.ring ~n:6 () in
    let engine = Ff_netsim.Engine.create () in
    let net = Ff_netsim.Net.create engine topo in
    let h = Chaos.create ~seed net in
    Chaos.watch h;
    let done_at = ref infinity in
    let x =
      Ff_scaling.Transfer.send net ~src_sw:0 ~dst_sw:3 ~entries ~seed
        ~on_complete:(fun _ -> done_at := Ff_netsim.Engine.now engine)
        ()
    in
    fault h;
    Ff_netsim.Engine.run engine ~until:10.;
    let violations = Chaos.check_quiescence h ~transfers:[ x ] () in
    (x, !done_at, violations)
  in
  let rows =
    List.map
      (fun seed ->
        let x, done_at, violations =
          xfer_run ~seed ~fault:(fun h ->
              Chaos.flap_link h ~a:1 ~b:2 ~start:0.004 ~until:2.0 ~down_dwell:0.5
                ~up_dwell:0.2)
        in
        [ string_of_int seed;
          (if Ff_scaling.Transfer.complete x then "yes" else "NO");
          (if done_at = infinity then "-" else Printf.sprintf "%.0fms" (done_at *. 1000.));
          string_of_int (Ff_scaling.Transfer.reroutes x);
          (match violations with [] -> "ok" | v -> String.concat "; " v) ])
      [ 1; 2; 3 ]
  in
  Table.print ~header:[ "seed"; "completed"; "time"; "reroutes"; "invariants" ] ~rows;
  (* part 3: no surviving path at all — the transfer must fail promptly
     with a reason instead of burning every retry *)
  print_endline "\nSame transfer when the destination crashes for good:";
  let x, _, _ =
    xfer_run ~seed:1 ~fault:(fun h ->
        Chaos.at h ~time:0.001 (Chaos.Switch_down 3))
  in
  Printf.printf "  failed=%b reason=%s (well before the %d-retry budget)\n"
    (Ff_scaling.Transfer.failed x)
    (Option.value ~default:"-" (Ff_scaling.Transfer.failure_reason x))
    10

(* ------------------------------------------------------------------ *)
(* perf: the hot-path regression benchmark (BENCH_netsim.json)         *)
(* ------------------------------------------------------------------ *)

(* A fixed, deterministic scenario that saturates the per-packet path:
   fat-tree(4), pervasive FastFlex deployment (so every packet crosses the
   booster stage pipeline), heavy CBR load plus TCP normal flows, and a
   rolling LFA. The measured numbers go to BENCH_netsim.json; the "before"
   entry of an existing file is preserved so the trajectory keeps the
   pre-optimization baseline from the same machine. *)

let perf_scenario () =
  let topo = T.fat_tree ~k:4 () in
  let engine = Ff_netsim.Engine.create () in
  let net = Ff_netsim.Net.create engine topo in
  let id name = (T.node_by_name topo name).T.id in
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Ff_netsim.Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts;
  let victim = id "h0_0_0" in
  let decoy1 = id "h0_1_0" and decoy2 = id "h0_1_1" in
  ignore (Orchestrator.deploy_wide net ~protect:[ victim; decoy1; decoy2 ] ());
  (* open-loop load from every other pod: the constant-rate senders that
     exercise the batched emission path *)
  List.iteri
    (fun i src_name ->
      ignore
        (Ff_netsim.Flow.Cbr.start net ~src:(id src_name) ~dst:victim ~rate_pps:1200.
           ~packet_size:(400 + (100 * (i mod 3))) ~at:0.1 ()))
    [ "h1_0_0"; "h1_1_0"; "h2_0_0"; "h2_1_0"; "h3_0_0"; "h3_1_0" ];
  (* closed-loop normal flows (ack traffic doubles the hop count) *)
  let _tcp =
    List.map
      (fun src_name -> Ff_netsim.Flow.Tcp.start net ~src:(id src_name) ~dst:victim ~at:0.5 ())
      [ "h1_0_1"; "h2_0_1"; "h3_0_1" ]
  in
  let bots =
    List.map id [ "h1_1_1"; "h2_1_1"; "h3_1_1"; "h1_0_1"; "h2_0_1"; "h3_0_1" ]
  in
  let _atk =
    Ff_attacks.Lfa.launch net ~bots ~decoy_groups:[ [ decoy1 ]; [ decoy2 ] ] ~start:5.
      ~roll_schedule:[ 12.; 19.; 26. ] ()
  in
  Ff_netsim.Engine.run engine ~until:30.;
  net

type perf_sample = {
  packets : int;
  events : int;
  wall_s : float;
  packets_per_sec : float;
  events_per_sec : float;
  alloc_words_per_packet : float;
  drops : int;
}

let measure_perf () =
  Gc.compact ();
  let bytes0 = Gc.allocated_bytes () in
  let steps0 = Ff_netsim.Engine.total_steps () in
  let created0 = Ff_dataplane.Packet.created () in
  let t0 = Unix.gettimeofday () in
  let net = perf_scenario () in
  let wall_s = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  Printf.printf "[perf] packets created: %d\n%!" (Ff_dataplane.Packet.created () - created0);

  let packets = Ff_netsim.Net.total_tx_packets net in
  let events = Ff_netsim.Engine.total_steps () - steps0 in
  let alloc_words = (Gc.allocated_bytes () -. bytes0) /. float_of_int (Sys.word_size / 8) in
  let drops =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Ff_netsim.Net.drops_by_reason net)
  in
  {
    packets;
    events;
    wall_s;
    packets_per_sec = float_of_int packets /. wall_s;
    events_per_sec = float_of_int events /. wall_s;
    alloc_words_per_packet = alloc_words /. float_of_int (max 1 packets);
    drops;
  }

let perf_json_file = "BENCH_netsim.json"

let sample_to_json s =
  Printf.sprintf
    "{ \"packets\": %d, \"events\": %d, \"wall_s\": %.3f, \"packets_per_sec\": %.0f, \
     \"events_per_sec\": %.0f, \"alloc_words_per_packet\": %.1f, \"drops\": %d }"
    s.packets s.events s.wall_s s.packets_per_sec s.events_per_sec s.alloc_words_per_packet
    s.drops

(* Extract the balanced-brace object following "key": from a JSON text.
   Enough for the file this benchmark itself writes; no JSON dependency. *)
let extract_object text key =
  let pat = Printf.sprintf "\"%s\":" key in
  match
    (* find the pattern *)
    let plen = String.length pat and tlen = String.length text in
    let rec find i =
      if i + plen > tlen then None
      else if String.sub text i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start -> (
    let tlen = String.length text in
    let rec skip i = if i < tlen && text.[i] <> '{' then skip (i + 1) else i in
    let open_ = skip start in
    if open_ >= tlen then None
    else
      let rec scan i depth =
        if i >= tlen then None
        else
          match text.[i] with
          | '{' -> scan (i + 1) (depth + 1)
          | '}' -> if depth = 1 then Some (String.sub text open_ (i + 1 - open_)) else scan (i + 1) (depth - 1)
          | _ -> scan (i + 1) depth
      in
      scan open_ 0)

let read_file path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end
  else None

(* The allocation guardrail: bench/ALLOC_BUDGET holds the maximum
   alloc_words_per_packet the perf run may report ('#'-prefixed lines are
   comments). Unlike throughput, the allocation figure is deterministic
   across machines, so CI can assert it. *)
let alloc_budget_file = "bench/ALLOC_BUDGET"

let read_alloc_budget () =
  match read_file alloc_budget_file with
  | None -> None
  | Some text ->
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None else float_of_string_opt line)

let check_alloc_budget s =
  match read_alloc_budget () with
  | None ->
    Printf.printf
      "[perf] no %s file found (or no numeric line in it); skipping allocation check\n"
      alloc_budget_file
  | Some budget ->
    if s.alloc_words_per_packet > budget then begin
      Printf.printf
        "[perf] FAIL: alloc_words_per_packet %.1f exceeds budget %.1f (%s)\n\
         [perf] a change has reintroduced per-packet allocation on the hot path\n"
        s.alloc_words_per_packet budget alloc_budget_file;
      exit 1
    end
    else
      Printf.printf "[perf] allocation check ok: %.1f <= budget %.1f words/packet\n"
        s.alloc_words_per_packet budget

(* ------------------------------------------------------------------ *)
(* perf --shards N: the sharded parallel engine on fat-tree(8)         *)
(* ------------------------------------------------------------------ *)

(* Set by the --shards command-line option; perf then also measures the
   sharded engine and records a "parallel" section in BENCH_netsim.json. *)
let shards_opt : int option ref = ref None

type parallel_sample = {
  p_shards : int;
  p_cores : int;
  p_mode : string;
  p_packets : int;
  p_events : int;
  p_windows : int;
  p_exchanged : int;
  p_wall_s : float;
  p_pps : float;
  p_baseline_pps : float;
  p_speedup : float;
  p_alloc_words_per_packet : float;
  p_identical : bool;
}

(* The sharded scenario is bigger than the sequential regression one
   (fat-tree(8): 80 switches, 128 hosts, one cross-pod CBR flow per host)
   because the parallel engine's purpose is scale; the same run executed
   with 1 shard on the same windowed code path is the speedup baseline,
   and its counters are the determinism oracle: sharding must change
   {e nothing} but wall time. *)
let measure_parallel ~shards =
  let w = Ff_parallel.Workload.fat_tree ~k:8 ~rate_pps:500. ~duration:2.0 () in
  let run ~shards ~mode =
    Gc.compact ();
    let c = Ff_parallel.Workload.fresh_counters w in
    let t0 = Unix.gettimeofday () in
    let r =
      Ff_parallel.Psim.run ~mode ~shards ~topo:(Ff_parallel.Workload.topo w)
        ~setup:(Ff_parallel.Workload.setup w c)
        ~until:(Ff_parallel.Workload.until w) ()
    in
    (r, c, Float.max 1e-9 (Unix.gettimeofday () -. t0))
  in
  let r1, c1, wall1 = run ~shards:1 ~mode:Ff_parallel.Psim.Sequential in
  let rn, cn, walln = run ~shards ~mode:Ff_parallel.Psim.Auto in
  let module P = Ff_parallel.Psim in
  let module W = Ff_parallel.Workload in
  let tx1 = P.total_tx r1 and txn = P.total_tx rn in
  let identical =
    tx1 = txn
    && r1.P.events = rn.P.events
    && P.drops_by_reason r1 = P.drops_by_reason rn
    && c1.W.delivered = cn.W.delivered
    && c1.W.time_sum = cn.W.time_sum
  in
  let word = float_of_int (Sys.word_size / 8) in
  {
    p_shards = shards;
    p_cores = Domain.recommended_domain_count ();
    p_mode = (match rn.P.mode_used with P.Domains -> "domains" | _ -> "sequential");
    p_packets = txn;
    p_events = rn.P.events;
    p_windows = rn.P.windows;
    p_exchanged = rn.P.exchanged;
    p_wall_s = walln;
    p_pps = float_of_int txn /. walln;
    p_baseline_pps = float_of_int tx1 /. wall1;
    p_speedup = wall1 /. walln;
    p_alloc_words_per_packet = rn.P.alloc_bytes /. word /. float_of_int (max 1 txn);
    p_identical = identical;
  }

(* the shard-speedup assertion is armed only when the hardware can show a
   speedup at all: more than one core, and at least as many cores as
   shards (and enough shards for the 2.5x target to be meaningful) *)
let speedup_armed p = p.p_cores > 1 && p.p_cores >= p.p_shards && p.p_shards >= 4

let parallel_to_json p =
  Printf.sprintf
    "{ \"shards\": %d, \"cores\": %d, \"mode\": %S, \"packets\": %d, \"events\": %d, \
     \"windows\": %d, \"exchanged\": %d, \"wall_s\": %.3f, \"packets_per_sec\": %.0f, \
     \"baseline_pps\": %.0f, \"speedup_vs_1\": %.2f, \"speedup_armed\": %b, \
     \"alloc_words_per_packet\": %.1f, \"counts_identical\": %b }"
    p.p_shards p.p_cores p.p_mode p.p_packets p.p_events p.p_windows p.p_exchanged
    p.p_wall_s p.p_pps p.p_baseline_pps p.p_speedup (speedup_armed p)
    p.p_alloc_words_per_packet p.p_identical

(* The sharded path has its own allocation budget: a 'shard: <N>' line in
   bench/ALLOC_BUDGET (mailbox drains and window bookkeeping allocate a
   little more per packet than the pure sequential loop). *)
let read_sharded_alloc_budget () =
  match read_file alloc_budget_file with
  | None -> None
  | Some text ->
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           let line = String.trim line in
           if String.length line > 6 && String.sub line 0 6 = "shard:" then
             float_of_string_opt
               (String.trim (String.sub line 6 (String.length line - 6)))
           else None)

let check_parallel p =
  if not p.p_identical then begin
    Printf.printf
      "[perf] FAIL: sharded run (%d shards, %s mode) diverged from the 1-shard run\n\
       [perf] the parallel engine is the determinism oracle: a divergence means a \
       data race or a broken window/tie rule\n"
      p.p_shards p.p_mode;
    exit 1
  end;
  Printf.printf "[perf] determinism check ok: %d shards bit-identical to 1 shard\n"
    p.p_shards;
  (match read_sharded_alloc_budget () with
  | None ->
    Printf.printf "[perf] no 'shard:' line in %s; skipping sharded allocation check\n"
      alloc_budget_file
  | Some budget ->
    if p.p_alloc_words_per_packet > budget then begin
      Printf.printf
        "[perf] FAIL: sharded alloc_words_per_packet %.1f exceeds budget %.1f (%s)\n"
        p.p_alloc_words_per_packet budget alloc_budget_file;
      exit 1
    end
    else
      Printf.printf "[perf] sharded allocation check ok: %.1f <= budget %.1f words/packet\n"
        p.p_alloc_words_per_packet budget);
  (* the speedup target only means something when the cores exist; on a
     single-core (or generally smaller) machine the number is recorded but
     the assertion stays disarmed — "speedup_armed" in the JSON says which *)
  if speedup_armed p && p.p_speedup < 2.5 then
    Printf.printf
      "[perf] WARNING: %.2fx speedup at %d shards on %d cores (target 2.5x)\n"
      p.p_speedup p.p_shards p.p_cores
  else if not (speedup_armed p) then
    Printf.printf
      "[perf] speedup assertion disarmed: %d shards on %d cores (needs >1 core and \
       cores >= shards >= 4)\n"
      p.p_shards p.p_cores

(* ------------------------------------------------------------------ *)
(* perf --fluid: the hybrid fluid/packet tier at ISP scale             *)
(* ------------------------------------------------------------------ *)

(* Set by --fluid; perf then also sweeps the hybrid engine over growing
   flow populations and records a "fluid" section in BENCH_netsim.json. *)
let fluid_opt = ref false

type fluid_sample = {
  f_flows : int;
  f_classes : int;
  f_wall_s : float;
  f_equivalents : float;
  f_equiv_per_sec : float;
  f_demoted_frac_peak : float;
  f_demotions : int;
  f_promotions : int;
  f_demote_denied : int;
  f_solves : int;
  f_skipped : int;
  f_full_solves : int;
  f_touched_frac : float;
  f_loss_cuts : int;
  f_alloc_words_per_equiv : float;
}

(* One hybrid run of the rolling-LFA ISP scenario (Scenario.run_lfa_fluid):
   100k+ benign flows ride the fluid tier, the flood volume is fluid
   aggregates, and the defense's mode protocol demotes the flows near the
   action to packet level. Work is measured in packet-equivalents: actual
   per-hop packet transmissions plus fluid hop-bytes / packet_size. *)
(* Above 100k flows the per-flow rate scales down so the aggregate benign
   offer stays ~4 Gb/s: a million users means thinner flows, not a
   thousandfold-oversubscribed ISP, and it keeps the benign population
   bound-limited so the attack's bottleneck components stay local. The
   demote budget caps packet-tier churn at the same scale, and the goodput
   probe (O(members) per sample) backs off to keep measurement out of the
   measured number. *)
let measure_fluid ~flows ~duration =
  let flow_rate_bps = if flows <= 100_000 then 25_000. else 4e9 /. float_of_int flows in
  let demote_budget = if flows > 100_000 then Some 100_000 else None in
  let goodput_period = if flows > 100_000 then 4.0 else 0.5 in
  Gc.compact ();
  let bytes0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r =
    Fastflex.Scenario.run_lfa_fluid ~flows ~duration ~flow_rate_bps
      ?demote_budget ~goodput_period ()
  in
  let wall_s = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let alloc_words = (Gc.allocated_bytes () -. bytes0) /. float_of_int (Sys.word_size / 8) in
  let module S = Fastflex.Scenario in
  let st = r.S.fr_solver in
  {
    f_flows = flows;
    f_classes = r.S.fr_classes;
    f_wall_s = wall_s;
    f_equivalents = r.S.fr_packet_equivalents;
    f_equiv_per_sec = r.S.fr_packet_equivalents /. wall_s;
    f_demoted_frac_peak = r.S.fr_demoted_frac_peak;
    f_demotions = r.S.fr_demotions;
    f_promotions = r.S.fr_promotions;
    f_demote_denied = r.S.fr_demote_denied;
    f_solves = st.Ff_fluid.Fluid.solves;
    f_skipped = st.Ff_fluid.Fluid.skipped;
    f_full_solves = st.Ff_fluid.Fluid.full_solves;
    f_touched_frac = r.S.fr_touched_frac;
    f_loss_cuts = st.Ff_fluid.Fluid.loss_cuts;
    f_alloc_words_per_equiv = alloc_words /. Float.max 1. r.S.fr_packet_equivalents;
  }

(* The all-packet baseline: the same scenario forced through the packet
   engine (Hybrid.All_packet makes it bit-identical to the pre-hybrid
   stack), over a short pre-attack slice — long enough to amortize setup,
   short enough to stay runnable at 100k flows. *)
let measure_fluid_baseline ~flows =
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let r =
    Fastflex.Scenario.run_lfa_fluid ~flows ~duration:2.5
      ~force:Ff_fluid.Hybrid.All_packet ~packet_recon:false ()
  in
  let wall_s = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let module S = Fastflex.Scenario in
  (wall_s, r.S.fr_packet_equivalents /. wall_s)

let fluid_sample_to_json s =
  Printf.sprintf
    "{ \"flows\": %d, \"classes\": %d, \"wall_s\": %.3f, \"packet_equivalents\": %.0f, \
     \"equiv_per_sec\": %.0f, \"demoted_frac_peak\": %.4f, \"demotions\": %d, \
     \"promotions\": %d, \"demote_denied\": %d,\n\
    \        \"solves\": %d, \"skipped\": %d, \"full_solves\": %d, \"touched_frac\": %.4f, \
     \"loss_cuts\": %d, \"alloc_words_per_equiv\": %.2f }"
    s.f_flows s.f_classes s.f_wall_s s.f_equivalents s.f_equiv_per_sec
    s.f_demoted_frac_peak s.f_demotions s.f_promotions s.f_demote_denied s.f_solves
    s.f_skipped s.f_full_solves s.f_touched_frac s.f_loss_cuts
    s.f_alloc_words_per_equiv

let fluid_to_json ~sweep ~baseline_flows ~baseline_eps ~speedup ~solver_alloc =
  Printf.sprintf
    "{ \"scenario\": \"isp(12 cores x 2 x 4), rolling fluid LFA, wide defense, 40 sim \
     seconds\",\n\
    \    \"sweep\": [ %s ],\n\
    \    \"baseline_flows\": %d, \"baseline_equiv_per_sec\": %.0f, \
     \"speedup_vs_packet\": %.1f,\n\
    \    \"solver_alloc_words_per_recompute\": %.1f }"
    (String.concat ",\n      " (List.map fluid_sample_to_json sweep))
    baseline_flows baseline_eps speedup solver_alloc

(* The hybrid tier's allocation guardrail: a 'fluid: <N>' line in
   bench/ALLOC_BUDGET bounds allocated words per packet-equivalent at the
   largest sweep point. Fluid equivalents cost no per-unit allocation, so
   the figure is tiny — growth means per-flow work crept into a per-sample
   or per-solve path. *)
let read_budget_line prefix =
  let plen = String.length prefix in
  match read_file alloc_budget_file with
  | None -> None
  | Some text ->
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           let line = String.trim line in
           if String.length line > plen && String.sub line 0 plen = prefix then
             float_of_string_opt
               (String.trim (String.sub line plen (String.length line - plen)))
           else None)

let read_fluid_alloc_budget () = read_budget_line "fluid:"

(* Steady-state solver allocation, isolated from the scenario: build a
   mid-size population once, then hammer single-link-dirty incremental
   re-solves and count GC words per recompute. The 'fluid-solver:' line in
   bench/ALLOC_BUDGET bounds it — the solver's scratch is all dense
   pre-sized arrays, so growth here means a per-solve allocation (list,
   closure, tuple key) crept back into the fill path. *)
let measure_solver_alloc () =
  let module Engine = Ff_netsim.Engine in
  let module Net = Ff_netsim.Net in
  let module Fluid = Ff_fluid.Fluid in
  let topo = T.isp ~cores:4 ~access_per_core:2 ~hosts_per_access:4 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  Scenario.install_all_routes net;
  let hosts = Array.of_list (List.map (fun (n : T.node) -> n.T.id) (T.hosts topo)) in
  let nh = Array.length hosts in
  let fl = Fluid.create net () in
  for i = 0 to 499 do
    let src = hosts.(i mod nh) in
    let dst = hosts.((i * 7 + 1) mod nh) in
    if src <> dst then
      ignore
        (Fluid.add fl ~src ~dst
           (if i mod 3 = 0 then Fluid.Adaptive { rtt = 0.02; max_rate = 1e6 }
            else Fluid.Constant { rate = 25_000. }))
  done;
  Fluid.recompute fl;
  let li = Net.link_index net ~from_:hosts.(0) ~to_:(List.hd (Net.neighbors_of net hosts.(0))) in
  let iters = 2_000 in
  Gc.compact ();
  let bytes0 = Gc.allocated_bytes () in
  for _ = 1 to iters do
    Fluid.mark_link_dirty fl li;
    Fluid.recompute fl
  done;
  let words = (Gc.allocated_bytes () -. bytes0) /. float_of_int (Sys.word_size / 8) in
  words /. float_of_int iters

(* Hard floors for the 10^6-flow point (ISSUE 8): the incremental solver
   must hold >= 5M packet-equivalents/s (the headline target is 8M; the
   floor leaves slack for slow CI machines) and must stay local. The
   attack window's mass demote/promote batches legitimately fall back to
   full solves (~0.4 cumulative touched fraction); losing incremental
   locality shows up as >= 1.0, so 0.5 separates the two regimes. *)
let fluid_equiv_floor = 5e6
let fluid_touched_frac_max = 0.5

let check_fluid ~top ~speedup ~solver_alloc =
  (match read_fluid_alloc_budget () with
  | None ->
    Printf.printf "[perf] no 'fluid:' line in %s; skipping fluid allocation check\n"
      alloc_budget_file
  | Some budget ->
    if top.f_alloc_words_per_equiv > budget then begin
      Printf.printf
        "[perf] FAIL: fluid alloc_words_per_equiv %.2f exceeds budget %.2f (%s)\n"
        top.f_alloc_words_per_equiv budget alloc_budget_file;
      exit 1
    end
    else
      Printf.printf "[perf] fluid allocation check ok: %.2f <= budget %.2f words/equiv\n"
        top.f_alloc_words_per_equiv budget);
  (match read_budget_line "fluid-solver:" with
  | None ->
    Printf.printf
      "[perf] no 'fluid-solver:' line in %s; skipping solver allocation check\n"
      alloc_budget_file
  | Some budget ->
    if solver_alloc > budget then begin
      Printf.printf
        "[perf] FAIL: solver alloc %.1f words/recompute exceeds budget %.1f (%s)\n"
        solver_alloc budget alloc_budget_file;
      exit 1
    end
    else
      Printf.printf
        "[perf] solver allocation check ok: %.1f <= budget %.1f words/recompute\n"
        solver_alloc budget);
  if top.f_flows >= 1_000_000 && top.f_equiv_per_sec < fluid_equiv_floor then begin
    Printf.printf "[perf] FAIL: %.2e equiv/s at %d flows is under the %.0e floor\n"
      top.f_equiv_per_sec top.f_flows fluid_equiv_floor;
    exit 1
  end
  else
    Printf.printf "[perf] fluid throughput check ok: %.2e equiv/s at %d flows\n"
      top.f_equiv_per_sec top.f_flows;
  if top.f_touched_frac > fluid_touched_frac_max then begin
    Printf.printf
      "[perf] FAIL: solver touched_frac %.3f exceeds %.2f — incremental locality lost\n"
      top.f_touched_frac fluid_touched_frac_max;
    exit 1
  end
  else
    Printf.printf "[perf] solver locality check ok: touched_frac %.3f <= %.2f\n"
      top.f_touched_frac fluid_touched_frac_max;
  if speedup < 20. then
    Printf.printf
      "[perf] WARNING: hybrid speedup %.1fx at %d flows (target 20x vs all-packet)\n"
      speedup top.f_flows
  else
    Printf.printf "[perf] hybrid speedup check ok: %.1fx >= 20x at %d flows\n" speedup
      top.f_flows

(* The all-packet baseline is pinned at 100k flows: the pure packet engine
   cannot finish the 10^6-flow scenario in tractable wall time, and its
   equiv/s is flow-count-insensitive (per-packet work), so the 100k figure
   is the honest denominator for the top-scale speedup (baseline_flows is
   recorded in the JSON). *)
let fluid_baseline_flows = 100_000

let measure_fluid_sweep () =
  let sweep =
    List.map
      (fun flows ->
        Printf.printf "[perf] hybrid fluid run: %d flows\n%!" flows;
        measure_fluid ~flows ~duration:40.)
      [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let top = List.nth sweep (List.length sweep - 1) in
  Printf.printf "[perf] all-packet baseline: %d flows, 2.5 sim seconds\n%!"
    fluid_baseline_flows;
  let _, baseline_eps = measure_fluid_baseline ~flows:fluid_baseline_flows in
  Printf.printf "[perf] solver steady-state allocation micro-benchmark\n%!";
  let solver_alloc = measure_solver_alloc () in
  (sweep, top, baseline_eps, top.f_equiv_per_sec /. Float.max 1. baseline_eps,
   solver_alloc)

let perf () =
  banner "perf" "per-packet hot path: fat-tree(4) + rolling LFA, 30 simulated seconds";
  let s = measure_perf () in
  let par =
    match !shards_opt with
    | Some n when n >= 1 ->
      Printf.printf "\n[perf] sharded engine: fat-tree(8), %d shards\n%!" n;
      Some (measure_parallel ~shards:n)
    | _ -> None
  in
  let current = sample_to_json s in
  let old_text = read_file perf_json_file in
  let before =
    match old_text with
    | Some text -> ( match extract_object text "before" with Some b -> b | None -> current)
    | None -> current
  in
  let parallel_json =
    match par with
    | Some p -> parallel_to_json p
    | None -> (
      (* keep the last sharded measurement when this run didn't take one *)
      match old_text with
      | Some text -> (
        match extract_object text "parallel" with Some o -> o | None -> "null")
      | None -> "null")
  in
  let fluid =
    if !fluid_opt then begin
      Printf.printf "\n[perf] hybrid fluid/packet tier: isp topology, rolling fluid LFA\n%!";
      Some (measure_fluid_sweep ())
    end
    else None
  in
  let fluid_json =
    match fluid with
    | Some (sweep, _, baseline_eps, speedup, solver_alloc) ->
      fluid_to_json ~sweep ~baseline_flows:fluid_baseline_flows ~baseline_eps ~speedup
        ~solver_alloc
    | None -> (
      (* keep the last fluid sweep when this run didn't take one *)
      match old_text with
      | Some text -> (
        match extract_object text "fluid" with Some o -> o | None -> "null")
      | None -> "null")
  in
  let oc = open_out perf_json_file in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"fastflex-netsim-perf/2\",\n\
    \  \"scenario\": \"fat-tree(4), deploy_wide defense, 6 CBR + 3 TCP flows, rolling LFA, \
     30 sim seconds\",\n\
    \  \"note\": \"before = first run recorded on this machine (preserved across reruns); \
     after = latest run; parallel = sharded engine on fat-tree(8), 128 cross-pod CBR \
     flows (perf --shards N)\",\n\
    \  \"before\": %s,\n\
    \  \"after\": %s,\n\
    \  \"parallel\": %s,\n\
    \  \"fluid\": %s\n\
     }\n"
    before current parallel_json fluid_json;
  close_out oc;
  Table.print
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "hop transmissions"; string_of_int s.packets ];
        [ "sim events"; string_of_int s.events ];
        [ "wall (s)"; Printf.sprintf "%.3f" s.wall_s ];
        [ "packets/s"; Printf.sprintf "%.0f" s.packets_per_sec ];
        [ "events/s"; Printf.sprintf "%.0f" s.events_per_sec ];
        [ "alloc words/packet"; Printf.sprintf "%.1f" s.alloc_words_per_packet ];
        [ "drops"; string_of_int s.drops ] ];
  (match par with
  | None -> ()
  | Some p ->
    Table.print
      ~header:[ "parallel metric"; "value" ]
      ~rows:
        [ [ "shards / cores"; Printf.sprintf "%d / %d" p.p_shards p.p_cores ];
          [ "mode"; p.p_mode ];
          [ "hop transmissions"; string_of_int p.p_packets ];
          [ "sim events"; string_of_int p.p_events ];
          [ "windows"; string_of_int p.p_windows ];
          [ "cross-shard msgs"; string_of_int p.p_exchanged ];
          [ "wall (s)"; Printf.sprintf "%.3f" p.p_wall_s ];
          [ "packets/s"; Printf.sprintf "%.0f" p.p_pps ];
          [ "baseline packets/s"; Printf.sprintf "%.0f" p.p_baseline_pps ];
          [ "speedup vs 1 shard"; Printf.sprintf "%.2fx" p.p_speedup ];
          [ "speedup armed"; string_of_bool (speedup_armed p) ];
          [ "alloc words/packet"; Printf.sprintf "%.1f" p.p_alloc_words_per_packet ];
          [ "counts identical"; string_of_bool p.p_identical ] ]);
  (match fluid with
  | None -> ()
  | Some (sweep, _, baseline_eps, speedup, solver_alloc) ->
    Table.print
      ~header:
        [ "fluid flows"; "classes"; "wall (s)"; "equiv/s"; "demoted peak";
          "touched"; "full/solves"; "alloc w/equiv" ]
      ~rows:
        (List.map
           (fun f ->
             [ string_of_int f.f_flows; string_of_int f.f_classes;
               Printf.sprintf "%.2f" f.f_wall_s;
               Printf.sprintf "%.2e" f.f_equiv_per_sec;
               Printf.sprintf "%.2f%%" (100. *. f.f_demoted_frac_peak);
               Printf.sprintf "%.3f" f.f_touched_frac;
               Printf.sprintf "%d/%d" f.f_full_solves f.f_solves;
               Printf.sprintf "%.2f" f.f_alloc_words_per_equiv ])
           sweep);
    Printf.printf
      "[perf] all-packet baseline %.2e equiv/s (at %d flows) -> hybrid speedup %.1fx \
       at the top scale\n"
      baseline_eps fluid_baseline_flows speedup;
    Printf.printf "[perf] solver steady-state allocation: %.1f words/recompute\n"
      solver_alloc);
  Printf.printf "\n[perf] wrote %s\n" perf_json_file;
  check_alloc_budget s;
  Option.iter check_parallel par;
  match fluid with
  | Some (_, top, _, speedup, solver_alloc) -> check_fluid ~top ~speedup ~solver_alloc
  | None -> ()

(* ------------------------------------------------------------------ *)
(* micro: Bechamel micro-benchmarks of the primitives                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  banner "micro" "per-operation cost of the data plane primitives (Bechamel OLS)";
  let open Bechamel in
  let open Toolkit in
  let sketch = Ff_dataplane.Sketch.create ~rows:4 ~cols:1024 () in
  let bloom = Ff_dataplane.Bloom.create ~bits:8192 ~hashes:4 () in
  let hashpipe = Ff_dataplane.Hashpipe.create ~stages:4 ~slots_per_stage:64 () in
  let heap = Ff_util.Heap.create () in
  let lm = T.Fig2.build () in
  let key = ref 0 in
  let lfa_parser = List.hd (Ff_boosters.Specs.specs_of "lfa-detector") in
  let fec_entries = List.init 64 (fun i -> (Printf.sprintf "r[%d]" i, float_of_int i)) in
  let fec_chunks = Ff_scaling.Fec.encode fec_entries in
  let tests =
    [
      Test.make ~name:"sketch-add"
        (Staged.stage (fun () ->
             incr key;
             Ff_dataplane.Sketch.add sketch !key 1.));
      Test.make ~name:"sketch-estimate"
        (Staged.stage (fun () -> ignore (Ff_dataplane.Sketch.estimate sketch 42)));
      Test.make ~name:"bloom-add"
        (Staged.stage (fun () ->
             incr key;
             Ff_dataplane.Bloom.add bloom !key));
      Test.make ~name:"bloom-mem"
        (Staged.stage (fun () -> ignore (Ff_dataplane.Bloom.mem bloom 42)));
      Test.make ~name:"hashpipe-update"
        (Staged.stage (fun () ->
             incr key;
             Ff_dataplane.Hashpipe.update hashpipe ~key:(!key mod 512) ~weight:1.));
      Test.make ~name:"event-heap-push-pop"
        (Staged.stage (fun () ->
             Ff_util.Heap.push heap ~prio:(float_of_int (!key mod 97)) ();
             incr key;
             ignore (Ff_util.Heap.pop heap)));
      Test.make ~name:"equiv-canonicalize"
        (Staged.stage (fun () -> ignore (Ff_dataflow.Equiv.canonical lfa_parser)));
      Test.make ~name:"yen-4-paths-fig2"
        (Staged.stage (fun () ->
             ignore
               (T.k_shortest_paths ~k:4 lm.T.Fig2.topo
                  ~src:(List.hd lm.T.Fig2.normal_sources) ~dst:lm.T.Fig2.victim)));
      Test.make ~name:"fec-encode-64"
        (Staged.stage (fun () -> ignore (Ff_scaling.Fec.encode fec_entries)));
      Test.make ~name:"fec-decode-64"
        (Staged.stage (fun () -> ignore (Ff_scaling.Fec.decode fec_chunks)));
    ]
  in
  let grouped = Test.make_grouped ~name:"fastflex" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns = match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan in
        (name, ns) :: acc)
      results []
    |> List.sort compare
    |> List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ])
  in
  Table.print ~header:[ "operation"; "ns/op" ] ~rows

(* ------------------------------------------------------------------ *)
(* adversarial: closed-loop adaptive attackers vs hardened defenses     *)
(* ------------------------------------------------------------------ *)

(* bench/ADVERSARIAL_BASELINE holds the pre-hardening (unhardened,
   closed-loop) work factor per strategy and seed:
     <strategy> <seed> <work_factor>
   The hardened run must post a work factor at least
   [wf_floor_factor] x that baseline — the "evasion resistance raised
   the attacker's cost" assertion. Re-record after an intentional
   defense change with ADVERSARIAL_RECORD=1. *)
(* invoked both from the repo root (dune exec bench/main.exe) and from
   bench/ itself (the @adversarial alias action runs there) *)
let adversarial_baseline_file =
  if Sys.file_exists "ADVERSARIAL_BASELINE" then "ADVERSARIAL_BASELINE"
  else "bench/ADVERSARIAL_BASELINE"
let adversarial_wf_floor = 3.0
let adversarial_damage_gain = 2.0 (* adaptive must beat open-loop by this *)
let adversarial_damage_residual = 1.25 (* hardened adaptive vs open-loop *)

let read_adversarial_baseline () =
  if not (Sys.file_exists adversarial_baseline_file) then []
  else
    let ic = open_in adversarial_baseline_file in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> acc
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else begin
          match String.split_on_char ' ' line with
          | [ strat; seed; wf ] ->
            go (((strat, int_of_string seed), float_of_string wf) :: acc)
          | _ -> go acc
        end
    in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go [])

let adversarial_seeds () =
  match Sys.getenv_opt "ADVERSARIAL_SEEDS" with
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
  | None -> [ 1; 2 ]

let adversarial () =
  banner "adversarial"
    "closed-loop adaptive attackers vs evasion-hardened defenses (attacker work factor)";
  let module A = Ff_attacks.Adaptive in
  let record = Sys.getenv_opt "ADVERSARIAL_RECORD" <> None in
  let baseline = read_adversarial_baseline () in
  let seeds = adversarial_seeds () in
  let failures = ref [] in
  let recorded = ref [] in
  let check name ok detail =
    if not ok then failures := Printf.sprintf "%s: %s" name detail :: !failures
  in
  let rows =
    List.concat_map
      (fun strategy ->
        let sname = A.strategy_name strategy in
        List.concat_map
          (fun seed ->
            Printf.printf "  %-15s seed %d ...%!" sname seed;
            let t0 = Unix.gettimeofday () in
            let open_loop =
              Scenario.run_adversarial ~strategy ~adversary:Scenario.Open_loop ~seed ()
            in
            let adaptive =
              Scenario.run_adversarial ~strategy ~adversary:Scenario.Closed_loop ~seed ()
            in
            let hardened =
              Scenario.run_adversarial ~strategy ~adversary:Scenario.Closed_loop
                ~hardened:true ~seed ()
            in
            Printf.printf " %.1fs\n%!" (Unix.gettimeofday () -. t0);
            if Sys.getenv_opt "ADVERSARIAL_DEBUG" <> None then
              List.iter
                (fun r ->
                  Format.printf "    %a" Scenario.pp_adversarial r;
                  List.iter (fun l -> Printf.printf "      | %s\n" l) r.Scenario.ar_log)
                [ open_loop; adaptive; hardened ];
            let tag = Printf.sprintf "%s/seed=%d" sname seed in
            (* the adaptive loop must beat the defense the blast cannot *)
            check tag
              (adaptive.Scenario.ar_damage
              >= adversarial_damage_gain *. open_loop.Scenario.ar_damage)
              (Printf.sprintf "adaptive damage %.2f < %.1fx open-loop %.2f"
                 adaptive.Scenario.ar_damage adversarial_damage_gain
                 open_loop.Scenario.ar_damage);
            (* hardening must blunt it back to (near) open-loop damage *)
            check tag
              (hardened.Scenario.ar_damage
              <= adversarial_damage_residual *. Float.max 0.5 open_loop.Scenario.ar_damage)
              (Printf.sprintf "hardened damage %.2f > %.2fx open-loop %.2f"
                 hardened.Scenario.ar_damage adversarial_damage_residual
                 open_loop.Scenario.ar_damage);
            (* ... and raise the attacker's cost against the committed
               pre-hardening baseline *)
            (match List.assoc_opt (sname, seed) baseline with
            | Some base_wf when not record ->
              check tag
                (hardened.Scenario.ar_work_factor >= adversarial_wf_floor *. base_wf)
                (Printf.sprintf "hardened work factor %.0f < %.1fx baseline %.0f"
                   hardened.Scenario.ar_work_factor adversarial_wf_floor base_wf)
            | _ ->
              if not record then
                failures :=
                  Printf.sprintf "%s: no baseline in %s (run with ADVERSARIAL_RECORD=1)"
                    tag adversarial_baseline_file
                  :: !failures);
            recorded :=
              (sname, seed, adaptive.Scenario.ar_work_factor) :: !recorded;
            let row (r : Scenario.adversarial_result) which =
              [ sname; string_of_int seed; which;
                string_of_int r.Scenario.ar_probes;
                Printf.sprintf "%.2f" r.Scenario.ar_damage;
                Printf.sprintf "%.2f" r.Scenario.ar_peak_util;
                (match r.Scenario.ar_effective_at with
                | Some _ -> Printf.sprintf "%.1f" r.Scenario.ar_time_to_effective
                | None -> "never");
                Printf.sprintf "%.0f" r.Scenario.ar_work_factor;
                string_of_int r.Scenario.ar_alarms;
                string_of_int r.Scenario.ar_drops ]
            in
            [ row open_loop "open-loop";
              row adaptive "adaptive";
              row hardened "adaptive+hard" ])
          seeds)
      [ A.Threshold_hug; A.Collision_probe; A.Epoch_time ]
  in
  Table.print
    ~header:
      [ "strategy"; "seed"; "adversary"; "probes"; "damage"; "peak"; "tte"; "wf";
        "alarms"; "drops" ]
    ~rows;
  if record then begin
    let oc = open_out adversarial_baseline_file in
    output_string oc
      "# pre-hardening (unhardened, closed-loop) work factors: <strategy> <seed> <wf>\n\
       # regenerate with: ADVERSARIAL_RECORD=1 dune exec bench/main.exe -- adversarial\n";
    List.iter
      (fun (s, seed, wf) -> Printf.fprintf oc "%s %d %.1f\n" s seed wf)
      (List.rev !recorded);
    close_out oc;
    Printf.printf "[adversarial] baselines -> %s\n" adversarial_baseline_file
  end;
  match !failures with
  | [] -> print_endline "[adversarial] all work-factor and damage floors hold"
  | fs ->
    List.iter (fun f -> Printf.eprintf "[adversarial] FAIL %s\n" f) fs;
    exit 1

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("abl-te", abl_te);
    ("abl-probe", abl_probe);
    ("abl-sharing", abl_sharing);
    ("abl-fec", abl_fec);
    ("abl-scaling", abl_scaling);
    ("abl-pulse", abl_pulse);
    ("abl-sync", abl_sync);
    ("abl-topo", abl_topo);
    ("abl-vol", abl_vol);
    ("synflood", synflood_exp);
    ("chaos", chaos_exp);
    ("adversarial", adversarial);
    ("perf", perf);
    ("micro", micro);
  ]

let run_experiment name f =
  let trace_events () =
    match Ff_obs.Trace.ambient () with Some tr -> Ff_obs.Trace.count tr | None -> 0
  in
  let span =
    Ff_obs.Profile.start ~events:(Ff_netsim.Engine.total_steps ())
      ~trace_events:(trace_events ()) name
  in
  f ();
  let report =
    Ff_obs.Profile.finish span ~events:(Ff_netsim.Engine.total_steps ())
      ~trace_events:(trace_events ()) ()
  in
  Format.printf "%a@." Ff_obs.Profile.pp_report report

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --trace FILE          write the telemetry event log (JSONL, or CSV if
                           FILE ends in .csv) after the experiments run
     --trace-filter KINDS  with --trace: keep only these comma-separated
                           event kinds (original seq numbers retained) and
                           append one drop-proof per-kind summary line —
                           the format of the committed golden traces
     --metrics FILE        write the metrics registry as CSV
     --shards N            with perf: also measure the sharded parallel
                           engine with N shards and check it is
                           bit-identical to the 1-shard run
     --fluid               with perf: also sweep the hybrid fluid/packet
                           tier (1k/10k/100k flows on the ISP topology)
                           and record a "fluid" section *)
  let rec split_opts trace filter metrics acc = function
    | "--trace" :: file :: rest -> split_opts (Some file) filter metrics acc rest
    | "--trace-filter" :: kinds :: rest ->
      split_opts trace (Some (String.split_on_char ',' kinds)) metrics acc rest
    | "--metrics" :: file :: rest -> split_opts trace filter (Some file) acc rest
    | "--shards" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> shards_opt := Some n
      | _ ->
        Printf.eprintf "--shards expects a positive integer, got %S\n" n;
        exit 1);
      split_opts trace filter metrics acc rest
    | "--fluid" :: rest ->
      fluid_opt := true;
      split_opts trace filter metrics acc rest
    | a :: rest -> split_opts trace filter metrics (a :: acc) rest
    | [] -> (trace, filter, metrics, List.rev acc)
  in
  let trace_file, trace_filter, metrics_file, names = split_opts None None None [] args in
  let trace =
    match trace_file with
    | None -> None
    | Some _ ->
      let tr = Ff_obs.Trace.create () in
      Ff_obs.Trace.set_ambient (Some tr);
      Some tr
  in
  let metrics =
    let m = Ff_obs.Metrics.create () in
    Ff_obs.Metrics.set_ambient (Some m);
    m
  in
  (match names with
  | [] | [ "all" ] -> List.iter (fun (name, f) -> run_experiment name f) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> run_experiment name f
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
      names);
  (match (trace_file, trace) with
  | Some file, Some tr ->
    (match trace_filter with
    | None ->
      if Filename.check_suffix file ".csv" then Ff_obs.Trace.write_csv tr file
      else Ff_obs.Trace.write_jsonl tr file
    | Some keep ->
      (* the golden-trace format: filtered JSONL keeping original seq
         numbers, closed by a summary object whose per-kind totals come
         from the drop-proof counters (they cover the whole run even if
         the buffer overflowed) *)
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Ff_obs.Trace.iter tr (fun e ->
              if List.mem (Ff_obs.Event.kind e.Ff_obs.Trace.event) keep then begin
                output_string oc (Ff_obs.Trace.entry_to_json e);
                output_char oc '\n'
              end);
          let all_kinds =
            [ "mode_transition"; "reroute"; "state_transfer"; "fec_recovery"; "drop";
              "probe"; "fault"; "repair" ]
          in
          let counts =
            List.map
              (fun k -> Printf.sprintf "%S: %d" k (Ff_obs.Trace.count_kind tr k))
              all_kinds
          in
          Printf.fprintf oc "{\"summary\": {%s}, \"total\": %d}\n"
            (String.concat ", " counts) (Ff_obs.Trace.count tr)));
    Printf.printf "[trace] %d events (%d buffered, %d dropped) -> %s\n" (Ff_obs.Trace.count tr)
      (Ff_obs.Trace.length tr) (Ff_obs.Trace.dropped tr) file
  | _ -> ());
  match metrics_file with
  | Some file ->
    Ff_obs.Metrics.write_csv metrics ~now:infinity file;
    Printf.printf "[metrics] -> %s\n" file
  | None -> ()
