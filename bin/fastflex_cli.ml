(* Command-line front-end: run FastFlex scenarios and inspect the
   compilation pipeline from the shell.

     fastflex_cli lfa --defense fastflex --duration 120 --csv
     fastflex_cli compile
     fastflex_cli stability --dwell 1.0
*)

open Cmdliner

let run_lfa defense duration te_period roll_times csv seed_bots normals trace_file
    chaos_spec =
  let defense =
    match defense with
    | "none" -> Fastflex.Scenario.No_defense
    | "sdn" -> Fastflex.Scenario.Baseline_sdn { period = te_period; delay = 0.5 }
    | "fastflex" -> Fastflex.Scenario.Fastflex Fastflex.Orchestrator.default_config
    | other -> failwith ("unknown defense: " ^ other)
  in
  let attack =
    Some { Fastflex.Scenario.default_attack with roll_schedule = roll_times }
  in
  let chaos_directives =
    match chaos_spec with
    | None -> []
    | Some spec -> (
      match Ff_chaos.Chaos.parse spec with
      | Ok ds -> ds
      | Error e -> failwith ("bad --chaos spec: " ^ e))
  in
  let harness = ref None in
  let on_ready net _landmarks _flows =
    if chaos_directives <> [] then begin
      let h =
        Ff_chaos.Chaos.create
          ?seed:(Ff_chaos.Chaos.spec_seed chaos_directives)
          net
      in
      Ff_chaos.Chaos.apply h chaos_directives;
      harness := Some h
    end
  in
  let trace =
    Option.map
      (fun _ ->
        let tr = Ff_obs.Trace.create () in
        Ff_obs.Trace.set_ambient (Some tr);
        tr)
      trace_file
  in
  let span = Ff_obs.Profile.start ~events:(Ff_netsim.Engine.total_steps ()) "lfa" in
  let r =
    Fastflex.Scenario.run_lfa ~defense ~attack ~duration ~bots:seed_bots ~normals
      ~on_ready ()
  in
  let report =
    Ff_obs.Profile.finish span ~events:(Ff_netsim.Engine.total_steps ())
      ~trace_events:(match trace with Some tr -> Ff_obs.Trace.count tr | None -> 0)
      ()
  in
  Fastflex.Scenario.pp_summary Format.std_formatter r;
  if csv then Ff_util.Series.pp_csv Format.std_formatter [ r.Fastflex.Scenario.normalized ]
  else
    Ff_util.Series.pp_ascii ~height:12 Format.std_formatter
      [ r.Fastflex.Scenario.normalized ];
  Format.printf "%a@." Ff_obs.Profile.pp_report report;
  (match (trace_file, trace) with
  | Some file, Some tr ->
    if Filename.check_suffix file ".csv" then Ff_obs.Trace.write_csv tr file
    else Ff_obs.Trace.write_jsonl tr file;
    Printf.printf "trace: %d events -> %s\n" (Ff_obs.Trace.count tr) file
  | _ -> ());
  (match !harness with
  | None -> ()
  | Some h ->
    Printf.printf "chaos: %d fault actions injected\n" (Ff_chaos.Chaos.injected h);
    List.iter
      (fun (time, action) ->
        Printf.printf "  %8.3f  %s\n" time (Ff_chaos.Chaos.action_to_string action))
      (Ff_chaos.Chaos.log h));
  `Ok ()

let compile_cmd () =
  let compiled = Fastflex.Compile.boosters () in
  print_endline "Module table (paper Figure 1):";
  Ff_util.Table.print
    ~header:[ "module"; "boosters"; "stages"; "SRAM(KB)"; "TCAM"; "ALUs"; "hash" ]
    ~rows:
      (List.map
         (fun (name, boosters, res) ->
           name :: String.concat "+" boosters :: Ff_dataplane.Resource.to_row res)
         (Fastflex.Compile.module_rows compiled));
  Printf.printf "\nsharing saved %.0f%% of pipeline stages (%d PPM absorptions)\n"
    (100. *. compiled.Fastflex.Compile.savings)
    (List.length compiled.Fastflex.Compile.sharing);
  `Ok ()

let verify_cmd () =
  let results = Fastflex.Compile.verify () in
  let clean = ref true in
  List.iter
    (fun (name, issues) ->
      match issues with
      | [] -> Printf.printf "%-18s ok\n" name
      | issues ->
        clean := false;
        Printf.printf "%-18s %d issue(s):\n" name (List.length issues);
        List.iter (fun i -> Format.printf "  %a@." Ff_dataflow.Check.pp_issue i) issues)
    results;
  if !clean then `Ok () else `Error (false, "verification found issues")

let dot_cmd () =
  let compiled = Fastflex.Compile.boosters () in
  print_string (Ff_dataflow.Graph.to_dot ~name:"fastflex" compiled.Fastflex.Compile.merged);
  `Ok ()

let stability_cmd dwell =
  let automaton =
    Ff_modes.Stability.of_protocol ~modes_for:Fastflex.Orchestrator.modes_for ~dwell
  in
  let report = Ff_modes.Stability.analyze automaton in
  Printf.printf "mode automaton: %d reachable states\n"
    (List.length report.Ff_modes.Stability.reachable);
  (match report.Ff_modes.Stability.issues with
  | [] -> print_endline "stable: every state returns to default, no zero-dwell cycles"
  | issues ->
    List.iter
      (fun i -> Format.printf "issue: %a@." Ff_modes.Stability.pp_issue i)
      issues);
  `Ok ()

let parallel_cmd shards k duration rate_pps seq =
  let w = Ff_parallel.Workload.fat_tree ~k ~rate_pps ~duration () in
  let counters = Ff_parallel.Workload.fresh_counters w in
  let mode = if seq then Ff_parallel.Psim.Sequential else Ff_parallel.Psim.Auto in
  let t0 = Unix.gettimeofday () in
  let r =
    Ff_parallel.Psim.run ~mode ~shards
      ~topo:(Ff_parallel.Workload.topo w)
      ~setup:(Ff_parallel.Workload.setup w counters)
      ~until:(Ff_parallel.Workload.until w) ()
  in
  let wall = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let tx = Ff_parallel.Psim.total_tx r in
  Ff_util.Table.print
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "topology"; Printf.sprintf "fat-tree(%d)" k ];
        [ "flows"; string_of_int (Ff_parallel.Workload.n_flows w) ];
        [ "shards"; string_of_int shards ];
        [ "mode";
          (match r.Ff_parallel.Psim.mode_used with
          | Ff_parallel.Psim.Domains -> "domains"
          | _ -> "sequential (cooperative)") ];
        [ "lookahead (s)"; Printf.sprintf "%g" r.Ff_parallel.Psim.lookahead ];
        [ "windows"; string_of_int r.Ff_parallel.Psim.windows ];
        [ "cross-shard msgs"; string_of_int r.Ff_parallel.Psim.exchanged ];
        [ "sim events"; string_of_int r.Ff_parallel.Psim.events ];
        [ "hop transmissions"; string_of_int tx ];
        [ "packets delivered";
          string_of_int (Ff_parallel.Workload.total_delivered counters) ];
        [ "wall (s)"; Printf.sprintf "%.3f" wall ];
        [ "packets/s"; Printf.sprintf "%.0f" (float_of_int tx /. wall) ] ];
  (match Ff_parallel.Psim.drops_by_reason r with
  | [] -> ()
  | drops ->
    print_endline "drops:";
    List.iter (fun (reason, n) -> Printf.printf "  %-12s %d\n" reason n) drops);
  `Ok ()

let fluid_cmd flows duration force trace_file =
  let force =
    match force with
    | "packet" -> Ff_fluid.Hybrid.All_packet
    | "fluid" -> Ff_fluid.Hybrid.All_fluid
    | _ -> Ff_fluid.Hybrid.Auto
  in
  let obs = Option.map (fun _ -> Ff_obs.Trace.create ()) trace_file in
  let t0 = Unix.gettimeofday () in
  let r = Fastflex.Scenario.run_lfa_fluid ~flows ~duration ~force ?obs () in
  let wall = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  (match (obs, trace_file) with
  | Some tr, Some file ->
    if Filename.check_suffix file ".csv" then Ff_obs.Trace.write_csv tr file
    else Ff_obs.Trace.write_jsonl tr file
  | _ -> ());
  let open Fastflex.Scenario in
  Ff_util.Table.print
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "benign flows"; string_of_int r.fr_flows ];
        [ "fluid classes"; string_of_int r.fr_classes ];
        [ "simulated (s)"; Printf.sprintf "%g" r.fr_duration ];
        [ "packet tx"; string_of_int r.fr_packet_tx ];
        [ "fluid hop bytes"; Printf.sprintf "%.3e" r.fr_fluid_hop_bytes ];
        [ "packet equivalents"; Printf.sprintf "%.3e" r.fr_packet_equivalents ];
        [ "equivalents/s"; Printf.sprintf "%.3e" (r.fr_packet_equivalents /. wall) ];
        [ "delivered bytes"; Printf.sprintf "%.3e" r.fr_delivered_bytes ];
        [ "demoted peak";
          Printf.sprintf "%d (%.1f%%)" r.fr_demoted_peak
            (100. *. r.fr_demoted_frac_peak) ];
        [ "demotions / promotions";
          Printf.sprintf "%d / %d" r.fr_demotions r.fr_promotions ];
        [ "mode changes"; string_of_int r.fr_mode_changes ];
        [ "attack rolls"; string_of_int r.fr_rolls ];
        [ "solver rate events"; string_of_int r.fr_rate_events ];
        [ "wall (s)"; Printf.sprintf "%.3f" wall ] ];
  (match r.fr_drops with
  | [] -> ()
  | drops ->
    print_endline "drops:";
    List.iter (fun (reason, n) -> Printf.printf "  %-12s %d\n" reason n) drops);
  `Ok ()

let defense_arg =
  let doc = "Defense to deploy: none, sdn, or fastflex." in
  Arg.(value & opt string "fastflex" & info [ "defense"; "d" ] ~docv:"DEFENSE" ~doc)

let duration_arg =
  Arg.(value & opt float 120. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated seconds.")

let te_period_arg =
  Arg.(value & opt float 30. & info [ "te-period" ] ~docv:"SECONDS"
         ~doc:"Baseline SDN reconfiguration period.")

let rolls_arg =
  Arg.(value & opt (list float) [ 45.; 80. ] & info [ "rolls" ] ~docv:"T1,T2,..."
         ~doc:"Forced attack re-target times.")

let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of an ASCII chart.")

let bots_arg = Arg.(value & opt int 8 & info [ "bots" ] ~doc:"Number of bot hosts.")
let normals_arg = Arg.(value & opt int 4 & info [ "normals" ] ~doc:"Number of normal hosts.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the telemetry event log to $(docv) (JSONL, or CSV when \
               $(docv) ends in .csv).")

let chaos_arg =
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC"
         ~doc:"Inject faults during the run: semicolon-separated directives, e.g. \
               'seed=7; cut:s2-s3\\@1.0; heal:s2-s3\\@4.0; crash:s5\\@2.0+1.5; \
               flap:s1-s2\\@1.0..6.0/0.3/0.7; loss:s4\\@0.3,burst=4'. Nodes may be \
               topology names or indices.")

let dwell_arg =
  Arg.(value & opt float 1.0 & info [ "dwell" ] ~docv:"SECONDS" ~doc:"Minimum mode dwell.")

let lfa_cmd =
  let doc = "Run the rolling link-flooding case study (paper Figure 3)." in
  Cmd.v (Cmd.info "lfa" ~doc)
    Term.(
      ret
        (const run_lfa $ defense_arg $ duration_arg $ te_period_arg $ rolls_arg $ csv_arg
        $ bots_arg $ normals_arg $ trace_arg $ chaos_arg))

let compile_command =
  let doc = "Compile the booster catalogue and print the module/sharing report." in
  Cmd.v (Cmd.info "compile" ~doc) Term.(ret (const compile_cmd $ const ()))

let stability_command =
  let doc = "Statically analyze the mode automaton for stability." in
  Cmd.v (Cmd.info "stability" ~doc) Term.(ret (const stability_cmd $ dwell_arg))

let verify_command =
  let doc = "Statically check every booster pipeline (uninitialized metadata, \
             undeclared tables, dead code, resource under-provisioning)." in
  Cmd.v (Cmd.info "verify" ~doc) Term.(ret (const verify_cmd $ const ()))

let dot_command =
  let doc = "Emit the merged booster dataflow graph as Graphviz dot." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(ret (const dot_cmd $ const ()))

let shards_arg =
  Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
         ~doc:"Number of topology shards (1 = plain windowed run).")

let k_arg =
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K"
         ~doc:"Fat-tree arity (k pods, k*k*k/4 hosts).")

let pduration_arg =
  Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"SECONDS"
         ~doc:"Simulated seconds of traffic (plus 50 ms drain).")

let rate_arg =
  Arg.(value & opt float 500. & info [ "rate" ] ~docv:"PPS"
         ~doc:"Per-flow constant sending rate, packets per second.")

let seq_arg =
  Arg.(value & flag & info [ "sequential" ]
         ~doc:"Force the cooperative single-domain mode (same windowed \
               algorithm, no OS threads); results are bit-identical to \
               the domains mode by construction.")

let parallel_command =
  let doc = "Run the sharded parallel simulation engine on a fat-tree CBR \
             workload and report throughput." in
  Cmd.v (Cmd.info "parallel" ~doc)
    Term.(ret (const parallel_cmd $ shards_arg $ k_arg $ pduration_arg $ rate_arg
               $ seq_arg))

let flows_arg =
  Arg.(value & opt int 100_000 & info [ "flows" ] ~docv:"N"
         ~doc:"Concurrent benign flows in the hybrid tier.")

let fduration_arg =
  Arg.(value & opt float 40. & info [ "duration" ] ~docv:"SECONDS"
         ~doc:"Simulated seconds (the flood runs 10..18 with a roll at 14).")

let force_arg =
  Arg.(value & opt string "auto" & info [ "force" ] ~docv:"TIER"
         ~doc:"Engine tier: auto (hybrid: demote on mode activity), packet \
               (all-packet, bit-identical to the pure packet engine), or \
               fluid (never demote).")

let fluid_command =
  let doc = "Run the hybrid fluid/packet rolling-LFA scenario on the ISP \
             topology and report packet-equivalent throughput." in
  Cmd.v (Cmd.info "fluid" ~doc)
    Term.(ret (const fluid_cmd $ flows_arg $ fduration_arg $ force_arg $ trace_arg))

let adversarial_cmd strategy seed show_log =
  let module A = Ff_attacks.Adaptive in
  let strategies =
    match strategy with
    | "hug" -> [ A.Threshold_hug ]
    | "probe" -> [ A.Collision_probe ]
    | "timer" -> [ A.Epoch_time ]
    | "all" -> [ A.Threshold_hug; A.Collision_probe; A.Epoch_time ]
    | s -> invalid_arg (Printf.sprintf "unknown strategy %S (hug|probe|timer|all)" s)
  in
  let open Fastflex.Scenario in
  List.iter
    (fun strategy ->
      let runs =
        [ ("open-loop", run_adversarial ~strategy ~adversary:Open_loop ~seed ());
          ("adaptive", run_adversarial ~strategy ~adversary:Closed_loop ~seed ());
          ( "adaptive+hardened",
            run_adversarial ~strategy ~adversary:Closed_loop ~hardened:true ~seed () ) ]
      in
      Printf.printf "== %s (seed %d) ==\n" (A.strategy_name strategy) seed;
      Ff_util.Table.print
        ~header:
          [ "adversary"; "probes"; "damage"; "peak"; "time-to-effective"; "work factor";
            "alarms"; "drops"; "rotations" ]
        ~rows:
          (List.map
             (fun (which, r) ->
               [ which;
                 string_of_int r.ar_probes;
                 Printf.sprintf "%.2f" r.ar_damage;
                 Printf.sprintf "%.2f" r.ar_peak_util;
                 (match r.ar_effective_at with
                 | Some _ -> Printf.sprintf "%.1f s" r.ar_time_to_effective
                 | None -> "never");
                 Printf.sprintf "%.0f" r.ar_work_factor;
                 string_of_int r.ar_alarms;
                 string_of_int r.ar_drops;
                 string_of_int r.ar_rotations ])
             runs);
      List.iter
        (fun (which, r) ->
          if r.ar_summary <> "open-loop" then
            Printf.printf "%s: %s\n" which r.ar_summary;
          if show_log && r.ar_log <> [] then
            List.iter (fun l -> Printf.printf "  | %s\n" l) r.ar_log)
        runs;
      print_newline ())
    strategies;
  `Ok ()

let synflood_cmd defended hardened duration rate backlog syn_timeout =
  let open Fastflex.Scenario in
  let r =
    run_synflood ~defended ~hardened ~duration ~attack_rate_pps:rate ~backlog
      ~syn_timeout ()
  in
  Ff_util.Table.print
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "defense";
          (if not defended then "none"
           else if hardened then "armed+hardening"
           else "armed") ];
        [ "normalized goodput"; Printf.sprintf "%.2f" r.sf_normalized_mean ];
        [ "baseline (B/s)"; Printf.sprintf "%.0f" r.sf_baseline_goodput ];
        [ "peak backlog occupancy"; Printf.sprintf "%.2f" r.sf_peak_backlog_occupancy ];
        [ "backlog drops"; string_of_int r.sf_backlog_drops ];
        [ "half-open timeouts"; string_of_int r.sf_timeouts ];
        [ "established"; string_of_int r.sf_established ];
        [ "client handshakes ok/failed";
          Printf.sprintf "%d / %d" r.sf_completed r.sf_failed ];
        [ "SYNs sent"; string_of_int r.sf_syns_sent ];
        [ "cookies sent"; string_of_int r.sf_cookies_sent ];
        [ "validated / rejected"; Printf.sprintf "%d / %d" r.sf_validated r.sf_rejected ];
        [ "unverified drops"; string_of_int r.sf_unverified_drops ];
        [ "cuckoo occupancy"; Printf.sprintf "%.3f" r.sf_tracker_occupancy ];
        [ "cuckoo failed inserts"; string_of_int r.sf_tracker_failed_inserts ];
        [ "mode changes"; string_of_int r.sf_mode_changes ];
        [ "alarmed at end"; string_of_bool r.sf_alarmed ] ];
  `Ok ()

let sf_defended_arg =
  Arg.(value & opt bool true & info [ "defended" ] ~docv:"BOOL"
         ~doc:"Deploy the split-proxy booster (false = watch the flood win).")

let sf_hardened_arg =
  Arg.(value & flag & info [ "hardened" ]
         ~doc:"Thread the hardening profile through the guard (jittered \
               SYN-rate threshold, cookie-secret rotation).")

let sf_duration_arg =
  Arg.(value & opt float 60. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated seconds.")

let sf_rate_arg =
  Arg.(value & opt float 400. & info [ "rate" ] ~docv:"PPS"
         ~doc:"SYNs per second per bot (8 bots).")

let sf_backlog_arg =
  Arg.(value & opt int 64 & info [ "backlog" ] ~docv:"N"
         ~doc:"Server accept-backlog slots.")

let sf_timeout_arg =
  Arg.(value & opt float 3.0 & info [ "syn-timeout" ] ~docv:"SECONDS"
         ~doc:"Half-open entry lifetime at the server.")

let synflood_command =
  let doc = "Run the SYN-flood scenario: spoofed half-opens against the accept \
             backlog, defended by SYN cookies at the edge switch and a \
             cuckoo-filter flow tracker." in
  Cmd.v (Cmd.info "synflood" ~doc)
    Term.(ret (const synflood_cmd $ sf_defended_arg $ sf_hardened_arg $ sf_duration_arg
               $ sf_rate_arg $ sf_backlog_arg $ sf_timeout_arg))

let strategy_arg =
  Arg.(value & opt string "all" & info [ "strategy"; "s" ] ~docv:"STRATEGY"
         ~doc:"Attacker strategy: hug (threshold hugger), probe (collision \
               prober), timer (epoch timer), or all.")

let adv_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
         ~doc:"Run seed (attacker and defense draws both derive from it; the \
               same seed replays the identical run).")

let adv_log_arg =
  Arg.(value & flag & info [ "log" ]
         ~doc:"Print the attacker's timestamped decision log for each \
               closed-loop run.")

let adversarial_command =
  let doc = "Pit the closed-loop adaptive attackers (threshold hugger, \
             collision prober, epoch timer) against unhardened and hardened \
             defenses and report damage and attacker work factor." in
  Cmd.v (Cmd.info "adversarial" ~doc)
    Term.(ret (const adversarial_cmd $ strategy_arg $ adv_seed_arg $ adv_log_arg))

let () =
  let doc = "FastFlex: programmable data plane defenses architected into the network" in
  let info = Cmd.info "fastflex" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ lfa_cmd; compile_command; stability_command; verify_command; dot_command;
            parallel_command; fluid_command; adversarial_command; synflood_command ]))
