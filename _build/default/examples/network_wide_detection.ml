(* Distributed detection (paper section 3.3): attacks that no single
   switch can see.

   A distributed flood sends ~1 Mb/s from each of 8 bots toward the victim
   — every ingress switch sees well under the local alarm threshold, but
   the aggregate is 8 Mb/s. Two network-wide detectors cooperate through
   in-data-plane view synchronization probes:

     - the network-wide heavy hitter aggregates per-destination rates
       across ingresses and raises the volumetric alarm no local counter
       could justify;
     - the distributed rate limiter polices one tenant's global rate at
       every ingress simultaneously.

   Run with: dune exec examples/network_wide_detection.exe *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module B = Ff_boosters

let () =
  let lm = T.Fig2.build ~bots:8 ~normals:4 () in
  let topo = lm.T.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts;

  let e1 = (T.node_by_name topo "e1").T.id and e2 = (T.node_by_name topo "e2").T.id in
  let name i = (T.node topo i).T.name in

  (* network-wide heavy hitter across both ingresses *)
  let nw =
    B.Network_wide_hh.install net ~ingresses:[ e1; e2 ] ~threshold_bps:6_000_000.
      ~on_alarm:(fun a ->
        Printf.printf "t=%5.2fs  NETWORK-WIDE ALARM raised at %s (no single switch saw it)\n"
          (Net.now net)
          (name a.B.Lfa_detector.switch))
      ~on_clear:(fun _ -> Printf.printf "t=%5.2fs  all clear\n" (Net.now net))
      ()
  in

  (* the distributed flood: 8 bots x ~1 Mb/s, split over both ingresses *)
  List.iter
    (fun bot ->
      ignore (Flow.Cbr.start net ~src:bot ~dst:lm.T.Fig2.victim ~rate_pps:125. ~at:2. ()))
    lm.T.Fig2.bot_sources;

  Engine.every engine ~period:2. (fun () ->
      Printf.printf
        "t=%5.2fs  victim inbound: local@e1 %.1f Mb/s, local@e2 %.1f Mb/s, global %.1f Mb/s%s\n"
        (Net.now net)
        (B.Network_wide_hh.local_rate nw ~sw:e1 ~dst:lm.T.Fig2.victim /. 1e6)
        (B.Network_wide_hh.local_rate nw ~sw:e2 ~dst:lm.T.Fig2.victim /. 1e6)
        (B.Network_wide_hh.global_rate nw ~sw:e1 ~dst:lm.T.Fig2.victim /. 1e6)
        (if B.Network_wide_hh.alarmed nw then "   [ALARMED]" else ""));

  Engine.run engine ~until:10.;

  (* now point the distributed rate limiter at the offending aggregate *)
  print_endline "\nactivating distributed global rate limiting (2 Mb/s cap for the botnet):";
  let grl = B.Global_rate_limit.install net ~participants:[ e1; e2 ] ~sync_period:0.2 () in
  List.iter (fun sw -> B.Common.set_mode (Net.switch net sw) "grl" true) [ e1; e2 ];
  B.Global_rate_limit.set_limit grl ~tenant:1 2_000_000.;
  List.iter (fun bot -> B.Global_rate_limit.assign grl ~src:bot ~tenant:1) lm.T.Fig2.bot_sources;

  Engine.every engine ~start:12. ~period:2. (fun () ->
      Printf.printf "t=%5.2fs  tenant global rate: %.1f Mb/s (cap 2.0), dropped %d\n"
        (Net.now net)
        (B.Global_rate_limit.global_rate grl ~sw:e1 ~tenant:1 /. 1e6)
        (B.Global_rate_limit.dropped grl));
  Engine.run engine ~until:20.;

  Printf.printf "\nsync probes: %d (heavy hitter) + %d (rate limiter)\n"
    (B.Network_wide_hh.sync_probes nw)
    (B.Global_rate_limit.sync_probes grl)
