examples/dynamic_scaling.ml: Ff_dataplane Ff_netsim Ff_scaling Ff_topology List Printf
