examples/multi_vector.ml: Fastflex Ff_attacks Ff_boosters Ff_dataplane Ff_modes Ff_netsim Ff_te Ff_topology List Printf String
