examples/placement_explorer.ml: Fastflex Ff_dataflow Ff_dataplane Ff_placement Ff_te Ff_topology Ff_util List Printf
