examples/multi_vector.mli:
