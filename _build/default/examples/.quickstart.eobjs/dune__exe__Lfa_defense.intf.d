examples/lfa_defense.mli:
