examples/quickstart.ml: Fastflex Ff_boosters Ff_dataflow Ff_dataplane Ff_placement Ff_util Format List Printf String
