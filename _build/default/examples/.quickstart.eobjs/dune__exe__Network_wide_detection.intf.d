examples/network_wide_detection.mli:
