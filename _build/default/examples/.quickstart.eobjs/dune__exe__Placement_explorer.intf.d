examples/placement_explorer.mli:
