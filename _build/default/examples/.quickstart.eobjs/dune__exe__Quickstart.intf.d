examples/quickstart.mli:
