examples/dynamic_scaling.mli:
