examples/network_wide_detection.ml: Ff_boosters Ff_netsim Ff_topology List Printf
