examples/lfa_defense.ml: Fastflex Ff_util Format List Printf
