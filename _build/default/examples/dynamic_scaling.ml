(* Dynamic scaling at runtime (paper section 3.4, Figure 1 d):
   repurposing a switch while traffic flows, with neighbor-notified fast
   reroute around the downtime, FEC-protected in-band state transfer, and
   critical-state replication with failover.

   Run with: dune exec examples/dynamic_scaling.exe *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module Scaling = Ff_scaling

let () =
  let lm = T.Fig2.build () in
  let topo = lm.T.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts;

  let name i = (T.node topo i).T.name in
  let mid_of (l : T.link) = if l.T.a = lm.T.Fig2.agg then l.T.b else l.T.a in
  let m1 = mid_of (List.hd lm.T.Fig2.critical) in
  let m2 = mid_of (List.nth lm.T.Fig2.critical 1) in

  (* the switch being repurposed carries defense state: a suspicious-flow
     register we must not lose *)
  let reg = Ff_dataplane.Register.Array_reg.create ~name:"suspicious" ~slots:64 () in
  for flow = 0 to 20 do
    Ff_dataplane.Register.Array_reg.set reg flow 1.
  done;
  Printf.printf "switch %s holds %d state entries\n" (name m1)
    (List.length (Ff_dataplane.Register.Array_reg.dump reg));

  (* steady traffic crossing m1 *)
  let src = List.hd lm.T.Fig2.normal_sources in
  Net.set_route net ~sw:lm.T.Fig2.agg ~dst:lm.T.Fig2.victim ~next_hop:m1;
  Net.set_route net ~sw:m1 ~dst:lm.T.Fig2.victim ~next_hop:lm.T.Fig2.victim_agg;
  let flow = Flow.Cbr.start net ~src ~dst:lm.T.Fig2.victim ~rate_pps:200. () in

  (* replication: m1's critical state is mirrored to m2 twice a second *)
  let repl =
    Scaling.Replicate.start net ~primary:m1 ~replica:m2 ~period:0.5
      ~snapshot:(fun () -> Ff_dataplane.Register.Array_reg.dump reg)
      ()
  in

  (* make the state-transfer path lossy: FEC earns its keep *)
  let _loss =
    Scaling.Loss.install net ~sw:lm.T.Fig2.agg ~prob:0.1
      ~classes:Scaling.Loss.State_chunks_only ()
  in

  (* at t=3: repurpose m1 (Tofino-style 2 s downtime), shipping its state to
     m2 and migrating it back afterwards *)
  Engine.schedule engine ~at:3. (fun () ->
      Printf.printf "t=%.2fs repurposing %s (2 s downtime, state to %s)\n" (Net.now net)
        (name m1) (name m2);
      Scaling.Repurpose.repurpose net ~sw:m1 ~downtime:2.0 ~state_to:m2
        ~snapshot:(fun () ->
          let s = Ff_dataplane.Register.Array_reg.dump reg in
          Ff_dataplane.Register.Array_reg.reset reg;
          s)
        ~restore:(fun entries ->
          Ff_dataplane.Register.Array_reg.load reg entries;
          Printf.printf "t=%.2fs state migrated back: %d entries live again on %s\n"
            (Net.now net) (List.length entries) (name m1))
        ~install:(fun () ->
          Printf.printf "t=%.2fs new program installed on %s\n" (Net.now net) (name m1))
        ~on_done:(fun o ->
          Printf.printf "t=%.2fs %s back up (%d entries were shipped out)\n"
            o.Scaling.Repurpose.completed_at (name m1) o.Scaling.Repurpose.state_moved)
        ());

  (* sample delivery while m1 is down *)
  let last = ref 0. in
  Engine.every engine ~period:1. (fun () ->
      let d = Flow.Cbr.delivered_bytes flow in
      Printf.printf "t=%5.2fs delivered %+6.0f kB this second %s\n" (Net.now net)
        ((d -. !last) /. 1000.)
        (if not (Net.switch net m1).Net.up then "   [m1 down, fast reroute active]" else "");
      last := d);

  Engine.run engine ~until:10.;

  Printf.printf "\nreplication rounds completed: %d\n"
    (Scaling.Replicate.copies_completed repl);
  Printf.printf "delivered total: %.0f kB of %.0f kB sent (%.1f%%)\n"
    (Flow.Cbr.delivered_bytes flow /. 1000.)
    (float_of_int (Flow.Cbr.sent_packets flow))
    (100. *. Flow.Cbr.delivered_bytes flow
     /. float_of_int (Flow.Cbr.sent_packets flow * 1000));

  (* finally: kill m1 outright and fail over from the replica *)
  Net.set_switch_up net ~sw:m1 false;
  let recovered = ref [] in
  if Scaling.Replicate.failover repl ~restore:(fun e -> recovered := e) then
    Printf.printf "failover: replica %s restores %d state entries\n" (name m2)
      (List.length !recovered)
