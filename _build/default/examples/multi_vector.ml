(* Mixed attack vectors, co-existing modes (paper sections 1 and 3.3):
   "Mixed-vector attacks would trigger co-existing modes at different
   regions of the network."

   A rolling Crossfire LFA floods a critical link while, in a different
   region, a bot blasts a spoofed-source volumetric DDoS straight at the
   victim. Each attack trips its own detector (per-flow LFA detection at
   the aggregation switch; HashPipe heavy-hitter detection at the source
   edge), each raises its own alarm kind through the same distributed mode
   protocol, and different defense modes light up in different places:
   classification/rerouting/obfuscation/dropping for the LFA, dropping plus
   hop-count filtering for the volumetric flood.

   Run with: dune exec examples/multi_vector.exe *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module Packet = Ff_dataplane.Packet
module B = Ff_boosters
module Protocol = Ff_modes.Protocol

let () =
  let lm = T.Fig2.build ~bots:8 ~normals:4 () in
  let topo = lm.T.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in

  (* default routes + TE for the normal demand, as in the scenario driver *)
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts;
  let matrix = Ff_te.Traffic_matrix.empty () in
  List.iter
    (fun n -> Ff_te.Traffic_matrix.set matrix ~src:n ~dst:lm.T.Fig2.victim 2_300_000.)
    lm.T.Fig2.normal_sources;
  let plan = Ff_te.Solver.solve ~k:2 topo matrix in
  Ff_te.Solver.install net plan;

  (* one mode protocol; the attack->modes map comes from the orchestrator.
     region_ttl 3 keeps each attack's modes scoped near its detector, so
     the two defenses coexist in different regions *)
  let protocol =
    Protocol.create net ~modes_for:Fastflex.Orchestrator.modes_for ~min_dwell:1.0
      ~region_ttl:3 ()
  in
  let raise_alarm (a : B.Lfa_detector.alarm) =
    Printf.printf "t=%6.2fs  ALARM  %-10s at %s\n"
      (Net.now net)
      (Packet.attack_kind_to_string a.B.Lfa_detector.attack)
      (T.node topo a.B.Lfa_detector.switch).T.name;
    Protocol.raise_alarm protocol ~sw:a.B.Lfa_detector.switch a.B.Lfa_detector.attack
  in
  let clear_alarm (a : B.Lfa_detector.alarm) =
    Printf.printf "t=%6.2fs  CLEAR  %-10s at %s\n" (Net.now net)
      (Packet.attack_kind_to_string a.B.Lfa_detector.attack)
      (T.node topo a.B.Lfa_detector.switch).T.name;
    Protocol.clear_alarm protocol ~sw:a.B.Lfa_detector.switch a.B.Lfa_detector.attack
  in

  (* region 1: LFA defense at the aggregation switch *)
  let watched =
    List.map
      (fun (l : T.link) -> if l.T.a = lm.T.Fig2.agg then (l.T.a, l.T.b) else (l.T.b, l.T.a))
      lm.T.Fig2.critical
  in
  let _detector =
    B.Lfa_detector.install net ~sw:lm.T.Fig2.agg ~watched ~min_age:1.0 ~on_alarm:raise_alarm
      ~on_clear:clear_alarm ()
  in
  let _dropper = B.Dropper.install net ~sw:lm.T.Fig2.agg () in
  let _reroute =
    B.Reroute.install net ~roots:(lm.T.Fig2.victim :: lm.T.Fig2.decoys) ()
  in

  (* region 2: volumetric defense at the source edge e2 *)
  let e2 = (T.node_by_name topo "e2").T.id in
  let hh =
    B.Heavy_hitter.install net ~sw:e2 ~threshold_bps:3_000_000. ~on_alarm:raise_alarm
      ~on_clear:clear_alarm ()
  in
  Net.add_stage net ~sw:e2 (B.Heavy_hitter.mark_offenders_stage hh);
  let _hh_dropper = B.Dropper.install net ~sw:e2 ~rate_limit:1_000_000. () in
  let hcf = B.Hop_count_filter.install net ~sw:e2 () in

  (* legitimate traffic *)
  let normal_flows =
    List.map
      (fun n -> Flow.Tcp.start net ~src:n ~dst:lm.T.Fig2.victim ~at:0.5 ~max_cwnd:4. ())
      lm.T.Fig2.normal_sources
  in

  (* attack 1: rolling LFA from all bots *)
  let _lfa =
    Ff_attacks.Lfa.launch net ~bots:lm.T.Fig2.bot_sources
      ~decoy_groups:(List.map (fun d -> [ d ]) lm.T.Fig2.decoys)
      ~start:8. ~roll_schedule:[ 25. ] ()
  in
  (* attack 2: spoofed volumetric flood from a bot behind e2, claiming the
     identity of a legitimate host that is also behind e2 (whose TTL
     fingerprint the filter has learned) *)
  let behind_e2 h = Net.access_switch net ~host:h = e2 in
  let bot_e2 = List.find behind_e2 lm.T.Fig2.bot_sources in
  let victim_identity = List.find behind_e2 lm.T.Fig2.normal_sources in
  let _vol =
    Ff_attacks.Volumetric.launch net ~bots:[ bot_e2 ] ~victim:lm.T.Fig2.victim
      ~rate_pps_per_bot:600. ~start:15. ~stop:35. ~spoof_as:[ victim_identity ] ()
  in
  (* remember the offender set as it stood when the alarm fired *)
  let offenders_at_alarm = ref 0 in
  Engine.every engine ~period:1. (fun () ->
      offenders_at_alarm :=
        max !offenders_at_alarm (List.length (B.Heavy_hitter.offenders hh)));

  (* observe which modes are active where, once a second *)
  Engine.every engine ~period:5. (fun () ->
      let show mode =
        let sws = Protocol.switches_with_mode protocol mode in
        if sws = [] then "-"
        else String.concat "," (List.map (fun s -> (T.node topo s).T.name) sws)
      in
      Printf.printf "t=%6.2fs  modes: reroute@[%s] drop@[%s] hcf@[%s]\n" (Net.now net)
        (show "reroute") (show "drop") (show "hcf"));

  Engine.run engine ~until:50.;

  let goodput =
    List.fold_left (fun acc f -> acc +. Flow.Tcp.delivered_bytes f) 0. normal_flows
  in
  Printf.printf "\nnormal traffic delivered: %.1f MB over 50 s\n" (goodput /. 1e6);
  Printf.printf "spoofed packets filtered by hop-count: %d\n" (B.Hop_count_filter.filtered hcf);
  Printf.printf "volumetric offenders caught by HashPipe: %d\n" !offenders_at_alarm;
  Printf.printf "mode transitions: %d\n" (Protocol.transitions protocol)
