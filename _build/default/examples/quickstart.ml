(* Quickstart: the FastFlex pipeline end to end in about sixty lines.

   1. compile the booster catalogue into a merged dataflow graph,
   2. pack it onto Tofino-class switches,
   3. run a short rolling-LFA scenario with the multimode data plane on,
   4. print what happened.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "== 1. Compile boosters (paper Fig. 1 a-b) ==";
  let compiled = Fastflex.Compile.boosters () in
  Printf.printf "boosters: %s\n" (String.concat ", " Ff_boosters.Specs.booster_names);
  Printf.printf "merged PPMs: %d (sharing saved %.0f%% of pipeline stages)\n"
    (Ff_dataflow.Graph.num_vertices compiled.Fastflex.Compile.merged)
    (100. *. compiled.Fastflex.Compile.savings);
  List.iter
    (fun (kept, absorbed) -> Printf.printf "  shared: %s absorbs %s\n" kept absorbed)
    compiled.Fastflex.Compile.sharing;

  print_endline "\n== 2. Pack onto switches (paper Fig. 1 c) ==";
  (match Fastflex.Compile.pack_onto compiled ~switches:[ 0; 1; 2; 3 ] () with
  | Ok bins ->
    List.iter
      (fun b ->
        if b.Ff_placement.Pack.items <> [] then
          Printf.printf "  switch %d: %d PPMs, %s used\n" b.Ff_placement.Pack.sw
            (List.length b.Ff_placement.Pack.items)
            (Format.asprintf "%a" Ff_dataplane.Resource.pp b.Ff_placement.Pack.used))
      bins
  | Error e -> Printf.printf "  packing failed: %s\n" e);

  print_endline "\n== 3. Rolling LFA vs. the multimode data plane (paper Fig. 2-3) ==";
  let attack =
    { Fastflex.Scenario.default_attack with roll_schedule = [ 30. ]; start = 10. }
  in
  let r =
    Fastflex.Scenario.run_lfa
      ~defense:(Fastflex.Scenario.Fastflex Fastflex.Orchestrator.default_config)
      ~attack:(Some attack) ~duration:50. ()
  in
  Fastflex.Scenario.pp_summary Format.std_formatter r;

  print_endline "\n== 4. Mode changes observed in the data plane ==";
  let shown = ref 0 in
  List.iter
    (fun (t, sw, attack, up) ->
      if !shown < 12 then begin
        incr shown;
        Printf.printf "  t=%6.2fs switch %d %s %s\n" t sw
          (if up then "enters" else "leaves")
          (Ff_dataplane.Packet.attack_kind_to_string attack)
      end)
    r.Fastflex.Scenario.mode_log;
  Printf.printf "  (%d mode transitions total)\n" (List.length r.Fastflex.Scenario.mode_log);

  print_endline "\nNormalized goodput (paper Fig. 3 y-axis):";
  Ff_util.Series.pp_ascii ~height:10 Format.std_formatter [ r.Fastflex.Scenario.normalized ]
