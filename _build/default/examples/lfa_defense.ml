(* The paper's case study (section 4.3, Figure 3): normal flows toward a
   victim under a 3-round rolling Crossfire LFA, defended by

     - nothing (static default TE),
     - the baseline SDN defense (centralized TE every 30 s), and
     - FastFlex (multimode data plane).

   Prints the normalized-throughput series of all three side by side as an
   ASCII chart and as CSV.

   Run with: dune exec examples/lfa_defense.exe *)

module Scenario = Fastflex.Scenario
module Series = Ff_util.Series

let run name defense =
  Printf.printf "running %-14s ... %!" name;
  let r = Scenario.run_lfa ~defense ~duration:120. () in
  Printf.printf "mean %.2f, min %.2f, %d rolls, %d reconfigs\n%!"
    r.Scenario.mean_during_attack r.Scenario.min_during_attack
    (List.length r.Scenario.rolls)
    (List.length r.Scenario.reconfigs);
  r

let rename s name =
  let out = Series.create ~name in
  List.iter (fun (t, v) -> Series.add out ~time:t v) (Series.points s);
  out

let () =
  print_endline "FastFlex case study: rolling link-flooding attack (120 s, 3 rounds)";
  print_endline "attack starts at t=10s; forced re-targets at t=45s and t=80s\n";
  let none = run "no-defense" Scenario.No_defense in
  let sdn = run "baseline-sdn" (Scenario.Baseline_sdn { period = 30.; delay = 0.5 }) in
  let ff = run "fastflex" (Scenario.Fastflex Fastflex.Orchestrator.default_config) in

  print_endline "\nNormalized throughput of normal flows (paper Figure 3):";
  let series =
    [ rename sdn.Scenario.normalized "Baseline (SDN)";
      rename ff.Scenario.normalized "FastFlex";
      rename none.Scenario.normalized "No defense" ]
  in
  Series.pp_ascii ~height:14 Format.std_formatter series;

  print_endline "\nRecovery after each attack event (time back to 80% of baseline):";
  let show name (r : Scenario.result) =
    List.iter
      (fun (ev, rt) ->
        if rt = infinity then Printf.printf "  %-14s event %5.1fs: never\n" name ev
        else Printf.printf "  %-14s event %5.1fs: %.1fs\n" name ev rt)
      r.Scenario.recovery_times
  in
  show "baseline-sdn" sdn;
  show "fastflex" ff;

  Printf.printf "\nFastFlex internals: %d packets marked suspicious, %d probes, %d drops\n"
    ff.Scenario.suspicious_marked ff.Scenario.probes_sent
    (List.fold_left (fun acc (_, n) -> acc + n) 0 ff.Scenario.drops);

  print_endline "\nCSV (time, baseline, fastflex, none):";
  Series.pp_csv Format.std_formatter series
