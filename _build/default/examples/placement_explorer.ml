(* Placement explorer: how the booster catalogue packs and places across
   different topologies and switch generations (paper sections 3.1-3.2).

   For each topology it reports: packing with vs. without module sharing,
   dataflow co-location quality, on-path detection coverage, and the cost
   of the classic fixed-middlebox alternative.

   Run with: dune exec examples/placement_explorer.exe *)

module T = Ff_topology.Topology
module Resource = Ff_dataplane.Resource
module Pack = Ff_placement.Pack
module Placement = Ff_placement.Placement

let topologies =
  [
    ("fig2", fun () -> (T.Fig2.build ()).T.Fig2.topo);
    ("fat-tree(4)", fun () -> T.fat_tree ~k:4 ());
    ("abilene", fun () -> T.abilene ());
    ("waxman(10)", fun () -> T.waxman ~n:10 ~seed:7 ());
  ]

let host_pair_paths topo =
  let hosts = T.hosts topo in
  List.concat_map
    (fun (h1 : T.node) ->
      List.filter_map
        (fun (h2 : T.node) ->
          if h1.T.id < h2.T.id then T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id else None)
        hosts)
    hosts

let () =
  let compiled = Fastflex.Compile.boosters () in
  Printf.printf "booster catalogue: %d PPMs merged into %d (%.0f%% stage savings)\n\n"
    (List.fold_left
       (fun acc (_, g) -> acc + Ff_dataflow.Graph.num_vertices g)
       0 compiled.Fastflex.Compile.graphs)
    (Ff_dataflow.Graph.num_vertices compiled.Fastflex.Compile.merged)
    (100. *. compiled.Fastflex.Compile.savings);

  let rows =
    List.map
      (fun (name, build) ->
        let topo = build () in
        let switches = T.switches topo in
        let capacities =
          List.map (fun (s : T.node) -> (s.T.id, Resource.tofino_like)) switches
        in
        (* merged vs unmerged packing *)
        let bins_needed graph =
          match Pack.first_fit_decreasing ~capacities graph with
          | Ok bins -> string_of_int (Pack.bins_used bins)
          | Error _ -> "inf"
        in
        let merged_bins = bins_needed compiled.Fastflex.Compile.merged in
        let unmerged_bins =
          let total =
            List.fold_left
              (fun acc (_, g) ->
                match Pack.first_fit_decreasing ~capacities g with
                | Ok bins -> acc + Pack.bins_used bins
                | Error _ -> acc + List.length switches)
              0 compiled.Fastflex.Compile.graphs
          in
          string_of_int total
        in
        let coloc =
          match Pack.first_fit_decreasing ~capacities compiled.Fastflex.Compile.merged with
          | Ok bins -> Printf.sprintf "%.2f" (Pack.colocation_score compiled.Fastflex.Compile.merged bins)
          | Error _ -> "-"
        in
        (* on-path placement over all host-pair shortest paths *)
        let paths = host_pair_paths topo in
        let plan = Placement.place topo ~paths ~capacities compiled.Fastflex.Compile.merged in
        (* fixed middleboxes at the two most critical links' endpoints *)
        let matrix = Ff_te.Traffic_matrix.empty () in
        let hosts = T.hosts topo in
        List.iter
          (fun (h1 : T.node) ->
            List.iter
              (fun (h2 : T.node) ->
                if h1.T.id <> h2.T.id then
                  Ff_te.Traffic_matrix.set matrix ~src:h1.T.id ~dst:h2.T.id 1_000_000.)
              hosts)
          hosts;
        let sites =
          match T.critical_links topo ~n:1 with
          | l :: _ -> [ l.T.a ]
          | [] -> [ (List.hd switches).T.id ]
        in
        let detour = Placement.middlebox_detour topo matrix ~sites in
        [ name;
          string_of_int (List.length switches);
          unmerged_bins;
          merged_bins;
          coloc;
          Printf.sprintf "%.0f%%" (100. *. plan.Placement.path_coverage);
          Printf.sprintf "%.1f" plan.Placement.avg_mitigation_distance;
          Printf.sprintf "%.2fx" detour.Placement.avg_stretch ])
      topologies
  in
  Ff_util.Table.print
    ~header:
      [ "topology"; "switches"; "slots(no-share)"; "slots(shared)"; "co-location";
        "detect-coverage"; "mitig-dist"; "middlebox-stretch" ]
    ~rows
