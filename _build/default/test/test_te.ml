(* Tests for Ff_te: traffic matrix, min-max solver, SDN controller. *)

module T = Ff_topology.Topology
module TM = Ff_te.Traffic_matrix
module Solver = Ff_te.Solver
module Controller = Ff_te.Controller
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net

let test_matrix_basics () =
  let m = TM.empty () in
  TM.set m ~src:1 ~dst:2 100.;
  TM.add m ~src:1 ~dst:2 50.;
  Alcotest.(check (float 0.)) "accumulated" 150. (TM.get m ~src:1 ~dst:2);
  Alcotest.(check (float 0.)) "unknown pair" 0. (TM.get m ~src:9 ~dst:9);
  TM.set m ~src:3 ~dst:4 300.;
  Alcotest.(check int) "pairs" 2 (TM.num_pairs m);
  Alcotest.(check (float 0.)) "total" 450. (TM.total m);
  (* sorted by decreasing demand *)
  (match TM.pairs m with
  | (s, d, v) :: _ ->
    Alcotest.(check (pair int int)) "largest first" (3, 4) (s, d);
    Alcotest.(check (float 0.)) "value" 300. v
  | [] -> Alcotest.fail "empty");
  let m2 = TM.scale m 2. in
  Alcotest.(check (float 0.)) "scaled" 900. (TM.total m2);
  let merged = TM.merge m m2 in
  Alcotest.(check (float 0.)) "merged" 1350. (TM.total merged)

let test_matrix_rejects_negative () =
  let m = TM.empty () in
  Alcotest.check_raises "negative" (Invalid_argument "Traffic_matrix.set: negative demand")
    (fun () -> TM.set m ~src:1 ~dst:2 (-5.))

let test_matrix_zero_removes () =
  let m = TM.empty () in
  TM.set m ~src:1 ~dst:2 10.;
  TM.set m ~src:1 ~dst:2 0.;
  Alcotest.(check int) "removed" 0 (TM.num_pairs m)

(* Fig2: four equal demands to the victim must split 2/2 over the critical
   links when k = 2. *)
let test_solver_balances () =
  let lm = T.Fig2.build () in
  let topo = lm.T.Fig2.topo in
  let m = TM.empty () in
  List.iter
    (fun n -> TM.set m ~src:n ~dst:lm.T.Fig2.victim 2_000_000.)
    lm.T.Fig2.normal_sources;
  let plan = Solver.solve ~k:2 topo m in
  Alcotest.(check int) "all demands routed" 4 (List.length plan.Solver.routes);
  (* max utilization: 2 x 2 Mb/s / 10 Mb/s = 0.4 *)
  Alcotest.(check (float 1e-6)) "balanced max util" 0.4 plan.Solver.max_util;
  (* both critical links loaded equally *)
  let load l = List.assoc l.T.link_id plan.Solver.link_load in
  match lm.T.Fig2.critical with
  | [ c1; c2 ] ->
    Alcotest.(check (float 1.)) "equal split" (load c1) (load c2)
  | _ -> Alcotest.fail "expected two critical links"

let test_solver_uses_detour_under_load () =
  let lm = T.Fig2.build () in
  let topo = lm.T.Fig2.topo in
  let m = TM.empty () in
  (* 6 x 4 Mb/s = 24 Mb/s cannot fit on 2 x 10 Mb/s: k=4 must use the detour *)
  List.iteri
    (fun i n ->
      TM.set m ~src:n ~dst:lm.T.Fig2.victim (4_000_000. +. float_of_int i))
    (lm.T.Fig2.normal_sources @ lm.T.Fig2.bot_sources |> List.filteri (fun i _ -> i < 6));
  let plan = Solver.solve ~k:4 topo m in
  Alcotest.(check bool) "max util under 1" true (plan.Solver.max_util < 1.);
  let detour_link = Option.get (T.find_link topo lm.T.Fig2.agg (List.hd lm.T.Fig2.detour)) in
  let detour_load = List.assoc detour_link.T.link_id plan.Solver.link_load in
  Alcotest.(check bool) "detour carries load" true (detour_load > 0.)

let test_solver_utilization_of () =
  let lm = T.Fig2.build () in
  let topo = lm.T.Fig2.topo in
  let m = TM.empty () in
  List.iter (fun n -> TM.set m ~src:n ~dst:lm.T.Fig2.victim 2_000_000.) lm.T.Fig2.normal_sources;
  let plan = Solver.solve ~k:2 topo m in
  Alcotest.(check (float 1e-9)) "consistent evaluation" plan.Solver.max_util
    (Solver.utilization_of topo m plan.Solver.routes)

let test_solver_install () =
  let lm = T.Fig2.build () in
  let topo = lm.T.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let m = TM.empty () in
  let src = List.hd lm.T.Fig2.normal_sources in
  TM.set m ~src ~dst:lm.T.Fig2.victim 1_000_000.;
  let plan = Solver.solve topo m in
  Solver.install net plan;
  match Solver.plan_path plan ~src ~dst:lm.T.Fig2.victim with
  | Some path ->
    let first_switch = List.nth path 1 in
    Alcotest.(check bool) "pair route installed" true
      (Net.pair_route_lookup net ~sw:first_switch ~src ~dst:lm.T.Fig2.victim <> None)
  | None -> Alcotest.fail "plan has no path"

let test_install_prefix_based () =
  let lm = T.Fig2.build () in
  let topo = lm.T.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let src = List.hd lm.T.Fig2.normal_sources in
  let m = TM.empty () in
  TM.set m ~src ~dst:lm.T.Fig2.victim 1_000_000.;
  let plan = Solver.solve ~k:2 topo m in
  Solver.install_prefix_based net plan;
  (* the decoy behind the victim's edge switch inherits the same next hop *)
  let sibling =
    List.find
      (fun d -> Net.access_switch net ~host:d = Net.access_switch net ~host:lm.T.Fig2.victim)
      lm.T.Fig2.decoys
  in
  let path = Option.get (Solver.plan_path plan ~src ~dst:lm.T.Fig2.victim) in
  let first_switch = List.nth path 1 in
  Alcotest.(check (option int)) "sibling routed like the victim"
    (Net.pair_route_lookup net ~sw:first_switch ~src ~dst:lm.T.Fig2.victim)
    (Net.pair_route_lookup net ~sw:first_switch ~src ~dst:sibling)

let test_estimator_measures_rates () =
  let lm = T.Fig2.build () in
  let topo = lm.T.Fig2.topo in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  (* shortest-path routes for all pairs *)
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts;
  let est = Ff_te.Estimator.install net ~switches:(Net.switch_ids net) () in
  let src = List.hd lm.T.Fig2.normal_sources in
  (* 100 pps x 1000 B = 800 kb/s *)
  ignore (Ff_netsim.Flow.Cbr.start net ~src ~dst:lm.T.Fig2.victim ~rate_pps:100. ());
  Engine.run engine ~until:5.;
  let r = Ff_te.Estimator.rate est ~src ~dst:lm.T.Fig2.victim in
  Alcotest.(check bool) "rate within 15%" true (Float.abs (r -. 800_000.) < 120_000.);
  Alcotest.(check int) "one pair seen" 1 (Ff_te.Estimator.pairs_seen est);
  let m = Ff_te.Estimator.matrix est in
  Alcotest.(check bool) "matrix populated" true (TM.get m ~src ~dst:lm.T.Fig2.victim > 0.)

let test_estimator_no_double_counting () =
  (* telemetry on every switch along the path must still count once *)
  let topo = T.linear ~n:4 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h0 = (T.node_by_name topo "h0").T.id in
  let h1 = (T.node_by_name topo "h1").T.id in
  (match T.shortest_path topo ~src:h0 ~dst:h1 with
  | Some p ->
    Net.install_path net ~dst:h1 p;
    Net.install_path net ~dst:h0 (List.rev p)
  | None -> Alcotest.fail "no path");
  let est = Ff_te.Estimator.install net ~switches:(Net.switch_ids net) () in
  ignore (Ff_netsim.Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:100. ());
  Engine.run engine ~until:5.;
  let r = Ff_te.Estimator.rate est ~src:h0 ~dst:h1 in
  Alcotest.(check bool) "counted once despite 4 telemetry switches" true
    (r < 1_000_000. && r > 600_000.)

let test_controller_period_and_delay () =
  let lm = T.Fig2.build () in
  let engine = Engine.create () in
  let net = Net.create engine lm.T.Fig2.topo in
  let m = TM.empty () in
  TM.set m ~src:(List.hd lm.T.Fig2.normal_sources) ~dst:lm.T.Fig2.victim 1_000_000.;
  let c = Controller.start net ~period:10. ~delay:0.5 ~estimate:(fun () -> m) () in
  let observed = ref [] in
  Controller.on_reconfig c (fun at -> observed := at :: !observed);
  Engine.run engine ~until:35.;
  Alcotest.(check int) "three reconfigs in 35 s" 3 (Controller.reconfig_count c);
  Alcotest.(check (list (float 1e-6))) "installation delayed by the control loop"
    [ 10.5; 20.5; 30.5 ] (Controller.reconfig_times c);
  Alcotest.(check bool) "plan exposed" true (Controller.last_plan c <> None)

let () =
  Alcotest.run "ff_te"
    [
      ( "matrix",
        [
          Alcotest.test_case "basics" `Quick test_matrix_basics;
          Alcotest.test_case "rejects negative" `Quick test_matrix_rejects_negative;
          Alcotest.test_case "zero removes" `Quick test_matrix_zero_removes;
        ] );
      ( "solver",
        [
          Alcotest.test_case "balances equal demands" `Quick test_solver_balances;
          Alcotest.test_case "uses detour under load" `Quick test_solver_uses_detour_under_load;
          Alcotest.test_case "utilization_of consistent" `Quick test_solver_utilization_of;
          Alcotest.test_case "install writes pair routes" `Quick test_solver_install;
          Alcotest.test_case "prefix-based install" `Quick test_install_prefix_based;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "measures rates" `Quick test_estimator_measures_rates;
          Alcotest.test_case "no double counting" `Quick test_estimator_no_double_counting;
        ] );
      ( "controller",
        [ Alcotest.test_case "period and delay" `Quick test_controller_period_and_delay ] );
    ]
