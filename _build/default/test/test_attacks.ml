(* Tests for Ff_attacks: the rolling Crossfire LFA, volumetric DDoS with
   spoofing, and pulsing attacks. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module Lfa = Ff_attacks.Lfa
module Volumetric = Ff_attacks.Volumetric
module Pulsing = Ff_attacks.Pulsing

let install_all_routes net topo =
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts

let fig2_net () =
  let lm = T.Fig2.build ~bots:8 ~normals:4 () in
  let engine = Engine.create () in
  let net = Net.create engine lm.T.Fig2.topo in
  install_all_routes net lm.T.Fig2.topo;
  (lm, engine, net)

let test_lfa_congests_target () =
  let lm, engine, net = fig2_net () in
  let atk =
    Lfa.launch net ~bots:lm.T.Fig2.bot_sources
      ~decoy_groups:(List.map (fun d -> [ d ]) lm.T.Fig2.decoys)
      ~start:1. ~flows_per_bot:3 ~roll_on_path_change:false ()
  in
  Engine.run engine ~until:10.;
  (* the decoy's middle link is saturated *)
  let decoy = List.hd lm.T.Fig2.decoys in
  let mid =
    match Net.current_path net ~src:(List.hd lm.T.Fig2.bot_sources) ~dst:decoy with
    | Some p -> List.nth p 3
    | None -> Alcotest.fail "no decoy path"
  in
  Alcotest.(check bool) "target link saturated" true
    (Net.utilization net ~from_:lm.T.Fig2.agg ~to_:mid > 0.9);
  Alcotest.(check int) "24 attack flows" 24 (List.length (Lfa.bot_flows atk));
  Alcotest.(check bool) "attack carries data" true (Lfa.attack_rate atk ~now:10. > 500_000.);
  Alcotest.(check int) "no rolls without reason" 0 (List.length (Lfa.rolls atk))

let test_lfa_individually_low_rate () =
  let lm, engine, net = fig2_net () in
  let atk =
    Lfa.launch net ~bots:lm.T.Fig2.bot_sources
      ~decoy_groups:(List.map (fun d -> [ d ]) lm.T.Fig2.decoys)
      ~start:1. ~flows_per_bot:3 ~bot_max_cwnd:4. ~roll_on_path_change:false ()
  in
  Engine.run engine ~until:10.;
  (* each flow stays individually low-rate (indistinguishability) *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "flow under 1.5 Mb/s" true
        (Flow.Tcp.goodput f ~now:10. *. 8. < 1_500_000.))
    (Lfa.bot_flows atk)

let test_lfa_rolls_on_schedule () =
  let lm, engine, net = fig2_net () in
  let atk =
    Lfa.launch net ~bots:lm.T.Fig2.bot_sources
      ~decoy_groups:(List.map (fun d -> [ d ]) lm.T.Fig2.decoys)
      ~start:1. ~roll_on_path_change:false ~roll_schedule:[ 5.; 9. ] ()
  in
  Engine.run engine ~until:12.;
  Alcotest.(check (list (float 0.01))) "rolled at the scheduled times" [ 5.; 9. ]
    (Lfa.rolls atk);
  (* after two rolls over two groups we are back at group 0 *)
  Alcotest.(check int) "group cycled" 0 (Lfa.current_group atk)

let test_lfa_rolls_on_path_change () =
  let lm, engine, net = fig2_net () in
  let atk =
    Lfa.launch net ~bots:lm.T.Fig2.bot_sources
      ~decoy_groups:(List.map (fun d -> [ d ]) lm.T.Fig2.decoys)
      ~start:1. ~recon_interval:0.5 ~roll_on_path_change:true ()
  in
  (* reroute decoy1's traffic at t=5: the attacker must notice and roll *)
  let decoy = List.hd lm.T.Fig2.decoys in
  Engine.schedule engine ~at:5. (fun () ->
      let detour_path =
        [ lm.T.Fig2.agg ] @ lm.T.Fig2.detour @ [ lm.T.Fig2.victim_agg ]
      in
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          Net.set_route net ~sw:a ~dst:decoy ~next_hop:b;
          pairs rest
        | _ -> ()
      in
      pairs detour_path);
  Engine.run engine ~until:12.;
  Alcotest.(check int) "one roll triggered by the visible reroute" 1
    (List.length (Lfa.rolls atk));
  Alcotest.(check bool) "observed paths recorded" true (Lfa.observed_paths atk <> [])

let test_lfa_loss_does_not_trigger_roll () =
  let lm, engine, net = fig2_net () in
  (* inject heavy control-packet loss so traceroute replies go missing *)
  ignore (Ff_scaling.Loss.install net ~sw:lm.T.Fig2.agg ~prob:0.4
            ~classes:Ff_scaling.Loss.Control_only ());
  let atk =
    Lfa.launch net ~bots:lm.T.Fig2.bot_sources
      ~decoy_groups:(List.map (fun d -> [ d ]) lm.T.Fig2.decoys)
      ~start:1. ~recon_interval:0.5 ~roll_on_path_change:true ()
  in
  Engine.run engine ~until:10.;
  Alcotest.(check int) "missing replies are not path changes" 0
    (List.length (Lfa.rolls atk))

let test_lfa_stop () =
  let lm, engine, net = fig2_net () in
  let atk =
    Lfa.launch net ~bots:lm.T.Fig2.bot_sources
      ~decoy_groups:(List.map (fun d -> [ d ]) lm.T.Fig2.decoys)
      ~start:1. ()
  in
  Engine.run engine ~until:5.;
  Lfa.stop_now atk;
  let rate_before = Lfa.attack_rate atk ~now:5. in
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "was attacking" true (rate_before > 100_000.);
  Alcotest.(check bool) "quiet after stop" true (Lfa.attack_rate atk ~now:10. < 20_000.)

let test_volumetric_floods () =
  let lm, engine, net = fig2_net () in
  let atk =
    Volumetric.launch net ~bots:lm.T.Fig2.bot_sources ~victim:lm.T.Fig2.victim
      ~rate_pps_per_bot:200. ~start:0.5 ()
  in
  Engine.run engine ~until:5.;
  Alcotest.(check int) "one flow per bot" 8 (List.length (Volumetric.flows atk));
  Alcotest.(check bool) "packets flowing" true (Volumetric.packets_sent atk > 5000);
  Volumetric.stop_now atk;
  let sent = Volumetric.packets_sent atk in
  Engine.run engine ~until:8.;
  Alcotest.(check int) "stopped" sent (Volumetric.packets_sent atk)

let test_volumetric_spoofing_ttl () =
  let lm, engine, net = fig2_net () in
  let claimed = List.hd lm.T.Fig2.normal_sources in
  (* observe TTLs at agg *)
  let ttls = ref [] in
  Net.add_stage net ~sw:lm.T.Fig2.agg
    {
      Net.stage_name = "ttl-spy";
      process =
        (fun _ pkt ->
          (match pkt.Ff_dataplane.Packet.payload with
          | Ff_dataplane.Packet.Data when pkt.Ff_dataplane.Packet.src = claimed ->
            ttls := pkt.Ff_dataplane.Packet.ttl :: !ttls
          | _ -> ());
          Net.Continue);
    };
  let _atk =
    Volumetric.launch net ~bots:[ List.hd lm.T.Fig2.bot_sources ] ~victim:lm.T.Fig2.victim
      ~rate_pps_per_bot:50. ~spoof_as:[ claimed ] ~spoof_ttl:48 ~start:0.5 ()
  in
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "spoofed packets observed" true (!ttls <> []);
  List.iter
    (fun ttl -> Alcotest.(check bool) "ttl reveals spoofing" true (ttl < 60))
    !ttls

let test_coremelt_pairwise () =
  let lm, engine, net = fig2_net () in
  let atk =
    Ff_attacks.Coremelt.launch net ~bots:lm.T.Fig2.bot_sources ~start:1. ()
  in
  Alcotest.(check int) "ordered pairs" (8 * 7) (Ff_attacks.Coremelt.pair_count atk);
  Alcotest.(check int) "one flow per pair" (8 * 7)
    (List.length (Ff_attacks.Coremelt.flows atk));
  Engine.run engine ~until:8.;
  Alcotest.(check bool) "core melting" true
    (Ff_attacks.Coremelt.attack_rate atk ~now:8. > 1_000_000.);
  (* bots split across e1/e2: their pairwise traffic crosses the e-agg
     links in both directions *)
  let e1 = (T.node_by_name lm.T.Fig2.topo "e1").T.id in
  let agg = lm.T.Fig2.agg in
  Alcotest.(check bool) "edge uplink saturating" true
    (Net.utilization net ~from_:e1 ~to_:agg > 0.5);
  Ff_attacks.Coremelt.stop_now atk;
  Engine.run engine ~until:12.;
  Alcotest.(check bool) "stops" true (Ff_attacks.Coremelt.attack_rate atk ~now:12. < 50_000.)

let test_pulsing_average_rate () =
  let lm, engine, net = fig2_net () in
  let atk =
    Pulsing.launch net ~bots:lm.T.Fig2.bot_sources ~victim:lm.T.Fig2.victim ~burst_pps:500.
      ~period:1.0 ~duty:0.2 ~start:0. ()
  in
  Engine.run engine ~until:10.;
  let sent = List.fold_left (fun acc f -> acc + Flow.Cbr.sent_packets f) 0 (Pulsing.flows atk) in
  let expected = Pulsing.average_rate_pps atk *. 10. in
  Alcotest.(check bool) "average rate matches duty cycle" true
    (Float.abs (float_of_int sent -. expected) < 0.25 *. expected)

let () =
  Alcotest.run "ff_attacks"
    [
      ( "lfa",
        [
          Alcotest.test_case "congests target" `Quick test_lfa_congests_target;
          Alcotest.test_case "individually low rate" `Quick test_lfa_individually_low_rate;
          Alcotest.test_case "rolls on schedule" `Quick test_lfa_rolls_on_schedule;
          Alcotest.test_case "rolls on path change" `Quick test_lfa_rolls_on_path_change;
          Alcotest.test_case "loss does not trigger roll" `Quick
            test_lfa_loss_does_not_trigger_roll;
          Alcotest.test_case "stop" `Quick test_lfa_stop;
        ] );
      ( "volumetric",
        [
          Alcotest.test_case "floods" `Quick test_volumetric_floods;
          Alcotest.test_case "spoofing ttl" `Quick test_volumetric_spoofing_ttl;
        ] );
      ("coremelt", [ Alcotest.test_case "pairwise flood" `Quick test_coremelt_pairwise ]);
      ("pulsing", [ Alcotest.test_case "average rate" `Quick test_pulsing_average_rate ]);
    ]
