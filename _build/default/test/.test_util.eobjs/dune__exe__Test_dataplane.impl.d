test/test_dataplane.ml: Alcotest Ff_dataplane Gen List QCheck QCheck_alcotest
