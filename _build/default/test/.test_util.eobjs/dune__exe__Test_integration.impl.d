test/test_integration.ml: Alcotest Fastflex Ff_dataflow Ff_dataplane Ff_netsim Ff_placement Ff_topology Ff_util Float List String
