test/test_te.ml: Alcotest Ff_netsim Ff_te Ff_topology Float List Option
