test/test_placement.ml: Alcotest Fastflex Ff_dataflow Ff_dataplane Ff_placement Ff_te Ff_topology Fun List String
