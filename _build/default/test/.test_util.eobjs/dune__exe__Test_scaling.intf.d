test/test_scaling.mli:
