test/test_boosters.ml: Alcotest Ff_boosters Ff_dataplane Ff_netsim Ff_topology Hashtbl List
