test/test_dataflow.ml: Alcotest Fastflex Ff_boosters Ff_dataflow Ff_dataplane Gen List Printf QCheck QCheck_alcotest
