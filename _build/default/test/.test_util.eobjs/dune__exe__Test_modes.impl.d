test/test_modes.ml: Alcotest Ff_dataplane Ff_modes Ff_netsim Ff_topology Gen Hashtbl List Printf QCheck QCheck_alcotest
