test/test_util.ml: Alcotest Array Ff_util Float Format Fun Gen List Option QCheck QCheck_alcotest String
