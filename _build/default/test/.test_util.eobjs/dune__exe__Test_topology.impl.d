test/test_topology.ml: Alcotest Ff_topology Hashtbl List Option QCheck QCheck_alcotest
