test/test_netsim.ml: Alcotest Ff_dataplane Ff_netsim Ff_topology Ff_util Float Hashtbl List QCheck QCheck_alcotest
