test/test_boosters.mli:
