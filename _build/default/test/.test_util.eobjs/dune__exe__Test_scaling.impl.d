test/test_scaling.ml: Alcotest Ff_netsim Ff_scaling Ff_topology Float Gen Hashtbl List Printf QCheck QCheck_alcotest
