test/test_attacks.ml: Alcotest Ff_attacks Ff_dataplane Ff_netsim Ff_scaling Ff_topology Float List
