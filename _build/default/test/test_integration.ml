(* End-to-end integration tests: the full FastFlex pipeline and the
   case-study scenario (shortened versions of paper Figure 3). *)

module Scenario = Fastflex.Scenario
module Orchestrator = Fastflex.Orchestrator
module Compile = Fastflex.Compile
module Series = Ff_util.Series
module Packet = Ff_dataplane.Packet

(* One 60-second round: attack starts at 10 s, no forced rolls. *)
let one_round = { Scenario.default_attack with roll_schedule = []; start = 10. }

let run defense =
  Scenario.run_lfa ~defense ~attack:(Some one_round) ~duration:60. ()

let test_no_attack_stays_at_baseline () =
  let r = Scenario.run_lfa ~defense:Scenario.No_defense ~attack:None ~duration:30. () in
  Alcotest.(check bool) "positive baseline" true (r.Scenario.baseline_goodput > 100_000.);
  Alcotest.(check bool) "mean stays near 1" true (r.Scenario.mean_during_attack > 0.9);
  Alcotest.(check int) "no rolls" 0 (List.length r.Scenario.rolls)

let test_attack_hurts_undefended () =
  let r = run Scenario.No_defense in
  Alcotest.(check bool) "mean degraded" true (r.Scenario.mean_during_attack < 0.8);
  Alcotest.(check bool) "deep dip" true (r.Scenario.min_during_attack < 0.7)

let test_fastflex_recovers_fast () =
  let r = run (Scenario.Fastflex Orchestrator.default_config) in
  Alcotest.(check bool) "high mean under attack" true (r.Scenario.mean_during_attack > 0.85);
  (* the multimode data plane activated and the detector marked traffic *)
  Alcotest.(check bool) "modes changed" true (List.length r.Scenario.mode_log > 0);
  Alcotest.(check bool) "flows classified" true (r.Scenario.suspicious_marked > 1000);
  Alcotest.(check bool) "probes circulated" true (r.Scenario.probes_sent > 100);
  (* recovery at data plane timescale: within 5 s of attack start *)
  (match r.Scenario.recovery_times with
  | (_, rt) :: _ -> Alcotest.(check bool) "recovers within 5 s" true (rt < 5.)
  | [] -> Alcotest.fail "no recovery measured")

let test_fastflex_beats_baseline_and_none () =
  let ff = run (Scenario.Fastflex Orchestrator.default_config) in
  let sdn = run (Scenario.Baseline_sdn { period = 30.; delay = 0.5 }) in
  let none = run Scenario.No_defense in
  Alcotest.(check bool) "fastflex > baseline sdn" true
    (ff.Scenario.mean_during_attack > sdn.Scenario.mean_during_attack);
  Alcotest.(check bool) "fastflex > no defense" true
    (ff.Scenario.mean_during_attack > none.Scenario.mean_during_attack +. 0.15)

let test_baseline_sdn_reconfigures () =
  let r = run (Scenario.Baseline_sdn { period = 20.; delay = 0.5 }) in
  Alcotest.(check bool) "controller ran" true (List.length r.Scenario.reconfigs >= 2);
  Alcotest.(check int) "no data plane mode changes" 0 (List.length r.Scenario.mode_log)

let test_fastflex_obfuscation_suppresses_rolling () =
  (* an attacker rolling on path changes: under FastFlex the observed
     topology never changes, so only scheduled rolls occur *)
  let plan = { Scenario.default_attack with roll_schedule = [ 30. ]; start = 10. } in
  let r =
    Scenario.run_lfa ~defense:(Scenario.Fastflex Orchestrator.default_config)
      ~attack:(Some plan) ~duration:60. ()
  in
  Alcotest.(check (list (float 0.01))) "only the scheduled roll" [ 30. ] r.Scenario.rolls

let test_modes_return_to_default () =
  (* a short attack that ends: every activation must eventually clear *)
  let plan = { one_round with start = 5. } in
  let r =
    Scenario.run_lfa ~defense:(Scenario.Fastflex Orchestrator.default_config)
      ~attack:(Some plan) ~duration:60. ()
  in
  ignore r;
  (* we cannot stop the attacker mid-scenario via the public API, so this
     checks the weaker invariant: activations and deactivations balance per
     switch in the log, or the attack is still running at the end *)
  let activations =
    List.length (List.filter (fun (_, _, _, up) -> up) r.Scenario.mode_log)
  in
  Alcotest.(check bool) "activations happened" true (activations > 0)

let test_mode_log_covers_all_switches () =
  let r = run (Scenario.Fastflex Orchestrator.default_config) in
  let switches =
    List.sort_uniq compare (List.map (fun (_, sw, _, _) -> sw) r.Scenario.mode_log)
  in
  (* the Fig2 topology has 10 switches; region_ttl 8 reaches all of them *)
  Alcotest.(check int) "whole region activated" 10 (List.length switches);
  List.iter
    (fun (_, _, attack, _) ->
      Alcotest.(check bool) "lfa modes only" true (attack = Packet.Lfa))
    r.Scenario.mode_log

let test_series_shapes () =
  let r = run (Scenario.Fastflex Orchestrator.default_config) in
  Alcotest.(check bool) "normalized sampled" true (Series.length r.Scenario.normalized > 100);
  Alcotest.(check bool) "attack series sampled" true
    (Series.length r.Scenario.attack_goodput > 100);
  (* normalized pre-attack hovers near 1 *)
  let pre =
    List.filter_map
      (fun (t, v) -> if t > 5. && t < 9. then Some v else None)
      (Series.points r.Scenario.normalized)
  in
  Alcotest.(check bool) "pre-attack near 1" true
    (Float.abs (Ff_util.Stats.mean pre -. 1.) < 0.1)

(* the volumetric scenario: heavy-hitter detection through the mode protocol *)
let test_volumetric_defended_vs_not () =
  let undefended = Scenario.run_volumetric ~defended:false ~duration:40. () in
  let defended = Scenario.run_volumetric ~defended:true ~duration:40. () in
  Alcotest.(check bool) "flood crushes undefended victim" true
    (undefended.Scenario.vr_normalized_mean < 0.4);
  Alcotest.(check bool) "defense restores goodput" true
    (defended.Scenario.vr_normalized_mean > 0.9);
  Alcotest.(check bool) "alarm raised" true defended.Scenario.vr_alarmed;
  Alcotest.(check bool) "modes propagated" true (defended.Scenario.vr_mode_changes >= 10);
  Alcotest.(check bool) "spoofed packets filtered" true
    (defended.Scenario.vr_spoofed_filtered > 1000);
  Alcotest.(check bool) "offenders policed" true (defended.Scenario.vr_offender_drops > 10_000)

let test_volumetric_without_spoofing () =
  (* unspoofed flood: hop-count filtering has nothing to do, but policing
     the heavy hitters still restores the victim *)
  let d = Scenario.run_volumetric ~defended:true ~duration:40. ~spoof:false () in
  Alcotest.(check bool) "policing alone recovers" true
    (d.Scenario.vr_normalized_mean > 0.85);
  Alcotest.(check int) "nothing spoofed, nothing filtered" 0 d.Scenario.vr_spoofed_filtered

(* deploy_wide: the pervasive deployment on an arbitrary topology *)
let test_deploy_wide_on_ring () =
  let topo = Ff_topology.Topology.ring ~n:6 () in
  let engine = Ff_netsim.Engine.create () in
  let net = Ff_netsim.Net.create engine topo in
  let hosts = Ff_topology.Topology.hosts topo in
  List.iter
    (fun (h1 : Ff_topology.Topology.node) ->
      List.iter
        (fun (h2 : Ff_topology.Topology.node) ->
          if h1.Ff_topology.Topology.id <> h2.Ff_topology.Topology.id then
            match
              Ff_topology.Topology.shortest_path topo ~src:h1.Ff_topology.Topology.id
                ~dst:h2.Ff_topology.Topology.id
            with
            | Some p -> Ff_netsim.Net.install_path net ~dst:h2.Ff_topology.Topology.id p
            | None -> ())
        hosts)
    hosts;
  let victim = (Ff_topology.Topology.node_by_name topo "h0").Ff_topology.Topology.id in
  let wide = Orchestrator.deploy_wide net ~protect:[ victim ] () in
  (* every switch got a detector and a dropper *)
  Alcotest.(check int) "detector per switch" 6 (List.length wide.Orchestrator.w_detectors);
  Alcotest.(check int) "dropper per switch" 6 (List.length wide.Orchestrator.w_droppers);
  (* flood the victim from everywhere: some detector must alarm and the
     modes must propagate *)
  List.iter
    (fun (h : Ff_topology.Topology.node) ->
      if h.Ff_topology.Topology.id <> victim then
        for _ = 1 to 3 do
          ignore
            (Ff_netsim.Flow.Tcp.start net ~src:h.Ff_topology.Topology.id ~dst:victim ~at:1.
               ~max_cwnd:4. ())
        done)
    hosts;
  Ff_netsim.Engine.run engine ~until:15.;
  Alcotest.(check bool) "modes activated" true
    (List.length (Orchestrator.wide_mode_log wide) > 0);
  Alcotest.(check bool) "flows classified somewhere" true (Orchestrator.wide_marked wide > 0)

let test_compile_verify_clean () =
  List.iter
    (fun (name, issues) ->
      Alcotest.(check int) (name ^ " verifies clean") 0 (List.length issues))
    (Compile.verify ())

let test_merged_graph_to_dot () =
  let compiled = Compile.boosters () in
  let dot = Ff_dataflow.Graph.to_dot compiled.Compile.merged in
  Alcotest.(check bool) "digraph syntax" true
    (String.length dot > 100
    && String.sub dot 0 7 = "digraph"
    && dot.[String.length dot - 2] = '}');
  (* one node line per merged vertex *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let node_lines =
    List.filter
      (fun l ->
        String.length l > 4 && String.sub l 2 1 = "n" && String.contains l '['
        && not (contains l "->"))
      (String.split_on_char '\n' dot)
  in
  Alcotest.(check int) "one node per PPM"
    (Ff_dataflow.Graph.num_vertices compiled.Compile.merged)
    (List.length node_lines)

(* The compile pipeline end-to-end: catalogue -> merged graph -> packing *)
let test_compile_pipeline_end_to_end () =
  let compiled = Compile.boosters () in
  match Compile.pack_onto compiled ~switches:[ 0; 1; 2; 3 ] () with
  | Ok bins ->
    Alcotest.(check bool) "fits on tofino-class switches" true
      (Ff_placement.Pack.respects_capacity bins);
    let rows = Compile.module_rows compiled in
    Alcotest.(check bool) "module table non-trivial" true (List.length rows >= 15);
    (* every module row names at least one booster *)
    List.iter
      (fun (_, boosters, _) ->
        Alcotest.(check bool) "owner recorded" true (boosters <> []))
      rows
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "integration"
    [
      ( "scenario",
        [
          Alcotest.test_case "no attack stays at baseline" `Slow
            test_no_attack_stays_at_baseline;
          Alcotest.test_case "attack hurts undefended" `Slow test_attack_hurts_undefended;
          Alcotest.test_case "fastflex recovers fast" `Slow test_fastflex_recovers_fast;
          Alcotest.test_case "fastflex beats baselines" `Slow
            test_fastflex_beats_baseline_and_none;
          Alcotest.test_case "baseline sdn reconfigures" `Slow test_baseline_sdn_reconfigures;
          Alcotest.test_case "obfuscation suppresses rolling" `Slow
            test_fastflex_obfuscation_suppresses_rolling;
          Alcotest.test_case "modes return to default" `Slow test_modes_return_to_default;
          Alcotest.test_case "mode log covers switches" `Slow test_mode_log_covers_all_switches;
          Alcotest.test_case "series shapes" `Slow test_series_shapes;
          Alcotest.test_case "volumetric defended vs not" `Slow
            test_volumetric_defended_vs_not;
          Alcotest.test_case "volumetric without spoofing" `Slow
            test_volumetric_without_spoofing;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "compile to packing" `Quick test_compile_pipeline_end_to_end;
          Alcotest.test_case "verify clean" `Quick test_compile_verify_clean;
          Alcotest.test_case "merged graph to dot" `Quick test_merged_graph_to_dot;
          Alcotest.test_case "deploy_wide on a ring" `Slow test_deploy_wide_on_ring;
        ] );
    ]
