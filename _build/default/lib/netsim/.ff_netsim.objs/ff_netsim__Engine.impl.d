lib/netsim/engine.ml: Ff_util Printf
