lib/netsim/monitor.ml: Engine Ff_util Flow List Net Printf
