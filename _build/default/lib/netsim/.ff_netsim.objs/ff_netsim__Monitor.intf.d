lib/netsim/monitor.mli: Engine Ff_util Flow Net
