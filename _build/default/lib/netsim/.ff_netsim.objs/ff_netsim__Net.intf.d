lib/netsim/net.mli: Engine Ff_dataplane Ff_topology Hashtbl
