lib/netsim/net.ml: Array Engine Ff_dataplane Ff_topology Ff_util Float Hashtbl List Printf
