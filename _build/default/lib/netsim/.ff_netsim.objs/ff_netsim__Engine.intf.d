lib/netsim/engine.mli:
