lib/netsim/flow.ml: Engine Ff_dataplane Ff_util Float Hashtbl List Net
