open Ff_dataplane

(* Registers, hash uses, tables, and ALU-ish updates of one statement. *)
let rec expr_stats (regs, hashes, alus) = function
  | Ppm.Const _ | Ppm.Field _ | Ppm.Meta _ -> (regs, hashes, alus)
  | Ppm.Reg_read (r, idx) -> expr_stats (r :: regs, hashes, alus) idx
  | Ppm.Hash fields -> (regs, List.sort compare fields :: hashes, alus)
  | Ppm.Binop (_, a, b) -> expr_stats (expr_stats (regs, hashes, alus + 1) a) b

let rec cond_stats acc = function
  | Ppm.True -> acc
  | Ppm.Cmp (_, a, b) -> expr_stats (expr_stats acc a) b
  | Ppm.And (a, b) | Ppm.Or (a, b) -> cond_stats (cond_stats acc a) b
  | Ppm.Not c -> cond_stats acc c

let rec stmt_stats acc = function
  | Ppm.Set_meta (_, e) -> expr_stats acc e
  | Ppm.Reg_write (r, idx, v) ->
    let regs, hashes, alus = expr_stats (expr_stats acc idx) v in
    (r :: regs, hashes, alus + 1)
  | Ppm.Mark_suspicious c | Ppm.Drop_when c -> cond_stats acc c
  | Ppm.Emit_probe _ -> acc
  | Ppm.Apply_table _ -> acc
  | Ppm.If (c, yes, no) ->
    let acc = cond_stats acc c in
    let acc = List.fold_left stmt_stats acc yes in
    List.fold_left stmt_stats acc no

let rec stmt_tables acc = function
  | Ppm.Apply_table t -> t :: acc
  | Ppm.If (_, yes, no) ->
    let acc = List.fold_left stmt_tables acc yes in
    List.fold_left stmt_tables acc no
  | Ppm.Set_meta _ | Ppm.Reg_write _ | Ppm.Mark_suspicious _ | Ppm.Drop_when _
  | Ppm.Emit_probe _ -> acc

let rec stmt_count acc = function
  | Ppm.If (_, yes, no) ->
    let acc = List.fold_left stmt_count (acc + 1) yes in
    List.fold_left stmt_count acc no
  | Ppm.Set_meta _ | Ppm.Reg_write _ | Ppm.Mark_suspicious _ | Ppm.Drop_when _
  | Ppm.Emit_probe _ | Ppm.Apply_table _ -> acc + 1

let estimate_resources body =
  let regs, hashes, alus =
    List.fold_left stmt_stats ([], [], 0) body
  in
  let tables = List.fold_left stmt_tables [] body in
  let distinct xs = List.length (List.sort_uniq compare xs) in
  let stmts = List.fold_left stmt_count 0 body in
  Resource.make
    ~stages:(Float.max 1. (ceil (float_of_int stmts /. 3.)))
    ~sram_kb:(64. *. float_of_int (distinct regs))
    ~tcam:(64. *. float_of_int (distinct tables))
    ~alus:(float_of_int alus)
    ~hash_units:(float_of_int (distinct hashes))
    ()

let stmt_regs s =
  let regs, _, _ = stmt_stats ([], [], 0) s in
  List.sort_uniq compare regs

let rec stmt_drops = function
  | Ppm.Drop_when _ -> true
  | Ppm.If (_, yes, no) -> List.exists stmt_drops yes || List.exists stmt_drops no
  | Ppm.Set_meta _ | Ppm.Reg_write _ | Ppm.Mark_suspicious _ | Ppm.Emit_probe _
  | Ppm.Apply_table _ -> false

let rec stmt_touches_packet_state = function
  | Ppm.Reg_write _ -> true
  | Ppm.Mark_suspicious _ | Ppm.Drop_when _ | Ppm.Emit_probe _ | Ppm.Apply_table _ -> true
  | Ppm.Set_meta (_, e) ->
    let regs, _, _ = expr_stats ([], [], 0) e in
    regs <> []
  | Ppm.If (_, yes, no) ->
    List.exists stmt_touches_packet_state yes || List.exists stmt_touches_packet_state no

let intersects a b = List.exists (fun x -> List.mem x b) a

let decompose ~booster ?(max_stmts_per_ppm = 6) body =
  (* Walk the program, accumulating the current PPM; close it when the next
     statement shares no register with it (state-affinity boundary) or the
     soft size limit is reached with no coupling. *)
  let close acc cur =
    match cur with [] -> acc | stmts -> List.rev stmts :: acc
  in
  let rec walk acc cur cur_regs = function
    | [] -> List.rev (close acc cur)
    | s :: rest ->
      let regs = stmt_regs s in
      let coupled = cur = [] || intersects regs cur_regs in
      let full = List.length cur >= max_stmts_per_ppm in
      if coupled && not full then
        walk acc (s :: cur) (List.sort_uniq compare (regs @ cur_regs)) rest
      else walk (close acc cur) [ s ] regs rest
  in
  let groups = walk [] [] [] body in
  let role_of group =
    if List.exists stmt_drops group then Ppm.Mitigation
    else if List.for_all (fun s -> not (stmt_touches_packet_state s)) group then Ppm.Parser
    else Ppm.Detection
  in
  List.mapi
    (fun i group ->
      Ppm.make_spec
        ~name:(Printf.sprintf "%s-ppm%d" booster i)
        ~booster ~role:(role_of group) ~resources:(estimate_resources group) group)
    groups

let roundtrip specs = List.concat_map (fun s -> s.Ppm.body) specs
