(** Automatic decomposition of a monolithic switch program into PPMs
    (paper section 3.1, "Opportunity: Decomposition": "we can use a program
    analysis engine to decompose programs into smaller modules to enable a
    tighter packing").

    Statements are grouped by state affinity: statements touching the same
    registers belong together (splitting them would force the register's
    value to travel in packet headers), while statements with disjoint
    state can live in different PPMs on different switches. The partition
    preserves program order, so concatenating the produced PPM bodies
    yields the original program. *)

val estimate_resources : Ff_dataplane.Ppm.stmt list -> Ff_dataplane.Resource.t
(** Resource footprint of a statement list under the PISA cost model:
    one stage per 3 statements (min 1), 64 KB SRAM per distinct register,
    one ALU per arithmetic register update, one hash unit per distinct
    hash computation, 64 TCAM entries per table application. *)

val decompose :
  booster:string ->
  ?max_stmts_per_ppm:int ->
  Ff_dataplane.Ppm.stmt list ->
  Ff_dataplane.Ppm.spec list
(** Partition a flat program into PPM specs named [<booster>-ppm<i>].
    Adjacent statements sharing register state always land in the same
    PPM; a PPM is closed when the next statement shares no state with it
    or when it reaches [max_stmts_per_ppm] (default 6) statements without
    state coupling to the next. The first PPM is a [Parser]-role module if
    it only reads fields into metadata; mitigation-looking statements
    (drops) give their PPM the [Mitigation] role, otherwise [Detection]. *)

val roundtrip : Ff_dataplane.Ppm.spec list -> Ff_dataplane.Ppm.stmt list
(** Concatenated bodies, for checking order preservation. *)
