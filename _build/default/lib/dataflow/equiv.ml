open Ff_dataplane

type renaming = {
  regs : (string, string) Hashtbl.t;
  metas : (string, string) Hashtbl.t;
  mutable next_reg : int;
  mutable next_meta : int;
}

let fresh_renaming () =
  { regs = Hashtbl.create 8; metas = Hashtbl.create 8; next_reg = 0; next_meta = 0 }

let rename_reg rn r =
  match Hashtbl.find_opt rn.regs r with
  | Some c -> c
  | None ->
    let c = Printf.sprintf "r%d" rn.next_reg in
    rn.next_reg <- rn.next_reg + 1;
    Hashtbl.replace rn.regs r c;
    c

let rename_meta rn m =
  match Hashtbl.find_opt rn.metas m with
  | Some c -> c
  | None ->
    let c = Printf.sprintf "m%d" rn.next_meta in
    rn.next_meta <- rn.next_meta + 1;
    Hashtbl.replace rn.metas m c;
    c

let binop_str = function
  | Ppm.Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Min -> "min"
  | Max -> "max"
  | Xor -> "xor"

let commutative = function Ppm.Add | Mul | Min | Max | Xor -> true | Sub -> false

let cmp_str = function
  | Ppm.Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

(* Comparison normalisation: express Gt/Ge through Lt/Le with swapped
   operands so that e.g. [a > b] and [b < a] canonicalize identically. *)
let rec expr rn = function
  | Ppm.Const f -> Printf.sprintf "(c %g)" f
  | Field f -> Printf.sprintf "(f %s)" f
  | Meta m -> Printf.sprintf "(m %s)" (rename_meta rn m)
  | Reg_read (r, idx) -> Printf.sprintf "(rd %s %s)" (rename_reg rn r) (expr rn idx)
  | Hash fields -> Printf.sprintf "(h %s)" (String.concat " " (List.sort compare fields))
  | Binop (op, a, b) ->
    let sa = expr rn a and sb = expr rn b in
    let sa, sb = if commutative op && sb < sa then (sb, sa) else (sa, sb) in
    Printf.sprintf "(%s %s %s)" (binop_str op) sa sb

let rec cond rn = function
  | Ppm.True -> "(true)"
  | Cmp (c, a, b) ->
    let c, a, b =
      match c with
      | Gt -> (Ppm.Lt, b, a)
      | Ge -> (Ppm.Le, b, a)
      | (Eq | Ne | Lt | Le) as c -> (c, a, b)
    in
    let sa = expr rn a and sb = expr rn b in
    let sa, sb = if (c = Eq || c = Ne) && sb < sa then (sb, sa) else (sa, sb) in
    Printf.sprintf "(%s %s %s)" (cmp_str c) sa sb
  | And (a, b) ->
    let sa = cond rn a and sb = cond rn b in
    let sa, sb = if sb < sa then (sb, sa) else (sa, sb) in
    Printf.sprintf "(and %s %s)" sa sb
  | Or (a, b) ->
    let sa = cond rn a and sb = cond rn b in
    let sa, sb = if sb < sa then (sb, sa) else (sa, sb) in
    Printf.sprintf "(or %s %s)" sa sb
  | Not c -> Printf.sprintf "(not %s)" (cond rn c)

let rec stmt rn = function
  | Ppm.Set_meta (m, e) -> Printf.sprintf "(set %s %s)" (rename_meta rn m) (expr rn e)
  | Reg_write (r, idx, v) ->
    Printf.sprintf "(wr %s %s %s)" (rename_reg rn r) (expr rn idx) (expr rn v)
  | Mark_suspicious c -> Printf.sprintf "(mark %s)" (cond rn c)
  | Drop_when c -> Printf.sprintf "(drop %s)" (cond rn c)
  | Emit_probe p -> Printf.sprintf "(probe %s)" p
  | Apply_table t -> Printf.sprintf "(table %s)" t
  | If (c, yes, no) ->
    Printf.sprintf "(if %s (%s) (%s))" (cond rn c) (stmts rn yes) (stmts rn no)

and stmts rn body = String.concat " " (List.map (stmt rn) body)

let canonical (spec : Ppm.spec) =
  let rn = fresh_renaming () in
  stmts rn spec.body

let equivalent a b = a.Ppm.role = b.Ppm.role && canonical a = canonical b

let signature spec = Hashtbl.hash (spec.Ppm.role, canonical spec)
