(** Functional equivalence of PPMs despite implementation differences.

    The paper leans on the dataplane-equivalence result (Dumitrescu et al.,
    NSDI '19): switch programs are simple enough that equivalence is
    decidable in practice. Our PPM IR is small, so we implement the check
    as canonicalization: metadata variables and register names are
    alpha-renamed in order of first occurrence, commutative operator
    operands are sorted, and the canonical form is printed to a string.
    Two PPMs are shareable iff their canonical forms and roles coincide. *)

val canonical : Ff_dataplane.Ppm.spec -> string
(** Rename-invariant canonical form of the body. *)

val equivalent : Ff_dataplane.Ppm.spec -> Ff_dataplane.Ppm.spec -> bool
(** Same role and same canonical form. Reflexive, symmetric, transitive,
    and invariant under consistent renaming of registers and metadata. *)

val signature : Ff_dataplane.Ppm.spec -> int
(** Hash of the canonical form (fast pre-filter). *)
