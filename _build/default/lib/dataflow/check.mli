(** Static checking of booster programs before deployment (paper
    section 6, "Securing the boosters": switch programs are simple enough
    to be verified; this is the lightweight, always-on subset in the
    spirit of p4v/Vera).

    The checks run over a booster's PPM pipeline in order and flag:
    metadata read before any write; tables applied but never declared;
    statements that can never execute because an earlier unconditional
    drop shadows them; PPMs whose declared resources underestimate their
    body's footprint; and probe emissions from PPMs whose role should
    never originate probes (parsers/deparsers). *)

type issue =
  | Uninitialized_meta of { ppm : string; meta : string }
      (** read with no prior [Set_meta] anywhere earlier in the pipeline *)
  | Undeclared_table of { ppm : string; table : string }
  | Unreachable_after_drop of { ppm : string; stmts : int }
      (** statements following [Drop_when True] in the same body *)
  | Under_provisioned of { ppm : string; need : Ff_dataplane.Resource.t }
      (** declared resources below the cost model's estimate *)
  | Probe_from_parser of { ppm : string }

val pp_issue : Format.formatter -> issue -> unit

val check_pipeline :
  ?declared_tables:string list ->
  ?table_outputs:(string * string list) list ->
  Ff_dataplane.Ppm.spec list ->
  issue list
(** Check one booster's PPMs in pipeline order. [declared_tables] lists
    the match-action tables the deployment provides, and [table_outputs]
    the metadata each table's actions write (both default to the shipped
    deployment, {!default_tables} / {!default_table_outputs}). *)

val default_tables : string list
(** The tables the shipped booster runtimes install:
    best-next-hop steering, the virtual topology, and the ACL policy. *)

val default_table_outputs : (string * string list) list
(** Metadata written by the shipped tables' actions (e.g. the ACL policy
    table sets ["acl_deny"]). *)
