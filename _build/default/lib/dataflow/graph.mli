(** Booster dataflow graphs and the merged whole-network graph
    (paper Figure 1 a-b).

    Vertices are PPMs; an edge [u -> v] means traffic flows from [u] to [v]
    and its weight is the amount of state they share (values that must be
    carried between them, e.g. as header fields, if they are placed on
    different switches). *)

type vertex = {
  vid : int;
  spec : Ff_dataplane.Ppm.spec;
  boosters : string list;  (** boosters this (possibly shared) PPM serves *)
}

type edge = { u : int; v : int; weight : float }

type t

val of_pipeline : booster:string -> Ff_dataplane.Ppm.spec list -> t
(** Chain graph in pipeline order; edge weights count shared registers
    between the endpoint PPMs, plus extra (non-chain) edges between any two
    PPMs that share state at distance > 1. *)

val vertices : t -> vertex list
val edges : t -> edge list
val vertex : t -> int -> vertex
val num_vertices : t -> int
val successors : t -> int -> (int * float) list

val total_resources : t -> Ff_dataplane.Resource.t
(** Component-wise sum over all vertices. *)

val merge : t list -> t * (string * string) list
(** Union of the graphs with functionally equivalent PPMs (per
    [Equiv.equivalent]) collapsed into a single shared vertex whose
    resource vector is the component-wise max of the merged instances.
    Also returns the sharing report: pairs [(kept_name, absorbed_name)]. *)

val clusters : ?threshold:float -> t -> int list list
(** Connected groups of vertices linked by edges of weight >= [threshold]
    (default 1.): the "dense, heavy-weight" clusters that should be
    co-located on one switch. Singleton clusters included. *)

val savings : before:t list -> after:t -> float
(** Fraction of total resource stages saved by merging, in [0,1]. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** Graphviz rendering: vertices labelled with PPM name/role/resources
    (shared PPMs double-peripheried), edges weighted by state sharing. *)
