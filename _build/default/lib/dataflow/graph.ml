open Ff_dataplane

type vertex = { vid : int; spec : Ppm.spec; boosters : string list }

type edge = { u : int; v : int; weight : float }

type t = { vertices : vertex array; edges : edge list }

let shared_weight a b = float_of_int (List.length (Ppm.state_shared a b))

let of_pipeline ~booster specs =
  let vertices =
    Array.of_list (List.mapi (fun i spec -> { vid = i; spec; boosters = [ booster ] }) specs)
  in
  let n = Array.length vertices in
  let edges = ref [] in
  (* chain edges in pipeline order *)
  for i = 0 to n - 2 do
    edges :=
      { u = i; v = i + 1; weight = shared_weight vertices.(i).spec vertices.(i + 1).spec }
      :: !edges
  done;
  (* long-range state-sharing edges *)
  for i = 0 to n - 1 do
    for j = i + 2 to n - 1 do
      let w = shared_weight vertices.(i).spec vertices.(j).spec in
      if w > 0. then edges := { u = i; v = j; weight = w } :: !edges
    done
  done;
  { vertices; edges = List.rev !edges }

let vertices t = Array.to_list t.vertices
let edges t = t.edges
let vertex t i = t.vertices.(i)
let num_vertices t = Array.length t.vertices

let successors t i =
  List.filter_map (fun e -> if e.u = i then Some (e.v, e.weight) else None) t.edges

let total_resources t =
  Resource.sum (Array.to_list (Array.map (fun v -> v.spec.Ppm.resources) t.vertices))

let resource_max (a : Resource.t) (b : Resource.t) : Resource.t =
  {
    stages = Float.max a.stages b.stages;
    sram_kb = Float.max a.sram_kb b.sram_kb;
    tcam = Float.max a.tcam b.tcam;
    alus = Float.max a.alus b.alus;
    hash_units = Float.max a.hash_units b.hash_units;
  }

let merge graphs =
  (* Concatenate all vertices, then collapse equivalence classes. *)
  let all =
    List.concat_map
      (fun g -> List.map (fun v -> (g, v)) (Array.to_list g.vertices))
      graphs
  in
  let merged : vertex list ref = ref [] in
  let report = ref [] in
  (* For each (graph, old vid) remember the new vid. *)
  let remap : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let graph_index g = Hashtbl.hash (Obj.repr g) in
  List.iter
    (fun (g, v) ->
      let existing =
        List.find_opt (fun m -> Equiv.equivalent m.spec v.spec) !merged
      in
      match existing with
      | Some m ->
        report := (m.spec.Ppm.name, v.spec.Ppm.name) :: !report;
        let updated =
          {
            m with
            boosters = List.sort_uniq compare (v.boosters @ m.boosters);
            spec = { m.spec with resources = resource_max m.spec.Ppm.resources v.spec.Ppm.resources };
          }
        in
        merged := List.map (fun x -> if x.vid = m.vid then updated else x) !merged;
        Hashtbl.replace remap (Hashtbl.hash (graph_index g, v.vid)) m.vid
      | None ->
        let vid = List.length !merged in
        merged := !merged @ [ { v with vid } ];
        Hashtbl.replace remap (Hashtbl.hash (graph_index g, v.vid)) vid)
    all;
  let edges =
    List.concat_map
      (fun g ->
        List.map
          (fun e ->
            {
              u = Hashtbl.find remap (Hashtbl.hash (graph_index g, e.u));
              v = Hashtbl.find remap (Hashtbl.hash (graph_index g, e.v));
              weight = e.weight;
            })
          g.edges)
      graphs
  in
  (* deduplicate edges, keeping the max weight *)
  let table = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.u <> e.v then begin
        let key = (min e.u e.v, max e.u e.v) in
        match Hashtbl.find_opt table key with
        | Some w when w >= e.weight -> ()
        | _ -> Hashtbl.replace table key e.weight
      end)
    edges;
  let edges =
    Hashtbl.fold (fun (u, v) weight acc -> { u; v; weight } :: acc) table []
    |> List.sort (fun e1 e2 -> compare (e1.u, e1.v) (e2.u, e2.v))
  in
  ({ vertices = Array.of_list !merged; edges }, List.rev !report)

let clusters ?(threshold = 1.) t =
  let n = Array.length t.vertices in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  List.iter (fun e -> if e.weight >= threshold then union e.u e.v) t.edges;
  let groups = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find i in
    Hashtbl.replace groups r (i :: (try Hashtbl.find groups r with Not_found -> []))
  done;
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
  |> List.sort compare

let savings ~before ~after =
  let sum_stages gs =
    List.fold_left (fun acc g -> acc +. (total_resources g).Resource.stages) 0. gs
  in
  let b = sum_stages before in
  if b <= 0. then 0. else (b -. (total_resources after).Resource.stages) /. b

let to_dot ?(name = "dataflow") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" name);
  Array.iter
    (fun v ->
      let shared = List.length v.boosters > 1 in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s | %.0f stages\"%s];\n" v.vid
           v.spec.Ppm.name
           (Ppm.role_to_string v.spec.Ppm.role)
           v.spec.Ppm.resources.Resource.stages
           (if shared then " peripheries=2 style=bold" else "")))
    t.vertices;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%.0f\"%s];\n" e.u e.v e.weight
           (if e.weight > 0. then " penwidth=2" else "")))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "dataflow graph: %d vertices, %d edges@." (Array.length t.vertices)
    (List.length t.edges);
  Array.iter
    (fun v ->
      Format.fprintf fmt "  [%d] %a (boosters: %s)@." v.vid Ppm.pp_spec v.spec
        (String.concat "," v.boosters))
    t.vertices;
  List.iter (fun e -> Format.fprintf fmt "  %d -> %d (w=%.0f)@." e.u e.v e.weight) t.edges
