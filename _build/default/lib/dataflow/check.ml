open Ff_dataplane

type issue =
  | Uninitialized_meta of { ppm : string; meta : string }
  | Undeclared_table of { ppm : string; table : string }
  | Unreachable_after_drop of { ppm : string; stmts : int }
  | Under_provisioned of { ppm : string; need : Resource.t }
  | Probe_from_parser of { ppm : string }

let pp_issue fmt = function
  | Uninitialized_meta { ppm; meta } ->
    Format.fprintf fmt "%s: metadata %S read before any write" ppm meta
  | Undeclared_table { ppm; table } ->
    Format.fprintf fmt "%s: table %S applied but not declared" ppm table
  | Unreachable_after_drop { ppm; stmts } ->
    Format.fprintf fmt "%s: %d statement(s) unreachable after an unconditional drop" ppm stmts
  | Under_provisioned { ppm; need } ->
    Format.fprintf fmt "%s: declared resources below estimated footprint %a" ppm Resource.pp
      need
  | Probe_from_parser { ppm } ->
    Format.fprintf fmt "%s: parser/deparser emits probes" ppm

let default_tables = [ "best_nexthop_table"; "virtual_topology"; "acl_policy" ]

let default_table_outputs =
  [ ("best_nexthop_table", []); ("virtual_topology", [ "vhop" ]); ("acl_policy", [ "acl_deny" ]) ]

(* Metas read by an expression/condition. *)
let rec expr_metas acc = function
  | Ppm.Const _ | Ppm.Field _ | Ppm.Hash _ -> acc
  | Ppm.Meta m -> m :: acc
  | Ppm.Reg_read (_, idx) -> expr_metas acc idx
  | Ppm.Binop (_, a, b) -> expr_metas (expr_metas acc a) b

let rec cond_metas acc = function
  | Ppm.True -> acc
  | Ppm.Cmp (_, a, b) -> expr_metas (expr_metas acc a) b
  | Ppm.And (a, b) | Ppm.Or (a, b) -> cond_metas (cond_metas acc a) b
  | Ppm.Not c -> cond_metas acc c

(* Walk one body tracking defined metas (flow-insensitive within branches:
   a meta set in either branch counts as defined afterwards — conservative
   for double-set, permissive for single-branch definitions, which is the
   usual compromise for a lint-level check). *)
let rec walk_stmt ~table_outputs ppm defined issues = function
  | Ppm.Set_meta (m, e) ->
    let issues = read_check ppm defined issues (expr_metas [] e) in
    (m :: defined, issues)
  | Ppm.Reg_write (_, idx, v) ->
    (defined, read_check ppm defined issues (expr_metas (expr_metas [] idx) v))
  | Ppm.Mark_suspicious c | Ppm.Drop_when c ->
    (defined, read_check ppm defined issues (cond_metas [] c))
  | Ppm.Emit_probe _ -> (defined, issues)
  | Ppm.Apply_table t ->
    (* table actions may write the metadata declared for them *)
    let outs = try List.assoc t table_outputs with Not_found -> [] in
    (outs @ defined, issues)
  | Ppm.If (c, yes, no) ->
    let issues = read_check ppm defined issues (cond_metas [] c) in
    let d1, issues = walk_body ~table_outputs ppm defined issues yes in
    let d2, issues = walk_body ~table_outputs ppm defined issues no in
    (List.sort_uniq compare (d1 @ d2), issues)

and walk_body ~table_outputs ppm defined issues body =
  List.fold_left (fun (d, i) s -> walk_stmt ~table_outputs ppm d i s) (defined, issues) body

and read_check ppm defined issues metas =
  List.fold_left
    (fun issues m ->
      if List.mem m defined then issues
      else Uninitialized_meta { ppm; meta = m } :: issues)
    issues metas

let rec tables_of acc = function
  | Ppm.Apply_table t -> t :: acc
  | Ppm.If (_, yes, no) ->
    let acc = List.fold_left tables_of acc yes in
    List.fold_left tables_of acc no
  | Ppm.Set_meta _ | Ppm.Reg_write _ | Ppm.Mark_suspicious _ | Ppm.Drop_when _
  | Ppm.Emit_probe _ -> acc

let rec emits_probe = function
  | Ppm.Emit_probe _ -> true
  | Ppm.If (_, yes, no) -> List.exists emits_probe yes || List.exists emits_probe no
  | Ppm.Set_meta _ | Ppm.Reg_write _ | Ppm.Mark_suspicious _ | Ppm.Drop_when _
  | Ppm.Apply_table _ -> false

let unreachable_after_drop body =
  let rec scan = function
    | [] -> 0
    | Ppm.Drop_when Ppm.True :: rest -> List.length rest
    | _ :: rest -> scan rest
  in
  scan body

let resource_fits_estimate spec =
  let need = Decompose.estimate_resources spec.Ppm.body in
  (* only stages are directly comparable across the cost model and the
     hand-declared vectors; SRAM etc. are sized by table capacity choices *)
  (spec.Ppm.resources.Resource.stages >= need.Resource.stages, need)

let check_pipeline ?(declared_tables = default_tables)
    ?(table_outputs = default_table_outputs) specs =
  let _, issues =
    List.fold_left
      (fun (defined, issues) spec ->
        let ppm = spec.Ppm.name in
        (* metadata initialization, threaded across the whole pipeline *)
        let defined, issues = walk_body ~table_outputs ppm defined issues spec.Ppm.body in
        (* tables *)
        let issues =
          List.fold_left
            (fun issues table ->
              if List.mem table declared_tables then issues
              else Undeclared_table { ppm; table } :: issues)
            issues
            (List.sort_uniq compare (List.fold_left tables_of [] spec.Ppm.body))
        in
        (* dead code after drop *)
        let issues =
          match unreachable_after_drop spec.Ppm.body with
          | 0 -> issues
          | stmts -> Unreachable_after_drop { ppm; stmts } :: issues
        in
        (* resource sanity *)
        let fits, need = resource_fits_estimate spec in
        let issues = if fits then issues else Under_provisioned { ppm; need } :: issues in
        (* probes from parsers *)
        let issues =
          if
            (spec.Ppm.role = Ppm.Parser || spec.Ppm.role = Ppm.Deparser)
            && List.exists emits_probe spec.Ppm.body
          then Probe_from_parser { ppm } :: issues
          else issues
        in
        (defined, issues))
      ([], []) specs
  in
  List.rev issues
