lib/dataflow/graph.ml: Array Buffer Equiv Ff_dataplane Float Format Fun Hashtbl List Obj Ppm Printf Resource String
