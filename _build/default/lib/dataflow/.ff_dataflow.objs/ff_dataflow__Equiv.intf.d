lib/dataflow/equiv.mli: Ff_dataplane
