lib/dataflow/check.mli: Ff_dataplane Format
