lib/dataflow/decompose.mli: Ff_dataplane
