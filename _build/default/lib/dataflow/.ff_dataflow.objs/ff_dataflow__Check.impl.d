lib/dataflow/check.ml: Decompose Ff_dataplane Format List Ppm Resource
