lib/dataflow/graph.mli: Ff_dataplane Format
