lib/dataflow/equiv.ml: Ff_dataplane Hashtbl List Ppm Printf String
