lib/dataflow/decompose.ml: Ff_dataplane Float List Ppm Printf Resource
