lib/topology/topology.mli: Hashtbl
