lib/topology/topology.ml: Array Ff_util Fun Hashtbl List Option Printf
