(** Volumetric DDoS: bots blast constant-bit-rate traffic straight at the
    victim, optionally with spoofed sources (which hop-count filtering
    catches: the spoofed source's expected TTL does not match the bot's
    real path length). *)

type t

val launch :
  Ff_netsim.Net.t ->
  bots:int list ->
  victim:int ->
  rate_pps_per_bot:float ->
  ?start:float ->
  ?stop:float ->
  ?spoof_as:int list ->
  ?spoof_ttl:int ->
  unit ->
  t
(** With [spoof_as], each bot claims a source identity drawn round-robin
    from the list, emitting with initial TTL [spoof_ttl] (default 48,
    i.e. visibly different from the simulator's default 64). *)

val flows : t -> Ff_netsim.Flow.Cbr.t list
val packets_sent : t -> int
val stop_now : t -> unit
