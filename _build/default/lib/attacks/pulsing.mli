(** Pulsing (shrew-style) attack: short high-rate bursts with a low duty
    cycle, sized to repeatedly trip TCP's loss recovery while keeping a
    low average rate that evades simple volume thresholds. *)

type t

val launch :
  Ff_netsim.Net.t ->
  bots:int list ->
  victim:int ->
  burst_pps:float ->
  ?period:float ->
  ?duty:float ->
  ?start:float ->
  ?stop:float ->
  unit ->
  t
(** Defaults: 1 s period, 0.2 duty (200 ms bursts). *)

val flows : t -> Ff_netsim.Flow.Cbr.t list
val average_rate_pps : t -> float
val stop_now : t -> unit
