module Flow = Ff_netsim.Flow

type t = { mutable flows : Flow.Tcp.t list; pairs : int }

let launch net ~bots ?(flows_per_pair = 1) ?(bot_max_cwnd = 4.) ?(start = 0.) ?stop () =
  let flows = ref [] in
  let pairs = ref 0 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            incr pairs;
            for _ = 1 to flows_per_pair do
              flows :=
                Flow.Tcp.start net ~src ~dst ~at:start ?stop ~max_cwnd:bot_max_cwnd ()
                :: !flows
            done
          end)
        bots)
    bots;
  { flows = !flows; pairs = !pairs }

let flows t = t.flows
let pair_count t = t.pairs

let attack_rate t ~now =
  List.fold_left (fun acc f -> acc +. Flow.Tcp.goodput f ~now) 0. t.flows

let stop_now t = List.iter Flow.Tcp.pause t.flows
