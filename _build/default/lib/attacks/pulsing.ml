module Flow = Ff_netsim.Flow

type t = { burst_pps : float; duty : float; mutable flows : Flow.Cbr.t list }

let launch net ~bots ~victim ~burst_pps ?(period = 1.0) ?(duty = 0.2) ?(start = 0.) ?stop () =
  let flows =
    List.map
      (fun bot ->
        Flow.Cbr.start net ~src:bot ~dst:victim ~rate_pps:burst_pps ~at:start ?stop
          ~pulse_period:period ~pulse_duty:duty ())
      bots
  in
  { burst_pps; duty; flows }

let flows t = t.flows
let average_rate_pps t = t.burst_pps *. t.duty *. float_of_int (List.length t.flows)
let stop_now t = List.iter Flow.Cbr.stop_now t.flows
