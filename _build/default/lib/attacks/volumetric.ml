module Flow = Ff_netsim.Flow

type t = { mutable flows : Flow.Cbr.t list }

let launch net ~bots ~victim ~rate_pps_per_bot ?(start = 0.) ?stop ?(spoof_as = [])
    ?(spoof_ttl = 48) () =
  let flows =
    List.mapi
      (fun i bot ->
        match spoof_as with
        | [] ->
          Flow.Cbr.start net ~src:bot ~dst:victim ~rate_pps:rate_pps_per_bot ~at:start ?stop ()
        | claims ->
          let claimed = List.nth claims (i mod List.length claims) in
          Flow.Cbr.start net ~src:claimed ~dst:victim ~rate_pps:rate_pps_per_bot ~at:start
            ?stop ~ttl:spoof_ttl ~via:bot ())
      bots
  in
  { flows }

let flows t = t.flows

let packets_sent t = List.fold_left (fun acc f -> acc + Flow.Cbr.sent_packets f) 0 t.flows

let stop_now t = List.iter Flow.Cbr.stop_now t.flows
