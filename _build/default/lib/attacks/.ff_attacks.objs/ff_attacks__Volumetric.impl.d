lib/attacks/volumetric.ml: Ff_netsim List
