lib/attacks/pulsing.mli: Ff_netsim
