lib/attacks/coremelt.ml: Ff_netsim List
