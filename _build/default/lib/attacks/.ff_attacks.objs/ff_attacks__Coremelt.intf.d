lib/attacks/coremelt.mli: Ff_netsim
