lib/attacks/pulsing.ml: Ff_netsim List
