lib/attacks/volumetric.mli: Ff_netsim
