lib/attacks/lfa.mli: Ff_netsim
