lib/attacks/lfa.ml: Ff_netsim Float Hashtbl List
