(** The Coremelt attack (Studer & Perrig, ESORICS '09; paper citation
    [74]): N bots generate pairwise traffic {e between themselves}, melting
    the core links their N^2 flows cross. Unlike Crossfire there are no
    decoys and no victim-bound packets at all — every flow has a consenting
    attacker at both ends, so endpoint filtering is useless and only
    in-network defenses see the aggregate. *)

type t

val launch :
  Ff_netsim.Net.t ->
  bots:int list ->
  ?flows_per_pair:int ->
  ?bot_max_cwnd:float ->
  ?start:float ->
  ?stop:float ->
  unit ->
  t
(** Opens [flows_per_pair] (default 1) TCP flows for every ordered bot
    pair, window-capped (default 4) so each flow stays unremarkable. *)

val flows : t -> Ff_netsim.Flow.Tcp.t list
val pair_count : t -> int
val attack_rate : t -> now:float -> float
val stop_now : t -> unit
