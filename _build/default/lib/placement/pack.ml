module Resource = Ff_dataplane.Resource
module Graph = Ff_dataflow.Graph

type bin = {
  sw : int;
  capacity : Resource.t;
  mutable used : Resource.t;
  mutable items : int list;
}

let fits bin need =
  Resource.fits ~need:(Resource.add bin.used need) ~within:bin.capacity

let place bin vid need =
  bin.used <- Resource.add bin.used need;
  bin.items <- vid :: bin.items

let first_fit_decreasing ~capacities graph =
  let bins =
    List.map (fun (sw, capacity) -> { sw; capacity; used = Resource.zero; items = [] }) capacities
  in
  (* prefer co-locating with dataflow neighbors: after sorting by dominant
     share, try bins already holding a neighbor first *)
  let vertices = Graph.vertices graph in
  let share v =
    match capacities with
    | (_, cap) :: _ -> Resource.dominant_share ~need:v.Graph.spec.Ff_dataplane.Ppm.resources ~within:cap
    | [] -> 0.
  in
  let sorted =
    List.sort (fun v1 v2 -> compare (share v2, v2.Graph.vid) (share v1, v1.Graph.vid)) vertices
  in
  let neighbor_weight = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace neighbor_weight (e.Graph.u, e.Graph.v) e.Graph.weight;
      Hashtbl.replace neighbor_weight (e.Graph.v, e.Graph.u) e.Graph.weight)
    (Graph.edges graph);
  let affinity bin vid =
    List.fold_left
      (fun acc other ->
        acc +. (try Hashtbl.find neighbor_weight (vid, other) with Not_found -> 0.))
      0. bin.items
  in
  let failure = ref None in
  List.iter
    (fun v ->
      if !failure = None then begin
        let need = v.Graph.spec.Ff_dataplane.Ppm.resources in
        let candidates = List.filter (fun b -> fits b need) bins in
        let best =
          List.fold_left
            (fun acc b ->
              match acc with
              | None -> Some b
              | Some cur -> if affinity b v.Graph.vid > affinity cur v.Graph.vid then Some b else acc)
            None candidates
        in
        match best with
        | Some b -> place b v.Graph.vid need
        | None -> failure := Some v.Graph.spec.Ff_dataplane.Ppm.name
      end)
    sorted;
  match !failure with
  | Some name -> Error (Printf.sprintf "PPM %s fits no switch" name)
  | None -> Ok bins

let bins_used bins = List.length (List.filter (fun b -> b.items <> []) bins)

let colocation_score graph bins =
  let home = Hashtbl.create 64 in
  List.iter (fun b -> List.iter (fun vid -> Hashtbl.replace home vid b.sw) b.items) bins;
  let total, kept =
    List.fold_left
      (fun (total, kept) e ->
        let w = e.Graph.weight in
        let same =
          match (Hashtbl.find_opt home e.Graph.u, Hashtbl.find_opt home e.Graph.v) with
          | Some a, Some b -> a = b
          | _ -> false
        in
        (total +. w, if same then kept +. w else kept))
      (0., 0.) (Graph.edges graph)
  in
  if total <= 0. then 1. else kept /. total

let respects_capacity bins =
  List.for_all (fun b -> Resource.fits ~need:b.used ~within:b.capacity) bins
