(** Vector bin packing of PPMs onto switches (paper section 3.1).

    Each switch is a vector of resource constraints; each PPM a vector of
    requirements; programs co-resident on a switch must sum within the
    constraints. First-fit decreasing on the dominant share, followed by a
    rebalancing local search that tries to empty the least-loaded bin. *)

type bin = {
  sw : int;
  capacity : Ff_dataplane.Resource.t;
  mutable used : Ff_dataplane.Resource.t;
  mutable items : int list;  (** vertex ids of the packed PPMs *)
}

val first_fit_decreasing :
  capacities:(int * Ff_dataplane.Resource.t) list ->
  Ff_dataflow.Graph.t ->
  (bin list, string) result
(** [Error] names the first PPM that fits no switch. Bins are returned for
    every switch, possibly empty. *)

val bins_used : bin list -> int
(** Switches with at least one PPM. *)

val colocation_score : Ff_dataflow.Graph.t -> bin list -> float
(** Fraction of dataflow edge weight kept within a single switch — higher
    means fewer values carried across the network in headers. *)

val respects_capacity : bin list -> bool
(** Invariant check: every bin's usage fits its capacity. *)
