module Topology = Ff_topology.Topology
module Resource = Ff_dataplane.Resource
module Ppm = Ff_dataplane.Ppm
module Graph = Ff_dataflow.Graph

type plan = {
  detectors : (int * string list) list;
  mitigators : (int * string list) list;
  path_coverage : float;
  avg_mitigation_distance : float;
}

let popular_switches topo ~paths =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun path ->
      List.iter
        (fun n ->
          if (Topology.node topo n).Topology.kind = Topology.Switch then
            Hashtbl.replace counts n (1 + (try Hashtbl.find counts n with Not_found -> 0)))
        path)
    paths;
  Hashtbl.fold (fun sw c acc -> (sw, c) :: acc) counts []
  |> List.sort (fun (s1, c1) (s2, c2) ->
         match compare c2 c1 with 0 -> compare s1 s2 | c -> c)

let place topo ~paths ~capacities graph =
  let detection_ppms =
    List.filter (fun v -> v.Graph.spec.Ppm.role = Ppm.Detection) (Graph.vertices graph)
  in
  let mitigation_ppms =
    List.filter (fun v -> v.Graph.spec.Ppm.role = Ppm.Mitigation) (Graph.vertices graph)
  in
  let remaining = Hashtbl.create 16 in
  List.iter (fun (sw, cap) -> Hashtbl.replace remaining sw cap) capacities;
  let try_install sw specs =
    match Hashtbl.find_opt remaining sw with
    | None -> []
    | Some cap ->
      let installed, cap' =
        List.fold_left
          (fun (acc, cap) v ->
            let need = v.Graph.spec.Ppm.resources in
            if Resource.fits ~need ~within:cap then
              (v.Graph.spec.Ppm.name :: acc, Resource.sub cap need)
            else (acc, cap))
          ([], cap) specs
      in
      Hashtbl.replace remaining sw cap';
      List.rev installed
  in
  (* detection as pervasively as resources allow, most popular switches first *)
  let popular = popular_switches topo ~paths in
  let detectors =
    List.filter_map
      (fun (sw, _) ->
        match try_install sw detection_ppms with
        | [] -> None
        | installed -> Some (sw, installed))
      popular
  in
  let detector_switches = List.map fst detectors in
  (* mitigation at the detector switch when it fits, else the next switch
     downstream on some path *)
  let downstream_of sw =
    List.find_map
      (fun path ->
        let rec scan = function
          | a :: (b :: _ as rest) ->
            if a = sw && (Topology.node topo b).Topology.kind = Topology.Switch then Some b
            else scan rest
          | _ -> None
        in
        scan path)
      paths
  in
  let mitigators =
    List.filter_map
      (fun sw ->
        match try_install sw mitigation_ppms with
        | [] -> (
          match downstream_of sw with
          | Some next -> (
            match try_install next mitigation_ppms with
            | [] -> None
            | installed -> Some (next, installed))
          | None -> None)
        | installed -> Some (sw, installed))
      detector_switches
  in
  let covered path = List.exists (fun n -> List.mem n detector_switches) path in
  let path_coverage =
    if paths = [] then 1.
    else
      float_of_int (List.length (List.filter covered paths)) /. float_of_int (List.length paths)
  in
  let mitigation_switches = List.map fst mitigators in
  let distance sw =
    (* hops from detector to nearest mitigator, over the topology *)
    List.fold_left
      (fun acc m ->
        match Topology.shortest_path topo ~src:sw ~dst:m with
        | Some p -> Float.min acc (float_of_int (List.length p - 1))
        | None -> acc)
      infinity mitigation_switches
  in
  let avg_mitigation_distance =
    match detector_switches with
    | [] -> 0.
    | sws ->
      let ds = List.map distance sws in
      let finite = List.filter (fun d -> d < infinity) ds in
      if finite = [] then infinity else Ff_util.Stats.mean finite
  in
  { detectors; mitigators; path_coverage; avg_mitigation_distance }

type detour_eval = {
  max_util_direct : float;
  max_util_detour : float;
  avg_stretch : float;
}

let middlebox_detour topo matrix ~sites =
  let demands = Ff_te.Traffic_matrix.pairs matrix in
  let load_direct = Hashtbl.create 64 and load_detour = Hashtbl.create 64 in
  let apply load path v =
    List.iter
      (fun (l : Topology.link) ->
        Hashtbl.replace load l.Topology.link_id
          (v +. (try Hashtbl.find load l.Topology.link_id with Not_found -> 0.)))
      (Topology.path_links topo path)
  in
  let stretches = ref [] in
  List.iter
    (fun (s, d, v) ->
      match Topology.shortest_path topo ~src:s ~dst:d with
      | None -> ()
      | Some direct ->
        apply load_direct direct v;
        (* route via the nearest middlebox site *)
        let via =
          List.filter_map
            (fun site ->
              match
                ( Topology.shortest_path topo ~src:s ~dst:site,
                  Topology.shortest_path topo ~src:site ~dst:d )
              with
              | Some p1, Some p2 -> Some (p1 @ List.tl p2)
              | _ -> None)
            sites
          |> List.sort (fun p1 p2 -> compare (List.length p1) (List.length p2))
        in
        (match via with
        | best :: _ ->
          apply load_detour best v;
          let direct_hops = float_of_int (List.length direct - 1) in
          let detour_hops = float_of_int (List.length best - 1) in
          if direct_hops > 0. then stretches := (detour_hops /. direct_hops) :: !stretches
        | [] -> apply load_detour direct v))
    demands;
  let max_util load =
    Hashtbl.fold
      (fun link_id l acc ->
        let cap = (Topology.link topo link_id).Topology.capacity in
        Float.max acc (l /. cap))
      load 0.
  in
  {
    max_util_direct = max_util load_direct;
    max_util_detour = max_util load_detour;
    avg_stretch = (if !stretches = [] then 1. else Ff_util.Stats.mean !stretches);
  }
