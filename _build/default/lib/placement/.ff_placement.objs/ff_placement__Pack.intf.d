lib/placement/pack.mli: Ff_dataflow Ff_dataplane
