lib/placement/pack.ml: Ff_dataflow Ff_dataplane Hashtbl List Printf
