lib/placement/placement.mli: Ff_dataflow Ff_dataplane Ff_te Ff_topology
