lib/placement/placement.ml: Ff_dataflow Ff_dataplane Ff_te Ff_topology Ff_util Float Hashtbl List
