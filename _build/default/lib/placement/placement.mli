(** On-path defense placement (paper section 3.2).

    FastFlex's opportunity over fixed middleboxes: distribute detection
    PPMs pervasively — ideally on every path — and put mitigation PPMs at
    or immediately downstream of their detectors, so traffic passes the
    defenses while following its optimal routes, with no detour.

    [place] realizes the paper's best-effort heuristic; [middlebox_detour]
    evaluates the classic alternative (k fixed middlebox sites all traffic
    must detour through) on the same inputs, for comparison. *)

type plan = {
  detectors : (int * string list) list;  (** switch -> detection PPM names *)
  mitigators : (int * string list) list;
  path_coverage : float;  (** fraction of demand paths crossing >= 1 detector *)
  avg_mitigation_distance : float;
      (** mean hops from a detector to its nearest mitigator (0 = same switch) *)
}

val place :
  Ff_topology.Topology.t ->
  paths:Ff_topology.Topology.path list ->
  capacities:(int * Ff_dataplane.Resource.t) list ->
  Ff_dataflow.Graph.t ->
  plan
(** Greedy: walk switches in decreasing path popularity; install detection
    PPMs wherever they fit, then mitigation PPMs at detector switches
    (falling back to the downstream neighbor on each path). *)

type detour_eval = {
  max_util_direct : float;  (** routing demands on shortest paths *)
  max_util_detour : float;  (** forcing each demand through its nearest middlebox *)
  avg_stretch : float;  (** mean (detour hops / direct hops) *)
}

val middlebox_detour :
  Ff_topology.Topology.t -> Ff_te.Traffic_matrix.t -> sites:int list -> detour_eval
(** Evaluate a fixed-middlebox deployment at the given switch sites. *)

val popular_switches :
  Ff_topology.Topology.t -> paths:Ff_topology.Topology.path list -> (int * int) list
(** Switches sorted by how many of the given paths cross them. *)
