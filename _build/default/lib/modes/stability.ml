type state = string list

type transition = {
  from_modes : state;
  trigger : string;
  to_modes : state;
  dwell : float;
}

type automaton = { initial : state; transitions : transition list }

type issue =
  | Unreachable_default of state
  | Zero_dwell_cycle of state list
  | Nondeterministic of state * string

type report = { reachable : state list; issues : issue list }

let normalize modes = List.sort_uniq compare modes

let successors automaton st =
  List.filter_map
    (fun tr -> if normalize tr.from_modes = st then Some tr else None)
    automaton.transitions

let reachable_states automaton =
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  let start = normalize automaton.initial in
  Hashtbl.replace seen start ();
  Queue.add start queue;
  let order = ref [ start ] in
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    List.iter
      (fun tr ->
        let nxt = normalize tr.to_modes in
        if not (Hashtbl.mem seen nxt) then begin
          Hashtbl.replace seen nxt ();
          order := nxt :: !order;
          Queue.add nxt queue
        end)
      (successors automaton st)
  done;
  List.rev !order

(* Can [st] reach [target] following transitions? *)
let can_reach automaton st target =
  let seen = Hashtbl.create 16 in
  let rec go st =
    if st = target then true
    else if Hashtbl.mem seen st then false
    else begin
      Hashtbl.replace seen st ();
      List.exists (fun tr -> go (normalize tr.to_modes)) (successors automaton st)
    end
  in
  go st

(* Find a cycle through zero-dwell transitions only. *)
let zero_dwell_cycle automaton reachable =
  let zero_succ st =
    List.filter_map
      (fun tr -> if tr.dwell <= 0. then Some (normalize tr.to_modes) else None)
      (successors automaton st)
  in
  let rec dfs path st =
    if List.mem st path then Some (List.rev (st :: path))
    else
      List.fold_left
        (fun acc nxt -> match acc with Some _ -> acc | None -> dfs (st :: path) nxt)
        None (zero_succ st)
  in
  List.fold_left
    (fun acc st -> match acc with Some _ -> acc | None -> dfs [] st)
    None reachable

let analyze automaton =
  let initial = normalize automaton.initial in
  let reachable = reachable_states automaton in
  let issues = ref [] in
  (* default reachability *)
  List.iter
    (fun st ->
      if st <> initial && not (can_reach automaton st initial) then
        issues := Unreachable_default st :: !issues)
    reachable;
  (* zero-dwell cycles *)
  (match zero_dwell_cycle automaton reachable with
  | Some cycle -> issues := Zero_dwell_cycle cycle :: !issues
  | None -> ());
  (* determinism *)
  List.iter
    (fun st ->
      let triggers = List.map (fun tr -> tr.trigger) (successors automaton st) in
      let dup =
        List.find_opt
          (fun tr -> List.length (List.filter (( = ) tr) triggers) > 1)
          triggers
      in
      match dup with
      | Some trg -> issues := Nondeterministic (st, trg) :: !issues
      | None -> ())
    reachable;
  { reachable; issues = List.rev !issues }

let stable automaton = (analyze automaton).issues = []

let of_protocol ~modes_for ~dwell =
  ignore modes_for;
  (* The protocol's per-switch state is the set of ACTIVE ATTACKS; the mode
     set is a derived label (several attack sets may light the same modes,
     which must not be conflated into one automaton state). Alarms are
     immediate; clears carry the dwell. *)
  let attacks = Ff_dataplane.Packet.all_attack_kinds in
  let name a = Ff_dataplane.Packet.attack_kind_to_string a in
  let state_of set = normalize (List.map name set) in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun sub -> x :: sub) s
  in
  let transitions =
    List.concat_map
      (fun set ->
        List.map
          (fun attack ->
            if List.mem attack set then
              { from_modes = state_of set; trigger = "clear-" ^ name attack;
                to_modes = state_of (List.filter (( <> ) attack) set); dwell }
            else
              { from_modes = state_of set; trigger = "alarm-" ^ name attack;
                to_modes = state_of (attack :: set); dwell = 0. })
          attacks)
      (subsets attacks)
  in
  { initial = []; transitions }

let pp_state fmt st =
  Format.fprintf fmt "{%s}" (String.concat "," st)

let pp_issue fmt = function
  | Unreachable_default st ->
    Format.fprintf fmt "state %a cannot return to default" pp_state st
  | Zero_dwell_cycle cycle ->
    Format.fprintf fmt "zero-dwell cycle: %s"
      (String.concat " -> " (List.map (fun st -> "{" ^ String.concat "," st ^ "}") cycle))
  | Nondeterministic (st, trigger) ->
    Format.fprintf fmt "state %a has duplicate transitions on %s" pp_state st trigger
