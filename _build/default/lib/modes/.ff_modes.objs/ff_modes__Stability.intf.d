lib/modes/stability.mli: Ff_dataplane Format
