lib/modes/sync.ml: Ff_dataplane Ff_netsim Hashtbl List Printf
