lib/modes/protocol.mli: Ff_dataplane Ff_netsim
