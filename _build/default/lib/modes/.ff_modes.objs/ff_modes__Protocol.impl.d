lib/modes/protocol.ml: Ff_dataplane Ff_netsim Float Hashtbl List
