lib/modes/stability.ml: Ff_dataplane Format Hashtbl List Queue String
