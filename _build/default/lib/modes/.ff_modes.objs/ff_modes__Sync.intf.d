lib/modes/sync.mli: Ff_netsim
