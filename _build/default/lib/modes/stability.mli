(** Static stability analysis of a mode automaton (paper sections 3.3 and
    6, "Stability").

    FastFlex mode changes must not introduce livelock: from any reachable
    mode combination, the all-clear sequence must lead back to the default
    mode, and every transition must carry a positive minimum dwell so an
    attacker cannot drive unbounded oscillation. This module checks those
    properties on an explicit automaton before deployment, in the spirit of
    the mode-change-protocol frameworks the paper cites (SafeMC et al.). *)

type state = string list
(** A mode combination, kept sorted and deduplicated. *)

type transition = {
  from_modes : state;
  trigger : string;  (** alarm or clear event name *)
  to_modes : state;
  dwell : float;  (** minimum residence time in [from_modes] before firing *)
}

type automaton = { initial : state; transitions : transition list }

type issue =
  | Unreachable_default of state
      (** a reachable state with no path back to the initial state *)
  | Zero_dwell_cycle of state list
      (** a cycle whose total dwell is zero: unbounded flapping *)
  | Nondeterministic of state * string
      (** two transitions with the same source and trigger *)

type report = { reachable : state list; issues : issue list }

val normalize : string list -> state

val analyze : automaton -> report
(** Explores the reachable state space (BFS) and reports issues; an empty
    [issues] list means the automaton is stable in the above sense. *)

val stable : automaton -> bool

val of_protocol : modes_for:(Ff_dataplane.Packet.attack_kind -> string list) -> dwell:float ->
  automaton
(** The automaton induced by the runtime protocol. States are the sets of
    {e active attacks} (attack-kind names) — the modes are derived labels
    and several attack sets may activate the same modes, so they must not
    be conflated. Alarm transitions are immediate; clear transitions carry
    [dwell]. *)

val pp_issue : Format.formatter -> issue -> unit
