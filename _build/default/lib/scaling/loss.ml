module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet

type class_filter = All | Control_only | Data_only | State_chunks_only

type t = {
  mutable prob : float;
  rng : Ff_util.Prng.t;
  classes : class_filter;
  mutable dropped : int;
  mutable seen : int;
}

let matches t (pkt : Packet.t) =
  match t.classes with
  | All -> true
  | Control_only -> Packet.is_control pkt
  | Data_only -> not (Packet.is_control pkt)
  | State_chunks_only -> (
    match pkt.Packet.payload with Packet.State_chunk _ -> true | _ -> false)

let install net ~sw ~prob ?(seed = 99) ?(classes = All) () =
  assert (prob >= 0. && prob <= 1.);
  let t = { prob; rng = Ff_util.Prng.create ~seed:(seed + sw); classes; dropped = 0; seen = 0 } in
  Net.add_stage ~front:true net ~sw
    {
      Net.stage_name = "loss-injection";
      process =
        (fun _ctx pkt ->
          if matches t pkt then begin
            t.seen <- t.seen + 1;
            if Ff_util.Prng.float t.rng 1. < t.prob then begin
              t.dropped <- t.dropped + 1;
              Net.Drop "injected-loss"
            end
            else Net.Continue
          end
          else Net.Continue);
    };
  t

let dropped t = t.dropped
let seen t = t.seen
let set_prob t p = t.prob <- p
