(** Random loss injection — the failure model the FEC/retransmission
    machinery is evaluated against (and a general fault-injection tool for
    tests). Installed as a switch stage so it drops packets the way a
    faulty link would. *)

type t

type class_filter = All | Control_only | Data_only | State_chunks_only

val install :
  Ff_netsim.Net.t -> sw:int -> prob:float -> ?seed:int -> ?classes:class_filter -> unit -> t
(** Drop arriving packets of the selected class with probability [prob]. *)

val dropped : t -> int
val seen : t -> int
val set_prob : t -> float -> unit
