(** Critical-state replication (paper section 3.4): periodically snapshot a
    switch's critical registers to a replica switch over the in-band
    transfer channel, so that a switch failure does not lose defense state
    (e.g. the suspicious-flow table). *)

type t

val start :
  Ff_netsim.Net.t ->
  primary:int ->
  replica:int ->
  period:float ->
  snapshot:(unit -> (string * float) list) ->
  unit ->
  t

val last_copy : t -> (string * float) list
(** The most recent complete replica ([\[\]] before the first round). *)

val copies_completed : t -> int
val stop : t -> unit

val failover : t -> restore:((string * float) list -> unit) -> bool
(** Apply the replica's last copy (e.g. into a replacement switch's
    registers). [false] when no copy has completed yet. *)
