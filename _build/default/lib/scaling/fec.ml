type chunk = {
  group : int;
  index : int;
  of_group : int;
  parity : bool;
  entries : (string * float) list;
}

let xor_key a b =
  let len = max (String.length a) (String.length b) in
  String.init len (fun i ->
      let ca = if i < String.length a then Char.code a.[i] else 0 in
      let cb = if i < String.length b then Char.code b.[i] else 0 in
      Char.chr (ca lxor cb))

let strip_padding s =
  let len = ref (String.length s) in
  while !len > 0 && s.[!len - 1] = '\000' do
    decr len
  done;
  String.sub s 0 !len

let xor_value a b = Int64.float_of_bits (Int64.logxor (Int64.bits_of_float a) (Int64.bits_of_float b))

let xor_pair (k1, v1) (k2, v2) = (xor_key k1 k2, xor_value v1 v2)

let pad_to n entries =
  let len = List.length entries in
  if len >= n then entries else entries @ List.init (n - len) (fun _ -> ("", 0.))

let xor_entries lists =
  match lists with
  | [] -> []
  | first :: _ ->
    let width = List.fold_left (fun acc l -> max acc (List.length l)) (List.length first) lists in
    let padded = List.map (pad_to width) lists in
    List.fold_left
      (fun acc l -> List.map2 xor_pair acc l)
      (List.init width (fun _ -> ("", 0.)))
      padded

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as l -> if n <= 0 then l else drop (n - 1) rest

let encode ?(group_size = 4) ?(per_chunk = 8) entries =
  assert (group_size >= 1 && per_chunk >= 1);
  let rec chunks acc i = function
    | [] -> List.rev acc
    | rest -> chunks (take per_chunk rest :: acc) (i + 1) (drop per_chunk rest)
  in
  let data = chunks [] 0 entries in
  let rec groups acc g = function
    | [] -> List.rev acc
    | rest ->
      let members = take group_size rest in
      groups (members :: acc) (g + 1) (drop group_size rest)
  in
  let grouped = groups [] 0 data in
  List.concat
    (List.mapi
       (fun g members ->
         let n = List.length members in
         let width = List.fold_left (fun acc m -> max acc (List.length m)) 0 members in
         let data_chunks =
           List.mapi
             (fun i m ->
               { group = g; index = i; of_group = n; parity = false;
                 entries = pad_to width m })
             members
         in
         let parity_chunk =
           { group = g; index = n; of_group = n; parity = true;
             entries = xor_entries (List.map (fun c -> c.entries) data_chunks) }
         in
         data_chunks @ [ parity_chunk ])
       grouped)

let data_chunks chunks = List.filter (fun c -> not c.parity) chunks

let group_count chunks =
  List.fold_left (fun acc c -> max acc (c.group + 1)) 0 chunks

let clean entries =
  List.filter_map
    (fun (k, v) ->
      let k = strip_padding k in
      if k = "" then None else Some (k, v))
    entries

let recover_members members =
    match members with
    | [] -> None
    | sample :: _ ->
      let n = sample.of_group in
      let data = List.filter (fun c -> not c.parity) members in
      let parity = List.find_opt (fun c -> c.parity) members in
      let have = List.map (fun c -> c.index) data in
      let missing = List.filter (fun i -> not (List.mem i have)) (List.init n Fun.id) in
      (match (missing, parity) with
      | [], _ ->
        let sorted = List.sort (fun a b -> compare a.index b.index) data in
        Some (List.concat_map (fun c -> c.entries) sorted)
      | [ miss ], Some p ->
        (* XOR of parity with the present data chunks reconstructs the hole *)
        let reconstructed = xor_entries (p.entries :: List.map (fun c -> c.entries) data) in
        let restored =
          { group = sample.group; index = miss; of_group = n; parity = false;
            entries = reconstructed }
        in
        let sorted = List.sort (fun a b -> compare a.index b.index) (restored :: data) in
        Some (List.concat_map (fun c -> c.entries) sorted)
      | _ -> None)

let decode_group members = Option.map clean (recover_members members)

let decode chunks =
  let ngroups = group_count chunks in
  let recover_group g = recover_members (List.filter (fun c -> c.group = g) chunks) in
  let rec collect g acc =
    if g >= ngroups then Some (List.rev acc)
    else
      match recover_group g with
      | Some entries -> collect (g + 1) (entries :: acc)
      | None -> None
  in
  Option.map (fun groups -> clean (List.concat groups)) (collect 0 [])
