module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine

type t = {
  net : Net.t;
  primary : int;
  replica : int;
  period : float;
  snapshot : unit -> (string * float) list;
  mutable last_copy : (string * float) list;
  mutable copies : int;
  mutable running : bool;
}

let round t () =
  if t.running then begin
    let entries = t.snapshot () in
    if entries <> [] then
      ignore
        (Transfer.send t.net ~src_sw:t.primary ~dst_sw:t.replica ~entries
           ~on_complete:(fun received ->
             t.last_copy <- received;
             t.copies <- t.copies + 1)
           ())
  end

let start net ~primary ~replica ~period ~snapshot () =
  let t =
    { net; primary; replica; period; snapshot; last_copy = []; copies = 0; running = true }
  in
  Engine.every (Net.engine net) ~period (round t);
  t

let last_copy t = t.last_copy
let copies_completed t = t.copies
let stop t = t.running <- false

let failover t ~restore =
  if t.copies = 0 then false
  else begin
    restore t.last_copy;
    true
  end
