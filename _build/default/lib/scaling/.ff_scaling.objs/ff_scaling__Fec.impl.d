lib/scaling/fec.ml: Char Fun Int64 List Option String
