lib/scaling/replicate.ml: Ff_netsim Transfer
