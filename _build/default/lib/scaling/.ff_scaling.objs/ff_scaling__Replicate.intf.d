lib/scaling/replicate.mli: Ff_netsim
