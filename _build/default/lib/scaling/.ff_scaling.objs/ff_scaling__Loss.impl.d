lib/scaling/loss.ml: Ff_dataplane Ff_netsim Ff_util
