lib/scaling/fec.mli:
