lib/scaling/transfer.mli: Ff_netsim
