lib/scaling/transfer.ml: Fec Ff_dataplane Ff_netsim Ff_topology Fun Hashtbl List
