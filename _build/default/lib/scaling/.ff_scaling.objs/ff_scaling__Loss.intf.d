lib/scaling/loss.mli: Ff_netsim
