lib/scaling/repurpose.ml: Ff_netsim Ff_topology Hashtbl List Transfer
