lib/scaling/repurpose.mli: Ff_netsim
