(** Forward error correction for state-carrying packets (paper
    section 3.4): "FEC encoding and decoding are bitwise operations over
    special header fields, therefore implementable in data plane".

    State entries (register name/value pairs) are split into fixed-size
    data chunks; every [group_size] data chunks get one parity chunk that
    is their slot-wise XOR (keys XORed byte-wise after padding, values
    XORed on their IEEE-754 bit patterns). Any single lost chunk per group
    is reconstructible from the rest. *)

type chunk = {
  group : int;
  index : int;  (** 0..group_size-1 for data, group_size for parity *)
  of_group : int;  (** data chunks in this group (last group may be short) *)
  parity : bool;
  entries : (string * float) list;
}

val encode :
  ?group_size:int -> ?per_chunk:int -> (string * float) list -> chunk list
(** Defaults: 4 data chunks per parity group, 8 entries per chunk. The
    entry order is preserved across encode/decode. *)

val decode : chunk list -> (string * float) list option
(** Reassemble the original entries. Tolerates one missing {e data} chunk
    per group when the group's parity chunk is present. [None] if any group
    is short two or more chunks (or one chunk with no parity). *)

val decode_group : chunk list -> (string * float) list option
(** Recover one group from its members alone (same tolerance as [decode]);
    what the transfer receiver runs as each group fills in. *)

val group_count : chunk list -> int
val data_chunks : chunk list -> chunk list

val xor_entries : (string * float) list list -> (string * float) list
(** Slot-wise XOR of equally-shaped entry lists (exposed for tests). *)
