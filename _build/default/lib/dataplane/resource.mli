(** Switch resource model (paper section 3.1).

    A switch is a vector of resource constraints <Θ1..Θk>; a program (PPM)
    is a vector of requirements <θ1..θk>. A set of programs fits a switch
    iff the component-wise sum of their requirements stays within the
    switch's constraints. *)

type t = {
  stages : float;  (** hardware pipeline stages *)
  sram_kb : float;  (** SRAM for registers/tables, kilobytes *)
  tcam : float;  (** TCAM entries *)
  alus : float;  (** stateful ALUs *)
  hash_units : float;
}

val zero : t

val make : ?stages:float -> ?sram_kb:float -> ?tcam:float -> ?alus:float -> ?hash_units:float ->
  unit -> t

val add : t -> t -> t
val sum : t list -> t
val sub : t -> t -> t
val scale : float -> t -> t

val fits : need:t -> within:t -> bool
(** Component-wise [need <= within]. *)

val dominant_share : need:t -> within:t -> float
(** max over components of need/within (treating 0-capacity components with
    zero need as 0); the packing heuristic's size measure. *)

val tofino_like : t
(** A typical programmable switch: 12 stages, 6 MB SRAM, 2k TCAM entries,
    48 ALUs, 6 hash units (order-of-magnitude, after Bosshart et al.). *)

val pp : Format.formatter -> t -> unit
val to_row : t -> string list
(** Cells [stages; sram_kb; tcam; alus; hash_units] for table printing. *)
