type role = Parser | Detection | Mitigation | Forwarding | Telemetry | Deparser

let role_to_string = function
  | Parser -> "parser"
  | Detection -> "detection"
  | Mitigation -> "mitigation"
  | Forwarding -> "forwarding"
  | Telemetry -> "telemetry"
  | Deparser -> "deparser"

type binop = Add | Sub | Mul | Min | Max | Xor

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Const of float
  | Field of string
  | Meta of string
  | Reg_read of string * expr
  | Hash of string list
  | Binop of binop * expr * expr

type cond =
  | True
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type stmt =
  | Set_meta of string * expr
  | Reg_write of string * expr * expr
  | Mark_suspicious of cond
  | Drop_when of cond
  | Emit_probe of string
  | Apply_table of string
  | If of cond * stmt list * stmt list

type spec = {
  name : string;
  booster : string;
  role : role;
  resources : Resource.t;
  body : stmt list;
}

let make_spec ~name ~booster ~role ~resources body = { name; booster; role; resources; body }

let rec expr_regs_read acc = function
  | Const _ | Field _ | Meta _ | Hash _ -> acc
  | Reg_read (r, idx) -> expr_regs_read (r :: acc) idx
  | Binop (_, a, b) -> expr_regs_read (expr_regs_read acc a) b

let rec cond_regs_read acc = function
  | True -> acc
  | Cmp (_, a, b) -> expr_regs_read (expr_regs_read acc a) b
  | And (a, b) | Or (a, b) -> cond_regs_read (cond_regs_read acc a) b
  | Not c -> cond_regs_read acc c

let rec stmt_fold ~on_expr ~on_cond ~on_stmt acc s =
  let acc = on_stmt acc s in
  match s with
  | Set_meta (_, e) -> on_expr acc e
  | Reg_write (_, idx, v) -> on_expr (on_expr acc idx) v
  | Mark_suspicious c | Drop_when c -> on_cond acc c
  | Emit_probe _ | Apply_table _ -> acc
  | If (c, yes, no) ->
    let acc = on_cond acc c in
    let acc = List.fold_left (stmt_fold ~on_expr ~on_cond ~on_stmt) acc yes in
    List.fold_left (stmt_fold ~on_expr ~on_cond ~on_stmt) acc no

let fold_body spec ~on_expr ~on_cond ~on_stmt init =
  List.fold_left (stmt_fold ~on_expr ~on_cond ~on_stmt) init spec.body

let dedup_sorted xs = List.sort_uniq compare xs

let registers_read spec =
  fold_body spec ~on_expr:expr_regs_read ~on_cond:cond_regs_read ~on_stmt:(fun acc _ -> acc) []
  |> dedup_sorted

let registers_written spec =
  fold_body spec
    ~on_expr:(fun acc _ -> acc)
    ~on_cond:(fun acc _ -> acc)
    ~on_stmt:(fun acc s -> match s with Reg_write (r, _, _) -> r :: acc | _ -> acc)
    []
  |> dedup_sorted

let state_shared a b =
  let inter xs ys = List.filter (fun x -> List.mem x ys) xs in
  dedup_sorted
    (inter (registers_written a) (registers_read b) @ inter (registers_written b) (registers_read a))

let tables_applied spec =
  fold_body spec
    ~on_expr:(fun acc _ -> acc)
    ~on_cond:(fun acc _ -> acc)
    ~on_stmt:(fun acc s -> match s with Apply_table t -> t :: acc | _ -> acc)
    []
  |> dedup_sorted

let body_size spec =
  fold_body spec
    ~on_expr:(fun acc _ -> acc)
    ~on_cond:(fun acc _ -> acc)
    ~on_stmt:(fun acc _ -> acc + 1)
    0

let pp_spec fmt spec =
  Format.fprintf fmt "%s/%s (%s) %a [%d stmts]" spec.booster spec.name
    (role_to_string spec.role) Resource.pp spec.resources (body_size spec)
