lib/dataplane/match_table.ml: Hashtbl List
