lib/dataplane/resource.ml: Format List Printf
