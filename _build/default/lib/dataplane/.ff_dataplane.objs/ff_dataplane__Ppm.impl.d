lib/dataplane/ppm.ml: Format List Resource
