lib/dataplane/resource.mli: Format
