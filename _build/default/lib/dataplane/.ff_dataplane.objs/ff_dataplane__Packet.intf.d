lib/dataplane/packet.mli: Format
