lib/dataplane/register.mli:
