lib/dataplane/bloom.mli:
