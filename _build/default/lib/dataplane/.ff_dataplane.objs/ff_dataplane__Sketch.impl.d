lib/dataplane/sketch.ml: Array Hashtbl List
