lib/dataplane/bloom.ml: Bytes Char Hashtbl
