lib/dataplane/register.ml: Array Hashtbl List Printf String
