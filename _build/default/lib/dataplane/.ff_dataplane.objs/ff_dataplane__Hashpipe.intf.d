lib/dataplane/hashpipe.mli:
