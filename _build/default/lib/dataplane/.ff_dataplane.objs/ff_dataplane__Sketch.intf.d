lib/dataplane/sketch.mli:
