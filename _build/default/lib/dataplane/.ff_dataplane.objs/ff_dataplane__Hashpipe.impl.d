lib/dataplane/hashpipe.ml: Array Hashtbl List
