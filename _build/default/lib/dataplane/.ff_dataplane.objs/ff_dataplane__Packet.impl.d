lib/dataplane/packet.ml: Format List
