lib/dataplane/ppm.mli: Format Resource
