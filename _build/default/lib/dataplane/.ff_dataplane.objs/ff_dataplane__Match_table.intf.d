lib/dataplane/match_table.mli:
