(** Stateful switch primitives: register arrays, counters, and token-bucket
    meters — the per-flow/per-destination state tables the paper lists among
    shareable PPM components. *)

(** Fixed-size array of floats indexed by a hash of a key, i.e. a P4
    register array accessed through a hash unit. *)
module Array_reg : sig
  type t

  val create : ?name:string -> slots:int -> unit -> t
  val name : t -> string
  val slots : t -> int

  val index_of : t -> int -> int
  (** Hash a key to a slot index. *)

  val get : t -> int -> float
  (** Read by key (hashed). *)

  val set : t -> int -> float -> unit
  val bump : t -> int -> float -> float
  (** Add to the slot and return the new value. *)

  val get_slot : t -> int -> float
  (** Read a raw slot (no hashing). *)

  val set_slot : t -> int -> float -> unit

  val reset : t -> unit
  val fold_slots : t -> init:'a -> f:('a -> int -> float -> 'a) -> 'a
  val dump : t -> (string * float) list
  (** [name[i] -> value] for non-zero slots — what a state transfer ships. *)

  val load : t -> (string * float) list -> unit
  (** Inverse of [dump] for entries matching this register's name. *)
end

(** Token-bucket meter for rate limiting suspicious flows. *)
module Meter : sig
  type t

  val create : rate:float -> burst:float -> t
  (** [rate] in bytes/second, [burst] in bytes. *)

  val allow : t -> now:float -> bytes:float -> bool
  (** Consume tokens if available; [false] means the packet exceeds the
      configured rate and should be dropped/marked. *)

  val set_rate : t -> float -> unit
end
