type t = {
  stages : float;
  sram_kb : float;
  tcam : float;
  alus : float;
  hash_units : float;
}

let zero = { stages = 0.; sram_kb = 0.; tcam = 0.; alus = 0.; hash_units = 0. }

let make ?(stages = 0.) ?(sram_kb = 0.) ?(tcam = 0.) ?(alus = 0.) ?(hash_units = 0.) () =
  { stages; sram_kb; tcam; alus; hash_units }

let add x y =
  {
    stages = x.stages +. y.stages;
    sram_kb = x.sram_kb +. y.sram_kb;
    tcam = x.tcam +. y.tcam;
    alus = x.alus +. y.alus;
    hash_units = x.hash_units +. y.hash_units;
  }

let sum = List.fold_left add zero

let sub x y =
  {
    stages = x.stages -. y.stages;
    sram_kb = x.sram_kb -. y.sram_kb;
    tcam = x.tcam -. y.tcam;
    alus = x.alus -. y.alus;
    hash_units = x.hash_units -. y.hash_units;
  }

let scale k x =
  {
    stages = k *. x.stages;
    sram_kb = k *. x.sram_kb;
    tcam = k *. x.tcam;
    alus = k *. x.alus;
    hash_units = k *. x.hash_units;
  }

let fits ~need ~within =
  need.stages <= within.stages && need.sram_kb <= within.sram_kb && need.tcam <= within.tcam
  && need.alus <= within.alus && need.hash_units <= within.hash_units

let ratio need cap = if need <= 0. then 0. else if cap <= 0. then infinity else need /. cap

let dominant_share ~need ~within =
  List.fold_left max 0.
    [
      ratio need.stages within.stages;
      ratio need.sram_kb within.sram_kb;
      ratio need.tcam within.tcam;
      ratio need.alus within.alus;
      ratio need.hash_units within.hash_units;
    ]

let tofino_like = { stages = 12.; sram_kb = 6144.; tcam = 2048.; alus = 48.; hash_units = 6. }

let pp fmt t =
  Format.fprintf fmt "<stages=%.1f sram=%.1fKB tcam=%.0f alus=%.0f hash=%.0f>" t.stages
    t.sram_kb t.tcam t.alus t.hash_units

let to_row t =
  [ Printf.sprintf "%.1f" t.stages; Printf.sprintf "%.1f" t.sram_kb;
    Printf.sprintf "%.0f" t.tcam; Printf.sprintf "%.0f" t.alus;
    Printf.sprintf "%.0f" t.hash_units ]
