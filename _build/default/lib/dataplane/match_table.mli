(** Match-action tables: exact (SRAM hash), longest-prefix match, and
    ternary (TCAM). Actions are caller-defined. *)

(** Exact-match table keyed by integers. *)
module Exact : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] bounds the number of entries (default unbounded);
      insertion beyond capacity raises [Failure "table full"]. *)

  val insert : 'a t -> key:int -> 'a -> unit
  val remove : 'a t -> key:int -> unit
  val lookup : 'a t -> key:int -> 'a option
  val size : 'a t -> int
  val clear : 'a t -> unit
  val entries : 'a t -> (int * 'a) list
end

(** Longest-prefix-match table over 32-bit-style integer addresses. *)
module Lpm : sig
  type 'a t

  val create : unit -> 'a t

  val insert : 'a t -> prefix:int -> len:int -> 'a -> unit
  (** [len] in [\[0,32\]]; the high [len] bits of [prefix] are significant. *)

  val lookup : 'a t -> key:int -> 'a option
  (** Entry with the longest matching prefix. *)

  val remove : 'a t -> prefix:int -> len:int -> unit
  val size : 'a t -> int
end

(** Ternary (value/mask, priority) table — a TCAM. *)
module Ternary : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t

  val insert : 'a t -> value:int -> mask:int -> priority:int -> 'a -> unit
  (** Higher [priority] wins. *)

  val lookup : 'a t -> key:int -> 'a option
  val size : 'a t -> int
  val clear : 'a t -> unit
end
