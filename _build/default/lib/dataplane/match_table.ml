module Exact = struct
  type 'a t = { table : (int, 'a) Hashtbl.t; capacity : int option }

  let create ?capacity () = { table = Hashtbl.create 64; capacity }

  let insert t ~key v =
    (match t.capacity with
    | Some cap when (not (Hashtbl.mem t.table key)) && Hashtbl.length t.table >= cap ->
      failwith "table full"
    | _ -> ());
    Hashtbl.replace t.table key v

  let remove t ~key = Hashtbl.remove t.table key
  let lookup t ~key = Hashtbl.find_opt t.table key
  let size t = Hashtbl.length t.table
  let clear t = Hashtbl.reset t.table
  let entries t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
end

module Lpm = struct
  type 'a entry = { prefix : int; len : int; action : 'a }
  type 'a t = { mutable entries : 'a entry list }

  let create () = { entries = [] }

  let mask_of len = if len <= 0 then 0 else lnot 0 lsl (32 - len) land 0xFFFFFFFF

  let insert t ~prefix ~len action =
    assert (len >= 0 && len <= 32);
    let prefix = prefix land mask_of len in
    let others = List.filter (fun e -> not (e.prefix = prefix && e.len = len)) t.entries in
    (* keep sorted by decreasing length so lookup returns the first match *)
    t.entries <-
      List.sort (fun e1 e2 -> compare e2.len e1.len) ({ prefix; len; action } :: others)

  let lookup t ~key =
    List.find_map
      (fun e -> if key land mask_of e.len = e.prefix then Some e.action else None)
      t.entries

  let remove t ~prefix ~len =
    let prefix = prefix land mask_of len in
    t.entries <- List.filter (fun e -> not (e.prefix = prefix && e.len = len)) t.entries

  let size t = List.length t.entries
end

module Ternary = struct
  type 'a entry = { value : int; mask : int; priority : int; action : 'a }
  type 'a t = { mutable entries : 'a entry list; capacity : int option }

  let create ?capacity () = { entries = []; capacity }

  let insert t ~value ~mask ~priority action =
    (match t.capacity with
    | Some cap when List.length t.entries >= cap -> failwith "table full"
    | _ -> ());
    t.entries <-
      List.sort
        (fun e1 e2 -> compare e2.priority e1.priority)
        ({ value = value land mask; mask; priority; action } :: t.entries)

  let lookup t ~key =
    List.find_map
      (fun e -> if key land e.mask = e.value then Some e.action else None)
      t.entries

  let size t = List.length t.entries
  let clear t = t.entries <- []
end
