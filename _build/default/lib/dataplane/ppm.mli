(** Packet processing modules (PPMs) — the unit FastFlex decomposes
    boosters into (paper section 3.1).

    A PPM has two faces. Its {e spec} is a small imperative IR over packet
    fields, metadata, and named register state; the program analyzer uses it
    for equivalence checking and sharing, the scheduler for resource
    packing, and the scaling engine to identify transferable state. Its
    runtime behaviour is executed by the simulator's switches (built in
    [Ff_boosters] as closures over real state objects). *)

type role = Parser | Detection | Mitigation | Forwarding | Telemetry | Deparser

val role_to_string : role -> string

type binop = Add | Sub | Mul | Min | Max | Xor

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Const of float
  | Field of string  (** packet header field *)
  | Meta of string  (** per-packet metadata variable *)
  | Reg_read of string * expr  (** register name, index expression *)
  | Hash of string list  (** hash of header fields *)
  | Binop of binop * expr * expr

type cond =
  | True
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type stmt =
  | Set_meta of string * expr
  | Reg_write of string * expr * expr  (** register, index, value *)
  | Mark_suspicious of cond
  | Drop_when of cond
  | Emit_probe of string  (** probe class emitted (mode/util/sync) *)
  | Apply_table of string  (** named match-action table lookup *)
  | If of cond * stmt list * stmt list

type spec = {
  name : string;
  booster : string;  (** owning booster (defense app) *)
  role : role;
  resources : Resource.t;
  body : stmt list;
}

val make_spec :
  name:string -> booster:string -> role:role -> resources:Resource.t -> stmt list -> spec

val registers_read : spec -> string list
(** Register names the body reads, deduplicated, sorted. *)

val registers_written : spec -> string list
(** Register names the body writes — the state a switch repurposing must
    transfer out (paper section 3.4). *)

val state_shared : spec -> spec -> string list
(** Registers written by one and read by the other (either direction):
    the dataflow-graph edge weight basis. *)

val tables_applied : spec -> string list

val body_size : spec -> int
(** Statement count (including nested), a complexity proxy. *)

val pp_spec : Format.formatter -> spec -> unit
