lib/te/controller.mli: Ff_netsim Solver Traffic_matrix
