lib/te/traffic_matrix.mli:
