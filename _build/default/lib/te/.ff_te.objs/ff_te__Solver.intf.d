lib/te/solver.mli: Ff_netsim Ff_topology Traffic_matrix
