lib/te/solver.ml: Ff_netsim Ff_topology Float Hashtbl List Option Traffic_matrix
