lib/te/controller.ml: Ff_netsim List Solver
