lib/te/estimator.ml: Ff_dataplane Ff_netsim Ff_util Hashtbl List Traffic_matrix
