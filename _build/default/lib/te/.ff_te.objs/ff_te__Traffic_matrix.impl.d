lib/te/traffic_matrix.ml: Hashtbl List
