lib/te/estimator.mli: Ff_netsim Traffic_matrix
