type t = (int * int, float) Hashtbl.t

let empty () : t = Hashtbl.create 32

let set t ~src ~dst v =
  if v < 0. then invalid_arg "Traffic_matrix.set: negative demand";
  if v = 0. then Hashtbl.remove t (src, dst) else Hashtbl.replace t (src, dst) v

let get t ~src ~dst = try Hashtbl.find t (src, dst) with Not_found -> 0.

let add t ~src ~dst v = set t ~src ~dst (get t ~src ~dst +. v)

let pairs t =
  Hashtbl.fold (fun (s, d) v acc -> (s, d, v) :: acc) t []
  |> List.sort (fun (s1, d1, v1) (s2, d2, v2) ->
         match compare v2 v1 with 0 -> compare (s1, d1) (s2, d2) | c -> c)

let total t = Hashtbl.fold (fun _ v acc -> acc +. v) t 0.

let scale t k =
  let out = empty () in
  Hashtbl.iter (fun (s, d) v -> set out ~src:s ~dst:d (k *. v)) t;
  out

let merge a b =
  let out = empty () in
  Hashtbl.iter (fun (s, d) v -> add out ~src:s ~dst:d v) a;
  Hashtbl.iter (fun (s, d) v -> add out ~src:s ~dst:d v) b;
  out

let num_pairs = Hashtbl.length
