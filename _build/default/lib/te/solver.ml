module Topology = Ff_topology.Topology

type plan = {
  routes : ((int * int) * Topology.path) list;
  max_util : float;
  link_load : (int * float) list;
}

(* Directed-link load bookkeeping: key (from,to). *)
module Load = struct
  type t = (int * int, float) Hashtbl.t

  let create () : t = Hashtbl.create 64
  let get t key = try Hashtbl.find t key with Not_found -> 0.
  let add t key v = Hashtbl.replace t key (get t key +. v)

  let dirs_of_path topo path =
    let rec go = function
      | [] | [ _ ] -> []
      | a :: (b :: _ as rest) ->
        let l = Option.get (Topology.find_link topo a b) in
        ((a, b), l) :: go rest
    in
    go path

  let apply t topo path v = List.iter (fun (key, _) -> add t key v) (dirs_of_path topo path)

  let path_max_util t topo path extra =
    List.fold_left
      (fun acc (key, (l : Topology.link)) ->
        Float.max acc ((get t key +. extra) /. l.Topology.capacity))
      0. (dirs_of_path topo path)

  let global_max_util t topo =
    Hashtbl.fold
      (fun (a, b) load acc ->
        match Topology.find_link topo a b with
        | Some l -> Float.max acc (load /. l.Topology.capacity)
        | None -> acc)
      t 0.
end

let choose_path topo load candidates demand =
  let scored =
    List.map (fun p -> (Load.path_max_util load topo p demand, List.length p, p)) candidates
  in
  match List.sort compare scored with
  | (_, _, best) :: _ -> Some best
  | [] -> None

let solve ?(k = 4) topo matrix =
  let demands = Traffic_matrix.pairs matrix in
  let load = Load.create () in
  let candidates_of (s, d) = Topology.k_shortest_paths ~k topo ~src:s ~dst:d in
  (* greedy assignment in decreasing demand order *)
  let routes = Hashtbl.create 32 in
  List.iter
    (fun (s, d, v) ->
      match choose_path topo load (candidates_of (s, d)) v with
      | Some p ->
        Load.apply load topo p v;
        Hashtbl.replace routes (s, d) p
      | None -> ())
    demands;
  (* local search: try moving each demand to a better path *)
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 3 do
    improved := false;
    incr rounds;
    List.iter
      (fun (s, d, v) ->
        match Hashtbl.find_opt routes (s, d) with
        | None -> ()
        | Some current ->
          let before = Load.global_max_util load topo in
          Load.apply load topo current (-.v);
          (match choose_path topo load (candidates_of (s, d)) v with
          | Some best when best <> current ->
            Load.apply load topo best v;
            let after = Load.global_max_util load topo in
            if after < before -. 1e-9 then begin
              Hashtbl.replace routes (s, d) best;
              improved := true
            end
            else begin
              Load.apply load topo best (-.v);
              Load.apply load topo current v
            end
          | _ -> Load.apply load topo current v))
      demands
  done;
  let route_list =
    Hashtbl.fold (fun pair path acc -> (pair, path) :: acc) routes []
    |> List.sort compare
  in
  let link_load =
    List.map
      (fun (l : Topology.link) ->
        ( l.Topology.link_id,
          Load.get load (l.Topology.a, l.Topology.b) +. Load.get load (l.Topology.b, l.Topology.a) ))
      (Topology.links topo)
  in
  { routes = route_list; max_util = Load.global_max_util load topo; link_load }

let install net plan =
  List.iter
    (fun ((src, dst), path) -> Ff_netsim.Net.install_pair_path net ~src ~dst path)
    plan.routes

let install_prefix_based net plan =
  let topo = Ff_netsim.Net.topology net in
  List.iter
    (fun ((src, dst), path) ->
      Ff_netsim.Net.install_pair_path net ~src ~dst path;
      (* the same route serves every host of dst's prefix (access switch) *)
      let edge = Ff_netsim.Net.access_switch net ~host:dst in
      List.iter
        (fun sibling ->
          if sibling <> dst && sibling <> src then begin
            let rec retarget = function
              | [] -> []
              | [ last ] -> if last = dst then [ sibling ] else [ last ]
              | hop :: rest -> hop :: retarget rest
            in
            Ff_netsim.Net.install_pair_path net ~src ~dst:sibling (retarget path)
          end)
        (Ff_netsim.Net.attached_hosts net ~sw:edge))
    plan.routes;
  ignore topo

let plan_path plan ~src ~dst = List.assoc_opt (src, dst) plan.routes

let utilization_of topo matrix routes =
  let load = Load.create () in
  List.iter
    (fun ((s, d), path) -> Load.apply load topo path (Traffic_matrix.get matrix ~src:s ~dst:d))
    routes;
  Load.global_max_util load topo
