(** Traffic matrix: offered demand between host pairs, bits per second. *)

type t

val empty : unit -> t

val set : t -> src:int -> dst:int -> float -> unit
(** Overwrite the demand of a pair (bps). Negative demand is rejected. *)

val add : t -> src:int -> dst:int -> float -> unit
(** Accumulate into a pair. *)

val get : t -> src:int -> dst:int -> float
(** 0. for unknown pairs. *)

val pairs : t -> (int * int * float) list
(** All non-zero entries, sorted by decreasing demand (deterministic). *)

val total : t -> float
val scale : t -> float -> t
val merge : t -> t -> t
(** Pairwise sum. *)

val num_pairs : t -> int
