(** Centralized traffic engineering: pick one of the k shortest paths per
    demand so that the maximum link utilization is (approximately)
    minimized — greedy water-filling over demands in decreasing order,
    followed by single-demand local-search improvement.

    This is the "optimal configuration computed by centralized control"
    of the paper's default mode, and the engine behind the baseline SDN
    defense that re-solves every period. *)

type plan = {
  routes : ((int * int) * Ff_topology.Topology.path) list;
      (** chosen path per (src,dst) demand *)
  max_util : float;  (** bottleneck utilization under the input matrix *)
  link_load : (int * float) list;  (** load (bps) per link id, both directions summed *)
}

val solve : ?k:int -> Ff_topology.Topology.t -> Traffic_matrix.t -> plan
(** [k] candidate paths per pair (default 4). Demands with no path are
    skipped. *)

val install : Ff_netsim.Net.t -> plan -> unit
(** Write every chosen path into the switches' per-pair tables. *)

val install_prefix_based : Ff_netsim.Net.t -> plan -> unit
(** Like [install], but destination-prefix granularity: the path chosen
    for (src, dst) is also installed for every other host behind [dst]'s
    access switch. This is how deployed TE behaves (routes move per
    prefix, not per host) — and why a Crossfire attacker tracerouting
    public servers near the victim observes the defense's reroutes. *)

val plan_path : plan -> src:int -> dst:int -> Ff_topology.Topology.path option

val utilization_of :
  Ff_topology.Topology.t -> Traffic_matrix.t -> ((int * int) * Ff_topology.Topology.path) list ->
  float
(** Max link utilization if the matrix is routed over the given paths
    (capacity per direction). *)
