(** The centralized SDN controller: the paper's baseline defense (after
    Spiffy/CoDef-style LFA defenses driven by dynamic traffic engineering).

    Every [period] seconds the controller estimates the traffic matrix,
    re-solves TE, and — after a control-loop [delay] modelling
    measurement collection, computation, and rule pushes — installs the new
    configuration. Because attack flows are indistinguishable from
    legitimate ones, the controller simply spreads whatever it observes:
    effective against a static LFA, but a rolling attack re-targets faster
    than the loop closes (paper section 4, "Rolling attacks"). *)

type t

val start :
  Ff_netsim.Net.t ->
  period:float ->
  ?delay:float ->
  ?k:int ->
  ?until:float ->
  ?prefix_based:bool ->
  estimate:(unit -> Traffic_matrix.t) ->
  unit ->
  t
(** [delay] defaults to 0.5 s. The first re-solve happens one period in.
    With [prefix_based] (default true) new configurations are installed at
    destination-prefix granularity ([Solver.install_prefix_based]) — the
    realistic deployment model. *)

val reconfig_count : t -> int

val reconfig_times : t -> float list
(** Times at which new configurations were installed (oldest first). *)

val on_reconfig : t -> (float -> unit) -> unit
(** Register an observer called at each installation (the rolling attacker
    watches route changes through the data plane, not through this hook;
    this is for experiment logging). *)

val last_plan : t -> Solver.plan option
