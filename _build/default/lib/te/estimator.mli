(** Traffic-matrix estimation from data plane telemetry.

    The SDN controller (the paper's baseline defense) does not know the
    offered demands; it measures them. This module installs a telemetry
    stage at the given switches that counts (src,dst) data bytes at each
    flow's ingress, and converts the windows to a bits-per-second traffic
    matrix on demand — the measurement half of the controller's loop. *)

type t

val install :
  Ff_netsim.Net.t -> switches:int list -> ?window:float -> ?min_rate:float -> unit -> t
(** Count at each flow's ingress among [switches] (a packet is counted
    where its source host attaches, so a pair is never double-counted).
    [window] is the averaging window (default 2 s); pairs below
    [min_rate] bps (default 10 kb/s) are dropped from the matrix. *)

val matrix : t -> Traffic_matrix.t
(** Current estimate. *)

val rate : t -> src:int -> dst:int -> float
(** One pair's estimated rate, bits per second. *)

val pairs_seen : t -> int
