type t = {
  net : Ff_netsim.Net.t;
  mutable count : int;
  mutable times : float list;
  mutable observers : (float -> unit) list;
  mutable plan : Solver.plan option;
}

let start net ~period ?(delay = 0.5) ?(k = 4) ?until ?(prefix_based = true) ~estimate () =
  let t = { net; count = 0; times = []; observers = []; plan = None } in
  let engine = Ff_netsim.Net.engine net in
  Ff_netsim.Engine.every engine ~period ?until (fun () ->
      let matrix = estimate () in
      let plan = Solver.solve ~k (Ff_netsim.Net.topology net) matrix in
      (* the control loop takes [delay] to measure, compute and push rules *)
      Ff_netsim.Engine.after engine ~delay (fun () ->
          if prefix_based then Solver.install_prefix_based net plan
          else Solver.install net plan;
          t.plan <- Some plan;
          t.count <- t.count + 1;
          let now = Ff_netsim.Net.now net in
          t.times <- now :: t.times;
          List.iter (fun f -> f now) t.observers));
  t

let reconfig_count t = t.count
let reconfig_times t = List.rev t.times
let on_reconfig t f = t.observers <- f :: t.observers
let last_plan t = t.plan
