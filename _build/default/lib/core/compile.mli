(** The FastFlex compilation pipeline (paper Figure 1 a-b): booster specs
    -> per-booster dataflow graphs -> program analysis -> one merged graph
    with functionally equivalent PPMs shared. *)

type compiled = {
  graphs : (string * Ff_dataflow.Graph.t) list;  (** per-booster graphs *)
  merged : Ff_dataflow.Graph.t;
  sharing : (string * string) list;  (** (kept PPM, absorbed PPM) pairs *)
  savings : float;  (** fraction of pipeline stages saved by sharing *)
}

val boosters : ?names:string list -> unit -> compiled
(** Compile the named boosters (default: the full shipped catalogue,
    [Ff_boosters.Specs.booster_names]). *)

val pack_onto :
  compiled ->
  switches:int list ->
  ?capacity:Ff_dataplane.Resource.t ->
  unit ->
  (Ff_placement.Pack.bin list, string) result
(** Pack the merged graph onto identical switches (default capacity
    [Resource.tofino_like]). *)

val module_rows : compiled -> (string * string list * Ff_dataplane.Resource.t) list
(** (module, boosters sharing it, resources) for the merged graph —
    the paper Figure 1 module table. *)

val verify : ?names:string list -> unit -> (string * Ff_dataflow.Check.issue list) list
(** Statically check every (or the named) booster pipeline before
    deployment (paper section 6, "Securing the boosters"). The shipped
    catalogue must verify clean; the result lists each booster with its
    issues (empty lists included). *)
