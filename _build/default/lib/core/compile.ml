module Graph = Ff_dataflow.Graph
module Specs = Ff_boosters.Specs

type compiled = {
  graphs : (string * Graph.t) list;
  merged : Graph.t;
  sharing : (string * string) list;
  savings : float;
}

let boosters ?names () =
  let names = match names with Some ns -> ns | None -> Specs.booster_names in
  let graphs =
    List.map (fun name -> (name, Graph.of_pipeline ~booster:name (Specs.specs_of name))) names
  in
  let merged, sharing = Graph.merge (List.map snd graphs) in
  let savings = Graph.savings ~before:(List.map snd graphs) ~after:merged in
  { graphs; merged; sharing; savings }

let pack_onto compiled ~switches ?(capacity = Ff_dataplane.Resource.tofino_like) () =
  let capacities = List.map (fun sw -> (sw, capacity)) switches in
  Ff_placement.Pack.first_fit_decreasing ~capacities compiled.merged

let verify ?names () =
  let names = match names with Some ns -> ns | None -> Specs.booster_names in
  List.map (fun name -> (name, Ff_dataflow.Check.check_pipeline (Specs.specs_of name))) names

let module_rows compiled =
  List.map
    (fun v ->
      ( v.Graph.spec.Ff_dataplane.Ppm.name,
        v.Graph.boosters,
        v.Graph.spec.Ff_dataplane.Ppm.resources ))
    (Graph.vertices compiled.merged)
