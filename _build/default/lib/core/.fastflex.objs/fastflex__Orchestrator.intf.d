lib/core/orchestrator.mli: Ff_boosters Ff_dataplane Ff_modes Ff_netsim Ff_te Ff_topology
