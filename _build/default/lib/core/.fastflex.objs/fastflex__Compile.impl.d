lib/core/compile.ml: Ff_boosters Ff_dataflow Ff_dataplane Ff_placement List
