lib/core/compile.mli: Ff_dataflow Ff_dataplane Ff_placement
