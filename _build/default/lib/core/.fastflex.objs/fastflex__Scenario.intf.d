lib/core/scenario.mli: Ff_dataplane Ff_netsim Ff_topology Ff_util Format Orchestrator
