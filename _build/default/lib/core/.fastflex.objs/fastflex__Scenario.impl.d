lib/core/scenario.ml: Ff_attacks Ff_boosters Ff_dataplane Ff_modes Ff_netsim Ff_te Ff_topology Ff_util Float Format List Option Orchestrator
