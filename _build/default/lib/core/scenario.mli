(** The paper's case-study experiment (section 4.3, Figure 3): normal flows
    toward a victim, a rolling Crossfire LFA on the two critical links of
    the Figure 2 topology, and one of three defenses:

    - [No_defense]: static default TE only;
    - [Baseline_sdn]: the state-of-the-art SDN defense, centralized TE
      re-solving every period (Spiffy-like);
    - [Fastflex]: the multimode data plane — detection, distributed mode
      change, suspicious-only rerouting, obfuscation, and dropping.

    Throughput is reported normalized to the no-attack steady state
    measured in the same run before the attack begins, matching the
    figure's y-axis. *)

type defense =
  | No_defense
  | Baseline_sdn of { period : float; delay : float }
  | Fastflex of Orchestrator.config

type attack_plan = {
  start : float;
  roll_schedule : float list;  (** forced re-targets (the figure's rounds) *)
  roll_on_path_change : bool;
  flows_per_bot : int;
  bot_max_cwnd : float;
}

val default_attack : attack_plan
(** Starts at 10 s; forced rolls at 45 s and 80 s (three rounds over
    120 s); rolls on observed path changes. *)

type result = {
  normalized : Ff_util.Series.t;  (** normal-flow goodput / no-attack baseline *)
  raw_goodput : Ff_util.Series.t;  (** bytes/s *)
  attack_goodput : Ff_util.Series.t;  (** the attacker's flows, bytes/s *)
  baseline_goodput : float;  (** the normalizer, bytes/s *)
  rolls : float list;
  reconfigs : float list;  (** baseline controller installations *)
  mode_log : (float * int * Ff_dataplane.Packet.attack_kind * bool) list;
  mean_during_attack : float;  (** mean normalized goodput while under attack *)
  min_during_attack : float;
  recovery_times : (float * float) list;
      (** (attack event time, seconds until normalized goodput >= 0.8) *)
  drops : (string * int) list;
  suspicious_marked : int;
  probes_sent : int;
}

val run_lfa :
  defense:defense ->
  ?attack:attack_plan option ->
  ?duration:float ->
  ?sample_period:float ->
  ?normals:int ->
  ?bots:int ->
  ?on_ready:
    (Ff_netsim.Net.t -> Ff_topology.Topology.Fig2.landmarks -> Ff_netsim.Flow.Tcp.t list ->
     unit) ->
  unit ->
  result
(** [~attack:None] runs the calibration-only scenario (no attack).
    Defaults: the default attack, 120 s, 0.5 s samples, 4 normal hosts,
    8 bots. [on_ready] runs after setup and before the simulation, with the
    network, the topology landmarks, and the normal flows — the hook tests
    and examples use to attach extra monitors. *)

val pp_summary : Format.formatter -> result -> unit

(** {1 Volumetric scenario}

    A second end-to-end driver: bots blast spoofed-source CBR traffic at
    the victim through the aggregation chokepoint; the defense is
    heavy-hitter detection wired into the mode protocol (dropping +
    hop-count filtering). *)

type volumetric_result = {
  vr_normalized_mean : float;  (** normal goodput under attack / baseline *)
  vr_spoofed_filtered : int;  (** packets the hop-count filter removed *)
  vr_offender_drops : int;  (** packets policed off the offender flows *)
  vr_mode_changes : int;
  vr_alarmed : bool;  (** heavy hitter state at the end of the run *)
}

val run_volumetric :
  defended:bool ->
  ?duration:float ->
  ?attack_rate_pps:float ->
  ?spoof:bool ->
  unit ->
  volumetric_result
(** Defaults: 60 s, 600 pps per bot — each bot flow is individually a
    4.8 Mb/s heavy hitter, 38 Mb/s aggregate against a 20 Mb/s cut —
    spoofing on. *)
