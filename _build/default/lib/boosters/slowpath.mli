(** Fastpath/slowpath co-design (paper section 2.2, after NetWarden):
    "we can split a defense algorithm into a fastpath component, which runs
    in the data plane hardware ..., and a slowpath component, which runs in
    control plane software ... As long as the slowpath is only occasionally
    involved, the defense algorithm can still run efficiently."

    A switch-local slowpath channel: a booster stage punts a packet (or a
    question about it) over a PCIe-like channel with [latency] and a
    bounded punt rate; the handler runs in "software" and its verdict
    arrives back asynchronously. Punts beyond the rate budget overflow and
    receive the [overflow] verdict immediately — the back-pressure that
    keeps the slowpath occasional. *)

type verdict = Allow | Deny | Install of (unit -> unit)
    (** [Install f] allows the packet and runs [f] to update fastpath
        state (e.g. cache a table rule) when the verdict lands. *)

type t

val create :
  Ff_netsim.Net.t ->
  sw:int ->
  ?latency:float ->
  ?rate_limit:float ->
  ?overflow:verdict ->
  handler:(Ff_dataplane.Packet.t -> verdict) ->
  unit ->
  t
(** Defaults: 1 ms round trip, 1000 punts/s budget, overflow verdict
    [Deny] (fail closed). *)

val punt : t -> Ff_dataplane.Packet.t -> on_verdict:(verdict -> unit) -> unit
(** Queue a punt; [on_verdict] fires after [latency] (or immediately with
    the overflow verdict when the budget is exhausted). *)

val punts : t -> int
val overflows : t -> int

(** A ready-made integration: reactive access control. The fastpath checks
    an exact-match rule cache; a miss punts to a policy oracle, whose
    verdict is cached so later packets of the pair stay on the fastpath
    (the classic reactive flow-setup pattern). *)
module Reactive_acl : sig
  type acl

  val install :
    Ff_netsim.Net.t ->
    sw:int ->
    ?mode:string ->
    ?latency:float ->
    ?rate_limit:float ->
    oracle:(src:int -> dst:int -> bool) ->
    unit ->
    acl
  (** While the mode (default ["acl"]) is active: cached pairs forward at
      line rate; a first packet of an unknown pair is held for the
      slowpath decision (modelled as drop-and-retransmit, like an
      OpenFlow table-miss), and the oracle's answer is cached. *)

  val cache_hits : acl -> int
  val cache_misses : acl -> int
  val cached_pairs : acl -> int
  val slowpath : acl -> t
end
