let mode_active (sw : Ff_netsim.Net.switch) name =
  match Hashtbl.find_opt sw.Ff_netsim.Net.vars ("mode:" ^ name) with
  | Some v -> v > 0.
  | None -> false

let set_mode (sw : Ff_netsim.Net.switch) name on =
  Hashtbl.replace sw.Ff_netsim.Net.vars ("mode:" ^ name) (if on then 1. else 0.)

let mode_classify = "classify"
let mode_reroute = "reroute"
let mode_obfuscate = "obfuscate"
let mode_drop = "drop"
let mode_hcf = "hcf"
let mode_acl = "acl"
let mode_grl = "grl"
