(** PPM decompositions of the shipped boosters — the analysis-side face
    used by the program analyzer (sharing/equivalence), the scheduler
    (resource packing), and the scaling engine (transferable state). The
    resource vectors are plausible Tofino-class figures in the style of the
    module table of paper Figure 1.

    Boosters deliberately implement some functions with different register
    and metadata names but identical structure (e.g. the count-min update
    of the heavy hitter vs. the global rate limiter, and the common
    parser): the equivalence checker must discover the sharing, not string
    equality. *)

val booster_names : string list
(** ["lfa-detector"; "reroute"; "obfuscator"; "dropper"; "heavy-hitter";
    "global-rate-limit"; "hop-count-filter"; "access-control"] *)

val specs_of : string -> Ff_dataplane.Ppm.spec list
(** PPMs of one booster in pipeline order. Raises [Not_found] for an
    unknown name. *)

val all : unit -> (string * Ff_dataplane.Ppm.spec list) list

val module_table : unit -> (string * Ff_dataplane.Resource.t) list
(** Deduplicated module -> resource rows (the paper Figure 1 table). *)
