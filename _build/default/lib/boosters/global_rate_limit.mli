(** Distributed global rate limiting (paper section 3.3, "Distributed
    detection"; after cloud control with distributed rate limiting,
    SIGCOMM '07).

    Some attacks are only visible network-wide: each participating switch
    counts a tenant's local bytes, and every [sync_period] floods a sync
    probe with its local rates. Switches merge the views they receive, so
    each holds an estimate of the tenant's {e global} rate. While the
    ["grl"] mode is active, a tenant above its limit is policed
    probabilistically with drop probability [1 - limit/global] — the
    aggregate converges to the limit wherever the traffic enters. *)

type t

val install :
  Ff_netsim.Net.t ->
  participants:int list ->
  ?sync_period:float ->
  ?mode:string ->
  ?seed:int ->
  unit ->
  t

val set_limit : t -> tenant:int -> float -> unit
(** Global limit in bits/s. *)

val assign : t -> src:int -> tenant:int -> unit
(** Map a source host to a tenant (unassigned sources are not policed). *)

val global_rate : t -> sw:int -> tenant:int -> float
(** The switch-local estimate of the tenant's network-wide rate (bits/s). *)

val local_rate : t -> sw:int -> tenant:int -> float
val dropped : t -> int
val sync_probes : t -> int
