(** Packet-dropping / rate-limiting booster (paper section 4.1,
    "Packet-dropping defense", and step (5), the "illusion of success").

    While the ["drop"] mode is active, packets marked suspicious pass
    through a per-flow token-bucket meter; traffic beyond [rate_limit] is
    dropped. On top, a deterministic pseudo-random [drop_prob] discards a
    fraction of the remaining suspicious packets so that the attacker keeps
    observing loss on its flows even after rerouting has relieved the
    target link — and so keeps believing the attack works. *)

type t

val install :
  Ff_netsim.Net.t ->
  sw:int ->
  ?mode:string ->
  ?rate_limit:float ->
  ?burst:float ->
  ?drop_prob:float ->
  ?seed:int ->
  unit ->
  t
(** Defaults: 500 kb/s per suspicious flow ([rate_limit] is bits/s),
    burst 12 kB, [drop_prob] 0.1. *)

val dropped : t -> int
val metered_flows : t -> int
