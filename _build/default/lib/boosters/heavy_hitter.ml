module Net = Ff_netsim.Net
module Engine = Ff_netsim.Engine
module Packet = Ff_dataplane.Packet
module Hashpipe = Ff_dataplane.Hashpipe

type t = {
  net : Net.t;
  sw : int;
  epoch : float;
  threshold_bps : float;
  pipe : Hashpipe.t;
  mutable offenders : int list;
  mutable alarmed : bool;
  on_alarm : Lfa_detector.alarm -> unit;
  on_clear : Lfa_detector.alarm -> unit;
}

let stage t =
  {
    Net.stage_name = "heavy-hitter";
    process =
      (fun _ctx pkt ->
        (match pkt.Packet.payload with
        | Packet.Data ->
          Hashpipe.update t.pipe ~key:pkt.Packet.flow ~weight:(float_of_int pkt.Packet.size)
        | _ -> ());
        Net.Continue);
  }

let epoch_tick t () =
  (* bytes accumulated over one epoch -> bits/s *)
  let threshold_bytes = t.threshold_bps *. t.epoch /. 8. in
  let heavy = Hashpipe.heavy_hitters t.pipe ~threshold:threshold_bytes in
  t.offenders <- List.map fst heavy;
  (match (heavy, t.alarmed) with
  | _ :: _, false ->
    t.alarmed <- true;
    t.on_alarm { Lfa_detector.switch = t.sw; attack = Packet.Volumetric }
  | [], true ->
    t.alarmed <- false;
    t.on_clear { Lfa_detector.switch = t.sw; attack = Packet.Volumetric }
  | _ -> ());
  Hashpipe.reset t.pipe

let install net ~sw ?(epoch = 1.0) ?(stages = 4) ?(slots = 64) ?(threshold_bps = 4_000_000.)
    ~on_alarm ~on_clear () =
  let t =
    {
      net;
      sw;
      epoch;
      threshold_bps;
      pipe = Hashpipe.create ~stages ~slots_per_stage:slots ();
      offenders = [];
      alarmed = false;
      on_alarm;
      on_clear;
    }
  in
  Net.add_stage net ~sw (stage t);
  Engine.every (Net.engine net) ~period:epoch (epoch_tick t);
  t

let top t ~k =
  let all = Hashpipe.heavy_hitters t.pipe ~threshold:0. in
  List.filteri (fun i _ -> i < k) all

let offenders t = t.offenders
let alarmed t = t.alarmed

let mark_offenders_stage t =
  {
    Net.stage_name = "hh-marker";
    process =
      (fun _ctx pkt ->
        (match pkt.Packet.payload with
        | Packet.Data when List.mem pkt.Packet.flow t.offenders ->
          pkt.Packet.suspicious <- true
        | _ -> ());
        Net.Continue);
  }
