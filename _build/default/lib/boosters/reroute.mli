(** Congestion-aware rerouting entirely in the data plane (paper
    section 4.1, "Routing around congestion"; after Hula, SOSR '16 and
    Contra, NSDI '20).

    For each root destination, its access switch periodically floods
    utilization probes while the ["reroute"] mode is active. A probe
    arriving at switch [s] from neighbor [n] describes a path
    [s -> n -> ... -> root] whose bottleneck is
    [max(probe.max_util, util(s -> n))]. Each switch keeps the best
    next hop per destination and generation; fresher rounds replace stale
    metrics, and improved metrics are re-flooded.

    The forwarding override applies {e only to packets marked suspicious}
    (or to all packets with [~reroute_all:true], the plain-Hula ablation):
    normal flows stay pinned to the TE paths — the paper's step (3),
    minimal disturbance to normal traffic. *)

type t

val install :
  Ff_netsim.Net.t ->
  roots:int list ->
  ?probe_interval:float ->
  ?probe_ttl:int ->
  ?entry_timeout:float ->
  ?mode:string ->
  ?reroute_all:bool ->
  unit ->
  t
(** [roots] are destination hosts probes advertise paths toward (probes
    originate at each root's access switch). Defaults: probe every 50 ms,
    8-hop scope, entries stale after 0.5 s, gated on mode ["reroute"]. *)

val best_next_hop : t -> sw:int -> dst:int -> int option
(** Freshest known least-congested next hop toward [dst], if any. *)

val best_metric : t -> sw:int -> dst:int -> float option

val probes_sent : t -> int
val reroutes : t -> int
(** Packets actually steered off their table route. *)
