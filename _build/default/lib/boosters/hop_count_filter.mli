(** Hop-count filtering booster (after NetHCF, ICNP '19): line-rate
    spoofed-IP filtering.

    Packets from a source normally arrive with a stable TTL (initial TTL
    minus path length). The booster learns each source's expected arriving
    TTL; in filtering mode (["hcf"]), packets whose TTL deviates by more
    than [tolerance] are spoofed and dropped.

    Learning is {e reinforcement-only}: once a source has a fingerprint,
    only in-tolerance packets update it. This is NetHCF's defense against
    poisoning — without it, a spoofed flood arriving before the filter
    mode activates drags the estimate toward itself and the legitimate
    owner of the address gets filtered. Slow legitimate path changes stay
    within tolerance and still track. *)

type t

val install :
  Ff_netsim.Net.t ->
  sw:int ->
  ?mode:string ->
  ?tolerance:int ->
  ?learning_weight:float ->
  unit ->
  t
(** Defaults: tolerance 2 hops, EWMA learning weight 0.3. *)

val expected_ttl : t -> src:int -> float option
val filtered : t -> int
val learned_sources : t -> int
