(** Network-wide heavy-hitter detection (paper section 3.3's distributed
    detection example; after Harrison et al., SOSR '18).

    Some attacks are invisible locally: a distributed flood sends moderate
    traffic toward one destination from many ingresses, so no single
    switch sees a heavy hitter. Each ingress counts per-destination bytes;
    the [Ff_modes.Sync] service floods the views periodically; every
    ingress then holds the {e network-wide} per-destination rate and can
    raise a volumetric alarm that no local counter could justify. *)

type t

val install :
  Ff_netsim.Net.t ->
  ingresses:int list ->
  ?check_period:float ->
  ?sync_period:float ->
  ?threshold_bps:float ->
  ?sync_threshold_bps:float ->
  ?probe_class:int ->
  on_alarm:(Lfa_detector.alarm -> unit) ->
  on_clear:(Lfa_detector.alarm -> unit) ->
  unit ->
  t
(** Defaults: check every 0.5 s, sync every 0.25 s, alarm when a
    destination's global rate exceeds 6 Mb/s; local entries under
    [sync_threshold_bps] (default 100 kb/s) are not advertised (the
    paper's "minimize synchronization" knob). Instances coexist: each gets
    unique stage names and (unless [probe_class] pins one) a unique sync
    probe class. *)

val global_rate : t -> sw:int -> dst:int -> float
(** The ingress's estimate of the destination's network-wide inbound rate. *)

val local_rate : t -> sw:int -> dst:int -> float

val offenders : t -> int list
(** Destinations currently above threshold (globally). *)

val alarmed : t -> bool
val sync_probes : t -> int
