(** Heavy-hitter / volumetric-DDoS detection booster (after HashPipe,
    SOSR '17, and network-wide heavy hitters, SOSR '18).

    Every data packet updates a HashPipe table keyed by flow. Each epoch
    the booster converts resident counts to rates; any flow above
    [threshold_bps] triggers a volumetric alarm (once per epoch), and the
    offending flows are reported so a dropper can be pointed at them. *)

type t

val install :
  Ff_netsim.Net.t ->
  sw:int ->
  ?epoch:float ->
  ?stages:int ->
  ?slots:int ->
  ?threshold_bps:float ->
  on_alarm:(Lfa_detector.alarm -> unit) ->
  on_clear:(Lfa_detector.alarm -> unit) ->
  unit ->
  t
(** Defaults: 1 s epochs, 4x64 HashPipe, alarm above 4 Mb/s per flow. *)

val top : t -> k:int -> (int * float) list
(** Current epoch's top flows by bytes. *)

val offenders : t -> int list
(** Flows above threshold in the last completed epoch. *)

val alarmed : t -> bool

val mark_offenders_stage : t -> Ff_netsim.Net.stage
(** Optional stage marking offender packets suspicious (so the generic
    dropper mitigates volumetric attacks too). *)
