(** In-network access control booster (after Poise, HotCloud '18):
    the network as the last line of defense against compromised endpoints.

    A policy table lists the destinations each source may talk to. While
    the ["acl"] mode is active, data packets violating the policy are
    dropped at the switch — a compromised host cannot exfiltrate to an
    unapproved destination even with full control of its own stack. *)

type t

val install : Ff_netsim.Net.t -> sw:int -> ?mode:string -> ?default_allow:bool -> unit -> t

val permit : t -> src:int -> dst:int -> unit
val revoke : t -> src:int -> dst:int -> unit
val allowed : t -> src:int -> dst:int -> bool
val violations : t -> int
