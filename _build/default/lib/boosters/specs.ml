open Ff_dataplane
open Ff_dataplane.Ppm

let res = Resource.make

(* A standard ethernet/IP/TCP parser; every booster carries one, written
   with booster-specific metadata names so that sharing must be discovered
   by canonicalization rather than by name. *)
let parser_body ~flow_meta ~ttl_meta =
  [
    Set_meta (flow_meta, Hash [ "dst"; "proto"; "src" ]);
    Set_meta (ttl_meta, Field "ttl");
  ]

let parser ~booster ~flow_meta ~ttl_meta =
  make_spec ~name:(booster ^ "-parser") ~booster ~role:Parser
    ~resources:(res ~stages:1. ~sram_kb:16. ())
    (parser_body ~flow_meta ~ttl_meta)

let deparser ~booster =
  make_spec ~name:(booster ^ "-deparser") ~booster ~role:Deparser
    ~resources:(res ~stages:1. ~sram_kb:8. ())
    [ Set_meta ("out", Field "ttl") ]

(* Count-min-style sketch update: two hash rows incremented by packet size.
   Written twice below (heavy hitter vs. global rate limiter) with
   different register names; canonical forms coincide. *)
let cms_update_body ~r0 ~r1 =
  [
    Reg_write (r0, Hash [ "dst"; "proto"; "src" ],
       Binop (Add, Reg_read (r0, Hash [ "dst"; "proto"; "src" ]), Field "size"));
    Reg_write (r1, Hash [ "dst"; "src" ],
       Binop (Add, Reg_read (r1, Hash [ "dst"; "src" ]), Field "size"));
  ]

(* Per-flow connection state update (first/last seen, byte count): shared
   structure between the LFA detector and the dropper's meter bookkeeping. *)
let flow_state_body ~key ~bytes_reg ~last_reg =
  [
    Reg_write (bytes_reg, Meta key,
       Binop (Add, Reg_read (bytes_reg, Meta key), Field "size"));
    Reg_write (last_reg, Meta key, Field "now");
  ]

let lfa_detector () =
  let booster = "lfa-detector" in
  [
    parser ~booster ~flow_meta:"flow_key" ~ttl_meta:"ttl_copy";
    make_spec ~name:"flow-state" ~booster ~role:Detection
      ~resources:(res ~stages:2. ~sram_kb:512. ~alus:4. ~hash_units:1. ())
      (flow_state_body ~key:"flow_key" ~bytes_reg:"flow_bytes" ~last_reg:"flow_last"
      @ [
          (* first-seen timestamp feeds the age used by the classifier *)
          If (Cmp (Eq, Reg_read ("flow_first", Meta "flow_key"), Const 0.),
              [ Reg_write ("flow_first", Meta "flow_key", Field "now") ], []);
          Set_meta ("flow_age",
             Binop (Sub, Field "now", Reg_read ("flow_first", Meta "flow_key")));
        ]);
    make_spec ~name:"link-load-monitor" ~booster ~role:Detection
      ~resources:(res ~stages:1. ~sram_kb:32. ~alus:2. ())
      [
        Reg_write ("link_bytes", Const 0.,
           Binop (Add, Reg_read ("link_bytes", Const 0.), Field "size"));
        If (Cmp (Gt, Reg_read ("link_bytes", Const 0.), Const 850_000.),
            [ Emit_probe "mode-alarm" ], []);
      ];
    make_spec ~name:"flow-classifier" ~booster ~role:Detection
      ~resources:(res ~stages:2. ~sram_kb:128. ~alus:2. ~hash_units:1. ())
      [
        Mark_suspicious
          (And
             ( Cmp (Lt, Reg_read ("flow_bytes", Meta "flow_key"), Const 1_500_000.),
               Cmp (Gt, Meta "flow_age", Const 2.) ));
      ];
    deparser ~booster;
  ]

let reroute () =
  let booster = "reroute" in
  [
    parser ~booster ~flow_meta:"fkey" ~ttl_meta:"tcopy";
    make_spec ~name:"util-probe-processor" ~booster ~role:Detection
      ~resources:(res ~stages:2. ~sram_kb:64. ~alus:4. ())
      [
        Set_meta ("path_util", Binop (Max, Field "probe_util", Reg_read ("egress_util", Field "in_port")));
        If (Cmp (Lt, Meta "path_util", Reg_read ("best_metric", Field "probe_dst")),
            [
              Reg_write ("best_metric", Field "probe_dst", Meta "path_util");
              Reg_write ("best_nexthop", Field "probe_dst", Field "in_port");
              Emit_probe "util-probe";
            ],
            []);
      ];
    make_spec ~name:"suspicious-steering" ~booster ~role:Mitigation
      ~resources:(res ~stages:1. ~sram_kb:64. ~tcam:64. ())
      [
        If (Cmp (Eq, Field "suspicious", Const 1.),
            [ Apply_table "best_nexthop_table" ], []);
      ];
    deparser ~booster;
  ]

let obfuscator () =
  let booster = "obfuscator" in
  [
    parser ~booster ~flow_meta:"okey" ~ttl_meta:"ottl";
    make_spec ~name:"virtual-topology-lookup" ~booster ~role:Mitigation
      ~resources:(res ~stages:2. ~sram_kb:96. ~tcam:256. ())
      [
        If (Cmp (Eq, Field "ttl", Const 1.),
            [ Apply_table "virtual_topology"; Set_meta ("vresp", Field "vhop") ], []);
      ];
    deparser ~booster;
  ]

let dropper () =
  let booster = "dropper" in
  [
    parser ~booster ~flow_meta:"dkey" ~ttl_meta:"dttl";
    make_spec ~name:"flow-meter" ~booster ~role:Mitigation
      ~resources:(res ~stages:2. ~sram_kb:256. ~alus:4. ~hash_units:1. ())
      (flow_state_body ~key:"dkey" ~bytes_reg:"meter_tokens" ~last_reg:"meter_last");
    make_spec ~name:"drop-policy" ~booster ~role:Mitigation
      ~resources:(res ~stages:1. ~sram_kb:16. ~alus:1. ())
      [
        Drop_when
          (And
             ( Cmp (Eq, Field "suspicious", Const 1.),
               Cmp (Lt, Reg_read ("meter_tokens", Meta "dkey"), Field "size") ));
      ];
    deparser ~booster;
  ]

let heavy_hitter () =
  let booster = "heavy-hitter" in
  [
    parser ~booster ~flow_meta:"hhkey" ~ttl_meta:"hhttl";
    make_spec ~name:"cms-update" ~booster ~role:Detection
      ~resources:(res ~stages:2. ~sram_kb:128. ~alus:2. ~hash_units:2. ())
      (cms_update_body ~r0:"cms_row0" ~r1:"cms_row1");
    make_spec ~name:"hh-threshold" ~booster ~role:Detection
      ~resources:(res ~stages:1. ~sram_kb:16. ~alus:1. ())
      [
        If (Cmp (Gt, Reg_read ("cms_row0", Hash [ "dst"; "proto"; "src" ]), Const 500_000.),
            [ Emit_probe "mode-alarm" ], []);
      ];
    deparser ~booster;
  ]

let global_rate_limit () =
  let booster = "global-rate-limit" in
  [
    parser ~booster ~flow_meta:"grlkey" ~ttl_meta:"grlttl";
    (* same canonical form as the heavy hitter's cms-update *)
    make_spec ~name:"tenant-count" ~booster ~role:Detection
      ~resources:(res ~stages:2. ~sram_kb:128. ~alus:2. ~hash_units:2. ())
      (cms_update_body ~r0:"tenant_row_a" ~r1:"tenant_row_b");
    make_spec ~name:"view-sync" ~booster ~role:Telemetry
      ~resources:(res ~stages:1. ~sram_kb:64. ~alus:1. ())
      [
        Emit_probe "sync-probe";
        Set_meta ("remote_rate", Reg_read ("remote_views", Meta "grlkey"));
      ];
    make_spec ~name:"police" ~booster ~role:Mitigation
      ~resources:(res ~stages:1. ~sram_kb:32. ~alus:2. ())
      [
        Drop_when
          (Cmp (Gt, Binop (Add, Reg_read ("tenant_row_a", Meta "grlkey"), Meta "remote_rate"),
                Const 5_000_000.));
      ];
    deparser ~booster;
  ]

let hop_count_filter () =
  let booster = "hop-count-filter" in
  [
    parser ~booster ~flow_meta:"hkey" ~ttl_meta:"httl";
    make_spec ~name:"ttl-learn" ~booster ~role:Detection
      ~resources:(res ~stages:1. ~sram_kb:256. ~alus:2. ~hash_units:1. ())
      [
        Reg_write ("expected_ttl", Field "src",
           Binop (Add,
              Binop (Mul, Reg_read ("expected_ttl", Field "src"), Const 0.7),
              Binop (Mul, Field "ttl", Const 0.3)));
      ];
    make_spec ~name:"ttl-filter" ~booster ~role:Mitigation
      ~resources:(res ~stages:1. ~sram_kb:16. ~alus:2. ())
      [
        Drop_when
          (Or
             ( Cmp (Gt, Field "ttl", Binop (Add, Reg_read ("expected_ttl", Field "src"), Const 2.)),
               Cmp (Lt, Field "ttl", Binop (Sub, Reg_read ("expected_ttl", Field "src"), Const 2.)) ));
      ];
    deparser ~booster;
  ]

let access_control () =
  let booster = "access-control" in
  [
    parser ~booster ~flow_meta:"akey" ~ttl_meta:"attl";
    make_spec ~name:"policy-table" ~booster ~role:Mitigation
      ~resources:(res ~stages:1. ~sram_kb:64. ~tcam:512. ())
      [ Apply_table "acl_policy"; Drop_when (Cmp (Eq, Meta "acl_deny", Const 1.)) ];
    deparser ~booster;
  ]

let catalogue =
  [
    ("lfa-detector", lfa_detector);
    ("reroute", reroute);
    ("obfuscator", obfuscator);
    ("dropper", dropper);
    ("heavy-hitter", heavy_hitter);
    ("global-rate-limit", global_rate_limit);
    ("hop-count-filter", hop_count_filter);
    ("access-control", access_control);
  ]

let booster_names = List.map fst catalogue

let specs_of name =
  match List.assoc_opt name catalogue with
  | Some f -> f ()
  | None -> raise Not_found

let all () = List.map (fun (name, f) -> (name, f ())) catalogue

let module_table () =
  List.concat_map (fun (_, specs) -> List.map (fun s -> (s.name, s.resources)) specs) (all ())
