(** Topology obfuscation booster (paper section 4.1, after NetHide,
    USENIX Security '18).

    While the ["obfuscate"] mode is active, a switch about to answer a
    traceroute probe (TTL expiring here) answers with the hop the {e
    virtual} topology would have — the pre-attack default path — instead of
    its real identity. The attacker mapping the network keeps seeing the
    topology as it was before mitigation rerouted its flows, so a rolling
    attacker gets no signal to roll on (paper Figure 2 (c)-(d)). *)

type t

val install :
  Ff_netsim.Net.t ->
  ?mode:string ->
  virtual_path:(src:int -> dst:int -> int list option) ->
  unit ->
  t
(** [virtual_path ~src ~dst] returns the node list (hosts included) the
    virtual topology routes that pair over — typically the default-mode TE
    plan captured before the attack. Installed on every switch, ahead of
    TTL processing. *)

val obfuscated_replies : t -> int

val set_virtual_path : t -> (src:int -> dst:int -> int list option) -> unit
(** Swap the virtual topology (e.g. after a planned TE update). *)
