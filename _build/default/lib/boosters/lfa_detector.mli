(** LFA detection booster (paper section 4.1, "LFA detection").

    Detects (a) high load on its watched links and (b) persistent, low-rate
    flows — the Crossfire signature — by maintaining per-flow state on
    every data packet (Dapper/Blink-style TCP monitoring, simplified).

    When the watched utilization crosses [high_threshold] the detector
    raises an alarm (wired to the mode protocol by the orchestrator). While
    the alarm is up, the per-packet stage marks packets of flows older than
    [min_age] whose rate is below [suspicious_rate] as suspicious; the mark
    is what mitigation boosters (reroute, dropper) act on downstream.

    The all-clear fires only when the aggregate rate of currently
    suspicious flows falls below [clear_fraction] of the watched capacity
    for [clear_hold] seconds — the attack subsiding, not merely the
    mitigation masking it (otherwise alarm/mitigate/clear would oscillate,
    the instability the paper warns about). *)

type t

type alarm = { switch : int; attack : Ff_dataplane.Packet.attack_kind }

val install :
  Ff_netsim.Net.t ->
  sw:int ->
  watched:(int * int) list ->
  ?check_period:float ->
  ?high_threshold:float ->
  ?suspicious_rate:float ->
  ?min_age:float ->
  ?clear_fraction:float ->
  ?clear_hold:float ->
  ?dst_flows_min:int ->
  on_alarm:(alarm -> unit) ->
  on_clear:(alarm -> unit) ->
  unit ->
  t
(** [watched] are directed links [(from, to)] whose utilization this
    detector guards (its own egress links toward the critical core).
    Defaults: check every 50 ms, alarm above 0.85 utilization, suspicious
    below 1.5 Mb/s after 2 s of age {e and} at least [dst_flows_min] = 8
    live flows converging on the same destination (the Crossfire fan-in —
    this is what keeps congested-but-legitimate flows out of the suspicious
    set), clear when suspicious traffic is under 0.1 of watched capacity
    for 3 s. *)

val alarmed : t -> bool
val suspicious_flows : t -> int list
val is_suspicious_flow : t -> int -> bool
val is_suspicious_source : t -> int -> bool
val tracked_flows : t -> int
val marks : t -> int
(** Packets marked suspicious so far. *)

val flow_rate : t -> int -> float
(** Estimated rate of a tracked flow, bits/s (0. if unknown). *)
