lib/boosters/dropper.ml: Common Ff_dataplane Ff_netsim Ff_util Hashtbl
