lib/boosters/hop_count_filter.mli: Ff_netsim
