lib/boosters/lfa_detector.mli: Ff_dataplane Ff_netsim
