lib/boosters/slowpath.ml: Common Ff_dataplane Ff_netsim Float Hashtbl Lazy
