lib/boosters/network_wide_hh.mli: Ff_netsim Lfa_detector
