lib/boosters/reroute.mli: Ff_netsim
