lib/boosters/access_control.mli: Ff_netsim
