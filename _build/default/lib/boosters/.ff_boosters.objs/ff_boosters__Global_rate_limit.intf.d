lib/boosters/global_rate_limit.mli: Ff_netsim
