lib/boosters/reroute.ml: Common Ff_dataplane Ff_netsim Float Hashtbl List Option
