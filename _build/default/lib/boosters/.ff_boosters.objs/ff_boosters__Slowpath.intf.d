lib/boosters/slowpath.mli: Ff_dataplane Ff_netsim
