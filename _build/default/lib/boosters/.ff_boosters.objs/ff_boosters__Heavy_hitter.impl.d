lib/boosters/heavy_hitter.ml: Ff_dataplane Ff_netsim Lfa_detector List
