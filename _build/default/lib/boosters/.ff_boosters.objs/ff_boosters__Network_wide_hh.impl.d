lib/boosters/network_wide_hh.ml: Ff_dataplane Ff_modes Ff_netsim Ff_util Hashtbl Lfa_detector List Printf
