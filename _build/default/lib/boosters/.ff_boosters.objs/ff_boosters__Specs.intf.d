lib/boosters/specs.mli: Ff_dataplane
