lib/boosters/heavy_hitter.mli: Ff_netsim Lfa_detector
