lib/boosters/common.mli: Ff_netsim
