lib/boosters/common.ml: Ff_netsim Hashtbl
