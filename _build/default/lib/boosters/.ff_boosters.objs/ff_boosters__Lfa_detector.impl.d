lib/boosters/lfa_detector.ml: Common Ff_dataplane Ff_netsim Ff_topology Float Hashtbl List
