lib/boosters/specs.ml: Ff_dataplane List Resource
