lib/boosters/obfuscator.mli: Ff_netsim
