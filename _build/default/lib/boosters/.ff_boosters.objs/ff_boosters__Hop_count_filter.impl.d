lib/boosters/hop_count_filter.ml: Common Ff_dataplane Ff_netsim Float Hashtbl
