lib/boosters/obfuscator.ml: Common Ff_dataplane Ff_netsim List
