lib/boosters/dropper.mli: Ff_netsim
