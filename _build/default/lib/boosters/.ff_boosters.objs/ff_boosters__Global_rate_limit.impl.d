lib/boosters/global_rate_limit.ml: Common Ff_dataplane Ff_netsim Ff_util Hashtbl List
