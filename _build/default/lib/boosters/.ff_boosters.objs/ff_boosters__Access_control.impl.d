lib/boosters/access_control.ml: Common Ff_dataplane Ff_netsim Hashtbl
