(** Minimal aligned ASCII tables for the bench harness ("same rows the
    paper reports"). *)

val print : header:string list -> rows:string list list -> unit
(** Pretty-print to stdout with column alignment and a rule under the
    header. All rows must have the header's arity (asserted). *)

val fmt_f : float -> string
(** Compact float formatting used in table cells. *)
