type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap e in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let push t ~prio value =
  let e = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  let d = t.data in
  let i = ref t.len in
  t.len <- t.len + 1;
  d.(!i) <- e;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less d.(!i) d.(parent) then begin
      let tmp = d.(parent) in
      d.(parent) <- d.(!i);
      d.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let d = t.data in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less d.(l) d.(!smallest) then smallest := l;
    if r < t.len && less d.(r) d.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = d.(!smallest) in
      d.(!smallest) <- d.(!i);
      d.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.len = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let clear t =
  t.len <- 0;
  t.next_seq <- 0
