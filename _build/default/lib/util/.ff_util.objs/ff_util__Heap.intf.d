lib/util/heap.mli:
