lib/util/stats.mli:
