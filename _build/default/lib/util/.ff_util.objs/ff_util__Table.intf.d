lib/util/table.mli:
