lib/util/prng.mli:
