lib/util/table.ml: Array Float List Printf String
