lib/util/series.ml: Array Format List
