type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  assert (bound > 0.);
  let raw = Int64.shift_right_logical (int64 t) 11 in
  (* 53 significant bits, uniform in [0,1) *)
  Int64.to_float raw /. 9007199254740992. *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let pareto t ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let u = float t 1.0 in
  scale /. ((1.0 -. u) ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
