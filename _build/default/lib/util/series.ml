type t = { name : string; mutable rev_points : (float * float) list; mutable n : int }

let create ~name = { name; rev_points = []; n = 0 }

let name t = t.name

let add t ~time v =
  (match t.rev_points with
  | (prev, _) :: _ -> assert (time >= prev)
  | [] -> ());
  t.rev_points <- (time, v) :: t.rev_points;
  t.n <- t.n + 1

let points t = List.rev t.rev_points
let length t = t.n
let values t = List.rev_map snd t.rev_points
let last t = match t.rev_points with [] -> None | p :: _ -> Some p

let resample t ~step ~until =
  assert (step > 0.);
  let pts = Array.of_list (points t) in
  let n = Array.length pts in
  let rec grid acc i time =
    if time > until +. 1e-9 then List.rev acc
    else begin
      (* advance i to the last sample with timestamp <= time *)
      let rec advance i = if i + 1 < n && fst pts.(i + 1) <= time then advance (i + 1) else i in
      let i = if n = 0 then -1 else if fst pts.(0) > time then -1 else advance (max i 0) in
      let v = if i < 0 then 0. else snd pts.(i) in
      grid ((time, v) :: acc) i (time +. step)
    end
  in
  grid [] (-1) 0.

let pp_ascii ?(width = 72) ?(height = 16) fmt series =
  let all_points = List.concat_map points series in
  if all_points = [] then Format.fprintf fmt "(empty series)@."
  else begin
    let tmax = List.fold_left (fun acc (t, _) -> max acc t) 0. all_points in
    let vmax = List.fold_left (fun acc (_, v) -> max acc v) 0. all_points in
    let vmax = if vmax <= 0. then 1. else vmax in
    let canvas = Array.make_matrix height width ' ' in
    let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |] in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        let step = tmax /. float_of_int (width - 1) in
        let step = if step <= 0. then 1. else step in
        List.iter
          (fun (time, v) ->
            let col = int_of_float (time /. step +. 0.5) in
            let row = height - 1 - int_of_float (v /. vmax *. float_of_int (height - 1) +. 0.5) in
            let col = min (width - 1) (max 0 col) and row = min (height - 1) (max 0 row) in
            canvas.(row).(col) <- glyph)
          (resample s ~step ~until:tmax))
      series;
    Format.fprintf fmt "%8.2f +" vmax;
    for _ = 1 to width do Format.pp_print_char fmt '-' done;
    Format.fprintf fmt "@.";
    Array.iter
      (fun row ->
        Format.fprintf fmt "%8s |" "";
        Array.iter (Format.pp_print_char fmt) row;
        Format.fprintf fmt "@.")
      canvas;
    Format.fprintf fmt "%8.2f +" 0.;
    for _ = 1 to width do Format.pp_print_char fmt '-' done;
    Format.fprintf fmt "> t=%.1fs@." tmax;
    List.iteri
      (fun si s ->
        Format.fprintf fmt "%10s '%c' = %s@." "" glyphs.(si mod Array.length glyphs) (name s))
      series
  end

let pp_csv fmt series =
  match series with
  | [] -> ()
  | first :: _ ->
    let tmax =
      List.fold_left
        (fun acc s -> match last s with None -> acc | Some (t, _) -> max acc t)
        0. series
    in
    let step =
      match points first with
      | (t0, _) :: (t1, _) :: _ when t1 > t0 -> t1 -. t0
      | _ -> 1.
    in
    let columns = List.map (fun s -> (name s, resample s ~step ~until:tmax)) series in
    Format.fprintf fmt "time";
    List.iter (fun (n, _) -> Format.fprintf fmt ",%s" n) columns;
    Format.fprintf fmt "@.";
    let rows = List.map snd columns in
    let len = List.fold_left (fun acc r -> min acc (List.length r)) max_int rows in
    for i = 0 to len - 1 do
      let time, _ = List.nth (List.hd rows) i in
      Format.fprintf fmt "%.3f" time;
      List.iter (fun r -> Format.fprintf fmt ",%.4f" (snd (List.nth r i))) rows;
      Format.fprintf fmt "@."
    done
