(** Time series collected by measurement taps and printed by the bench
    harness in the same shape as the paper's figures. *)

type t

val create : name:string -> t

val name : t -> string

val add : t -> time:float -> float -> unit
(** Append a sample. Times are expected non-decreasing (asserted). *)

val points : t -> (float * float) list
(** Samples in insertion order. *)

val length : t -> int

val values : t -> float list

val last : t -> (float * float) option

val resample : t -> step:float -> until:float -> (float * float) list
(** Piecewise-constant resampling on a regular grid starting at 0.;
    before the first sample the value is 0. *)

val pp_ascii : ?width:int -> ?height:int -> Format.formatter -> t list -> unit
(** Render one or more series as an ASCII line chart (shared axes), the
    closest terminal equivalent of the paper's figure panels. *)

val pp_csv : Format.formatter -> t list -> unit
(** Render series as CSV rows [time,name1,name2,...] on a merged grid. *)
