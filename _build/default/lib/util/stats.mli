(** Streaming and batch statistics used by measurement taps. *)

(** {1 Batch statistics} *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val variance : float list -> float
(** Population variance; 0. on lists shorter than 2. *)

val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], by linear interpolation on the
    sorted sample. Raises [Invalid_argument] on the empty list. *)

val median : float list -> float

(** {1 Exponentially weighted moving average}

    The per-link utilization estimator switches use to drive congestion-aware
    routing decisions (paper section 4.1, "routing around congestion"). *)

module Ewma : sig
  type t

  val create : alpha:float -> t
  (** [alpha] in (0,1]; larger reacts faster. *)

  val update : t -> float -> unit
  val value : t -> float
  (** 0. before the first update. *)

  val reset : t -> unit
end

(** {1 Windowed counter}

    Bytes-per-window counters backing throughput/link-load time series. *)

module Window_counter : sig
  type t

  val create : width:float -> t
  (** [width] is the window length in seconds. *)

  val add : t -> now:float -> float -> unit
  val rate : t -> now:float -> float
  (** Average per-second rate over the window ending at [now]. *)
end
