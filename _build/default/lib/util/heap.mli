(** Imperative binary min-heap, the core of the discrete-event engine.

    Elements are ordered by a float priority with an integer tiebreaker so
    that events scheduled at the same instant pop in insertion order
    (deterministic simulation). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> prio:float -> 'a -> unit
(** Insert with priority; ties break by insertion order. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
