let fmt_f v =
  if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3f" v

let print ~header ~rows =
  let ncols = List.length header in
  List.iter (fun r -> assert (List.length r = ncols)) rows;
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  measure header;
  List.iter measure rows;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then print_string "  ";
        Printf.printf "%-*s" widths.(i) cell)
      row;
    print_newline ()
  in
  print_row header;
  Array.iter (fun w -> print_string (String.make w '-'); print_string "  ") widths;
  print_newline ();
  List.iter print_row rows
